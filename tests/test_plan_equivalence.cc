/**
 * @file
 * Differential harness for the compiled-net memory planner: for every
 * model, the compiled executor path (fused kernels + liveness-planned
 * arena aliasing) must produce bit-identical external outputs to the
 * interpreted per-op path with per-blob allocation, at every batch
 * size and intra-op thread width. This is the numerics contract of
 * graph/compiled_net.h: fusion replicates exact fp32 op order, and
 * arena aliasing never overlaps two live buffers.
 *
 * Runs under RECSTACK_SANITIZE=address as well (ctest -L sanitize):
 * the same executions that prove bit-equality also bounds-check every
 * arena-view kernel write.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <tuple>

#include "graph/compiled_net.h"
#include "graph/executor.h"
#include "models/model.h"

namespace recstack {
namespace {

ModelOptions
testOptions()
{
    ModelOptions opts = tinyOptions();
    opts.tableScale = 0.01;
    return opts;
}

/** Bitwise tensor equality, any dtype. */
void
expectTensorsIdentical(const std::string& blob, const Tensor& a,
                       const Tensor& b)
{
    ASSERT_EQ(a.shape(), b.shape()) << "blob " << blob;
    ASSERT_EQ(a.dtype(), b.dtype()) << "blob " << blob;
    const void* pa = nullptr;
    const void* pb = nullptr;
    switch (a.dtype()) {
      case DType::kFloat32:
        pa = a.data<float>();
        pb = b.data<float>();
        break;
      case DType::kInt32:
        pa = a.data<int32_t>();
        pb = b.data<int32_t>();
        break;
      case DType::kInt64:
        pa = a.data<int64_t>();
        pb = b.data<int64_t>();
        break;
    }
    EXPECT_EQ(std::memcmp(pa, pb, a.byteSize()), 0)
        << "blob '" << blob
        << "' diverges between interpreted and compiled execution";
}

/** Seed params + inputs identically to the interpreted reference. */
void
materializeInputs(const Model& model, int64_t batch, Workspace* ws)
{
    model.initParams(*ws);
    BatchGenerator gen(model.workload, /*seed=*/1234);
    gen.materialize(*ws, batch);
}

class PlanEquivalence
    : public ::testing::TestWithParam<std::tuple<ModelId, int64_t>>
{
};

TEST_P(PlanEquivalence, ExternalOutputsBitIdenticalPlanningOnVsOff)
{
    const ModelId id = std::get<0>(GetParam());
    const int64_t batch = std::get<1>(GetParam());

    const Model model = buildModel(id, testOptions());

    // Planning off: the interpreted executor, one owned blob per
    // activation.
    Workspace ref_ws;
    materializeInputs(model, batch, &ref_ws);
    ExecOptions ref_opts;
    ref_opts.mode = ExecMode::kNumericOnly;
    ref_opts.numThreads = 1;
    Executor::run(model.net, ref_ws, ref_opts);

    // Planning on: one CompiledNet, shared across thread widths the
    // way ServingEngine shares it across workers.
    auto compiled = CompiledNet::compile(model.net);
    ASSERT_TRUE(compiled->planningEnabled());
    for (int threads : {1, 8}) {
        Workspace ws;
        Arena arena;
        materializeInputs(model, batch, &ws);
        ExecOptions opts;
        opts.mode = ExecMode::kNumericOnly;
        opts.numThreads = threads;
        Executor::run(*compiled, ws, arena, batch, opts);
        ASSERT_GT(arena.capacity(), 0u);
        for (const std::string& blob : model.net.externalOutputs()) {
            ASSERT_TRUE(ws.has(blob)) << blob;
            // External outputs stay workspace-owned; callers keep
            // them across requests while the arena is recycled.
            EXPECT_TRUE(ws.get(blob).ownsStorage()) << blob;
            expectTensorsIdentical(blob, ref_ws.get(blob),
                                   ws.get(blob));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, PlanEquivalence,
    ::testing::Combine(::testing::Values(ModelId::kNCF, ModelId::kRM1,
                                         ModelId::kRM2, ModelId::kRM3,
                                         ModelId::kWnD, ModelId::kMTWnD,
                                         ModelId::kDIN, ModelId::kDIEN),
                       ::testing::Values(int64_t{1}, int64_t{64},
                                         int64_t{1024})),
    [](const ::testing::TestParamInfo<std::tuple<ModelId, int64_t>>&
           info) {
        std::string name = modelName(std::get<0>(info.param));
        for (char& c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c))) {
                c = '_';  // "MT-WnD" -> "MT_WnD"
            }
        }
        return name + "_b" + std::to_string(std::get<1>(info.param));
    });

/** Aliasing disabled (env hatch) must match aliasing enabled. */
TEST(PlanEquivalenceVariants, EscapeHatchMatchesPlannedNumerics)
{
    const Model model = buildModel(ModelId::kDIEN, testOptions());

    ASSERT_EQ(setenv("RECSTACK_DISABLE_PLANNING", "1", 1), 0);
    auto unplanned = CompiledNet::compile(model.net);
    ASSERT_EQ(unsetenv("RECSTACK_DISABLE_PLANNING"), 0);
    auto planned = CompiledNet::compile(model.net);
    ASSERT_FALSE(unplanned->planningEnabled());
    ASSERT_TRUE(planned->planningEnabled());

    ExecOptions opts;
    opts.mode = ExecMode::kNumericOnly;
    Workspace a;
    Arena arena_a;
    materializeInputs(model, 64, &a);
    Executor::run(*unplanned, a, arena_a, 64, opts);
    Workspace b;
    Arena arena_b;
    materializeInputs(model, 64, &b);
    Executor::run(*planned, b, arena_b, 64, opts);

    EXPECT_EQ(arena_a.capacity(), 0u);
    EXPECT_GT(arena_b.capacity(), 0u);
    for (const std::string& blob : model.net.externalOutputs()) {
        expectTensorsIdentical(blob, a.get(blob), b.get(blob));
    }
}

/** The fused-GRU DIEN variant also survives the planner. */
TEST(PlanEquivalenceVariants, FusedGruDien)
{
    ModelOptions opts = testOptions();
    opts.dienFusedGru = true;
    const Model model = buildModel(ModelId::kDIEN, opts);

    Workspace ref_ws;
    materializeInputs(model, 16, &ref_ws);
    ExecOptions exec_opts;
    exec_opts.mode = ExecMode::kNumericOnly;
    Executor::run(model.net, ref_ws, exec_opts);

    auto compiled = CompiledNet::compile(model.net);
    Workspace ws;
    Arena arena;
    materializeInputs(model, 16, &ws);
    Executor::run(*compiled, ws, arena, 16, exec_opts);
    for (const std::string& blob : model.net.externalOutputs()) {
        expectTensorsIdentical(blob, ref_ws.get(blob), ws.get(blob));
    }
}

}  // namespace
}  // namespace recstack
