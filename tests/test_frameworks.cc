/**
 * @file
 * Tests for the Caffe2/TensorFlow framework frontends (Fig. 7).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "framework/frameworks.h"
#include "graph/executor.h"

namespace recstack {
namespace {

TEST(Frameworks, Names)
{
    EXPECT_STREQ(frameworkName(FrameworkId::kCaffe2), "Caffe2");
    EXPECT_STREQ(frameworkName(FrameworkId::kTensorFlow), "TensorFlow");
}

TEST(Frameworks, Caffe2DelegatesToNativeZoo)
{
    const Model m = buildModelInFramework(ModelId::kRM1,
                                          FrameworkId::kCaffe2,
                                          tinyOptions());
    EXPECT_EQ(m.name, "RM1");
    bool has_sls = false;
    for (const auto& op : m.net.ops()) {
        has_sls |= op->type() == "SparseLengthsSum";
    }
    EXPECT_TRUE(has_sls);
}

class TfModels : public ::testing::TestWithParam<ModelId>
{
};

TEST_P(TfModels, UsesTfOperatorGranularity)
{
    const Model m = buildModelInFramework(GetParam(),
                                          FrameworkId::kTensorFlow,
                                          tinyOptions());
    m.net.validate();
    std::set<std::string> display;
    for (const auto& op : m.net.ops()) {
        display.insert(op->displayType());
        EXPECT_NE(op->type(), "SparseLengthsSum")
            << "TF graphs must not use the fused Caffe2 operator";
    }
    EXPECT_TRUE(display.count("ResourceGather"));
    EXPECT_TRUE(display.count("Sum"));
    EXPECT_TRUE(display.count("FusedMatMul"));
    EXPECT_TRUE(display.count("ConcatV2"));
}

TEST_P(TfModels, NumericsRunEndToEnd)
{
    Model m = buildModelInFramework(GetParam(), FrameworkId::kTensorFlow,
                                    tinyOptions());
    Workspace ws;
    m.initParams(ws, 7);
    BatchGenerator gen(m.workload, 42);
    gen.materialize(ws, 3);
    Executor::run(m.net, ws, ExecMode::kFull);
    const Tensor& out = ws.get(m.outputBlob);
    EXPECT_EQ(out.dim(0), 3);
    for (int64_t i = 0; i < out.numel(); ++i) {
        const float v = out.data<float>()[i];
        ASSERT_TRUE(std::isfinite(v));
        ASSERT_GT(v, 0.0f);
        ASSERT_LT(v, 1.0f);
    }
}

TEST_P(TfModels, SameArchitecturalFeaturesAsCaffe2)
{
    const Model tf = buildModelInFramework(
        GetParam(), FrameworkId::kTensorFlow, tinyOptions());
    const Model c2 = buildModelInFramework(
        GetParam(), FrameworkId::kCaffe2, tinyOptions());
    EXPECT_EQ(tf.features.numTables, c2.features.numTables);
    EXPECT_DOUBLE_EQ(tf.features.lookupsPerTable,
                     c2.features.lookupsPerTable);
    EXPECT_EQ(tf.features.latentDim, c2.features.latentDim);
    EXPECT_EQ(tf.features.embParams, c2.features.embParams);
    EXPECT_EQ(tf.features.fcParams, c2.features.fcParams);
}

TEST_P(TfModels, MoreOpsThanFusedCaffe2)
{
    const Model tf = buildModelInFramework(
        GetParam(), FrameworkId::kTensorFlow, tinyOptions());
    const Model c2 = buildModelInFramework(
        GetParam(), FrameworkId::kCaffe2, tinyOptions());
    // Gather + Reshape + Sum per table vs one SLS.
    EXPECT_GT(tf.net.opCount(), c2.net.opCount());
}

INSTANTIATE_TEST_SUITE_P(Dlrm, TfModels,
                         ::testing::Values(ModelId::kRM1, ModelId::kRM2,
                                           ModelId::kRM3),
                         [](const ::testing::TestParamInfo<ModelId>& i) {
                             return modelName(i.param);
                         });

TEST(Frameworks, TfRejectsNonDlrmModels)
{
    EXPECT_DEATH(buildModelInFramework(ModelId::kNCF,
                                       FrameworkId::kTensorFlow,
                                       tinyOptions()),
                 "not a DLRM-family model");
}

}  // namespace
}  // namespace recstack
