/**
 * @file
 * Tests for the weighted/mean embedding-bag variants, including
 * algebraic equivalences against the plain SparseLengthsSum.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "ops/embedding.h"

namespace recstack {
namespace {

void
runOp(Operator& op, Workspace& ws)
{
    op.inferShapes(ws);
    op.run(ws);
}

Workspace
randomBag(int64_t rows, int64_t dim, const std::vector<int64_t>& idx,
          const std::vector<int32_t>& len, uint64_t seed = 5)
{
    Workspace ws;
    Rng rng(seed);
    Tensor table({rows, dim});
    for (int64_t i = 0; i < table.numel(); ++i) {
        table.data<float>()[i] = rng.nextFloat(-1.0f, 1.0f);
    }
    ws.set("table", std::move(table));
    ws.set("idx", Tensor::fromInt64s(
                      {static_cast<int64_t>(idx.size())}, idx));
    ws.set("len", Tensor::fromInt32s(
                      {static_cast<int64_t>(len.size())}, len));
    return ws;
}

TEST(SparseLengthsWeightedSum, HandComputed)
{
    Workspace ws;
    ws.set("table", Tensor::fromFloats({3, 2}, {1, 2, 10, 20, 100, 200}));
    ws.set("w", Tensor::fromFloats({3}, {2.0f, 0.5f, -1.0f}));
    ws.set("idx", Tensor::fromInt64s({3}, {0, 2, 1}));
    ws.set("len", Tensor::fromInt32s({2}, {2, 1}));
    SparseLengthsWeightedSumOp slws("slws", "table", "w", "idx", "len",
                                    "y");
    runOp(slws, ws);
    const Tensor& y = ws.get("y");
    EXPECT_FLOAT_EQ(y.at({0, 0}), 2 * 1 + 0.5 * 100);   // 52
    EXPECT_FLOAT_EQ(y.at({0, 1}), 2 * 2 + 0.5 * 200);   // 104
    EXPECT_FLOAT_EQ(y.at({1, 0}), -10);
}

TEST(SparseLengthsWeightedSum, UnitWeightsEqualPlainSum)
{
    const std::vector<int64_t> idx = {3, 1, 4, 1, 5, 2, 6};
    const std::vector<int32_t> len = {3, 4};
    Workspace ws = randomBag(8, 5, idx, len);
    ws.set("w", Tensor::fromFloats(
                    {7}, std::vector<float>(7, 1.0f)));

    SparseLengthsWeightedSumOp slws("slws", "table", "w", "idx", "len",
                                    "yw");
    runOp(slws, ws);
    SparseLengthsSumOp sls("sls", "table", "idx", "len", "ys");
    runOp(sls, ws);

    const Tensor& a = ws.get("yw");
    const Tensor& b = ws.get("ys");
    for (int64_t i = 0; i < a.numel(); ++i) {
        EXPECT_NEAR(a.data<float>()[i], b.data<float>()[i], 1e-5);
    }
}

TEST(SparseLengthsWeightedSum, WeightCountMismatchPanics)
{
    Workspace ws;
    ws.set("table", Tensor({4, 2}));
    ws.set("w", Tensor({2}));
    ws.set("idx", Tensor({3}, DType::kInt64));
    ws.set("len", Tensor({1}, DType::kInt32));
    SparseLengthsWeightedSumOp slws("slws", "table", "w", "idx", "len",
                                    "y");
    EXPECT_DEATH(slws.inferShapes(ws), "one weight per lookup");
}

TEST(SparseLengthsMean, AveragesSegments)
{
    Workspace ws;
    ws.set("table", Tensor::fromFloats({3, 2}, {2, 4, 6, 8, 10, 12}));
    ws.set("idx", Tensor::fromInt64s({3}, {0, 1, 2}));
    ws.set("len", Tensor::fromInt32s({2}, {2, 1}));
    SparseLengthsMeanOp mean("m", "table", "idx", "len", "y");
    runOp(mean, ws);
    const Tensor& y = ws.get("y");
    EXPECT_FLOAT_EQ(y.at({0, 0}), 4);   // (2+6)/2
    EXPECT_FLOAT_EQ(y.at({0, 1}), 6);   // (4+8)/2
    EXPECT_FLOAT_EQ(y.at({1, 0}), 10);
}

TEST(SparseLengthsMean, EqualsSumDividedByLength)
{
    const std::vector<int64_t> idx = {0, 7, 3, 3, 2, 1};
    const std::vector<int32_t> len = {4, 2};
    Workspace ws = randomBag(8, 6, idx, len);

    SparseLengthsMeanOp mean("m", "table", "idx", "len", "ym");
    runOp(mean, ws);
    SparseLengthsSumOp sum("s", "table", "idx", "len", "ys");
    runOp(sum, ws);

    const Tensor& m = ws.get("ym");
    const Tensor& s = ws.get("ys");
    for (int64_t b = 0; b < 2; ++b) {
        for (int64_t d = 0; d < 6; ++d) {
            EXPECT_NEAR(m.at({b, d}), s.at({b, d}) / len[b], 1e-5);
        }
    }
}

TEST(SparseLengthsMean, EmptySegmentStaysZero)
{
    Workspace ws;
    ws.set("table", Tensor::fromFloats({2, 2}, {1, 2, 3, 4}));
    ws.set("idx", Tensor::fromInt64s({1}, {1}));
    ws.set("len", Tensor::fromInt32s({2}, {0, 1}));
    SparseLengthsMeanOp mean("m", "table", "idx", "len", "y");
    runOp(mean, ws);
    EXPECT_FLOAT_EQ(ws.get("y").at({0, 0}), 0.0f);
    EXPECT_FLOAT_EQ(ws.get("y").at({1, 0}), 3.0f);
}

TEST(EmbeddingVariants, ProfilesShareGatherShape)
{
    const std::vector<int64_t> idx = {0, 1, 2, 3};
    const std::vector<int32_t> len = {4};
    Workspace ws = randomBag(128, 16, idx, len);
    ws.set("w", Tensor({4}));

    SparseLengthsSumOp sls("a", "table", "idx", "len", "y1");
    SparseLengthsWeightedSumOp slws("b", "table", "w", "idx", "len",
                                    "y2");
    SparseLengthsMeanOp mean("c", "table", "idx", "len", "y3");
    sls.inferShapes(ws);
    slws.inferShapes(ws);
    mean.inferShapes(ws);

    auto gather_stream = [](const KernelProfile& kp) {
        for (const auto& s : kp.streams) {
            if (s.pattern == AccessPattern::kRandom &&
                s.region == "table") {
                return s;
            }
        }
        return MemStream{};
    };
    const MemStream a = gather_stream(sls.profile(ws));
    const MemStream b = gather_stream(slws.profile(ws));
    const MemStream c = gather_stream(mean.profile(ws));
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.accesses, c.accesses);
    EXPECT_EQ(a.chunkBytes, b.chunkBytes);
    EXPECT_EQ(a.footprintBytes, c.footprintBytes);
    // The weighted variant does real FMA work.
    EXPECT_GT(slws.profile(ws).fmaFlops, 0u);
}

}  // namespace
}  // namespace recstack
