/**
 * @file
 * Tests of the CpuModel trace-driven simulator: micro-op lowering,
 * counter consistency, and the platform-delta behaviours the paper's
 * Figs. 9, 11 depend on.
 */

#include <gtest/gtest.h>

#include "uarch/cpu_model.h"

namespace recstack {
namespace {

/** A GEMM-shaped synthetic profile. */
KernelProfile
gemmProfile()
{
    KernelProfile kp;
    kp.opType = "FC";
    kp.opName = "fc_test";
    kp.fmaFlops = 1 << 20;
    kp.vecElemOps = 1 << 18;
    kp.reloadLoadElems = 1 << 19;
    kp.simdScalableOps = 4096;
    kp.scalarOps = 1024;
    kp.codeFootprintBytes = 2048;
    kp.codeRegion = "kernel:FC";
    kp.codeIterations = 2048;
    MemStream w;
    w.region = "weights";
    w.pattern = AccessPattern::kSequential;
    w.accesses = 4096;
    w.chunkBytes = 64;
    w.footprintBytes = 4096 * 64;
    kp.streams.push_back(w);
    BranchStream loops;
    loops.count = 4096;
    loops.takenProbability = 0.97;
    loops.randomness = 0.02;
    loops.scalesWithSimd = true;
    kp.branches.push_back(loops);
    return kp;
}

/** An embedding-gather-shaped synthetic profile. */
KernelProfile
gatherProfile(uint64_t footprint_bytes)
{
    KernelProfile kp;
    kp.opType = "SparseLengthsSum";
    kp.opName = "sls_test";
    kp.vecElemOps = 1 << 16;
    kp.scalarOps = 1 << 14;
    kp.codeFootprintBytes = 1536;
    kp.codeRegion = "kernel:SparseLengthsSum";
    kp.codeIterations = 2048;
    MemStream t;
    t.region = "table";
    t.pattern = AccessPattern::kRandom;
    t.accesses = 2048;
    t.chunkBytes = 256;
    t.footprintBytes = footprint_bytes;
    t.mlp = 12.0;
    kp.streams.push_back(t);
    BranchStream seg;
    seg.count = 6144;
    seg.takenProbability = 0.85;
    seg.randomness = 0.75;
    kp.branches.push_back(seg);
    return kp;
}

TEST(LowerUops, LaneWidthHalvesVectorWork)
{
    CpuModel bdw(broadwellConfig());
    CpuModel clx(cascadeLakeConfig());
    const KernelProfile kp = gemmProfile();
    const UopMix mb = bdw.lowerUops(kp);
    const UopMix mc = clx.lowerUops(kp);
    EXPECT_EQ(mb.fma, kp.fmaFlops / 16);
    EXPECT_EQ(mc.fma, kp.fmaFlops / 32);
    EXPECT_EQ(mb.vec, kp.vecElemOps / 8);
    EXPECT_EQ(mc.vec, kp.vecElemOps / 16);
    EXPECT_LT(mc.total(), mb.total());  // Fig. 11
}

TEST(LowerUops, SimdScalableScalarAndBranches)
{
    CpuModel bdw(broadwellConfig());
    CpuModel clx(cascadeLakeConfig());
    const KernelProfile kp = gemmProfile();
    const UopMix mb = bdw.lowerUops(kp);
    const UopMix mc = clx.lowerUops(kp);
    // Loop branches scale with SIMD width...
    EXPECT_EQ(mc.branch, mb.branch / 2);
    // ...but fixed scalar work does not.
    EXPECT_EQ(mb.scalar - kp.simdScalableOps,
              mc.scalar - kp.simdScalableOps / 2);
}

TEST(LowerUops, DataBranchesDoNotScale)
{
    CpuModel bdw(broadwellConfig());
    CpuModel clx(cascadeLakeConfig());
    const KernelProfile kp = gatherProfile(64 << 20);
    EXPECT_EQ(bdw.lowerUops(kp).branch, clx.lowerUops(kp).branch);
}

TEST(LowerUops, ReloadLoadsCountAsVectorMemory)
{
    CpuModel bdw(broadwellConfig());
    const KernelProfile kp = gemmProfile();
    const UopMix m = bdw.lowerUops(kp);
    EXPECT_GE(m.load, kp.reloadLoadElems / 8);
    EXPECT_GE(m.vecMem, kp.reloadLoadElems / 8);
    EXPECT_GT(m.avx(), m.fma);
}

TEST(CpuModel, CountersAreConsistent)
{
    CpuModel cpu(broadwellConfig());
    const CpuCounters c = cpu.simulateKernel(gemmProfile());
    EXPECT_GT(c.cycles, 0.0);
    EXPECT_GT(c.uopsRetired, 0u);
    // Cycle categories sum to the total.
    EXPECT_NEAR(c.retireCycles + c.feCycles() + c.badSpecCycles +
                    c.beCycles(),
                c.cycles, c.cycles * 1e-9);
    // L1 accounting: hits by level sum to accesses.
    EXPECT_EQ(c.l1dHits + c.l2Hits + c.l3Hits + c.dramAccesses,
              c.l1dAccesses);
}

TEST(CpuModel, DeterministicAcrossInstances)
{
    CpuModel a(broadwellConfig(), 99);
    CpuModel b(broadwellConfig(), 99);
    const CpuCounters ca = a.simulateKernel(gemmProfile());
    const CpuCounters cb = b.simulateKernel(gemmProfile());
    EXPECT_EQ(ca.uopsRetired, cb.uopsRetired);
    EXPECT_DOUBLE_EQ(ca.cycles, cb.cycles);
    EXPECT_EQ(ca.branchMispredicts, cb.branchMispredicts);
}

TEST(CpuModel, WarmupImprovesCacheBehaviour)
{
    CpuModel cpu(broadwellConfig());
    // Small footprint fits the cache: a second run must hit more.
    KernelProfile kp = gemmProfile();
    const CpuCounters cold = cpu.simulateKernel(kp);
    const CpuCounters warm = cpu.simulateKernel(kp);
    EXPECT_GT(warm.l1dHits + warm.l2Hits + warm.l3Hits,
              cold.l1dHits + cold.l2Hits + cold.l3Hits);
    EXPECT_LT(warm.cycles, cold.cycles);
}

TEST(CpuModel, ResetColdsCaches)
{
    CpuModel cpu(broadwellConfig());
    cpu.simulateKernel(gemmProfile());
    const CpuCounters warm = cpu.simulateKernel(gemmProfile());
    cpu.reset();
    const CpuCounters cold = cpu.simulateKernel(gemmProfile());
    EXPECT_GT(cold.dramAccesses, warm.dramAccesses);
}

TEST(CpuModel, HugeGatherFootprintMissesToDram)
{
    CpuModel cpu(broadwellConfig());
    const CpuCounters c = cpu.simulateKernel(gatherProfile(1ull << 30));
    // 1 GB random gathers: essentially everything misses.
    EXPECT_GT(c.dramAccesses, c.l1dAccesses / 2);
    EXPECT_GT(c.beMemCycles(), c.beCoreCycles);
}

TEST(CpuModel, SmallGatherFootprintStaysCached)
{
    CpuModel cpu(broadwellConfig());
    cpu.simulateKernel(gatherProfile(1 << 16));  // 64 KB: warms L2
    const CpuCounters c = cpu.simulateKernel(gatherProfile(1 << 16));
    EXPECT_LT(c.dramAccesses, c.l1dAccesses / 10);
}

TEST(CpuModel, GatherBranchesCauseBadSpec)
{
    CpuModel cpu(broadwellConfig());
    cpu.simulateKernel(gatherProfile(64 << 20));
    const CpuCounters sls = cpu.simulateKernel(gatherProfile(64 << 20));
    cpu.reset();
    cpu.simulateKernel(gemmProfile());
    const CpuCounters gemm = cpu.simulateKernel(gemmProfile());
    EXPECT_GT(sls.branchMispredicts * gemm.branches,
              gemm.branchMispredicts * sls.branches)
        << "gathers must mispredict at a higher *rate* than GEMM loops";
}

TEST(CpuModel, UniqueCodeRegionsThrashIcache)
{
    CpuModel cpu(broadwellConfig());
    // 64 distinct 1.5 KB code regions cycled twice: 96 KB of code
    // cannot stay in a 32 KB L1I.
    uint64_t misses_second_pass = 0;
    for (int pass = 0; pass < 2; ++pass) {
        for (int i = 0; i < 64; ++i) {
            KernelProfile kp = gemmProfile();
            kp.codeRegion = "op:unique_" + std::to_string(i);
            kp.codeFootprintBytes = 1536;
            const CpuCounters c = cpu.simulateKernel(kp);
            if (pass == 1) {
                misses_second_pass += c.icacheMisses;
            }
        }
    }

    CpuModel shared_cpu(broadwellConfig());
    uint64_t shared_misses_second_pass = 0;
    for (int pass = 0; pass < 2; ++pass) {
        for (int i = 0; i < 64; ++i) {
            const CpuCounters c = shared_cpu.simulateKernel(gemmProfile());
            if (pass == 1) {
                shared_misses_second_pass += c.icacheMisses;
            }
        }
    }
    EXPECT_GT(misses_second_pass, 4 * shared_misses_second_pass);
}

TEST(CpuModel, DramCongestionRequiresSustainedMisses)
{
    CpuModel cpu(broadwellConfig());
    cpu.simulateKernel(gatherProfile(1ull << 30));
    const CpuCounters hot = cpu.simulateKernel(gatherProfile(1ull << 30));
    EXPECT_GT(hot.dramCongestedCycles, 0.0);

    CpuModel idle(broadwellConfig());
    idle.simulateKernel(gemmProfile());
    const CpuCounters calm = idle.simulateKernel(gemmProfile());
    EXPECT_EQ(calm.dramCongestedCycles, 0.0);
}

TEST(CpuModel, CascadeLakeFasterOnGemm)
{
    CpuModel bdw(broadwellConfig());
    CpuModel clx(cascadeLakeConfig());
    bdw.simulateKernel(gemmProfile());
    clx.simulateKernel(gemmProfile());
    const CpuCounters cb = bdw.simulateKernel(gemmProfile());
    const CpuCounters cc = clx.simulateKernel(gemmProfile());
    EXPECT_LT(cc.cycles, cb.cycles);
    EXPECT_LT(cc.uopsRetired, cb.uopsRetired);
}

TEST(CpuModel, EmptyProfileOnlyDispatch)
{
    CpuModel cpu(broadwellConfig());
    KernelProfile kp;
    kp.opType = "Nop";
    kp.opName = "nop";
    const CpuCounters c = cpu.simulateKernel(kp);
    EXPECT_EQ(c.uopsRetired, 0u);
    EXPECT_EQ(c.cycles, 0.0);
}


TEST(CpuModel, PrefetchExposureKnob)
{
    // Disabling prefetch coverage must slow sequential streams but
    // leave random gathers unaffected.
    CpuConfig covered = broadwellConfig();
    CpuConfig exposed = broadwellConfig();
    exposed.seqMissExposure = 1.0;

    CpuModel a(covered), b(exposed);
    KernelProfile seq = gemmProfile();
    seq.streams[0].footprintBytes = 64ull << 20;  // force misses
    seq.streams[0].accesses = 4096;
    const double ca = a.simulateKernel(seq).cycles;
    const double cb = b.simulateKernel(seq).cycles;
    EXPECT_GT(cb, ca);

    CpuModel c(covered), d(exposed);
    const KernelProfile gather = gatherProfile(1ull << 30);
    const double cc = c.simulateKernel(gather).cycles;
    const double cd = d.simulateKernel(gather).cycles;
    EXPECT_NEAR(cc, cd, cc * 1e-9);
}

/** TopDown conservation across a matrix of synthetic kernels. */
class KernelMatrix : public ::testing::TestWithParam<int>
{
};

TEST_P(KernelMatrix, CycleCategoriesAlwaysSum)
{
    CpuModel cpu(broadwellConfig(), 7);
    KernelProfile kp;
    switch (GetParam()) {
      case 0: kp = gemmProfile(); break;
      case 1: kp = gatherProfile(1 << 22); break;
      case 2: kp = gatherProfile(1ull << 28); break;
      case 3:
        kp = gemmProfile();
        kp.dispatchOps = 18000;
        kp.dispatchCodeBytes = 20480;
        break;
      case 4:
        kp = gatherProfile(1 << 20);
        kp.serialSteps = 16;
        break;
      default: FAIL();
    }
    for (int i = 0; i < 3; ++i) {
        const CpuCounters c = cpu.simulateKernel(kp);
        ASSERT_NEAR(c.retireCycles + c.feCycles() + c.badSpecCycles +
                        c.beCycles(),
                    c.cycles, 1e-6 + c.cycles * 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Kernels, KernelMatrix, ::testing::Range(0, 5));

}  // namespace
}  // namespace recstack
