/**
 * @file
 * Unit tests for OperatorBreakdown.
 */

#include <gtest/gtest.h>

#include "core/breakdown.h"

namespace recstack {
namespace {

TEST(Breakdown, AccumulatesByType)
{
    OperatorBreakdown b;
    b.add("FC", 0.5);
    b.add("FC", 0.25);
    b.add("SparseLengthsSum", 0.25);
    EXPECT_DOUBLE_EQ(b.total(), 1.0);
    EXPECT_DOUBLE_EQ(b.fraction("FC"), 0.75);
    EXPECT_DOUBLE_EQ(b.fraction("SparseLengthsSum"), 0.25);
    EXPECT_DOUBLE_EQ(b.fraction("Missing"), 0.0);
}

TEST(Breakdown, DominantType)
{
    OperatorBreakdown b;
    EXPECT_EQ(b.dominantType(), "");
    b.add("Relu", 0.1);
    b.add("FC", 0.6);
    b.add("Concat", 0.3);
    EXPECT_EQ(b.dominantType(), "FC");
}

TEST(Breakdown, FractionsSortedDescending)
{
    OperatorBreakdown b;
    b.add("a", 0.2);
    b.add("b", 0.5);
    b.add("c", 0.3);
    const auto fracs = b.fractions();
    ASSERT_EQ(fracs.size(), 3u);
    EXPECT_EQ(fracs[0].first, "b");
    EXPECT_EQ(fracs[1].first, "c");
    EXPECT_EQ(fracs[2].first, "a");
    double sum = 0.0;
    for (const auto& [type, frac] : fracs) {
        sum += frac;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Breakdown, EmptyIsSafe)
{
    OperatorBreakdown b;
    EXPECT_DOUBLE_EQ(b.total(), 0.0);
    EXPECT_DOUBLE_EQ(b.fraction("x"), 0.0);
    EXPECT_TRUE(b.fractions().empty());
}

}  // namespace
}  // namespace recstack
