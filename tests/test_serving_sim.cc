/**
 * @file
 * Tests of the dynamic-batching serving simulator.
 */

#include <gtest/gtest.h>

#include "sched/serving_sim.h"

namespace recstack {
namespace {

class ServingTest : public ::testing::Test
{
  protected:
    ServingTest()
        : sweep_(allPlatforms(),
                 []() {
                     ModelOptions opts = tinyOptions();
                     opts.tableScale = 0.01;
                     return opts;
                 }()),
          sched_(&sweep_, {1, 16, 256, 4096})
    {
    }

    ServingStats run(ModelId model, size_t platform, double qps,
                     int64_t max_batch = 256,
                     double window = 1e-3, uint64_t seed = 42)
    {
        ServingSimulator sim(&sched_, model, platform);
        ServingConfig cfg;
        cfg.arrivalQps = qps;
        cfg.maxBatch = max_batch;
        cfg.maxWaitSeconds = window;
        cfg.simSeconds = 0.5;
        cfg.seed = seed;
        return sim.simulate(cfg);
    }

    SweepCache sweep_;
    QueryScheduler sched_;
};

TEST_F(ServingTest, ConservesSamples)
{
    const ServingStats s = run(ModelId::kNCF, 0, 2000);
    EXPECT_GT(s.samplesArrived, 0u);
    EXPECT_EQ(s.samplesServed, s.samplesArrived);
    EXPECT_EQ(s.droppedSamples, 0u);
    EXPECT_GT(s.batchesServed, 0u);
}

TEST_F(ServingTest, DrainCutoffAccountsDroppedSamples)
{
    // Regression: the drain loop hard-stops at 4x the arrival window;
    // severely over-saturated configs used to lose the still-queued
    // samples from every stat while counting them as arrived. Offer
    // ~12x the batch-1 capacity with no batching so the backlog
    // cannot clear within the cutoff.
    const double service = sched_.latency(ModelId::kRM2, 0, 1);
    const double qps = 12.0 / service;
    const ServingStats s =
        run(ModelId::kRM2, 0, qps, /*max_batch=*/1, /*window=*/0.0);
    EXPECT_GT(s.droppedSamples, 0u);
    EXPECT_EQ(s.samplesServed + s.droppedSamples, s.samplesArrived);
    EXPECT_GT(s.samplesServed, 0u);
}

TEST_F(ServingTest, OfferedLoadUnclampedAtSaturation)
{
    // Regression: utilization is clamped to 1, which used to hide
    // over-saturation entirely; offeredLoad reports the unclamped
    // demand. The drain tail runs past simSeconds, so demanded
    // service exceeds the arrival window.
    const double service = sched_.latency(ModelId::kRM2, 0, 1);
    const ServingStats s = run(ModelId::kRM2, 0, 6.0 / service,
                               /*max_batch=*/1, /*window=*/0.0);
    EXPECT_LE(s.utilization, 1.0);
    EXPECT_GT(s.offeredLoad, 1.0);

    // Light load: offered load stays under 1 and only exceeds the
    // clamped utilization by the (short) drain tail.
    const ServingStats light = run(ModelId::kNCF, 0, 500);
    EXPECT_LT(light.offeredLoad, 1.0);
    EXPECT_GE(light.offeredLoad, light.utilization);
}

TEST_F(ServingTest, StatisticsAreWellFormed)
{
    const ServingStats s = run(ModelId::kRM1, 0, 5000);
    EXPECT_GT(s.meanLatency, 0.0);
    EXPECT_LE(s.p50Latency, s.p95Latency);
    EXPECT_LE(s.p95Latency, s.p99Latency);
    EXPECT_GE(s.utilization, 0.0);
    EXPECT_LE(s.utilization, 1.0);
    EXPECT_GE(s.meanBatch, 1.0);
    EXPECT_LE(s.meanBatch, 256.0);
}

TEST_F(ServingTest, LatencyAtLeastServiceTime)
{
    const ServingStats s = run(ModelId::kWnD, 0, 100, 1, 0.0);
    // Batch-1 service latency bounds every sample's latency below.
    EXPECT_GE(s.p50Latency, sched_.latency(ModelId::kWnD, 0, 1) * 0.99);
}

TEST_F(ServingTest, Deterministic)
{
    const ServingStats a = run(ModelId::kRM2, 0, 3000);
    const ServingStats b = run(ModelId::kRM2, 0, 3000);
    EXPECT_EQ(a.samplesServed, b.samplesServed);
    EXPECT_DOUBLE_EQ(a.p99Latency, b.p99Latency);
}

TEST_F(ServingTest, TailGrowsWithLoad)
{
    const ServingStats light = run(ModelId::kRM1, 0, 1000);
    const ServingStats heavy = run(ModelId::kRM1, 0, 50000);
    EXPECT_GT(heavy.p99Latency, light.p99Latency);
    EXPECT_GT(heavy.meanBatch, light.meanBatch);
}

TEST_F(ServingTest, UtilizationGrowsWithLoad)
{
    const ServingStats light = run(ModelId::kNCF, 0, 500);
    const ServingStats heavy = run(ModelId::kNCF, 0, 20000);
    EXPECT_GT(heavy.utilization, light.utilization);
}

TEST_F(ServingTest, BiggerBatchCapRaisesThroughputCeiling)
{
    // At overload, a larger batching cap serves more samples/second:
    // on a GPU the per-kernel launch overhead amortizes with batch.
    const ServingStats small_cap =
        run(ModelId::kWnD, 3, 2.0e5, /*max_batch=*/8);
    const ServingStats big_cap =
        run(ModelId::kWnD, 3, 2.0e5, /*max_batch=*/1024);
    EXPECT_GT(big_cap.throughputQps, small_cap.throughputQps * 1.5);
}

TEST_F(ServingTest, WindowTradesLatencyForBatching)
{
    const ServingStats eager =
        run(ModelId::kRM1, 0, 2000, 256, /*window=*/0.0);
    const ServingStats patient =
        run(ModelId::kRM1, 0, 2000, 256, /*window=*/20e-3);
    EXPECT_GT(patient.meanBatch, eager.meanBatch);
    EXPECT_GT(patient.p50Latency, eager.p50Latency);
}

TEST_F(ServingTest, RejectsBadConfig)
{
    ServingSimulator sim(&sched_, ModelId::kNCF, 0);
    ServingConfig cfg;
    cfg.arrivalQps = 0.0;
    EXPECT_DEATH(sim.simulate(cfg), "arrival rate");
    EXPECT_DEATH(ServingSimulator(nullptr, ModelId::kNCF, 0),
                 "needs a scheduler");
}

}  // namespace
}  // namespace recstack
