/**
 * @file
 * Tests for NetDef validation and the Executor.
 */

#include <gtest/gtest.h>

#include "graph/executor.h"
#include "ops/elementwise.h"
#include "ops/fc.h"

namespace recstack {
namespace {

NetDef
smallNet()
{
    NetDef net("small");
    net.addExternalInput("x");
    net.addExternalInput("w");
    net.addExternalInput("b");
    net.addOp(makeFC("fc", "x", "w", "b", "h"));
    net.addOp(makeRelu("relu", "h", "y"));
    net.addExternalOutput("y");
    return net;
}

TEST(NetDef, ValidatePasses)
{
    NetDef net = smallNet();
    net.validate();  // must not panic
    EXPECT_EQ(net.opCount(), 2u);
}

TEST(NetDef, ValidateCatchesUndefinedInput)
{
    NetDef net("bad");
    net.addOp(makeRelu("relu", "ghost", "y"));
    EXPECT_DEATH(net.validate(), "undefined blob");
}

TEST(NetDef, ValidateCatchesMissingOutput)
{
    NetDef net("bad");
    net.addExternalInput("x");
    net.addOp(makeRelu("relu", "x", "y"));
    net.addExternalOutput("z");
    EXPECT_DEATH(net.validate(), "never produced");
}

TEST(NetDef, ValidateCatchesOrderViolation)
{
    NetDef net("bad");
    net.addExternalInput("x");
    // Consumer before producer.
    net.addOp(makeRelu("r2", "mid", "y"));
    net.addOp(makeRelu("r1", "x", "mid"));
    EXPECT_DEATH(net.validate(), "undefined blob");
}

TEST(NetDef, ValidateCatchesDuplicateProducer)
{
    // Single-assignment is what lets the memory planner derive one
    // [def, lastUse] interval per blob.
    NetDef net("bad");
    net.addExternalInput("x");
    net.addOp(makeRelu("r1", "x", "y"));
    net.addOp(makeSigmoid("r2", "x", "y"));
    EXPECT_DEATH(net.validate(), "second producer");
}

TEST(NetDef, ValidateCatchesOverwrittenExternalInput)
{
    NetDef net("bad");
    net.addExternalInput("x");
    net.addOp(makeRelu("r1", "x", "x"));
    EXPECT_DEATH(net.validate(), "overwrites external input");
}

TEST(NetDef, ValidateCatchesDuplicateExternalInput)
{
    NetDef net("bad");
    net.addExternalInput("x");
    net.addExternalInput("x");
    EXPECT_DEATH(net.validate(), "declared twice");
}

TEST(NetDef, ValidateCatchesDuplicateExternalOutput)
{
    NetDef net("bad");
    net.addExternalInput("x");
    net.addOp(makeRelu("r1", "x", "y"));
    net.addExternalOutput("y");
    net.addExternalOutput("y");
    EXPECT_DEATH(net.validate(), "declared twice");
}

TEST(NetDef, SummaryCountsTypes)
{
    const std::string s = smallNet().summary();
    EXPECT_NE(s.find("FC: 1"), std::string::npos);
    EXPECT_NE(s.find("Relu: 1"), std::string::npos);
    EXPECT_NE(s.find("2 ops"), std::string::npos);
}

TEST(Executor, FullModeComputesAndProfiles)
{
    NetDef net = smallNet();
    Workspace ws;
    ws.set("x", Tensor::fromFloats({1, 2}, {1, -1}));
    ws.set("w", Tensor::fromFloats({2, 2}, {1, 1, 1, -1}));
    ws.set("b", Tensor::fromFloats({2}, {0, 0}));

    const NetExecResult result = Executor::run(net, ws, ExecMode::kFull);
    ASSERT_EQ(result.records.size(), 2u);
    EXPECT_EQ(result.records[0].profile.opType, "FC");
    EXPECT_EQ(result.records[1].profile.opType, "Relu");
    EXPECT_GE(result.hostSeconds, 0.0);

    // h = [0, 2]; relu -> [0, 2].
    EXPECT_FLOAT_EQ(ws.get("y").at({0, 0}), 0.0f);
    EXPECT_FLOAT_EQ(ws.get("y").at({0, 1}), 2.0f);
}

TEST(Executor, ProfileOnlySkipsNumerics)
{
    NetDef net = smallNet();
    Workspace ws;
    ws.setShapeOnly(true);
    ws.set("x", Tensor::shapeOnly({4, 2}));
    ws.set("w", Tensor::shapeOnly({2, 2}));
    ws.set("b", Tensor::shapeOnly({2}));

    const NetExecResult result =
        Executor::run(net, ws, ExecMode::kProfileOnly);
    ASSERT_EQ(result.records.size(), 2u);
    // Outputs exist as shape-only blobs.
    EXPECT_FALSE(ws.get("y").materialized());
    EXPECT_EQ(ws.get("y").shape(), (std::vector<int64_t>{4, 2}));
    // Numeric timing must be zero in profile-only mode.
    EXPECT_EQ(result.records[0].hostSeconds, 0.0);
}

TEST(Executor, NumericOnlySkipsProfileLowering)
{
    NetDef net = smallNet();
    Workspace ws;
    ws.set("x", Tensor::fromFloats({1, 2}, {1, -1}));
    ws.set("w", Tensor::fromFloats({2, 2}, {1, 1, 1, -1}));
    ws.set("b", Tensor::fromFloats({2}, {0, 0}));

    const NetExecResult result =
        Executor::run(net, ws, ExecMode::kNumericOnly);
    ASSERT_EQ(result.records.size(), 2u);
    // Numerics ran...
    EXPECT_FLOAT_EQ(ws.get("y").at({0, 0}), 0.0f);
    EXPECT_FLOAT_EQ(ws.get("y").at({0, 1}), 2.0f);
    // ...but no profiles were lowered (the serving engine prices
    // latency from the characterization grid instead).
    EXPECT_TRUE(result.records[0].profile.opType.empty());
    EXPECT_EQ(result.records[0].profile.fmaFlops, 0u);
}

TEST(Executor, ProfileOnlyMatchesFullModeProfiles)
{
    // The same net must yield identical workload descriptors whether
    // or not numerics ran (the platform models depend on this).
    NetDef net_a = smallNet();
    Workspace full;
    full.set("x", Tensor({4, 2}));
    full.set("w", Tensor({2, 2}));
    full.set("b", Tensor({2}));
    const auto ra = Executor::run(net_a, full, ExecMode::kFull);

    NetDef net_b = smallNet();
    Workspace shape;
    shape.setShapeOnly(true);
    shape.set("x", Tensor::shapeOnly({4, 2}));
    shape.set("w", Tensor::shapeOnly({2, 2}));
    shape.set("b", Tensor::shapeOnly({2}));
    const auto rb = Executor::run(net_b, shape, ExecMode::kProfileOnly);

    ASSERT_EQ(ra.records.size(), rb.records.size());
    for (size_t i = 0; i < ra.records.size(); ++i) {
        const KernelProfile& a = ra.records[i].profile;
        const KernelProfile& b = rb.records[i].profile;
        EXPECT_EQ(a.fmaFlops, b.fmaFlops);
        EXPECT_EQ(a.vecElemOps, b.vecElemOps);
        EXPECT_EQ(a.scalarOps, b.scalarOps);
        EXPECT_EQ(a.streams.size(), b.streams.size());
        EXPECT_EQ(a.codeFootprintBytes, b.codeFootprintBytes);
    }
}

TEST(Executor, UniqueCodeOverrideApplied)
{
    NetDef net("unique");
    net.addExternalInput("x");
    net.addOp(makeRelu("special", "x", "y"));
    net.ops().back()->setUniqueCodeBytes(512);
    Workspace ws;
    ws.set("x", Tensor({2, 2}));
    const auto result = Executor::run(net, ws, ExecMode::kFull);
    EXPECT_EQ(result.records[0].profile.codeRegion, "op:special");
    EXPECT_EQ(result.records[0].profile.codeFootprintBytes, 512u);
}

TEST(Executor, RepeatedRunsReuseWorkspace)
{
    NetDef net = smallNet();
    Workspace ws;
    ws.set("x", Tensor::fromFloats({1, 2}, {2, 2}));
    ws.set("w", Tensor::fromFloats({2, 2}, {1, 0, 0, 1}));
    ws.set("b", Tensor::fromFloats({2}, {0, 0}));
    Executor::run(net, ws, ExecMode::kFull);
    const float first = ws.get("y").at({0, 0});
    Executor::run(net, ws, ExecMode::kFull);
    EXPECT_FLOAT_EQ(ws.get("y").at({0, 0}), first);
}

}  // namespace
}  // namespace recstack
