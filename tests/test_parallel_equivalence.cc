/**
 * @file
 * Differential harness for intra-op parallelism, parameterized over
 * the {ISA × thread-width} matrix: for every model builder and every
 * kernel tier, Executor::run at 1 thread must be bit-identical to N
 * threads — every float of every blob, and every KernelProfile
 * aggregate. This is the determinism contract of the chunked-range
 * pool (disjoint-output partitioning, no cross-chunk reductions;
 * docs/parallelism.md) and it must hold per tier: vector kernels may
 * reorder accumulation relative to scalar (docs/vectorization.md),
 * but never relative to themselves across thread counts. Tiers the
 * host cannot execute skip rather than silently demoting to scalar.
 *
 * Runs under RECSTACK_SANITIZE=thread as well (ctest -L sanitize):
 * the same executions that prove bit-equality also race-check the
 * pool and every parallel kernel on both tiers.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <tuple>

#include "common/cpu_features.h"
#include "common/thread_pool.h"
#include "graph/executor.h"
#include "models/model.h"
#include "serve/serving_engine.h"

namespace recstack {
namespace {

ModelOptions
testOptions()
{
    ModelOptions opts = tinyOptions();
    opts.tableScale = 0.01;
    return opts;
}

/** Bitwise tensor equality, any dtype. */
void
expectTensorsIdentical(const std::string& blob, const Tensor& a,
                       const Tensor& b)
{
    ASSERT_EQ(a.shape(), b.shape()) << "blob " << blob;
    ASSERT_EQ(a.dtype(), b.dtype()) << "blob " << blob;
    const void* pa = nullptr;
    const void* pb = nullptr;
    switch (a.dtype()) {
      case DType::kFloat32:
        pa = a.data<float>();
        pb = b.data<float>();
        break;
      case DType::kInt32:
        pa = a.data<int32_t>();
        pb = b.data<int32_t>();
        break;
      case DType::kInt64:
        pa = a.data<int64_t>();
        pb = b.data<int64_t>();
        break;
    }
    EXPECT_EQ(std::memcmp(pa, pb, a.byteSize()), 0)
        << "blob '" << blob << "' diverges between 1 and N threads";
}

void
expectStreamsIdentical(const MemStream& a, const MemStream& b)
{
    EXPECT_EQ(a.region, b.region);
    EXPECT_EQ(a.pattern, b.pattern);
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.chunkBytes, b.chunkBytes);
    EXPECT_EQ(a.footprintBytes, b.footprintBytes);
    EXPECT_EQ(a.strideBytes, b.strideBytes);
    EXPECT_EQ(a.isWrite, b.isWrite);
    EXPECT_DOUBLE_EQ(a.zipfExponent, b.zipfExponent);
    EXPECT_DOUBLE_EQ(a.mlp, b.mlp);
}

/** Full KernelProfile equality (profiles must not see thread count). */
void
expectProfilesIdentical(const KernelProfile& a, const KernelProfile& b)
{
    EXPECT_EQ(a.opType, b.opType);
    EXPECT_EQ(a.opName, b.opName);
    EXPECT_EQ(a.fmaFlops, b.fmaFlops);
    EXPECT_EQ(a.vecElemOps, b.vecElemOps);
    EXPECT_EQ(a.scalarOps, b.scalarOps);
    EXPECT_EQ(a.simdScalableOps, b.simdScalableOps);
    EXPECT_EQ(a.reloadLoadElems, b.reloadLoadElems);
    EXPECT_EQ(a.codeFootprintBytes, b.codeFootprintBytes);
    EXPECT_EQ(a.codeRegion, b.codeRegion);
    EXPECT_EQ(a.codeIterations, b.codeIterations);
    EXPECT_EQ(a.serialSteps, b.serialSteps);
    EXPECT_EQ(a.gemmWidth, b.gemmWidth);
    EXPECT_EQ(a.dispatchOps, b.dispatchOps);
    EXPECT_EQ(a.dispatchCodeBytes, b.dispatchCodeBytes);
    EXPECT_EQ(a.totalBranches(), b.totalBranches());
    EXPECT_EQ(a.bytesRead(), b.bytesRead());
    EXPECT_EQ(a.bytesWritten(), b.bytesWritten());
    ASSERT_EQ(a.streams.size(), b.streams.size());
    for (size_t i = 0; i < a.streams.size(); ++i) {
        expectStreamsIdentical(a.streams[i], b.streams[i]);
    }
    ASSERT_EQ(a.branches.size(), b.branches.size());
    for (size_t i = 0; i < a.branches.size(); ++i) {
        EXPECT_EQ(a.branches[i].count, b.branches[i].count);
        EXPECT_DOUBLE_EQ(a.branches[i].takenProbability,
                         b.branches[i].takenProbability);
        EXPECT_DOUBLE_EQ(a.branches[i].randomness,
                         b.branches[i].randomness);
        EXPECT_EQ(a.branches[i].scalesWithSimd,
                  b.branches[i].scalesWithSimd);
    }
}

/** One full-numerics run at the given width; fresh workspace. */
NetExecResult
runAt(const Model& model, int num_threads, int64_t batch, Workspace* ws)
{
    model.initParams(*ws);
    BatchGenerator gen(model.workload, /*seed=*/1234);
    gen.materialize(*ws, batch);
    ExecOptions opts;
    opts.mode = ExecMode::kFull;
    opts.numThreads = num_threads;
    return Executor::run(model.net, *ws, opts);
}

class ParallelEquivalence
    : public ::testing::TestWithParam<std::tuple<ModelId, int, KernelIsa>>
{
};

TEST_P(ParallelEquivalence, BitIdenticalAcrossThreadCounts)
{
    const ModelId id = std::get<0>(GetParam());
    const int threads = std::get<1>(GetParam());
    const KernelIsa isa = std::get<2>(GetParam());
    const int64_t batch = 16;

    if (!kernelIsaSupported(isa)) {
        GTEST_SKIP() << kernelIsaName(isa)
                     << " tier unsupported on this host/build";
    }
    IsaScope tier(isa);

    const Model model = buildModel(id, testOptions());

    Workspace serial_ws;
    const NetExecResult serial = runAt(model, 1, batch, &serial_ws);
    Workspace parallel_ws;
    const NetExecResult parallel =
        runAt(model, threads, batch, &parallel_ws);

    // Every blob the two runs produced — outputs and every
    // intermediate — must agree to the bit.
    std::vector<std::string> blobs = serial_ws.names();
    ASSERT_EQ(blobs.size(), parallel_ws.names().size());
    for (const std::string& blob : blobs) {
        ASSERT_TRUE(parallel_ws.has(blob)) << blob;
        expectTensorsIdentical(blob, serial_ws.get(blob),
                               parallel_ws.get(blob));
    }
    ASSERT_TRUE(serial_ws.has(model.outputBlob));

    // And the KernelProfile aggregates must be identical: the
    // platform models may never observe the thread count.
    ASSERT_EQ(serial.records.size(), parallel.records.size());
    ASSERT_EQ(serial.records.size(), model.net.opCount());
    for (size_t i = 0; i < serial.records.size(); ++i) {
        expectProfilesIdentical(serial.records[i].profile,
                                parallel.records[i].profile);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ParallelEquivalence,
    ::testing::Combine(::testing::Values(ModelId::kNCF, ModelId::kRM1,
                                         ModelId::kRM2, ModelId::kRM3,
                                         ModelId::kWnD, ModelId::kMTWnD,
                                         ModelId::kDIN, ModelId::kDIEN),
                       ::testing::Values(2, 8),
                       ::testing::Values(KernelIsa::kScalar,
                                         KernelIsa::kAvx2)),
    [](const ::testing::TestParamInfo<std::tuple<ModelId, int, KernelIsa>>&
           info) {
        std::string name = modelName(std::get<0>(info.param));
        for (char& c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c))) {
                c = '_';  // "MT-WnD" -> "MT_WnD"
            }
        }
        return name + "_t" + std::to_string(std::get<1>(info.param)) +
               "_" + kernelIsaName(std::get<2>(info.param));
    });

/** Both tiers the host supports, for the variant tests below. */
std::vector<KernelIsa>
supportedIsas()
{
    std::vector<KernelIsa> isas = {KernelIsa::kScalar};
    if (kernelIsaSupported(KernelIsa::kAvx2)) {
        isas.push_back(KernelIsa::kAvx2);
    }
    return isas;
}

/** The position-weighted DLRM variant exercises SLWS. */
TEST(ParallelEquivalenceVariants, PositionWeightedRm1)
{
    ModelOptions opts = testOptions();
    opts.positionWeighted = true;
    const Model model = buildModel(ModelId::kRM1, opts);
    for (const KernelIsa isa : supportedIsas()) {
        SCOPED_TRACE(kernelIsaName(isa));
        IsaScope tier(isa);
        Workspace a;
        runAt(model, 1, 16, &a);
        Workspace b;
        runAt(model, 8, 16, &b);
        for (const std::string& blob : a.names()) {
            expectTensorsIdentical(blob, a.get(blob), b.get(blob));
        }
    }
}

/** The fused-GRU DIEN variant exercises the batched GRU steps. */
TEST(ParallelEquivalenceVariants, FusedGruDien)
{
    ModelOptions opts = testOptions();
    opts.dienFusedGru = true;
    const Model model = buildModel(ModelId::kDIEN, opts);
    for (const KernelIsa isa : supportedIsas()) {
        SCOPED_TRACE(kernelIsaName(isa));
        IsaScope tier(isa);
        Workspace a;
        runAt(model, 1, 16, &a);
        Workspace b;
        runAt(model, 8, 16, &b);
        for (const std::string& blob : a.names()) {
            expectTensorsIdentical(blob, a.get(blob), b.get(blob));
        }
    }
}

/** Serving engine: virtual-time stats are width-invariant too. */
TEST(ParallelEquivalenceVariants, EngineStatsInvariantInWidth)
{
    // Same model, same config, different intra-op widths: every
    // virtual-time statistic must be identical (only hostSeconds may
    // move). Numeric mode so kernels genuinely run on the pool.
    SweepCache sweep(allPlatforms(), [] {
        ModelOptions opts = tinyOptions();
        opts.tableScale = 0.01;
        return opts;
    }());
    QueryScheduler sched(&sweep, {1, 16, 256, 4096});
    ServingEngine engine(&sched, ModelId::kNCF, 0);
    EngineConfig cfg;
    cfg.numWorkers = 2;
    cfg.arrivalQps = 2000;
    cfg.maxBatch = 64;
    cfg.simSeconds = 0.25;
    cfg.execMode = ExecMode::kNumericOnly;
    cfg.numThreads = 1;
    const EngineResult serial = engine.run(cfg);
    cfg.numThreads = 8;
    const EngineResult wide = engine.run(cfg);
    EXPECT_EQ(serial.aggregate.samplesServed,
              wide.aggregate.samplesServed);
    EXPECT_EQ(serial.aggregate.batchesServed,
              wide.aggregate.batchesServed);
    EXPECT_DOUBLE_EQ(serial.aggregate.meanLatency,
                     wide.aggregate.meanLatency);
    EXPECT_DOUBLE_EQ(serial.aggregate.p99Latency,
                     wide.aggregate.p99Latency);
    EXPECT_EQ(wide.intraOpThreads, 8);
    EXPECT_GT(wide.hostSecondsPerBatch, 0.0);
}

}  // namespace
}  // namespace recstack
