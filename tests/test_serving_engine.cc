/**
 * @file
 * Tests of the multi-worker serving engine: agreement with the
 * analytical simulator at one worker, determinism under real thread
 * interleaving, contention coupling, and batch-queue semantics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>

#include "serve/batch_queue.h"
#include "serve/serving_engine.h"
#include "serve/serving_node.h"

namespace recstack {
namespace {

class ServingEngineTest : public ::testing::Test
{
  protected:
    ServingEngineTest()
        : sweep_(allPlatforms(),
                 []() {
                     ModelOptions opts = tinyOptions();
                     opts.tableScale = 0.01;
                     return opts;
                 }()),
          sched_(&sweep_, {1, 16, 256, 4096})
    {
    }

    EngineResult run(ModelId model, size_t platform, int workers,
                     double qps, int64_t max_batch = 256,
                     double window = 1e-3, uint64_t seed = 42,
                     ExecMode mode = ExecMode::kProfileOnly)
    {
        ServingEngine engine(&sched_, model, platform);
        EngineConfig cfg;
        cfg.numWorkers = workers;
        cfg.arrivalQps = qps;
        cfg.maxBatch = max_batch;
        cfg.maxWaitSeconds = window;
        cfg.simSeconds = 0.25;
        cfg.seed = seed;
        cfg.execMode = mode;
        return engine.run(cfg);
    }

    ServingStats simulate(ModelId model, size_t platform, double qps,
                          int64_t max_batch = 256, double window = 1e-3)
    {
        ServingSimulator sim(&sched_, model, platform);
        ServingConfig cfg;
        cfg.arrivalQps = qps;
        cfg.maxBatch = max_batch;
        cfg.maxWaitSeconds = window;
        cfg.simSeconds = 0.25;
        return sim.simulate(cfg);
    }

    SweepCache sweep_;
    QueryScheduler sched_;
};

TEST_F(ServingEngineTest, OneWorkerMatchesAnalyticalSimulator)
{
    const ServingStats sim = simulate(ModelId::kRM1, 0, 4000);
    const EngineResult eng = run(ModelId::kRM1, 0, 1, 4000);
    EXPECT_EQ(eng.aggregate.samplesArrived, sim.samplesArrived);
    EXPECT_EQ(eng.aggregate.samplesServed, sim.samplesServed);
    EXPECT_EQ(eng.aggregate.batchesServed, sim.batchesServed);
    EXPECT_NEAR(eng.aggregate.meanLatency, sim.meanLatency,
                sim.meanLatency * 0.05);
    EXPECT_NEAR(eng.aggregate.p99Latency, sim.p99Latency,
                sim.p99Latency * 0.05);
    EXPECT_NEAR(eng.aggregate.throughputQps, sim.throughputQps,
                sim.throughputQps * 0.05);
    EXPECT_DOUBLE_EQ(eng.meanSlowdown, 1.0);
}

TEST_F(ServingEngineTest, DeterministicAcrossThreadInterleavings)
{
    // Virtual-time ordering makes every stat (host wall time aside) a
    // pure function of the config, no matter how the OS schedules the
    // four worker threads.
    const EngineResult a = run(ModelId::kRM1, 0, 4, 20000);
    const EngineResult b = run(ModelId::kRM1, 0, 4, 20000);
    EXPECT_EQ(a.aggregate.samplesArrived, b.aggregate.samplesArrived);
    EXPECT_EQ(a.aggregate.samplesServed, b.aggregate.samplesServed);
    EXPECT_EQ(a.aggregate.batchesServed, b.aggregate.batchesServed);
    EXPECT_DOUBLE_EQ(a.aggregate.meanLatency, b.aggregate.meanLatency);
    EXPECT_DOUBLE_EQ(a.aggregate.p99Latency, b.aggregate.p99Latency);
    EXPECT_DOUBLE_EQ(a.meanSlowdown, b.meanSlowdown);
    ASSERT_EQ(a.perWorker.size(), b.perWorker.size());
    for (size_t w = 0; w < a.perWorker.size(); ++w) {
        EXPECT_EQ(a.perWorker[w].samplesServed,
                  b.perWorker[w].samplesServed);
        EXPECT_DOUBLE_EQ(a.perWorker[w].p99Latency,
                         b.perWorker[w].p99Latency);
    }
}

TEST_F(ServingEngineTest, PerWorkerStatsSumToAggregate)
{
    const EngineResult r = run(ModelId::kNCF, 0, 3, 10000);
    uint64_t served = 0;
    uint64_t batches = 0;
    for (const ServingStats& w : r.perWorker) {
        served += w.samplesServed;
        batches += w.batchesServed;
    }
    EXPECT_EQ(served, r.aggregate.samplesServed);
    EXPECT_EQ(batches, r.aggregate.batchesServed);
    // The engine drains the whole stream: nothing arrives unserved.
    EXPECT_EQ(r.aggregate.samplesServed, r.aggregate.samplesArrived);
    EXPECT_EQ(r.aggregate.droppedSamples, 0u);
    EXPECT_EQ(r.batchesExecuted, r.aggregate.batchesServed);
}

TEST_F(ServingEngineTest, MoreWorkersRaiseSaturatedThroughput)
{
    // Offer well beyond one worker's capacity; extra workers must
    // lift aggregate throughput even with contention inflation.
    const double cap1 =
        256.0 / sched_.latency(ModelId::kRM1, 0, 256);
    const double qps = 3.0 * cap1;
    const EngineResult w1 = run(ModelId::kRM1, 0, 1, qps);
    const EngineResult w2 = run(ModelId::kRM1, 0, 2, qps);
    const EngineResult w4 = run(ModelId::kRM1, 0, 4, qps);
    EXPECT_GT(w2.aggregate.throughputQps,
              w1.aggregate.throughputQps * 1.2);
    EXPECT_GE(w4.aggregate.throughputQps,
              w2.aggregate.throughputQps);
    // And the backlog clears sooner: tails shrink with capacity.
    EXPECT_LT(w4.aggregate.p99Latency, w1.aggregate.p99Latency);
}

TEST_F(ServingEngineTest, ContentionInflatesServiceWithOccupancy)
{
    const double cap1 =
        256.0 / sched_.latency(ModelId::kRM2, 0, 256);
    const EngineResult solo = run(ModelId::kRM2, 0, 1, 2.0 * cap1);
    const EngineResult packed = run(ModelId::kRM2, 0, 8, 8.0 * cap1);
    EXPECT_DOUBLE_EQ(solo.meanSlowdown, 1.0);
    EXPECT_GE(packed.meanSlowdown, 1.0);
    EXPECT_GT(packed.maxSlowdown, 1.0);
    // Contention never prices below the co-location model's floor.
    EXPECT_LE(packed.maxSlowdown, 64.0);
}

TEST_F(ServingEngineTest, ContentionCanBeDisabled)
{
    ServingEngine engine(&sched_, ModelId::kRM2, 0);
    EngineConfig cfg;
    cfg.numWorkers = 4;
    cfg.arrivalQps = 50000;
    cfg.simSeconds = 0.1;
    cfg.modelContention = false;
    const EngineResult r = engine.run(cfg);
    EXPECT_DOUBLE_EQ(r.meanSlowdown, 1.0);
    EXPECT_DOUBLE_EQ(r.maxSlowdown, 1.0);
}

TEST_F(ServingEngineTest, RealNumericsModeExecutesTheNet)
{
    const EngineResult r =
        run(ModelId::kNCF, 0, 2, 2000, 64, 1e-3, 42,
            ExecMode::kNumericOnly);
    EXPECT_GT(r.batchesExecuted, 0u);
    EXPECT_GT(r.hostSeconds, 0.0);  // real kernels ran on the workers
    EXPECT_GT(r.aggregate.meanLatency, 0.0);
}

TEST_F(ServingEngineTest, GpuPlatformHasNoSocketContention)
{
    // Platform 3 is the T4: co-located workers model independent
    // devices, so no shared-socket inflation applies.
    const EngineResult r = run(ModelId::kWnD, 3, 4, 50000);
    EXPECT_DOUBLE_EQ(r.meanSlowdown, 1.0);
    EXPECT_GT(r.aggregate.samplesServed, 0u);
}

TEST_F(ServingEngineTest, CompilesTheModelOnceAcrossWorkersAndRuns)
{
    // All workers execute through one shared CompiledNet; a second
    // run() must reuse it rather than recompile. Counted via the
    // global compile counter (delta, not absolute: the fixture's
    // characterizer compiles profile nets of its own) and by pointer
    // identity of the engine's compiled net.
    EngineConfig cfg;
    cfg.numWorkers = 4;
    cfg.arrivalQps = 2000;
    cfg.maxBatch = 64;
    cfg.simSeconds = 0.1;
    cfg.execMode = ExecMode::kNumericOnly;

    // Warm the characterizer's lazy per-model compilations so the
    // counter delta below isolates the engine's own compile.
    ServingEngine warmup(&sched_, ModelId::kNCF, 0);
    warmup.run(cfg);

    ServingEngine engine(&sched_, ModelId::kNCF, 0);
    EXPECT_EQ(engine.compiled(), nullptr);
    const uint64_t before = CompiledNet::compileCount();
    engine.run(cfg);
    const std::shared_ptr<const CompiledNet> first = engine.compiled();
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(CompiledNet::compileCount(), before + 1)
        << "4 workers must share one compilation";

    engine.run(cfg);
    EXPECT_EQ(engine.compiled(), first);
    EXPECT_EQ(CompiledNet::compileCount(), before + 1)
        << "second run must reuse the compiled net";
}

TEST_F(ServingEngineTest, SharedStoreKeepsTableMemoryOffWorkerCount)
{
    // Regression for per-worker weight materialization: N numeric
    // workers used to initParams() N private table copies. With the
    // shared store the resident table footprint must be one backing
    // copy plus the (configurable) hot-row caches — O(1 copy + cache),
    // not O(workers).
    ServingEngine engine(&sched_, ModelId::kRM2, 0);
    EngineConfig cfg;
    cfg.numWorkers = 4;
    cfg.arrivalQps = 2000;
    cfg.maxBatch = 64;
    cfg.simSeconds = 0.1;
    cfg.execMode = ExecMode::kNumericOnly;
    cfg.storeConfig.numShards = 2;
    cfg.storeConfig.cacheBytesPerShard = 0;  // isolate the copy count
    const EngineResult r = engine.run(cfg);

    EXPECT_TRUE(r.storeShared);
    EXPECT_GT(r.tableBytesOneCopy, 0u);
    EXPECT_EQ(r.perWorkerTableBytes, 4 * r.tableBytesOneCopy);
    EXPECT_EQ(r.residentTableBytes, r.tableBytesOneCopy);
    // The acceptance bound: sharing saves >= (workers-1)/workers of
    // the per-worker baseline.
    const double saved =
        static_cast<double>(r.perWorkerTableBytes -
                            r.residentTableBytes) /
        static_cast<double>(r.perWorkerTableBytes);
    EXPECT_GE(saved, 3.0 / 4.0);
    // The workers really read through the store.
    EXPECT_GT(r.storeStats.total.lookups, 0u);

    // With caches enabled the footprint grows by at most the cache
    // capacity, still independent of the worker count.
    EngineConfig cached = cfg;
    cached.storeConfig.cacheBytesPerShard = 4u << 10;
    ServingEngine cached_engine(&sched_, ModelId::kRM2, 0);
    const EngineResult rc = cached_engine.run(cached);
    EXPECT_TRUE(rc.storeShared);
    EXPECT_LE(rc.residentTableBytes,
              rc.tableBytesOneCopy +
                  2ull * cached.storeConfig.cacheBytesPerShard);
    EXPECT_GT(rc.storeStats.total.hits, 0u);
}

TEST_F(ServingEngineTest, DisableHatchRestoresPerWorkerCopies)
{
    EngineConfig cfg;
    cfg.numWorkers = 3;
    cfg.arrivalQps = 2000;
    cfg.maxBatch = 64;
    cfg.simSeconds = 0.1;
    cfg.execMode = ExecMode::kNumericOnly;

    ServingEngine store_engine(&sched_, ModelId::kNCF, 0);
    const EngineResult with_store = store_engine.run(cfg);

    ASSERT_EQ(setenv("RECSTACK_DISABLE_STORE", "1", 1), 0);
    ServingEngine dense_engine(&sched_, ModelId::kNCF, 0);
    const EngineResult dense = dense_engine.run(cfg);
    ASSERT_EQ(unsetenv("RECSTACK_DISABLE_STORE"), 0);

    EXPECT_TRUE(with_store.storeShared);
    EXPECT_FALSE(dense.storeShared);
    EXPECT_EQ(dense.residentTableBytes, dense.perWorkerTableBytes);
    EXPECT_EQ(dense.storeStats.total.lookups, 0u);
    // The store is a memory-layout change only: the virtual-time
    // serving statistics are identical either way.
    EXPECT_EQ(with_store.aggregate.samplesServed,
              dense.aggregate.samplesServed);
    EXPECT_EQ(with_store.aggregate.batchesServed,
              dense.aggregate.batchesServed);
    EXPECT_DOUBLE_EQ(with_store.aggregate.meanLatency,
                     dense.aggregate.meanLatency);
    EXPECT_DOUBLE_EQ(with_store.aggregate.p99Latency,
                     dense.aggregate.p99Latency);
}

TEST_F(ServingEngineTest, RejectsBadConfig)
{
    ServingEngine engine(&sched_, ModelId::kNCF, 0);
    EngineConfig bad;
    bad.numWorkers = 0;
    EXPECT_DEATH(engine.run(bad), "at least one worker");
    EngineConfig bad_qps;
    bad_qps.arrivalQps = 0.0;
    EXPECT_DEATH(engine.run(bad_qps), "arrival rate");
    EXPECT_DEATH(ServingEngine(nullptr, ModelId::kNCF, 0),
                 "needs a scheduler");
    EXPECT_DEATH(ServingEngine(&sched_, ModelId::kNCF, 99),
                 "platform index");
}

TEST_F(ServingEngineTest, HeterogeneousNoThresholdMatchesLegacyStats)
{
    // With the lane enabled but no threshold set (kNoGpuThreshold =
    // route nothing), every batch still lands on the CPU workers and
    // the serving stats must match the legacy path exactly. Only the
    // capacity-normalized fields (utilization / offeredLoad) may
    // differ: the heterogeneous aggregate divides by numWorkers + 1
    // servers by contract.
    const EngineResult off = run(ModelId::kRM1, 0, 2, 8000);
    ServingEngine engine(&sched_, ModelId::kRM1, 0);
    EngineConfig cfg;
    cfg.numWorkers = 2;
    cfg.arrivalQps = 8000;
    cfg.simSeconds = 0.25;
    cfg.heterogeneous = true;
    const EngineResult on = engine.run(cfg);

    EXPECT_TRUE(on.heterogeneous);
    EXPECT_FALSE(off.heterogeneous);
    EXPECT_EQ(on.gpuThreshold, QueryScheduler::kNoGpuThreshold);
    EXPECT_EQ(on.deferredTickets, 0u);
    EXPECT_EQ(on.gpuLaneStats.samplesServed, 0u);
    EXPECT_EQ(on.gpuLaneStats.batchesServed, 0u);
    EXPECT_EQ(off.aggregate.samplesArrived, on.aggregate.samplesArrived);
    EXPECT_EQ(off.aggregate.samplesServed, on.aggregate.samplesServed);
    EXPECT_EQ(off.aggregate.batchesServed, on.aggregate.batchesServed);
    EXPECT_DOUBLE_EQ(off.aggregate.meanLatency,
                     on.aggregate.meanLatency);
    EXPECT_DOUBLE_EQ(off.aggregate.p99Latency, on.aggregate.p99Latency);
    EXPECT_DOUBLE_EQ(off.aggregate.throughputQps,
                     on.aggregate.throughputQps);
    EXPECT_DOUBLE_EQ(off.meanSlowdown, on.meanSlowdown);
}

TEST_F(ServingEngineTest, HeterogeneousRoutesLargeBatchesToLane)
{
    sched_.setGpuThreshold(ModelId::kRM1, 32);
    ServingEngine engine(&sched_, ModelId::kRM1, 0);
    EngineConfig cfg;
    cfg.numWorkers = 2;
    cfg.arrivalQps = 40000;  // ~40 samples per 1 ms window
    cfg.simSeconds = 0.25;
    cfg.heterogeneous = true;
    const EngineResult r = engine.run(cfg);

    EXPECT_TRUE(r.heterogeneous);
    EXPECT_EQ(r.gpuThreshold, 32);
    EXPECT_GT(r.deferredTickets, 0u);
    EXPECT_GT(r.gpuLaneStats.samplesServed, 0u);
    EXPECT_GT(r.gpuLaneStats.batchesServed, 0u);
    EXPECT_GT(r.gpuLaneStats.p99Latency, 0.0);
    EXPECT_GT(r.gpuLaneStats.utilization, 0.0);

    // Conservation across the split: every arrived sample was served
    // exactly once, by a CPU worker or by the lane.
    uint64_t cpu_served = 0;
    uint64_t cpu_batches = 0;
    for (const ServingStats& w : r.perWorker) {
        cpu_served += w.samplesServed;
        cpu_batches += w.batchesServed;
    }
    EXPECT_EQ(cpu_served + r.gpuLaneStats.samplesServed,
              r.aggregate.samplesServed);
    EXPECT_EQ(r.aggregate.samplesServed, r.aggregate.samplesArrived);
    EXPECT_EQ(cpu_batches + r.gpuLaneStats.batchesServed,
              r.aggregate.batchesServed);
    // Deferred batches were not executed on the host.
    EXPECT_EQ(r.batchesExecuted, cpu_batches);
}

TEST_F(ServingEngineTest, HeterogeneousDeterministicAcrossRuns)
{
    sched_.setGpuThreshold(ModelId::kRM1, 16);
    ServingEngine engine(&sched_, ModelId::kRM1, 0);
    EngineConfig cfg;
    cfg.numWorkers = 4;
    cfg.arrivalQps = 30000;
    cfg.simSeconds = 0.25;
    cfg.heterogeneous = true;
    const EngineResult a = engine.run(cfg);
    const EngineResult b = engine.run(cfg);

    EXPECT_EQ(a.aggregate.samplesServed, b.aggregate.samplesServed);
    EXPECT_EQ(a.aggregate.batchesServed, b.aggregate.batchesServed);
    EXPECT_EQ(a.deferredTickets, b.deferredTickets);
    EXPECT_EQ(a.gpuLaneStats.samplesServed, b.gpuLaneStats.samplesServed);
    EXPECT_EQ(a.gpuLaneStats.batchesServed, b.gpuLaneStats.batchesServed);
    EXPECT_DOUBLE_EQ(a.gpuLaneStats.p99Latency, b.gpuLaneStats.p99Latency);
    EXPECT_DOUBLE_EQ(a.aggregate.meanLatency, b.aggregate.meanLatency);
    EXPECT_DOUBLE_EQ(a.aggregate.p99Latency, b.aggregate.p99Latency);
}

TEST_F(ServingEngineTest, HeterogeneousRejectsCpuLanePlatform)
{
    ServingEngine engine(&sched_, ModelId::kNCF, 0);
    EngineConfig bad;
    bad.heterogeneous = true;
    bad.gpuPlatformIdx = 0;  // Bdw is a CPU
    EXPECT_DEATH(engine.run(bad), "GPU platform");
}

TEST(BatchQueueTest, OccupancyTieCountsCompletingWorkerIdle)
{
    // Regression pinning the tie convention (batch_queue.h): service
    // occupies the half-open interval [launch, completion), so a peer
    // whose completion lands *exactly* on this launch instant is idle
    // — it must not inflate the contention occupancy. Driven through
    // the pure helper because Poisson arrival times never produce an
    // exact FP tie via acquire().
    const std::vector<double> ready = {0.5, 0.25};
    const std::vector<bool> active = {true, true};
    // Worker 1 launches exactly when worker 0 completes: idle peer.
    EXPECT_EQ(BatchQueue::busyAtLaunch(ready, active, 1, 0.5), 1);
    // One representable instant earlier the peer is still in service.
    EXPECT_EQ(BatchQueue::busyAtLaunch(ready, active, 1,
                                       std::nextafter(0.5, 0.0)),
              2);
    // Strictly later: idle too.
    EXPECT_EQ(BatchQueue::busyAtLaunch(ready, active, 1, 0.75), 1);
    // Retired peers never count, and the caller always counts once.
    const std::vector<bool> one_left = {false, true};
    EXPECT_EQ(BatchQueue::busyAtLaunch(ready, one_left, 1, 0.1), 1);
}

TEST(BatchQueueTest, AdmissionRespectsBatchCapAndWindow)
{
    BatchQueue::Config cfg;
    cfg.arrivalQps = 10000.0;
    cfg.maxBatch = 32;
    cfg.maxWaitSeconds = 2e-3;
    cfg.horizonSeconds = 0.2;
    cfg.numWorkers = 1;
    BatchQueue queue(cfg);

    const auto service = [](const BatchTicket&, int) { return 1e-4; };
    BatchTicket ticket;
    double completion = 0.0;
    int busy = 0;
    uint64_t served = 0;
    double prev_launch = -1.0;
    uint64_t prev_seq = 0;
    bool first = true;
    while (queue.acquire(0, service, &ticket, &completion, &busy)) {
        EXPECT_LE(ticket.size(), cfg.maxBatch);
        EXPECT_GE(ticket.size(), 1);
        EXPECT_EQ(busy, 1);
        EXPECT_GT(completion, ticket.launchTime);
        // Launches move forward in time and sequence.
        EXPECT_GE(ticket.launchTime, prev_launch);
        if (!first) {
            EXPECT_EQ(ticket.seq, prev_seq + 1);
        }
        for (double arrival : ticket.arrivals) {
            EXPECT_LE(arrival, ticket.launchTime);
            // No sample waits past the batching window before its
            // batch launches, except when the server was backlogged —
            // at this service rate the backlog stays bounded, so
            // allow one service time of slack.
            EXPECT_LE(ticket.launchTime - arrival,
                      cfg.maxWaitSeconds + 64 * 1e-4);
        }
        prev_launch = ticket.launchTime;
        prev_seq = ticket.seq;
        first = false;
        served += static_cast<uint64_t>(ticket.size());
    }
    EXPECT_EQ(served, queue.samplesArrived());
    EXPECT_GT(served, 0u);
}

TEST(BatchQueueTest, DrainsEveryAdmittedSample)
{
    BatchQueue::Config cfg;
    cfg.arrivalQps = 500.0;
    cfg.maxBatch = 16;
    cfg.maxWaitSeconds = 5e-3;
    cfg.horizonSeconds = 0.1;
    cfg.numWorkers = 2;
    BatchQueue queue(cfg);

    // Single-threaded two-worker drain. acquire() blocks until it is
    // the calling worker's virtual turn, so a lone thread must follow
    // the same earliest-ready order the queue enforces.
    const auto service = [](const BatchTicket& t, int) {
        return 1e-3 * static_cast<double>(t.size());
    };
    std::multiset<double> arrivals_seen;
    BatchTicket ticket;
    double completion = 0.0;
    int busy = 0;
    bool active[2] = {true, true};
    double ready[2] = {0.0, 0.0};
    while (active[0] || active[1]) {
        int w = -1;  // active worker with the earliest virtual free time
        for (int v = 0; v < 2; ++v) {
            if (active[v] && (w < 0 || ready[v] < ready[w])) {
                w = v;
            }
        }
        active[w] =
            queue.acquire(w, service, &ticket, &completion, &busy);
        if (active[w]) {
            ready[w] = completion;
            EXPECT_GE(busy, 1);
            EXPECT_LE(busy, 2);
            for (double a : ticket.arrivals) {
                arrivals_seen.insert(a);
            }
        }
    }
    EXPECT_EQ(arrivals_seen.size(), queue.samplesArrived());
}

TEST_F(ServingEngineTest, RunTraceReproducesRunFromTheSameClock)
{
    // A trace drawn from the same seeded Poisson clock the engine
    // would use internally must reproduce run() bit for bit — the
    // contract the fleet simulator's per-node replay rests on.
    EngineConfig cfg;
    cfg.numWorkers = 3;
    cfg.arrivalQps = 9000.0;
    cfg.maxBatch = 64;
    cfg.maxWaitSeconds = 1e-3;
    cfg.simSeconds = 0.25;
    cfg.seed = 17;

    ServingNode node(&sched_, ModelId::kRM1, 0);
    const EngineResult generated = node.run(cfg);

    std::vector<double> trace;
    PoissonProcess clock(cfg.arrivalQps, cfg.seed);
    for (double t = clock.next(); t < cfg.simSeconds;
         t = clock.next()) {
        trace.push_back(t);
    }
    ASSERT_EQ(trace.size(), generated.aggregate.samplesArrived);

    ServingNode replay(&sched_, ModelId::kRM1, 0);
    const EngineResult replayed = replay.runTrace(cfg, trace);

    EXPECT_EQ(replayed.aggregate.samplesArrived,
              generated.aggregate.samplesArrived);
    EXPECT_EQ(replayed.aggregate.samplesServed,
              generated.aggregate.samplesServed);
    EXPECT_EQ(replayed.aggregate.batchesServed,
              generated.aggregate.batchesServed);
    EXPECT_DOUBLE_EQ(replayed.aggregate.meanLatency,
                     generated.aggregate.meanLatency);
    EXPECT_DOUBLE_EQ(replayed.aggregate.p50Latency,
                     generated.aggregate.p50Latency);
    EXPECT_DOUBLE_EQ(replayed.aggregate.p99Latency,
                     generated.aggregate.p99Latency);
    EXPECT_DOUBLE_EQ(replayed.aggregate.utilization,
                     generated.aggregate.utilization);
    EXPECT_DOUBLE_EQ(replayed.aggregate.meanBatch,
                     generated.aggregate.meanBatch);
}

TEST_F(ServingEngineTest, RemoteSurchargeStretchesServiceDeterministically)
{
    // The placement surcharge prices remote embedding fetches into
    // each batch's virtual service time: zero surcharge is the legacy
    // engine bit for bit, a positive surcharge can only slow serving.
    EngineConfig cfg;
    cfg.numWorkers = 2;
    cfg.arrivalQps = 6000.0;
    cfg.maxBatch = 128;
    cfg.maxWaitSeconds = 1e-3;
    cfg.simSeconds = 0.25;
    cfg.seed = 5;

    ServingNode legacy(&sched_, ModelId::kRM1, 0);
    const EngineResult baseline = legacy.run(cfg);

    cfg.remoteSecondsPerSample = 0.0;
    ServingNode zero(&sched_, ModelId::kRM1, 0);
    const EngineResult same = zero.run(cfg);
    EXPECT_DOUBLE_EQ(same.aggregate.meanLatency,
                     baseline.aggregate.meanLatency);
    EXPECT_DOUBLE_EQ(same.aggregate.p99Latency, baseline.aggregate.p99Latency);

    cfg.remoteSecondsPerSample = 5e-6;
    ServingNode taxed(&sched_, ModelId::kRM1, 0);
    const EngineResult slower = taxed.run(cfg);
    EXPECT_EQ(slower.aggregate.samplesArrived,
              baseline.aggregate.samplesArrived);
    EXPECT_GT(slower.aggregate.meanLatency, baseline.aggregate.meanLatency);
    EXPECT_GE(slower.aggregate.utilization, baseline.aggregate.utilization);
}

}  // namespace
}  // namespace recstack
