/**
 * @file
 * Tests for the eight model builders: graph validity, end-to-end
 * numerics on scaled-down instances, and feature extraction.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "graph/executor.h"
#include "models/model.h"

namespace recstack {
namespace {

/** Run tiny numerics end to end; returns the output tensor. */
const Tensor&
runTiny(Model& model, Workspace& ws, int64_t batch)
{
    model.initParams(ws, 7);
    BatchGenerator gen(model.workload, 42);
    gen.materialize(ws, batch);
    Executor::run(model.net, ws, ExecMode::kFull);
    return ws.get(model.outputBlob);
}

class AllModelsTest : public ::testing::TestWithParam<ModelId>
{
};

TEST_P(AllModelsTest, BuildsAndValidates)
{
    Model model = buildModel(GetParam(), tinyOptions());
    model.net.validate();
    EXPECT_GT(model.net.opCount(), 0u);
    EXPECT_FALSE(model.weights.empty());
    EXPECT_EQ(model.name, modelName(GetParam()));
}

TEST_P(AllModelsTest, TinyInferenceProducesProbabilities)
{
    Model model = buildModel(GetParam(), tinyOptions());
    Workspace ws;
    const Tensor& out = runTiny(model, ws, 4);
    EXPECT_EQ(out.dim(0), 4);
    for (int64_t i = 0; i < out.numel(); ++i) {
        const float v = out.data<float>()[i];
        ASSERT_TRUE(std::isfinite(v));
        ASSERT_GT(v, 0.0f);   // sigmoid output
        ASSERT_LT(v, 1.0f);
    }
}

TEST_P(AllModelsTest, DeterministicOutputs)
{
    Model m1 = buildModel(GetParam(), tinyOptions());
    Model m2 = buildModel(GetParam(), tinyOptions());
    Workspace w1, w2;
    const Tensor& o1 = runTiny(m1, w1, 3);
    const Tensor& o2 = runTiny(m2, w2, 3);
    ASSERT_EQ(o1.numel(), o2.numel());
    for (int64_t i = 0; i < o1.numel(); ++i) {
        ASSERT_FLOAT_EQ(o1.data<float>()[i], o2.data<float>()[i]);
    }
}

TEST_P(AllModelsTest, FeaturesPopulated)
{
    Model model = buildModel(GetParam(), tinyOptions());
    const ModelFeatures& f = model.features;
    EXPECT_GT(f.numTables, 0);
    EXPECT_GT(f.lookupsPerTable, 0.0);
    EXPECT_GT(f.latentDim, 0);
    EXPECT_GT(f.embParams, 0u);
    EXPECT_GT(f.fcParams, 0u);
    EXPECT_GE(f.fcTopHeaviness(), 0.0);
    EXPECT_LE(f.fcTopHeaviness(), 1.0);
}

TEST_P(AllModelsTest, DeclareParamsIsShapeOnly)
{
    Model model = buildModel(GetParam(), tinyOptions());
    Workspace ws;
    ws.setShapeOnly(true);
    model.declareParams(ws);
    for (const auto& w : model.weights) {
        EXPECT_FALSE(ws.get(w.name).materialized());
    }
    BatchGenerator gen(model.workload);
    gen.declare(ws, 256);
    const auto result =
        Executor::run(model.net, ws, ExecMode::kProfileOnly);
    EXPECT_EQ(result.records.size(), model.net.opCount());
}

TEST_P(AllModelsTest, BatchDimPropagates)
{
    Model model = buildModel(GetParam(), tinyOptions());
    Workspace ws;
    ws.setShapeOnly(true);
    model.declareParams(ws);
    BatchGenerator gen(model.workload);
    for (int64_t batch : {1, 5, 32}) {
        gen.declare(ws, batch);
        Executor::run(model.net, ws, ExecMode::kProfileOnly);
        EXPECT_EQ(ws.get(model.outputBlob).dim(0), batch);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Suite, AllModelsTest,
    ::testing::ValuesIn(allModels()),
    [](const ::testing::TestParamInfo<ModelId>& info) {
        std::string name = modelName(info.param);
        for (auto& c : name) {
            if (c == '-') {
                c = '_';
            }
        }
        return name;
    });

TEST(ModelRegistry, NamesRoundTrip)
{
    for (ModelId id : allModels()) {
        EXPECT_EQ(modelFromName(modelName(id)), id);
    }
    EXPECT_DEATH(modelFromName("NOPE"), "unknown model");
}

TEST(ModelRegistry, EightModels)
{
    const auto models = allModels();
    EXPECT_EQ(models.size(), 8u);
    std::set<std::string> names;
    for (ModelId id : models) {
        names.insert(modelName(id));
        EXPECT_STRNE(modelDomain(id), "?");
        EXPECT_STRNE(modelInsight(id), "?");
    }
    EXPECT_EQ(names.size(), 8u);
}

TEST(ModelConfigs, TableIParameters)
{
    const ModelOptions opts;  // full-size configs
    const Model rm1 = buildModel(ModelId::kRM1, opts);
    EXPECT_EQ(rm1.features.numTables, 8);
    EXPECT_DOUBLE_EQ(rm1.features.lookupsPerTable, 80.0);

    const Model rm2 = buildModel(ModelId::kRM2, opts);
    EXPECT_EQ(rm2.features.numTables, 32);
    EXPECT_DOUBLE_EQ(rm2.features.lookupsPerTable, 120.0);

    const Model ncf = buildModel(ModelId::kNCF, opts);
    EXPECT_EQ(ncf.features.numTables, 4);
    EXPECT_DOUBLE_EQ(ncf.features.lookupsPerTable, 1.0);

    const Model din = buildModel(ModelId::kDIN, opts);
    EXPECT_TRUE(din.features.attention);
    EXPECT_FALSE(din.features.gru);

    const Model dien = buildModel(ModelId::kDIEN, opts);
    EXPECT_TRUE(dien.features.attention);
    EXPECT_TRUE(dien.features.gru);
}

TEST(ModelConfigs, FcHeavinessOrdering)
{
    const ModelOptions opts;
    const auto ratio = [&](ModelId id) {
        return buildModel(id, opts).features.fcToEmbRatio();
    };
    // RM3 shifts the parameter budget into FC stacks; RM1/RM2 into
    // embeddings.
    EXPECT_GT(ratio(ModelId::kRM3), 10 * ratio(ModelId::kRM1));
    EXPECT_GT(ratio(ModelId::kRM3), 10 * ratio(ModelId::kRM2));
}

TEST(ModelConfigs, DinUnrollsAttentionUnits)
{
    ModelOptions opts = tinyOptions();
    opts.dinBehaviors = 12;
    const Model din = buildModel(ModelId::kDIN, opts);
    // ~7 ops per behavior plus fixed overhead.
    EXPECT_GT(din.net.opCount(), 12u * 6);
    // Unique code regions marked on the attention-unit ops.
    int unique = 0;
    for (const auto& op : din.net.ops()) {
        unique += op->uniqueCodeBytes() > 0;
    }
    EXPECT_GE(unique, 12 * 6);
}

TEST(ModelConfigs, DienFusedVsUnrolled)
{
    ModelOptions unrolled = tinyOptions();
    ModelOptions fused = tinyOptions();
    fused.dienFusedGru = true;

    const Model a = buildModel(ModelId::kDIEN, unrolled);
    const Model b = buildModel(ModelId::kDIEN, fused);
    // Unrolled per-step graphs are far larger.
    EXPECT_GT(a.net.opCount(), 4 * b.net.opCount());
    // Fused path uses the GRULayer operator.
    bool has_fused_gru = false;
    for (const auto& op : b.net.ops()) {
        has_fused_gru |= op->type() == "GRULayer" ||
                         op->type() == "AUGRULayer";
    }
    EXPECT_TRUE(has_fused_gru);
    b.net.validate();
}

TEST(ModelConfigs, DienFusedNumericsRun)
{
    ModelOptions opts = tinyOptions();
    opts.dienFusedGru = true;
    Model model = buildModel(ModelId::kDIEN, opts);
    Workspace ws;
    const Tensor& out = runTiny(model, ws, 2);
    for (int64_t i = 0; i < out.numel(); ++i) {
        EXPECT_TRUE(std::isfinite(out.data<float>()[i]));
    }
}

TEST(ModelConfigs, TableScaleShrinksTables)
{
    ModelOptions small = tinyOptions();
    const Model tiny = buildModel(ModelId::kRM1, small);
    const Model full = buildModel(ModelId::kRM1, ModelOptions{});
    EXPECT_LT(tiny.paramBytes(), full.paramBytes() / 100);
}

TEST(ModelConfigs, ParamBytesMatchesWeights)
{
    const Model m = buildModel(ModelId::kNCF, tinyOptions());
    uint64_t expect = 0;
    for (const auto& w : m.weights) {
        uint64_t n = 4;
        for (int64_t d : w.shape) {
            n *= static_cast<uint64_t>(d);
        }
        expect += n;
    }
    EXPECT_EQ(m.paramBytes(), expect);
}


TEST(ModelConfigs, PositionWeightedPoolingRunsEndToEnd)
{
    ModelOptions opts = tinyOptions();
    opts.positionWeighted = true;
    Model model = buildModel(ModelId::kRM1, opts);
    // The graph uses the weighted operator...
    bool has_slws = false;
    for (const auto& op : model.net.ops()) {
        has_slws |= op->type() == "SparseLengthsWeightedSum";
        EXPECT_NE(op->type(), "SparseLengthsSum");
    }
    EXPECT_TRUE(has_slws);
    // ...the workload declares weight blobs...
    for (const auto& cat : model.workload.categorical) {
        EXPECT_FALSE(cat.weightsBlob.empty());
    }
    // ...and numerics run to valid probabilities.
    Workspace ws;
    const Tensor& out = runTiny(model, ws, 3);
    for (int64_t i = 0; i < out.numel(); ++i) {
        ASSERT_GT(out.data<float>()[i], 0.0f);
        ASSERT_LT(out.data<float>()[i], 1.0f);
    }
}

TEST(ModelConfigs, WeightedPoolingGrowsInputBytes)
{
    ModelOptions plain = tinyOptions();
    ModelOptions weighted = tinyOptions();
    weighted.positionWeighted = true;
    const Model a = buildModel(ModelId::kRM1, plain);
    const Model b = buildModel(ModelId::kRM1, weighted);
    BatchGenerator ga(a.workload), gb(b.workload);
    EXPECT_GT(gb.inputBytes(64), ga.inputBytes(64));
}

}  // namespace
}  // namespace recstack
