/**
 * @file
 * Unit tests of the sharded embedding parameter store: cache-policy
 * math against the analytical Zipf expectation, adversarial scan
 * behaviour, update/eviction liveness, shard accounting, the tier
 * cost model, and the async prefetch path. The concurrency cases run
 * under -DRECSTACK_SANITIZE=thread via `ctest -L sanitize`.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "store/embedding_store.h"

namespace recstack {
namespace {

/** Store with one [rows, dim] table whose row r holds r + d/1000. */
std::unique_ptr<EmbeddingStore>
makeStore(int64_t rows, int64_t dim, StoreConfig cfg)
{
    auto store = std::make_unique<EmbeddingStore>(cfg);
    Tensor table({rows, dim});
    float* data = table.data<float>();
    for (int64_t r = 0; r < rows; ++r) {
        for (int64_t d = 0; d < dim; ++d) {
            data[r * dim + d] =
                static_cast<float>(r) + static_cast<float>(d) * 1e-3f;
        }
    }
    store->addTable("t0", std::move(table));
    return store;
}

/** Drive `batches` demand batches of Zipf(alpha) pooled lookups. */
void
drive(EmbeddingStore& store, int64_t rows, int64_t dim, double alpha,
      int batches, int64_t per_batch, uint64_t seed = 7)
{
    const ZipfSampler zipf(static_cast<uint64_t>(rows), alpha);
    Rng rng(seed);
    std::vector<int64_t> indices(static_cast<size_t>(per_batch));
    const int64_t offsets[2] = {0, per_batch};
    std::vector<float> out(static_cast<size_t>(dim));
    for (int b = 0; b < batches; ++b) {
        fillZipfIndices(zipf, rng, indices.data(), per_batch);
        store.lookupSum(0, indices.data(), offsets, 0, 1, out.data());
    }
}

// --- Cache-policy math vs. the analytical expectation. ----------------

double
measuredHitRate(CachePolicy policy, double alpha, int64_t cache_rows)
{
    const int64_t rows = 50000;
    const int64_t dim = 16;
    StoreConfig cfg;
    cfg.numShards = 1;
    cfg.policy = policy;
    cfg.cacheBytesPerShard =
        static_cast<size_t>(cache_rows * dim * 4);
    auto store = makeStore(rows, dim, cfg);
    // Warm to steady state, then measure demand traffic only.
    drive(*store, rows, dim, alpha, 6, 20000, /*seed=*/7);
    store->resetStats();
    drive(*store, rows, dim, alpha, 6, 20000, /*seed=*/8);
    return store->stats().hitRate();
}

TEST(StoreCacheMath, LruHitRateMatchesZipfExpectation)
{
    const int64_t rows = 50000;
    const int64_t dim = 16;
    const int64_t cache_rows = 5000;
    StoreConfig cfg;
    cfg.numShards = 1;
    cfg.cacheBytesPerShard =
        static_cast<size_t>(cache_rows * dim * 4);
    auto store = makeStore(rows, dim, cfg);
    double prev = -1.0;
    for (double alpha : {0.6, 0.9, 1.2}) {
        const double expected = store->expectedHitRate(0, alpha);
        const double measured =
            measuredHitRate(CachePolicy::kLRU, alpha, cache_rows);
        // expectedHitRate models the k hottest rows resident — an
        // upper bound LRU approaches from below; the gap is boundary
        // churn and shrinks as the skew concentrates the working set.
        EXPECT_LE(measured, expected + 0.02) << "alpha " << alpha;
        EXPECT_GE(measured, expected - 0.18) << "alpha " << alpha;
        EXPECT_GT(measured, prev) << "alpha " << alpha;
        prev = measured;
    }
    // At strong skew the bound is tight.
    EXPECT_NEAR(measuredHitRate(CachePolicy::kLRU, 1.2, cache_rows),
                store->expectedHitRate(0, 1.2), 0.05);
}

TEST(StoreCacheMath, ClockTracksLruHitRate)
{
    for (double alpha : {0.6, 0.9}) {
        const double lru =
            measuredHitRate(CachePolicy::kLRU, alpha, 5000);
        const double clock =
            measuredHitRate(CachePolicy::kClock, alpha, 5000);
        EXPECT_NEAR(clock, lru, 0.10) << "alpha " << alpha;
    }
}

TEST(StoreCacheMath, SequentialScanDefeatsBothPolicies)
{
    // The adversarial pattern for recency policies: a scan over a
    // working set larger than the cache evicts every row before its
    // reuse, so after the compulsory pass the hit rate stays ~0.
    const int64_t rows = 20000;
    const int64_t dim = 16;
    for (CachePolicy policy :
         {CachePolicy::kLRU, CachePolicy::kClock}) {
        StoreConfig cfg;
        cfg.numShards = 1;
        cfg.policy = policy;
        cfg.cacheBytesPerShard = 1000 * dim * 4;  // 5% of the table
        auto store = makeStore(rows, dim, cfg);
        std::vector<int64_t> indices(static_cast<size_t>(rows));
        for (int64_t i = 0; i < rows; ++i) {
            indices[static_cast<size_t>(i)] = i;
        }
        const int64_t offsets[2] = {0, rows};
        std::vector<float> out(static_cast<size_t>(dim));
        for (int pass = 0; pass < 3; ++pass) {
            store->lookupSum(0, indices.data(), offsets, 0, 1,
                             out.data());
        }
        const StoreStats stats = store->stats();
        EXPECT_EQ(stats.total.hits, 0u)
            << cachePolicyName(policy);
        EXPECT_GT(stats.total.evictions, 0u);
    }
}

TEST(StoreCacheMath, ExpectedHitRateMonotoneInCapacityAndSkew)
{
    const int64_t rows = 50000;
    const int64_t dim = 16;
    double prev = -1.0;
    for (size_t cache_kb : {16u, 64u, 256u, 1024u}) {
        StoreConfig cfg;
        cfg.numShards = 4;
        cfg.cacheBytesPerShard = cache_kb << 10;
        auto store = makeStore(rows, dim, cfg);
        const double h = store->expectedHitRate(0, 0.9);
        EXPECT_GE(h, prev) << cache_kb << " KB";
        prev = h;
    }
    StoreConfig cfg;
    cfg.numShards = 4;
    cfg.cacheBytesPerShard = 64u << 10;
    auto store = makeStore(rows, dim, cfg);
    prev = -1.0;
    for (double alpha : {0.0, 0.4, 0.8, 1.2}) {
        const double h = store->expectedHitRate(0, alpha);
        EXPECT_GE(h, prev) << "alpha " << alpha;
        prev = h;
    }
}

TEST(StoreCacheMath, ZipfCdfSanity)
{
    const uint64_t n = 10000;
    for (double alpha : {0.0, 0.75, 1.2}) {
        const ZipfSampler zipf(n, alpha);
        EXPECT_DOUBLE_EQ(zipf.cdf(0), 0.0);
        EXPECT_DOUBLE_EQ(zipf.cdf(n), 1.0);
        double prev = 0.0;
        for (uint64_t k = 1; k <= n; k += 500) {
            const double c = zipf.cdf(k);
            EXPECT_GE(c, prev);
            EXPECT_LE(c, 1.0);
            prev = c;
        }
    }
    const ZipfSampler uniform(n, 0.0);
    EXPECT_DOUBLE_EQ(uniform.cdf(n / 4), 0.25);
    // Skewed mass concentrates in the head: the top 1% of rows carry
    // far more than 1% of the probability.
    const ZipfSampler skewed(n, 1.0);
    EXPECT_GT(skewed.cdf(n / 100), 0.20);
}

// --- Liveness: updates are never shadowed by stale cache copies. ------

TEST(StoreLiveness, NoStaleRowAfterUpdate)
{
    const int64_t rows = 1000;
    const int64_t dim = 8;
    StoreConfig cfg;
    cfg.numShards = 4;
    cfg.cacheBytesPerShard = 64u << 10;
    auto store = makeStore(rows, dim, cfg);

    // Shadow dense copy updated in lockstep with store.update().
    std::vector<float> shadow(static_cast<size_t>(rows * dim));
    for (int64_t r = 0; r < rows; ++r) {
        for (int64_t d = 0; d < dim; ++d) {
            shadow[static_cast<size_t>(r * dim + d)] =
                static_cast<float>(r) + static_cast<float>(d) * 1e-3f;
        }
    }

    Rng rng(17);
    std::vector<float> row(static_cast<size_t>(dim));
    std::vector<float> got(static_cast<size_t>(dim));
    for (int step = 0; step < 4000; ++step) {
        const int64_t r = static_cast<int64_t>(
            rng.nextBounded(static_cast<uint64_t>(rows)));
        if (rng.nextBool(0.3)) {
            for (int64_t d = 0; d < dim; ++d) {
                row[static_cast<size_t>(d)] =
                    rng.nextFloat(-2.0f, 2.0f);
            }
            store->update(0, r, row.data());
            std::memcpy(&shadow[static_cast<size_t>(r * dim)],
                        row.data(), sizeof(float) * row.size());
        } else {
            store->lookupGather(0, &r, 0, 1, got.data());
            ASSERT_EQ(std::memcmp(
                          got.data(),
                          &shadow[static_cast<size_t>(r * dim)],
                          sizeof(float) * got.size()),
                      0)
                << "stale row " << r << " at step " << step;
        }
    }
    EXPECT_GT(store->stats().total.updates, 0u);
    // The cache actually served reads, so coherence was exercised on
    // the cached path, not just the backing rows.
    EXPECT_GT(store->stats().total.hits, 0u);
}

// --- Shard accounting and the tier cost model. ------------------------

TEST(StoreAccounting, PerShardCountersPartitionTotals)
{
    const int64_t rows = 8192;
    const int64_t dim = 16;
    StoreConfig cfg;
    cfg.numShards = 8;
    cfg.cacheBytesPerShard = 32u << 10;
    auto store = makeStore(rows, dim, cfg);
    drive(*store, rows, dim, 0.8, 4, 4096);

    const StoreStats stats = store->stats();
    ASSERT_EQ(stats.perShard.size(), 8u);
    uint64_t lookups = 0;
    uint64_t hits = 0;
    uint64_t near = 0;
    uint64_t far = 0;
    int used = 0;
    for (const ShardCounters& c : stats.perShard) {
        lookups += c.lookups;
        hits += c.hits;
        near += c.nearFetches;
        far += c.farFetches;
        used += c.lookups > 0 ? 1 : 0;
    }
    EXPECT_EQ(lookups, stats.total.lookups);
    EXPECT_EQ(hits, stats.total.hits);
    EXPECT_EQ(near, stats.total.nearFetches);
    EXPECT_EQ(far, stats.total.farFetches);
    EXPECT_EQ(stats.total.lookups, 4u * 4096u);
    EXPECT_EQ(stats.total.hits + stats.total.nearFetches +
                  stats.total.farFetches,
              stats.total.lookups);
    EXPECT_GT(used, 1) << "row partition never left shard 0";
}

TEST(StoreAccounting, FarTierCostsMoreThanNear)
{
    const int64_t rows = 4096;
    const int64_t dim = 16;
    StoreConfig near_cfg;
    near_cfg.numShards = 1;
    near_cfg.cacheBytesPerShard = 0;  // every lookup hits the tier
    near_cfg.nearTierFraction = 1.0;
    StoreConfig far_cfg = near_cfg;
    far_cfg.nearTierFraction = 0.0;

    auto near_store = makeStore(rows, dim, near_cfg);
    auto far_store = makeStore(rows, dim, far_cfg);
    drive(*near_store, rows, dim, 0.8, 2, 2048);
    drive(*far_store, rows, dim, 0.8, 2, 2048);

    const StoreStats near_stats = near_store->stats();
    const StoreStats far_stats = far_store->stats();
    EXPECT_EQ(near_stats.total.farFetches, 0u);
    EXPECT_EQ(far_stats.total.nearFetches, 0u);
    EXPECT_GT(far_stats.total.farFetches, 0u);
    EXPECT_GT(far_stats.total.simSeconds,
              near_stats.total.simSeconds * 2.0);
    EXPECT_GT(far_stats.costPercentile(0.99),
              near_stats.costPercentile(0.99));
}

TEST(StoreAccounting, FarTierFractionShrinksWithNearResidency)
{
    const int64_t rows = 50000;
    StoreConfig cfg;
    cfg.numShards = 1;
    cfg.cacheBytesPerShard = 0;
    cfg.nearTierFraction = 0.25;
    auto quarter = makeStore(rows, 16, cfg);
    cfg.nearTierFraction = 0.75;
    auto three_quarters = makeStore(rows, 16, cfg);
    EXPECT_GT(quarter->farTierFraction(0, 0.9),
              three_quarters->farTierFraction(0, 0.9));
    cfg.nearTierFraction = 1.0;
    auto all_near = makeStore(rows, 16, cfg);
    EXPECT_DOUBLE_EQ(all_near->farTierFraction(0, 0.9), 0.0);
}

// --- Documented edge cases (pinned; see embedding_store.h). -----------

TEST(StoreEdgeCases, EmptyHistogramPercentileIsZero)
{
    // No demand lookups yet: every percentile of the empty cost
    // histogram is the documented 0.0, not a crash or NaN.
    auto store = makeStore(64, 8, StoreConfig{});
    const StoreStats stats = store->stats();
    EXPECT_TRUE(stats.costHistogram.empty());
    for (double p : {0.0, 0.5, 0.99, 1.0}) {
        EXPECT_EQ(stats.costPercentile(p), 0.0) << "p " << p;
        EXPECT_EQ(stats.diskCostPercentile(p), 0.0) << "p " << p;
    }
}

TEST(StoreEdgeCases, ZeroLookupHitRateIsZero)
{
    auto store = makeStore(64, 8, StoreConfig{});
    const StoreStats stats = store->stats();
    ASSERT_EQ(stats.total.lookups, 0u);
    EXPECT_EQ(stats.total.hitRate(), 0.0);
    EXPECT_EQ(stats.hitRate(), 0.0);
    ShardCounters zero;
    EXPECT_EQ(zero.hitRate(), 0.0);
}

// --- Prefetch and the env hatch. --------------------------------------

TEST(StorePrefetch, AsyncPrefetchCoalescesDuplicateIndices)
{
    const int64_t dim = 8;
    StoreConfig cfg;
    cfg.numShards = 2;
    cfg.cacheBytesPerShard = 64u << 10;
    auto store = makeStore(256, dim, cfg);

    // A heavily repeated index stream (the shape of a Zipf head)
    // must warm each distinct row exactly once per task.
    std::vector<int64_t> indices = {5, 5, 5, 7, 9, 7, 5, 9, 11};
    store->prefetchAsync(0, indices);
    store->drainPrefetch();
    EXPECT_EQ(store->stats().total.prefetchedRows, 4u);
}

TEST(StorePrefetch, AsyncPrefetchTurnsDemandMissesIntoHits)
{
    const int64_t rows = 8192;
    const int64_t dim = 16;
    StoreConfig cfg;
    cfg.numShards = 4;
    cfg.cacheBytesPerShard = 1u << 20;  // batch fits entirely
    auto store = makeStore(rows, dim, cfg);

    const ZipfSampler zipf(static_cast<uint64_t>(rows), 0.9);
    Rng rng(5);
    std::vector<int64_t> indices(2048);
    fillZipfIndices(zipf, rng, indices.data(),
                    static_cast<int64_t>(indices.size()));
    store->prefetchAsync(0, indices);
    store->drainPrefetch();

    // Prefetch warmed the cache without charging demand counters.
    StoreStats stats = store->stats();
    EXPECT_EQ(stats.total.lookups, 0u);
    EXPECT_GT(stats.total.prefetchedRows, 0u);

    const int64_t offsets[2] = {0,
                                static_cast<int64_t>(indices.size())};
    std::vector<float> out(static_cast<size_t>(dim));
    store->lookupSum(0, indices.data(), offsets, 0, 1, out.data());
    stats = store->stats();
    EXPECT_EQ(stats.total.lookups, indices.size());
    EXPECT_EQ(stats.total.hits, indices.size())
        << "a prefetched batch must be all demand hits";
}

TEST(StoreEnv, DisableHatchReadsEnvironment)
{
    ASSERT_EQ(unsetenv("RECSTACK_DISABLE_STORE"), 0);
    EXPECT_FALSE(EmbeddingStore::disabledByEnv());
    ASSERT_EQ(setenv("RECSTACK_DISABLE_STORE", "0", 1), 0);
    EXPECT_FALSE(EmbeddingStore::disabledByEnv());
    ASSERT_EQ(setenv("RECSTACK_DISABLE_STORE", "1", 1), 0);
    EXPECT_TRUE(EmbeddingStore::disabledByEnv());
    ASSERT_EQ(unsetenv("RECSTACK_DISABLE_STORE"), 0);
}

// --- Concurrency (the TSan target of `ctest -L sanitize`). ------------

TEST(StoreConcurrency, ParallelLookupsUpdatesAndPrefetch)
{
    const int64_t rows = 4096;
    const int64_t dim = 16;
    StoreConfig cfg;
    cfg.numShards = 8;
    cfg.cacheBytesPerShard = 64u << 10;
    auto store = makeStore(rows, dim, cfg);

    const int kThreads = 4;
    const int kBatchesPerThread = 50;
    const int64_t kPerBatch = 256;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            const ZipfSampler zipf(static_cast<uint64_t>(rows), 0.9);
            Rng rng(100 + static_cast<uint64_t>(t));
            std::vector<int64_t> indices(
                static_cast<size_t>(kPerBatch));
            const int64_t offsets[2] = {0, kPerBatch};
            std::vector<float> out(static_cast<size_t>(dim));
            std::vector<float> row(static_cast<size_t>(dim), 1.5f);
            for (int b = 0; b < kBatchesPerThread; ++b) {
                fillZipfIndices(zipf, rng, indices.data(), kPerBatch);
                store->prefetchAsync(0, indices);
                store->lookupSum(0, indices.data(), offsets, 0, 1,
                                 out.data());
                store->update(
                    0,
                    static_cast<int64_t>(rng.nextBounded(
                        static_cast<uint64_t>(rows))),
                    row.data());
            }
        });
    }
    for (std::thread& t : threads) {
        t.join();
    }
    store->drainPrefetch();

    const StoreStats stats = store->stats();
    EXPECT_EQ(stats.total.lookups,
              static_cast<uint64_t>(kThreads) * kBatchesPerThread *
                  static_cast<uint64_t>(kPerBatch));
    EXPECT_EQ(stats.total.updates,
              static_cast<uint64_t>(kThreads) * kBatchesPerThread);
    EXPECT_LE(store->cacheBytesUsed(), store->cacheCapacityBytes());
}

}  // namespace
}  // namespace recstack
