/**
 * @file
 * Tests of the DSB/MITE frontend decoder model (Fig. 13).
 */

#include <gtest/gtest.h>

#include "uarch/decoder.h"

namespace recstack {
namespace {

TEST(Decoder, FittingLoopMostlyDsb)
{
    DecoderModel dec(broadwellConfig());
    DecoderInput in;
    in.kernelUops = 100000;
    in.kernelFootprintUops = 400;  // well under 1536 DSB capacity
    const DecoderResult r = dec.evaluate(in);
    EXPECT_GT(r.uopsFromDsb, r.uopsFromMite * 50);
    EXPECT_LT(r.dsbLimitedCycles, 100.0);
}

TEST(Decoder, OverflowingLoopSpillsToMite)
{
    DecoderModel dec(broadwellConfig());
    DecoderInput in;
    in.kernelUops = 100000;
    in.kernelFootprintUops = 3072;  // 2x capacity -> ~50% coverage
    const DecoderResult r = dec.evaluate(in);
    EXPECT_NEAR(static_cast<double>(r.uopsFromMite),
                static_cast<double>(in.kernelUops) * 0.5,
                static_cast<double>(in.kernelUops) * 0.1);
    EXPECT_GT(r.dsbLimitedCycles, 1000.0);
}

TEST(Decoder, FlushesForceRefills)
{
    DecoderModel dec(broadwellConfig());
    DecoderInput fit;
    fit.kernelUops = 50000;
    fit.kernelFootprintUops = 400;
    const DecoderResult calm = dec.evaluate(fit);

    DecoderInput flushed = fit;
    flushed.flushes = 500;
    const DecoderResult stormy = dec.evaluate(flushed);
    EXPECT_GT(stormy.uopsFromMite, calm.uopsFromMite);
    EXPECT_GT(stormy.dsbLimitedCycles, calm.dsbLimitedCycles);
    EXPECT_GT(stormy.switches, calm.switches);
}

TEST(Decoder, ColdDispatchGoesThroughMite)
{
    DecoderModel dec(broadwellConfig());
    DecoderInput in;
    in.dispatchUops = 10000;
    in.dispatchWarm = false;
    const DecoderResult cold = dec.evaluate(in);
    EXPECT_GT(cold.miteLimitedCycles, 0.0);

    in.dispatchWarm = true;
    const DecoderResult warm = dec.evaluate(in);
    EXPECT_LT(warm.miteLimitedCycles, cold.miteLimitedCycles * 0.5);
    EXPECT_LT(warm.uopsFromMite, cold.uopsFromMite);
}

TEST(Decoder, UopConservation)
{
    DecoderModel dec(broadwellConfig());
    DecoderInput in;
    in.kernelUops = 20000;
    in.kernelFootprintUops = 2000;
    in.dispatchUops = 5000;
    in.flushes = 50;
    const DecoderResult r = dec.evaluate(in);
    EXPECT_EQ(r.uopsFromDsb + r.uopsFromMite,
              in.kernelUops + in.dispatchUops);
}

TEST(Decoder, CascadeLakeCheaperThanBroadwell)
{
    DecoderInput in;
    in.kernelUops = 80000;
    in.kernelFootprintUops = 2500;
    in.dispatchUops = 18000;
    in.flushes = 300;

    const DecoderResult bdw = DecoderModel(broadwellConfig()).evaluate(in);
    const DecoderResult clx =
        DecoderModel(cascadeLakeConfig()).evaluate(in);
    EXPECT_LT(clx.dsbLimitedCycles + clx.miteLimitedCycles,
              bdw.dsbLimitedCycles + bdw.miteLimitedCycles);
}

TEST(Decoder, ZeroWorkZeroCost)
{
    DecoderModel dec(broadwellConfig());
    const DecoderResult r = dec.evaluate(DecoderInput{});
    EXPECT_EQ(r.uopsFromDsb, 0u);
    EXPECT_EQ(r.uopsFromMite, 0u);
    EXPECT_EQ(r.dsbLimitedCycles, 0.0);
    EXPECT_EQ(r.miteLimitedCycles, 0.0);
}

/** Footprint sweep: MITE share rises monotonically past capacity. */
class FootprintSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(FootprintSweep, CoverageMonotone)
{
    DecoderModel dec(broadwellConfig());
    DecoderInput in;
    in.kernelUops = 100000;
    in.kernelFootprintUops = GetParam();
    const DecoderResult r = dec.evaluate(in);
    DecoderInput bigger = in;
    bigger.kernelFootprintUops = GetParam() * 2;
    const DecoderResult r2 = dec.evaluate(bigger);
    EXPECT_GE(r2.uopsFromMite, r.uopsFromMite);
}

INSTANTIATE_TEST_SUITE_P(Footprints, FootprintSweep,
                         ::testing::Values(256, 1024, 1536, 2048, 8192));

}  // namespace
}  // namespace recstack
