/**
 * @file
 * Tests of the trace format and the record/replay workflow.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/trace_runner.h"

namespace recstack {
namespace {

ModelOptions
testOptions()
{
    ModelOptions opts = tinyOptions();
    opts.tableScale = 0.01;
    return opts;
}

std::vector<KernelProfile>
sampleKernels()
{
    KernelProfile fc;
    fc.opType = "FC";
    fc.opName = "fc_0";
    fc.fmaFlops = 12345;
    fc.vecElemOps = 678;
    fc.scalarOps = 90;
    fc.simdScalableOps = 12;
    fc.reloadLoadElems = 3456;
    fc.gemmWidth = 64;
    fc.codeFootprintBytes = 2048;
    fc.codeRegion = "kernel:FC";
    fc.codeIterations = 99;
    fc.dispatchOps = 18000;
    fc.dispatchCodeBytes = 20480;
    MemStream s;
    s.region = "emb0_table";
    s.pattern = AccessPattern::kRandom;
    s.accesses = 555;
    s.chunkBytes = 256;
    s.footprintBytes = 1 << 20;
    s.zipfExponent = 0.75;
    s.mlp = 12.0;
    fc.streams.push_back(s);
    MemStream w = s;
    w.pattern = AccessPattern::kStrided;
    w.strideBytes = 512;
    w.isWrite = true;
    fc.streams.push_back(w);
    BranchStream b;
    b.count = 777;
    b.takenProbability = 0.85;
    b.randomness = 0.6;
    b.scalesWithSimd = true;
    fc.branches.push_back(b);

    KernelProfile gru;
    gru.opType = "GRULayer";
    gru.opName = "gru_0";
    gru.serialSteps = 16;
    return {fc, gru};
}

TEST(TraceFormat, RoundTripPreservesEverything)
{
    TraceMeta meta;
    meta.model = "RM1";
    meta.framework = "Caffe2";
    meta.batch = 64;
    meta.inputBytes = 4096;
    meta.inputBlobs = 17;

    std::stringstream buffer;
    writeTrace(buffer, meta, sampleKernels());

    TraceMeta loaded;
    std::vector<KernelProfile> kernels;
    std::string error;
    ASSERT_TRUE(readTrace(buffer, &loaded, &kernels, &error)) << error;

    EXPECT_EQ(loaded.model, "RM1");
    EXPECT_EQ(loaded.batch, 64);
    EXPECT_EQ(loaded.inputBytes, 4096u);
    EXPECT_EQ(loaded.inputBlobs, 17u);
    ASSERT_EQ(kernels.size(), 2u);

    const KernelProfile& fc = kernels[0];
    EXPECT_EQ(fc.opType, "FC");
    EXPECT_EQ(fc.opName, "fc_0");
    EXPECT_EQ(fc.fmaFlops, 12345u);
    EXPECT_EQ(fc.vecElemOps, 678u);
    EXPECT_EQ(fc.scalarOps, 90u);
    EXPECT_EQ(fc.simdScalableOps, 12u);
    EXPECT_EQ(fc.reloadLoadElems, 3456u);
    EXPECT_EQ(fc.gemmWidth, 64u);
    EXPECT_EQ(fc.codeRegion, "kernel:FC");
    EXPECT_EQ(fc.codeIterations, 99u);
    EXPECT_EQ(fc.dispatchOps, 18000u);
    ASSERT_EQ(fc.streams.size(), 2u);
    EXPECT_EQ(fc.streams[0].pattern, AccessPattern::kRandom);
    EXPECT_EQ(fc.streams[0].accesses, 555u);
    EXPECT_DOUBLE_EQ(fc.streams[0].zipfExponent, 0.75);
    EXPECT_EQ(fc.streams[1].pattern, AccessPattern::kStrided);
    EXPECT_TRUE(fc.streams[1].isWrite);
    EXPECT_EQ(fc.streams[1].strideBytes, 512u);
    ASSERT_EQ(fc.branches.size(), 1u);
    EXPECT_TRUE(fc.branches[0].scalesWithSimd);
    EXPECT_DOUBLE_EQ(fc.branches[0].takenProbability, 0.85);

    EXPECT_EQ(kernels[1].serialSteps, 16u);
}

TEST(TraceFormat, RejectsBadMagic)
{
    std::stringstream buffer("not-a-trace v1\nend\n");
    TraceMeta meta;
    std::vector<KernelProfile> kernels;
    std::string error;
    EXPECT_FALSE(readTrace(buffer, &meta, &kernels, &error));
    EXPECT_NE(error.find("magic"), std::string::npos);
}

TEST(TraceFormat, RejectsTruncation)
{
    std::stringstream full;
    writeTrace(full, TraceMeta{}, sampleKernels());
    std::string text = full.str();
    text = text.substr(0, text.size() / 2);
    std::stringstream truncated(text);
    TraceMeta meta;
    std::vector<KernelProfile> kernels;
    std::string error;
    EXPECT_FALSE(readTrace(truncated, &meta, &kernels, &error));
    EXPECT_NE(error.find("truncated"), std::string::npos);
}

TEST(TraceFormat, RejectsStrayRecords)
{
    std::stringstream buffer(
        "recstack-trace v1\nstream region=x pattern=seq\nend\n");
    TraceMeta meta;
    std::vector<KernelProfile> kernels;
    std::string error;
    EXPECT_FALSE(readTrace(buffer, &meta, &kernels, &error));
    EXPECT_NE(error.find("outside kernel"), std::string::npos);
}

TEST(TraceFormat, FileSaveLoad)
{
    const std::string path =
        ::testing::TempDir() + "/recstack_trace_test.trace";
    TraceMeta meta;
    meta.model = "WnD";
    meta.batch = 8;
    std::string error;
    ASSERT_TRUE(saveTrace(path, meta, sampleKernels(), &error)) << error;

    TraceMeta loaded;
    std::vector<KernelProfile> kernels;
    ASSERT_TRUE(loadTrace(path, &loaded, &kernels, &error)) << error;
    EXPECT_EQ(loaded.model, "WnD");
    EXPECT_EQ(kernels.size(), 2u);

    EXPECT_FALSE(loadTrace("/nonexistent/path.trace", &loaded, &kernels,
                           &error));
}

TEST(TraceReplay, MatchesDirectRunOnCpu)
{
    Characterizer characterizer(testOptions(), 42);
    const Platform bdw = makeCpuPlatform(broadwellConfig());

    const RunResult direct =
        characterizer.run(ModelId::kRM1, bdw, 16);
    const RecordedTrace trace =
        recordTrace(characterizer, ModelId::kRM1, 16);
    const RunResult replayed = replayTrace(trace, bdw, 42);

    EXPECT_DOUBLE_EQ(replayed.seconds, direct.seconds);
    EXPECT_EQ(replayed.counters.uopsRetired,
              direct.counters.uopsRetired);
    EXPECT_EQ(replayed.counters.branchMispredicts,
              direct.counters.branchMispredicts);
}

TEST(TraceReplay, MatchesDirectRunOnGpu)
{
    Characterizer characterizer(testOptions(), 42);
    const Platform t4 = makeGpuPlatform(t4Config());

    const RunResult direct = characterizer.run(ModelId::kWnD, t4, 64);
    const RecordedTrace trace =
        recordTrace(characterizer, ModelId::kWnD, 64);
    const RunResult replayed = replayTrace(trace, t4, 42);

    EXPECT_DOUBLE_EQ(replayed.seconds, direct.seconds);
    EXPECT_DOUBLE_EQ(replayed.gpu.transferSeconds,
                     direct.gpu.transferSeconds);
}

TEST(TraceReplay, SurvivesSerializationRoundTrip)
{
    Characterizer characterizer(testOptions(), 42);
    const Platform clx = makeCpuPlatform(cascadeLakeConfig());
    const RecordedTrace trace =
        recordTrace(characterizer, ModelId::kRM2, 16);

    std::stringstream buffer;
    writeTrace(buffer, trace.meta, trace.kernels);
    RecordedTrace loaded;
    std::string error;
    ASSERT_TRUE(readTrace(buffer, &loaded.meta, &loaded.kernels, &error))
        << error;

    const RunResult a = replayTrace(trace, clx, 7);
    const RunResult b = replayTrace(loaded, clx, 7);
    EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.counters.icacheMisses, b.counters.icacheMisses);
}

TEST(TraceReplay, FileHelperPanicsOnGarbage)
{
    const Platform bdw = makeCpuPlatform(broadwellConfig());
    EXPECT_DEATH(replayTraceFile("/nonexistent.trace", bdw),
                 "cannot replay");
}

}  // namespace
}  // namespace recstack
