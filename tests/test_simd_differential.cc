/**
 * @file
 * Vector-vs-scalar differential harness: the trust anchor of the SIMD
 * kernel tier (ops/kernels.h, docs/vectorization.md).
 *
 * The tolerance policy under test, per kernel family:
 *
 *  - BIT-IDENTICAL family — kernels whose vectorization preserves the
 *    per-element accumulation order (rowAdd/rowAddScaled/rowScale/
 *    rowCopy behind SLS/SLWS/SLMean/Gather/ReduceSum, and
 *    batchMatMulRows): scalar and avx2 outputs must memcmp equal.
 *    Model-wide, every blob NOT data-dependent on a dot-reduction op
 *    inherits this guarantee transitively.
 *  - TOLERANCE family — k-reduction kernels (dotBias behind FC,
 *    FusedFC and the GRU gate matmuls): the avx2 tier splits the
 *    reduction over 8 FMA lanes, which reorders additions. Kernel
 *    granularity, the divergence is bounded by
 *        |scalar - avx2| <= 16 * eps * (|bias| + sum_i |x_i * w_i|)
 *    (reassociation error scales with the magnitude sum of the terms,
 *    not the possibly-cancelled result). Model granularity, after
 *    layer composition and activations, outputs must satisfy
 *        |a - b| <= 1e-5 + 1e-4 * max(|a|, |b|).
 *
 * Matrix: 8 models x batch {1, 64, 256} x tier {scalar, avx2}, on the
 * interpreted AND compiled (plan-lowered) executor paths, plus
 * kernel-level property tests at odd/prime sizes that land in the
 * remainder/tail lanes, and an end-to-end RECSTACK_ISA env check.
 * avx2 cases skip (not silently pass) on hosts without AVX2+FMA.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cfloat>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/cpu_features.h"
#include "common/rng.h"
#include "graph/compiled_net.h"
#include "graph/executor.h"
#include "models/model.h"
#include "ops/embedding.h"
#include "ops/fc.h"
#include "ops/kernels.h"

namespace recstack {
namespace {

/// Model-granularity tolerance (docs/vectorization.md).
constexpr float kModelRtol = 1e-4f;
constexpr float kModelAtol = 1e-5f;

/// Kernel-granularity reassociation bound factor.
constexpr float kDotBoundFactor = 16.0f;

ModelOptions
testOptions()
{
    ModelOptions opts = tinyOptions();
    opts.tableScale = 0.01;
    return opts;
}

/** Bitwise tensor equality, any dtype. */
void
expectTensorsIdentical(const std::string& blob, const Tensor& a,
                       const Tensor& b)
{
    ASSERT_EQ(a.shape(), b.shape()) << "blob " << blob;
    ASSERT_EQ(a.dtype(), b.dtype()) << "blob " << blob;
    const void* pa = nullptr;
    const void* pb = nullptr;
    switch (a.dtype()) {
      case DType::kFloat32:
        pa = a.data<float>();
        pb = b.data<float>();
        break;
      case DType::kInt32:
        pa = a.data<int32_t>();
        pb = b.data<int32_t>();
        break;
      case DType::kInt64:
        pa = a.data<int64_t>();
        pb = b.data<int64_t>();
        break;
    }
    EXPECT_EQ(std::memcmp(pa, pb, a.byteSize()), 0)
        << "blob '" << blob << "' diverges between scalar and avx2 "
        << "but is in the bit-identical family";
}

/** Mixed absolute/relative fp32 comparison (tolerance family). */
void
expectTensorsClose(const std::string& blob, const Tensor& a,
                   const Tensor& b, float rtol, float atol)
{
    ASSERT_EQ(a.shape(), b.shape()) << "blob " << blob;
    ASSERT_EQ(a.dtype(), DType::kFloat32) << "blob " << blob;
    const float* pa = a.data<float>();
    const float* pb = b.data<float>();
    for (int64_t i = 0; i < a.numel(); ++i) {
        const float tol =
            atol + rtol * std::max(std::fabs(pa[i]), std::fabs(pb[i]));
        ASSERT_NEAR(pa[i], pb[i], tol)
            << "blob '" << blob << "' element " << i
            << " exceeds the documented dot-reduction tolerance";
    }
}

/**
 * Ops whose kernels reorder the k-reduction on the avx2 tier; any
 * blob data-dependent on one of these carries the tolerance, every
 * other blob must stay bit-identical.
 */
bool
isDotFamily(const std::string& type)
{
    return type == "FC" || type == "FusedFC" || type == "GRULayer" ||
           type == "AUGRULayer" || type == "FusedGRUStep";
}

/** Transitive taint: blobs allowed to differ between tiers. */
std::set<std::string>
toleranceBlobs(const NetDef& net)
{
    std::set<std::string> tainted;
    for (const auto& op : net.ops()) {
        bool taint = isDotFamily(op->type());
        if (!taint) {
            for (const std::string& input : op->inputs()) {
                if (tainted.count(input) != 0) {
                    taint = true;
                    break;
                }
            }
        }
        if (taint) {
            for (const std::string& output : op->outputs()) {
                tainted.insert(output);
            }
        }
    }
    return tainted;
}

/** Seed params + inputs identically across tiers. */
void
materializeInputs(const Model& model, int64_t batch, Workspace* ws)
{
    model.initParams(*ws);
    BatchGenerator gen(model.workload, /*seed=*/1234);
    gen.materialize(*ws, batch);
}

/** One interpreted numeric run under the given tier. */
void
runInterpreted(const Model& model, KernelIsa isa, int64_t batch,
               Workspace* ws)
{
    IsaScope tier(isa);
    materializeInputs(model, batch, ws);
    ExecOptions opts;
    opts.mode = ExecMode::kNumericOnly;
    opts.numThreads = 1;
    Executor::run(model.net, *ws, opts);
}

class SimdDifferential
    : public ::testing::TestWithParam<std::tuple<ModelId, int64_t>>
{
};

/**
 * Interpreted path: every blob of every model compared between tiers,
 * memcmp for the bit-identical family, documented tolerance for blobs
 * downstream of a dot reduction.
 */
TEST_P(SimdDifferential, InterpretedScalarVsAvx2PerBlobPolicy)
{
    if (!kernelIsaSupported(KernelIsa::kAvx2)) {
        GTEST_SKIP() << "avx2 tier unsupported on this host/build";
    }
    const ModelId id = std::get<0>(GetParam());
    const int64_t batch = std::get<1>(GetParam());
    const Model model = buildModel(id, testOptions());

    Workspace scalar_ws;
    runInterpreted(model, KernelIsa::kScalar, batch, &scalar_ws);
    Workspace avx2_ws;
    runInterpreted(model, KernelIsa::kAvx2, batch, &avx2_ws);

    const std::set<std::string> tolerance = toleranceBlobs(model.net);
    // Every model ends in FC layers; an empty taint set means the
    // classifier broke, not that the model is dot-free.
    ASSERT_FALSE(tolerance.empty());

    const std::vector<std::string> blobs = scalar_ws.names();
    ASSERT_EQ(blobs.size(), avx2_ws.names().size());
    for (const std::string& blob : blobs) {
        ASSERT_TRUE(avx2_ws.has(blob)) << blob;
        const Tensor& a = scalar_ws.get(blob);
        const Tensor& b = avx2_ws.get(blob);
        if (tolerance.count(blob) != 0 &&
            a.dtype() == DType::kFloat32) {
            expectTensorsClose(blob, a, b, kModelRtol, kModelAtol);
        } else {
            expectTensorsIdentical(blob, a, b);
        }
    }
}

/**
 * Compiled path: a plan lowered under a tier records that tier, and
 * its fused kernels match the same-tier interpreted run bit-for-bit
 * (the canonical-dot contract of ops/kernels.h).
 */
TEST_P(SimdDifferential, CompiledMatchesInterpretedPerTier)
{
    const ModelId id = std::get<0>(GetParam());
    const int64_t batch = std::get<1>(GetParam());
    const Model model = buildModel(id, testOptions());

    std::vector<KernelIsa> isas = {KernelIsa::kScalar};
    if (kernelIsaSupported(KernelIsa::kAvx2)) {
        isas.push_back(KernelIsa::kAvx2);
    }
    for (const KernelIsa isa : isas) {
        SCOPED_TRACE(kernelIsaName(isa));
        IsaScope tier(isa);

        Workspace ref_ws;
        materializeInputs(model, batch, &ref_ws);
        ExecOptions opts;
        opts.mode = ExecMode::kNumericOnly;
        opts.numThreads = 1;
        Executor::run(model.net, ref_ws, opts);

        auto compiled = CompiledNet::compile(model.net);
        Workspace ws;
        Arena arena;
        materializeInputs(model, batch, &ws);
        // The plan is specialized under this scope: lowering-time ISA.
        EXPECT_EQ(compiled->plan(ws, batch).kernelIsa, isa);
        Executor::run(*compiled, ws, arena, batch, opts);

        for (const std::string& blob : model.net.externalOutputs()) {
            ASSERT_TRUE(ws.has(blob)) << blob;
            expectTensorsIdentical(blob, ref_ws.get(blob),
                                   ws.get(blob));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, SimdDifferential,
    ::testing::Combine(::testing::Values(ModelId::kNCF, ModelId::kRM1,
                                         ModelId::kRM2, ModelId::kRM3,
                                         ModelId::kWnD, ModelId::kMTWnD,
                                         ModelId::kDIN, ModelId::kDIEN),
                       ::testing::Values(int64_t{1}, int64_t{64},
                                         int64_t{256})),
    [](const ::testing::TestParamInfo<std::tuple<ModelId, int64_t>>&
           info) {
        std::string name = modelName(std::get<0>(info.param));
        for (char& c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c))) {
                c = '_';  // "MT-WnD" -> "MT_WnD"
            }
        }
        return name + "_b" + std::to_string(std::get<1>(info.param));
    });

/**
 * A plan compiled while avx2 is active keeps executing avx2 kernels
 * after the process reverts to scalar: lowering-time choice, pinned
 * by the IsaScope the executor installs from NetPlan::kernelIsa.
 */
TEST(SimdDifferentialVariants, PlanPinsLoweringTimeTier)
{
    if (!kernelIsaSupported(KernelIsa::kAvx2)) {
        GTEST_SKIP() << "avx2 tier unsupported on this host/build";
    }
    const Model model = buildModel(ModelId::kRM1, testOptions());
    const int64_t batch = 64;
    ExecOptions opts;
    opts.mode = ExecMode::kNumericOnly;

    auto compiled = CompiledNet::compile(model.net);
    Workspace avx2_ws;
    Arena avx2_arena;
    materializeInputs(model, batch, &avx2_ws);
    {
        IsaScope tier(KernelIsa::kAvx2);
        Executor::run(*compiled, avx2_ws, avx2_arena, batch, opts);
        EXPECT_EQ(compiled->plan(avx2_ws, batch).kernelIsa,
                  KernelIsa::kAvx2);
    }

    // Re-run the same compiled net with scalar active: the memoized
    // plan still carries (and installs) the avx2 tier.
    Workspace rerun_ws;
    Arena rerun_arena;
    materializeInputs(model, batch, &rerun_ws);
    {
        IsaScope tier(KernelIsa::kScalar);
        Executor::run(*compiled, rerun_ws, rerun_arena, batch, opts);
    }
    const std::string& out = model.outputBlob;
    expectTensorsIdentical(out, avx2_ws.get(out), rerun_ws.get(out));
}

/**
 * RECSTACK_ISA reaches the kernels end to end: an env-selected run is
 * bit-identical to the equivalent IsaScope-selected run, per tier.
 */
TEST(SimdDifferentialVariants, EnvVarSelectsTierEndToEnd)
{
    const Model model = buildModel(ModelId::kWnD, testOptions());
    std::vector<KernelIsa> isas = {KernelIsa::kScalar};
    if (kernelIsaSupported(KernelIsa::kAvx2)) {
        isas.push_back(KernelIsa::kAvx2);
    }
    for (const KernelIsa isa : isas) {
        SCOPED_TRACE(kernelIsaName(isa));
        Workspace scope_ws;
        runInterpreted(model, isa, 16, &scope_ws);

        ASSERT_EQ(setenv("RECSTACK_ISA", kernelIsaName(isa), 1), 0);
        clearKernelIsa();  // drop the cached env resolution
        Workspace env_ws;
        materializeInputs(model, 16, &env_ws);
        ExecOptions opts;
        opts.mode = ExecMode::kNumericOnly;
        Executor::run(model.net, env_ws, opts);
        ASSERT_EQ(unsetenv("RECSTACK_ISA"), 0);
        clearKernelIsa();

        for (const std::string& blob : scope_ws.names()) {
            expectTensorsIdentical(blob, scope_ws.get(blob),
                                   env_ws.get(blob));
        }
    }
}

/**
 * Graph-level prime/odd shapes: SLS dim 13 pooling into an FC with
 * k = 13, n = 7 over a 997-row table at batch 5 — every size lands in
 * a tail lane. The pooled blob must stay bit-identical across tiers;
 * the FC output carries the tolerance.
 */
TEST(SimdDifferentialVariants, PrimeDimensionNetTailLanes)
{
    if (!kernelIsaSupported(KernelIsa::kAvx2)) {
        GTEST_SKIP() << "avx2 tier unsupported on this host/build";
    }
    constexpr int64_t kRows = 997;
    constexpr int64_t kDim = 13;
    constexpr int64_t kOut = 7;
    constexpr int64_t kBatch = 5;

    NetDef net("prime");
    net.addExternalInput("table");
    net.addExternalInput("idx");
    net.addExternalInput("len");
    net.addExternalInput("w");
    net.addExternalInput("b");
    net.addOp(makeSparseLengthsSum("sls", "table", "idx", "len",
                                   "pooled"));
    net.addOp(makeFC("fc", "pooled", "w", "b", "y"));
    net.addExternalOutput("y");
    net.validate();

    auto fill = [](Workspace& ws) {
        Rng rng(42);
        std::vector<float> table(kRows * kDim);
        for (float& v : table) {
            v = rng.nextFloat(-1.0f, 1.0f);
        }
        std::vector<float> w(kOut * kDim);
        for (float& v : w) {
            v = rng.nextFloat(-1.0f, 1.0f);
        }
        std::vector<float> b(kOut);
        for (float& v : b) {
            v = rng.nextFloat(-1.0f, 1.0f);
        }
        // Segment lengths include 0 (empty pooling) and a prime 11.
        const std::vector<int32_t> len = {3, 0, 11, 1, 7};
        std::vector<int64_t> idx;
        for (int32_t l : len) {
            for (int32_t i = 0; i < l; ++i) {
                idx.push_back(static_cast<int64_t>(
                    rng.nextBounded(static_cast<uint64_t>(kRows))));
            }
        }
        ws.set("table", Tensor::fromFloats({kRows, kDim}, table));
        ws.set("idx", Tensor::fromInt64s(
                          {static_cast<int64_t>(idx.size())}, idx));
        ws.set("len", Tensor::fromInt32s({kBatch}, len));
        ws.set("w", Tensor::fromFloats({kOut, kDim}, w));
        ws.set("b", Tensor::fromFloats({kOut}, b));
    };

    ExecOptions opts;
    opts.mode = ExecMode::kNumericOnly;
    Workspace scalar_ws;
    fill(scalar_ws);
    {
        IsaScope tier(KernelIsa::kScalar);
        Executor::run(net, scalar_ws, opts);
    }
    Workspace avx2_ws;
    fill(avx2_ws);
    {
        IsaScope tier(KernelIsa::kAvx2);
        Executor::run(net, avx2_ws, opts);
    }
    expectTensorsIdentical("pooled", scalar_ws.get("pooled"),
                           avx2_ws.get("pooled"));
    expectTensorsClose("y", scalar_ws.get("y"), avx2_ws.get("y"),
                       kModelRtol, kModelAtol);
}

// ---------------------------------------------------------------------
// Kernel-granularity property tests over remainder/tail lanes.
// ---------------------------------------------------------------------

/// Sizes straddling the 8-lane boundary: below, at, and prime/odd
/// around multiples, up to several vector blocks.
const int64_t kTailSizes[] = {1,  2,  3,  5,  7,  8,   9,   13,  16,
                              17, 31, 32, 33, 61, 64,  67,  127, 128,
                              131, 251, 256, 257};

std::vector<float>
randomVec(Rng* rng, int64_t n)
{
    std::vector<float> v(static_cast<size_t>(n));
    for (float& x : v) {
        x = rng->nextFloat(-1.0f, 1.0f);
    }
    return v;
}

/** Reassociation bound: 16 * eps * (|bias| + sum |x_i w_i|). */
float
dotBound(float bias, const std::vector<float>& x,
         const std::vector<float>& w)
{
    float mag = std::fabs(bias);
    for (size_t i = 0; i < x.size(); ++i) {
        mag += std::fabs(x[i] * w[i]);
    }
    return kDotBoundFactor * FLT_EPSILON * mag;
}

TEST(SimdKernelProperties, DotBiasTailLanesWithinBound)
{
    if (!kernelIsaSupported(KernelIsa::kAvx2)) {
        GTEST_SKIP() << "avx2 tier unsupported on this host/build";
    }
    Rng rng(7);
    for (const int64_t k : kTailSizes) {
        SCOPED_TRACE("k=" + std::to_string(k));
        const std::vector<float> x = randomVec(&rng, k);
        const std::vector<float> w = randomVec(&rng, k);
        const float bias = rng.nextFloat(-1.0f, 1.0f);
        const float s = kern::dotBias(KernelIsa::kScalar, bias,
                                      x.data(), w.data(), k);
        const float v = kern::dotBias(KernelIsa::kAvx2, bias, x.data(),
                                      w.data(), k);
        if (k < 8) {
            // Tail-only path: no lane split happened, so the avx2
            // tier runs the exact scalar sequence.
            EXPECT_EQ(std::memcmp(&s, &v, sizeof(float)), 0)
                << "k<8 must be bit-identical, got " << s << " vs "
                << v;
        } else {
            EXPECT_NEAR(s, v, dotBound(bias, x, w));
        }
        // Both tiers must track a double-precision reference too —
        // agreement alone would not catch a both-wrong kernel.
        double ref = static_cast<double>(bias);
        for (int64_t c = 0; c < k; ++c) {
            ref += static_cast<double>(x[static_cast<size_t>(c)]) *
                   static_cast<double>(w[static_cast<size_t>(c)]);
        }
        EXPECT_NEAR(v, static_cast<float>(ref),
                    dotBound(bias, x, w) + 1e-6f);
    }
}

TEST(SimdKernelProperties, FcRowsMatchesStandaloneDotBiasPerTier)
{
    // n = 7 exercises the 4-wide j-block remainder; k = 131 the
    // 8-wide c remainder. Contract: every fcRows element equals a
    // standalone dotBias call on the same tier, bit for bit — this is
    // what keeps FusedFC and the GRU gates equal to unfused FC.
    constexpr int64_t m = 3;
    constexpr int64_t n = 7;
    constexpr int64_t k = 131;
    Rng rng(11);
    const std::vector<float> x = randomVec(&rng, m * k);
    const std::vector<float> w = randomVec(&rng, n * k);
    const std::vector<float> b = randomVec(&rng, n);

    std::vector<KernelIsa> isas = {KernelIsa::kScalar};
    if (kernelIsaSupported(KernelIsa::kAvx2)) {
        isas.push_back(KernelIsa::kAvx2);
    }
    for (const KernelIsa isa : isas) {
        SCOPED_TRACE(kernelIsaName(isa));
        std::vector<float> y(static_cast<size_t>(m * n));
        kern::fcRows(isa, x.data(), w.data(), b.data(), y.data(), 0, m,
                     n, k, kern::FcAct::kNone);
        for (int64_t i = 0; i < m; ++i) {
            for (int64_t j = 0; j < n; ++j) {
                const float ref = kern::dotBias(
                    isa, b[static_cast<size_t>(j)], x.data() + i * k,
                    w.data() + j * k, k);
                const float got = y[static_cast<size_t>(i * n + j)];
                ASSERT_EQ(std::memcmp(&ref, &got, sizeof(float)), 0)
                    << "fcRows(" << i << "," << j
                    << ") != dotBias on tier " << kernelIsaName(isa);
            }
        }
        // The fused activation maps the same accumulator.
        std::vector<float> yr(static_cast<size_t>(m * n));
        kern::fcRows(isa, x.data(), w.data(), b.data(), yr.data(), 0,
                     m, n, k, kern::FcAct::kRelu);
        for (size_t i = 0; i < yr.size(); ++i) {
            const float expected = y[i] > 0.0f ? y[i] : 0.0f;
            ASSERT_EQ(std::memcmp(&expected, &yr[i], sizeof(float)), 0);
        }
    }
}

TEST(SimdKernelProperties, RowKernelsBitIdenticalAcrossTiers)
{
    if (!kernelIsaSupported(KernelIsa::kAvx2)) {
        GTEST_SKIP() << "avx2 tier unsupported on this host/build";
    }
    Rng rng(13);
    for (const int64_t dim : kTailSizes) {
        SCOPED_TRACE("dim=" + std::to_string(dim));
        const std::vector<float> src = randomVec(&rng, dim);
        const std::vector<float> base = randomVec(&rng, dim);
        const float scale = rng.nextFloat(-2.0f, 2.0f);
        const size_t bytes = static_cast<size_t>(dim) * sizeof(float);

        std::vector<float> a = base;
        std::vector<float> b = base;
        kern::rowAdd(KernelIsa::kScalar, a.data(), src.data(), dim);
        kern::rowAdd(KernelIsa::kAvx2, b.data(), src.data(), dim);
        EXPECT_EQ(std::memcmp(a.data(), b.data(), bytes), 0) << "rowAdd";

        a = base;
        b = base;
        kern::rowAddScaled(KernelIsa::kScalar, a.data(), src.data(),
                           scale, dim);
        kern::rowAddScaled(KernelIsa::kAvx2, b.data(), src.data(),
                           scale, dim);
        EXPECT_EQ(std::memcmp(a.data(), b.data(), bytes), 0)
            << "rowAddScaled (FMA would break this)";

        a = base;
        b = base;
        kern::rowScale(KernelIsa::kScalar, a.data(), scale, dim);
        kern::rowScale(KernelIsa::kAvx2, b.data(), scale, dim);
        EXPECT_EQ(std::memcmp(a.data(), b.data(), bytes), 0)
            << "rowScale";

        a.assign(static_cast<size_t>(dim), 0.0f);
        b.assign(static_cast<size_t>(dim), 0.0f);
        kern::rowCopy(KernelIsa::kScalar, a.data(), src.data(), dim);
        kern::rowCopy(KernelIsa::kAvx2, b.data(), src.data(), dim);
        EXPECT_EQ(std::memcmp(a.data(), b.data(), bytes), 0)
            << "rowCopy";
    }
}

TEST(SimdKernelProperties, BatchMatMulRowsBitIdenticalAcrossTiers)
{
    if (!kernelIsaSupported(KernelIsa::kAvx2)) {
        GTEST_SKIP() << "avx2 tier unsupported on this host/build";
    }
    constexpr int64_t batch = 2;
    constexpr int64_t m = 3;
    constexpr int64_t k = 5;
    Rng rng(17);
    for (const int64_t n : {int64_t{1}, int64_t{7}, int64_t{8},
                            int64_t{9}, int64_t{13}, int64_t{31},
                            int64_t{33}}) {
        SCOPED_TRACE("n=" + std::to_string(n));
        const std::vector<float> a = randomVec(&rng, batch * m * k);
        const std::vector<float> b = randomVec(&rng, batch * k * n);
        std::vector<float> cs(static_cast<size_t>(batch * m * n));
        std::vector<float> cv(cs.size());
        kern::batchMatMulRows(KernelIsa::kScalar, a.data(), b.data(),
                              cs.data(), 0, batch * m, m, k, n);
        kern::batchMatMulRows(KernelIsa::kAvx2, a.data(), b.data(),
                              cv.data(), 0, batch * m, m, k, n);
        EXPECT_EQ(std::memcmp(cs.data(), cv.data(),
                              cs.size() * sizeof(float)),
                  0)
            << "batchMatMulRows must keep the scalar per-element "
            << "accumulation order";
    }
}

}  // namespace
}  // namespace recstack
