/**
 * @file
 * Tests of the persistent disk far tier: the three-way differential
 * (dense vs. simulated far tier vs. disk far tier must be
 * bit-identical across all eight models, batch sizes and intra-op
 * widths on both executors), spline-vs-binary-search property tests
 * over adversarial key sets, DiskTier page/pool mechanics, the
 * crash-consistency reopen path, write-through updates, the
 * promotion/demotion loop, and the env hatches. Runs under `ctest -L
 * disk` and both sanitizer passes (`-L sanitize`).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "graph/compiled_net.h"
#include "graph/executor.h"
#include "models/model.h"
#include "models/store_binding.h"
#include "serve/serving_engine.h"
#include "serve/serving_node.h"
#include "store/disk_tier.h"
#include "store/embedding_store.h"
#include "store/spline_index.h"

namespace recstack {
namespace {

/** Fresh page-file directory per test, removed on teardown. */
class DiskFixture : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        std::string tmpl = "/tmp/recstack_disk_test.XXXXXX";
        std::vector<char> buf(tmpl.begin(), tmpl.end());
        buf.push_back('\0');
        ASSERT_NE(::mkdtemp(buf.data()), nullptr);
        dir_ = buf.data();
    }
    void TearDown() override
    {
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }

    std::string dir_;
};

/** Disk-tier store config: small shards/caches, real page file. */
StoreConfig
diskStoreConfig(const std::string& dir)
{
    StoreConfig cfg;
    cfg.numShards = 4;
    cfg.cacheBytesPerShard = 16u << 10;
    cfg.nearTierFraction = 0.5;
    cfg.farTier = FarTierKind::kDisk;
    cfg.disk.dir = dir;
    cfg.disk.pageBytes = 1024;
    cfg.disk.bufferPages = 8;  // small pool -> exercise CLOCK
    return cfg;
}

/** Store with one [rows, dim] table whose row r holds r + d/1000. */
std::unique_ptr<EmbeddingStore>
makeStore(int64_t rows, int64_t dim, StoreConfig cfg)
{
    auto store = std::make_unique<EmbeddingStore>(cfg);
    Tensor table({rows, dim});
    float* data = table.data<float>();
    for (int64_t r = 0; r < rows; ++r) {
        for (int64_t d = 0; d < dim; ++d) {
            data[r * dim + d] =
                static_cast<float>(r) + static_cast<float>(d) * 1e-3f;
        }
    }
    store->addTable("t0", std::move(table));
    return store;
}

float
expectedCell(int64_t r, int64_t d)
{
    return static_cast<float>(r) + static_cast<float>(d) * 1e-3f;
}

// --- The three-way differential. --------------------------------------

ModelOptions
testOptions()
{
    ModelOptions opts = tinyOptions();
    opts.tableScale = 0.01;
    return opts;
}

void
expectTensorsIdentical(const std::string& blob, const std::string& what,
                       const Tensor& a, const Tensor& b)
{
    ASSERT_EQ(a.shape(), b.shape()) << "blob " << blob;
    ASSERT_EQ(a.dtype(), b.dtype()) << "blob " << blob;
    ASSERT_EQ(a.dtype(), DType::kFloat32) << "blob " << blob;
    EXPECT_EQ(std::memcmp(a.data<float>(), b.data<float>(),
                          a.byteSize()),
              0)
        << "blob '" << blob << "' diverges between dense and " << what;
}

class DiskDifferential
    : public ::testing::TestWithParam<std::tuple<ModelId, int64_t>>
{
  protected:
    void SetUp() override
    {
        std::string tmpl = "/tmp/recstack_disk_diff.XXXXXX";
        std::vector<char> buf(tmpl.begin(), tmpl.end());
        buf.push_back('\0');
        ASSERT_NE(::mkdtemp(buf.data()), nullptr);
        dir_ = buf.data();
    }
    void TearDown() override
    {
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }

    std::string dir_;
};

TEST_P(DiskDifferential, DiskBackedOutputsBitIdenticalToDense)
{
    const ModelId id = std::get<0>(GetParam());
    const int64_t batch = std::get<1>(GetParam());
    const Model model = buildModel(id, testOptions());

    // Dense reference: privately initialized tables, interpreted,
    // serial.
    Workspace ref_ws;
    model.initParams(ref_ws);
    {
        BatchGenerator gen(model.workload, /*seed=*/1234);
        gen.materialize(ref_ws, batch);
    }
    ExecOptions ref_opts;
    ref_opts.mode = ExecMode::kNumericOnly;
    ref_opts.numThreads = 1;
    Executor::run(model.net, ref_ws, ref_opts);

    StoreConfig sim_cfg = diskStoreConfig(dir_);
    sim_cfg.farTier = FarTierKind::kSimulated;
    const StoreBackedModel sim_model(model, sim_cfg);
    const StoreBackedModel disk_model(model, diskStoreConfig(dir_));
    ASSERT_TRUE(disk_model.store().diskTierActive());
    auto compiled = CompiledNet::compile(model.net);

    struct Variant {
        const StoreBackedModel* m;
        const char* what;
    };
    for (const Variant& v :
         {Variant{&sim_model, "simulated-tier execution"},
          Variant{&disk_model, "disk-tier execution"}}) {
        for (int threads : {1, 8}) {
            ExecOptions opts;
            opts.mode = ExecMode::kNumericOnly;
            opts.numThreads = threads;

            // Interpreted run.
            {
                Workspace ws;
                v.m->bind(ws);
                BatchGenerator gen(model.workload, /*seed=*/1234);
                gen.materialize(ws, batch);
                Executor::run(model.net, ws, opts);
                for (const std::string& blob :
                     model.net.externalOutputs()) {
                    ASSERT_TRUE(ws.has(blob)) << blob;
                    expectTensorsIdentical(blob, v.what,
                                           ref_ws.get(blob),
                                           ws.get(blob));
                }
            }
            // Compiled run (fused schedule + arena plan).
            {
                Workspace ws;
                Arena arena;
                v.m->bind(ws);
                BatchGenerator gen(model.workload, /*seed=*/1234);
                gen.materialize(ws, batch);
                Executor::run(*compiled, ws, arena, batch, opts);
                for (const std::string& blob :
                     model.net.externalOutputs()) {
                    ASSERT_TRUE(ws.has(blob)) << blob;
                    expectTensorsIdentical(blob, v.what,
                                           ref_ws.get(blob),
                                           ws.get(blob));
                }
            }
        }
    }
    EXPECT_GT(disk_model.store().stats().total.lookups, 0u);
    if (batch >= 256) {
        // A 256-sample pooled batch reaches past the 50% near-tier
        // boundary of every model, so real page reads happened.
        EXPECT_GT(disk_model.store().stats().total.diskFetches, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, DiskDifferential,
    ::testing::Combine(::testing::Values(ModelId::kNCF, ModelId::kRM1,
                                         ModelId::kRM2, ModelId::kRM3,
                                         ModelId::kWnD, ModelId::kMTWnD,
                                         ModelId::kDIN, ModelId::kDIEN),
                       ::testing::Values(int64_t{1}, int64_t{256})),
    [](const ::testing::TestParamInfo<std::tuple<ModelId, int64_t>>&
           info) {
        std::string name = modelName(std::get<0>(info.param));
        for (char& c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c))) {
                c = '_';
            }
        }
        return name + "_b" + std::to_string(std::get<1>(info.param));
    });

// --- Spline vs. binary search: exactness on adversarial key sets. -----

void
checkSplineExact(const std::vector<uint64_t>& keys,
                 SplineIndexConfig cfg = {})
{
    const SplineIndex index(keys, cfg);
    for (size_t i = 0; i < keys.size(); ++i) {
        ASSERT_EQ(index.find(keys[i]), i) << "key " << keys[i];
        ASSERT_EQ(index.findBinarySearch(keys[i]), i);
    }
    // Absent probes: neighbors of every present key, plus the ends.
    for (size_t i = 0; i < keys.size(); i += 7) {
        for (uint64_t probe : {keys[i] - 1, keys[i] + 1}) {
            const size_t got = index.find(probe);
            const size_t want = index.findBinarySearch(probe);
            ASSERT_EQ(got, want) << "probe " << probe;
        }
    }
    if (!keys.empty()) {
        EXPECT_EQ(index.find(keys.front() - 1), SplineIndex::kNotFound);
        EXPECT_EQ(index.find(keys.back() + 1), SplineIndex::kNotFound);
    }
    const SplineIndexStats s = index.stats();
    EXPECT_EQ(s.numKeys, keys.size());
    // The measured interpolation error respects the configured
    // corridor (small slack for the corridor-restart boundary).
    EXPECT_LE(s.maxErrorObserved, s.maxErrorBound + 2);
}

TEST(SplineIndex, PrimeStrideKeys)
{
    std::vector<uint64_t> keys;
    for (uint64_t i = 0; i < 200000; ++i) {
        keys.push_back(100 + i * 10007);
    }
    checkSplineExact(keys);
}

TEST(SplineIndex, DenseRunKeys)
{
    std::vector<uint64_t> keys;
    for (uint64_t i = 0; i < 100000; ++i) {
        keys.push_back(1000 + i);
    }
    checkSplineExact(keys);
    // A perfectly linear set needs only one segment.
    const SplineIndex index(keys, {});
    EXPECT_EQ(index.stats().numSegments, 1u);
}

TEST(SplineIndex, SingleAndTinyKeySets)
{
    checkSplineExact({});
    checkSplineExact({42});
    checkSplineExact({42, 43});
    checkSplineExact({0, UINT64_MAX / 2, UINT64_MAX - 1});
    const SplineIndex empty({}, {});
    EXPECT_EQ(empty.find(7), SplineIndex::kNotFound);
}

TEST(SplineIndex, StoreShapedClusters)
{
    // The store's real key distribution: per-table dense row runs
    // separated by 2^40 gaps — the case a learned index must handle
    // and simple arithmetic cannot.
    std::vector<uint64_t> keys;
    for (uint64_t table = 0; table < 24; ++table) {
        const uint64_t rows = 500 + table * 377;
        for (uint64_t r = 100; r < rows; ++r) {
            keys.push_back((table << 40) | r);
        }
    }
    checkSplineExact(keys);
}

TEST(SplineIndex, RandomSparseKeys)
{
    Rng rng(99);
    std::vector<uint64_t> keys;
    uint64_t k = 0;
    for (int i = 0; i < 150000; ++i) {
        k += 1 + rng.nextBounded(1u << 20);
        keys.push_back(k);
    }
    for (size_t max_error : {4u, 32u, 256u}) {
        SplineIndexConfig cfg;
        cfg.maxError = max_error;
        checkSplineExact(keys, cfg);
    }
    // A tighter corridor buys more segments.
    SplineIndexConfig tight;
    tight.maxError = 4;
    SplineIndexConfig loose;
    loose.maxError = 256;
    EXPECT_GT(SplineIndex(keys, tight).stats().numSegments,
              SplineIndex(keys, loose).stats().numSegments);
}

// --- DiskTier page/pool mechanics. ------------------------------------

TEST_F(DiskFixture, RoundTripAndPoolEviction)
{
    DiskTierConfig cfg;
    cfg.pageBytes = 512;
    cfg.bufferPages = 2;  // force CLOCK victims
    const std::string path = dir_ + "/tier.pages";
    std::unique_ptr<DiskTier> tier;
    {
        DiskTier::Builder builder(path, cfg);
        builder.beginTable(0, 8);
        for (int64_t r = 0; r < 500; ++r) {
            std::vector<float> row(8);
            for (int64_t d = 0; d < 8; ++d) {
                row[static_cast<size_t>(d)] = expectedCell(r, d);
            }
            builder.appendRow(r, row.data());
        }
        builder.beginTable(3, 4);
        for (int64_t r = 10; r < 200; ++r) {
            std::vector<float> row(4, static_cast<float>(r) * 2.0f);
            builder.appendRow(r, row.data());
        }
        tier = builder.finish();
    }
    ASSERT_NE(tier, nullptr);
    EXPECT_EQ(tier->tableDim(0), 8);
    EXPECT_EQ(tier->tableDim(3), 4);
    EXPECT_EQ(tier->tableRows(0), 500u);
    EXPECT_EQ(tier->tableRows(3), 190u);
    EXPECT_FALSE(tier->contains(uint64_t{1} << 40));  // table 1 absent
    EXPECT_FALSE(tier->contains((uint64_t{3} << 40) | 5));

    std::vector<float> got(8);
    for (int pass = 0; pass < 2; ++pass) {
        for (int64_t r = 0; r < 500; ++r) {
            ASSERT_TRUE(tier->readRow(static_cast<uint64_t>(r),
                                      got.data()));
            for (int64_t d = 0; d < 8; ++d) {
                ASSERT_EQ(got[static_cast<size_t>(d)],
                          expectedCell(r, d))
                    << "row " << r;
            }
            // Binary-search reference path returns the same bytes.
            std::vector<float> ref(8);
            ASSERT_TRUE(tier->readRowBinarySearch(
                static_cast<uint64_t>(r), ref.data()));
            ASSERT_EQ(std::memcmp(got.data(), ref.data(),
                                  8 * sizeof(float)),
                      0);
        }
        for (int64_t r = 10; r < 200; ++r) {
            ASSERT_TRUE(tier->readRow((uint64_t{3} << 40) |
                                          static_cast<uint64_t>(r),
                                      got.data()));
            ASSERT_EQ(got[0], static_cast<float>(r) * 2.0f);
        }
    }

    const DiskTierStats stats = tier->stats();
    EXPECT_GT(stats.rowReads, 0u);
    EXPECT_GT(stats.pageLoads, 0u);
    EXPECT_GT(stats.pageEvictions, 0u) << "2-frame pool never evicted";
    EXPECT_GT(stats.pageHits, 0u) << "rows sharing a page never hit";
    EXPECT_GE(stats.readSeconds, 0.0);
    EXPECT_GT(stats.fileBytes, 0u);
    EXPECT_EQ(stats.frameBytes, cfg.bufferPages * cfg.pageBytes);
    EXPECT_EQ(stats.spline.numKeys, 690u);
}

TEST_F(DiskFixture, DirectIOModeRoundTrips)
{
    DiskTierConfig cfg;
    cfg.pageBytes = 512;
    cfg.bufferPages = 4;
    cfg.directIO = true;  // falls back to plain pread on tmpfs
    const std::string path = dir_ + "/direct.pages";
    DiskTier::Builder builder(path, cfg);
    builder.beginTable(0, 16);
    for (int64_t r = 0; r < 300; ++r) {
        std::vector<float> row(16);
        for (int64_t d = 0; d < 16; ++d) {
            row[static_cast<size_t>(d)] = expectedCell(r, d);
        }
        builder.appendRow(r, row.data());
    }
    auto tier = builder.finish();
    EXPECT_FALSE(tier->stats().mmapActive);
    std::vector<float> got(16);
    for (int64_t r = 0; r < 300; ++r) {
        ASSERT_TRUE(
            tier->readRow(static_cast<uint64_t>(r), got.data()));
        for (int64_t d = 0; d < 16; ++d) {
            ASSERT_EQ(got[static_cast<size_t>(d)], expectedCell(r, d));
        }
    }
}

TEST_F(DiskFixture, ReopenAfterCrashReverifies)
{
    DiskTierConfig cfg;
    cfg.pageBytes = 1024;
    cfg.keepFile = true;  // survive the first tier's destructor
    const std::string path = dir_ + "/crash.pages";
    {
        DiskTier::Builder builder(path, cfg);
        builder.beginTable(2, 8);
        for (int64_t r = 0; r < 400; ++r) {
            std::vector<float> row(8);
            for (int64_t d = 0; d < 8; ++d) {
                row[static_cast<size_t>(d)] = expectedCell(r, d);
            }
            builder.appendRow(r, row.data());
        }
        auto tier = builder.finish();
        // Mutate one row so the reopen must see the persisted write.
        std::vector<float> updated(8, -7.5f);
        ASSERT_TRUE(
            tier->writeRow((uint64_t{2} << 40) | 123, updated.data()));
    }  // tier destroyed: the "crash" boundary

    auto reopened = DiskTier::open(path, cfg);
    ASSERT_NE(reopened, nullptr);
    EXPECT_EQ(reopened->index().stats().numKeys, 400u);
    std::vector<float> got(8);
    for (int64_t r = 0; r < 400; ++r) {
        ASSERT_TRUE(reopened->readRow(
            (uint64_t{2} << 40) | static_cast<uint64_t>(r),
            got.data()));
        if (r == 123) {
            ASSERT_EQ(got[0], -7.5f) << "write lost across reopen";
        } else {
            for (int64_t d = 0; d < 8; ++d) {
                ASSERT_EQ(got[static_cast<size_t>(d)],
                          expectedCell(r, d))
                    << "row " << r << " corrupted across reopen";
            }
        }
    }
}

// --- Store integration: serving entirely from disk. -------------------

TEST_F(DiskFixture, WholeTableServesFromDiskBitExact)
{
    const int64_t rows = 3000;
    const int64_t dim = 12;
    StoreConfig cfg = diskStoreConfig(dir_);
    cfg.nearTierFraction = 0.0;  // every row is disk-resident
    cfg.cacheBytesPerShard = 4u << 10;
    auto store = makeStore(rows, dim, cfg);
    ASSERT_TRUE(store->diskTierActive());

    std::vector<int64_t> indices(static_cast<size_t>(rows));
    for (int64_t i = 0; i < rows; ++i) {
        indices[static_cast<size_t>(i)] = i;
    }
    std::vector<float> out(static_cast<size_t>(rows * dim));
    store->lookupGather(0, indices.data(), 0, rows, out.data());
    for (int64_t r = 0; r < rows; ++r) {
        for (int64_t d = 0; d < dim; ++d) {
            ASSERT_EQ(out[static_cast<size_t>(r * dim + d)],
                      expectedCell(r, d))
                << "row " << r;
        }
    }
    const StoreStats stats = store->stats();
    EXPECT_GT(stats.total.diskFetches, 0u);
    EXPECT_GT(stats.total.bytesFromDisk, 0u);
    EXPECT_GT(stats.total.diskSeconds, 0.0);
    EXPECT_GT(stats.diskCostPercentile(0.99), 0.0);
    EXPECT_TRUE(stats.diskTierActive);
    // The DRAM-resident footprint excludes the spilled table: near
    // heads are empty and the page file holds the payload.
    EXPECT_EQ(store->tableBytes(), 0u);
    EXPECT_GT(store->diskFileBytes(),
              static_cast<uint64_t>(rows * dim) * sizeof(float));
}

TEST_F(DiskFixture, UpdateWritesThroughToDisk)
{
    const int64_t rows = 1000;
    const int64_t dim = 8;
    StoreConfig cfg = diskStoreConfig(dir_);
    cfg.cacheBytesPerShard = 0;  // no cache: reads come from the tier
    auto store = makeStore(rows, dim, cfg);

    const int64_t cold = rows - 1;  // past the 50% near boundary
    std::vector<float> updated(static_cast<size_t>(dim), 9.25f);
    store->update(0, cold, updated.data());
    std::vector<float> got(static_cast<size_t>(dim));
    store->lookupGather(0, &cold, 0, 1, got.data());
    EXPECT_EQ(std::memcmp(got.data(), updated.data(),
                          static_cast<size_t>(dim) * sizeof(float)),
              0)
        << "disk write-through lost";
    EXPECT_GT(store->stats().total.updates, 0u);
    EXPECT_GT(store->stats().diskTier.rowWrites, 0u);
}

TEST_F(DiskFixture, PromotionMovesHotDiskRowsToDram)
{
    const int64_t rows = 2000;
    const int64_t dim = 8;
    StoreConfig cfg = diskStoreConfig(dir_);
    cfg.numShards = 2;
    cfg.cacheBytesPerShard = 0;  // isolate the promoted slab
    cfg.nearTierFraction = 0.0;
    cfg.disk.promoteThreshold = 2;
    cfg.disk.promotedBytesPerShard = 64u << 10;
    auto store = makeStore(rows, dim, cfg);

    // Hammer a small hot set of disk rows past the threshold.
    std::vector<int64_t> hot = {3, 17, 101, 555};
    std::vector<float> got(static_cast<size_t>(dim));
    for (int pass = 0; pass < 6; ++pass) {
        for (int64_t r : hot) {
            store->lookupGather(0, &r, 0, 1, got.data());
        }
        store->drainPrefetch();  // let the promotion loop run
    }
    StoreStats stats = store->stats();
    EXPECT_GT(stats.total.promotedRows, 0u)
        << "hot disk rows never promoted";
    EXPECT_GT(store->promotedBytesUsed(), 0u);

    // Promoted rows now serve as near fetches, bit-exact.
    store->resetStats();
    for (int64_t r : hot) {
        store->lookupGather(0, &r, 0, 1, got.data());
        for (int64_t d = 0; d < dim; ++d) {
            ASSERT_EQ(got[static_cast<size_t>(d)], expectedCell(r, d));
        }
    }
    stats = store->stats();
    EXPECT_GT(stats.total.nearFetches, 0u)
        << "promoted rows still reading from disk";

    // A slab smaller than one row can never promote but must demote
    // (evict) cleanly on every attempt.
    StoreConfig tiny = cfg;
    tiny.disk.promotedBytesPerShard = 1;
    auto tiny_store = makeStore(rows, dim, tiny);
    for (int pass = 0; pass < 6; ++pass) {
        for (int64_t r : hot) {
            tiny_store->lookupGather(0, &r, 0, 1, got.data());
        }
        tiny_store->drainPrefetch();
    }
    EXPECT_EQ(tiny_store->promotedBytesUsed(), 0u);
}

TEST_F(DiskFixture, ConcurrentLookupsUpdatesPrefetchAndPromotion)
{
    // The TSan target: demand disk reads, write-through updates,
    // async prefetch and the background promotion loop all at once.
    const int64_t rows = 2048;
    const int64_t dim = 16;
    StoreConfig cfg = diskStoreConfig(dir_);
    cfg.numShards = 4;
    cfg.cacheBytesPerShard = 8u << 10;
    cfg.nearTierFraction = 0.25;
    cfg.disk.promoteThreshold = 2;
    auto store = makeStore(rows, dim, cfg);

    const int kThreads = 4;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            const ZipfSampler zipf(static_cast<uint64_t>(rows), 0.7);
            Rng rng(200 + static_cast<uint64_t>(t));
            std::vector<int64_t> indices(128);
            const int64_t offsets[2] = {0, 128};
            std::vector<float> out(static_cast<size_t>(dim));
            std::vector<float> row(static_cast<size_t>(dim), 2.5f);
            for (int b = 0; b < 40; ++b) {
                fillZipfIndices(zipf, rng, indices.data(), 128);
                store->prefetchAsync(0, indices);
                store->lookupSum(0, indices.data(), offsets, 0, 1,
                                 out.data());
                store->update(
                    0,
                    static_cast<int64_t>(rng.nextBounded(
                        static_cast<uint64_t>(rows))),
                    row.data());
            }
        });
    }
    for (std::thread& t : threads) {
        t.join();
    }
    store->drainPrefetch();
    const StoreStats stats = store->stats();
    EXPECT_EQ(stats.total.lookups, 4u * 40u * 128u);
    EXPECT_GT(stats.total.diskFetches, 0u);
    EXPECT_LE(store->cacheBytesUsed(), store->cacheCapacityBytes());
}

TEST_F(DiskFixture, ServingEngineRunsOnDiskBackedStore)
{
    SweepCache sweep(allPlatforms(), testOptions());
    QueryScheduler sched(&sweep, {1, 16, 256, 4096});
    ServingEngine engine(&sched, ModelId::kNCF, 0);
    EngineConfig cfg;
    cfg.numWorkers = 2;
    cfg.arrivalQps = 2000;
    cfg.maxBatch = 64;
    cfg.maxWaitSeconds = 1e-3;
    cfg.simSeconds = 0.05;
    cfg.execMode = ExecMode::kNumericOnly;
    cfg.sharedEmbeddingStore = true;
    cfg.storeConfig = diskStoreConfig(dir_);
    const EngineResult result = engine.run(cfg);
    EXPECT_GT(result.aggregate.samplesServed, 0u);
}

// --- Env hatches. -----------------------------------------------------

TEST_F(DiskFixture, DisableDiskTierHatchForcesSimulated)
{
    ASSERT_EQ(setenv("RECSTACK_DISABLE_DISK_TIER", "1", 1), 0);
    EXPECT_TRUE(EmbeddingStore::diskTierDisabledByEnv());
    {
        auto store = makeStore(512, 8, diskStoreConfig(dir_));
        EXPECT_FALSE(store->diskTierActive());
        std::vector<int64_t> idx = {500, 501, 502};
        std::vector<float> out(3 * 8);
        store->lookupGather(0, idx.data(), 0, 3, out.data());
        const StoreStats stats = store->stats();
        EXPECT_GT(stats.total.farFetches, 0u) << "not simulated";
        EXPECT_EQ(stats.total.diskFetches, 0u);
    }
    ASSERT_EQ(unsetenv("RECSTACK_DISABLE_DISK_TIER"), 0);
    EXPECT_FALSE(EmbeddingStore::diskTierDisabledByEnv());
}

TEST_F(DiskFixture, StoreDirEnvPicksPageFileDirectory)
{
    ASSERT_EQ(setenv("RECSTACK_STORE_DIR", dir_.c_str(), 1), 0);
    {
        StoreConfig cfg = diskStoreConfig("");
        ASSERT_TRUE(cfg.disk.dir.empty());
        auto store = makeStore(512, 8, cfg);
        std::vector<int64_t> idx = {400};
        std::vector<float> out(8);
        store->lookupGather(0, idx.data(), 0, 1, out.data());
        ASSERT_NE(store->diskTier(), nullptr);
        EXPECT_EQ(store->diskTier()->path().rfind(dir_ + "/", 0), 0u)
            << store->diskTier()->path();
    }
    ASSERT_EQ(unsetenv("RECSTACK_STORE_DIR"), 0);
}

}  // namespace
}  // namespace recstack
