/**
 * @file
 * Tests of the online hill-climbing threshold tuner: convergence on a
 * synthetic objective, agreement with exhaustive search, and the
 * closed loop against the real serving engine through the obs
 * histogram feedback path.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>

#include "obs/metrics.h"
#include "sched/hill_climb.h"
#include "serve/serving_engine.h"

namespace recstack {
namespace {

/**
 * Synthetic serving epoch: records `queries` samples of a fixed
 * per-threshold latency into the tuner's histogram, emulating an
 * engine whose tail is a known function of the threshold. Latencies
 * are multiples of the 1 ms bucket width, so snapshot percentiles
 * land inside the right bucket.
 */
struct SyntheticServer {
    std::map<int64_t, double> p99ByThreshold;
    uint64_t queries = 100;
    std::string histName = "test.hill_climb_latency";

    EpochFn epochFn()
    {
        return [this](int64_t threshold) {
            obs::LatencyHistogram& h =
                obs::MetricsRegistry::global().histogram(histName, 0.0,
                                                         1.0, 1000);
            const double lat = p99ByThreshold.at(threshold);
            for (uint64_t i = 0; i < queries; ++i) {
                h.record(lat);
            }
        };
    }

    HillClimbConfig config(double sla) const
    {
        HillClimbConfig cfg;
        cfg.slaSeconds = sla;
        cfg.epochSeconds = 1.0;
        cfg.histogramName = histName;
        for (const auto& kv : p99ByThreshold) {
            cfg.thresholdGrid.push_back(kv.first);
        }
        return cfg;
    }
};

TEST(HillClimb, ConvergesToConvexOptimumAndMatchesExhaustive)
{
    SyntheticServer server;
    server.p99ByThreshold = {{1, 0.050}, {2, 0.030}, {4, 0.010},
                             {8, 0.005}, {16, 0.012}, {32, 0.040}};
    const HillClimbConfig cfg = server.config(/*sla=*/0.020);

    const HillClimbResult hc = hillClimbThreshold(cfg, server.epochFn());
    EXPECT_EQ(hc.bestThreshold, 8);
    EXPECT_TRUE(hc.anyFeasible);
    EXPECT_TRUE(hc.best.feasible);
    EXPECT_NEAR(hc.best.p99, 0.005, 1.5e-3);
    EXPECT_DOUBLE_EQ(hc.best.qps, 100.0);
    // Starting at the left edge, the climb walks 1 -> 2 -> 4 -> 8 and
    // stops once both neighbors of 8 are worse; threshold 32 is never
    // measured.
    EXPECT_EQ(hc.epochs, 5);
    EXPECT_EQ(static_cast<int>(hc.history.size()), hc.epochs);

    const HillClimbResult ex =
        exhaustiveThreshold(cfg, server.epochFn());
    EXPECT_EQ(ex.bestThreshold, hc.bestThreshold);
    EXPECT_EQ(static_cast<size_t>(ex.epochs), cfg.thresholdGrid.size());
}

TEST(HillClimb, FeasiblePointBeatsFasterInfeasibleOne)
{
    // Feasibility dominates: under a 7 ms SLA only threshold 8 holds
    // the tail, so it must win even though its neighbors are within
    // budget-epsilon of it on QPS.
    SyntheticServer server;
    server.p99ByThreshold = {{4, 0.010}, {8, 0.005}, {16, 0.012}};
    const HillClimbResult hc = hillClimbThreshold(
        server.config(/*sla=*/0.007), server.epochFn());
    EXPECT_EQ(hc.bestThreshold, 8);
    EXPECT_TRUE(hc.anyFeasible);
}

TEST(HillClimb, InfeasibleSlaPicksLeastBadTail)
{
    SyntheticServer server;
    server.p99ByThreshold = {{4, 0.010}, {8, 0.005}, {16, 0.012}};
    const HillClimbResult hc = hillClimbThreshold(
        server.config(/*sla=*/1e-6), server.epochFn());
    EXPECT_FALSE(hc.anyFeasible);
    EXPECT_FALSE(hc.best.feasible);
    EXPECT_EQ(hc.bestThreshold, 8);  // lowest p99 among measured
}

TEST(HillClimb, RespectsEpochBudget)
{
    SyntheticServer server;
    server.p99ByThreshold = {{1, 0.050}, {2, 0.030}, {4, 0.010},
                             {8, 0.005}, {16, 0.012}, {32, 0.040}};
    HillClimbConfig cfg = server.config(/*sla=*/0.020);
    cfg.maxEpochs = 2;
    const HillClimbResult hc = hillClimbThreshold(cfg, server.epochFn());
    EXPECT_EQ(hc.epochs, 2);
    EXPECT_EQ(hc.bestThreshold, 2);  // best of the two measured points
}

TEST(HillClimb, RejectsBadConfigs)
{
    SyntheticServer server;
    server.p99ByThreshold = {{4, 0.010}};
    HillClimbConfig empty = server.config(0.02);
    empty.thresholdGrid.clear();
    EXPECT_DEATH(hillClimbThreshold(empty, server.epochFn()),
                 "non-empty");
    HillClimbConfig unsorted = server.config(0.02);
    unsorted.thresholdGrid = {16, 4};
    EXPECT_DEATH(hillClimbThreshold(unsorted, server.epochFn()),
                 "ascending");
    HillClimbConfig zero = server.config(0.02);
    zero.thresholdGrid = {0, 4};
    EXPECT_DEATH(hillClimbThreshold(zero, server.epochFn()), ">= 1");
}

class HillClimbEngineTest : public ::testing::Test
{
  protected:
    HillClimbEngineTest()
        : sweep_(allPlatforms(),
                 []() {
                     ModelOptions opts = tinyOptions();
                     opts.tableScale = 0.01;
                     return opts;
                 }()),
          sched_(&sweep_, {1, 16, 256, 4096})
    {
    }

    SweepCache sweep_;
    QueryScheduler sched_;
};

TEST_F(HillClimbEngineTest, ClosedLoopLandsWithinOneStepOfExhaustive)
{
    // The real loop: each epoch sets the scheduler threshold and runs
    // the heterogeneous engine; the tuner sees only what the engine
    // recorded into serve.query_latency_seconds. The climber must end
    // within one grid step of the exhaustive-search optimum (the
    // PAPER-CHECK bench asserts the same at full scale).
    ServingEngine engine(&sched_, ModelId::kRM2, /*platform=*/0);
    EngineConfig ecfg;
    ecfg.numWorkers = 2;
    ecfg.arrivalQps = 30000;
    ecfg.simSeconds = 0.1;
    ecfg.heterogeneous = true;
    const EpochFn epoch = [&](int64_t threshold) {
        sched_.setGpuThreshold(ModelId::kRM2, threshold);
        engine.run(ecfg);
    };

    HillClimbConfig cfg;
    cfg.thresholdGrid = {1, 8, 32, 128, 512,
                         QueryScheduler::kNoGpuThreshold};
    cfg.slaSeconds = 0.01;
    cfg.epochSeconds = ecfg.simSeconds;
    cfg.startIndex = 2;

    const HillClimbResult hc = hillClimbThreshold(cfg, epoch);
    const HillClimbResult ex = exhaustiveThreshold(cfg, epoch);

    const auto index_of = [&](int64_t t) {
        for (size_t i = 0; i < cfg.thresholdGrid.size(); ++i) {
            if (cfg.thresholdGrid[i] == t) {
                return static_cast<int>(i);
            }
        }
        return -1;
    };
    const int hc_idx = index_of(hc.bestThreshold);
    const int ex_idx = index_of(ex.bestThreshold);
    ASSERT_GE(hc_idx, 0);
    ASSERT_GE(ex_idx, 0);
    EXPECT_LE(std::abs(hc_idx - ex_idx), 1);
    // The engine drains the whole stream, so every epoch serves the
    // same queries; served QPS agrees across the two searches.
    EXPECT_NEAR(hc.best.qps, ex.best.qps, 1e-6 * ex.best.qps);
}

TEST_F(HillClimbEngineTest, HistogramTailMatchesEngineAggregate)
{
    // The tuner's feedback (histogram snapshot p99) must agree with
    // the engine's exact order-statistic p99 to within histogram
    // resolution (1 ms buckets, linear interpolation inside).
    ServingEngine engine(&sched_, ModelId::kRM1, /*platform=*/0);
    EngineConfig ecfg;
    ecfg.numWorkers = 2;
    ecfg.arrivalQps = 20000;
    ecfg.simSeconds = 0.1;
    ecfg.heterogeneous = true;
    sched_.setGpuThreshold(ModelId::kRM1, 64);

    obs::LatencyHistogram& h = obs::MetricsRegistry::global().histogram(
        "serve.query_latency_seconds", 0.0, 1.0, 1000);
    h.reset();
    const EngineResult r = engine.run(ecfg);
    const obs::HistogramSnapshot snap = h.snapshot();

    EXPECT_EQ(snap.total, r.aggregate.samplesServed);
    EXPECT_NEAR(snap.percentile(0.99), r.aggregate.p99Latency,
                2.0 * snap.bucketWidth());
}

}  // namespace
}  // namespace recstack
