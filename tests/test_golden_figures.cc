/**
 * @file
 * Golden regression tests over the characterizer's reported figures:
 * operator-breakdown fractions and TopDown metrics for two models at
 * two batch sizes, snapshotted as flat JSON under tests/golden/ and
 * compared within 1e-9. Kernel or platform-model refactors (e.g. the
 * intra-op parallelization of src/ops/) cannot silently shift a
 * reported figure: any drift fails here and forces a deliberate
 * regeneration.
 *
 * Regenerate after an intentional change with
 *   RECSTACK_REGEN_GOLDEN=1 ./build/tests/test_golden_figures
 * which rewrites the snapshots in the source tree.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "common/cpu_features.h"
#include "core/characterizer.h"

#ifndef RECSTACK_TEST_DATA_DIR
#error "RECSTACK_TEST_DATA_DIR must point at tests/golden"
#endif

namespace recstack {
namespace {

ModelOptions
testOptions()
{
    ModelOptions opts = tinyOptions();
    opts.tableScale = 0.01;
    return opts;
}

/** The shared characterizer (reuses built models across params). */
Characterizer&
characterizer()
{
    static Characterizer* c = new Characterizer(testOptions());
    return *c;
}

/**
 * Flatten one characterization to the snapshotted figures: breakdown
 * fractions per operator type plus the TopDown metrics the paper's
 * Figs. 6 and 8-15 report.
 */
std::map<std::string, double>
figuresOf(const RunResult& r)
{
    std::map<std::string, double> m;
    m["batch"] = static_cast<double>(r.batch);
    m["seconds"] = r.seconds;
    for (const auto& [type, seconds] : r.breakdown.byType()) {
        (void)seconds;
        m["breakdown." + type] = r.breakdown.fraction(type);
    }
    m["topdown.retiring"] = r.topdown.l1.retiring;
    m["topdown.badSpeculation"] = r.topdown.l1.badSpeculation;
    m["topdown.frontendBound"] = r.topdown.l1.frontendBound;
    m["topdown.backendBound"] = r.topdown.l1.backendBound;
    m["topdown.feLatency"] = r.topdown.l2.feLatency;
    m["topdown.feBandwidth"] = r.topdown.l2.feBandwidth;
    m["topdown.beCore"] = r.topdown.l2.beCore;
    m["topdown.beMemory"] = r.topdown.l2.beMemory;
    m["topdown.memDramLatency"] = r.topdown.l2.memDramLatency;
    m["topdown.memDramBandwidth"] = r.topdown.l2.memDramBandwidth;
    m["topdown.ipc"] = r.topdown.ipc;
    m["topdown.avxFraction"] = r.topdown.avxFraction;
    m["topdown.imspki"] = r.topdown.imspki;
    m["topdown.mispredictsPerKuop"] = r.topdown.mispredictsPerKuop;
    m["topdown.dramCongestedFraction"] =
        r.topdown.dramCongestedFraction;
    m["topdown.fuUsage3Plus"] = r.topdown.fuUsage3Plus;
    return m;
}

/** Minimal reader for the flat {"key": number, ...} snapshots. */
std::map<std::string, double>
parseFlatJson(const std::string& text)
{
    std::map<std::string, double> m;
    size_t pos = 0;
    while ((pos = text.find('"', pos)) != std::string::npos) {
        const size_t key_end = text.find('"', pos + 1);
        if (key_end == std::string::npos) {
            break;
        }
        const std::string key = text.substr(pos + 1, key_end - pos - 1);
        size_t cursor = key_end + 1;
        while (cursor < text.size() &&
               (text[cursor] == ':' || std::isspace(
                                           static_cast<unsigned char>(
                                               text[cursor])))) {
            ++cursor;
        }
        char* end = nullptr;
        const double value = std::strtod(text.c_str() + cursor, &end);
        if (end != text.c_str() + cursor) {
            m[key] = value;
        }
        pos = static_cast<size_t>(end - text.c_str());
        if (pos <= key_end) {
            pos = key_end + 1;
        }
    }
    return m;
}

std::string
renderFlatJson(const std::map<std::string, double>& m)
{
    std::ostringstream out;
    out << "{\n";
    bool first = true;
    for (const auto& [key, value] : m) {
        if (!first) {
            out << ",\n";
        }
        first = false;
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", value);
        out << "  \"" << key << "\": " << buf;
    }
    out << "\n}\n";
    return out.str();
}

struct GoldenCase {
    ModelId model;
    int64_t batch;
};

std::string
goldenPath(const GoldenCase& c)
{
    return std::string(RECSTACK_TEST_DATA_DIR) + "/" +
           modelName(c.model) + "_b" + std::to_string(c.batch) +
           ".json";
}

class GoldenFigures : public ::testing::TestWithParam<GoldenCase>
{
};

TEST_P(GoldenFigures, MatchesSnapshotWithin1e9)
{
    const GoldenCase c = GetParam();
    // Snapshots are defined on the scalar kernel tier: the reported
    // figures come from profile() lowering (kProfileOnly) and are
    // ISA-independent by design, but pinning the tier keeps both the
    // check and RECSTACK_REGEN_GOLDEN runs reproducible on any host
    // regardless of RECSTACK_ISA or AVX2 availability.
    IsaScope tier(KernelIsa::kScalar);
    const Platform bdw = makeCpuPlatform(broadwellConfig());
    const RunResult r = characterizer().run(c.model, bdw, c.batch);
    const std::map<std::string, double> current = figuresOf(r);
    const std::string path = goldenPath(c);

    if (std::getenv("RECSTACK_REGEN_GOLDEN") != nullptr) {
        std::ofstream out(path);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << renderFlatJson(current);
        std::printf("regenerated %s\n", path.c_str());
        return;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << "missing golden snapshot " << path
        << " (regenerate with RECSTACK_REGEN_GOLDEN=1)";
    std::stringstream buf;
    buf << in.rdbuf();
    const std::map<std::string, double> golden =
        parseFlatJson(buf.str());
    ASSERT_FALSE(golden.empty()) << "unparseable snapshot " << path;

    // Exactly the same figure set (no operator type appears or
    // vanishes), every value within 1e-9.
    for (const auto& [key, want] : golden) {
        const auto it = current.find(key);
        ASSERT_NE(it, current.end())
            << "figure '" << key << "' missing from current output";
        EXPECT_NEAR(it->second, want,
                    1e-9 * std::max(1.0, std::abs(want)))
            << "figure '" << key << "' drifted from " << path;
    }
    for (const auto& [key, value] : current) {
        (void)value;
        EXPECT_TRUE(golden.count(key) > 0)
            << "new figure '" << key
            << "' not in snapshot (regenerate deliberately)";
    }
}

INSTANTIATE_TEST_SUITE_P(
    ModelsByBatch, GoldenFigures,
    ::testing::Values(GoldenCase{ModelId::kRM1, 16},
                      GoldenCase{ModelId::kRM1, 256},
                      GoldenCase{ModelId::kWnD, 16},
                      GoldenCase{ModelId::kWnD, 256}),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
        return std::string(modelName(info.param.model)) + "_b" +
               std::to_string(info.param.batch);
    });

}  // namespace
}  // namespace recstack
