/**
 * @file
 * Unit tests for the Workspace blob store.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "ops/workspace.h"

namespace recstack {
namespace {

TEST(Workspace, SetAndGet)
{
    Workspace ws;
    ws.set("a", Tensor::fromFloats({2}, {1, 2}));
    EXPECT_TRUE(ws.has("a"));
    EXPECT_FLOAT_EQ(ws.get("a").data<float>()[1], 2.0f);
    EXPECT_FALSE(ws.has("b"));
}

TEST(Workspace, GetMissingPanics)
{
    Workspace ws;
    EXPECT_DEATH(ws.get("nope"), "no blob");
}

TEST(Workspace, SetReplaces)
{
    Workspace ws;
    ws.set("x", Tensor({2}));
    ws.set("x", Tensor({5}));
    EXPECT_EQ(ws.get("x").numel(), 5);
    EXPECT_EQ(ws.size(), 1u);
}

TEST(Workspace, EnsureReusesMatchingShape)
{
    Workspace ws;
    Tensor& first = ws.ensure("y", {3, 3});
    first.data<float>()[0] = 7.0f;
    Tensor& again = ws.ensure("y", {3, 3});
    EXPECT_FLOAT_EQ(again.data<float>()[0], 7.0f);  // not reallocated
    Tensor& resized = ws.ensure("y", {4, 4});
    EXPECT_EQ(resized.numel(), 16);
    EXPECT_FLOAT_EQ(resized.data<float>()[0], 0.0f);  // fresh
}

TEST(Workspace, EnsureRespectsDType)
{
    Workspace ws;
    ws.ensure("idx", {4}, DType::kInt64);
    EXPECT_EQ(ws.get("idx").dtype(), DType::kInt64);
    ws.ensure("idx", {4}, DType::kFloat32);
    EXPECT_EQ(ws.get("idx").dtype(), DType::kFloat32);
}

TEST(Workspace, ShapeOnlyMode)
{
    Workspace ws;
    ws.setShapeOnly(true);
    Tensor& t = ws.ensure("big", {100000, 1000});
    EXPECT_FALSE(t.materialized());
    EXPECT_EQ(t.byteSize(), 400000000u);
}

TEST(Workspace, ShapeOnlyModeReusesShapeOnlyBlob)
{
    Workspace ws;
    ws.setShapeOnly(true);
    ws.ensure("b", {8});
    const Tensor* before = &ws.get("b");
    ws.ensure("b", {8});
    EXPECT_EQ(before, &ws.get("b"));
}

TEST(Workspace, MaterializedModeUpgradesShapeOnlyBlob)
{
    Workspace ws;
    ws.setShapeOnly(true);
    ws.ensure("b", {8});
    EXPECT_FALSE(ws.get("b").materialized());
    ws.setShapeOnly(false);
    ws.ensure("b", {8});
    EXPECT_TRUE(ws.get("b").materialized());
}

TEST(Workspace, RemoveAndNames)
{
    Workspace ws;
    ws.set("a", Tensor({1}));
    ws.set("b", Tensor({1}));
    ws.remove("a");
    EXPECT_FALSE(ws.has("a"));
    const auto names = ws.names();
    ASSERT_EQ(names.size(), 1u);
    EXPECT_EQ(names[0], "b");
    ws.remove("not-there");  // no-op
}

TEST(Workspace, TotalBytes)
{
    Workspace ws;
    ws.set("a", Tensor({10}));                  // 40 bytes
    ws.set("b", Tensor({2}, DType::kInt64));    // 16 bytes
    EXPECT_EQ(ws.totalBytes(), 56u);
}

TEST(Workspace, MaterializedVsPlannedBytes)
{
    // materializedBytes() counts owned payloads actually allocated;
    // plannedBytes() counts the would-be payloads of shape-only
    // blobs. Arena views appear in neither: their storage belongs to
    // the plan's arena and would be double-counted.
    std::vector<std::byte> arena(40);
    Workspace ws;
    ws.set("owned", Tensor({10}));                        // 40 bytes
    ws.set("planned", Tensor::shapeOnly({4}));            // 16 bytes
    ws.set("view", Tensor::view({10}, DType::kFloat32, arena.data()));
    EXPECT_EQ(ws.materializedBytes(), 40u);
    EXPECT_EQ(ws.plannedBytes(), 16u);
    EXPECT_EQ(ws.totalBytes(), 96u);
}

TEST(Workspace, EnsureNeverReusesAView)
{
    // After a compiled (arena-planned) run, an interpreted run on the
    // same workspace must not write through the stale memory plan.
    std::vector<std::byte> arena(40);
    Workspace ws;
    ws.set("x", Tensor::view({10}, DType::kFloat32, arena.data()));
    Tensor& fresh = ws.ensure("x", {10}, DType::kFloat32);
    EXPECT_TRUE(fresh.ownsStorage());
    EXPECT_TRUE(fresh.materialized());
    // An owned blob with matching metadata is still reused in place.
    EXPECT_EQ(&fresh, &ws.ensure("x", {10}, DType::kFloat32));
}

}  // namespace
}  // namespace recstack
