/**
 * @file
 * Numerical correctness tests for every operator, against
 * hand-computed or independently-computed references.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

#include "ops/concat.h"
#include "ops/elementwise.h"
#include "ops/embedding.h"
#include "ops/fc.h"
#include "ops/gru.h"
#include "ops/matmul.h"
#include "ops/reshape.h"

namespace recstack {
namespace {

/** Run one op (shape inference + numerics). */
void
runOp(Operator& op, Workspace& ws)
{
    op.inferShapes(ws);
    op.run(ws);
}

TEST(FCOp, MatchesHandComputedGemm)
{
    Workspace ws;
    // X [2,3], W [2,3], b [2]
    ws.set("x", Tensor::fromFloats({2, 3}, {1, 2, 3, 4, 5, 6}));
    ws.set("w", Tensor::fromFloats({2, 3}, {1, 0, -1, 0.5, 0.5, 0.5}));
    ws.set("b", Tensor::fromFloats({2}, {10, -1}));
    FCOp fc("fc", "x", "w", "b", "y");
    runOp(fc, ws);

    const Tensor& y = ws.get("y");
    ASSERT_EQ(y.shape(), (std::vector<int64_t>{2, 2}));
    EXPECT_FLOAT_EQ(y.at({0, 0}), 1 * 1 + 2 * 0 + 3 * -1 + 10);  // 8
    EXPECT_FLOAT_EQ(y.at({0, 1}), 0.5 * (1 + 2 + 3) - 1);        // 2
    EXPECT_FLOAT_EQ(y.at({1, 0}), 4 - 6 + 10);                   // 8
    EXPECT_FLOAT_EQ(y.at({1, 1}), 0.5 * 15 - 1);                 // 6.5
}

TEST(FCOp, ShapeMismatchPanics)
{
    Workspace ws;
    ws.set("x", Tensor({2, 3}));
    ws.set("w", Tensor({2, 4}));  // K mismatch
    ws.set("b", Tensor({2}));
    FCOp fc("fc", "x", "w", "b", "y");
    EXPECT_DEATH(fc.inferShapes(ws), "K mismatch");
}

TEST(UnaryOps, ReluSigmoidTanh)
{
    Workspace ws;
    ws.set("x", Tensor::fromFloats({4}, {-2, -0.5, 0, 3}));

    UnaryOp relu(UnaryFn::kRelu, "r", "x", "yr");
    runOp(relu, ws);
    const float* yr = ws.get("yr").data<float>();
    EXPECT_FLOAT_EQ(yr[0], 0);
    EXPECT_FLOAT_EQ(yr[1], 0);
    EXPECT_FLOAT_EQ(yr[3], 3);

    UnaryOp sig(UnaryFn::kSigmoid, "s", "x", "ys");
    runOp(sig, ws);
    const float* ys = ws.get("ys").data<float>();
    EXPECT_NEAR(ys[2], 0.5, 1e-6);
    EXPECT_NEAR(ys[3], 1.0 / (1.0 + std::exp(-3.0)), 1e-6);

    UnaryOp th(UnaryFn::kTanh, "t", "x", "yt");
    runOp(th, ws);
    EXPECT_NEAR(ws.get("yt").data<float>()[0], std::tanh(-2.0), 1e-6);
}

TEST(BinaryOps, AddSubMul)
{
    Workspace ws;
    ws.set("a", Tensor::fromFloats({2, 2}, {1, 2, 3, 4}));
    ws.set("b", Tensor::fromFloats({2, 2}, {10, 20, 30, 40}));

    BinaryOp add(BinaryFn::kAdd, "add", "a", "b", "ya");
    runOp(add, ws);
    EXPECT_FLOAT_EQ(ws.get("ya").at({1, 1}), 44);

    BinaryOp sub(BinaryFn::kSub, "sub", "a", "b", "ysb");
    runOp(sub, ws);
    EXPECT_FLOAT_EQ(ws.get("ysb").at({0, 1}), -18);

    BinaryOp mul(BinaryFn::kMul, "mul", "a", "b", "ym");
    runOp(mul, ws);
    EXPECT_FLOAT_EQ(ws.get("ym").at({1, 0}), 90);
}

TEST(BinaryOps, ColumnBroadcast)
{
    Workspace ws;
    ws.set("a", Tensor::fromFloats({2, 3}, {1, 2, 3, 4, 5, 6}));
    ws.set("s", Tensor::fromFloats({2, 1}, {10, 100}));
    BinaryOp mul(BinaryFn::kMul, "mul", "a", "s", "y");
    runOp(mul, ws);
    const Tensor& y = ws.get("y");
    EXPECT_FLOAT_EQ(y.at({0, 2}), 30);
    EXPECT_FLOAT_EQ(y.at({1, 0}), 400);
}

TEST(BinaryOps, ShapeMismatchPanics)
{
    Workspace ws;
    ws.set("a", Tensor({2, 3}));
    ws.set("b", Tensor({3, 2}));
    BinaryOp add(BinaryFn::kAdd, "add", "a", "b", "y");
    EXPECT_DEATH(add.inferShapes(ws), "shape mismatch");
}

TEST(SumOp, NAryAccumulation)
{
    Workspace ws;
    ws.set("a", Tensor::fromFloats({2}, {1, 2}));
    ws.set("b", Tensor::fromFloats({2}, {10, 20}));
    ws.set("c", Tensor::fromFloats({2}, {100, 200}));
    SumOp sum("sum", {"a", "b", "c"}, "y");
    runOp(sum, ws);
    EXPECT_FLOAT_EQ(ws.get("y").data<float>()[0], 111);
    EXPECT_FLOAT_EQ(ws.get("y").data<float>()[1], 222);
}

TEST(ConcatOp, Axis1Layout)
{
    Workspace ws;
    ws.set("a", Tensor::fromFloats({2, 2}, {1, 2, 3, 4}));
    ws.set("b", Tensor::fromFloats({2, 1}, {9, 8}));
    ConcatOp cat("cat", {"a", "b"}, "y");
    runOp(cat, ws);
    const Tensor& y = ws.get("y");
    ASSERT_EQ(y.shape(), (std::vector<int64_t>{2, 3}));
    EXPECT_FLOAT_EQ(y.at({0, 0}), 1);
    EXPECT_FLOAT_EQ(y.at({0, 2}), 9);
    EXPECT_FLOAT_EQ(y.at({1, 2}), 8);
}

TEST(ConcatOp, BatchMismatchPanics)
{
    Workspace ws;
    ws.set("a", Tensor({2, 2}));
    ws.set("b", Tensor({3, 2}));
    ConcatOp cat("cat", {"a", "b"}, "y");
    EXPECT_DEATH(cat.inferShapes(ws), "batch mismatch");
}

TEST(SparseLengthsSumOp, PoolsSegments)
{
    Workspace ws;
    // 4-row table of dim 2.
    ws.set("table",
           Tensor::fromFloats({4, 2}, {1, 10, 2, 20, 3, 30, 4, 40}));
    ws.set("idx", Tensor::fromInt64s({3}, {0, 3, 1}));
    ws.set("len", Tensor::fromInt32s({2}, {2, 1}));
    SparseLengthsSumOp sls("sls", "table", "idx", "len", "y");
    runOp(sls, ws);
    const Tensor& y = ws.get("y");
    ASSERT_EQ(y.shape(), (std::vector<int64_t>{2, 2}));
    EXPECT_FLOAT_EQ(y.at({0, 0}), 1 + 4);   // rows 0 + 3
    EXPECT_FLOAT_EQ(y.at({0, 1}), 10 + 40);
    EXPECT_FLOAT_EQ(y.at({1, 0}), 2);       // row 1
}

TEST(SparseLengthsSumOp, IndexOutOfRangePanics)
{
    Workspace ws;
    ws.set("table", Tensor({2, 2}));
    ws.set("idx", Tensor::fromInt64s({1}, {5}));
    ws.set("len", Tensor::fromInt32s({1}, {1}));
    SparseLengthsSumOp sls("sls", "table", "idx", "len", "y");
    sls.inferShapes(ws);
    EXPECT_DEATH(sls.run(ws), "out of range");
}

TEST(GatherOp, SelectsRows)
{
    Workspace ws;
    ws.set("table", Tensor::fromFloats({3, 2}, {1, 2, 3, 4, 5, 6}));
    ws.set("idx", Tensor::fromInt64s({4}, {2, 0, 2, 1}));
    GatherOp gather("g", "table", "idx", "y");
    runOp(gather, ws);
    const Tensor& y = ws.get("y");
    ASSERT_EQ(y.shape(), (std::vector<int64_t>{4, 2}));
    EXPECT_FLOAT_EQ(y.at({0, 0}), 5);
    EXPECT_FLOAT_EQ(y.at({1, 1}), 2);
    EXPECT_FLOAT_EQ(y.at({3, 0}), 3);
}

TEST(ReduceSumOp, PoolsMiddleAxis)
{
    Workspace ws;
    ws.set("x", Tensor::fromFloats({2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8}));
    ReduceSumOp rs("rs", "x", "y");
    runOp(rs, ws);
    const Tensor& y = ws.get("y");
    ASSERT_EQ(y.shape(), (std::vector<int64_t>{2, 2}));
    EXPECT_FLOAT_EQ(y.at({0, 0}), 4);   // 1+3
    EXPECT_FLOAT_EQ(y.at({0, 1}), 6);   // 2+4
    EXPECT_FLOAT_EQ(y.at({1, 0}), 12);  // 5+7
}

TEST(GatherPlusReduceSumEqualsSLS, TfCaffe2Equivalence)
{
    // The Fig. 7 operator mapping: ResourceGather + Sum == SLS.
    Workspace ws;
    ws.set("table",
           Tensor::fromFloats({5, 3},
                              {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                               13, 14, 15}));
    ws.set("idx", Tensor::fromInt64s({6}, {0, 2, 4, 1, 1, 3}));
    ws.set("len", Tensor::fromInt32s({2}, {3, 3}));

    SparseLengthsSumOp sls("sls", "table", "idx", "len", "y_sls");
    runOp(sls, ws);

    GatherOp gather("g", "table", "idx", "rows");
    runOp(gather, ws);
    ReshapeOp shape("r", "rows", "rows3d", {-1, 3, 3});
    runOp(shape, ws);
    ReduceSumOp pool("p", "rows3d", "y_tf");
    runOp(pool, ws);

    const Tensor& a = ws.get("y_sls");
    const Tensor& b = ws.get("y_tf");
    ASSERT_EQ(a.shape(), b.shape());
    for (int64_t i = 0; i < a.numel(); ++i) {
        EXPECT_FLOAT_EQ(a.data<float>()[i], b.data<float>()[i]);
    }
}

TEST(BatchMatMulOp, MatchesReference)
{
    Workspace ws;
    // A [1,2,3] x B [1,3,1]
    ws.set("a", Tensor::fromFloats({1, 2, 3}, {1, 2, 3, 4, 5, 6}));
    ws.set("b", Tensor::fromFloats({1, 3, 1}, {1, 10, 100}));
    BatchMatMulOp bmm("bmm", "a", "b", "c");
    runOp(bmm, ws);
    const Tensor& c = ws.get("c");
    ASSERT_EQ(c.shape(), (std::vector<int64_t>{1, 2, 1}));
    EXPECT_FLOAT_EQ(c.at({0, 0, 0}), 321);
    EXPECT_FLOAT_EQ(c.at({0, 1, 0}), 654);
}

TEST(BatchMatMulOp, PerBatchIndependence)
{
    Workspace ws;
    ws.set("a", Tensor::fromFloats({2, 1, 2}, {1, 1, 2, 2}));
    ws.set("b", Tensor::fromFloats({2, 2, 1}, {1, 1, 10, 10}));
    BatchMatMulOp bmm("bmm", "a", "b", "c");
    runOp(bmm, ws);
    EXPECT_FLOAT_EQ(ws.get("c").at({0, 0, 0}), 2);
    EXPECT_FLOAT_EQ(ws.get("c").at({1, 0, 0}), 40);
}

TEST(SoftmaxOp, RowsSumToOneAndOrderPreserved)
{
    Workspace ws;
    ws.set("x", Tensor::fromFloats({2, 3}, {1, 2, 3, -1, 0, 1}));
    SoftmaxOp sm("sm", "x", "y");
    runOp(sm, ws);
    const Tensor& y = ws.get("y");
    for (int64_t r = 0; r < 2; ++r) {
        float sum = 0;
        for (int64_t c = 0; c < 3; ++c) {
            sum += y.at({r, c});
        }
        EXPECT_NEAR(sum, 1.0f, 1e-5);
        EXPECT_LT(y.at({r, 0}), y.at({r, 2}));
    }
}

TEST(SoftmaxOp, NumericallyStableForLargeInputs)
{
    Workspace ws;
    ws.set("x", Tensor::fromFloats({1, 2}, {1000, 1001}));
    SoftmaxOp sm("sm", "x", "y");
    runOp(sm, ws);
    EXPECT_NEAR(ws.get("y").at({0, 1}),
                1.0f / (1.0f + std::exp(-1.0f)), 1e-5);
}

TEST(ReshapeOp, InfersWildcard)
{
    Workspace ws;
    ws.set("x", Tensor::fromFloats({2, 6}, std::vector<float>(12, 1.0f)));
    ReshapeOp rs("rs", "x", "y", {-1, 3});
    runOp(rs, ws);
    EXPECT_EQ(ws.get("y").shape(), (std::vector<int64_t>{4, 3}));
}

TEST(SliceOp, ExtractsPlane)
{
    Workspace ws;
    ws.set("x", Tensor::fromFloats({2, 3, 2},
                                   {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                    11}));
    SliceOp slice("sl", "x", "y", 1);
    runOp(slice, ws);
    const Tensor& y = ws.get("y");
    ASSERT_EQ(y.shape(), (std::vector<int64_t>{2, 2}));
    EXPECT_FLOAT_EQ(y.at({0, 0}), 2);
    EXPECT_FLOAT_EQ(y.at({0, 1}), 3);
    EXPECT_FLOAT_EQ(y.at({1, 0}), 8);
}

TEST(TransposeOp, TwoD)
{
    Workspace ws;
    ws.set("x", Tensor::fromFloats({2, 3}, {1, 2, 3, 4, 5, 6}));
    TransposeOp tr("t", "x", "y");
    runOp(tr, ws);
    const Tensor& y = ws.get("y");
    ASSERT_EQ(y.shape(), (std::vector<int64_t>{3, 2}));
    EXPECT_FLOAT_EQ(y.at({0, 1}), 4);
    EXPECT_FLOAT_EQ(y.at({2, 0}), 3);
}

TEST(TransposeOp, ThreeDSwapsFirstTwoAxes)
{
    Workspace ws;
    ws.set("x", Tensor::fromFloats({2, 2, 2}, {0, 1, 2, 3, 4, 5, 6, 7}));
    TransposeOp tr("t", "x", "y");
    runOp(tr, ws);
    const Tensor& y = ws.get("y");
    ASSERT_EQ(y.shape(), (std::vector<int64_t>{2, 2, 2}));
    // y[j][i][k] == x[i][j][k]
    EXPECT_FLOAT_EQ(y.at({1, 0, 0}), 2);
    EXPECT_FLOAT_EQ(y.at({0, 1, 1}), 5);
}

/** Reference single-step GRU math for the fused-layer test. */
void
referenceGruStep(const std::vector<float>& x, std::vector<float>& h,
                 const std::vector<float>& wx,
                 const std::vector<float>& wh,
                 const std::vector<float>& bias, int input, int hidden,
                 float att)
{
    auto sigm = [](float v) { return 1.0f / (1.0f + std::exp(-v)); };
    std::vector<float> gx(3 * hidden), gh(3 * hidden);
    for (int g = 0; g < 3 * hidden; ++g) {
        float ax = bias[g];
        for (int i = 0; i < input; ++i) {
            ax += wx[g * input + i] * x[i];
        }
        gx[g] = ax;
        float ah = 0;
        for (int i = 0; i < hidden; ++i) {
            ah += wh[g * hidden + i] * h[i];
        }
        gh[g] = ah;
    }
    for (int i = 0; i < hidden; ++i) {
        const float r = sigm(gx[i] + gh[i]);
        float z = sigm(gx[hidden + i] + gh[hidden + i]);
        z *= att;
        const float n =
            std::tanh(gx[2 * hidden + i] + r * gh[2 * hidden + i]);
        h[i] = (1 - z) * n + z * h[i];
    }
}

TEST(GRULayerOp, MatchesReferenceImplementation)
{
    const int steps = 3, batch = 2, input = 2, hidden = 2;
    Rng rng(17);
    auto rand_vec = [&rng](int n) {
        std::vector<float> v(n);
        for (auto& f : v) {
            f = rng.nextFloat(-0.5f, 0.5f);
        }
        return v;
    };
    const auto x = rand_vec(steps * batch * input);
    const auto h0 = rand_vec(batch * hidden);
    const auto wx = rand_vec(3 * hidden * input);
    const auto wh = rand_vec(3 * hidden * hidden);
    const auto bias = rand_vec(3 * hidden);

    Workspace ws;
    ws.set("x", Tensor::fromFloats({steps, batch, input}, x));
    ws.set("h0", Tensor::fromFloats({batch, hidden}, h0));
    ws.set("wx", Tensor::fromFloats({3 * hidden, input}, wx));
    ws.set("wh", Tensor::fromFloats({3 * hidden, hidden}, wh));
    ws.set("b", Tensor::fromFloats({3 * hidden}, bias));
    GRULayerOp gru("gru", "x", "h0", "wx", "wh", "b", "hseq", "hlast");
    runOp(gru, ws);

    // Reference: per-sample step loop (attention fixed at 1).
    for (int b = 0; b < batch; ++b) {
        std::vector<float> h(h0.begin() + b * hidden,
                             h0.begin() + (b + 1) * hidden);
        for (int t = 0; t < steps; ++t) {
            std::vector<float> xt(
                x.begin() + (t * batch + b) * input,
                x.begin() + (t * batch + b + 1) * input);
            referenceGruStep(xt, h, wx, wh, bias, input, hidden, 1.0f);
            for (int i = 0; i < hidden; ++i) {
                EXPECT_NEAR(ws.get("hseq").at({t, b, i}), h[i], 1e-5)
                    << "t=" << t << " b=" << b << " i=" << i;
            }
        }
        for (int i = 0; i < hidden; ++i) {
            EXPECT_NEAR(ws.get("hlast").at({b, i}), h[i], 1e-5);
        }
    }
}

TEST(GRULayerOp, AttentionalUpdateScalesGate)
{
    const int steps = 2, batch = 1, input = 1, hidden = 1;
    Workspace ws;
    ws.set("x", Tensor::fromFloats({steps, batch, input}, {0.5f, -0.5f}));
    ws.set("h0", Tensor::fromFloats({batch, hidden}, {0.2f}));
    ws.set("wx", Tensor::fromFloats({3, 1}, {0.3f, 0.4f, 0.5f}));
    ws.set("wh", Tensor::fromFloats({3, 1}, {0.1f, -0.2f, 0.3f}));
    ws.set("b", Tensor::fromFloats({3}, {0.0f, 0.1f, -0.1f}));
    ws.set("att", Tensor::fromFloats({steps, batch}, {0.7f, 0.2f}));
    GRULayerOp gru("augru", "x", "h0", "wx", "wh", "b", "hseq", "hlast",
                   "att");
    EXPECT_TRUE(gru.attentional());
    runOp(gru, ws);

    std::vector<float> h = {0.2f};
    referenceGruStep({0.5f}, h, {0.3f, 0.4f, 0.5f}, {0.1f, -0.2f, 0.3f},
                     {0.0f, 0.1f, -0.1f}, 1, 1, 0.7f);
    referenceGruStep({-0.5f}, h, {0.3f, 0.4f, 0.5f}, {0.1f, -0.2f, 0.3f},
                     {0.0f, 0.1f, -0.1f}, 1, 1, 0.2f);
    EXPECT_NEAR(ws.get("hlast").at({0, 0}), h[0], 1e-5);
}

/** Property: FC output is linear in the input. */
class FCLinearity : public ::testing::TestWithParam<int>
{
};

TEST_P(FCLinearity, ScalingInputScalesOutput)
{
    const int k = GetParam();
    Rng rng(21);
    std::vector<float> xv(static_cast<size_t>(k)), wv(2 * k);
    for (auto& f : xv) f = rng.nextFloat(-1, 1);
    for (auto& f : wv) f = rng.nextFloat(-1, 1);

    Workspace ws;
    ws.set("x", Tensor::fromFloats({1, k}, xv));
    ws.set("w", Tensor::fromFloats({2, k}, wv));
    ws.set("b", Tensor::fromFloats({2}, {0, 0}));
    FCOp fc("fc", "x", "w", "b", "y");
    runOp(fc, ws);
    const float y0 = ws.get("y").at({0, 0});
    const float y1 = ws.get("y").at({0, 1});

    for (auto& f : xv) f *= 3.0f;
    ws.set("x", Tensor::fromFloats({1, k}, xv));
    runOp(fc, ws);
    EXPECT_NEAR(ws.get("y").at({0, 0}), 3.0f * y0, 1e-3);
    EXPECT_NEAR(ws.get("y").at({0, 1}), 3.0f * y1, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Widths, FCLinearity,
                         ::testing::Values(1, 3, 8, 17, 64, 256));

}  // namespace
}  // namespace recstack
