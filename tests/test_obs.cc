/**
 * @file
 * Tests of the observability layer: metrics registry exactness under
 * concurrency, histogram-vs-exact percentile agreement, trace-buffer
 * bounded-drop accounting, Chrome trace export well-formedness
 * (parsed back with a minimal JSON parser), the zero-overhead
 * contract when tracing is disabled, serving-engine histogram
 * consistency with ServingStats, and the end-to-end `recstack obs`
 * acceptance run.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace_export.h"
#include "serve/serving_engine.h"

namespace recstack {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parser, just enough to validate the
// exports: objects, arrays, strings, numbers, bools, null.

struct JsonValue {
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
    Kind kind = Kind::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    const JsonValue& at(const std::string& key) const
    {
        static const JsonValue null_value;
        const auto it = object.find(key);
        return it == object.end() ? null_value : it->second;
    }
    bool has(const std::string& key) const
    {
        return object.find(key) != object.end();
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string& text) : text_(text) {}

    bool parse(JsonValue* out)
    {
        skipWs();
        if (!parseValue(out)) {
            return false;
        }
        skipWs();
        return pos_ == text_.size();
    }

  private:
    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    bool parseValue(JsonValue* out)
    {
        if (pos_ >= text_.size()) {
            return false;
        }
        const char c = text_[pos_];
        if (c == '{') {
            return parseObject(out);
        }
        if (c == '[') {
            return parseArray(out);
        }
        if (c == '"') {
            out->kind = JsonValue::Kind::kString;
            return parseString(&out->str);
        }
        if (c == 't' || c == 'f') {
            const char* word = c == 't' ? "true" : "false";
            if (text_.compare(pos_, std::strlen(word), word) != 0) {
                return false;
            }
            pos_ += std::strlen(word);
            out->kind = JsonValue::Kind::kBool;
            out->boolean = c == 't';
            return true;
        }
        if (c == 'n') {
            if (text_.compare(pos_, 4, "null") != 0) {
                return false;
            }
            pos_ += 4;
            out->kind = JsonValue::Kind::kNull;
            return true;
        }
        return parseNumber(out);
    }

    bool parseString(std::string* out)
    {
        if (text_[pos_] != '"') {
            return false;
        }
        ++pos_;
        out->clear();
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                if (pos_ >= text_.size()) {
                    return false;
                }
                const char esc = text_[pos_++];
                switch (esc) {
                  case 'n': c = '\n'; break;
                  case 'r': c = '\r'; break;
                  case 't': c = '\t'; break;
                  case 'u':
                    if (pos_ + 4 > text_.size()) {
                        return false;
                    }
                    // Validation only: keep the raw escape.
                    out->append("\\u");
                    out->append(text_, pos_, 4);
                    pos_ += 4;
                    continue;
                  default: c = esc; break;
                }
            }
            out->push_back(c);
        }
        if (pos_ >= text_.size()) {
            return false;
        }
        ++pos_;  // closing quote
        return true;
    }

    bool parseNumber(JsonValue* out)
    {
        const size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E')) {
            ++pos_;
        }
        if (pos_ == start) {
            return false;
        }
        out->kind = JsonValue::Kind::kNumber;
        out->number = std::atof(text_.substr(start, pos_ - start).c_str());
        return true;
    }

    bool parseArray(JsonValue* out)
    {
        ++pos_;  // '['
        out->kind = JsonValue::Kind::kArray;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue item;
            skipWs();
            if (!parseValue(&item)) {
                return false;
            }
            out->array.push_back(std::move(item));
            skipWs();
            if (pos_ >= text_.size()) {
                return false;
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool parseObject(JsonValue* out)
    {
        ++pos_;  // '{'
        out->kind = JsonValue::Kind::kObject;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (!parseString(&key)) {
                return false;
            }
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':') {
                return false;
            }
            ++pos_;
            skipWs();
            JsonValue value;
            if (!parseValue(&value)) {
                return false;
            }
            out->object.emplace(std::move(key), std::move(value));
            skipWs();
            if (pos_ >= text_.size()) {
                return false;
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    const std::string& text_;
    size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(Counter, StripedConcurrentAddsAreExact)
{
    obs::Counter counter;
    constexpr int kThreads = 8;
    constexpr uint64_t kPerThread = 100000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&counter] {
            for (uint64_t i = 0; i < kPerThread; ++i) {
                counter.add();
            }
        });
    }
    for (auto& t : threads) {
        t.join();
    }
    EXPECT_EQ(counter.value(), kThreads * kPerThread);
    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
}

TEST(Gauge, LastWriteWins)
{
    obs::Gauge gauge;
    gauge.set(3.5);
    EXPECT_DOUBLE_EQ(gauge.value(), 3.5);
    gauge.set(-1.0);
    EXPECT_DOUBLE_EQ(gauge.value(), -1.0);
    gauge.reset();
    EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(LatencyHistogram, ConcurrentRecordsKeepExactTotals)
{
    obs::LatencyHistogram hist(0.0, 1.0, 100);
    constexpr int kThreads = 8;
    constexpr int kPerThread = 50000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&hist, t] {
            Rng rng(static_cast<uint64_t>(t) + 1);
            for (int i = 0; i < kPerThread; ++i) {
                hist.record(rng.nextDouble());
            }
        });
    }
    for (auto& t : threads) {
        t.join();
    }
    const obs::HistogramSnapshot snap = hist.snapshot();
    EXPECT_EQ(snap.total,
              static_cast<uint64_t>(kThreads) * kPerThread);
    uint64_t bucket_sum = 0;
    for (uint64_t c : snap.counts) {
        bucket_sum += c;
    }
    EXPECT_EQ(bucket_sum, snap.total);
    // Uniform samples on [0,1): the mean converges to 0.5.
    EXPECT_NEAR(snap.mean(), 0.5, 0.01);
}

TEST(LatencyHistogram, PercentileAgreesWithExactWithinOneBucket)
{
    obs::LatencyHistogram hist(0.0, 1.0, 1000);
    Rng rng(7);
    std::vector<double> samples;
    for (int i = 0; i < 20000; ++i) {
        // Skewed tail, like a latency distribution.
        const double x = std::pow(rng.nextDouble(), 3.0);
        samples.push_back(x);
        hist.record(x);
    }
    std::sort(samples.begin(), samples.end());
    const obs::HistogramSnapshot snap = hist.snapshot();
    const double tol = snap.bucketWidth();
    for (double p : {0.5, 0.9, 0.95, 0.99, 0.999}) {
        EXPECT_NEAR(snap.percentile(p), percentileOfSorted(samples, p),
                    tol)
            << "p=" << p;
    }
}

TEST(LatencyHistogram, MergedShardsMatchSingleHistogramExactly)
{
    // Bucketing is deterministic, so recording samples into per-node
    // shards and merging must reproduce the single-histogram counts
    // bit for bit — and therefore every percentile. This is the
    // contract the fleet p99 roll-up rests on.
    constexpr int kShards = 4;
    obs::LatencyHistogram single(0.0, 0.5, 500);
    std::vector<std::unique_ptr<obs::LatencyHistogram>> shards;
    for (int s = 0; s < kShards; ++s) {
        shards.push_back(
            std::make_unique<obs::LatencyHistogram>(0.0, 0.5, 500));
    }
    Rng rng(21);
    for (int i = 0; i < 40000; ++i) {
        const double x = 0.6 * std::pow(rng.nextDouble(), 2.0);
        single.record(x);
        shards[static_cast<size_t>(i % kShards)]->record(x);
    }

    // Snapshot-level merge.
    obs::HistogramSnapshot merged = shards[0]->snapshot();
    for (int s = 1; s < kShards; ++s) {
        merged.merge(shards[static_cast<size_t>(s)]->snapshot());
    }
    const obs::HistogramSnapshot exact = single.snapshot();
    EXPECT_EQ(merged.total, exact.total);
    ASSERT_EQ(merged.counts.size(), exact.counts.size());
    for (size_t b = 0; b < exact.counts.size(); ++b) {
        ASSERT_EQ(merged.counts[b], exact.counts[b]) << "bucket " << b;
    }
    for (double p : {0.5, 0.9, 0.99, 0.999}) {
        EXPECT_DOUBLE_EQ(merged.percentile(p), exact.percentile(p))
            << "p=" << p;
    }

    // Histogram-level merge folds shards into a live histogram.
    obs::LatencyHistogram folded(0.0, 0.5, 500);
    for (const auto& shard : shards) {
        folded.merge(*shard);
    }
    const obs::HistogramSnapshot folded_snap = folded.snapshot();
    EXPECT_EQ(folded_snap.total, exact.total);
    EXPECT_DOUBLE_EQ(folded_snap.percentile(0.99),
                     exact.percentile(0.99));
}

TEST(LatencyHistogram, MergeRejectsMismatchedBounds)
{
    obs::LatencyHistogram a(0.0, 1.0, 100);
    obs::LatencyHistogram b(0.0, 2.0, 100);
    EXPECT_DEATH(a.merge(b), "check failed");
}

TEST(LatencyHistogram, OutOfRangeSamplesClampToEdgeBuckets)
{
    obs::LatencyHistogram hist(0.0, 1.0, 10);
    hist.record(-5.0);
    hist.record(42.0);
    const obs::HistogramSnapshot snap = hist.snapshot();
    EXPECT_EQ(snap.counts.front(), 1u);
    EXPECT_EQ(snap.counts.back(), 1u);
    EXPECT_EQ(snap.total, 2u);
}

TEST(MetricsRegistry, HandlesAreStableAndResetKeepsRegistrations)
{
    obs::MetricsRegistry registry;
    obs::Counter& c1 = registry.counter("test.counter");
    obs::Counter& c2 = registry.counter("test.counter");
    EXPECT_EQ(&c1, &c2);
    c1.add(3);
    registry.gauge("test.gauge").set(2.5);
    registry.histogram("test.hist", 0.0, 1.0, 10).record(0.25);

    obs::MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counters.at("test.counter"), 3u);
    EXPECT_DOUBLE_EQ(snap.gauges.at("test.gauge"), 2.5);
    EXPECT_EQ(snap.histograms.at("test.hist").total, 1u);

    registry.reset();
    c1.add(1);  // the pre-reset handle still works
    snap = registry.snapshot();
    EXPECT_EQ(snap.counters.at("test.counter"), 1u);
    EXPECT_DOUBLE_EQ(snap.gauges.at("test.gauge"), 0.0);
    EXPECT_EQ(snap.histograms.at("test.hist").total, 0u);
}

TEST(MetricsRegistry, ConcurrentMixedUpdatesStayExact)
{
    obs::MetricsRegistry registry;
    constexpr int kThreads = 8;
    constexpr int kIters = 20000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&registry, t] {
            // Registration and update race deliberately.
            obs::Counter& c = registry.counter("mixed.counter");
            obs::LatencyHistogram& h =
                registry.histogram("mixed.hist", 0.0, 1.0, 50);
            Rng rng(static_cast<uint64_t>(t) + 11);
            for (int i = 0; i < kIters; ++i) {
                c.add();
                h.record(rng.nextDouble());
            }
        });
    }
    for (auto& t : threads) {
        t.join();
    }
    const obs::MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counters.at("mixed.counter"),
              static_cast<uint64_t>(kThreads) * kIters);
    EXPECT_EQ(snap.histograms.at("mixed.hist").total,
              static_cast<uint64_t>(kThreads) * kIters);
}

TEST(MetricsRegistry, RenderJsonParsesBack)
{
    obs::MetricsRegistry registry;
    registry.counter("a.count").add(5);
    registry.gauge("b.gauge").set(1.25);
    registry.histogram("c.hist", 0.0, 1.0, 10).record(0.5);

    const std::string json = registry.snapshot().renderJson();
    JsonValue doc;
    ASSERT_TRUE(JsonParser(json).parse(&doc)) << json;
    EXPECT_EQ(doc.at("counters").at("a.count").number, 5.0);
    EXPECT_DOUBLE_EQ(doc.at("gauges").at("b.gauge").number, 1.25);
    EXPECT_EQ(doc.at("histograms").at("c.hist").at("count").number, 1.0);
}

// ---------------------------------------------------------------------------
// Trace buffer + spans

/// Restores the process tracing flag on scope exit so tests cannot
/// leak an enabled flag into unrelated suites.
struct TraceFlagGuard {
    TraceFlagGuard() : prev_(obs::traceEnabled()) {}
    ~TraceFlagGuard() { obs::setTraceEnabled(prev_); }
    const bool prev_;
};

TEST(TraceBuffer, BoundedWithDropAccounting)
{
    obs::TraceBuffer buffer(16);
    obs::SpanRecord rec;
    std::snprintf(rec.name, sizeof(rec.name), "test.span");
    for (int i = 0; i < 20; ++i) {
        rec.startNs = static_cast<uint64_t>(i);
        rec.endNs = rec.startNs + 1;
        buffer.record(rec);
    }
    EXPECT_EQ(buffer.size(), 16u);
    EXPECT_EQ(buffer.dropped(), 4u);
    const obs::TraceSnapshot snap = buffer.snapshot();
    EXPECT_EQ(snap.spans.size(), 16u);
    EXPECT_EQ(snap.dropped, 4u);
    // Drop-new policy: the oldest records survive.
    EXPECT_EQ(snap.spans.front().startNs, 0u);
    EXPECT_EQ(snap.spans.back().startNs, 15u);

    buffer.clear();
    EXPECT_EQ(buffer.size(), 0u);
    EXPECT_EQ(buffer.dropped(), 0u);
    EXPECT_TRUE(buffer.snapshot().spans.empty());
}

TEST(TraceBuffer, ConcurrentRecordsAllCommit)
{
    obs::TraceBuffer buffer(100000);
    constexpr int kThreads = 8;
    constexpr int kPerThread = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&buffer] {
            obs::SpanRecord rec;
            std::snprintf(rec.name, sizeof(rec.name), "concurrent");
            for (int i = 0; i < kPerThread; ++i) {
                buffer.record(rec);
            }
        });
    }
    for (auto& t : threads) {
        t.join();
    }
    EXPECT_EQ(buffer.size(),
              static_cast<size_t>(kThreads) * kPerThread);
    EXPECT_EQ(buffer.dropped(), 0u);
    EXPECT_EQ(buffer.snapshot().spans.size(),
              static_cast<size_t>(kThreads) * kPerThread);
}

TEST(ScopedSpan, DisabledSpansWriteNothing)
{
    TraceFlagGuard guard;
    obs::setTraceEnabled(false);
    obs::TraceBuffer& buffer = obs::TraceBuffer::global();
    buffer.clear();
    for (int i = 0; i < 100; ++i) {
        RECSTACK_SPAN("test.disabled", {{"i", i}});
    }
    {
        obs::ScopedSpan span("test", "disabled_two_part");
        span.arg("late", 1);
        EXPECT_FALSE(span.active());
    }
    EXPECT_EQ(buffer.size(), 0u);
    EXPECT_EQ(buffer.dropped(), 0u);
}

TEST(ScopedSpan, EnabledSpansRecordNamesArgsAndMonotonicTimes)
{
    TraceFlagGuard guard;
    obs::TraceBuffer& buffer = obs::TraceBuffer::global();
    buffer.clear();
    obs::setTraceEnabled(true);
    {
        RECSTACK_SPAN("test.outer", {{"k", 7}});
        obs::ScopedSpan inner("op", "FC");
        inner.arg("rows", 64);
    }
    obs::setTraceEnabled(false);
    const obs::TraceSnapshot snap = buffer.snapshot();
    ASSERT_EQ(snap.spans.size(), 2u);
    // Inner destructs first.
    EXPECT_STREQ(snap.spans[0].name, "op.FC");
    ASSERT_EQ(snap.spans[0].numArgs, 1u);
    EXPECT_STREQ(snap.spans[0].args[0].key, "rows");
    EXPECT_EQ(snap.spans[0].args[0].value, 64);
    EXPECT_STREQ(snap.spans[1].name, "test.outer");
    ASSERT_EQ(snap.spans[1].numArgs, 1u);
    EXPECT_EQ(snap.spans[1].args[0].value, 7);
    for (const obs::SpanRecord& rec : snap.spans) {
        EXPECT_LE(rec.startNs, rec.endNs);
        EXPECT_GT(rec.tid, 0u);
    }
    // The outer span opened before the inner one.
    EXPECT_LE(snap.spans[1].startNs, snap.spans[0].startNs);
    buffer.clear();
}

// ---------------------------------------------------------------------------
// Chrome trace export

TEST(TraceExport, RendersValidChromeTraceJson)
{
    obs::TraceSnapshot snap;
    obs::SpanRecord rec;
    std::snprintf(rec.name, sizeof(rec.name), "queue.acquire");
    rec.startNs = 1500;
    rec.endNs = 4500;
    rec.tid = 3;
    rec.numArgs = 2;
    std::snprintf(rec.args[0].key, sizeof(rec.args[0].key), "batch");
    rec.args[0].value = 64;
    std::snprintf(rec.args[1].key, sizeof(rec.args[1].key), "busy");
    rec.args[1].value = 2;
    snap.spans.push_back(rec);
    std::snprintf(rec.name, sizeof(rec.name), "noprefix");
    rec.numArgs = 0;
    snap.spans.push_back(rec);
    snap.dropped = 9;

    const std::string json = obs::renderChromeTrace(snap);
    JsonValue doc;
    ASSERT_TRUE(JsonParser(json).parse(&doc)) << json;
    const JsonValue& events = doc.at("traceEvents");
    ASSERT_EQ(events.kind, JsonValue::Kind::kArray);
    ASSERT_EQ(events.array.size(), 2u);
    const JsonValue& ev = events.array[0];
    EXPECT_EQ(ev.at("name").str, "queue.acquire");
    EXPECT_EQ(ev.at("cat").str, "queue");
    EXPECT_EQ(ev.at("ph").str, "X");
    EXPECT_DOUBLE_EQ(ev.at("ts").number, 1.5);
    EXPECT_DOUBLE_EQ(ev.at("dur").number, 3.0);
    EXPECT_EQ(ev.at("pid").number, 1.0);
    EXPECT_EQ(ev.at("tid").number, 3.0);
    EXPECT_EQ(ev.at("args").at("batch").number, 64.0);
    EXPECT_EQ(ev.at("args").at("busy").number, 2.0);
    // A prefix-free name categorizes as itself.
    EXPECT_EQ(events.array[1].at("cat").str, "noprefix");
    EXPECT_EQ(doc.at("recstack").at("dropped").number, 9.0);
}

TEST(TraceExport, WriteChromeTraceRoundTrips)
{
    obs::TraceSnapshot snap;
    obs::SpanRecord rec;
    std::snprintf(rec.name, sizeof(rec.name), "engine.batch");
    rec.startNs = 0;
    rec.endNs = 1000;
    rec.tid = 1;
    snap.spans.push_back(rec);

    const std::string path =
        ::testing::TempDir() + "recstack_trace_roundtrip.json";
    std::string error;
    ASSERT_TRUE(obs::writeChromeTrace(path, snap, &error)) << error;

    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string text;
    char buf[4096];
    size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
        text.append(buf, n);
    }
    std::fclose(f);
    std::remove(path.c_str());

    JsonValue doc;
    ASSERT_TRUE(JsonParser(text).parse(&doc));
    EXPECT_EQ(doc.at("traceEvents").array.size(), 1u);

    EXPECT_FALSE(obs::writeChromeTrace(
        "/nonexistent-dir/trace.json", snap, &error));
    EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// Serving engine integration

class ObsServingTest : public ::testing::Test
{
  protected:
    ObsServingTest()
        : sweep_(allPlatforms(),
                 []() {
                     ModelOptions opts = tinyOptions();
                     opts.tableScale = 0.01;
                     return opts;
                 }()),
          sched_(&sweep_, {1, 16, 256, 4096})
    {
    }

    EngineResult run(ModelId model, ExecMode mode, bool capture_trace)
    {
        ServingEngine engine(&sched_, model, 0);
        EngineConfig cfg;
        cfg.numWorkers = 4;
        cfg.arrivalQps = 2000.0;
        cfg.maxBatch = 64;
        cfg.simSeconds = 0.25;
        cfg.execMode = mode;
        cfg.captureTrace = capture_trace;
        return engine.run(cfg);
    }

    SweepCache sweep_;
    QueryScheduler sched_;
};

TEST_F(ObsServingTest, LatencyHistogramMatchesExactStats)
{
    obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
    registry.reset();
    const EngineResult result =
        run(ModelId::kRM1, ExecMode::kProfileOnly, false);
    ASSERT_GT(result.aggregate.samplesServed, 0u);

    const obs::MetricsSnapshot snap = registry.snapshot();
    ASSERT_TRUE(snap.histograms.count("serve.query_latency_seconds"));
    const obs::HistogramSnapshot& hist =
        snap.histograms.at("serve.query_latency_seconds");
    EXPECT_EQ(hist.total, result.aggregate.samplesServed);
    const double tol = hist.bucketWidth();
    EXPECT_NEAR(hist.percentile(0.50), result.aggregate.p50Latency, tol);
    EXPECT_NEAR(hist.percentile(0.95), result.aggregate.p95Latency, tol);
    EXPECT_NEAR(hist.percentile(0.99), result.aggregate.p99Latency, tol);

    // Queue accounting went through the same run.
    EXPECT_EQ(snap.counters.at("queue.samples"),
              result.aggregate.samplesServed);
    EXPECT_EQ(snap.counters.at("queue.batches"),
              result.aggregate.batchesServed);
    EXPECT_EQ(snap.counters.at("serve.queries"),
              result.aggregate.samplesServed);
    EXPECT_EQ(snap.counters.at("executor.runs"),
              result.batchesExecuted);
}

TEST_F(ObsServingTest, StoreCountersReExportThroughRegistry)
{
    if (EmbeddingStore::disabledByEnv()) {
        GTEST_SKIP() << "RECSTACK_DISABLE_STORE set";
    }
    obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
    registry.reset();
    const EngineResult result =
        run(ModelId::kNCF, ExecMode::kNumericOnly, false);
    ASSERT_TRUE(result.storeShared);
    ASSERT_GT(result.storeStats.total.lookups, 0u);

    const obs::MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counters.at("store.lookups"),
              result.storeStats.total.lookups);
    EXPECT_EQ(snap.counters.at("store.hits"),
              result.storeStats.total.hits);
    EXPECT_GT(snap.counters.at("store.hits"), 0u);
    EXPECT_DOUBLE_EQ(
        snap.gauges.at("store.cache_bytes_used"),
        static_cast<double>(result.storeStats.total.cacheBytesUsed));
}

TEST_F(ObsServingTest, CaptureTraceRecordsSpansAndRestoresFlag)
{
    TraceFlagGuard guard;
    obs::setTraceEnabled(false);
    obs::TraceBuffer& buffer = obs::TraceBuffer::global();
    buffer.clear();

    const EngineResult result =
        run(ModelId::kNCF, ExecMode::kNumericOnly, true);
    ASSERT_GT(result.batchesExecuted, 0u);
    EXPECT_FALSE(obs::traceEnabled());  // restored after the run

    const obs::TraceSnapshot snap = buffer.snapshot();
    std::set<std::string> cats;
    std::set<uint32_t> tids;
    for (const obs::SpanRecord& rec : snap.spans) {
        const std::string name(rec.name);
        cats.insert(name.substr(0, name.find('.')));
        tids.insert(rec.tid);
    }
    EXPECT_TRUE(cats.count("queue"));
    EXPECT_TRUE(cats.count("engine"));
    EXPECT_TRUE(cats.count("executor"));
    EXPECT_TRUE(cats.count("op"));
    if (!EmbeddingStore::disabledByEnv()) {
        EXPECT_TRUE(cats.count("store"));
    }
    EXPECT_GE(tids.size(), 2u) << "spans from at least 2 workers";
    buffer.clear();
}

TEST_F(ObsServingTest, DisabledTracingLeavesBufferUntouched)
{
    TraceFlagGuard guard;
    obs::setTraceEnabled(false);
    obs::TraceBuffer& buffer = obs::TraceBuffer::global();
    buffer.clear();
    const EngineResult result =
        run(ModelId::kRM1, ExecMode::kProfileOnly, false);
    ASSERT_GT(result.batchesExecuted, 0u);
    EXPECT_EQ(buffer.size(), 0u);
    EXPECT_EQ(buffer.dropped(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end acceptance: the CLI run from the issue.

TEST(ObsCli, TraceExportFromRealServingRunIsWellFormed)
{
#ifndef RECSTACK_CLI_BINARY
    GTEST_SKIP() << "CLI binary path not configured";
#else
    const std::string trace_path =
        ::testing::TempDir() + "recstack_obs_accept.json";
    const std::string cmd = std::string(RECSTACK_CLI_BINARY) +
                            " obs RM2 256 --trace " + trace_path +
                            " > /dev/null";
    ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

    std::FILE* f = std::fopen(trace_path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string text;
    char buf[1 << 16];
    size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
        text.append(buf, n);
    }
    std::fclose(f);
    std::remove(trace_path.c_str());

    JsonValue doc;
    ASSERT_TRUE(JsonParser(text).parse(&doc));
    const JsonValue& events = doc.at("traceEvents");
    ASSERT_EQ(events.kind, JsonValue::Kind::kArray);
    ASSERT_GT(events.array.size(), 100u);

    std::set<std::string> cats;
    std::set<double> tids;
    for (const JsonValue& ev : events.array) {
        ASSERT_TRUE(ev.has("name"));
        ASSERT_TRUE(ev.has("ts"));
        ASSERT_TRUE(ev.has("dur"));
        ASSERT_TRUE(ev.has("tid"));
        EXPECT_EQ(ev.at("ph").str, "X");
        EXPECT_GE(ev.at("dur").number, 0.0);
        cats.insert(ev.at("cat").str);
        tids.insert(ev.at("tid").number);
    }
    // Batch-queue, per-op executor, and store spans, from >= 2
    // worker threads (the issue's acceptance criteria).
    EXPECT_TRUE(cats.count("queue"));
    EXPECT_TRUE(cats.count("op"));
    if (!EmbeddingStore::disabledByEnv()) {
        EXPECT_TRUE(cats.count("store"));
    }
    EXPECT_GE(tids.size(), 2u);
#endif
}

}  // namespace
}  // namespace recstack
