/**
 * @file
 * Tests for the BatchGenerator input synthesis.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "workload/batch_generator.h"
#include "workload/rate_envelope.h"

namespace recstack {
namespace {

WorkloadSpec
demoSpec()
{
    WorkloadSpec spec;
    spec.categorical.push_back({"idx0", "len0", 1000, 5, 0.0});
    spec.categorical.push_back({"idx1", "len1", 200, 2, 0.9});
    spec.continuous.push_back({"dense", 13});
    return spec;
}

TEST(BatchGenerator, MaterializeShapesAndTypes)
{
    Workspace ws;
    BatchGenerator gen(demoSpec());
    gen.materialize(ws, 8);

    EXPECT_EQ(ws.get("idx0").shape(), (std::vector<int64_t>{40}));
    EXPECT_EQ(ws.get("idx0").dtype(), DType::kInt64);
    EXPECT_EQ(ws.get("len0").shape(), (std::vector<int64_t>{8}));
    EXPECT_EQ(ws.get("len0").dtype(), DType::kInt32);
    EXPECT_EQ(ws.get("idx1").numel(), 16);
    EXPECT_EQ(ws.get("dense").shape(), (std::vector<int64_t>{8, 13}));
}

TEST(BatchGenerator, IndicesInTableRange)
{
    Workspace ws;
    BatchGenerator gen(demoSpec());
    gen.materialize(ws, 64);
    const int64_t* idx = ws.get("idx0").data<int64_t>();
    for (int64_t i = 0; i < ws.get("idx0").numel(); ++i) {
        ASSERT_GE(idx[i], 0);
        ASSERT_LT(idx[i], 1000);
    }
    const int64_t* idx1 = ws.get("idx1").data<int64_t>();
    for (int64_t i = 0; i < ws.get("idx1").numel(); ++i) {
        ASSERT_LT(idx1[i], 200);
    }
}

TEST(BatchGenerator, LengthsMatchLookups)
{
    Workspace ws;
    BatchGenerator gen(demoSpec());
    gen.materialize(ws, 4);
    const int32_t* len = ws.get("len0").data<int32_t>();
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(len[i], 5);
    }
}

TEST(BatchGenerator, DeterministicPerSeedAndBatch)
{
    Workspace a, b;
    BatchGenerator g1(demoSpec(), 99), g2(demoSpec(), 99);
    g1.materialize(a, 16);
    g2.materialize(b, 16);
    const int64_t* ia = a.get("idx0").data<int64_t>();
    const int64_t* ib = b.get("idx0").data<int64_t>();
    for (int64_t i = 0; i < a.get("idx0").numel(); ++i) {
        ASSERT_EQ(ia[i], ib[i]);
    }
}

TEST(BatchGenerator, ZipfSkewConcentratesIndices)
{
    WorkloadSpec skew;
    skew.categorical.push_back({"idx", "len", 100000, 50, 1.1});
    Workspace ws;
    BatchGenerator gen(skew);
    gen.materialize(ws, 64);
    const int64_t* idx = ws.get("idx").data<int64_t>();
    int head = 0;
    const int64_t n = ws.get("idx").numel();
    for (int64_t i = 0; i < n; ++i) {
        head += idx[i] < 1000;
    }
    // Strong skew: far more than the uniform 1% expectation.
    EXPECT_GT(head, n / 20);
}

TEST(BatchGenerator, DeclareCreatesShapeOnly)
{
    Workspace ws;
    BatchGenerator gen(demoSpec());
    gen.declare(ws, 1024);
    EXPECT_FALSE(ws.get("idx0").materialized());
    EXPECT_EQ(ws.get("idx0").numel(), 5120);
    EXPECT_FALSE(ws.get("dense").materialized());
}

TEST(BatchGenerator, InputBytesScaleWithBatch)
{
    BatchGenerator gen(demoSpec());
    const uint64_t b1 = gen.inputBytes(1);
    const uint64_t b64 = gen.inputBytes(64);
    EXPECT_EQ(b64, 64 * b1);
    // 5*8 + 4 + 2*8 + 4 + 13*4 = 116 bytes per sample.
    EXPECT_EQ(b1, 116u);
}

TEST(BatchGenerator, DataLoadProfileScalesWithBatch)
{
    BatchGenerator gen(demoSpec());
    const KernelProfile small = gen.dataLoadProfile(4);
    const KernelProfile large = gen.dataLoadProfile(4096);
    EXPECT_EQ(small.opType, "DataLoad");
    EXPECT_GT(large.vecElemOps, small.vecElemOps * 500);
    EXPECT_GT(large.bytesRead(), small.bytesRead());
    EXPECT_GT(large.totalBranches(), small.totalBranches());
}

TEST(BatchGenerator, RejectsNonPositiveBatch)
{
    Workspace ws;
    BatchGenerator gen(demoSpec());
    EXPECT_DEATH(gen.materialize(ws, 0), "positive");
}

/** Batch-size sweep property: everything stays consistent. */
class BatchSweep : public ::testing::TestWithParam<int64_t>
{
};

TEST_P(BatchSweep, MaterializeAndDeclareAgreeOnShapes)
{
    const int64_t batch = GetParam();
    Workspace real, shape;
    BatchGenerator gen(demoSpec());
    gen.materialize(real, batch);
    gen.declare(shape, batch);
    for (const auto& name : {"idx0", "len0", "idx1", "len1", "dense"}) {
        EXPECT_EQ(real.get(name).shape(), shape.get(name).shape())
            << name;
        EXPECT_EQ(real.get(name).dtype(), shape.get(name).dtype())
            << name;
    }
}

INSTANTIATE_TEST_SUITE_P(Batches, BatchSweep,
                         ::testing::Values(1, 2, 7, 64, 513, 4096));

TEST(RateEnvelope, ConstantIsFlatUnity)
{
    const RateEnvelope env = RateEnvelope::constant();
    EXPECT_TRUE(env.isConstant());
    for (double t : {0.0, 1.5, 86400.0, 1e7}) {
        EXPECT_DOUBLE_EQ(env.at(t), 1.0);
    }
}

TEST(RateEnvelope, DiurnalPeaksAtOneAndTroughsHalfAPeriodLater)
{
    const double period = 100.0;
    const RateEnvelope env = RateEnvelope::diurnal(period, 0.25, 10.0);
    EXPECT_FALSE(env.isConstant());
    EXPECT_DOUBLE_EQ(env.at(10.0), 1.0);               // peak
    EXPECT_DOUBLE_EQ(env.at(10.0 + period), 1.0);      // periodic
    EXPECT_NEAR(env.at(10.0 + period / 2.0), 0.25, 1e-12);
    // Quarter period sits exactly halfway between trough and peak.
    EXPECT_NEAR(env.at(10.0 + period / 4.0), 0.625, 1e-12);
    for (double t = 0.0; t < 2.0 * period; t += period / 17.0) {
        EXPECT_GT(env.at(t), 0.0);
        EXPECT_LE(env.at(t), 1.0);
    }
}

TEST(RateEnvelope, PiecewiseNormalizesAndInterpolates)
{
    // Max knot 0.8 rescales to 1.0, so 0.4 becomes 0.5.
    const RateEnvelope env =
        RateEnvelope::piecewise({0.0, 10.0, 20.0}, {0.4, 0.8, 0.4});
    EXPECT_DOUBLE_EQ(env.at(10.0), 1.0);
    EXPECT_DOUBLE_EQ(env.at(0.0), 0.5);
    EXPECT_DOUBLE_EQ(env.at(-5.0), 0.5);   // clamps before first knot
    EXPECT_DOUBLE_EQ(env.at(25.0), 0.5);   // clamps after last knot
    EXPECT_NEAR(env.at(5.0), 0.75, 1e-12);  // linear between knots
}

TEST(ModulatedPoisson, ConstantEnvelopeIsBitIdenticalToPoisson)
{
    PoissonProcess plain(5000.0, 7);
    ModulatedPoissonProcess modulated(5000.0, RateEnvelope::constant(),
                                      7);
    for (int i = 0; i < 2000; ++i) {
        ASSERT_DOUBLE_EQ(modulated.next(), plain.next()) << i;
    }
}

TEST(ModulatedPoisson, SameSeedReplaysTheSameStream)
{
    const RateEnvelope env = RateEnvelope::diurnal(1.0, 0.3);
    ModulatedPoissonProcess a(8000.0, env, 99);
    ModulatedPoissonProcess b(8000.0, env, 99);
    ModulatedPoissonProcess c(8000.0, env, 100);
    double prev = -1.0;
    bool diverged = false;
    for (int i = 0; i < 2000; ++i) {
        const double t = a.next();
        ASSERT_DOUBLE_EQ(t, b.next()) << i;
        ASSERT_GT(t, prev) << "timestamps must strictly increase";
        prev = t;
        diverged = diverged || (t != c.next());
    }
    EXPECT_TRUE(diverged) << "different seeds should differ";
}

TEST(ModulatedPoisson, DiurnalThinningTracksTheEnvelopeIntegral)
{
    // Mean multiplier of a full diurnal cycle is (1 + trough) / 2;
    // the thinned count over whole cycles should land near
    // base * horizon * mean (Poisson sd ~ sqrt(count)).
    const double base = 20000.0;
    const double period = 0.5;
    const double trough = 0.2;
    const double horizon = 4.0;  // 8 full cycles
    ModulatedPoissonProcess arrivals(
        base, RateEnvelope::diurnal(period, trough), 42);
    uint64_t count = 0;
    while (arrivals.next() < horizon) {
        ++count;
    }
    const double expected = base * horizon * (1.0 + trough) / 2.0;
    EXPECT_NEAR(static_cast<double>(count), expected,
                6.0 * std::sqrt(expected));
    // And strictly fewer arrivals than the unthinned clock admits.
    PoissonProcess plain(base, 42);
    uint64_t plain_count = 0;
    while (plain.next() < horizon) {
        ++plain_count;
    }
    EXPECT_LT(count, plain_count);
}

}  // namespace
}  // namespace recstack
