/**
 * @file
 * Tests of the OLS regression used by Fig. 16.
 */

#include <gtest/gtest.h>

#include "analysis/linreg.h"
#include "common/rng.h"

namespace recstack {
namespace {

TEST(SolveLinearSystem, TwoByTwo)
{
    std::vector<std::vector<double>> a = {{2, 1}, {1, 3}};
    std::vector<double> b = {5, 10};
    ASSERT_TRUE(solveLinearSystem(a, b));
    EXPECT_NEAR(b[0], 1.0, 1e-9);
    EXPECT_NEAR(b[1], 3.0, 1e-9);
}

TEST(SolveLinearSystem, NeedsPivoting)
{
    std::vector<std::vector<double>> a = {{0, 1}, {1, 0}};
    std::vector<double> b = {2, 3};
    ASSERT_TRUE(solveLinearSystem(a, b));
    EXPECT_NEAR(b[0], 3.0, 1e-9);
    EXPECT_NEAR(b[1], 2.0, 1e-9);
}

TEST(SolveLinearSystem, SingularReturnsFalse)
{
    std::vector<std::vector<double>> a = {{1, 2}, {2, 4}};
    std::vector<double> b = {1, 2};
    EXPECT_FALSE(solveLinearSystem(a, b));
}

TEST(FitLinear, RecoversPlantedModel)
{
    Rng rng(42);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 200; ++i) {
        const double a = rng.nextDouble() * 10.0;
        const double b = rng.nextDouble() * 4.0 - 2.0;
        x.push_back({a, b});
        y.push_back(3.0 * a - 1.5 * b + 7.0);
    }
    const LinearFit fit = fitLinear(x, y);
    EXPECT_GT(fit.r2, 0.9999);
    // Weight signs match the planted slopes.
    EXPECT_GT(fit.weights[0], 0.0);
    EXPECT_LT(fit.weights[1], 0.0);
    // Exact prediction on a fresh point.
    EXPECT_NEAR(fit.predict({2.0, 1.0}), 3.0 * 2 - 1.5 * 1 + 7, 1e-6);
}

TEST(FitLinear, NormalizedWeightsComparable)
{
    // Feature 1 has 100x the scale of feature 0 but the same
    // *standardized* influence; z-scoring must equalize the weights.
    Rng rng(7);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 400; ++i) {
        const double a = rng.nextGaussian();
        const double b = rng.nextGaussian() * 100.0;
        x.push_back({a, b});
        y.push_back(a + b / 100.0);
    }
    const LinearFit fit = fitLinear(x, y);
    EXPECT_NEAR(fit.weights[0], fit.weights[1], 0.15);
}

TEST(FitLinear, NoisyDataReasonableR2)
{
    Rng rng(9);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 500; ++i) {
        const double a = rng.nextGaussian();
        x.push_back({a});
        y.push_back(2.0 * a + rng.nextGaussian() * 0.5);
    }
    const LinearFit fit = fitLinear(x, y);
    EXPECT_GT(fit.r2, 0.85);
    EXPECT_LT(fit.r2, 1.0);
}

TEST(FitLinear, ConstantFeatureGetsZeroWeight)
{
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 50; ++i) {
        x.push_back({static_cast<double>(i), 5.0});
        y.push_back(2.0 * i);
    }
    const LinearFit fit = fitLinear(x, y);
    EXPECT_NEAR(fit.weights[1], 0.0, 1e-9);
    EXPECT_GT(fit.r2, 0.9999);
}

TEST(FitLinear, ConstantTargetPerfectFit)
{
    std::vector<std::vector<double>> x = {{1}, {2}, {3}};
    std::vector<double> y = {4, 4, 4};
    const LinearFit fit = fitLinear(x, y);
    EXPECT_NEAR(fit.intercept, 4.0, 1e-6);
    EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(FitLinear, CollinearFeaturesDontExplode)
{
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 60; ++i) {
        const double a = i * 0.1;
        x.push_back({a, 2 * a});  // perfectly collinear
        y.push_back(3 * a);
    }
    const LinearFit fit = fitLinear(x, y);  // ridge keeps it solvable
    EXPECT_GT(fit.r2, 0.999);
    for (double w : fit.weights) {
        EXPECT_LT(std::abs(w), 100.0);
    }
}

TEST(FitLinear, PredictRejectsWrongArity)
{
    const LinearFit fit = fitLinear({{1, 2}, {2, 1}, {0, 0}}, {1, 2, 3});
    EXPECT_DEATH(fit.predict({1.0}), "feature count");
}

}  // namespace
}  // namespace recstack
