/**
 * @file
 * Fleet-layer tests: hash-ring key movement, power-of-two-choices
 * properties, placement accounting, the analytic node twin's
 * differential agreement with the real threaded ServingNode, merged
 * histogram tails, autoscaler convergence, and determinism.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "fleet/autoscaler.h"
#include "fleet/fleet_sim.h"
#include "fleet/placement.h"
#include "fleet/router.h"
#include "serve/serving_engine.h"
#include "serve/serving_node.h"

namespace recstack {
namespace fleet {
namespace {

// ---------------------------------------------------------------------------
// HashRing / Router properties
// ---------------------------------------------------------------------------

TEST(HashRing, AddMovesAtMostOneOverMKeys)
{
    const int kNodes = 8;
    const int kKeys = 20000;
    HashRing ring(1024);
    for (int n = 0; n < kNodes; ++n) {
        ring.addNode(n);
    }
    std::vector<int> before(kKeys);
    for (int k = 0; k < kKeys; ++k) {
        before[static_cast<size_t>(k)] =
            ring.nodeFor(static_cast<uint64_t>(k));
    }

    ring.addNode(kNodes);
    int moved = 0;
    for (int k = 0; k < kKeys; ++k) {
        const int now = ring.nodeFor(static_cast<uint64_t>(k));
        if (now != before[static_cast<size_t>(k)]) {
            ++moved;
            // A key that moves can only move *to* the new node: the
            // arcs of the existing nodes only shrink.
            EXPECT_EQ(now, kNodes);
        }
    }
    EXPECT_GT(moved, 0);
    EXPECT_LE(moved, kKeys / kNodes);
}

TEST(HashRing, RemoveMovesOnlyTheRemovedNodesKeys)
{
    const int kNodes = 8;
    const int kKeys = 20000;
    HashRing ring(1024);
    for (int n = 0; n < kNodes; ++n) {
        ring.addNode(n);
    }
    std::vector<int> before(kKeys);
    for (int k = 0; k < kKeys; ++k) {
        before[static_cast<size_t>(k)] =
            ring.nodeFor(static_cast<uint64_t>(k));
    }

    const int removed = 3;
    ring.removeNode(removed);
    EXPECT_EQ(ring.numNodes(), kNodes - 1);
    int moved = 0;
    for (int k = 0; k < kKeys; ++k) {
        const int now = ring.nodeFor(static_cast<uint64_t>(k));
        if (before[static_cast<size_t>(k)] == removed) {
            ++moved;
            EXPECT_NE(now, removed);
        } else {
            // Keys not owned by the removed node never move.
            EXPECT_EQ(now, before[static_cast<size_t>(k)]);
        }
    }
    EXPECT_GT(moved, 0);
    EXPECT_LE(moved, kKeys / (kNodes - 1));
}

TEST(HashRing, AddThenRemoveIsIdentity)
{
    const int kNodes = 5;
    const int kKeys = 5000;
    HashRing ring(256);
    for (int n = 0; n < kNodes; ++n) {
        ring.addNode(n);
    }
    std::vector<int> before(kKeys);
    for (int k = 0; k < kKeys; ++k) {
        before[static_cast<size_t>(k)] =
            ring.nodeFor(static_cast<uint64_t>(k));
    }
    ring.addNode(kNodes);
    ring.removeNode(kNodes);
    for (int k = 0; k < kKeys; ++k) {
        EXPECT_EQ(ring.nodeFor(static_cast<uint64_t>(k)),
                  before[static_cast<size_t>(k)]);
    }
}

TEST(Router, PickShallowerNeverPicksTheDeeperQueue)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const int a = static_cast<int>(rng.nextBounded(16));
        int b = static_cast<int>(rng.nextBounded(15));
        if (b >= a) {
            ++b;
        }
        const double da = static_cast<double>(rng.nextBounded(100));
        const double db = static_cast<double>(rng.nextBounded(100));
        const int pick = Router::pickShallower(a, da, b, db);
        const double picked = pick == a ? da : db;
        EXPECT_LE(picked, da);
        EXPECT_LE(picked, db);
    }
    // Ties go to the first sample (deterministic rule).
    EXPECT_EQ(Router::pickShallower(2, 5.0, 9, 5.0), 2);
}

TEST(Router, PowerOfTwoAvoidsAPermanentlyDeepNode)
{
    const int kNodes = 6;
    Router router(RoutePolicy::kPowerOfTwo, kNodes, 11);
    std::vector<double> depths(kNodes, 0.0);
    depths[4] = 1e9;  // node 4 is always the deeper of any pair
    for (int i = 0; i < 5000; ++i) {
        EXPECT_NE(router.route(static_cast<uint64_t>(i), depths), 4);
    }
}

TEST(Router, RoundRobinIsBalanced)
{
    const int kNodes = 7;
    const int kQueries = 7000;
    Router router(RoutePolicy::kRoundRobin, kNodes, 3);
    std::vector<int> counts(kNodes, 0);
    std::vector<double> depths(kNodes, 0.0);
    for (int i = 0; i < kQueries; ++i) {
        ++counts[static_cast<size_t>(
            router.route(static_cast<uint64_t>(i * 977), depths))];
    }
    for (int n = 0; n < kNodes; ++n) {
        EXPECT_EQ(counts[static_cast<size_t>(n)], kQueries / kNodes);
    }
}

TEST(Router, ConsistentHashIsSticky)
{
    Router router(RoutePolicy::kConsistentHash, 9, 5);
    std::vector<double> depths(9, 0.0);
    for (uint64_t user = 0; user < 200; ++user) {
        const int first = router.route(user, depths);
        for (int rep = 0; rep < 5; ++rep) {
            EXPECT_EQ(router.route(user, depths), first);
        }
    }
}

// ---------------------------------------------------------------------------
// Placement
// ---------------------------------------------------------------------------

WorkloadSpec
twoTableWorkload()
{
    WorkloadSpec spec;
    CategoricalFeatureSpec a;
    a.tableRows = 1000;
    a.lookupsPerSample = 30;
    CategoricalFeatureSpec b;
    b.tableRows = 500;
    b.lookupsPerSample = 10;
    spec.categorical = {a, b};
    return spec;
}

TEST(Placement, ReplicatedIsAllLocal)
{
    PlacementConfig cfg;
    cfg.kind = PlacementKind::kReplicated;
    const PlacementView view(cfg, 8, twoTableWorkload());
    EXPECT_DOUBLE_EQ(view.localRowFraction(), 1.0);
    EXPECT_DOUBLE_EQ(view.remoteSecondsPerSample(), 0.0);
    EXPECT_EQ(view.nodeTableBytes(1000), 1000u);
    EXPECT_TRUE(view.rowIsLocal(3, 0, 123));
}

TEST(Placement, RowPartitionedPricesTheRemoteFraction)
{
    PlacementConfig cfg;
    cfg.kind = PlacementKind::kRowPartitioned;
    cfg.replicationFactor = 1;
    cfg.remoteRowSeconds = 1e-6;
    const PlacementView view(cfg, 4, twoTableWorkload());
    EXPECT_DOUBLE_EQ(view.localRowFraction(), 0.25);
    EXPECT_DOUBLE_EQ(view.remoteFraction(), 0.75);
    // 40 lookups/sample x 0.75 remote x 1us per remote row.
    EXPECT_DOUBLE_EQ(view.remoteSecondsPerSample(), 40.0 * 0.75 * 1e-6);
    EXPECT_EQ(view.nodeTableBytes(1000), 250u);
}

TEST(Placement, RowIsLocalMatchesTheExpectedFraction)
{
    PlacementConfig cfg;
    cfg.kind = PlacementKind::kRowPartitioned;
    cfg.replicationFactor = 2;
    const int kNodes = 5;
    const PlacementView view(cfg, kNodes, twoTableWorkload());
    // Every row is resident on exactly R nodes, and each node holds
    // exactly the expected fraction of a shard-aligned row range.
    const int64_t kRows = 1000;  // multiple of kNodes: exact counts
    for (int node = 0; node < kNodes; ++node) {
        int64_t local = 0;
        for (int64_t row = 0; row < kRows; ++row) {
            int holders = 0;
            for (int n = 0; n < kNodes; ++n) {
                holders += view.rowIsLocal(n, 0, row) ? 1 : 0;
            }
            EXPECT_EQ(holders, view.effectiveReplication());
            local += view.rowIsLocal(node, 0, row) ? 1 : 0;
        }
        EXPECT_DOUBLE_EQ(
            static_cast<double>(local) / static_cast<double>(kRows),
            view.localRowFraction());
    }
}

TEST(Placement, ReplicationAtFleetSizeDegeneratesToReplicated)
{
    PlacementConfig cfg;
    cfg.kind = PlacementKind::kRowPartitioned;
    cfg.replicationFactor = 6;
    const PlacementView view(cfg, 4, twoTableWorkload());
    EXPECT_DOUBLE_EQ(view.localRowFraction(), 1.0);
    EXPECT_DOUBLE_EQ(view.remoteSecondsPerSample(), 0.0);
    EXPECT_TRUE(view.rowIsLocal(2, 1, 77));
}

// ---------------------------------------------------------------------------
// FleetSimulator
// ---------------------------------------------------------------------------

class FleetSimTest : public ::testing::Test
{
  protected:
    FleetSimTest()
        : sweep_(allPlatforms(),
                 []() {
                     ModelOptions opts = tinyOptions();
                     opts.tableScale = 0.01;
                     return opts;
                 }()),
          sched_(&sweep_, {1, 16, 256, 4096})
    {
    }

    FleetConfig fleetConfig(int nodes, RoutePolicy policy)
    {
        FleetConfig cfg;
        cfg.numNodes = nodes;
        cfg.policy = policy;
        cfg.workersPerNode = 2;
        cfg.maxBatch = 64;
        cfg.maxWaitSeconds = 1e-3;
        cfg.simSeconds = 0.25;
        return cfg;
    }

    TrafficConfig trafficConfig(double qps)
    {
        TrafficConfig traffic;
        traffic.baseQps = qps;
        traffic.numUsers = 100000;
        traffic.userZipf = 0.9;
        traffic.seed = 42;
        return traffic;
    }

    SweepCache sweep_;
    QueryScheduler sched_;
};

TEST_F(FleetSimTest, ServesEveryArrival)
{
    FleetSimulator fleet(&sched_, ModelId::kRM1, 0);
    const FleetResult result = fleet.simulate(
        fleetConfig(3, RoutePolicy::kRoundRobin), trafficConfig(6000));
    EXPECT_GT(result.totalArrivals, 0u);
    EXPECT_EQ(result.aggregate.samplesArrived, result.totalArrivals);
    EXPECT_EQ(result.aggregate.samplesServed, result.totalArrivals);
    uint64_t routed = 0;
    for (const FleetNodeResult& node : result.perNode) {
        routed += node.routedQueries;
        EXPECT_EQ(node.stats.samplesServed, node.routedQueries);
    }
    EXPECT_EQ(routed, result.totalArrivals);
}

TEST_F(FleetSimTest, SingleNodeRoundRobinMatchesServingEngineExactly)
{
    // The fleet's constant-envelope arrival clock is bit-identical to
    // the PoissonProcess the single-node engine draws from, and a
    // 1-node fleet routes everything to node 0 — so the analytic twin
    // must reproduce ServingEngine::run to the last bit.
    const double kQps = 6000;
    FleetConfig fcfg = fleetConfig(1, RoutePolicy::kRoundRobin);
    TrafficConfig traffic = trafficConfig(kQps);

    FleetSimulator fleet(&sched_, ModelId::kRM1, 0);
    const FleetResult fleet_result = fleet.simulate(fcfg, traffic);

    ServingEngine engine(&sched_, ModelId::kRM1, 0);
    EngineConfig ecfg;
    ecfg.numWorkers = fcfg.workersPerNode;
    ecfg.arrivalQps = kQps;
    ecfg.maxBatch = fcfg.maxBatch;
    ecfg.maxWaitSeconds = fcfg.maxWaitSeconds;
    ecfg.simSeconds = fcfg.simSeconds;
    ecfg.seed = traffic.seed;
    const EngineResult engine_result = engine.run(ecfg);

    EXPECT_EQ(fleet_result.aggregate.samplesArrived,
              engine_result.aggregate.samplesArrived);
    EXPECT_EQ(fleet_result.aggregate.samplesServed,
              engine_result.aggregate.samplesServed);
    EXPECT_EQ(fleet_result.aggregate.batchesServed,
              engine_result.aggregate.batchesServed);
    EXPECT_DOUBLE_EQ(fleet_result.aggregate.meanLatency,
                     engine_result.aggregate.meanLatency);
    EXPECT_DOUBLE_EQ(fleet_result.aggregate.p50Latency,
                     engine_result.aggregate.p50Latency);
    EXPECT_DOUBLE_EQ(fleet_result.aggregate.p95Latency,
                     engine_result.aggregate.p95Latency);
    EXPECT_DOUBLE_EQ(fleet_result.aggregate.p99Latency,
                     engine_result.aggregate.p99Latency);
    EXPECT_DOUBLE_EQ(fleet_result.aggregate.utilization,
                     engine_result.aggregate.utilization);
    EXPECT_DOUBLE_EQ(fleet_result.aggregate.throughputQps,
                     engine_result.aggregate.throughputQps);
}

TEST_F(FleetSimTest, CapturedTracesReplayExactlyThroughServingNode)
{
    // The differential pin for the analytic twin: each node's routed
    // sub-stream, replayed through the real threaded ServingNode in
    // trace mode, must reproduce the twin's per-node stats exactly —
    // same admission rules, same contention factors, same placement
    // surcharge, same fp expression order.
    FleetConfig fcfg = fleetConfig(3, RoutePolicy::kPowerOfTwo);
    fcfg.captureTraces = true;
    fcfg.placement.kind = PlacementKind::kRowPartitioned;
    fcfg.placement.replicationFactor = 1;
    TrafficConfig traffic = trafficConfig(9000);

    FleetSimulator fleet(&sched_, ModelId::kRM1, 0);
    const FleetResult result = fleet.simulate(fcfg, traffic);
    ASSERT_GT(result.remoteSecondsPerSample, 0.0);

    for (size_t n = 0; n < result.perNode.size(); ++n) {
        const FleetNodeResult& twin = result.perNode[n];
        ServingNode node(&sched_, ModelId::kRM1, 0);
        EngineConfig ecfg;
        ecfg.numWorkers = fcfg.workersPerNode;
        ecfg.arrivalQps = traffic.baseQps;  // unused in trace mode
        ecfg.maxBatch = fcfg.maxBatch;
        ecfg.maxWaitSeconds = fcfg.maxWaitSeconds;
        ecfg.simSeconds = fcfg.simSeconds;
        ecfg.seed = traffic.seed;
        ecfg.remoteSecondsPerSample = result.remoteSecondsPerSample;
        const EngineResult replay =
            node.runTrace(ecfg, twin.arrivalTrace);

        EXPECT_EQ(replay.aggregate.samplesArrived,
                  twin.stats.samplesArrived)
            << "node " << n;
        EXPECT_EQ(replay.aggregate.samplesServed,
                  twin.stats.samplesServed)
            << "node " << n;
        EXPECT_EQ(replay.aggregate.batchesServed,
                  twin.stats.batchesServed)
            << "node " << n;
        EXPECT_DOUBLE_EQ(replay.aggregate.meanLatency,
                         twin.stats.meanLatency)
            << "node " << n;
        EXPECT_DOUBLE_EQ(replay.aggregate.p50Latency,
                         twin.stats.p50Latency)
            << "node " << n;
        EXPECT_DOUBLE_EQ(replay.aggregate.p99Latency,
                         twin.stats.p99Latency)
            << "node " << n;
        EXPECT_DOUBLE_EQ(replay.aggregate.utilization,
                         twin.stats.utilization)
            << "node " << n;
        EXPECT_DOUBLE_EQ(replay.aggregate.meanBatch,
                         twin.stats.meanBatch)
            << "node " << n;
    }
}

TEST_F(FleetSimTest, MergedHistogramP99AgreesWithinOneBucket)
{
    FleetSimulator fleet(&sched_, ModelId::kRM1, 0);
    const FleetResult result = fleet.simulate(
        fleetConfig(4, RoutePolicy::kPowerOfTwo), trafficConfig(10000));
    ASSERT_GT(result.aggregate.samplesServed, 0u);
    // Merged counts cover every served sample (clamping keeps
    // out-of-range ones in the edge buckets).
    EXPECT_EQ(result.mergedHistogram.total,
              result.aggregate.samplesServed);
    EXPECT_NEAR(result.mergedP99, result.aggregate.p99Latency,
                result.mergedHistogram.bucketWidth());
}

TEST_F(FleetSimTest, DeterministicAcrossRuns)
{
    FleetSimulator fleet(&sched_, ModelId::kRM1, 0);
    const FleetConfig cfg = fleetConfig(3, RoutePolicy::kPowerOfTwo);
    const TrafficConfig traffic = trafficConfig(8000);
    const FleetResult a = fleet.simulate(cfg, traffic);
    const FleetResult b = fleet.simulate(cfg, traffic);
    EXPECT_EQ(a.totalArrivals, b.totalArrivals);
    EXPECT_EQ(a.aggregate.samplesServed, b.aggregate.samplesServed);
    EXPECT_EQ(a.aggregate.batchesServed, b.aggregate.batchesServed);
    EXPECT_DOUBLE_EQ(a.aggregate.p99Latency, b.aggregate.p99Latency);
    EXPECT_DOUBLE_EQ(a.mergedP99, b.mergedP99);
    for (size_t n = 0; n < a.perNode.size(); ++n) {
        EXPECT_EQ(a.perNode[n].routedQueries,
                  b.perNode[n].routedQueries);
    }
}

TEST_F(FleetSimTest, StickyHashingConcentratesSkewedUsers)
{
    FleetSimulator fleet(&sched_, ModelId::kRM1, 0);
    const TrafficConfig traffic = trafficConfig(8000);
    const FleetResult rr = fleet.simulate(
        fleetConfig(4, RoutePolicy::kRoundRobin), traffic);
    const FleetResult hash = fleet.simulate(
        fleetConfig(4, RoutePolicy::kConsistentHash), traffic);
    // Round-robin splits counts evenly regardless of skew; sticky
    // hashing pins each user's whole stream to one node, so the
    // Zipf-hot users imbalance it.
    EXPECT_GT(hash.routedImbalance, rr.routedImbalance);
    EXPECT_LT(rr.routedImbalance, 1.01);
}

TEST_F(FleetSimTest, DiurnalEnvelopeThinsTraffic)
{
    FleetSimulator fleet(&sched_, ModelId::kRM1, 0);
    const FleetConfig cfg = fleetConfig(2, RoutePolicy::kRoundRobin);
    TrafficConfig constant = trafficConfig(8000);
    TrafficConfig diurnal = trafficConfig(8000);
    // Peak at t=0, trough (30% of peak) at mid-run.
    diurnal.envelope =
        RateEnvelope::diurnal(cfg.simSeconds * 2.0, 0.3);
    const FleetResult base = fleet.simulate(cfg, constant);
    const FleetResult modulated = fleet.simulate(cfg, diurnal);
    EXPECT_LT(modulated.totalArrivals, base.totalArrivals);
    // Mean multiplier over the first half-period is well above the
    // trough; arrivals should not collapse to the trough rate either.
    EXPECT_GT(modulated.totalArrivals, base.totalArrivals / 3);
    // Determinism under modulation.
    const FleetResult again = fleet.simulate(cfg, diurnal);
    EXPECT_EQ(again.totalArrivals, modulated.totalArrivals);
    EXPECT_DOUBLE_EQ(again.aggregate.p99Latency,
                     modulated.aggregate.p99Latency);
}

// ---------------------------------------------------------------------------
// Autoscaler
// ---------------------------------------------------------------------------

obs::HistogramSnapshot
syntheticTail(double p99_seconds)
{
    obs::LatencyHistogram hist(0.0, 1.0, 1000);
    for (int i = 0; i < 1000; ++i) {
        hist.record(p99_seconds * 0.5);
    }
    for (int i = 0; i < 20; ++i) {
        hist.record(p99_seconds);
    }
    return hist.snapshot();
}

TEST(Autoscaler, ConvergesToTheMinimalFeasibleFleet)
{
    // p99 ~ 0.1 / nodes; SLA 0.03 -> smallest feasible fleet is 4.
    AutoscalerConfig cfg;
    cfg.slaP99Seconds = 0.03;
    cfg.minNodes = 1;
    cfg.maxNodes = 8;
    const AutoscalerResult result =
        autoscale(cfg, [](int nodes, int /*epoch*/) {
            return syntheticTail(0.1 / static_cast<double>(nodes));
        });
    EXPECT_TRUE(result.feasible);
    EXPECT_EQ(result.nodes, 4);
    EXPECT_LE(result.epochsUsed, cfg.maxEpochs);
    // The walk went straight up: 1, 2, 3 violated, 4 settled, and the
    // memoized verdict for 3 blocked any drain probe.
    ASSERT_EQ(result.history.size(), 4u);
    for (size_t i = 0; i < result.history.size(); ++i) {
        EXPECT_EQ(result.history[i].nodes, static_cast<int>(i) + 1);
    }
}

TEST(Autoscaler, FeasibleAtMinHoldsImmediately)
{
    AutoscalerConfig cfg;
    cfg.slaP99Seconds = 0.5;
    const AutoscalerResult result = autoscale(
        cfg, [](int, int) { return syntheticTail(0.01); });
    EXPECT_TRUE(result.feasible);
    EXPECT_EQ(result.nodes, cfg.minNodes);
    EXPECT_EQ(result.epochsUsed, 1);
}

TEST(Autoscaler, ReportsInfeasibleAtMaxNodes)
{
    AutoscalerConfig cfg;
    cfg.slaP99Seconds = 1e-4;
    cfg.maxNodes = 4;
    const AutoscalerResult result = autoscale(
        cfg, [](int, int) { return syntheticTail(0.5); });
    EXPECT_FALSE(result.feasible);
    EXPECT_EQ(result.nodes, cfg.maxNodes);
    EXPECT_EQ(result.epochsUsed, 4);
}

TEST_F(FleetSimTest, AutoscalerReachesFeasibilityOnTheRealFleet)
{
    // Control signal = merged per-node histograms from real fleet
    // runs. Pick the SLA from a healthy large fleet's measured tail
    // so feasibility is guaranteed to exist within the node budget.
    FleetSimulator fleet(&sched_, ModelId::kRM1, 0);
    const TrafficConfig traffic = trafficConfig(24000);
    auto run_fleet = [&](int nodes) {
        FleetConfig cfg = fleetConfig(nodes, RoutePolicy::kPowerOfTwo);
        return fleet.simulate(cfg, traffic);
    };
    const FleetResult big = run_fleet(6);
    AutoscalerConfig cfg;
    cfg.slaP99Seconds = big.mergedP99 * 1.5;
    cfg.minNodes = 1;
    cfg.maxNodes = 6;
    const AutoscalerResult result =
        autoscale(cfg, [&](int nodes, int /*epoch*/) {
            return run_fleet(nodes).mergedHistogram;
        });
    EXPECT_TRUE(result.feasible);
    EXPECT_LE(result.epochsUsed, cfg.maxEpochs);
    EXPECT_LE(result.nodes, 6);
}

}  // namespace
}  // namespace fleet
}  // namespace recstack
