/**
 * @file
 * Property-based and differential tests:
 *  - the set-associative cache against a reference map-based LRU,
 *  - the unrolled GRU graph against the fused GRULayer operator,
 *  - CpuModel scaling properties across batch-like work scaling.
 */

#include <gtest/gtest.h>

#include <list>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "graph/executor.h"
#include "ops/elementwise.h"
#include "ops/fc.h"
#include "ops/gru.h"
#include "ops/reshape.h"
#include "uarch/cache.h"
#include "uarch/cpu_model.h"

namespace recstack {
namespace {

/** Reference LRU cache: per-set ordered lists, obviously correct. */
class ReferenceLru
{
  public:
    ReferenceLru(uint64_t size_bytes, int ways, int line_bytes = 64)
        : ways_(static_cast<size_t>(ways)),
          sets_(size_bytes /
                (static_cast<uint64_t>(ways) *
                 static_cast<uint64_t>(line_bytes))),
          lineBytes_(static_cast<uint64_t>(line_bytes)),
          lru_(sets_)
    {
    }

    bool access(uint64_t addr)
    {
        const uint64_t line = addr / lineBytes_;
        const uint64_t set = line % sets_;
        auto& order = lru_[set];
        for (auto it = order.begin(); it != order.end(); ++it) {
            if (*it == line) {
                order.erase(it);
                order.push_front(line);
                return true;
            }
        }
        order.push_front(line);
        if (order.size() > ways_) {
            order.pop_back();
        }
        return false;
    }

  private:
    size_t ways_;
    uint64_t sets_;
    uint64_t lineBytes_;
    std::vector<std::list<uint64_t>> lru_;
};

/** Random trace: every access must agree with the reference model. */
class CacheDifferential : public ::testing::TestWithParam<int>
{
};

TEST_P(CacheDifferential, MatchesReferenceLru)
{
    struct Geom {
        uint64_t size;
        int ways;
    };
    const Geom geoms[] = {{1024, 1}, {2048, 2}, {8192, 4}, {32768, 8}};
    const Geom g = geoms[GetParam() % 4];

    Cache cache(g.size, g.ways);
    ReferenceLru ref(g.size, g.ways);
    Rng rng(1000 + static_cast<uint64_t>(GetParam()));

    // Mix of sequential runs and random jumps over a footprint ~4x
    // the cache to exercise evictions heavily.
    const uint64_t footprint_lines = g.size / 64 * 4;
    uint64_t cursor = 0;
    for (int i = 0; i < 20000; ++i) {
        uint64_t line;
        if (rng.nextBool(0.5)) {
            line = cursor++ % footprint_lines;
        } else {
            line = rng.nextBounded(footprint_lines);
        }
        const uint64_t addr = line * 64;
        ASSERT_EQ(cache.access(addr), ref.access(addr))
            << "divergence at access " << i << " addr " << addr;
    }
}

INSTANTIATE_TEST_SUITE_P(Traces, CacheDifferential,
                         ::testing::Range(0, 8));

/**
 * Build an unrolled single-sample GRU with the SAME weight blobs as a
 * fused GRULayerOp and check both produce the same hidden states.
 * This is the numeric guarantee behind the bench_ablate_gru_fusion
 * comparison: the two graphs differ only in operator granularity.
 */
TEST(GruEquivalence, UnrolledGraphMatchesFusedOperator)
{
    const int64_t steps = 4, batch = 3, dim = 5, hidden = 5;
    Rng rng(77);
    auto rand_tensor = [&rng](std::vector<int64_t> shape) {
        Tensor t(std::move(shape));
        for (int64_t i = 0; i < t.numel(); ++i) {
            t.data<float>()[i] = rng.nextFloat(-0.5f, 0.5f);
        }
        return t;
    };

    Workspace ws;
    ws.set("wx", rand_tensor({3 * hidden, dim}));
    ws.set("wh", rand_tensor({3 * hidden, hidden}));
    ws.set("bias", rand_tensor({3 * hidden}));
    ws.set("bias0", Tensor({3 * hidden}));  // zero bias for h-path FC
    ws.set("h0", rand_tensor({batch, hidden}));
    ws.set("seq_bm", rand_tensor({batch, steps, dim}));  // batch-major

    // --- Fused path (time-major input). ---
    {
        TransposeOp tr("tr", "seq_bm", "seq_tm");
        tr.inferShapes(ws);
        tr.run(ws);
        GRULayerOp gru("fused", "seq_tm", "h0", "wx", "wh", "bias",
                       "hseq", "hlast_fused");
        gru.inferShapes(ws);
        gru.run(ws);
    }

    // --- Unrolled path: per-step ops over the same weights. ---
    NetDef net("unrolled");
    for (const char* input : {"seq_bm", "h0", "wx", "wh", "bias",
                              "bias0"}) {
        net.addExternalInput(input);
    }
    std::string h = "h0";
    for (int64_t t = 0; t < steps; ++t) {
        const std::string ts = "t" + std::to_string(t);
        net.addOp(makeSlice(ts + "_x", "seq_bm", ts + "_xt", t));
        net.addOp(makeFC(ts + "_gx", ts + "_xt", "wx", "bias",
                         ts + "_gxf"));
        net.addOp(makeFC(ts + "_gh", h, "wh", "bias0", ts + "_ghf"));
        net.addOp(makeReshape(ts + "_rx", ts + "_gxf", ts + "_gx3",
                              {-1, 3, hidden}));
        net.addOp(makeReshape(ts + "_rh", ts + "_ghf", ts + "_gh3",
                              {-1, 3, hidden}));
        for (int g = 0; g < 3; ++g) {
            net.addOp(makeSlice(ts + "_sx" + std::to_string(g),
                                ts + "_gx3",
                                ts + "_gx" + std::to_string(g), g));
            net.addOp(makeSlice(ts + "_sh" + std::to_string(g),
                                ts + "_gh3",
                                ts + "_gh" + std::to_string(g), g));
        }
        net.addOp(makeAdd(ts + "_ar", ts + "_gx0", ts + "_gh0",
                          ts + "_rsum"));
        net.addOp(makeSigmoid(ts + "_r", ts + "_rsum", ts + "_rg"));
        net.addOp(makeAdd(ts + "_az", ts + "_gx1", ts + "_gh1",
                          ts + "_zsum"));
        net.addOp(makeSigmoid(ts + "_z", ts + "_zsum", ts + "_zg"));
        net.addOp(makeMul(ts + "_rh2", ts + "_rg", ts + "_gh2",
                          ts + "_rgh"));
        net.addOp(makeAdd(ts + "_an", ts + "_gx2", ts + "_rgh",
                          ts + "_nsum"));
        net.addOp(makeTanh(ts + "_n", ts + "_nsum", ts + "_ng"));
        net.addOp(makeMul(ts + "_zn", ts + "_zg", ts + "_ng",
                          ts + "_zng"));
        net.addOp(makeSub(ts + "_nmzn", ts + "_ng", ts + "_zng",
                          ts + "_a"));
        net.addOp(makeMul(ts + "_zh", ts + "_zg", h, ts + "_zhv"));
        net.addOp(makeAdd(ts + "_hnew", ts + "_a", ts + "_zhv",
                          ts + "_h"));
        h = ts + "_h";
    }
    net.addExternalOutput(h);
    net.validate();
    Executor::run(net, ws, ExecMode::kFull);

    const Tensor& fused = ws.get("hlast_fused");
    const Tensor& unrolled = ws.get(h);
    ASSERT_EQ(fused.shape(), unrolled.shape());
    for (int64_t i = 0; i < fused.numel(); ++i) {
        EXPECT_NEAR(fused.data<float>()[i], unrolled.data<float>()[i],
                    1e-5)
            << "element " << i;
    }
}

/** More simulated work must never take fewer cycles. */
TEST(CpuModelProperty, CyclesMonotoneInWork)
{
    auto profile_for = [](uint64_t scale) {
        KernelProfile kp;
        kp.opType = "FC";
        kp.opName = "fc";
        kp.fmaFlops = (1 << 16) * scale;
        kp.vecElemOps = (1 << 14) * scale;
        kp.scalarOps = 1024 * scale;
        kp.codeFootprintBytes = 2048;
        kp.codeRegion = "kernel:FC";
        MemStream s;
        s.region = "w";
        s.accesses = 512 * scale;
        s.chunkBytes = 64;
        s.footprintBytes = 512 * 64 * scale;
        kp.streams.push_back(s);
        return kp;
    };
    double prev = 0.0;
    for (uint64_t scale : {1, 2, 4, 8, 16}) {
        CpuModel cpu(broadwellConfig(), 3);
        cpu.simulateKernel(profile_for(scale));
        const double cycles =
            cpu.simulateKernel(profile_for(scale)).cycles;
        EXPECT_GT(cycles, prev);
        prev = cycles;
    }
}

/** Retired uops are exactly linear in replicated work. */
TEST(CpuModelProperty, UopsLinearInWork)
{
    CpuModel cpu(broadwellConfig());
    KernelProfile kp;
    kp.fmaFlops = 1 << 16;
    kp.vecElemOps = 1 << 12;
    const uint64_t once = cpu.lowerUops(kp).total();
    kp.fmaFlops *= 3;
    kp.vecElemOps *= 3;
    EXPECT_EQ(cpu.lowerUops(kp).total(), 3 * once);
}

}  // namespace
}  // namespace recstack
