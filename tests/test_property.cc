/**
 * @file
 * Property-based and differential tests:
 *  - the set-associative cache against a reference map-based LRU,
 *  - the unrolled GRU graph against the fused GRULayer operator,
 *  - CpuModel scaling properties across batch-like work scaling,
 *  - parallelFor partition properties (chunks exactly tile the range)
 *    and randomized serial-vs-parallel bit-equality per operator.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "graph/executor.h"
#include "ops/elementwise.h"
#include "ops/embedding.h"
#include "ops/fc.h"
#include "ops/gru.h"
#include "ops/reshape.h"
#include "uarch/cache.h"
#include "uarch/cpu_model.h"

namespace recstack {
namespace {

/** Reference LRU cache: per-set ordered lists, obviously correct. */
class ReferenceLru
{
  public:
    ReferenceLru(uint64_t size_bytes, int ways, int line_bytes = 64)
        : ways_(static_cast<size_t>(ways)),
          sets_(size_bytes /
                (static_cast<uint64_t>(ways) *
                 static_cast<uint64_t>(line_bytes))),
          lineBytes_(static_cast<uint64_t>(line_bytes)),
          lru_(sets_)
    {
    }

    bool access(uint64_t addr)
    {
        const uint64_t line = addr / lineBytes_;
        const uint64_t set = line % sets_;
        auto& order = lru_[set];
        for (auto it = order.begin(); it != order.end(); ++it) {
            if (*it == line) {
                order.erase(it);
                order.push_front(line);
                return true;
            }
        }
        order.push_front(line);
        if (order.size() > ways_) {
            order.pop_back();
        }
        return false;
    }

  private:
    size_t ways_;
    uint64_t sets_;
    uint64_t lineBytes_;
    std::vector<std::list<uint64_t>> lru_;
};

/** Random trace: every access must agree with the reference model. */
class CacheDifferential : public ::testing::TestWithParam<int>
{
};

TEST_P(CacheDifferential, MatchesReferenceLru)
{
    struct Geom {
        uint64_t size;
        int ways;
    };
    const Geom geoms[] = {{1024, 1}, {2048, 2}, {8192, 4}, {32768, 8}};
    const Geom g = geoms[GetParam() % 4];

    Cache cache(g.size, g.ways);
    ReferenceLru ref(g.size, g.ways);
    Rng rng(1000 + static_cast<uint64_t>(GetParam()));

    // Mix of sequential runs and random jumps over a footprint ~4x
    // the cache to exercise evictions heavily.
    const uint64_t footprint_lines = g.size / 64 * 4;
    uint64_t cursor = 0;
    for (int i = 0; i < 20000; ++i) {
        uint64_t line;
        if (rng.nextBool(0.5)) {
            line = cursor++ % footprint_lines;
        } else {
            line = rng.nextBounded(footprint_lines);
        }
        const uint64_t addr = line * 64;
        ASSERT_EQ(cache.access(addr), ref.access(addr))
            << "divergence at access " << i << " addr " << addr;
    }
}

INSTANTIATE_TEST_SUITE_P(Traces, CacheDifferential,
                         ::testing::Range(0, 8));

/**
 * Build an unrolled single-sample GRU with the SAME weight blobs as a
 * fused GRULayerOp and check both produce the same hidden states.
 * This is the numeric guarantee behind the bench_ablate_gru_fusion
 * comparison: the two graphs differ only in operator granularity.
 */
TEST(GruEquivalence, UnrolledGraphMatchesFusedOperator)
{
    const int64_t steps = 4, batch = 3, dim = 5, hidden = 5;
    Rng rng(77);
    auto rand_tensor = [&rng](std::vector<int64_t> shape) {
        Tensor t(std::move(shape));
        for (int64_t i = 0; i < t.numel(); ++i) {
            t.data<float>()[i] = rng.nextFloat(-0.5f, 0.5f);
        }
        return t;
    };

    Workspace ws;
    ws.set("wx", rand_tensor({3 * hidden, dim}));
    ws.set("wh", rand_tensor({3 * hidden, hidden}));
    ws.set("bias", rand_tensor({3 * hidden}));
    ws.set("bias0", Tensor({3 * hidden}));  // zero bias for h-path FC
    ws.set("h0", rand_tensor({batch, hidden}));
    ws.set("seq_bm", rand_tensor({batch, steps, dim}));  // batch-major

    // --- Fused path (time-major input). ---
    {
        TransposeOp tr("tr", "seq_bm", "seq_tm");
        tr.inferShapes(ws);
        tr.run(ws);
        GRULayerOp gru("fused", "seq_tm", "h0", "wx", "wh", "bias",
                       "hseq", "hlast_fused");
        gru.inferShapes(ws);
        gru.run(ws);
    }

    // --- Unrolled path: per-step ops over the same weights. ---
    NetDef net("unrolled");
    for (const char* input : {"seq_bm", "h0", "wx", "wh", "bias",
                              "bias0"}) {
        net.addExternalInput(input);
    }
    std::string h = "h0";
    for (int64_t t = 0; t < steps; ++t) {
        const std::string ts = "t" + std::to_string(t);
        net.addOp(makeSlice(ts + "_x", "seq_bm", ts + "_xt", t));
        net.addOp(makeFC(ts + "_gx", ts + "_xt", "wx", "bias",
                         ts + "_gxf"));
        net.addOp(makeFC(ts + "_gh", h, "wh", "bias0", ts + "_ghf"));
        net.addOp(makeReshape(ts + "_rx", ts + "_gxf", ts + "_gx3",
                              {-1, 3, hidden}));
        net.addOp(makeReshape(ts + "_rh", ts + "_ghf", ts + "_gh3",
                              {-1, 3, hidden}));
        for (int g = 0; g < 3; ++g) {
            net.addOp(makeSlice(ts + "_sx" + std::to_string(g),
                                ts + "_gx3",
                                ts + "_gx" + std::to_string(g), g));
            net.addOp(makeSlice(ts + "_sh" + std::to_string(g),
                                ts + "_gh3",
                                ts + "_gh" + std::to_string(g), g));
        }
        net.addOp(makeAdd(ts + "_ar", ts + "_gx0", ts + "_gh0",
                          ts + "_rsum"));
        net.addOp(makeSigmoid(ts + "_r", ts + "_rsum", ts + "_rg"));
        net.addOp(makeAdd(ts + "_az", ts + "_gx1", ts + "_gh1",
                          ts + "_zsum"));
        net.addOp(makeSigmoid(ts + "_z", ts + "_zsum", ts + "_zg"));
        net.addOp(makeMul(ts + "_rh2", ts + "_rg", ts + "_gh2",
                          ts + "_rgh"));
        net.addOp(makeAdd(ts + "_an", ts + "_gx2", ts + "_rgh",
                          ts + "_nsum"));
        net.addOp(makeTanh(ts + "_n", ts + "_nsum", ts + "_ng"));
        net.addOp(makeMul(ts + "_zn", ts + "_zg", ts + "_ng",
                          ts + "_zng"));
        net.addOp(makeSub(ts + "_nmzn", ts + "_ng", ts + "_zng",
                          ts + "_a"));
        net.addOp(makeMul(ts + "_zh", ts + "_zg", h, ts + "_zhv"));
        net.addOp(makeAdd(ts + "_hnew", ts + "_a", ts + "_zhv",
                          ts + "_h"));
        h = ts + "_h";
    }
    net.addExternalOutput(h);
    net.validate();
    Executor::run(net, ws, ExecMode::kFull);

    const Tensor& fused = ws.get("hlast_fused");
    const Tensor& unrolled = ws.get(h);
    ASSERT_EQ(fused.shape(), unrolled.shape());
    for (int64_t i = 0; i < fused.numel(); ++i) {
        EXPECT_NEAR(fused.data<float>()[i], unrolled.data<float>()[i],
                    1e-5)
            << "element " << i;
    }
}

/** More simulated work must never take fewer cycles. */
TEST(CpuModelProperty, CyclesMonotoneInWork)
{
    auto profile_for = [](uint64_t scale) {
        KernelProfile kp;
        kp.opType = "FC";
        kp.opName = "fc";
        kp.fmaFlops = (1 << 16) * scale;
        kp.vecElemOps = (1 << 14) * scale;
        kp.scalarOps = 1024 * scale;
        kp.codeFootprintBytes = 2048;
        kp.codeRegion = "kernel:FC";
        MemStream s;
        s.region = "w";
        s.accesses = 512 * scale;
        s.chunkBytes = 64;
        s.footprintBytes = 512 * 64 * scale;
        kp.streams.push_back(s);
        return kp;
    };
    double prev = 0.0;
    for (uint64_t scale : {1, 2, 4, 8, 16}) {
        CpuModel cpu(broadwellConfig(), 3);
        cpu.simulateKernel(profile_for(scale));
        const double cycles =
            cpu.simulateKernel(profile_for(scale)).cycles;
        EXPECT_GT(cycles, prev);
        prev = cycles;
    }
}

/**
 * parallelFor partition property: for ANY (begin, end, grain, width)
 * the invoked chunks are non-empty, mutually disjoint, and tile
 * [begin, end) exactly. This is the foundation every parallel kernel's
 * determinism rests on (disjoint output slices).
 */
class ParallelForProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(ParallelForProperty, ChunksTileTheRangeExactly)
{
    Rng rng(9000 + static_cast<uint64_t>(GetParam()));
    for (int iter = 0; iter < 25; ++iter) {
        const int64_t begin =
            static_cast<int64_t>(rng.nextBounded(100));
        const int64_t len = static_cast<int64_t>(rng.nextBounded(2000));
        const int64_t end = begin + len;
        const int64_t grain =
            1 + static_cast<int64_t>(rng.nextBounded(300));
        const int width = 1 + static_cast<int>(rng.nextBounded(8));

        IntraOpScope scope(width);
        std::mutex mu;
        std::vector<std::pair<int64_t, int64_t>> chunks;
        parallelFor(begin, end, grain, [&](int64_t lo, int64_t hi) {
            std::lock_guard<std::mutex> lock(mu);
            chunks.emplace_back(lo, hi);
        });

        if (len == 0) {
            EXPECT_TRUE(chunks.empty())
                << "fn invoked on an empty range";
            continue;
        }
        std::sort(chunks.begin(), chunks.end());
        ASSERT_FALSE(chunks.empty());
        EXPECT_EQ(chunks.front().first, begin);
        EXPECT_EQ(chunks.back().second, end);
        for (size_t i = 0; i < chunks.size(); ++i) {
            EXPECT_LT(chunks[i].first, chunks[i].second)
                << "empty chunk " << i;
            if (i > 0) {
                EXPECT_EQ(chunks[i].first, chunks[i - 1].second)
                    << "gap or overlap before chunk " << i
                    << " (begin=" << begin << " end=" << end
                    << " grain=" << grain << " width=" << width << ")";
            }
        }
        // Never more chunks than the width allows or the grain
        // permits (ceil division).
        const int64_t max_parts =
            std::min<int64_t>(width, (len + grain - 1) / grain);
        EXPECT_LE(static_cast<int64_t>(chunks.size()), max_parts);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelForProperty,
                         ::testing::Range(0, 4));

/** Degenerate ranges: empty, single element, grain beyond range. */
TEST(ParallelForEdgeCases, DegenerateRanges)
{
    IntraOpScope scope(8);

    int calls = 0;
    parallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
    parallelFor(7, 3, 1, [&](int64_t, int64_t) { ++calls; });
    EXPECT_EQ(calls, 0) << "empty/inverted ranges must not invoke fn";

    std::vector<std::pair<int64_t, int64_t>> chunks;
    parallelFor(41, 42, 1, [&](int64_t lo, int64_t hi) {
        chunks.emplace_back(lo, hi);
    });
    ASSERT_EQ(chunks.size(), 1u);
    EXPECT_EQ(chunks[0], (std::pair<int64_t, int64_t>{41, 42}));

    // grain > range: one chunk, executed inline on the caller.
    chunks.clear();
    parallelFor(0, 10, 1000, [&](int64_t lo, int64_t hi) {
        chunks.emplace_back(lo, hi);
    });
    ASSERT_EQ(chunks.size(), 1u);
    EXPECT_EQ(chunks[0], (std::pair<int64_t, int64_t>{0, 10}));
}

/**
 * Nested parallelFor must not deadlock: inside a pool worker it
 * degrades to serial inline; on the caller's own chunk it may still
 * fan out (the caller is not a worker), so the inner count is atomic.
 */
TEST(ParallelForEdgeCases, NestedCallsComplete)
{
    IntraOpScope scope(4);
    std::atomic<int64_t> total{0};
    parallelFor(0, 64, 1, [&](int64_t lo, int64_t hi) {
        std::atomic<int64_t> inner{0};
        parallelFor(lo, hi, 1,
                    [&](int64_t l, int64_t h) { inner += h - l; });
        total += inner.load();
    });
    EXPECT_EQ(total.load(), 64);
}

/**
 * Randomized serial-vs-parallel differential per operator: FC,
 * activations, Binary (with and without column broadcast), Sum,
 * SparseLengthsSum and Gather under random shapes must be bitwise
 * identical at width 1 and a random width in [2, 9].
 */
class ParallelOpDifferential : public ::testing::TestWithParam<int>
{
};

TEST_P(ParallelOpDifferential, BitIdenticalToSerial)
{
    Rng rng(31000 + static_cast<uint64_t>(GetParam()));
    const int width = 2 + static_cast<int>(rng.nextBounded(8));

    // Random geometry, deliberately including tiny dims so some
    // kernels get fewer rows than the width.
    const int64_t m = 1 + static_cast<int64_t>(rng.nextBounded(33));
    const int64_t k = 1 + static_cast<int64_t>(rng.nextBounded(48));
    const int64_t n = 1 + static_cast<int64_t>(rng.nextBounded(48));
    const int64_t rows = 8 + static_cast<int64_t>(rng.nextBounded(64));
    const int64_t batch = 1 + static_cast<int64_t>(rng.nextBounded(17));
    const int64_t lookups =
        1 + static_cast<int64_t>(rng.nextBounded(5));

    NetDef net("parallel_diff");
    for (const char* input : {"x", "w", "b", "table", "idx", "len"}) {
        net.addExternalInput(input);
    }
    net.addOp(makeFC("fc", "x", "w", "b", "fc_y"));
    net.addOp(makeSigmoid("act", "fc_y", "act_y"));
    net.addOp(makeMul("mul", "fc_y", "act_y", "mul_y"));
    net.addOp(makeSum("sum", {"fc_y", "act_y", "mul_y"}, "sum_y"));
    net.addOp(makeSparseLengthsSum("sls", "table", "idx", "len",
                                   "sls_y"));
    net.addOp(makeGather("gather", "table", "idx", "gather_y"));
    net.addOp(makeReshape("rs3", "gather_y", "gather3",
                          {batch, lookups, n}));
    net.addOp(makeReduceSum("rsum", "gather3", "rsum_y"));
    for (const char* output : {"sum_y", "sls_y", "gather_y",
                               "rsum_y"}) {
        net.addExternalOutput(output);
    }
    net.validate();

    auto fill = [&](Workspace& ws, uint64_t seed) {
        Rng local(seed);
        auto tensor_of = [&local](std::vector<int64_t> shape) {
            Tensor t(std::move(shape));
            for (int64_t i = 0; i < t.numel(); ++i) {
                t.data<float>()[i] = local.nextFloat(-2.0f, 2.0f);
            }
            return t;
        };
        ws.set("x", tensor_of({m, k}));
        ws.set("w", tensor_of({n, k}));
        ws.set("b", tensor_of({n}));
        ws.set("table", tensor_of({rows, n}));
        Tensor idx({batch * lookups}, DType::kInt64);
        for (int64_t i = 0; i < idx.numel(); ++i) {
            idx.data<int64_t>()[i] = static_cast<int64_t>(
                local.nextBounded(static_cast<uint64_t>(rows)));
        }
        ws.set("idx", std::move(idx));
        Tensor len({batch}, DType::kInt32);
        for (int64_t i = 0; i < len.numel(); ++i) {
            len.data<int32_t>()[i] = static_cast<int32_t>(lookups);
        }
        ws.set("len", std::move(len));
    };

    const uint64_t fill_seed = 555 + static_cast<uint64_t>(GetParam());
    Workspace serial_ws;
    fill(serial_ws, fill_seed);
    ExecOptions serial_opts;
    serial_opts.mode = ExecMode::kNumericOnly;
    serial_opts.numThreads = 1;
    Executor::run(net, serial_ws, serial_opts);

    Workspace parallel_ws;
    fill(parallel_ws, fill_seed);
    ExecOptions parallel_opts;
    parallel_opts.mode = ExecMode::kNumericOnly;
    parallel_opts.numThreads = width;
    Executor::run(net, parallel_ws, parallel_opts);

    for (const char* blob : {"fc_y", "act_y", "mul_y", "sum_y",
                             "sls_y", "gather_y", "rsum_y"}) {
        const Tensor& a = serial_ws.get(blob);
        const Tensor& b = parallel_ws.get(blob);
        ASSERT_EQ(a.shape(), b.shape()) << blob;
        EXPECT_EQ(std::memcmp(a.data<float>(), b.data<float>(),
                              a.byteSize()),
                  0)
            << "blob '" << blob << "' diverges at width " << width;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelOpDifferential,
                         ::testing::Range(0, 100));

/** Retired uops are exactly linear in replicated work. */
TEST(CpuModelProperty, UopsLinearInWork)
{
    CpuModel cpu(broadwellConfig());
    KernelProfile kp;
    kp.fmaFlops = 1 << 16;
    kp.vecElemOps = 1 << 12;
    const uint64_t once = cpu.lowerUops(kp).total();
    kp.fmaFlops *= 3;
    kp.vecElemOps *= 3;
    EXPECT_EQ(cpu.lowerUops(kp).total(), 3 * once);
}

}  // namespace
}  // namespace recstack
