/**
 * @file
 * Differential harness for store-backed execution: routing every
 * embedding-table read of a model through the sharded EmbeddingStore
 * must produce bit-identical external outputs to the dense per-worker
 * table copies, for all eight models, at batch 1 and 256, at intra-op
 * widths 1 and 8, on both the interpreted and the compiled executor.
 * This is the numerics contract of store/embedding_store.h: cached
 * copies are verbatim row payloads and pooling preserves the dense
 * kernels' exact fp32 accumulation order.
 *
 * Runs under `ctest -L sanitize` too, so the same executions are the
 * ASan/TSan coverage of the store's locking and cache surgery.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <tuple>

#include "graph/compiled_net.h"
#include "graph/executor.h"
#include "models/model.h"
#include "models/store_binding.h"

namespace recstack {
namespace {

ModelOptions
testOptions()
{
    ModelOptions opts = tinyOptions();
    opts.tableScale = 0.01;
    return opts;
}

/** Small shards + caches so eviction and both tiers are exercised. */
StoreConfig
testStoreConfig()
{
    StoreConfig cfg;
    cfg.numShards = 4;
    cfg.cacheBytesPerShard = 16u << 10;
    cfg.nearTierFraction = 0.5;
    return cfg;
}

/** Bitwise tensor equality, any dtype. */
void
expectTensorsIdentical(const std::string& blob, const Tensor& a,
                       const Tensor& b)
{
    ASSERT_EQ(a.shape(), b.shape()) << "blob " << blob;
    ASSERT_EQ(a.dtype(), b.dtype()) << "blob " << blob;
    const void* pa = nullptr;
    const void* pb = nullptr;
    switch (a.dtype()) {
      case DType::kFloat32:
        pa = a.data<float>();
        pb = b.data<float>();
        break;
      case DType::kInt32:
        pa = a.data<int32_t>();
        pb = b.data<int32_t>();
        break;
      case DType::kInt64:
        pa = a.data<int64_t>();
        pb = b.data<int64_t>();
        break;
    }
    EXPECT_EQ(std::memcmp(pa, pb, a.byteSize()), 0)
        << "blob '" << blob
        << "' diverges between dense and store-backed execution";
}

class StoreDifferential
    : public ::testing::TestWithParam<std::tuple<ModelId, int64_t>>
{
};

TEST_P(StoreDifferential, StoreBackedOutputsBitIdenticalToDense)
{
    const ModelId id = std::get<0>(GetParam());
    const int64_t batch = std::get<1>(GetParam());

    const Model model = buildModel(id, testOptions());

    // Dense reference: privately initialized tables, interpreted,
    // serial. StoreBackedModel generates parameters with the same RNG
    // stream as initParams, so the weights (and therefore outputs)
    // must match byte for byte.
    Workspace ref_ws;
    model.initParams(ref_ws);
    {
        BatchGenerator gen(model.workload, /*seed=*/1234);
        gen.materialize(ref_ws, batch);
    }
    ExecOptions ref_opts;
    ref_opts.mode = ExecMode::kNumericOnly;
    ref_opts.numThreads = 1;
    Executor::run(model.net, ref_ws, ref_opts);

    const StoreBackedModel store_model(model, testStoreConfig());
    auto compiled = CompiledNet::compile(model.net);

    for (int threads : {1, 8}) {
        ExecOptions opts;
        opts.mode = ExecMode::kNumericOnly;
        opts.numThreads = threads;

        // Interpreted store-backed run.
        {
            Workspace ws;
            store_model.bind(ws);
            BatchGenerator gen(model.workload, /*seed=*/1234);
            gen.materialize(ws, batch);
            Executor::run(model.net, ws, opts);
            for (const std::string& blob :
                 model.net.externalOutputs()) {
                ASSERT_TRUE(ws.has(blob)) << blob;
                expectTensorsIdentical(blob, ref_ws.get(blob),
                                       ws.get(blob));
            }
        }

        // Compiled store-backed run (fused schedule + arena plan).
        {
            Workspace ws;
            Arena arena;
            store_model.bind(ws);
            BatchGenerator gen(model.workload, /*seed=*/1234);
            gen.materialize(ws, batch);
            Executor::run(*compiled, ws, arena, batch, opts);
            for (const std::string& blob :
                 model.net.externalOutputs()) {
                ASSERT_TRUE(ws.has(blob)) << blob;
                expectTensorsIdentical(blob, ref_ws.get(blob),
                                       ws.get(blob));
            }
        }
    }

    // The runs above actually exercised the store path (unless the
    // model has no embedding tables, which none of the eight does).
    EXPECT_GT(store_model.store().stats().total.lookups, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, StoreDifferential,
    ::testing::Combine(::testing::Values(ModelId::kNCF, ModelId::kRM1,
                                         ModelId::kRM2, ModelId::kRM3,
                                         ModelId::kWnD, ModelId::kMTWnD,
                                         ModelId::kDIN, ModelId::kDIEN),
                       ::testing::Values(int64_t{1}, int64_t{256})),
    [](const ::testing::TestParamInfo<std::tuple<ModelId, int64_t>>&
           info) {
        std::string name = modelName(std::get<0>(info.param));
        for (char& c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c))) {
                c = '_';  // "MT-WnD" -> "MT_WnD"
            }
        }
        return name + "_b" + std::to_string(std::get<1>(info.param));
    });

/** Position-weighted pooling (SLWS) through the store, bit-exact. */
TEST(StoreDifferentialVariants, PositionWeightedPooling)
{
    ModelOptions opts = testOptions();
    opts.positionWeighted = true;
    const Model model = buildModel(ModelId::kRM2, opts);

    Workspace ref_ws;
    model.initParams(ref_ws);
    BatchGenerator ref_gen(model.workload, /*seed=*/1234);
    ref_gen.materialize(ref_ws, 64);
    Executor::run(model.net, ref_ws, ExecMode::kNumericOnly);

    const StoreBackedModel store_model(model, testStoreConfig());
    Workspace ws;
    store_model.bind(ws);
    BatchGenerator gen(model.workload, /*seed=*/1234);
    gen.materialize(ws, 64);
    Executor::run(model.net, ws, ExecMode::kNumericOnly);
    for (const std::string& blob : model.net.externalOutputs()) {
        expectTensorsIdentical(blob, ref_ws.get(blob), ws.get(blob));
    }
}

/** A locally materialized table blob overrides the attached store. */
TEST(StoreDifferentialVariants, MaterializedBlobWinsOverStore)
{
    const Model model = buildModel(ModelId::kRM1, testOptions());
    const StoreBackedModel store_model(model, testStoreConfig());

    Workspace ws;
    store_model.bind(ws);
    // Re-materialize every parameter locally: identical values, but
    // now the table blobs are dense in the workspace, so the executor
    // must read them directly and never touch the store.
    model.initParams(ws);
    BatchGenerator gen(model.workload, /*seed=*/1234);
    gen.materialize(ws, 32);
    Executor::run(model.net, ws, ExecMode::kNumericOnly);
    EXPECT_EQ(store_model.store().stats().total.lookups, 0u);
}

}  // namespace
}  // namespace recstack
