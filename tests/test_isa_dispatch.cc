/**
 * @file
 * Property tests for the kernel-ISA dispatch layer
 * (common/cpu_features.h): the RECSTACK_ISA override is honored,
 * unsupported/garbage requests demote to scalar with an explanation
 * instead of crashing, resolution is stable across repeated calls,
 * and the IsaScope/setKernelIsa precedence chain restores correctly.
 *
 * These tests mutate process-global dispatch state (env var, process
 * override); each one restores the default (clearKernelIsa + unset
 * env) so ordering never leaks between tests.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>

#include "common/cpu_features.h"

namespace recstack {
namespace {

/** RAII: leave dispatch state pristine no matter how a test exits. */
class DispatchStateGuard
{
  public:
    DispatchStateGuard()
    {
        unsetenv("RECSTACK_ISA");
        clearKernelIsa();
    }
    ~DispatchStateGuard()
    {
        unsetenv("RECSTACK_ISA");
        clearKernelIsa();
    }
};

TEST(IsaDispatch, NamesRoundTrip)
{
    EXPECT_STREQ(kernelIsaName(KernelIsa::kScalar), "scalar");
    EXPECT_STREQ(kernelIsaName(KernelIsa::kAvx2), "avx2");
}

TEST(IsaDispatch, ScalarAlwaysSupported)
{
    EXPECT_TRUE(kernelIsaSupported(KernelIsa::kScalar));
}

TEST(IsaDispatch, DetectReturnsASupportedTier)
{
    const KernelIsa best = detectKernelIsa();
    EXPECT_TRUE(kernelIsaSupported(best));
}

TEST(IsaDispatch, ResolveEmptyFallsThroughToDetect)
{
    EXPECT_EQ(resolveKernelIsa(nullptr), detectKernelIsa());
    EXPECT_EQ(resolveKernelIsa(""), detectKernelIsa());
}

TEST(IsaDispatch, ResolveScalarAlwaysHonored)
{
    std::string why;
    EXPECT_EQ(resolveKernelIsa("scalar", &why), KernelIsa::kScalar);
    EXPECT_TRUE(why.empty()) << why;
}

TEST(IsaDispatch, ResolveAvx2HonoredOrDemotedWithReason)
{
    std::string why;
    const KernelIsa got = resolveKernelIsa("avx2", &why);
    if (kernelIsaSupported(KernelIsa::kAvx2)) {
        EXPECT_EQ(got, KernelIsa::kAvx2);
        EXPECT_TRUE(why.empty()) << why;
    } else {
        // Unsupported hardware demotes, never crashes, and says why.
        EXPECT_EQ(got, KernelIsa::kScalar);
        EXPECT_FALSE(why.empty());
    }
}

TEST(IsaDispatch, ResolveGarbageFallsBackToScalarWithReason)
{
    for (const char* bad :
         {"bogus", "avx512", "AVX2", "neon", "sse4.2", "  scalar"}) {
        SCOPED_TRACE(bad);
        std::string why;
        EXPECT_EQ(resolveKernelIsa(bad, &why), KernelIsa::kScalar);
        EXPECT_FALSE(why.empty())
            << "an unrecognized spec must explain the demotion";
    }
}

TEST(IsaDispatch, EnvOverrideHonored)
{
    DispatchStateGuard guard;
    ASSERT_EQ(setenv("RECSTACK_ISA", "scalar", 1), 0);
    clearKernelIsa();
    EXPECT_EQ(activeKernelIsa(), KernelIsa::kScalar);

    if (kernelIsaSupported(KernelIsa::kAvx2)) {
        ASSERT_EQ(setenv("RECSTACK_ISA", "avx2", 1), 0);
        clearKernelIsa();
        EXPECT_EQ(activeKernelIsa(), KernelIsa::kAvx2);
    }
}

TEST(IsaDispatch, EnvGarbageDemotesToScalarWithoutCrashing)
{
    DispatchStateGuard guard;
    ASSERT_EQ(setenv("RECSTACK_ISA", "definitely-not-an-isa", 1), 0);
    clearKernelIsa();
    EXPECT_EQ(activeKernelIsa(), KernelIsa::kScalar);
}

TEST(IsaDispatch, ActiveIsStableAcrossRepeatedCalls)
{
    DispatchStateGuard guard;
    const KernelIsa first = activeKernelIsa();
    for (int i = 0; i < 1000; ++i) {
        ASSERT_EQ(activeKernelIsa(), first) << "call " << i;
    }
}

TEST(IsaDispatch, EnvCachedUntilCleared)
{
    DispatchStateGuard guard;
    ASSERT_EQ(setenv("RECSTACK_ISA", "scalar", 1), 0);
    clearKernelIsa();
    ASSERT_EQ(activeKernelIsa(), KernelIsa::kScalar);
    // Mutating the environment mid-process must NOT silently change
    // the dispatch (resolution is cached for stability); only an
    // explicit clearKernelIsa() re-reads it.
    ASSERT_EQ(setenv("RECSTACK_ISA", "avx2", 1), 0);
    EXPECT_EQ(activeKernelIsa(), KernelIsa::kScalar);
    clearKernelIsa();
    EXPECT_EQ(activeKernelIsa(),
              kernelIsaSupported(KernelIsa::kAvx2) ? KernelIsa::kAvx2
                                                   : KernelIsa::kScalar);
}

TEST(IsaDispatch, SetKernelIsaBeatsEnv)
{
    DispatchStateGuard guard;
    if (!kernelIsaSupported(KernelIsa::kAvx2)) {
        GTEST_SKIP() << "avx2 tier unsupported on this host/build";
    }
    ASSERT_EQ(setenv("RECSTACK_ISA", "avx2", 1), 0);
    clearKernelIsa();
    setKernelIsa(KernelIsa::kScalar);
    EXPECT_EQ(activeKernelIsa(), KernelIsa::kScalar);
    clearKernelIsa();
    EXPECT_EQ(activeKernelIsa(), KernelIsa::kAvx2);
}

TEST(IsaDispatch, SetKernelIsaDemotesUnsupportedRequest)
{
    DispatchStateGuard guard;
    if (kernelIsaSupported(KernelIsa::kAvx2)) {
        GTEST_SKIP() << "host supports avx2; demotion not observable";
    }
    setKernelIsa(KernelIsa::kAvx2);
    EXPECT_EQ(activeKernelIsa(), KernelIsa::kScalar);
}

TEST(IsaDispatch, ScopeBeatsProcessOverrideAndRestores)
{
    DispatchStateGuard guard;
    setKernelIsa(KernelIsa::kScalar);
    const KernelIsa outer = activeKernelIsa();
    ASSERT_EQ(outer, KernelIsa::kScalar);
    {
        IsaScope scope(detectKernelIsa());
        EXPECT_EQ(activeKernelIsa(), detectKernelIsa());
        {
            IsaScope inner(KernelIsa::kScalar);
            EXPECT_EQ(activeKernelIsa(), KernelIsa::kScalar);
        }
        // Nested scopes restore the enclosing scope, not the process
        // default.
        EXPECT_EQ(activeKernelIsa(), detectKernelIsa());
    }
    EXPECT_EQ(activeKernelIsa(), outer);
}

TEST(IsaDispatch, ScopeIsThreadLocal)
{
    DispatchStateGuard guard;
    IsaScope scope(KernelIsa::kScalar);
    ASSERT_EQ(activeKernelIsa(), KernelIsa::kScalar);
    // A fresh thread does not inherit this thread's scope: it sees
    // the process-level resolution. This is why Operator::run resolves
    // the tier once and captures it into the parallelFor lambda.
    KernelIsa seen = KernelIsa::kScalar;
    std::thread t([&seen] { seen = activeKernelIsa(); });
    t.join();
    EXPECT_EQ(seen, detectKernelIsa());
}

}  // namespace
}  // namespace recstack
