/**
 * @file
 * Unit tests for the Tensor container.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "tensor/tensor.h"

namespace recstack {
namespace {

TEST(Tensor, DefaultIsEmptyFloat)
{
    Tensor t;
    EXPECT_EQ(t.dtype(), DType::kFloat32);
    EXPECT_EQ(t.numel(), 1);  // rank-0 scalar
    EXPECT_EQ(t.rank(), 0u);
}

TEST(Tensor, ZeroInitialized)
{
    Tensor t({2, 3});
    EXPECT_EQ(t.numel(), 6);
    for (int64_t i = 0; i < 6; ++i) {
        EXPECT_EQ(t.data<float>()[i], 0.0f);
    }
}

TEST(Tensor, FromFloats)
{
    Tensor t = Tensor::fromFloats({2, 2}, {1, 2, 3, 4});
    EXPECT_FLOAT_EQ(t.at({0, 0}), 1.0f);
    EXPECT_FLOAT_EQ(t.at({0, 1}), 2.0f);
    EXPECT_FLOAT_EQ(t.at({1, 0}), 3.0f);
    EXPECT_FLOAT_EQ(t.at({1, 1}), 4.0f);
}

TEST(Tensor, FromInt64AndInt32)
{
    Tensor i64 = Tensor::fromInt64s({3}, {10, 20, 30});
    EXPECT_EQ(i64.dtype(), DType::kInt64);
    EXPECT_EQ(i64.data<int64_t>()[2], 30);

    Tensor i32 = Tensor::fromInt32s({2}, {7, 8});
    EXPECT_EQ(i32.dtype(), DType::kInt32);
    EXPECT_EQ(i32.data<int32_t>()[0], 7);
}

TEST(Tensor, DTypeMismatchPanics)
{
    Tensor t({2});
    EXPECT_DEATH(t.data<int64_t>(), "dtype mismatch");
}

TEST(Tensor, SetAndAt)
{
    Tensor t({2, 2, 2});
    t.set({1, 0, 1}, 42.0f);
    EXPECT_FLOAT_EQ(t.at({1, 0, 1}), 42.0f);
    EXPECT_FLOAT_EQ(t.at({1, 0, 0}), 0.0f);
}

TEST(Tensor, OutOfBoundsPanics)
{
    Tensor t({2, 2});
    EXPECT_DEATH(t.at({2, 0}), "out of bounds");
    EXPECT_DEATH(t.at({0}), "rank mismatch");
}

TEST(Tensor, Reshape)
{
    Tensor t = Tensor::fromFloats({2, 3}, {1, 2, 3, 4, 5, 6});
    t.reshape({3, 2});
    EXPECT_EQ(t.dim(0), 3);
    EXPECT_FLOAT_EQ(t.at({2, 1}), 6.0f);
    EXPECT_DEATH(t.reshape({4, 2}), "element count");
}

TEST(Tensor, NegativeAxis)
{
    Tensor t({4, 5, 6});
    EXPECT_EQ(t.dim(-1), 6);
    EXPECT_EQ(t.dim(-3), 4);
    EXPECT_DEATH(t.dim(3), "out of range");
}

TEST(Tensor, ByteSize)
{
    EXPECT_EQ(Tensor({3, 4}).byteSize(), 48u);
    EXPECT_EQ(Tensor({2}, DType::kInt64).byteSize(), 16u);
    EXPECT_EQ(Tensor({2}, DType::kInt32).byteSize(), 8u);
}

TEST(Tensor, Describe)
{
    EXPECT_EQ(Tensor({4, 8}).describe(), "float32[4, 8]");
    EXPECT_EQ(Tensor({3}, DType::kInt64).describe(), "int64[3]");
}

TEST(Tensor, ShapeOnlyCarriesMetadataOnly)
{
    Tensor t = Tensor::shapeOnly({1000, 1000});
    EXPECT_FALSE(t.materialized());
    EXPECT_EQ(t.numel(), 1000000);
    EXPECT_EQ(t.byteSize(), 4000000u);
    EXPECT_DEATH(t.data<float>(), "shape-only");
}

TEST(Tensor, MaterializedFlagTrueForAllocated)
{
    EXPECT_TRUE(Tensor({2, 2}).materialized());
    EXPECT_TRUE(Tensor::fromFloats({1}, {3.0f}).materialized());
}

TEST(Tensor, DtypeSizeAndName)
{
    EXPECT_EQ(dtypeSize(DType::kFloat32), 4u);
    EXPECT_EQ(dtypeSize(DType::kInt32), 4u);
    EXPECT_EQ(dtypeSize(DType::kInt64), 8u);
    EXPECT_STREQ(dtypeName(DType::kFloat32), "float32");
}

TEST(Tensor, CopyIsDeep)
{
    Tensor a = Tensor::fromFloats({2}, {1, 2});
    Tensor b = a;
    b.data<float>()[0] = 99.0f;
    EXPECT_FLOAT_EQ(a.data<float>()[0], 1.0f);
}

TEST(Tensor, ViewAliasesExternalStorage)
{
    std::vector<std::byte> arena(3 * sizeof(float));
    Tensor v = Tensor::view({3}, DType::kFloat32, arena.data());
    EXPECT_FALSE(v.ownsStorage());
    EXPECT_TRUE(v.materialized());
    v.data<float>()[1] = 7.0f;
    EXPECT_FLOAT_EQ(reinterpret_cast<float*>(arena.data())[1], 7.0f);
    // Copies of a view alias the same arena slot — exactly what the
    // deep-copy semantics of owned tensors forbid.
    Tensor w = v;
    w.data<float>()[1] = 9.0f;
    EXPECT_FLOAT_EQ(v.data<float>()[1], 9.0f);
}

TEST(Tensor, ViewOverNullBufferPanics)
{
    EXPECT_DEATH(Tensor::view({3}, DType::kFloat32, nullptr),
                 "null buffer");
}

}  // namespace
}  // namespace recstack
