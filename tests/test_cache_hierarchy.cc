/**
 * @file
 * Tests of the three-level hierarchy, including the inclusive
 * (Broadwell) vs exclusive (Cascade Lake) L3 policies of Table II.
 */

#include <gtest/gtest.h>

#include "uarch/cache_hierarchy.h"

namespace recstack {
namespace {

CpuConfig
tinyConfig(InclusionPolicy policy)
{
    CpuConfig cfg;
    cfg.l1d = {1024, 2, 4};
    cfg.l2 = {4 * 1024, 4, 12};
    cfg.l3 = {16 * 1024, 8, 40};
    cfg.l3Policy = policy;
    return cfg;
}

TEST(CacheHierarchy, FirstTouchMissesToDram)
{
    CacheHierarchy h(tinyConfig(InclusionPolicy::kInclusive));
    EXPECT_EQ(h.access(0x10000, false), HitLevel::kDram);
}

TEST(CacheHierarchy, SecondTouchHitsL1)
{
    CacheHierarchy h(tinyConfig(InclusionPolicy::kInclusive));
    h.access(0x10000, false);
    EXPECT_EQ(h.access(0x10000, false), HitLevel::kL1);
}

TEST(CacheHierarchy, L1EvictedLineHitsInL2)
{
    CacheHierarchy h(tinyConfig(InclusionPolicy::kInclusive));
    h.access(0, false);
    // Stream 2 KB (> L1 1 KB) to push line 0 out of L1 but not L2.
    for (uint64_t i = 1; i < 32; ++i) {
        h.access(i * 64, false);
    }
    EXPECT_EQ(h.access(0, false), HitLevel::kL2);
}

TEST(CacheHierarchy, L2EvictedLineHitsInL3)
{
    CacheHierarchy h(tinyConfig(InclusionPolicy::kInclusive));
    h.access(0, false);
    // Stream 8 KB (> L2 4 KB, < L3 16 KB).
    for (uint64_t i = 1; i < 128; ++i) {
        h.access(i * 64, false);
    }
    EXPECT_EQ(h.access(0, false), HitLevel::kL3);
}

TEST(CacheHierarchy, InclusiveL3EvictionBackInvalidates)
{
    CacheHierarchy h(tinyConfig(InclusionPolicy::kInclusive));
    h.access(0, false);
    EXPECT_EQ(h.access(0, false), HitLevel::kL1);
    // Stream well past L3 capacity so line 0 leaves L3; inclusion
    // must purge it from L1/L2 as well -> next access goes to DRAM.
    for (uint64_t i = 1; i < 1024; ++i) {
        h.access(i * 64, false);
    }
    EXPECT_EQ(h.access(0, false), HitLevel::kDram);
}

TEST(CacheHierarchy, ExclusiveL3HoldsL2Victims)
{
    CacheHierarchy h(tinyConfig(InclusionPolicy::kExclusive));
    h.access(0, false);
    // Push line 0 out of L2 (stream 8 KB); exclusively, the victim
    // moves into L3.
    for (uint64_t i = 1; i < 128; ++i) {
        h.access(i * 64, false);
    }
    EXPECT_EQ(h.access(0, false), HitLevel::kL3);
    // After the L3 hit the line moved back up; L3 copy is gone, so a
    // quick re-touch hits L1.
    EXPECT_EQ(h.access(0, false), HitLevel::kL1);
}

TEST(CacheHierarchy, ExclusiveEffectiveCapacityExceedsL3Alone)
{
    // Working set just under L2 + L3 size fits the exclusive
    // hierarchy but overflows the inclusive one (where L3 duplicates
    // L2 contents).
    const uint64_t lines = (4 * 1024 + 16 * 1024) / 64 - 32;  // 288

    CacheHierarchy ex(tinyConfig(InclusionPolicy::kExclusive));
    for (int pass = 0; pass < 4; ++pass) {
        for (uint64_t i = 0; i < lines; ++i) {
            ex.access(i * 64, false);
        }
    }
    uint64_t ex_dram = 0;
    for (uint64_t i = 0; i < lines; ++i) {
        ex_dram += ex.access(i * 64, false) == HitLevel::kDram;
    }

    CacheHierarchy in(tinyConfig(InclusionPolicy::kInclusive));
    for (int pass = 0; pass < 4; ++pass) {
        for (uint64_t i = 0; i < lines; ++i) {
            in.access(i * 64, false);
        }
    }
    uint64_t in_dram = 0;
    for (uint64_t i = 0; i < lines; ++i) {
        in_dram += in.access(i * 64, false) == HitLevel::kDram;
    }
    EXPECT_LT(ex_dram, in_dram);
}

TEST(CacheHierarchy, WritesAllocateLikeReads)
{
    CacheHierarchy h(tinyConfig(InclusionPolicy::kInclusive));
    h.access(0x400, true);
    EXPECT_EQ(h.access(0x400, false), HitLevel::kL1);
}

TEST(CacheHierarchy, ResetColdsEverything)
{
    CacheHierarchy h(tinyConfig(InclusionPolicy::kInclusive));
    h.access(0, false);
    h.reset();
    EXPECT_EQ(h.access(0, false), HitLevel::kDram);
}

TEST(CacheHierarchy, TableIIConfigsConstruct)
{
    CacheHierarchy bdw(broadwellConfig());
    CacheHierarchy clx(cascadeLakeConfig());
    EXPECT_EQ(bdw.l3().sizeBytes(), 40ull * 1024 * 1024);
    EXPECT_EQ(clx.l2().sizeBytes(), 1024ull * 1024);
    EXPECT_EQ(bdw.access(0, false), HitLevel::kDram);
    EXPECT_EQ(clx.access(0, false), HitLevel::kDram);
}

}  // namespace
}  // namespace recstack
