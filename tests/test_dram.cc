/**
 * @file
 * Tests of the DRAM bandwidth/latency model and the congestion
 * criterion of Fig. 14.
 */

#include <gtest/gtest.h>

#include "platform/platform.h"
#include "uarch/dram.h"

namespace recstack {
namespace {

TEST(Dram, BytesPerCycle)
{
    // 77 GB/s at 2.6 GHz -> 29.6 bytes per cycle.
    DramModel dram(77.0, 230, 2.6);
    EXPECT_NEAR(dram.bytesPerCycle(), 77.0 / 2.6, 1e-9);
}

TEST(Dram, BytesToCycles)
{
    DramModel dram(100.0, 200, 2.0);  // 50 B/cycle
    EXPECT_NEAR(dram.bytesToCycles(5000), 100.0, 1e-9);
    EXPECT_NEAR(dram.bytesToCycles(0), 0.0, 1e-12);
}

TEST(Dram, DemandComputation)
{
    DramModel dram(77.0, 230, 2.6);
    // 1e9 bytes over 2.6e9 cycles = 1 second -> 1 GB/s.
    EXPECT_NEAR(dram.demandGBs(1000000000ull, 2.6e9), 1.0, 1e-9);
    EXPECT_EQ(dram.demandGBs(100, 0.0), 0.0);
}

TEST(Dram, OccupancyAndCongestionThreshold)
{
    DramModel dram(100.0, 200, 2.0);
    EXPECT_NEAR(dram.occupancy(50.0), 0.5, 1e-12);
    EXPECT_FALSE(dram.congested(69.9));
    EXPECT_TRUE(dram.congested(70.1));
}

TEST(Dram, LatencyAccessor)
{
    DramModel dram(77.0, 230, 2.6);
    EXPECT_EQ(dram.latencyCycles(), 230);
}

TEST(Dram, TableIIBandwidthOrdering)
{
    const DramModel bdw(broadwellConfig().dramGBs,
                        broadwellConfig().dramLatencyCycles, 2.6);
    const DramModel clx(cascadeLakeConfig().dramGBs,
                        cascadeLakeConfig().dramLatencyCycles, 2.8);
    // Cascade Lake: DDR4-2933 over 6 channels beats Broadwell's
    // DDR4-2400 over 4 channels.
    EXPECT_GT(clx.bytesPerCycle(), bdw.bytesPerCycle());
}

TEST(Dram, RejectsBadParameters)
{
    EXPECT_DEATH(DramModel(0.0, 200, 2.0), "bad DRAM");
    EXPECT_DEATH(DramModel(50.0, 200, 0.0), "bad DRAM");
}

}  // namespace
}  // namespace recstack
