/**
 * @file
 * Tests of the multicore co-location scaling model.
 */

#include <gtest/gtest.h>

#include "uarch/multicore.h"

namespace recstack {
namespace {

/**
 * Compute-dominated single-core counters (FC-model-shaped). Byte
 * counts are consistent with the stall windows (an engine cannot
 * move more DRAM traffic than its memory phases allow).
 */
CpuCounters
computeBound()
{
    CpuCounters c;
    c.cycles = 1e6;
    c.retireCycles = 6e5;
    c.beCoreCycles = 2.5e5;
    c.feLatencyCycles = 5e4;
    c.badSpecCycles = 5e4;
    c.beMemL2Cycles = 2e4;
    c.beMemL3Cycles = 2e4;
    c.beMemDramLatCycles = 1e4;
    c.l3Hits = 5000;
    // ~520 misses at MLP 12 over the 1e4-cycle DRAM window.
    c.dramBytes = 64 * 520;
    c.uopsRetired = 2400000;
    return c;
}

/** DRAM-gather-dominated counters (RM2-shaped). */
CpuCounters
memoryBound()
{
    CpuCounters c;
    c.cycles = 1e6;
    c.retireCycles = 1.5e5;
    c.beCoreCycles = 2e4;
    c.feLatencyCycles = 3e4;
    c.badSpecCycles = 5e4;
    c.beMemL2Cycles = 2e4;
    c.beMemL3Cycles = 1.3e5;
    c.beMemDramLatCycles = 6e5;
    c.l3Hits = 40000;
    // 6e5 stall cycles x MLP 12 / 230-cycle latency ~ 31k misses.
    c.dramBytes = 64 * 31000;
    c.uopsRetired = 600000;
    return c;
}

TEST(Multicore, SingleCoreIsIdentity)
{
    const auto points =
        estimateMulticoreScaling(computeBound(), broadwellConfig(), 1);
    ASSERT_EQ(points.size(), 1u);
    EXPECT_NEAR(points[0].perEngineSlowdown, 1.0, 1e-9);
    EXPECT_NEAR(points[0].throughputScaling, 1.0, 1e-9);
}

TEST(Multicore, ThroughputNeverExceedsCoreCount)
{
    for (const auto& counters : {computeBound(), memoryBound()}) {
        const auto points =
            estimateMulticoreScaling(counters, broadwellConfig(), 16);
        for (const auto& p : points) {
            EXPECT_LE(p.throughputScaling,
                      static_cast<double>(p.cores) + 1e-9);
            EXPECT_GE(p.perEngineSlowdown, 1.0 - 1e-9);
        }
    }
}

TEST(Multicore, ThroughputMonotoneInCores)
{
    const auto points =
        estimateMulticoreScaling(computeBound(), broadwellConfig(), 16);
    for (size_t i = 1; i < points.size(); ++i) {
        EXPECT_GE(points[i].throughputScaling,
                  points[i - 1].throughputScaling - 1e-9);
    }
}

TEST(Multicore, ComputeBoundScalesNearLinearly)
{
    const auto points =
        estimateMulticoreScaling(computeBound(), broadwellConfig(), 16);
    EXPECT_GT(points.back().throughputScaling, 12.0);
}

TEST(Multicore, MemoryBoundSaturates)
{
    const auto points =
        estimateMulticoreScaling(memoryBound(), broadwellConfig(), 16);
    // The embedding-shaped engine stops scaling well short of 16x.
    EXPECT_LT(points.back().throughputScaling, 12.0);
    // And worse than the compute-shaped engine at every level > 1.
    const auto fc =
        estimateMulticoreScaling(computeBound(), broadwellConfig(), 16);
    for (size_t i = 1; i < points.size(); ++i) {
        EXPECT_LT(points[i].throughputScaling,
                  fc[i].throughputScaling);
    }
}

TEST(Multicore, DemandFractionGrowsWithCores)
{
    const auto points =
        estimateMulticoreScaling(memoryBound(), broadwellConfig(), 8);
    for (size_t i = 1; i < points.size(); ++i) {
        EXPECT_GE(points[i].dramDemandFraction,
                  points[i - 1].dramDemandFraction - 1e-9);
    }
}

TEST(Multicore, MoreBandwidthHelpsMemoryBound)
{
    CpuConfig more_bw = broadwellConfig();
    more_bw.dramGBs *= 2.0;
    const auto base =
        estimateMulticoreScaling(memoryBound(), broadwellConfig(), 16);
    const auto wide =
        estimateMulticoreScaling(memoryBound(), more_bw, 16);
    EXPECT_GT(wide.back().throughputScaling,
              base.back().throughputScaling);
}

TEST(Multicore, RejectsBadInput)
{
    EXPECT_DEATH(
        estimateMulticoreScaling(computeBound(), broadwellConfig(), 0),
        "at least one core");
    EXPECT_DEATH(
        estimateMulticoreScaling(CpuCounters{}, broadwellConfig(), 2),
        "empty single-core");
}

}  // namespace
}  // namespace recstack
