/**
 * @file
 * Tests of the Characterizer / SweepCache / regression-study layer.
 * Uses tiny model options so runs stay fast; the mechanisms under
 * test are size independent.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/regression_study.h"
#include "core/sweep.h"

namespace recstack {
namespace {

ModelOptions
testOptions()
{
    ModelOptions opts = tinyOptions();
    opts.tableScale = 0.01;
    return opts;
}

TEST(Characterizer, CpuRunProducesFullPayload)
{
    Characterizer c(testOptions());
    const Platform bdw = makeCpuPlatform(broadwellConfig());
    const RunResult r = c.run(ModelId::kRM1, bdw, 16);

    EXPECT_EQ(r.kind, PlatformKind::kCpu);
    EXPECT_EQ(r.batch, 16);
    EXPECT_GT(r.seconds, 0.0);
    EXPECT_GT(r.counters.uopsRetired, 0u);
    EXPECT_NEAR(r.topdown.l1Sum(), 1.0, 1e-9);
    // Breakdown covers the whole run.
    double breakdown_total = r.breakdown.total();
    EXPECT_NEAR(breakdown_total, r.seconds, r.seconds * 1e-9);
    // Data loading is included (paper methodology).
    EXPECT_GT(r.breakdown.fraction("DataLoad"), 0.0);
}

TEST(Characterizer, GpuRunProducesFullPayload)
{
    Characterizer c(testOptions());
    const Platform gtx = makeGpuPlatform(gtx1080TiConfig());
    const RunResult r = c.run(ModelId::kRM1, gtx, 16);

    EXPECT_EQ(r.kind, PlatformKind::kGpu);
    EXPECT_GT(r.gpu.transferSeconds, 0.0);
    EXPECT_GT(r.gpu.kernelSeconds, 0.0);
    EXPECT_NEAR(r.seconds, r.gpu.totalSeconds, 1e-15);
    EXPECT_GT(r.breakdown.fraction("DataTransfer"), 0.0);
}

TEST(Characterizer, DeterministicRuns)
{
    Characterizer c1(testOptions(), 42);
    Characterizer c2(testOptions(), 42);
    const Platform bdw = makeCpuPlatform(broadwellConfig());
    const RunResult a = c1.run(ModelId::kNCF, bdw, 8);
    const RunResult b = c2.run(ModelId::kNCF, bdw, 8);
    EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.counters.uopsRetired, b.counters.uopsRetired);
}

TEST(Characterizer, LatencyGrowsWithBatch)
{
    Characterizer c(testOptions());
    const Platform bdw = makeCpuPlatform(broadwellConfig());
    const double s16 = c.run(ModelId::kRM2, bdw, 16).seconds;
    const double s256 = c.run(ModelId::kRM2, bdw, 256).seconds;
    EXPECT_GT(s256, s16 * 4);
}

TEST(Characterizer, ModelCacheReused)
{
    Characterizer c(testOptions());
    const Model& first = c.model(ModelId::kWnD);
    const Model& second = c.model(ModelId::kWnD);
    EXPECT_EQ(&first, &second);
}

TEST(SweepCache, MemoizesRuns)
{
    SweepCache sweep({makeCpuPlatform(broadwellConfig())},
                     testOptions());
    const RunResult& a = sweep.get(ModelId::kNCF, 0, 4);
    const RunResult& b = sweep.get(ModelId::kNCF, 0, 4);
    EXPECT_EQ(&a, &b);
}

TEST(SweepCache, SpeedupBaselineIsOne)
{
    SweepCache sweep({makeCpuPlatform(broadwellConfig()),
                      makeCpuPlatform(cascadeLakeConfig())},
                     testOptions());
    EXPECT_DOUBLE_EQ(sweep.speedupOverBaseline(ModelId::kNCF, 0, 8),
                     1.0);
    EXPECT_GT(sweep.speedupOverBaseline(ModelId::kNCF, 1, 8), 1.0);
}

TEST(SweepCache, OptimalPlatformPicksFastest)
{
    SweepCache sweep(allPlatforms(), testOptions());
    const size_t best = sweep.optimalPlatform(ModelId::kRM3, 256);
    const double best_seconds =
        sweep.get(ModelId::kRM3, best, 256).seconds;
    for (size_t p = 0; p < sweep.platforms().size(); ++p) {
        EXPECT_LE(best_seconds,
                  sweep.get(ModelId::kRM3, p, 256).seconds + 1e-15);
    }
}

TEST(SweepCache, PaperBatchAxes)
{
    const auto batches = paperBatchSizes();
    EXPECT_EQ(batches.front(), 1);
    EXPECT_EQ(batches.back(), 16384);
    for (size_t i = 1; i < batches.size(); ++i) {
        EXPECT_EQ(batches[i], batches[i - 1] * 4);
    }
    EXPECT_EQ(breakdownBatchSizes().size(), 4u);
}

TEST(RegressionStudy, FeatureExtraction)
{
    ModelFeatures f;
    f.numTables = 8;
    f.lookupsPerTable = 80;
    f.latentDim = 32;
    f.fcParams = 1000;
    f.embParams = 4000;
    f.fcTopParams = 600;
    f.attention = true;
    const auto x = regressionFeatures(f, 64);
    const auto names = regressionFeatureNames();
    ASSERT_EQ(x.size(), names.size());
    EXPECT_DOUBLE_EQ(x[0], 8.0);
    EXPECT_DOUBLE_EQ(x[1], 80.0);
    EXPECT_DOUBLE_EQ(x[5], 1.0);  // attention flag
    EXPECT_DOUBLE_EQ(x[7], 6.0);  // log2(64)
}

TEST(RegressionStudy, FitsAllTargets)
{
    SweepCache sweep({makeCpuPlatform(broadwellConfig())},
                     testOptions());
    const RegressionStudy study =
        runRegressionStudy(sweep, 0, {4, 64});
    EXPECT_EQ(study.observations, 16u);  // 8 models x 2 batches
    ASSERT_EQ(study.fits.size(), study.targetNames.size());
    for (const auto& fit : study.fits) {
        EXPECT_EQ(fit.weights.size(), study.featureNames.size());
        EXPECT_GE(fit.r2, -0.5);
        EXPECT_LE(fit.r2, 1.0 + 1e-9);
    }
}

TEST(RegressionStudy, RejectsGpuPlatform)
{
    SweepCache sweep({makeGpuPlatform(t4Config())}, testOptions());
    EXPECT_DEATH(runRegressionStudy(sweep, 0, {4}), "CPU platform");
}


TEST(Characterizer, SeedStability)
{
    // Different sampling seeds perturb the sampled cache/branch
    // traces; end-to-end latency must stay within a narrow band or
    // the sampling strategy is too coarse.
    const Platform bdw = makeCpuPlatform(broadwellConfig());
    std::vector<double> seconds;
    for (uint64_t seed : {11ull, 222ull, 3333ull}) {
        Characterizer c(testOptions(), seed);
        seconds.push_back(c.run(ModelId::kRM1, bdw, 64).seconds);
    }
    const double lo = *std::min_element(seconds.begin(), seconds.end());
    const double hi = *std::max_element(seconds.begin(), seconds.end());
    EXPECT_LT(hi / lo, 1.10);
}

TEST(Characterizer, TopDownStableAcrossSeeds)
{
    const Platform bdw = makeCpuPlatform(broadwellConfig());
    Characterizer a(testOptions(), 5);
    Characterizer b(testOptions(), 6);
    const TopDownL1 ta = a.run(ModelId::kRM2, bdw, 64).topdown.l1;
    const TopDownL1 tb = b.run(ModelId::kRM2, bdw, 64).topdown.l1;
    EXPECT_NEAR(ta.retiring, tb.retiring, 0.05);
    EXPECT_NEAR(ta.backendBound, tb.backendBound, 0.05);
}

}  // namespace
}  // namespace recstack
