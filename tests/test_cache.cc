/**
 * @file
 * Unit tests for the set-associative LRU cache against analytically
 * known access traces.
 */

#include <gtest/gtest.h>

#include "uarch/cache.h"

namespace recstack {
namespace {

TEST(Cache, Geometry)
{
    Cache c(32 * 1024, 8, 64);
    EXPECT_EQ(c.sets(), 64u);
    EXPECT_EQ(c.ways(), 8);
    EXPECT_EQ(c.lineBytes(), 64);
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(1024, 2, 64);
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1010));  // same line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LruEvictionOrder)
{
    // 2-way, 8 sets of 64B lines -> lines 0, 512, 1024 map to set 0.
    Cache c(1024, 2, 64);
    EXPECT_FALSE(c.access(0));      // fill way 0
    EXPECT_FALSE(c.access(512));    // fill way 1
    EXPECT_TRUE(c.access(0));       // touch 0: 512 becomes LRU
    uint64_t victim = 0;
    EXPECT_FALSE(c.access(1024, &victim));  // evicts 512
    EXPECT_EQ(victim, 512u);
    EXPECT_TRUE(c.access(0));       // 0 still resident
    EXPECT_FALSE(c.access(512));    // 512 was evicted
}

TEST(Cache, AssociativityConflicts)
{
    // Direct-mapped: every same-set line evicts the previous one.
    Cache c(512, 1, 64);  // 8 sets
    EXPECT_FALSE(c.access(0));
    EXPECT_FALSE(c.access(512));   // conflicts with 0
    EXPECT_FALSE(c.access(0));     // 0 was evicted
}

TEST(Cache, FullyAssociativeHoldsWorkingSet)
{
    Cache c(512, 8, 64);  // 1 set, 8 ways
    for (uint64_t i = 0; i < 8; ++i) {
        EXPECT_FALSE(c.access(i * 64));
    }
    for (uint64_t i = 0; i < 8; ++i) {
        EXPECT_TRUE(c.access(i * 64));
    }
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache c(1024, 2, 64);
    c.access(0x40);
    EXPECT_TRUE(c.probe(0x40));
    c.invalidate(0x40);
    EXPECT_FALSE(c.probe(0x40));
    EXPECT_FALSE(c.access(0x40));  // miss again
}

TEST(Cache, ProbeDoesNotDisturbState)
{
    Cache c(1024, 2, 64);
    c.access(0);
    c.access(512);
    // Probing 0 must NOT refresh its LRU position.
    EXPECT_TRUE(c.probe(0));
    uint64_t victim = 0;
    c.access(1024, &victim);
    EXPECT_EQ(victim, 0u);  // 0 was still the LRU victim
    EXPECT_EQ(c.hits(), 0u);  // probes don't count as hits
}

TEST(Cache, InsertWithoutLookup)
{
    Cache c(1024, 2, 64);
    c.insert(0x80);
    EXPECT_TRUE(c.probe(0x80));
    EXPECT_EQ(c.misses(), 0u);  // insert is not a demand access
}

TEST(Cache, InsertEvictsLru)
{
    Cache c(512, 1, 64);
    c.insert(0);
    uint64_t victim = UINT64_MAX;
    c.insert(512, &victim);
    EXPECT_EQ(victim, 0u);
}

TEST(Cache, ResetClearsEverything)
{
    Cache c(1024, 2, 64);
    c.access(0);
    c.access(0);
    c.reset();
    EXPECT_EQ(c.hits(), 0u);
    EXPECT_EQ(c.misses(), 0u);
    EXPECT_FALSE(c.probe(0));
}

TEST(Cache, NonPowerOfTwoSetCount)
{
    // 22 MB / 11 ways / 64 B = 32768 sets (power of two here), use a
    // truly odd config: 3 KB, 3-way -> 16 sets.
    Cache c(3 * 1024, 3, 64);
    EXPECT_EQ(c.sets(), 16u);
    for (uint64_t i = 0; i < 100; ++i) {
        c.access(i * 64);
    }
    EXPECT_EQ(c.hits() + c.misses(), 100u);
}

TEST(Cache, RejectsNonPowerOfTwoLineSize)
{
    EXPECT_DEATH(Cache(1024, 2, 48), "power of two");
}

/** Parameterized sweep: streaming through 2x capacity always misses
 *  on revisit; working set at half capacity always hits. */
struct GeomParam {
    uint64_t size;
    int ways;
};

class CacheGeometry : public ::testing::TestWithParam<GeomParam>
{
};

TEST_P(CacheGeometry, CapacityBehaviour)
{
    const auto [size, ways] = GetParam();
    Cache c(size, ways, 64);

    // Working set = half capacity: second pass all hits.
    const uint64_t half_lines = size / 64 / 2;
    for (uint64_t i = 0; i < half_lines; ++i) {
        c.access(i * 64);
    }
    uint64_t hits_before = c.hits();
    for (uint64_t i = 0; i < half_lines; ++i) {
        c.access(i * 64);
    }
    EXPECT_EQ(c.hits() - hits_before, half_lines);

    // Working set = 2x capacity streamed twice: LRU guarantees the
    // second pass misses everything (cyclic thrash).
    c.reset();
    const uint64_t big_lines = size / 64 * 2;
    for (int pass = 0; pass < 2; ++pass) {
        for (uint64_t i = 0; i < big_lines; ++i) {
            c.access(i * 64);
        }
    }
    EXPECT_EQ(c.hits(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(GeomParam{4096, 1}, GeomParam{4096, 4},
                      GeomParam{32 * 1024, 8}, GeomParam{256 * 1024, 8},
                      GeomParam{1024 * 1024, 16}));

}  // namespace
}  // namespace recstack
