/**
 * @file
 * Cross-module integration tests: full characterization pipeline
 * invariants across models, platforms and batch sizes, using
 * scaled-down but architecture-faithful model instances.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/sweep.h"

namespace recstack {
namespace {

ModelOptions
itOptions()
{
    ModelOptions opts = tinyOptions();
    opts.tableScale = 0.01;
    opts.dinBehaviors = 8;
    opts.dienSteps = 6;
    return opts;
}

class PipelineMatrix
    : public ::testing::TestWithParam<std::tuple<ModelId, int64_t>>
{
  protected:
    static SweepCache& sweep()
    {
        static SweepCache instance(allPlatforms(), itOptions());
        return instance;
    }
};

TEST_P(PipelineMatrix, TopDownConservesSlots)
{
    const auto [model, batch] = GetParam();
    for (size_t p : {size_t{0}, size_t{1}}) {
        const RunResult& r = sweep().get(model, p, batch);
        EXPECT_NEAR(r.topdown.l1Sum(), 1.0, 1e-9)
            << modelName(model) << " platform " << p;
    }
}

TEST_P(PipelineMatrix, BreakdownFractionsSumToOne)
{
    const auto [model, batch] = GetParam();
    for (size_t p = 0; p < sweep().platforms().size(); ++p) {
        const RunResult& r = sweep().get(model, p, batch);
        double sum = 0.0;
        for (const auto& [type, frac] : r.breakdown.fractions()) {
            EXPECT_GE(frac, 0.0);
            sum += frac;
        }
        EXPECT_NEAR(sum, 1.0, 1e-9);
    }
}

TEST_P(PipelineMatrix, CascadeLakeNeverSlower)
{
    const auto [model, batch] = GetParam();
    EXPECT_LT(sweep().get(model, 1, batch).seconds,
              sweep().get(model, 0, batch).seconds);
}

TEST_P(PipelineMatrix, AllLatenciesFiniteAndPositive)
{
    const auto [model, batch] = GetParam();
    for (size_t p = 0; p < sweep().platforms().size(); ++p) {
        const double s = sweep().get(model, p, batch).seconds;
        EXPECT_TRUE(std::isfinite(s));
        EXPECT_GT(s, 0.0);
    }
}

TEST_P(PipelineMatrix, CpuCountersPopulated)
{
    const auto [model, batch] = GetParam();
    const RunResult& r = sweep().get(model, 0, batch);
    EXPECT_GT(r.counters.uopsRetired, 0u);
    EXPECT_GT(r.counters.branches, 0u);
    EXPECT_GT(r.counters.icacheAccesses, 0u);
    EXPECT_GT(r.counters.l1dAccesses, 0u);
    EXPECT_GE(r.counters.branchMispredicts, 0u);
    EXPECT_LE(r.counters.branchMispredicts, r.counters.branches);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PipelineMatrix,
    ::testing::Combine(::testing::ValuesIn(allModels()),
                       ::testing::Values<int64_t>(4, 64)),
    [](const ::testing::TestParamInfo<std::tuple<ModelId, int64_t>>&
           info) {
        std::string name = modelName(std::get<0>(info.param));
        for (auto& c : name) {
            if (c == '-') {
                c = '_';
            }
        }
        return name + "_b" + std::to_string(std::get<1>(info.param));
    });

TEST(Integration, FcModelsAreFcDominatedOnCpu)
{
    SweepCache sweep({makeCpuPlatform(broadwellConfig())}, itOptions());
    for (ModelId id : {ModelId::kRM3, ModelId::kWnD, ModelId::kMTWnD}) {
        EXPECT_EQ(sweep.get(id, 0, 64).breakdown.dominantType(), "FC")
            << modelName(id);
    }
}

TEST(Integration, EmbeddingModelsDominatedBySls)
{
    // Even at 1% table scale the lookup volume dominates RM2.
    SweepCache sweep({makeCpuPlatform(broadwellConfig())},
                     ModelOptions{.tableScale = 0.05});
    EXPECT_EQ(sweep.get(ModelId::kRM2, 0, 64).breakdown.dominantType(),
              "SparseLengthsSum");
}

TEST(Integration, GpuTransferShareHigherForLookupModels)
{
    SweepCache sweep({makeGpuPlatform(gtx1080TiConfig())},
                     ModelOptions{.tableScale = 0.05});
    const double rm2 =
        sweep.get(ModelId::kRM2, 0, 1024).gpu.dataCommFraction();
    const double rm3 =
        sweep.get(ModelId::kRM3, 0, 1024).gpu.dataCommFraction();
    EXPECT_GT(rm2, rm3);
}

TEST(Integration, AvxFractionHighestForFcModels)
{
    SweepCache sweep({makeCpuPlatform(broadwellConfig())}, itOptions());
    const double rm3 =
        sweep.get(ModelId::kRM3, 0, 64).topdown.avxFraction;
    const double din =
        sweep.get(ModelId::kDIN, 0, 64).topdown.avxFraction;
    EXPECT_GT(rm3, din);
}

TEST(Integration, FrameworksAgreeOnBottleneck)
{
    const Platform bdw = makeCpuPlatform(broadwellConfig());
    Characterizer caffe2(ModelOptions{.tableScale = 0.05}, 42,
                         FrameworkId::kCaffe2);
    Characterizer tf(ModelOptions{.tableScale = 0.05}, 42,
                     FrameworkId::kTensorFlow);
    const auto c2 = caffe2.run(ModelId::kRM2, bdw, 64);
    const auto t2 = tf.run(ModelId::kRM2, bdw, 64);
    const double c2_emb = c2.breakdown.fraction("SparseLengthsSum");
    const double tf_emb = t2.breakdown.fraction("ResourceGather") +
                          t2.breakdown.fraction("Sum");
    EXPECT_GT(c2_emb, 0.3);
    EXPECT_GT(tf_emb, 0.3);
}

}  // namespace
}  // namespace recstack
