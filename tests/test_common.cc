/**
 * @file
 * Unit tests for common utilities: RNG, Zipf sampler, statistics.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"

namespace recstack {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        same += a.next() == b.next();
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (uint64_t bound : {1ull, 2ull, 17ull, 1000ull, 1ull << 40}) {
        for (int i = 0; i < 200; ++i) {
            EXPECT_LT(rng.nextBounded(bound), bound);
        }
    }
}

TEST(Rng, BoundedRoughlyUniform)
{
    Rng rng(99);
    constexpr int kBuckets = 8;
    int counts[kBuckets] = {};
    constexpr int kDraws = 80000;
    for (int i = 0; i < kDraws; ++i) {
        ++counts[rng.nextBounded(kBuckets)];
    }
    for (int c : counts) {
        EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
    }
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(5);
    double min = 1.0, max = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.nextDouble();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        min = std::min(min, v);
        max = std::max(max, v);
    }
    EXPECT_LT(min, 0.01);
    EXPECT_GT(max, 0.99);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(11);
    RunningStat stat;
    for (int i = 0; i < 50000; ++i) {
        stat.add(rng.nextGaussian());
    }
    EXPECT_NEAR(stat.mean(), 0.0, 0.03);
    EXPECT_NEAR(stat.stddev(), 1.0, 0.03);
}

TEST(Rng, BernoulliBias)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i) {
        hits += rng.nextBool(0.3);
    }
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Zipf, UniformWhenExponentZero)
{
    Rng rng(3);
    ZipfSampler zipf(1000, 0.0);
    RunningStat stat;
    for (int i = 0; i < 20000; ++i) {
        stat.add(static_cast<double>(zipf.sample(rng)));
    }
    EXPECT_NEAR(stat.mean(), 499.5, 25.0);
}

TEST(Zipf, SamplesInRange)
{
    Rng rng(4);
    for (double s : {0.5, 0.9, 1.0, 1.3}) {
        ZipfSampler zipf(5000, s);
        for (int i = 0; i < 2000; ++i) {
            EXPECT_LT(zipf.sample(rng), 5000u);
        }
    }
}

TEST(Zipf, HigherExponentConcentratesHead)
{
    Rng rng(6);
    auto head_mass = [&rng](double exponent) {
        ZipfSampler zipf(100000, exponent);
        int head = 0;
        for (int i = 0; i < 20000; ++i) {
            head += zipf.sample(rng) < 1000;
        }
        return head;
    };
    const int mild = head_mass(0.5);
    const int strong = head_mass(1.2);
    EXPECT_GT(strong, mild * 2);
}

TEST(Zipf, SingleElementPopulation)
{
    Rng rng(8);
    ZipfSampler zipf(1, 1.0);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(zipf.sample(rng), 0u);
    }
}

TEST(RunningStat, BasicMoments)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
        s.add(v);
    }
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(Geomean, KnownValues)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_EQ(geomean({}), 0.0);
}

TEST(Percentile, InterpolatesSortedSample)
{
    const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0, 5.0};
    EXPECT_DOUBLE_EQ(percentileOfSorted(sorted, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentileOfSorted(sorted, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(percentileOfSorted(sorted, 1.0), 5.0);
    EXPECT_DOUBLE_EQ(percentileOfSorted(sorted, 0.25), 2.0);
    // Linear interpolation between ranks.
    EXPECT_DOUBLE_EQ(percentileOfSorted(sorted, 0.1), 1.4);
}

TEST(Percentile, EdgeCases)
{
    EXPECT_EQ(percentileOfSorted({}, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(percentileOfSorted({7.0}, 0.99), 7.0);
    EXPECT_DEATH(percentileOfSorted({1.0}, 1.5), "quantile");
}

TEST(Histogram, BucketsAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(9.5);
    h.add(-5.0);   // clamps to first bucket
    h.add(100.0);  // clamps to last bucket
    EXPECT_DOUBLE_EQ(h.count(0), 2.0);
    EXPECT_DOUBLE_EQ(h.count(9), 2.0);
    EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(Histogram, FractionAtLeast)
{
    Histogram h(0.0, 8.0, 8);
    for (int i = 0; i < 8; ++i) {
        h.add(i + 0.5);
    }
    EXPECT_NEAR(h.fractionAtLeast(4.0), 0.5, 1e-12);
    EXPECT_NEAR(h.fractionAtLeast(0.0), 1.0, 1e-12);
    EXPECT_NEAR(h.fractionAtLeast(7.5), 0.125, 1e-12);
}

TEST(Histogram, WeightedAdds)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.25, 3.0);
    h.add(0.75, 1.0);
    EXPECT_DOUBLE_EQ(h.count(0), 3.0);
    EXPECT_DOUBLE_EQ(h.count(1), 1.0);
    EXPECT_NEAR(h.fractionAtLeast(0.5), 0.25, 1e-12);
}

/** Zipf skew parameter sweep: all draws valid, mean decreases. */
class ZipfSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(ZipfSweep, MeanDecreasesWithSkew)
{
    Rng rng(42);
    ZipfSampler uniform(10000, 0.0);
    ZipfSampler skewed(10000, GetParam());
    RunningStat u, s;
    for (int i = 0; i < 20000; ++i) {
        u.add(static_cast<double>(uniform.sample(rng)));
        s.add(static_cast<double>(skewed.sample(rng)));
    }
    EXPECT_LT(s.mean(), u.mean());
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfSweep,
                         ::testing::Values(0.4, 0.7, 0.9, 1.1, 1.4));

}  // namespace
}  // namespace recstack
