/**
 * @file
 * Tests of the custom-model config parser and builder.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/characterizer.h"
#include "graph/executor.h"
#include "models/custom.h"

namespace recstack {
namespace {

constexpr const char* kGoodConfig = R"(
# a heterogeneous two-table ranker
name MyRanker
dense 13
bottom 64 32
table rows=1000 dim=16 lookups=8
table rows=500 dim=32 lookups=4 zipf=0.9 weighted
top 48 1
)";

CustomModelConfig
parse(const std::string& text)
{
    std::istringstream in(text);
    CustomModelConfig config;
    std::string error;
    EXPECT_TRUE(parseCustomModelConfig(in, &config, &error)) << error;
    return config;
}

TEST(CustomConfig, ParsesFullExample)
{
    const CustomModelConfig c = parse(kGoodConfig);
    EXPECT_EQ(c.name, "MyRanker");
    EXPECT_EQ(c.denseDim, 13);
    EXPECT_EQ(c.bottom, (std::vector<int64_t>{64, 32}));
    EXPECT_EQ(c.top, (std::vector<int64_t>{48, 1}));
    ASSERT_EQ(c.tables.size(), 2u);
    EXPECT_EQ(c.tables[0].rows, 1000);
    EXPECT_EQ(c.tables[0].dim, 16);
    EXPECT_EQ(c.tables[0].lookups, 8);
    EXPECT_FALSE(c.tables[0].weighted);
    EXPECT_DOUBLE_EQ(c.tables[1].zipf, 0.9);
    EXPECT_TRUE(c.tables[1].weighted);
}

TEST(CustomConfig, RejectsMissingSections)
{
    const char* broken[] = {
        "dense 13\nbottom 8\ntable rows=10 dim=4 lookups=1\n",  // no top
        "bottom 8\ntable rows=10 dim=4 lookups=1\ntop 1\n",     // no dense
        "dense 13\ntable rows=10 dim=4 lookups=1\ntop 1\n",     // no bottom
        "dense 13\nbottom 8\ntop 1\n",                          // no table
    };
    for (const char* text : broken) {
        std::istringstream in(text);
        CustomModelConfig config;
        std::string error;
        EXPECT_FALSE(parseCustomModelConfig(in, &config, &error))
            << text;
        EXPECT_FALSE(error.empty());
    }
}

TEST(CustomConfig, RejectsBadSyntax)
{
    for (const char* text :
         {"frobnicate 3\n", "dense -1\n", "bottom 0\n",
          "table rows=10 dim=4 lookups=1 sparkle=yes\n",
          "table rows=0 dim=4 lookups=1\n"}) {
        std::istringstream in(text);
        CustomModelConfig config;
        std::string error;
        EXPECT_FALSE(parseCustomModelConfig(in, &config, &error))
            << text;
        EXPECT_NE(error.find("line"), std::string::npos) << error;
    }
}

TEST(CustomConfig, CommentsAndBlankLinesIgnored)
{
    const CustomModelConfig c = parse(
        "\n# header\nname X # trailing\n  \ndense 4\nbottom 8\n"
        "table rows=16 dim=4 lookups=2\ntop 1\n");
    EXPECT_EQ(c.name, "X");
    EXPECT_EQ(c.denseDim, 4);
}

TEST(CustomModel, BuildsAndRunsNumerics)
{
    Model model = buildCustomModel(parse(kGoodConfig));
    EXPECT_EQ(model.id, ModelId::kCustom);
    EXPECT_EQ(model.name, "MyRanker");
    EXPECT_EQ(model.features.numTables, 2);

    Workspace ws;
    model.initParams(ws, 7);
    BatchGenerator gen(model.workload, 42);
    gen.materialize(ws, 4);
    Executor::run(model.net, ws, ExecMode::kFull);
    const Tensor& out = ws.get(model.outputBlob);
    EXPECT_EQ(out.dim(0), 4);
    for (int64_t i = 0; i < out.numel(); ++i) {
        const float v = out.data<float>()[i];
        ASSERT_TRUE(std::isfinite(v));
        ASSERT_GT(v, 0.0f);
        ASSERT_LT(v, 1.0f);
    }
}

TEST(CustomModel, HeterogeneousTablesRespected)
{
    Model model = buildCustomModel(parse(kGoodConfig));
    // One plain SLS + one weighted SLS.
    int sls = 0, slws = 0;
    for (const auto& op : model.net.ops()) {
        sls += op->type() == "SparseLengthsSum";
        slws += op->type() == "SparseLengthsWeightedSum";
    }
    EXPECT_EQ(sls, 1);
    EXPECT_EQ(slws, 1);
    // Interaction width: bottom 32 + 16 + 32 = 80 feeds the top FC.
    bool found_top_fc = false;
    Workspace ws;
    ws.setShapeOnly(true);
    model.declareParams(ws);
    BatchGenerator gen(model.workload);
    gen.declare(ws, 2);
    Executor::run(model.net, ws, ExecMode::kProfileOnly);
    for (const auto& op : model.net.ops()) {
        if (op->type() == "FC" &&
            ws.get(op->inputs()[0]).dim(1) == 80) {
            found_top_fc = true;
        }
    }
    EXPECT_TRUE(found_top_fc);
}

TEST(CustomModel, CharacterizesLikeStockModels)
{
    Model model = buildCustomModel(parse(kGoodConfig));
    Workspace ws;
    ws.setShapeOnly(true);
    model.declareParams(ws);
    BatchGenerator gen(model.workload);
    gen.declare(ws, 32);
    const NetExecResult exec =
        Executor::run(model.net, ws, ExecMode::kProfileOnly);

    std::vector<KernelProfile> profiles;
    profiles.push_back(gen.dataLoadProfile(32));
    for (const auto& rec : exec.records) {
        profiles.push_back(rec.profile);
    }
    const RunResult r = simulateProfiles(
        profiles, makeCpuPlatform(broadwellConfig()), ModelId::kCustom,
        32, gen.inputBytes(32), 5);
    EXPECT_GT(r.seconds, 0.0);
    EXPECT_NEAR(r.topdown.l1Sum(), 1.0, 1e-9);
}

TEST(CustomModel, FileLoadErrors)
{
    CustomModelConfig config;
    std::string error;
    EXPECT_FALSE(
        loadCustomModelConfig("/no/such/file.cfg", &config, &error));
    EXPECT_NE(error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace recstack
