/**
 * @file
 * Tests of the analytical PIM platform (src/pim/): the row-partition
 * shard map, the zero-byte/transfer cost invariants, rank/tasklet
 * monotonicity up to the transfer bound, the env-knob config surface,
 * the scheduler's PIM threshold, and the serving engine's PIM lane —
 * including the regression that a disabled lane leaves the engine
 * bit-identical to the pre-PIM behaviour.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>

#include "core/characterizer.h"
#include "pim/pim_model.h"
#include "sched/query_scheduler.h"
#include "serve/serving_engine.h"
#include "serve/serving_node.h"
#include "store/embedding_store.h"

namespace recstack {
namespace {

/** A synthetic SLS profile with the three stream flows the model
 *  maps: sequential index upload, random table gather, pooled-output
 *  download. */
KernelProfile
slsProfile(uint64_t lookups = 4096, uint64_t rowBytes = 256,
           int64_t rows = 100000, uint64_t outBytes = 64 * 256)
{
    KernelProfile kp;
    kp.opType = "SparseLengthsSum";
    kp.opName = "sls_test";
    MemStream idx;
    idx.region = "idx";
    idx.pattern = AccessPattern::kSequential;
    idx.accesses = lookups;
    idx.chunkBytes = 8;
    idx.footprintBytes = lookups * 8;
    kp.streams.push_back(idx);
    MemStream table;
    table.region = "emb:test";
    table.pattern = AccessPattern::kRandom;
    table.accesses = lookups;
    table.chunkBytes = rowBytes;
    table.footprintBytes = static_cast<uint64_t>(rows) * rowBytes;
    kp.streams.push_back(table);
    MemStream out;
    out.region = "out";
    out.pattern = AccessPattern::kSequential;
    out.accesses = outBytes / 64;
    out.chunkBytes = 64;
    out.footprintBytes = outBytes;
    out.isWrite = true;
    kp.streams.push_back(out);
    return kp;
}

TEST(PimPartition, CoversAllRowsExactlyOnce)
{
    for (int table : {0, 1, 3, 7}) {
        for (int64_t rows : {int64_t{1}, int64_t{7}, int64_t{8},
                             int64_t{1000}, int64_t{1000001}}) {
            for (int ranks : {1, 2, 8, 13}) {
                const PimPartition p =
                    pimPartitionRows(table, rows, ranks);
                ASSERT_EQ(p.rowsPerRank.size(),
                          static_cast<size_t>(ranks));
                // Every row lands on exactly one rank: the counts sum
                // to the row count.
                EXPECT_EQ(std::accumulate(p.rowsPerRank.begin(),
                                          p.rowsPerRank.end(),
                                          int64_t{0}),
                          rows)
                    << "table=" << table << " rows=" << rows
                    << " ranks=" << ranks;
                EXPECT_GE(p.imbalance(), 1.0);
            }
        }
    }
}

TEST(PimPartition, MatchesStoreShardMapBruteForce)
{
    // The closed form must agree with counting the store's shard map
    // row by row — same map, same co-stored-table decorrelation.
    for (int table : {0, 2, 5}) {
        const int64_t rows = 997;  // prime: exercises the remainder
        const int ranks = 8;
        std::vector<int64_t> brute(ranks, 0);
        for (int64_t r = 0; r < rows; ++r) {
            ++brute[EmbeddingStore::rowShard(table, r, ranks)];
        }
        const PimPartition p = pimPartitionRows(table, rows, ranks);
        for (int r = 0; r < ranks; ++r) {
            EXPECT_EQ(p.rowsPerRank[static_cast<size_t>(r)], brute[r])
                << "table=" << table << " rank=" << r;
        }
    }
}

TEST(PimPartition, DegenerateInputsAreBalanced)
{
    EXPECT_EQ(pimPartitionRows(0, 0, 8).imbalance(), 1.0);
    const PimPartition one = pimPartitionRows(0, 5, 1);
    ASSERT_EQ(one.rowsPerRank.size(), 1u);
    EXPECT_EQ(one.rowsPerRank[0], 5);
    EXPECT_DOUBLE_EQ(one.imbalance(), 1.0);
}

TEST(PimModelTest, OffloadableSelectsPoolingFamily)
{
    KernelProfile kp;
    for (const char* type : {"SparseLengthsSum",
                             "SparseLengthsWeightedSum",
                             "SparseLengthsMean"}) {
        kp.opType = type;
        EXPECT_TRUE(PimModel::offloadable(kp)) << type;
    }
    for (const char* type : {"Gather", "FC", "Relu", "Concat",
                             "BatchMatMul", "DataLoad"}) {
        kp.opType = type;
        EXPECT_FALSE(PimModel::offloadable(kp)) << type;
    }
}

TEST(PimModelTest, ZeroByteTransferCostsNothing)
{
    const PimConfig cfg = upmemPimConfig();
    PimModel model(cfg);

    // A profile with table traffic but no upload/download streams
    // pays no transfer latency at all — not even the fixed term.
    KernelProfile kp = slsProfile();
    kp.streams.erase(kp.streams.begin());  // drop the index upload
    kp.streams.pop_back();                 // drop the output download
    const PimOpTime t = model.opTime(kp);
    EXPECT_EQ(t.uploadBytes, 0u);
    EXPECT_EQ(t.downloadBytes, 0u);
    EXPECT_DOUBLE_EQ(t.uploadSeconds, 0.0);
    EXPECT_DOUBLE_EQ(t.downloadSeconds, 0.0);
    EXPECT_DOUBLE_EQ(t.seconds, t.dispatchSeconds + t.dpuSeconds);

    // With bytes present each transfer pays at least the launch
    // latency on top of the bandwidth term.
    PimModel fresh(cfg);
    const PimOpTime full = fresh.opTime(slsProfile());
    EXPECT_GT(full.uploadSeconds, cfg.xferLatencySec * 0.999);
    EXPECT_GT(full.downloadSeconds, cfg.xferLatencySec * 0.999);
    EXPECT_DOUBLE_EQ(full.seconds,
                     full.dispatchSeconds + full.uploadSeconds +
                         full.dpuSeconds + full.downloadSeconds);
}

TEST(PimModelTest, ThroughputMonotoneInRanksUntilTransferBound)
{
    const KernelProfile kp = slsProfile(1 << 16);
    PimConfig cfg = upmemPimConfig();
    double prev = -1.0;
    double last = 0.0;
    for (int ranks : {1, 2, 4, 8, 16, 64, 256, 4096}) {
        cfg.ranks = ranks;
        PimModel model(cfg);
        last = model.opTime(kp).seconds;
        if (prev >= 0.0) {
            EXPECT_LE(last, prev * (1.0 + 1e-12)) << ranks;
        }
        prev = last;
    }
    // As ranks grow, the DPU term vanishes and the total converges to
    // the transfer-only floor (which no configuration beats).
    PimModel huge(cfg);
    const double floor_s = huge.transferBoundSeconds(kp);
    EXPECT_GT(last, floor_s * 0.999);
    EXPECT_LT(last, floor_s * 1.01);
    cfg.ranks = 1;
    EXPECT_GE(PimModel(cfg).opTime(kp).seconds, floor_s);
}

TEST(PimModelTest, ThroughputMonotoneInTaskletsSaturatingAtFill)
{
    const KernelProfile kp = slsProfile();
    PimConfig cfg = upmemPimConfig();
    double prev = -1.0;
    for (int t : {1, 2, 4, 8, 11, 16, 24}) {
        cfg.taskletsPerDpu = t;
        PimModel model(cfg);
        const double s = model.opTime(kp).seconds;
        if (prev >= 0.0) {
            EXPECT_LE(s, prev * (1.0 + 1e-12)) << t;
        }
        prev = s;
    }
    // Past the pipeline-fill point extra tasklets add no bandwidth.
    cfg.taskletsPerDpu = cfg.pipelineFillTasklets;
    const double at_fill = PimModel(cfg).opTime(kp).seconds;
    cfg.taskletsPerDpu = cfg.pipelineFillTasklets * 2;
    EXPECT_DOUBLE_EQ(PimModel(cfg).opTime(kp).seconds, at_fill);
}

TEST(PimModelTest, WramWorkingSetCapsActiveTasklets)
{
    // Rows as wide as the whole WRAM leave room for one tasklet's
    // buffer: the configured tasklet count stops mattering.
    PimConfig cfg = upmemPimConfig();
    const KernelProfile wide =
        slsProfile(1024, cfg.wramBytesPerDpu, 10000);
    cfg.taskletsPerDpu = 16;
    const double t16 = PimModel(cfg).opTime(wide).dpuSeconds;
    cfg.taskletsPerDpu = 1;
    const double t1 = PimModel(cfg).opTime(wide).dpuSeconds;
    EXPECT_DOUBLE_EQ(t16, t1);

    // Narrow rows are not WRAM-bound: more tasklets do help.
    const KernelProfile narrow = slsProfile(1024, 256, 10000);
    cfg.taskletsPerDpu = 1;
    const double n1 = PimModel(cfg).opTime(narrow).dpuSeconds;
    cfg.taskletsPerDpu = 11;
    const double n11 = PimModel(cfg).opTime(narrow).dpuSeconds;
    EXPECT_LT(n11, n1);
}

TEST(PimModelTest, SimulateOffloadSkipsHostKernels)
{
    PimModel model(upmemPimConfig());
    KernelProfile fc;
    fc.opType = "FC";
    const PimRunResult r =
        model.simulateOffload({slsProfile(), fc, slsProfile()});
    EXPECT_EQ(r.offloadedOps, 2u);
    EXPECT_EQ(r.opTimes.size(), 2u);
    EXPECT_GT(r.offloadSeconds, 0.0);
    EXPECT_GT(r.lookups, 0u);
    EXPECT_GT(r.transferFraction(), 0.0);
    EXPECT_LE(r.transferFraction(), 1.0);
}

TEST(PimConfigTest, EnvKnobsOverrideDefaults)
{
    ASSERT_EQ(setenv("RECSTACK_PIM_RANKS", "32", 1), 0);
    ASSERT_EQ(setenv("RECSTACK_PIM_TASKLETS", "4", 1), 0);
    ASSERT_EQ(setenv("RECSTACK_PIM_RANK_GBS", "50.5", 1), 0);
    ASSERT_EQ(setenv("RECSTACK_PIM_XFER_GBS", "12", 1), 0);
    ASSERT_EQ(setenv("RECSTACK_PIM_XFER_LAT_US", "5", 1), 0);
    ASSERT_EQ(setenv("RECSTACK_PIM_DPUS_PER_RANK", "128", 1), 0);
    const PimConfig p = upmemPimConfig();
    EXPECT_EQ(p.ranks, 32);
    EXPECT_EQ(p.taskletsPerDpu, 4);
    EXPECT_EQ(p.dpusPerRank, 128);
    EXPECT_DOUBLE_EQ(p.rankInternalGBs, 50.5);
    EXPECT_DOUBLE_EQ(p.xferGBs, 12.0);
    EXPECT_NEAR(p.xferLatencySec, 5e-6, 1e-12);
    EXPECT_NE(p.name.find("32 ranks"), std::string::npos);

    // Invalid and non-positive values fall back to the defaults.
    ASSERT_EQ(setenv("RECSTACK_PIM_RANKS", "banana", 1), 0);
    ASSERT_EQ(setenv("RECSTACK_PIM_XFER_GBS", "-3", 1), 0);
    ASSERT_EQ(setenv("RECSTACK_PIM_TASKLETS", "0", 1), 0);
    const PimConfig fallback = upmemPimConfig();
    const PimConfig defaults;
    EXPECT_EQ(fallback.ranks, defaults.ranks);
    EXPECT_DOUBLE_EQ(fallback.xferGBs, defaults.xferGBs);
    EXPECT_EQ(fallback.taskletsPerDpu, defaults.taskletsPerDpu);

    for (const char* knob :
         {"RECSTACK_PIM_RANKS", "RECSTACK_PIM_TASKLETS",
          "RECSTACK_PIM_RANK_GBS", "RECSTACK_PIM_XFER_GBS",
          "RECSTACK_PIM_XFER_LAT_US", "RECSTACK_PIM_DPUS_PER_RANK"}) {
        ASSERT_EQ(unsetenv(knob), 0);
    }
}

TEST(PimPlatformTest, FifthPlatformIsPim)
{
    const std::vector<Platform> with = allPlatformsWithPim();
    ASSERT_EQ(with.size(), allPlatforms().size() + 1);
    EXPECT_EQ(with.back().kind, PlatformKind::kPim);
    EXPECT_EQ(with.back().name(), with.back().pim.name);
    // The baseline list is untouched: goldens and existing sweeps
    // keep their platform indices.
    for (size_t i = 0; i + 1 < with.size(); ++i) {
        EXPECT_EQ(with[i].name(), allPlatforms()[i].name());
    }
}

TEST(PimCharacterizerTest, SlsHeavyModelGainsAtLargeBatch)
{
    Characterizer c;
    uint64_t bytes = 0;
    size_t blobs = 0;
    const std::vector<KernelProfile> profiles =
        c.profiles(ModelId::kRM1, 1024, &bytes, &blobs);
    const RunResult cpu =
        simulateProfiles(profiles, makeCpuPlatform(broadwellConfig()),
                         ModelId::kRM1, 1024, bytes, blobs);
    const RunResult pim =
        simulateProfiles(profiles, makePimPlatform(upmemPimConfig()),
                         ModelId::kRM1, 1024, bytes, blobs);
    EXPECT_GT(pim.pim.offloadedOps, 0u);
    EXPECT_GT(pim.pim.offloadSeconds, 0.0);
    // Total = host share + offload share.
    EXPECT_GT(pim.seconds, pim.pim.offloadSeconds);
    // RM1 is SLS-dominated: the offload wins end to end at batch 1024.
    EXPECT_GT(cpu.seconds / pim.seconds, 1.5);
}

class PimServingTest : public ::testing::Test
{
  protected:
    PimServingTest()
        : sweep_(allPlatformsWithPim(),
                 []() {
                     ModelOptions opts = tinyOptions();
                     opts.tableScale = 0.01;
                     return opts;
                 }()),
          sched_(&sweep_, {1, 16, 256, 4096})
    {
    }

    EngineResult run(EngineConfig cfg)
    {
        ServingEngine engine(&sched_, ModelId::kRM1, 0);
        return engine.run(cfg);
    }

    static EngineConfig baseConfig()
    {
        EngineConfig cfg;
        cfg.numWorkers = 2;
        cfg.arrivalQps = 8000;
        cfg.simSeconds = 0.25;
        return cfg;
    }

    SweepCache sweep_;
    QueryScheduler sched_;
};

TEST_F(PimServingTest, SchedulerThresholdDefaultsToRouteNothing)
{
    EXPECT_EQ(sched_.pimThreshold(ModelId::kRM1),
              QueryScheduler::kNoPimThreshold);
    EXPECT_FALSE(sched_.routesToPim(ModelId::kRM1, 1 << 20));
    sched_.setPimThreshold(ModelId::kRM1, 64);
    EXPECT_EQ(sched_.pimThreshold(ModelId::kRM1), 64);
    EXPECT_FALSE(sched_.routesToPim(ModelId::kRM1, 63));
    EXPECT_TRUE(sched_.routesToPim(ModelId::kRM1, 64));
    // Per-model: other models keep the route-nothing default.
    EXPECT_EQ(sched_.pimThreshold(ModelId::kWnD),
              QueryScheduler::kNoPimThreshold);
}

TEST_F(PimServingTest, DisabledLaneIsBitIdenticalToLegacyEngine)
{
    // The regression the docs promise: with the PIM lane off (the
    // default) — and even with it on but no threshold set — the
    // engine's virtual-time results are identical to the pre-PIM
    // path. Only the capacity-normalized aggregate fields
    // (utilization / offeredLoad) may differ when the lane exists,
    // because the aggregate divides by numWorkers + 1 servers.
    const EngineResult off = run(baseConfig());
    EngineConfig on_cfg = baseConfig();
    on_cfg.pimLaneEnabled = true;
    const EngineResult on = run(on_cfg);

    EXPECT_FALSE(off.pimEnabled);
    EXPECT_TRUE(on.pimEnabled);
    EXPECT_EQ(on.pimThreshold, QueryScheduler::kNoPimThreshold);
    EXPECT_EQ(on.pimDeferredTickets, 0u);
    EXPECT_EQ(on.pimLaneStats.samplesServed, 0u);
    ASSERT_EQ(off.perWorker.size(), on.perWorker.size());
    for (size_t w = 0; w < off.perWorker.size(); ++w) {
        EXPECT_EQ(off.perWorker[w].samplesServed,
                  on.perWorker[w].samplesServed);
        EXPECT_EQ(off.perWorker[w].batchesServed,
                  on.perWorker[w].batchesServed);
        EXPECT_DOUBLE_EQ(off.perWorker[w].meanLatency,
                         on.perWorker[w].meanLatency);
        EXPECT_DOUBLE_EQ(off.perWorker[w].p99Latency,
                         on.perWorker[w].p99Latency);
    }
    EXPECT_EQ(off.aggregate.samplesArrived, on.aggregate.samplesArrived);
    EXPECT_EQ(off.aggregate.samplesServed, on.aggregate.samplesServed);
    EXPECT_EQ(off.aggregate.batchesServed, on.aggregate.batchesServed);
    EXPECT_DOUBLE_EQ(off.aggregate.meanLatency, on.aggregate.meanLatency);
    EXPECT_DOUBLE_EQ(off.aggregate.p99Latency, on.aggregate.p99Latency);
    EXPECT_DOUBLE_EQ(off.meanSlowdown, on.meanSlowdown);
}

TEST_F(PimServingTest, RoutesLargeBatchesToPimLane)
{
    sched_.setPimThreshold(ModelId::kRM1, 32);
    EngineConfig cfg = baseConfig();
    cfg.pimLaneEnabled = true;
    cfg.arrivalQps = 40000;  // ~40 samples per 1 ms window
    const EngineResult r = run(cfg);

    EXPECT_TRUE(r.pimEnabled);
    EXPECT_EQ(r.pimThreshold, 32);
    EXPECT_GT(r.pimDeferredTickets, 0u);
    EXPECT_GT(r.pimLaneStats.samplesServed, 0u);
    EXPECT_GT(r.pimLaneStats.batchesServed, 0u);
    EXPECT_GT(r.pimLaneStats.p99Latency, 0.0);

    // Conservation across the split: every arrived sample was served
    // exactly once, by a CPU worker or by the PIM lane.
    uint64_t cpu_served = 0;
    for (const ServingStats& w : r.perWorker) {
        cpu_served += w.samplesServed;
    }
    EXPECT_EQ(cpu_served + r.pimLaneStats.samplesServed,
              r.aggregate.samplesServed);
    EXPECT_EQ(r.aggregate.samplesServed, r.aggregate.samplesArrived);
}

TEST_F(PimServingTest, DeterministicAcrossRuns)
{
    sched_.setPimThreshold(ModelId::kRM1, 16);
    EngineConfig cfg = baseConfig();
    cfg.pimLaneEnabled = true;
    cfg.numWorkers = 4;
    cfg.arrivalQps = 30000;
    const EngineResult a = run(cfg);
    const EngineResult b = run(cfg);
    EXPECT_EQ(a.aggregate.samplesServed, b.aggregate.samplesServed);
    EXPECT_EQ(a.pimDeferredTickets, b.pimDeferredTickets);
    EXPECT_EQ(a.pimLaneStats.samplesServed,
              b.pimLaneStats.samplesServed);
    EXPECT_DOUBLE_EQ(a.aggregate.p99Latency, b.aggregate.p99Latency);
}

TEST_F(PimServingTest, RejectsNonPimLanePlatform)
{
    EngineConfig bad = baseConfig();
    bad.pimLaneEnabled = true;
    bad.pimPlatformIdx = 0;  // Bdw is a CPU
    EXPECT_DEATH(run(bad), "kPim platform");
    EngineConfig oob = baseConfig();
    oob.pimLaneEnabled = true;
    oob.pimPlatformIdx = 99;
    EXPECT_DEATH(run(oob), "platform index");
}

TEST(PimSchedulerDeathTest, RejectsNonPositiveThreshold)
{
    SweepCache sweep(allPlatformsWithPim(), tinyOptions());
    QueryScheduler sched(&sweep, {1, 16});
    EXPECT_DEATH(sched.setPimThreshold(ModelId::kRM1, 0), "");
}

}  // namespace
}  // namespace recstack
