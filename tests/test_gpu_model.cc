/**
 * @file
 * Tests of the analytical GPU model (Figs. 3 and 4 mechanisms).
 */

#include <gtest/gtest.h>

#include "gpu/gpu_model.h"

namespace recstack {
namespace {

KernelProfile
bigGemm()
{
    KernelProfile kp;
    kp.opType = "FC";
    kp.opName = "fc";
    kp.fmaFlops = 4ull << 30;  // 4 Gflop
    kp.gemmWidth = 1024;
    MemStream w;
    w.region = "y";
    w.isWrite = true;
    w.accesses = 1 << 20;  // 64 MB of outputs -> full occupancy
    w.chunkBytes = 64;
    w.footprintBytes = 64 << 20;
    kp.streams.push_back(w);
    return kp;
}

KernelProfile
bigGather()
{
    KernelProfile kp;
    kp.opType = "SparseLengthsSum";
    kp.opName = "sls";
    MemStream t;
    t.region = "table";
    t.pattern = AccessPattern::kRandom;
    t.accesses = 1 << 20;
    t.chunkBytes = 256;  // 256 MB of gathered rows
    t.footprintBytes = 1ull << 30;
    kp.streams.push_back(t);
    MemStream w;
    w.region = "y";
    w.isWrite = true;
    w.accesses = 1 << 20;
    w.chunkBytes = 64;
    w.footprintBytes = 64 << 20;
    kp.streams.push_back(w);
    return kp;
}

TEST(GpuModel, ComputeBoundGemmMatchesRoofline)
{
    const GpuConfig cfg = gtx1080TiConfig();
    GpuModel gpu(cfg);
    const GpuOpTime t = gpu.kernelTime(bigGemm());
    EXPECT_NEAR(t.computeSeconds,
                static_cast<double>(4ull << 30) / (cfg.effTflops * 1e12),
                1e-4);
    EXPECT_GT(t.computeSeconds, t.memorySeconds);
    EXPECT_NEAR(t.seconds,
                t.launchSeconds + t.computeSeconds, 1e-9);
}

TEST(GpuModel, GatherBoundKernelIsMemoryLimited)
{
    GpuModel gpu(gtx1080TiConfig());
    const GpuOpTime t = gpu.kernelTime(bigGather());
    EXPECT_GT(t.memorySeconds, t.computeSeconds);
    EXPECT_GT(t.seconds, t.launchSeconds);
}

TEST(GpuModel, GatherEfficiencyPenalty)
{
    // The same bytes cost much more when gathered than streamed.
    GpuModel gpu(gtx1080TiConfig());
    KernelProfile seq = bigGather();
    seq.streams[0].pattern = AccessPattern::kSequential;
    EXPECT_GT(gpu.kernelTime(bigGather()).memorySeconds,
              3.0 * gpu.kernelTime(seq).memorySeconds);
}

TEST(GpuModel, SmallKernelIsLaunchBound)
{
    const GpuConfig cfg = gtx1080TiConfig();
    GpuModel gpu(cfg);
    KernelProfile kp;
    kp.opType = "Concat";
    kp.opName = "tiny";
    MemStream w;
    w.region = "y";
    w.isWrite = true;
    w.accesses = 4;
    w.chunkBytes = 64;
    w.footprintBytes = 256;
    kp.streams.push_back(w);
    const GpuOpTime t = gpu.kernelTime(kp);
    EXPECT_GT(t.launchSeconds, 10 * (t.computeSeconds + t.memorySeconds));
    EXPECT_NEAR(t.launchSeconds,
                cfg.kernelLaunchSec + cfg.hostDispatchSec, 1e-12);
}

TEST(GpuModel, OccupancySlowsSmallBatches)
{
    GpuModel gpu(gtx1080TiConfig());
    KernelProfile small = bigGemm();
    small.streams[0].accesses = 16;  // tiny output -> low occupancy
    const double small_per_flop =
        gpu.kernelTime(small).computeSeconds /
        static_cast<double>(small.fmaFlops);
    const double big_per_flop =
        gpu.kernelTime(bigGemm()).computeSeconds /
        static_cast<double>(bigGemm().fmaFlops);
    EXPECT_GT(small_per_flop, 5.0 * big_per_flop);
}

TEST(GpuModel, NarrowGemmUnderutilizes)
{
    GpuModel gpu(gtx1080TiConfig());
    KernelProfile narrow = bigGemm();
    narrow.gemmWidth = 16;  // DIN-style local activation unit
    EXPECT_GT(gpu.kernelTime(narrow).computeSeconds,
              4.0 * gpu.kernelTime(bigGemm()).computeSeconds);
}

TEST(GpuModel, SerialStepsAddOverhead)
{
    GpuModel gpu(gtx1080TiConfig());
    KernelProfile fused = bigGemm();
    fused.serialSteps = 64;
    EXPECT_GT(gpu.kernelTime(fused).seconds,
              gpu.kernelTime(bigGemm()).seconds);
}

TEST(GpuModel, TransferModel)
{
    const GpuConfig cfg = gtx1080TiConfig();
    GpuModel gpu(cfg);
    const GpuRunResult r =
        gpu.simulateNet({bigGemm()}, 1000000000ull, 10);
    EXPECT_NEAR(r.transferSeconds,
                10 * cfg.pcieLatencySec + 1.0 / cfg.pcieGBs, 1e-6);
    EXPECT_NEAR(r.totalSeconds, r.kernelSeconds + r.transferSeconds,
                1e-12);
    EXPECT_GT(r.dataCommFraction(), 0.0);
    EXPECT_LT(r.dataCommFraction(), 1.0);
}

TEST(GpuModel, ZeroInputNetPaysNoTransfer)
{
    // Regression: a net with no input payload and no input blobs used
    // to be charged one full PCIe latency anyway (the per-copy term
    // was max(1, input_blobs)), skewing dataCommFraction for tiny
    // nets. No staged bytes and no blobs means no cudaMemcpy at all.
    const GpuConfig cfg = gtx1080TiConfig();
    GpuModel gpu(cfg);
    const GpuRunResult r = gpu.simulateNet({bigGemm()}, 0, 0);
    EXPECT_DOUBLE_EQ(r.transferSeconds, 0.0);
    EXPECT_DOUBLE_EQ(r.dataCommFraction(), 0.0);
    EXPECT_DOUBLE_EQ(r.totalSeconds, r.kernelSeconds);
    // A nonzero payload still pays at least one per-copy latency even
    // if the caller forgot to count blobs.
    const GpuRunResult with_bytes = gpu.simulateNet({bigGemm()}, 4096, 0);
    EXPECT_GE(with_bytes.transferSeconds, cfg.pcieLatencySec);
    // Regression: zero bytes spread over a nonzero blob count used to
    // be charged input_blobs launch latencies for copies that move
    // nothing. An empty payload is free regardless of blob count.
    const GpuRunResult empty_blobs = gpu.simulateNet({bigGemm()}, 0, 7);
    EXPECT_DOUBLE_EQ(empty_blobs.transferSeconds, 0.0);
    EXPECT_DOUBLE_EQ(empty_blobs.totalSeconds, empty_blobs.kernelSeconds);
}

TEST(GpuModel, DataCommFractionGrowsWithBytes)
{
    GpuModel gpu(gtx1080TiConfig());
    const auto small = gpu.simulateNet({bigGemm()}, 1 << 20, 4);
    const auto large = gpu.simulateNet({bigGemm()}, 1ull << 30, 4);
    EXPECT_GT(large.dataCommFraction(), small.dataCommFraction());
}

TEST(GpuModel, T4BeatsGtxOnGathers)
{
    // GDDR6's better random-access behaviour (Table II discussion).
    GpuModel gtx(gtx1080TiConfig());
    GpuModel t4(t4Config());
    EXPECT_LT(t4.kernelTime(bigGather()).memorySeconds,
              gtx.kernelTime(bigGather()).memorySeconds);
}

TEST(GpuModel, T4BeatsGtxOnSaturatedGemm)
{
    GpuModel gtx(gtx1080TiConfig());
    GpuModel t4(t4Config());
    EXPECT_LT(t4.kernelTime(bigGemm()).computeSeconds,
              gtx.kernelTime(bigGemm()).computeSeconds);
}

TEST(GpuModel, OpTimesSumToKernelSeconds)
{
    GpuModel gpu(t4Config());
    const auto r = gpu.simulateNet({bigGemm(), bigGather()}, 1024, 2);
    double sum = 0.0;
    for (const auto& t : r.opTimes) {
        sum += t.seconds;
    }
    EXPECT_NEAR(sum, r.kernelSeconds, 1e-12);
    EXPECT_EQ(r.opTimes.size(), 2u);
    EXPECT_EQ(r.opTimes[0].opType, "FC");
}

}  // namespace
}  // namespace recstack
