/**
 * @file
 * Tests for the ASCII table/chart renderers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "report/chart.h"
#include "report/csv.h"
#include "report/table.h"

namespace recstack {
namespace {

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22222"});
    const std::string s = t.render();
    std::istringstream iss(s);
    std::string header, underline, row1, row2;
    std::getline(iss, header);
    std::getline(iss, underline);
    std::getline(iss, row1);
    std::getline(iss, row2);
    EXPECT_NE(underline.find("---"), std::string::npos);
    // The second column starts at the same offset in every line.
    EXPECT_EQ(header.find("value"), row1.find('1'));
    EXPECT_EQ(header.find("value"), row2.find("22222"));
}

TEST(TextTable, RejectsRaggedRows)
{
    TextTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

TEST(TextTable, Formatters)
{
    EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::fmt(2.0, 0), "2");
    EXPECT_EQ(TextTable::fmtSpeedup(1.5), "1.50x");
    EXPECT_EQ(TextTable::fmtPercent(0.257), "25.7%");
    EXPECT_EQ(TextTable::fmtSeconds(0.5e-6), "0.5us");
    EXPECT_EQ(TextTable::fmtSeconds(2.5e-3), "2.50ms");
    EXPECT_EQ(TextTable::fmtSeconds(3.0), "3.00s");
}

TEST(BarChart, ScalesToMax)
{
    const std::string s = barChart({{"big", 10.0}, {"half", 5.0}}, 20);
    // "big" fills the full 20 columns, "half" roughly 10.
    const size_t big_hashes =
        static_cast<size_t>(std::count(s.begin(),
                                       s.begin() + static_cast<long>(
                                           s.find('\n')), '#'));
    EXPECT_EQ(big_hashes, 20u);
    EXPECT_NE(s.find("half"), std::string::npos);
}

TEST(BarChart, HandlesAllZero)
{
    const std::string s = barChart({{"a", 0.0}, {"b", 0.0}}, 10);
    EXPECT_EQ(std::count(s.begin(), s.end(), '#'), 0);
}

TEST(StackedBar, SegmentsAndLegend)
{
    const std::string s =
        stackedBar("L1", {{"x", 0.75}, {"y", 0.25}}, 40);
    EXPECT_NE(s.find("L1"), std::string::npos);
    EXPECT_NE(s.find("x 75.0%"), std::string::npos);
    EXPECT_NE(s.find("y 25.0%"), std::string::npos);
    // 75% of 40 cells = 30 '#' in the bar itself (the legend
    // line repeats the fill character once).
    const std::string bar_line = s.substr(0, s.find('\n'));
    EXPECT_EQ(std::count(bar_line.begin(), bar_line.end(), '#'), 30);
}

TEST(StackedBar, NormalizesNonUnitTotals)
{
    const std::string s = stackedBar("L", {{"a", 3.0}, {"b", 1.0}}, 8);
    EXPECT_NE(s.find("a 75.0%"), std::string::npos);
}

TEST(StackedBar, EmptyTotalSafe)
{
    const std::string s = stackedBar("L", {{"a", 0.0}}, 8);
    EXPECT_NE(s.find("0.0%"), std::string::npos);
}


TEST(CsvWriter, BasicRows)
{
    std::ostringstream oss;
    CsvWriter csv(&oss);
    csv.header({"model", "batch", "seconds"});
    csv.row({"RM1", "16", "0.001"});
    csv.row({"RM2", "64", "0.004"});
    EXPECT_EQ(oss.str(),
              "model,batch,seconds\nRM1,16,0.001\nRM2,64,0.004\n");
    EXPECT_EQ(csv.rowsWritten(), 2u);
}

TEST(CsvWriter, EscapesSpecialCharacters)
{
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, EnforcesProtocol)
{
    std::ostringstream oss;
    CsvWriter csv(&oss);
    EXPECT_DEATH(csv.row({"x"}), "header first");
    csv.header({"a", "b"});
    EXPECT_DEATH(csv.row({"only-one"}), "row width");
    EXPECT_DEATH(csv.header({"again"}), "already written");
}

TEST(CsvWriter, RejectsNullStream)
{
    EXPECT_DEATH(CsvWriter(nullptr), "needs a stream");
}

}  // namespace
}  // namespace recstack
