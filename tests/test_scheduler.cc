/**
 * @file
 * Tests of the heterogeneity-aware QueryScheduler.
 */

#include <gtest/gtest.h>

#include "sched/query_scheduler.h"

namespace recstack {
namespace {

class SchedulerTest : public ::testing::Test
{
  protected:
    SchedulerTest()
        : sweep_(allPlatforms(),
                 []() {
                     ModelOptions opts = tinyOptions();
                     opts.tableScale = 0.01;
                     return opts;
                 }()),
          sched_(&sweep_, {1, 16, 256, 4096})
    {
    }

    SweepCache sweep_;
    QueryScheduler sched_;
};

TEST_F(SchedulerTest, LatencyAtGridPointsMatchesSweep)
{
    for (int64_t batch : sched_.batchGrid()) {
        EXPECT_DOUBLE_EQ(sched_.latency(ModelId::kRM1, 0, batch),
                         sweep_.get(ModelId::kRM1, 0, batch).seconds);
    }
}

TEST_F(SchedulerTest, LatencyInterpolatesBetweenKnots)
{
    const double lo = sched_.latency(ModelId::kRM1, 0, 16);
    const double hi = sched_.latency(ModelId::kRM1, 0, 256);
    const double mid = sched_.latency(ModelId::kRM1, 0, 136);
    EXPECT_GT(mid, std::min(lo, hi));
    EXPECT_LT(mid, std::max(lo, hi));
    EXPECT_NEAR(mid, lo + (hi - lo) * (136.0 - 16.0) / 240.0, 1e-12);
}

TEST_F(SchedulerTest, LatencyMonotoneInBatch)
{
    double prev = 0.0;
    for (int64_t b : {1, 8, 32, 100, 256, 1000, 4096}) {
        const double lat = sched_.latency(ModelId::kRM2, 0, b);
        EXPECT_GE(lat, prev);
        prev = lat;
    }
}

TEST_F(SchedulerTest, ExtrapolatesBeyondGrid)
{
    const double at_grid_end = sched_.latency(ModelId::kRM1, 0, 4096);
    const double beyond = sched_.latency(ModelId::kRM1, 0, 8192);
    EXPECT_GT(beyond, at_grid_end);
}

TEST_F(SchedulerTest, SinglePointGridExtrapolatesFlat)
{
    // Regression: a 1-point grid used to read batchGrid_[size() - 2]
    // (out of bounds) for any batch above the single knot. The fix
    // falls back to flat extrapolation.
    QueryScheduler one_knot(&sweep_, {16});
    const double at_knot = sweep_.get(ModelId::kRM1, 0, 16).seconds;
    EXPECT_DOUBLE_EQ(one_knot.latency(ModelId::kRM1, 0, 16), at_knot);
    EXPECT_DOUBLE_EQ(one_knot.latency(ModelId::kRM1, 0, 17), at_knot);
    EXPECT_DOUBLE_EQ(one_knot.latency(ModelId::kRM1, 0, 4096), at_knot);
    EXPECT_DOUBLE_EQ(one_knot.latency(ModelId::kRM1, 0, 1), at_knot);
}

TEST_F(SchedulerTest, SinglePointGridRoutesAndCapsSla)
{
    // The routing/throughput entry points must also survive a 1-point
    // grid (they all funnel through latency()).
    QueryScheduler one_knot(&sweep_, {256});
    const ScheduleDecision d = one_knot.route(ModelId::kWnD, 1024, 1.0);
    EXPECT_TRUE(d.meetsSla);
    const ThroughputPoint tp =
        one_knot.bestThroughputUnderSla(ModelId::kWnD, 1.0);
    EXPECT_TRUE(tp.feasible);
    EXPECT_EQ(tp.batch, 256);
}

TEST_F(SchedulerTest, RoutePicksFastestPlatform)
{
    const ScheduleDecision d = sched_.route(ModelId::kRM3, 256, 1.0);
    for (size_t p = 0; p < sweep_.platforms().size(); ++p) {
        EXPECT_LE(d.expectedLatency,
                  sched_.latency(ModelId::kRM3, p, 256) + 1e-15);
    }
    EXPECT_TRUE(d.meetsSla);  // 1 second is generous
}

TEST_F(SchedulerTest, RouteFlagsSlaViolation)
{
    const ScheduleDecision d = sched_.route(ModelId::kRM2, 4096, 1e-9);
    EXPECT_FALSE(d.meetsSla);
}

TEST_F(SchedulerTest, MaxBatchUnderSlaRespectsBudget)
{
    // Pick an SLA between the batch-16 and batch-256 latencies.
    const double s16 = sched_.latency(ModelId::kRM1, 0, 16);
    const double s256 = sched_.latency(ModelId::kRM1, 0, 256);
    const double sla = (s16 + s256) / 2.0;
    const int64_t max_batch =
        sched_.maxBatchUnderSla(ModelId::kRM1, 0, sla);
    EXPECT_EQ(max_batch, 16);
    EXPECT_EQ(sched_.maxBatchUnderSla(ModelId::kRM1, 0, 1e-12), 0);
}

TEST_F(SchedulerTest, BestThroughputFeasibleAndOptimal)
{
    const ThroughputPoint tp =
        sched_.bestThroughputUnderSla(ModelId::kWnD, 0.5);
    ASSERT_TRUE(tp.feasible);
    EXPECT_LE(tp.latencySeconds, 0.5);
    EXPECT_GT(tp.samplesPerSecond, 0.0);
    // No grid point under the SLA beats it.
    for (size_t p = 0; p < sweep_.platforms().size(); ++p) {
        for (int64_t b : sched_.batchGrid()) {
            const double lat = sched_.latency(ModelId::kWnD, p, b);
            if (lat <= 0.5) {
                EXPECT_LE(static_cast<double>(b) / lat,
                          tp.samplesPerSecond + 1e-9);
            }
        }
    }
}

TEST_F(SchedulerTest, ImpossibleSlaInfeasible)
{
    const ThroughputPoint tp =
        sched_.bestThroughputUnderSla(ModelId::kDIN, 1e-12);
    EXPECT_FALSE(tp.feasible);
    EXPECT_EQ(tp.samplesPerSecond, 0.0);
}

TEST_F(SchedulerTest, LooseSlaPrefersLargeBatchAccelerator)
{
    // With a loose SLA the best throughput point uses a large batch;
    // for the FC-heavy WnD that lands on a GPU (Fig. 5's right side).
    const ThroughputPoint tp =
        sched_.bestThroughputUnderSla(ModelId::kWnD, 10.0);
    ASSERT_TRUE(tp.feasible);
    EXPECT_GE(tp.batch, 256);
    const auto& platform = sweep_.platforms()[tp.platformIdx];
    EXPECT_EQ(platform.kind, PlatformKind::kGpu);
}

TEST(ExtrapolateAboveGrid, NoisySegmentNeverGoesNegative)
{
    // Regression: with a noisy last segment (s1 < s0) the raw linear
    // extrapolation has negative slope and, far enough above the
    // grid, predicted *negative* latency. The clamp floors the
    // prediction at the last knot's per-sample scaling.
    const double far =
        extrapolateLatencyAboveGrid(256, 1.0, 4096, 0.9, 1 << 20);
    EXPECT_GT(far, 0.0);
    EXPECT_DOUBLE_EQ(far, 0.9 * static_cast<double>(1 << 20) / 4096.0);
}

TEST(ExtrapolateAboveGrid, FloorIsPerSampleScalingOfLastKnot)
{
    // Just above the grid the negative-slope line is still positive
    // but already below s1's per-sample scaling; the floor binds
    // everywhere, not only once the line crosses zero.
    const double just_above =
        extrapolateLatencyAboveGrid(256, 1.0, 4096, 0.9, 5000);
    EXPECT_DOUBLE_EQ(just_above, 0.9 * 5000.0 / 4096.0);
}

TEST(ExtrapolateAboveGrid, SuperlinearSegmentKeepsLinearContinuation)
{
    // When the last segment is steeper than per-sample scaling the
    // linear continuation lies above the floor and is kept as-is:
    // b0=1 s0=0.5, b1=2 s1=1.5 -> slope 1.0/sample; at batch 4 the
    // line gives 3.5 while the floor is only 1.5 * 4 / 2 = 3.0.
    EXPECT_DOUBLE_EQ(extrapolateLatencyAboveGrid(1, 0.5, 2, 1.5, 4),
                     3.5);
}

TEST(SchedulerRouteTie, ResolvesToLowestPlatformIndex)
{
    // Two byte-identical platforms produce exactly equal latencies at
    // every batch; route() must deterministically keep the first.
    const Platform twin = allPlatforms()[0];
    SweepCache sweep({twin, twin}, []() {
        ModelOptions opts = tinyOptions();
        opts.tableScale = 0.01;
        return opts;
    }());
    QueryScheduler sched(&sweep, {16, 256});
    ASSERT_DOUBLE_EQ(sched.latency(ModelId::kRM1, 0, 64),
                     sched.latency(ModelId::kRM1, 1, 64));
    const ScheduleDecision d = sched.route(ModelId::kRM1, 64, 1.0);
    EXPECT_EQ(d.platformIdx, 0u);
}

TEST_F(SchedulerTest, InfeasibleSlaReportsEmptyOperatingPoint)
{
    const ThroughputPoint tp =
        sched_.bestThroughputUnderSla(ModelId::kDIEN, 1e-15);
    EXPECT_FALSE(tp.feasible);
    EXPECT_EQ(tp.samplesPerSecond, 0.0);
    EXPECT_EQ(tp.batch, 0);
}

TEST_F(SchedulerTest, GpuThresholdDefaultsToRouteNothing)
{
    EXPECT_EQ(sched_.gpuThreshold(ModelId::kRM1),
              QueryScheduler::kNoGpuThreshold);
    EXPECT_FALSE(sched_.routesToGpu(ModelId::kRM1, int64_t{1} << 40));
}

TEST_F(SchedulerTest, GpuThresholdSplitsAtOrAbovePerModel)
{
    sched_.setGpuThreshold(ModelId::kRM1, 64);
    EXPECT_FALSE(sched_.routesToGpu(ModelId::kRM1, 63));
    EXPECT_TRUE(sched_.routesToGpu(ModelId::kRM1, 64));
    EXPECT_TRUE(sched_.routesToGpu(ModelId::kRM1, 65));
    // Per-model: other models keep the route-nothing default.
    EXPECT_FALSE(sched_.routesToGpu(ModelId::kRM2, 1024));
    // Threshold 1 routes every batch.
    sched_.setGpuThreshold(ModelId::kRM2, 1);
    EXPECT_TRUE(sched_.routesToGpu(ModelId::kRM2, 1));
    // Re-set overwrites.
    sched_.setGpuThreshold(ModelId::kRM1, 128);
    EXPECT_EQ(sched_.gpuThreshold(ModelId::kRM1), 128);
}

TEST_F(SchedulerTest, RejectsBadInputs)
{
    EXPECT_DEATH(sched_.latency(ModelId::kRM1, 0, 0), "positive");
    EXPECT_DEATH(sched_.setGpuThreshold(ModelId::kRM1, 0), "positive");
    EXPECT_DEATH(QueryScheduler(nullptr), "sweep cache");
    SweepCache local(allPlatforms(), tinyOptions());
    EXPECT_DEATH(QueryScheduler(&local, {16, 4, 1}), "ascending");
}

}  // namespace
}  // namespace recstack
