/**
 * @file
 * Tests of the operator -> KernelProfile lowering: work counts,
 * stream construction, code identities, and framework aliasing.
 */

#include <gtest/gtest.h>

#include "ops/concat.h"
#include "ops/elementwise.h"
#include "ops/embedding.h"
#include "ops/fc.h"
#include "ops/gru.h"
#include "ops/matmul.h"
#include "ops/op_costs.h"
#include "ops/reshape.h"

namespace recstack {
namespace {

KernelProfile
profileOf(Operator& op, Workspace& ws)
{
    op.inferShapes(ws);
    return op.profile(ws);
}

TEST(FCProfile, FlopAndStreamAccounting)
{
    Workspace ws;
    ws.set("x", Tensor({8, 32}));
    ws.set("w", Tensor({16, 32}));
    ws.set("b", Tensor({16}));
    FCOp fc("fc", "x", "w", "b", "y");
    const KernelProfile kp = profileOf(fc, ws);

    EXPECT_EQ(kp.opType, "FC");
    EXPECT_EQ(kp.fmaFlops, 2ull * 8 * 16 * 32);
    EXPECT_EQ(kp.gemmWidth, 16u);
    EXPECT_GT(kp.reloadLoadElems, 0u);
    EXPECT_GT(kp.simdScalableOps, 0u);
    // Streams: X read, W read, Y write (+ dispatch metadata).
    EXPECT_GE(kp.streams.size(), 3u);
    EXPECT_EQ(kp.bytesWritten(), 8u * 16 * 4 / 64 * 64);
    EXPECT_EQ(kp.codeRegion, "kernel:FC");
    EXPECT_EQ(kp.dispatchOps, opcost::kDispatchOps);
}

TEST(FCProfile, WeightTrafficScalesWithPanels)
{
    Workspace ws;
    ws.set("w", Tensor({64, 64}));
    ws.set("b", Tensor({64}));

    auto weight_accesses = [&ws](int64_t m) {
        ws.set("x", Tensor({m, 64}));
        FCOp fc("fc", "x", "w", "b", "y");
        fc.inferShapes(ws);
        const KernelProfile kp = fc.profile(ws);
        for (const auto& s : kp.streams) {
            if (s.region == "w") {
                return s.accesses;
            }
        }
        return uint64_t{0};
    };
    // 128 rows = 2 M-tiles -> twice the weight panel traffic of 64.
    EXPECT_EQ(weight_accesses(128), 2 * weight_accesses(64));
}

TEST(SLSProfile, GatherStreamShape)
{
    Workspace ws;
    ws.set("table", Tensor({1000, 16}));
    ws.set("idx", Tensor({40}, DType::kInt64));
    ws.set("len", Tensor({4}, DType::kInt32));
    SparseLengthsSumOp sls("sls", "table", "idx", "len", "y", 0.8);
    const KernelProfile kp = profileOf(sls, ws);

    const MemStream* gather = nullptr;
    for (const auto& s : kp.streams) {
        if (s.region == "table") {
            gather = &s;
        }
    }
    ASSERT_NE(gather, nullptr);
    EXPECT_EQ(gather->pattern, AccessPattern::kRandom);
    EXPECT_EQ(gather->accesses, 40u);
    EXPECT_EQ(gather->chunkBytes, 16u * 4);
    EXPECT_EQ(gather->footprintBytes, 1000u * 16 * 4);
    EXPECT_DOUBLE_EQ(gather->zipfExponent, 0.8);
    EXPECT_EQ(kp.vecElemOps, 40u * 16);

    // Data-dependent branches must NOT scale with SIMD width.
    bool has_data_branches = false;
    for (const auto& b : kp.branches) {
        if (!b.scalesWithSimd && b.randomness > 0.5) {
            has_data_branches = true;
        }
    }
    EXPECT_TRUE(has_data_branches);
}

TEST(GemmProfile, LoopBranchesScaleWithSimd)
{
    Workspace ws;
    ws.set("x", Tensor({4, 64}));
    ws.set("w", Tensor({64, 64}));
    ws.set("b", Tensor({64}));
    FCOp fc("fc", "x", "w", "b", "y");
    const KernelProfile kp = profileOf(fc, ws);
    bool found = false;
    for (const auto& b : kp.branches) {
        if (b.scalesWithSimd) {
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(GRUProfile, SerialStepsAndWork)
{
    Workspace ws;
    const int steps = 7;
    ws.set("x", Tensor({steps, 2, 8}));
    ws.set("h0", Tensor({2, 4}));
    ws.set("wx", Tensor({12, 8}));
    ws.set("wh", Tensor({12, 4}));
    ws.set("b", Tensor({12}));
    GRULayerOp gru("gru", "x", "h0", "wx", "wh", "b", "hs", "hl");
    const KernelProfile kp = profileOf(gru, ws);
    EXPECT_EQ(kp.serialSteps, static_cast<uint64_t>(steps));
    EXPECT_EQ(kp.fmaFlops, 2ull * steps * 2 * 12 * (8 + 4));
    EXPECT_EQ(kp.codeRegion, "kernel:GRU");
}

TEST(ReshapeProfile, DispatchOnly)
{
    Workspace ws;
    ws.set("x", Tensor({4, 4}));
    ReshapeOp rs("rs", "x", "y", {16});
    const KernelProfile kp = profileOf(rs, ws);
    EXPECT_EQ(kp.fmaFlops, 0u);
    EXPECT_EQ(kp.vecElemOps, 0u);
    EXPECT_EQ(kp.dispatchOps, opcost::kDispatchOps);
}

TEST(ConcatProfile, StridedOutputStream)
{
    Workspace ws;
    ws.set("a", Tensor({8, 16}));
    ws.set("b", Tensor({8, 16}));
    ConcatOp cat("cat", {"a", "b"}, "y");
    const KernelProfile kp = profileOf(cat, ws);
    bool strided_write = false;
    for (const auto& s : kp.streams) {
        if (s.isWrite && s.pattern == AccessPattern::kStrided) {
            strided_write = true;
        }
    }
    EXPECT_TRUE(strided_write);
    EXPECT_EQ(kp.vecElemOps, 8u * 32);
}

TEST(Profile, DispatchMetadataStreamPresent)
{
    Workspace ws;
    ws.set("x", Tensor({2, 2}));
    UnaryOp relu(UnaryFn::kRelu, "r", "x", "y");
    const KernelProfile kp = profileOf(relu, ws);
    bool meta = false;
    for (const auto& s : kp.streams) {
        if (s.region == "framework:heap") {
            meta = true;
        }
    }
    EXPECT_TRUE(meta);
}

TEST(Profile, DisplayTypeAliasing)
{
    Workspace ws;
    ws.set("x", Tensor({2, 4}));
    ws.set("w", Tensor({3, 4}));
    ws.set("b", Tensor({3}));
    FCOp fc("fc", "x", "w", "b", "y");
    fc.setDisplayType("FusedMatMul");
    const KernelProfile kp = profileOf(fc, ws);
    EXPECT_EQ(kp.opType, "FusedMatMul");
    EXPECT_EQ(fc.type(), "FC");  // real type unchanged
}

TEST(Profile, AccumulateMerges)
{
    KernelProfile a;
    a.fmaFlops = 100;
    a.scalarOps = 10;
    a.streams.push_back({});
    KernelProfile b;
    b.fmaFlops = 50;
    b.vecElemOps = 5;
    b.branches.push_back({});
    a.accumulate(b);
    EXPECT_EQ(a.fmaFlops, 150u);
    EXPECT_EQ(a.vecElemOps, 5u);
    EXPECT_EQ(a.streams.size(), 1u);
    EXPECT_EQ(a.branches.size(), 1u);
}

TEST(Profile, ByteHelpers)
{
    KernelProfile kp;
    MemStream r;
    r.accesses = 4;
    r.chunkBytes = 64;
    kp.streams.push_back(r);
    MemStream w = r;
    w.isWrite = true;
    w.accesses = 2;
    kp.streams.push_back(w);
    EXPECT_EQ(kp.bytesRead(), 256u);
    EXPECT_EQ(kp.bytesWritten(), 128u);
}

TEST(Profile, TotalBranches)
{
    KernelProfile kp;
    kp.branches.push_back({100, 0.9, 0.1, false});
    kp.branches.push_back({50, 0.5, 0.5, true});
    EXPECT_EQ(kp.totalBranches(), 150u);
}

/** Every op type produces a self-consistent profile. */
class ProfileInvariants : public ::testing::TestWithParam<int>
{
};

TEST_P(ProfileInvariants, StreamsHaveValidGeometry)
{
    Workspace ws;
    OperatorPtr op;
    switch (GetParam()) {
      case 0:
        ws.set("x", Tensor({4, 8}));
        ws.set("w", Tensor({4, 8}));
        ws.set("b", Tensor({4}));
        op = makeFC("op", "x", "w", "b", "y");
        break;
      case 1:
        ws.set("x", Tensor({4, 8}));
        op = makeRelu("op", "x", "y");
        break;
      case 2:
        ws.set("t", Tensor({64, 8}));
        ws.set("i", Tensor({12}, DType::kInt64));
        ws.set("l", Tensor({3}, DType::kInt32));
        op = makeSparseLengthsSum("op", "t", "i", "l", "y");
        break;
      case 3:
        ws.set("a", Tensor({2, 3, 4}));
        ws.set("b", Tensor({2, 4, 5}));
        op = makeBatchMatMul("op", "a", "b", "y");
        break;
      case 4:
        ws.set("x", Tensor({4, 6}));
        op = makeSoftmax("op", "x", "y");
        break;
      case 5:
        ws.set("a", Tensor({4, 2}));
        ws.set("b", Tensor({4, 3}));
        op = makeConcat("op", {"a", "b"}, "y");
        break;
      case 6:
        ws.set("x", Tensor({3, 4, 5}));
        op = makeTranspose("op", "x", "y");
        break;
      default:
        FAIL();
    }
    op->inferShapes(ws);
    const KernelProfile kp = op->profile(ws);
    EXPECT_FALSE(kp.opType.empty());
    EXPECT_FALSE(kp.opName.empty());
    for (const auto& s : kp.streams) {
        EXPECT_GT(s.chunkBytes, 0u) << kp.opType;
        EXPECT_GT(s.footprintBytes, 0u) << kp.opType;
        EXPECT_FALSE(s.region.empty()) << kp.opType;
    }
    for (const auto& b : kp.branches) {
        EXPECT_GE(b.takenProbability, 0.0);
        EXPECT_LE(b.takenProbability, 1.0);
        EXPECT_GE(b.randomness, 0.0);
        EXPECT_LE(b.randomness, 1.0);
    }
}

INSTANTIATE_TEST_SUITE_P(AllOps, ProfileInvariants,
                         ::testing::Range(0, 7));

}  // namespace
}  // namespace recstack
