/**
 * @file
 * Tests of the TopDown derivation from raw counters.
 */

#include <gtest/gtest.h>

#include "topdown/topdown.h"

namespace recstack {
namespace {

CpuCounters
syntheticCounters()
{
    CpuCounters c;
    c.uopsRetired = 4000;
    c.avxUopsRetired = 1000;
    c.scalarUopsRetired = 3000;
    c.branches = 400;
    c.branchMispredicts = 20;
    c.icacheMisses = 8;
    c.icacheAccesses = 100;
    c.retireCycles = 1000.0;
    c.feLatencyCycles = 100.0;
    c.feBandwidthDsbCycles = 60.0;
    c.feBandwidthMiteCycles = 40.0;
    c.badSpecCycles = 300.0;
    c.beCoreCycles = 250.0;
    c.beMemL2Cycles = 50.0;
    c.beMemL3Cycles = 100.0;
    c.beMemDramLatCycles = 80.0;
    c.beMemDramBwCycles = 20.0;
    c.dramCongestedCycles = 200.0;
    c.cycles = 2000.0;
    return c;
}

TEST(TopDown, Level1Fractions)
{
    const TopDownResult r =
        deriveTopDown(syntheticCounters(), broadwellConfig());
    EXPECT_DOUBLE_EQ(r.l1.retiring, 0.5);
    EXPECT_DOUBLE_EQ(r.l1.badSpeculation, 0.15);
    EXPECT_DOUBLE_EQ(r.l1.frontendBound, 0.1);
    EXPECT_DOUBLE_EQ(r.l1.backendBound, 0.25);
    EXPECT_NEAR(r.l1Sum(), 1.0, 1e-12);
}

TEST(TopDown, Level2Drilldowns)
{
    const TopDownResult r =
        deriveTopDown(syntheticCounters(), broadwellConfig());
    EXPECT_DOUBLE_EQ(r.l2.feLatency, 0.05);
    EXPECT_DOUBLE_EQ(r.l2.feBandwidthDsb, 0.03);
    EXPECT_DOUBLE_EQ(r.l2.feBandwidthMite, 0.02);
    EXPECT_NEAR(r.l2.feBandwidth, 0.05, 1e-12);
    EXPECT_DOUBLE_EQ(r.l2.beCore, 0.125);
    EXPECT_DOUBLE_EQ(r.l2.beMemory, 0.125);
    EXPECT_DOUBLE_EQ(r.l2.coreToMemoryRatio(), 1.0);
    EXPECT_DOUBLE_EQ(r.l2.memL3, 0.05);
}

TEST(TopDown, DerivedMetrics)
{
    const TopDownResult r =
        deriveTopDown(syntheticCounters(), broadwellConfig());
    EXPECT_DOUBLE_EQ(r.ipc, 2.0);
    EXPECT_DOUBLE_EQ(r.avxFraction, 0.25);
    EXPECT_DOUBLE_EQ(r.imspki, 2.0);      // 8 misses / 4 kuops
    EXPECT_DOUBLE_EQ(r.mispredictsPerKuop, 5.0);
    EXPECT_DOUBLE_EQ(r.dramCongestedFraction, 0.1);
}

TEST(TopDown, ZeroCyclesSafe)
{
    const TopDownResult r = deriveTopDown(CpuCounters{},
                                          broadwellConfig());
    EXPECT_EQ(r.l1.retiring, 0.0);
    EXPECT_EQ(r.ipc, 0.0);
    EXPECT_EQ(r.imspki, 0.0);
}

TEST(TopDown, CongestionClampedToOne)
{
    CpuCounters c = syntheticCounters();
    c.dramCongestedCycles = 5000.0;  // > cycles
    const TopDownResult r = deriveTopDown(c, broadwellConfig());
    EXPECT_DOUBLE_EQ(r.dramCongestedFraction, 1.0);
}

TEST(Counters, AccumulatePreservesTotals)
{
    CpuCounters a = syntheticCounters();
    CpuCounters b = syntheticCounters();
    b.cycles = 1000.0;
    b.uopsRetired = 1000;
    a.accumulate(b);
    EXPECT_EQ(a.uopsRetired, 5000u);
    EXPECT_DOUBLE_EQ(a.cycles, 3000.0);
    EXPECT_DOUBLE_EQ(a.retireCycles, 2000.0);
}

TEST(Counters, AccumulateCycleWeightsPortDistribution)
{
    CpuCounters a;
    a.cycles = 100.0;
    a.portsBusyAtLeast[3] = 1.0;
    CpuCounters b;
    b.cycles = 300.0;
    b.portsBusyAtLeast[3] = 0.0;
    a.accumulate(b);
    EXPECT_NEAR(a.portsBusyAtLeast[3], 0.25, 1e-12);
}

}  // namespace
}  // namespace recstack
