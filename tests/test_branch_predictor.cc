/**
 * @file
 * Tests of the gshare predictor and the synthetic branch-stream
 * simulation behind Figs. 8 and 15.
 */

#include <gtest/gtest.h>

#include "platform/platform.h"
#include "uarch/branch_predictor.h"

namespace recstack {
namespace {

TEST(Gshare, LearnsAlwaysTaken)
{
    GsharePredictor bp(10, 8);
    int mispredicts = 0;
    for (int i = 0; i < 1000; ++i) {
        mispredicts += bp.predictAndUpdate(0x400, true);
    }
    EXPECT_LT(mispredicts, 5);
}

TEST(Gshare, LearnsAlwaysNotTaken)
{
    GsharePredictor bp(10, 8);
    int mispredicts = 0;
    for (int i = 0; i < 1000; ++i) {
        mispredicts += bp.predictAndUpdate(0x400, false);
    }
    EXPECT_LT(mispredicts, 5);
}

TEST(Gshare, LearnsShortPeriodicPattern)
{
    // T T T N repeating: history correlation makes this learnable.
    GsharePredictor bp(12, 8);
    int mispredicts = 0;
    for (int i = 0; i < 4000; ++i) {
        const bool taken = (i % 4) != 3;
        const int m = bp.predictAndUpdate(0x80, taken);
        if (i >= 1000) {
            mispredicts += m;
        }
    }
    EXPECT_LT(mispredicts, 3000 / 20);  // < 5% steady state
}

TEST(Gshare, RandomStreamNearChance)
{
    GsharePredictor bp(12, 10);
    Rng rng(3);
    int mispredicts = 0;
    for (int i = 0; i < 8000; ++i) {
        mispredicts += bp.predictAndUpdate(0x80, rng.nextBool(0.5));
    }
    EXPECT_NEAR(mispredicts / 8000.0, 0.5, 0.06);
}

TEST(Gshare, BiasedRandomBeatsChance)
{
    GsharePredictor bp(12, 10);
    Rng rng(4);
    int mispredicts = 0;
    for (int i = 0; i < 8000; ++i) {
        mispredicts += bp.predictAndUpdate(0x80, rng.nextBool(0.9));
    }
    // Should approach the 10% irreducible rate.
    EXPECT_LT(mispredicts / 8000.0, 0.25);
}

TEST(Gshare, ResetForgets)
{
    GsharePredictor bp(10, 8);
    for (int i = 0; i < 100; ++i) {
        bp.predictAndUpdate(0x10, false);
    }
    EXPECT_FALSE(bp.predict(0x10));
    bp.reset();
    EXPECT_TRUE(bp.predict(0x10));  // back to weakly-taken init
}

TEST(BranchStream, EmptyStreamNoWork)
{
    GsharePredictor bp(10, 8);
    Rng rng(1);
    BranchStream s;
    s.count = 0;
    const auto r = simulateBranchStream(bp, s, 0x1000, rng);
    EXPECT_EQ(r.simulated, 0u);
    EXPECT_EQ(r.mispredicts, 0u);
}

TEST(BranchStream, SampleCapRespected)
{
    GsharePredictor bp(10, 8);
    Rng rng(1);
    BranchStream s;
    s.count = 1000000;
    s.takenProbability = 0.9;
    const auto r = simulateBranchStream(bp, s, 0x1000, rng, 512);
    EXPECT_EQ(r.simulated, 512u);
}

TEST(BranchStream, PredictableLoopsMispredictRarely)
{
    GsharePredictor bp(14, 12);
    Rng rng(2);
    BranchStream loop;
    loop.count = 4000;
    loop.takenProbability = 0.97;
    loop.randomness = 0.02;
    const auto r = simulateBranchStream(bp, loop, 0x2000, rng, 4000);
    EXPECT_LT(r.mispredictRate(), 0.1);
}

TEST(BranchStream, DataDependentBranchesMispredictOften)
{
    GsharePredictor bp(14, 12);
    Rng rng(2);
    BranchStream data;
    data.count = 4000;
    data.takenProbability = 0.85;
    data.randomness = 0.75;
    const auto r = simulateBranchStream(bp, data, 0x3000, rng, 4000);
    EXPECT_GT(r.mispredictRate(), 0.12);
}

TEST(BranchStream, LoopPredictorCoversPatternedComponent)
{
    Rng rng1(5), rng2(5);
    BranchStream loop;
    loop.count = 4000;
    loop.takenProbability = 0.875;  // period-8 loop
    loop.randomness = 0.0;

    GsharePredictor weak(8, 4);
    const auto base = simulateBranchStream(weak, loop, 0x4000, rng1,
                                           4000, false);
    GsharePredictor weak2(8, 4);
    const auto covered = simulateBranchStream(weak2, loop, 0x4000, rng2,
                                              4000, true);
    EXPECT_LE(covered.mispredicts, base.mispredicts);
    EXPECT_LT(covered.mispredictRate(), 0.01);
}

TEST(BranchStream, BroadwellVsCascadeLakeOrdering)
{
    // The CLX predictor configuration (bigger tables + loop
    // predictor) must not mispredict more than BDW's on the same
    // mixed stream.
    const CpuConfig bdw = broadwellConfig();
    const CpuConfig clx = cascadeLakeConfig();
    GsharePredictor pb(bdw.bpTableBits, bdw.bpHistoryBits);
    GsharePredictor pc(clx.bpTableBits, clx.bpHistoryBits);
    Rng r1(6), r2(6);

    BranchStream mixed;
    mixed.count = 6000;
    mixed.takenProbability = 0.85;
    mixed.randomness = 0.4;
    const auto mb = simulateBranchStream(pb, mixed, 0x5000, r1, 6000,
                                         bdw.bpLoopPredictor);
    const auto mc = simulateBranchStream(pc, mixed, 0x5000, r2, 6000,
                                         clx.bpLoopPredictor);
    EXPECT_LT(mc.mispredicts, mb.mispredicts);
}

/** Sweep randomness: mispredict rate grows monotonically-ish. */
class RandomnessSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(RandomnessSweep, RateBoundedByRandomness)
{
    GsharePredictor bp(14, 12);
    Rng rng(7);
    BranchStream s;
    s.count = 6000;
    s.takenProbability = 0.8;
    s.randomness = GetParam();
    const auto r = simulateBranchStream(bp, s, 0x6000, rng, 6000);
    // The irreducible part is roughly 2 p (1-p) of the random
    // fraction; allow generous slack for gshare noise.
    EXPECT_LE(r.mispredictRate(), GetParam() * 0.6 + 0.12);
}

INSTANTIATE_TEST_SUITE_P(Levels, RandomnessSweep,
                         ::testing::Values(0.0, 0.2, 0.4, 0.6, 0.8, 1.0));

}  // namespace
}  // namespace recstack
