/**
 * @file
 * Tests of the execution-port scheduler (Fig. 10's functional units).
 */

#include <gtest/gtest.h>

#include "uarch/exec_ports.h"

namespace recstack {
namespace {

TEST(Ports, FmaRestrictedToTwoPorts)
{
    PortScheduler sched(broadwellConfig());
    PortInput in;
    in.fmaUops = 1000;
    const PortResult r = sched.schedule(in);
    EXPECT_DOUBLE_EQ(r.portLoad[0], 500.0);
    EXPECT_DOUBLE_EQ(r.portLoad[1], 500.0);
    EXPECT_DOUBLE_EQ(r.computeCycles, 500.0);
}

TEST(Ports, LoadsAndStoresOnTheirPorts)
{
    PortScheduler sched(broadwellConfig());
    PortInput in;
    in.loadUops = 600;
    in.storeUops = 200;
    const PortResult r = sched.schedule(in);
    EXPECT_DOUBLE_EQ(r.portLoad[2], 300.0);
    EXPECT_DOUBLE_EQ(r.portLoad[3], 300.0);
    EXPECT_DOUBLE_EQ(r.portLoad[4], 100.0);
    EXPECT_DOUBLE_EQ(r.portLoad[7], 100.0);
    EXPECT_DOUBLE_EQ(r.computeCycles, 300.0);
}

TEST(Ports, BranchesOnPortSix)
{
    PortScheduler sched(broadwellConfig());
    PortInput in;
    in.branchUops = 77;
    const PortResult r = sched.schedule(in);
    EXPECT_DOUBLE_EQ(r.portLoad[6], 77.0);
}

TEST(Ports, ScalarWaterFillsAroundBusyPorts)
{
    PortScheduler sched(broadwellConfig());
    PortInput in;
    in.fmaUops = 800;      // p0 = p1 = 400
    in.scalarUops = 400;   // should prefer idle p5/p6
    const PortResult r = sched.schedule(in);
    EXPECT_DOUBLE_EQ(r.portLoad[5] + r.portLoad[6], 400.0);
    EXPECT_DOUBLE_EQ(r.computeCycles, 400.0);  // still fma-bound
}

TEST(Ports, BroadwellFpAddRestriction)
{
    // On Broadwell FP adds pile onto port 1 only, creating the
    // core-bound bottleneck; Cascade Lake spreads them over two
    // ports.
    PortInput in;
    in.fmaUops = 1000;
    in.vecUops = 600;  // 300 FP-add class, 300 shuffle class

    const PortResult bdw =
        PortScheduler(broadwellConfig()).schedule(in);
    const PortResult clx =
        PortScheduler(cascadeLakeConfig()).schedule(in);
    EXPECT_GT(bdw.computeCycles, clx.computeCycles);
    EXPECT_DOUBLE_EQ(bdw.portLoad[1], 500.0 + 300.0);
    EXPECT_DOUBLE_EQ(clx.portLoad[1], 500.0 + 150.0);
}

TEST(Ports, TotalPortUopsConserved)
{
    PortScheduler sched(broadwellConfig());
    PortInput in;
    in.fmaUops = 123;
    in.vecUops = 456;
    in.scalarUops = 789;
    in.branchUops = 12;
    in.loadUops = 345;
    in.storeUops = 67;
    const PortResult r = sched.schedule(in);
    EXPECT_NEAR(r.totalPortUops(), 123 + 456 + 789 + 12 + 345 + 67,
                1e-6);
}

TEST(Ports, BusyDistributionIsValidTail)
{
    PortScheduler sched(broadwellConfig());
    PortInput in;
    in.fmaUops = 900;
    in.loadUops = 500;
    in.scalarUops = 300;
    const PortResult r = sched.schedule(in);

    double at_least[9];
    PortScheduler::busyDistribution(r, 1000.0, at_least);
    EXPECT_NEAR(at_least[0], 1.0, 1e-9);
    for (int k = 1; k <= 8; ++k) {
        EXPECT_LE(at_least[k], at_least[k - 1] + 1e-12);
        EXPECT_GE(at_least[k], 0.0);
    }
}

TEST(Ports, BusyDistributionSaturatedCore)
{
    PortScheduler sched(broadwellConfig());
    PortInput in;
    in.fmaUops = 2000;
    in.vecUops = 1000;
    in.loadUops = 2000;
    in.scalarUops = 1000;
    const PortResult r = sched.schedule(in);
    double at_least[9];
    // Cycles equal to the port bound: near-saturated machine.
    PortScheduler::busyDistribution(r, r.computeCycles, at_least);
    EXPECT_GT(at_least[3], 0.5);
}

TEST(Ports, BusyDistributionIdleMachine)
{
    PortScheduler sched(broadwellConfig());
    PortInput in;
    in.scalarUops = 10;
    const PortResult r = sched.schedule(in);
    double at_least[9];
    PortScheduler::busyDistribution(r, 10000.0, at_least);
    EXPECT_LT(at_least[3], 0.01);
}

TEST(Ports, ZeroCyclesNoNan)
{
    PortScheduler sched(broadwellConfig());
    const PortResult r = sched.schedule(PortInput{});
    double at_least[9];
    PortScheduler::busyDistribution(r, 0.0, at_least);
    for (int k = 1; k <= 8; ++k) {
        EXPECT_EQ(at_least[k], 0.0);
    }
}

}  // namespace
}  // namespace recstack
