/**
 * @file
 * CompiledNet planner tests: fusion-pass structure, liveness/arena
 * invariants (aliased buffers never live together; planned bytes
 * never exceed the naive per-blob sum), profile equivalence with the
 * interpreted executor, the RECSTACK_DISABLE_PLANNING escape hatch,
 * and workspace safety when interpreted runs follow compiled ones.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>

#include "graph/executor.h"
#include "models/model.h"
#include "ops/fused.h"
#include "workload/batch_generator.h"

namespace recstack {
namespace {

ModelOptions
testOptions()
{
    ModelOptions opts = tinyOptions();
    opts.tableScale = 0.01;
    return opts;
}

const ModelId kAllModels[] = {ModelId::kNCF, ModelId::kRM1, ModelId::kRM2,
                              ModelId::kRM3, ModelId::kWnD,
                              ModelId::kMTWnD, ModelId::kDIN,
                              ModelId::kDIEN};

/** Shape-only workspace with params + generator inputs declared. */
void
declareAll(const Model& model, int64_t batch, Workspace* ws)
{
    ws->setShapeOnly(true);
    model.declareParams(*ws);
    BatchGenerator gen(model.workload);
    gen.declare(*ws, batch);
}

size_t
countFusions(const CompiledNet& net, const std::string& kind)
{
    size_t n = 0;
    for (const FusionDecision& f : net.fusions()) {
        n += f.kind == kind ? 1 : 0;
    }
    return n;
}

TEST(CompiledNetFusion, NcfFoldsConcatAndActivations)
{
    const Model model = buildModel(ModelId::kNCF, testOptions());
    const auto net = CompiledNet::compile(model.net);
    EXPECT_LT(net->opCount(), net->originalOpCount());
    EXPECT_GE(countFusions(*net, "fc+act"), 1u);
    // NCF's tower merge: Concat({gmf, mlp_out}) feeding the top FC
    // must fold into a two-block FusedFC.
    EXPECT_GE(countFusions(*net, "concat+fc"), 1u);
    bool multi_block = false;
    for (const Operator* op : net->ops()) {
        if (const auto* ff = dynamic_cast<const FusedFCOp*>(op)) {
            multi_block |= ff->numBlocks() >= 2;
        }
    }
    EXPECT_TRUE(multi_block);
}

TEST(CompiledNetFusion, DienFusesEveryUnrolledStep)
{
    const ModelOptions opts = testOptions();
    const Model model = buildModel(ModelId::kDIEN, opts);
    const auto net = CompiledNet::compile(model.net);
    // Layer 1 is a plain GRU, layer 2 an AUGRU; one fused step op per
    // timestep each.
    EXPECT_EQ(countFusions(*net, "gru-step"),
              static_cast<size_t>(opts.dienSteps));
    EXPECT_EQ(countFusions(*net, "augru-step"),
              static_cast<size_t>(opts.dienSteps));
    size_t steps = 0;
    size_t att_steps = 0;
    for (const Operator* op : net->ops()) {
        if (const auto* gs = dynamic_cast<const GRUStepOp*>(op)) {
            ++steps;
            att_steps += gs->attentional() ? 1 : 0;
        }
    }
    EXPECT_EQ(steps, static_cast<size_t>(2 * opts.dienSteps));
    EXPECT_EQ(att_steps, static_cast<size_t>(opts.dienSteps));
}

TEST(CompiledNetFusion, FusionOffPreservesSchedule)
{
    const Model model = buildModel(ModelId::kDIEN, testOptions());
    CompileOptions opts;
    opts.fuseOps = false;
    const auto net = CompiledNet::compile(model.net, opts);
    ASSERT_EQ(net->opCount(), net->originalOpCount());
    EXPECT_TRUE(net->fusions().empty());
    for (size_t i = 0; i < net->opCount(); ++i) {
        EXPECT_EQ(net->ops()[i], model.net.ops()[i].get());
    }
}

TEST(CompiledNetPlan, AliasedBlobsNeverLiveTogether)
{
    for (ModelId id : kAllModels) {
        const Model model = buildModel(id, testOptions());
        const auto net = CompiledNet::compile(model.net);
        ASSERT_TRUE(net->planningEnabled());
        for (int64_t batch : {int64_t{1}, int64_t{64}, int64_t{1024}}) {
            Workspace ws;
            declareAll(model, batch, &ws);
            const NetPlan& plan = net->plan(ws, batch);
            const auto& blobs = net->blobs();

            size_t in_arena = 0;
            for (size_t a = 0; a < blobs.size(); ++a) {
                if (plan.offsets[a] == kNoArenaOffset) {
                    continue;
                }
                ++in_arena;
                ASSERT_EQ(blobs[a].role, BlobRole::kActivation);
                ASSERT_LE(plan.offsets[a] + plan.bytes[a],
                          plan.arenaBytes);
                for (size_t b = 0; b < a; ++b) {
                    if (plan.offsets[b] == kNoArenaOffset) {
                        continue;
                    }
                    const bool bytes_overlap =
                        plan.offsets[a] <
                            plan.offsets[b] + plan.bytes[b] &&
                        plan.offsets[b] < plan.offsets[a] + plan.bytes[a];
                    const bool lives_overlap =
                        blobs[a].def <= blobs[b].lastUse &&
                        blobs[b].def <= blobs[a].lastUse;
                    EXPECT_FALSE(bytes_overlap && lives_overlap)
                        << model.name << " b" << batch << ": '"
                        << blobs[a].name << "' and '" << blobs[b].name
                        << "' share arena bytes while both live";
                }
            }
            EXPECT_GT(in_arena, 0u) << model.name;
            // Planning must never cost more than per-blob allocation,
            // and fusion alone must never add activations.
            EXPECT_LE(plan.arenaBytes, plan.fusedActivationBytes)
                << model.name << " b" << batch;
            EXPECT_LE(plan.fusedActivationBytes,
                      plan.naiveActivationBytes)
                << model.name << " b" << batch;
        }
    }
}

TEST(CompiledNetPlan, ServingModelsMeetTheSixtyPercentTarget)
{
    // The acceptance bar of the memory planner: RM2 and DIEN fit in
    // <= 60% of the naive sum at serving batch sizes.
    for (ModelId id : {ModelId::kRM2, ModelId::kDIEN}) {
        const Model model = buildModel(id, testOptions());
        const auto net = CompiledNet::compile(model.net);
        Workspace ws;
        declareAll(model, 256, &ws);
        const NetPlan& plan = net->plan(ws, 256);
        EXPECT_LE(static_cast<double>(plan.arenaBytes),
                  0.60 * static_cast<double>(plan.naiveActivationBytes))
            << model.name;
    }
}

TEST(CompiledNetPlan, PlansAreMemoizedPerBatch)
{
    const Model model = buildModel(ModelId::kRM1, testOptions());
    const auto net = CompiledNet::compile(model.net);
    Workspace ws;
    declareAll(model, 64, &ws);
    const NetPlan* p64 = &net->plan(ws, 64);
    EXPECT_EQ(p64, &net->plan(ws, 64));

    Workspace ws2;
    declareAll(model, 128, &ws2);
    const NetPlan* p128 = &net->plan(ws2, 128);
    EXPECT_NE(p64, p128);
    EXPECT_EQ(p128->batch, 128);
}

TEST(CompiledNetPlan, DisablePlanningEnvHatch)
{
    const Model model = buildModel(ModelId::kNCF, testOptions());
    ASSERT_EQ(setenv("RECSTACK_DISABLE_PLANNING", "1", 1), 0);
    const auto hatched = CompiledNet::compile(model.net);
    ASSERT_EQ(unsetenv("RECSTACK_DISABLE_PLANNING"), 0);
    EXPECT_FALSE(hatched->planningEnabled());

    Workspace ws;
    declareAll(model, 64, &ws);
    const NetPlan& plan = hatched->plan(ws, 64);
    EXPECT_EQ(plan.arenaBytes, 0u);
    for (size_t offset : plan.offsets) {
        EXPECT_EQ(offset, kNoArenaOffset);
    }
    // Fusion still applies; only aliasing is off.
    EXPECT_LT(hatched->opCount(), hatched->originalOpCount());
}

TEST(CompiledNetPlan, CompileCountIncrements)
{
    const Model model = buildModel(ModelId::kNCF, testOptions());
    const uint64_t before = CompiledNet::compileCount();
    const auto net = CompiledNet::compile(model.net);
    (void)net;
    EXPECT_EQ(CompiledNet::compileCount(), before + 1);
}

TEST(CompiledNetProfiles, UnfusedPlanMatchesInterpretedProfiles)
{
    // The characterizer profiles through an unfused compilation; its
    // cached profiles must be indistinguishable from an interpreted
    // kProfileOnly run (the golden-figure contract).
    for (ModelId id : kAllModels) {
        const Model model = buildModel(id, testOptions());
        Workspace ws;
        declareAll(model, 64, &ws);
        const NetExecResult legacy =
            Executor::run(model.net, ws, ExecMode::kProfileOnly);

        CompileOptions opts;
        opts.fuseOps = false;
        const auto net = CompiledNet::compile(model.net, opts);
        const NetPlan& plan = net->plan(ws, 64);

        ASSERT_EQ(plan.profiles.size(), legacy.records.size());
        for (size_t i = 0; i < plan.profiles.size(); ++i) {
            const KernelProfile& a = plan.profiles[i];
            const KernelProfile& b = legacy.records[i].profile;
            EXPECT_EQ(a.opType, b.opType) << model.name << " op " << i;
            EXPECT_EQ(a.opName, b.opName);
            EXPECT_EQ(a.fmaFlops, b.fmaFlops);
            EXPECT_EQ(a.vecElemOps, b.vecElemOps);
            EXPECT_EQ(a.scalarOps, b.scalarOps);
            EXPECT_EQ(a.codeRegion, b.codeRegion);
            EXPECT_EQ(a.codeFootprintBytes, b.codeFootprintBytes);
            EXPECT_EQ(a.bytesRead(), b.bytesRead());
            EXPECT_EQ(a.bytesWritten(), b.bytesWritten());
            EXPECT_EQ(a.totalBranches(), b.totalBranches());
            EXPECT_EQ(a.streams.size(), b.streams.size());
        }
    }
}

TEST(CompiledNetExec, InterpretedRunAfterCompiledRunStaysSafe)
{
    // A compiled run leaves arena views in the workspace. A later
    // interpreted run on the same workspace must not write through
    // those stale aliased views (Workspace::ensure never reuses a
    // view), and must produce the same numbers.
    const Model model = buildModel(ModelId::kNCF, testOptions());
    auto net = CompiledNet::compile(model.net);

    Workspace ws;
    Arena arena;
    model.initParams(ws);
    BatchGenerator gen(model.workload, /*seed=*/7);
    gen.materialize(ws, 32);
    ExecOptions opts;
    opts.mode = ExecMode::kNumericOnly;
    Executor::run(*net, ws, arena, 32, opts);
    const Tensor compiled_out = ws.get(model.outputBlob);
    // Pick any arena-placed activation: after the compiled run it is
    // a view; after the interpreted run it must be owned again.
    const NetPlan& plan = net->plan(ws, 32);
    std::string arena_blob;
    for (size_t i = 0; i < net->blobs().size(); ++i) {
        if (plan.offsets[i] != kNoArenaOffset) {
            arena_blob = net->blobs()[i].name;
            break;
        }
    }
    ASSERT_FALSE(arena_blob.empty());
    EXPECT_FALSE(ws.get(arena_blob).ownsStorage());

    Executor::run(model.net, ws, opts);
    const Tensor& interpreted_out = ws.get(model.outputBlob);
    EXPECT_TRUE(ws.get(arena_blob).ownsStorage());
    ASSERT_EQ(compiled_out.shape(), interpreted_out.shape());
    EXPECT_EQ(std::memcmp(compiled_out.data<float>(),
                          interpreted_out.data<float>(),
                          compiled_out.byteSize()),
              0);
}

TEST(CompiledNetExec, ProfileOnlyReturnsCachedProfilesWithoutBinding)
{
    const Model model = buildModel(ModelId::kRM1, testOptions());
    auto net = CompiledNet::compile(model.net);
    Workspace ws;
    declareAll(model, 64, &ws);
    Arena arena;
    ExecOptions opts;
    opts.mode = ExecMode::kProfileOnly;
    const NetExecResult result = Executor::run(*net, ws, arena, 64, opts);
    EXPECT_EQ(result.hostSeconds, 0.0);
    EXPECT_EQ(arena.capacity(), 0u);
    ASSERT_EQ(result.records.size(), net->opCount());
    for (const OpExecRecord& rec : result.records) {
        EXPECT_EQ(rec.hostSeconds, 0.0);
        EXPECT_FALSE(rec.profile.opType.empty());
    }
}

}  // namespace
}  // namespace recstack
