file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_vectorization.dir/bench_fig09_vectorization.cpp.o"
  "CMakeFiles/bench_fig09_vectorization.dir/bench_fig09_vectorization.cpp.o.d"
  "bench_fig09_vectorization"
  "bench_fig09_vectorization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_vectorization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
