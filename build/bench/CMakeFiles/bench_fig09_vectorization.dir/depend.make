# Empty dependencies file for bench_fig09_vectorization.
# This may be replaced when dependencies are built.
