# Empty dependencies file for bench_fig10_backend.
# This may be replaced when dependencies are built.
