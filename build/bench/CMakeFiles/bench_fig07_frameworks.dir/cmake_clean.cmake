file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_frameworks.dir/bench_fig07_frameworks.cpp.o"
  "CMakeFiles/bench_fig07_frameworks.dir/bench_fig07_frameworks.cpp.o.d"
  "bench_fig07_frameworks"
  "bench_fig07_frameworks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_frameworks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
