# Empty dependencies file for bench_fig07_frameworks.
# This may be replaced when dependencies are built.
