file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_roofline.dir/bench_ext_roofline.cpp.o"
  "CMakeFiles/bench_ext_roofline.dir/bench_ext_roofline.cpp.o.d"
  "bench_ext_roofline"
  "bench_ext_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
