# Empty dependencies file for bench_fig15_branch.
# This may be replaced when dependencies are built.
