file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_branch.dir/bench_fig15_branch.cpp.o"
  "CMakeFiles/bench_fig15_branch.dir/bench_fig15_branch.cpp.o.d"
  "bench_fig15_branch"
  "bench_fig15_branch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
