file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_dsb.dir/bench_ablate_dsb.cpp.o"
  "CMakeFiles/bench_ablate_dsb.dir/bench_ablate_dsb.cpp.o.d"
  "bench_ablate_dsb"
  "bench_ablate_dsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_dsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
