# Empty compiler generated dependencies file for bench_ablate_dsb.
# This may be replaced when dependencies are built.
