file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_optimal.dir/bench_fig05_optimal.cpp.o"
  "CMakeFiles/bench_fig05_optimal.dir/bench_fig05_optimal.cpp.o.d"
  "bench_fig05_optimal"
  "bench_fig05_optimal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_optimal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
