# Empty compiler generated dependencies file for bench_fig13_decoder.
# This may be replaced when dependencies are built.
