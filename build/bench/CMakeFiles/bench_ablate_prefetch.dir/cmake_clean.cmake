file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_prefetch.dir/bench_ablate_prefetch.cpp.o"
  "CMakeFiles/bench_ablate_prefetch.dir/bench_ablate_prefetch.cpp.o.d"
  "bench_ablate_prefetch"
  "bench_ablate_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
