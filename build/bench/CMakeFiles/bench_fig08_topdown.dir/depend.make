# Empty dependencies file for bench_fig08_topdown.
# This may be replaced when dependencies are built.
