file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_datacomm.dir/bench_fig04_datacomm.cpp.o"
  "CMakeFiles/bench_fig04_datacomm.dir/bench_fig04_datacomm.cpp.o.d"
  "bench_fig04_datacomm"
  "bench_fig04_datacomm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_datacomm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
