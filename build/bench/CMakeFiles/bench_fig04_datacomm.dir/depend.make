# Empty dependencies file for bench_fig04_datacomm.
# This may be replaced when dependencies are built.
