# Empty dependencies file for bench_fig03_speedup.
# This may be replaced when dependencies are built.
