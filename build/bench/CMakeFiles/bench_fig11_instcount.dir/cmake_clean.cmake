file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_instcount.dir/bench_fig11_instcount.cpp.o"
  "CMakeFiles/bench_fig11_instcount.dir/bench_fig11_instcount.cpp.o.d"
  "bench_fig11_instcount"
  "bench_fig11_instcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_instcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
