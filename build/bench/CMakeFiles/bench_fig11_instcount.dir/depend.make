# Empty dependencies file for bench_fig11_instcount.
# This may be replaced when dependencies are built.
