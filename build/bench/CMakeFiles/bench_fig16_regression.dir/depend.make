# Empty dependencies file for bench_fig16_regression.
# This may be replaced when dependencies are built.
