# Empty dependencies file for bench_ablate_inclusion.
# This may be replaced when dependencies are built.
