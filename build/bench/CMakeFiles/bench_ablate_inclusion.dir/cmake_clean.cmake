file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_inclusion.dir/bench_ablate_inclusion.cpp.o"
  "CMakeFiles/bench_ablate_inclusion.dir/bench_ablate_inclusion.cpp.o.d"
  "bench_ablate_inclusion"
  "bench_ablate_inclusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_inclusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
