# Empty dependencies file for bench_fig06_opbreakdown.
# This may be replaced when dependencies are built.
