file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_opbreakdown.dir/bench_fig06_opbreakdown.cpp.o"
  "CMakeFiles/bench_fig06_opbreakdown.dir/bench_fig06_opbreakdown.cpp.o.d"
  "bench_fig06_opbreakdown"
  "bench_fig06_opbreakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_opbreakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
