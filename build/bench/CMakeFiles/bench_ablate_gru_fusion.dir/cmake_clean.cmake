file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_gru_fusion.dir/bench_ablate_gru_fusion.cpp.o"
  "CMakeFiles/bench_ablate_gru_fusion.dir/bench_ablate_gru_fusion.cpp.o.d"
  "bench_ablate_gru_fusion"
  "bench_ablate_gru_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_gru_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
