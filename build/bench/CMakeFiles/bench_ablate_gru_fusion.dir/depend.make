# Empty dependencies file for bench_ablate_gru_fusion.
# This may be replaced when dependencies are built.
