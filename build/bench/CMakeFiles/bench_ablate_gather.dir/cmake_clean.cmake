file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_gather.dir/bench_ablate_gather.cpp.o"
  "CMakeFiles/bench_ablate_gather.dir/bench_ablate_gather.cpp.o.d"
  "bench_ablate_gather"
  "bench_ablate_gather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_gather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
