# Empty dependencies file for bench_ablate_gather.
# This may be replaced when dependencies are built.
