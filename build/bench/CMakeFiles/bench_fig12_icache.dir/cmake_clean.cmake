file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_icache.dir/bench_fig12_icache.cpp.o"
  "CMakeFiles/bench_fig12_icache.dir/bench_fig12_icache.cpp.o.d"
  "bench_fig12_icache"
  "bench_fig12_icache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_icache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
