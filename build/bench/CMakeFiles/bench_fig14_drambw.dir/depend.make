# Empty dependencies file for bench_fig14_drambw.
# This may be replaced when dependencies are built.
