file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_drambw.dir/bench_fig14_drambw.cpp.o"
  "CMakeFiles/bench_fig14_drambw.dir/bench_fig14_drambw.cpp.o.d"
  "bench_fig14_drambw"
  "bench_fig14_drambw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_drambw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
