file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_zipf.dir/bench_ablate_zipf.cpp.o"
  "CMakeFiles/bench_ablate_zipf.dir/bench_ablate_zipf.cpp.o.d"
  "bench_ablate_zipf"
  "bench_ablate_zipf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_zipf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
