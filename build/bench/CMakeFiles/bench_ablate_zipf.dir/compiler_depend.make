# Empty compiler generated dependencies file for bench_ablate_zipf.
# This may be replaced when dependencies are built.
