file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_serving.dir/bench_ext_serving.cpp.o"
  "CMakeFiles/bench_ext_serving.dir/bench_ext_serving.cpp.o.d"
  "bench_ext_serving"
  "bench_ext_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
