file(REMOVE_RECURSE
  "CMakeFiles/recstack_cli.dir/recstack_cli.cpp.o"
  "CMakeFiles/recstack_cli.dir/recstack_cli.cpp.o.d"
  "recstack"
  "recstack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recstack_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
