# Empty compiler generated dependencies file for recstack_cli.
# This may be replaced when dependencies are built.
