# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_models "/root/repo/build/tools/recstack" "models")
set_tests_properties(cli_models PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_platforms "/root/repo/build/tools/recstack" "platforms")
set_tests_properties(cli_platforms PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run "/root/repo/build/tools/recstack" "run" "RM1" "16")
set_tests_properties(cli_run PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_topdown "/root/repo/build/tools/recstack" "topdown" "NCF" "16" "clx")
set_tests_properties(cli_topdown PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_schedule "/root/repo/build/tools/recstack" "schedule" "WnD" "50")
set_tests_properties(cli_schedule PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage "/root/repo/build/tools/recstack")
set_tests_properties(cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_record "/root/repo/build/tools/recstack" "record" "RM1" "16" "/root/repo/build/rm1_test.trace")
set_tests_properties(cli_record PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_replay "/root/repo/build/tools/recstack" "replay" "/root/repo/build/rm1_test.trace" "Broadwell")
set_tests_properties(cli_replay PROPERTIES  DEPENDS "cli_record" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
