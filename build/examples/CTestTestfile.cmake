# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "NCF" "8")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "900" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_topdown "/root/repo/build/examples/topdown_deep_dive" "RM1" "8" "clx")
set_tests_properties(example_topdown PROPERTIES  TIMEOUT "900" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_explorer "/root/repo/build/examples/platform_explorer" "NCF")
set_tests_properties(example_explorer PROPERTIES  TIMEOUT "900" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_scheduler "/root/repo/build/examples/datacenter_scheduler" "NCF" "5" "50")
set_tests_properties(example_scheduler PROPERTIES  TIMEOUT "900" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
