file(REMOVE_RECURSE
  "CMakeFiles/topdown_deep_dive.dir/topdown_deep_dive.cpp.o"
  "CMakeFiles/topdown_deep_dive.dir/topdown_deep_dive.cpp.o.d"
  "topdown_deep_dive"
  "topdown_deep_dive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topdown_deep_dive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
