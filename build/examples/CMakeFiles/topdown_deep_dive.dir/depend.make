# Empty dependencies file for topdown_deep_dive.
# This may be replaced when dependencies are built.
