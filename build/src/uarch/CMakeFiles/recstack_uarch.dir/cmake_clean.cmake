file(REMOVE_RECURSE
  "CMakeFiles/recstack_uarch.dir/branch_predictor.cc.o"
  "CMakeFiles/recstack_uarch.dir/branch_predictor.cc.o.d"
  "CMakeFiles/recstack_uarch.dir/cache.cc.o"
  "CMakeFiles/recstack_uarch.dir/cache.cc.o.d"
  "CMakeFiles/recstack_uarch.dir/cache_hierarchy.cc.o"
  "CMakeFiles/recstack_uarch.dir/cache_hierarchy.cc.o.d"
  "CMakeFiles/recstack_uarch.dir/counters.cc.o"
  "CMakeFiles/recstack_uarch.dir/counters.cc.o.d"
  "CMakeFiles/recstack_uarch.dir/cpu_model.cc.o"
  "CMakeFiles/recstack_uarch.dir/cpu_model.cc.o.d"
  "CMakeFiles/recstack_uarch.dir/decoder.cc.o"
  "CMakeFiles/recstack_uarch.dir/decoder.cc.o.d"
  "CMakeFiles/recstack_uarch.dir/dram.cc.o"
  "CMakeFiles/recstack_uarch.dir/dram.cc.o.d"
  "CMakeFiles/recstack_uarch.dir/exec_ports.cc.o"
  "CMakeFiles/recstack_uarch.dir/exec_ports.cc.o.d"
  "CMakeFiles/recstack_uarch.dir/multicore.cc.o"
  "CMakeFiles/recstack_uarch.dir/multicore.cc.o.d"
  "librecstack_uarch.a"
  "librecstack_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recstack_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
