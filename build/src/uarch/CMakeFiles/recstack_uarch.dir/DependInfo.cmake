
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uarch/branch_predictor.cc" "src/uarch/CMakeFiles/recstack_uarch.dir/branch_predictor.cc.o" "gcc" "src/uarch/CMakeFiles/recstack_uarch.dir/branch_predictor.cc.o.d"
  "/root/repo/src/uarch/cache.cc" "src/uarch/CMakeFiles/recstack_uarch.dir/cache.cc.o" "gcc" "src/uarch/CMakeFiles/recstack_uarch.dir/cache.cc.o.d"
  "/root/repo/src/uarch/cache_hierarchy.cc" "src/uarch/CMakeFiles/recstack_uarch.dir/cache_hierarchy.cc.o" "gcc" "src/uarch/CMakeFiles/recstack_uarch.dir/cache_hierarchy.cc.o.d"
  "/root/repo/src/uarch/counters.cc" "src/uarch/CMakeFiles/recstack_uarch.dir/counters.cc.o" "gcc" "src/uarch/CMakeFiles/recstack_uarch.dir/counters.cc.o.d"
  "/root/repo/src/uarch/cpu_model.cc" "src/uarch/CMakeFiles/recstack_uarch.dir/cpu_model.cc.o" "gcc" "src/uarch/CMakeFiles/recstack_uarch.dir/cpu_model.cc.o.d"
  "/root/repo/src/uarch/decoder.cc" "src/uarch/CMakeFiles/recstack_uarch.dir/decoder.cc.o" "gcc" "src/uarch/CMakeFiles/recstack_uarch.dir/decoder.cc.o.d"
  "/root/repo/src/uarch/dram.cc" "src/uarch/CMakeFiles/recstack_uarch.dir/dram.cc.o" "gcc" "src/uarch/CMakeFiles/recstack_uarch.dir/dram.cc.o.d"
  "/root/repo/src/uarch/exec_ports.cc" "src/uarch/CMakeFiles/recstack_uarch.dir/exec_ports.cc.o" "gcc" "src/uarch/CMakeFiles/recstack_uarch.dir/exec_ports.cc.o.d"
  "/root/repo/src/uarch/multicore.cc" "src/uarch/CMakeFiles/recstack_uarch.dir/multicore.cc.o" "gcc" "src/uarch/CMakeFiles/recstack_uarch.dir/multicore.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/recstack_common.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/recstack_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/recstack_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
