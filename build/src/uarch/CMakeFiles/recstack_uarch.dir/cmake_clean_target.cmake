file(REMOVE_RECURSE
  "librecstack_uarch.a"
)
