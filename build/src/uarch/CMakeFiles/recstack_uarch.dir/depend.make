# Empty dependencies file for recstack_uarch.
# This may be replaced when dependencies are built.
