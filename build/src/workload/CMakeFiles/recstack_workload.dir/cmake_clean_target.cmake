file(REMOVE_RECURSE
  "librecstack_workload.a"
)
