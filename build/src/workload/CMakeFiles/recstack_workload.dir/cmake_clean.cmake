file(REMOVE_RECURSE
  "CMakeFiles/recstack_workload.dir/batch_generator.cc.o"
  "CMakeFiles/recstack_workload.dir/batch_generator.cc.o.d"
  "librecstack_workload.a"
  "librecstack_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recstack_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
