# Empty compiler generated dependencies file for recstack_workload.
# This may be replaced when dependencies are built.
