file(REMOVE_RECURSE
  "CMakeFiles/recstack_tensor.dir/tensor.cc.o"
  "CMakeFiles/recstack_tensor.dir/tensor.cc.o.d"
  "librecstack_tensor.a"
  "librecstack_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recstack_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
