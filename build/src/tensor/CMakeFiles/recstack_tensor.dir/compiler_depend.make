# Empty compiler generated dependencies file for recstack_tensor.
# This may be replaced when dependencies are built.
