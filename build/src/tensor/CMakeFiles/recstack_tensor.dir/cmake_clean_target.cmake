file(REMOVE_RECURSE
  "librecstack_tensor.a"
)
