file(REMOVE_RECURSE
  "CMakeFiles/recstack_ops.dir/concat.cc.o"
  "CMakeFiles/recstack_ops.dir/concat.cc.o.d"
  "CMakeFiles/recstack_ops.dir/elementwise.cc.o"
  "CMakeFiles/recstack_ops.dir/elementwise.cc.o.d"
  "CMakeFiles/recstack_ops.dir/embedding.cc.o"
  "CMakeFiles/recstack_ops.dir/embedding.cc.o.d"
  "CMakeFiles/recstack_ops.dir/fc.cc.o"
  "CMakeFiles/recstack_ops.dir/fc.cc.o.d"
  "CMakeFiles/recstack_ops.dir/gru.cc.o"
  "CMakeFiles/recstack_ops.dir/gru.cc.o.d"
  "CMakeFiles/recstack_ops.dir/matmul.cc.o"
  "CMakeFiles/recstack_ops.dir/matmul.cc.o.d"
  "CMakeFiles/recstack_ops.dir/operator.cc.o"
  "CMakeFiles/recstack_ops.dir/operator.cc.o.d"
  "CMakeFiles/recstack_ops.dir/reshape.cc.o"
  "CMakeFiles/recstack_ops.dir/reshape.cc.o.d"
  "CMakeFiles/recstack_ops.dir/workspace.cc.o"
  "CMakeFiles/recstack_ops.dir/workspace.cc.o.d"
  "librecstack_ops.a"
  "librecstack_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recstack_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
