file(REMOVE_RECURSE
  "librecstack_ops.a"
)
