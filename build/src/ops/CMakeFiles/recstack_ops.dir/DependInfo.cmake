
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ops/concat.cc" "src/ops/CMakeFiles/recstack_ops.dir/concat.cc.o" "gcc" "src/ops/CMakeFiles/recstack_ops.dir/concat.cc.o.d"
  "/root/repo/src/ops/elementwise.cc" "src/ops/CMakeFiles/recstack_ops.dir/elementwise.cc.o" "gcc" "src/ops/CMakeFiles/recstack_ops.dir/elementwise.cc.o.d"
  "/root/repo/src/ops/embedding.cc" "src/ops/CMakeFiles/recstack_ops.dir/embedding.cc.o" "gcc" "src/ops/CMakeFiles/recstack_ops.dir/embedding.cc.o.d"
  "/root/repo/src/ops/fc.cc" "src/ops/CMakeFiles/recstack_ops.dir/fc.cc.o" "gcc" "src/ops/CMakeFiles/recstack_ops.dir/fc.cc.o.d"
  "/root/repo/src/ops/gru.cc" "src/ops/CMakeFiles/recstack_ops.dir/gru.cc.o" "gcc" "src/ops/CMakeFiles/recstack_ops.dir/gru.cc.o.d"
  "/root/repo/src/ops/matmul.cc" "src/ops/CMakeFiles/recstack_ops.dir/matmul.cc.o" "gcc" "src/ops/CMakeFiles/recstack_ops.dir/matmul.cc.o.d"
  "/root/repo/src/ops/operator.cc" "src/ops/CMakeFiles/recstack_ops.dir/operator.cc.o" "gcc" "src/ops/CMakeFiles/recstack_ops.dir/operator.cc.o.d"
  "/root/repo/src/ops/reshape.cc" "src/ops/CMakeFiles/recstack_ops.dir/reshape.cc.o" "gcc" "src/ops/CMakeFiles/recstack_ops.dir/reshape.cc.o.d"
  "/root/repo/src/ops/workspace.cc" "src/ops/CMakeFiles/recstack_ops.dir/workspace.cc.o" "gcc" "src/ops/CMakeFiles/recstack_ops.dir/workspace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/recstack_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/recstack_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/recstack_profile.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
