# Empty dependencies file for recstack_ops.
# This may be replaced when dependencies are built.
