file(REMOVE_RECURSE
  "librecstack_topdown.a"
)
