file(REMOVE_RECURSE
  "CMakeFiles/recstack_topdown.dir/topdown.cc.o"
  "CMakeFiles/recstack_topdown.dir/topdown.cc.o.d"
  "librecstack_topdown.a"
  "librecstack_topdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recstack_topdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
