# Empty dependencies file for recstack_topdown.
# This may be replaced when dependencies are built.
