
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topdown/topdown.cc" "src/topdown/CMakeFiles/recstack_topdown.dir/topdown.cc.o" "gcc" "src/topdown/CMakeFiles/recstack_topdown.dir/topdown.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/uarch/CMakeFiles/recstack_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/recstack_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/recstack_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/recstack_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
