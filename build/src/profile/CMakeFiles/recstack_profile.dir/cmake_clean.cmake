file(REMOVE_RECURSE
  "CMakeFiles/recstack_profile.dir/kernel_profile.cc.o"
  "CMakeFiles/recstack_profile.dir/kernel_profile.cc.o.d"
  "librecstack_profile.a"
  "librecstack_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recstack_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
