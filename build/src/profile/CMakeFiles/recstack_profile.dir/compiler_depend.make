# Empty compiler generated dependencies file for recstack_profile.
# This may be replaced when dependencies are built.
