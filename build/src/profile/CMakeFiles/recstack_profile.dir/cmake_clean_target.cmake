file(REMOVE_RECURSE
  "librecstack_profile.a"
)
