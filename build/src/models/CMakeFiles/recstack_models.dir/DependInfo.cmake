
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/builder_util.cc" "src/models/CMakeFiles/recstack_models.dir/builder_util.cc.o" "gcc" "src/models/CMakeFiles/recstack_models.dir/builder_util.cc.o.d"
  "/root/repo/src/models/builders_attention.cc" "src/models/CMakeFiles/recstack_models.dir/builders_attention.cc.o" "gcc" "src/models/CMakeFiles/recstack_models.dir/builders_attention.cc.o.d"
  "/root/repo/src/models/builders_dlrm.cc" "src/models/CMakeFiles/recstack_models.dir/builders_dlrm.cc.o" "gcc" "src/models/CMakeFiles/recstack_models.dir/builders_dlrm.cc.o.d"
  "/root/repo/src/models/builders_ncf_wnd.cc" "src/models/CMakeFiles/recstack_models.dir/builders_ncf_wnd.cc.o" "gcc" "src/models/CMakeFiles/recstack_models.dir/builders_ncf_wnd.cc.o.d"
  "/root/repo/src/models/custom.cc" "src/models/CMakeFiles/recstack_models.dir/custom.cc.o" "gcc" "src/models/CMakeFiles/recstack_models.dir/custom.cc.o.d"
  "/root/repo/src/models/model.cc" "src/models/CMakeFiles/recstack_models.dir/model.cc.o" "gcc" "src/models/CMakeFiles/recstack_models.dir/model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/recstack_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/recstack_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/ops/CMakeFiles/recstack_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/recstack_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/recstack_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/recstack_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
