file(REMOVE_RECURSE
  "CMakeFiles/recstack_models.dir/builder_util.cc.o"
  "CMakeFiles/recstack_models.dir/builder_util.cc.o.d"
  "CMakeFiles/recstack_models.dir/builders_attention.cc.o"
  "CMakeFiles/recstack_models.dir/builders_attention.cc.o.d"
  "CMakeFiles/recstack_models.dir/builders_dlrm.cc.o"
  "CMakeFiles/recstack_models.dir/builders_dlrm.cc.o.d"
  "CMakeFiles/recstack_models.dir/builders_ncf_wnd.cc.o"
  "CMakeFiles/recstack_models.dir/builders_ncf_wnd.cc.o.d"
  "CMakeFiles/recstack_models.dir/custom.cc.o"
  "CMakeFiles/recstack_models.dir/custom.cc.o.d"
  "CMakeFiles/recstack_models.dir/model.cc.o"
  "CMakeFiles/recstack_models.dir/model.cc.o.d"
  "librecstack_models.a"
  "librecstack_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recstack_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
