file(REMOVE_RECURSE
  "librecstack_models.a"
)
