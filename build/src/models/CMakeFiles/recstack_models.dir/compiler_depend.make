# Empty compiler generated dependencies file for recstack_models.
# This may be replaced when dependencies are built.
