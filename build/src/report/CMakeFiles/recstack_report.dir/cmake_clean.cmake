file(REMOVE_RECURSE
  "CMakeFiles/recstack_report.dir/chart.cc.o"
  "CMakeFiles/recstack_report.dir/chart.cc.o.d"
  "CMakeFiles/recstack_report.dir/csv.cc.o"
  "CMakeFiles/recstack_report.dir/csv.cc.o.d"
  "CMakeFiles/recstack_report.dir/table.cc.o"
  "CMakeFiles/recstack_report.dir/table.cc.o.d"
  "librecstack_report.a"
  "librecstack_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recstack_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
