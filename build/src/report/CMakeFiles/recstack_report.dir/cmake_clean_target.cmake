file(REMOVE_RECURSE
  "librecstack_report.a"
)
