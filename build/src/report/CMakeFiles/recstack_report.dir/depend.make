# Empty dependencies file for recstack_report.
# This may be replaced when dependencies are built.
