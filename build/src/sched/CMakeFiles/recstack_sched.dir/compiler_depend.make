# Empty compiler generated dependencies file for recstack_sched.
# This may be replaced when dependencies are built.
