file(REMOVE_RECURSE
  "librecstack_sched.a"
)
