file(REMOVE_RECURSE
  "CMakeFiles/recstack_sched.dir/query_scheduler.cc.o"
  "CMakeFiles/recstack_sched.dir/query_scheduler.cc.o.d"
  "CMakeFiles/recstack_sched.dir/serving_sim.cc.o"
  "CMakeFiles/recstack_sched.dir/serving_sim.cc.o.d"
  "librecstack_sched.a"
  "librecstack_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recstack_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
