file(REMOVE_RECURSE
  "librecstack_graph.a"
)
