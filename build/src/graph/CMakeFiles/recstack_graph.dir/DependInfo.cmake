
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/executor.cc" "src/graph/CMakeFiles/recstack_graph.dir/executor.cc.o" "gcc" "src/graph/CMakeFiles/recstack_graph.dir/executor.cc.o.d"
  "/root/repo/src/graph/net.cc" "src/graph/CMakeFiles/recstack_graph.dir/net.cc.o" "gcc" "src/graph/CMakeFiles/recstack_graph.dir/net.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ops/CMakeFiles/recstack_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/recstack_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/recstack_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/recstack_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
