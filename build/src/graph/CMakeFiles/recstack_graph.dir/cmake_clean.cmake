file(REMOVE_RECURSE
  "CMakeFiles/recstack_graph.dir/executor.cc.o"
  "CMakeFiles/recstack_graph.dir/executor.cc.o.d"
  "CMakeFiles/recstack_graph.dir/net.cc.o"
  "CMakeFiles/recstack_graph.dir/net.cc.o.d"
  "librecstack_graph.a"
  "librecstack_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recstack_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
