# Empty dependencies file for recstack_graph.
# This may be replaced when dependencies are built.
