# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("tensor")
subdirs("profile")
subdirs("ops")
subdirs("graph")
subdirs("workload")
subdirs("models")
subdirs("framework")
subdirs("platform")
subdirs("uarch")
subdirs("gpu")
subdirs("topdown")
subdirs("analysis")
subdirs("report")
subdirs("trace")
subdirs("core")
subdirs("sched")
