file(REMOVE_RECURSE
  "librecstack_platform.a"
)
