# Empty dependencies file for recstack_platform.
# This may be replaced when dependencies are built.
