file(REMOVE_RECURSE
  "CMakeFiles/recstack_platform.dir/platform.cc.o"
  "CMakeFiles/recstack_platform.dir/platform.cc.o.d"
  "librecstack_platform.a"
  "librecstack_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recstack_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
