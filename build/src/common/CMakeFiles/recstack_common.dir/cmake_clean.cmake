file(REMOVE_RECURSE
  "CMakeFiles/recstack_common.dir/logging.cc.o"
  "CMakeFiles/recstack_common.dir/logging.cc.o.d"
  "CMakeFiles/recstack_common.dir/rng.cc.o"
  "CMakeFiles/recstack_common.dir/rng.cc.o.d"
  "CMakeFiles/recstack_common.dir/stats.cc.o"
  "CMakeFiles/recstack_common.dir/stats.cc.o.d"
  "librecstack_common.a"
  "librecstack_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recstack_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
