# Empty compiler generated dependencies file for recstack_common.
# This may be replaced when dependencies are built.
