file(REMOVE_RECURSE
  "librecstack_common.a"
)
