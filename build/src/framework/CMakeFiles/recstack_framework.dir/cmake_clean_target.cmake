file(REMOVE_RECURSE
  "librecstack_framework.a"
)
