file(REMOVE_RECURSE
  "CMakeFiles/recstack_framework.dir/frameworks.cc.o"
  "CMakeFiles/recstack_framework.dir/frameworks.cc.o.d"
  "librecstack_framework.a"
  "librecstack_framework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recstack_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
