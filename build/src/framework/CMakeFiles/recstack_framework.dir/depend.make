# Empty dependencies file for recstack_framework.
# This may be replaced when dependencies are built.
