# Empty dependencies file for recstack_analysis.
# This may be replaced when dependencies are built.
