file(REMOVE_RECURSE
  "CMakeFiles/recstack_analysis.dir/linreg.cc.o"
  "CMakeFiles/recstack_analysis.dir/linreg.cc.o.d"
  "librecstack_analysis.a"
  "librecstack_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recstack_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
