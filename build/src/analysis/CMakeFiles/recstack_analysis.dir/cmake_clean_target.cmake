file(REMOVE_RECURSE
  "librecstack_analysis.a"
)
