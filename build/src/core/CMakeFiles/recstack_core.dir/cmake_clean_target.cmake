file(REMOVE_RECURSE
  "librecstack_core.a"
)
