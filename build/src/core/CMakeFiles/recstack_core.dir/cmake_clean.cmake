file(REMOVE_RECURSE
  "CMakeFiles/recstack_core.dir/breakdown.cc.o"
  "CMakeFiles/recstack_core.dir/breakdown.cc.o.d"
  "CMakeFiles/recstack_core.dir/characterizer.cc.o"
  "CMakeFiles/recstack_core.dir/characterizer.cc.o.d"
  "CMakeFiles/recstack_core.dir/regression_study.cc.o"
  "CMakeFiles/recstack_core.dir/regression_study.cc.o.d"
  "CMakeFiles/recstack_core.dir/sweep.cc.o"
  "CMakeFiles/recstack_core.dir/sweep.cc.o.d"
  "CMakeFiles/recstack_core.dir/trace_runner.cc.o"
  "CMakeFiles/recstack_core.dir/trace_runner.cc.o.d"
  "librecstack_core.a"
  "librecstack_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recstack_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
