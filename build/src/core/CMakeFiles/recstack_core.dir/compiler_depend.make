# Empty compiler generated dependencies file for recstack_core.
# This may be replaced when dependencies are built.
