file(REMOVE_RECURSE
  "librecstack_trace.a"
)
