# Empty dependencies file for recstack_trace.
# This may be replaced when dependencies are built.
