file(REMOVE_RECURSE
  "CMakeFiles/recstack_trace.dir/trace.cc.o"
  "CMakeFiles/recstack_trace.dir/trace.cc.o.d"
  "librecstack_trace.a"
  "librecstack_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recstack_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
