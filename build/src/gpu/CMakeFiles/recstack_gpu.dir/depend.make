# Empty dependencies file for recstack_gpu.
# This may be replaced when dependencies are built.
