file(REMOVE_RECURSE
  "librecstack_gpu.a"
)
