file(REMOVE_RECURSE
  "CMakeFiles/recstack_gpu.dir/gpu_model.cc.o"
  "CMakeFiles/recstack_gpu.dir/gpu_model.cc.o.d"
  "librecstack_gpu.a"
  "librecstack_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recstack_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
