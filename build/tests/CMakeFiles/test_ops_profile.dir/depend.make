# Empty dependencies file for test_ops_profile.
# This may be replaced when dependencies are built.
