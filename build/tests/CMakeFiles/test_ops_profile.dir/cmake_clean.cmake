file(REMOVE_RECURSE
  "CMakeFiles/test_ops_profile.dir/test_ops_profile.cc.o"
  "CMakeFiles/test_ops_profile.dir/test_ops_profile.cc.o.d"
  "test_ops_profile"
  "test_ops_profile.pdb"
  "test_ops_profile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ops_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
