file(REMOVE_RECURSE
  "CMakeFiles/test_characterizer.dir/test_characterizer.cc.o"
  "CMakeFiles/test_characterizer.dir/test_characterizer.cc.o.d"
  "test_characterizer"
  "test_characterizer.pdb"
  "test_characterizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_characterizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
