file(REMOVE_RECURSE
  "CMakeFiles/test_ops_numeric.dir/test_ops_numeric.cc.o"
  "CMakeFiles/test_ops_numeric.dir/test_ops_numeric.cc.o.d"
  "test_ops_numeric"
  "test_ops_numeric.pdb"
  "test_ops_numeric[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ops_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
