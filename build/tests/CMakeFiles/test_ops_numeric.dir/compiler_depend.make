# Empty compiler generated dependencies file for test_ops_numeric.
# This may be replaced when dependencies are built.
