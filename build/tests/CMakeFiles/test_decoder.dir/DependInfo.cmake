
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_decoder.cc" "tests/CMakeFiles/test_decoder.dir/test_decoder.cc.o" "gcc" "tests/CMakeFiles/test_decoder.dir/test_decoder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/report/CMakeFiles/recstack_report.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/recstack_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/recstack_core.dir/DependInfo.cmake"
  "/root/repo/build/src/framework/CMakeFiles/recstack_framework.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/recstack_models.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/recstack_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/recstack_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/ops/CMakeFiles/recstack_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/recstack_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/recstack_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/topdown/CMakeFiles/recstack_topdown.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/recstack_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/recstack_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/recstack_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/recstack_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/recstack_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/recstack_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
