# Empty dependencies file for test_serving_sim.
# This may be replaced when dependencies are built.
