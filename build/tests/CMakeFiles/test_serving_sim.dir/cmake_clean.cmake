file(REMOVE_RECURSE
  "CMakeFiles/test_serving_sim.dir/test_serving_sim.cc.o"
  "CMakeFiles/test_serving_sim.dir/test_serving_sim.cc.o.d"
  "test_serving_sim"
  "test_serving_sim.pdb"
  "test_serving_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_serving_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
