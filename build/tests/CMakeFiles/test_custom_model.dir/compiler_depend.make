# Empty compiler generated dependencies file for test_custom_model.
# This may be replaced when dependencies are built.
