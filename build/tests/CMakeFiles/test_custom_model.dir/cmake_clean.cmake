file(REMOVE_RECURSE
  "CMakeFiles/test_custom_model.dir/test_custom_model.cc.o"
  "CMakeFiles/test_custom_model.dir/test_custom_model.cc.o.d"
  "test_custom_model"
  "test_custom_model.pdb"
  "test_custom_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_custom_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
