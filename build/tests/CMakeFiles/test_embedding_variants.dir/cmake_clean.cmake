file(REMOVE_RECURSE
  "CMakeFiles/test_embedding_variants.dir/test_embedding_variants.cc.o"
  "CMakeFiles/test_embedding_variants.dir/test_embedding_variants.cc.o.d"
  "test_embedding_variants"
  "test_embedding_variants.pdb"
  "test_embedding_variants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_embedding_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
