# Empty compiler generated dependencies file for test_embedding_variants.
# This may be replaced when dependencies are built.
