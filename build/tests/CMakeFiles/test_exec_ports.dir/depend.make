# Empty dependencies file for test_exec_ports.
# This may be replaced when dependencies are built.
