file(REMOVE_RECURSE
  "CMakeFiles/test_exec_ports.dir/test_exec_ports.cc.o"
  "CMakeFiles/test_exec_ports.dir/test_exec_ports.cc.o.d"
  "test_exec_ports"
  "test_exec_ports.pdb"
  "test_exec_ports[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exec_ports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
