/**
 * @file
 * Quickstart: build a recommendation model, run real inference
 * numerics on a small batch, then characterize it on the four Table
 * II platforms.
 *
 * Usage: quickstart [MODEL] [BATCH]   (default: RM1 16)
 */

#include <cstdio>
#include <string>

#include "core/characterizer.h"
#include "graph/executor.h"
#include "report/chart.h"
#include "report/table.h"

using namespace recstack;

int
main(int argc, char** argv)
{
    const std::string model_name = argc > 1 ? argv[1] : "RM1";
    const int64_t batch = argc > 2 ? std::atoll(argv[2]) : 16;
    const ModelId id = modelFromName(model_name);

    // --- 1. Real numerics on a scaled-down instance ---------------
    // (full-size tables are unnecessary to demonstrate correctness)
    {
        Model model = buildModel(id, tinyOptions());
        Workspace ws;
        model.initParams(ws, /*seed=*/7);
        BatchGenerator gen(model.workload, /*seed=*/42);
        gen.materialize(ws, 8);
        const NetExecResult exec =
            Executor::run(model.net, ws, ExecMode::kFull);
        const Tensor& out = ws.get(model.outputBlob);
        std::printf("numeric check: %s -> output %s, first scores:",
                    model.name.c_str(), out.describe().c_str());
        for (int64_t i = 0; i < std::min<int64_t>(4, out.numel()); ++i) {
            std::printf(" %.4f", out.data<float>()[i]);
        }
        std::printf("  (%zu ops, %.1f ms host)\n\n", exec.records.size(),
                    exec.hostSeconds * 1e3);
    }

    // --- 2. Cross-stack characterization ---------------------------
    Characterizer characterizer;
    const auto platforms = allPlatforms();

    TextTable table({"platform", "latency", "speedup vs BDW",
                     "dominant operator"});
    double baseline = 0.0;
    for (const auto& platform : platforms) {
        const RunResult r = characterizer.run(id, platform, batch);
        if (baseline == 0.0) {
            baseline = r.seconds;
        }
        table.addRow({platform.name(), TextTable::fmtSeconds(r.seconds),
                      TextTable::fmtSpeedup(baseline / r.seconds),
                      r.breakdown.dominantType()});
    }
    std::printf("%s at batch %lld, end-to-end:\n%s\n", model_name.c_str(),
                static_cast<long long>(batch), table.render().c_str());

    // --- 3. Operator breakdown + TopDown on Broadwell ---------------
    const RunResult bdw = characterizer.run(id, platforms[0], batch);
    std::printf("operator breakdown (Broadwell):\n");
    std::vector<ChartItem> items;
    for (const auto& [type, frac] : bdw.breakdown.fractions()) {
        if (frac >= 0.01) {
            items.push_back({type, frac * 100.0});
        }
    }
    std::printf("%s\n", barChart(items, 40, "%").c_str());

    const TopDownL1& l1 = bdw.topdown.l1;
    std::printf("%s",
                stackedBar("TopDown",
                           {{"retire", l1.retiring},
                            {"badspec", l1.badSpeculation},
                            {"frontend", l1.frontendBound},
                            {"backend", l1.backendBound}})
                    .c_str());
    return 0;
}
