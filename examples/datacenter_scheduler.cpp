/**
 * @file
 * Datacenter scheduler demo: use the characterization results the way
 * DeepRecSys does — route recommendation queries to the optimal
 * platform and batch size under a latency SLA, and show how the
 * optimum flips between CPUs (tight tail budgets) and GPUs (loose
 * budgets / throughput serving).
 *
 * Usage: datacenter_scheduler [MODEL] [SLA_MS...]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "report/table.h"
#include "sched/query_scheduler.h"
#include "serve/serving_engine.h"

using namespace recstack;

int
main(int argc, char** argv)
{
    const std::string model_name = argc > 1 ? argv[1] : "WnD";
    const ModelId id = modelFromName(model_name);

    std::vector<double> slas_ms = {0.5, 1, 2, 5, 10, 25, 50, 100, 500};
    if (argc > 2) {
        slas_ms.clear();
        for (int i = 2; i < argc; ++i) {
            slas_ms.push_back(std::atof(argv[i]));
        }
    }

    SweepCache sweep(allPlatforms());
    QueryScheduler sched(&sweep);

    std::printf("Heterogeneity-aware serving for %s (%s)\n\n",
                modelName(id), modelDomain(id));

    TextTable table({"SLA", "best platform", "batch", "latency",
                     "throughput", "CPU-only throughput",
                     "gain vs CPU-only"});
    for (double sla_ms : slas_ms) {
        const double sla = sla_ms * 1e-3;
        const ThroughputPoint best = sched.bestThroughputUnderSla(id, sla);

        // CPU-only baseline: best of the two CPUs.
        ThroughputPoint cpu_best;
        for (size_t p = 0; p < sweep.platforms().size(); ++p) {
            if (sweep.platforms()[p].kind != PlatformKind::kCpu) {
                continue;
            }
            for (int64_t b : sched.batchGrid()) {
                const double lat = sched.latency(id, p, b);
                if (lat > sla) {
                    continue;
                }
                const double qps = static_cast<double>(b) / lat;
                if (!cpu_best.feasible ||
                    qps > cpu_best.samplesPerSecond) {
                    cpu_best = {p, b, lat, qps, true};
                }
            }
        }

        if (!best.feasible) {
            table.addRow({TextTable::fmt(sla_ms, 1) + "ms",
                          "(infeasible)", "-", "-", "-", "-", "-"});
            continue;
        }
        const double gain =
            cpu_best.feasible
                ? best.samplesPerSecond / cpu_best.samplesPerSecond
                : 0.0;
        table.addRow(
            {TextTable::fmt(sla_ms, 1) + "ms",
             sweep.platforms()[best.platformIdx].name(),
             std::to_string(best.batch),
             TextTable::fmtSeconds(best.latencySeconds),
             TextTable::fmt(best.samplesPerSecond, 0) + " samp/s",
             cpu_best.feasible
                 ? TextTable::fmt(cpu_best.samplesPerSecond, 0) +
                       " samp/s"
                 : "-",
             cpu_best.feasible ? TextTable::fmtSpeedup(gain) : "-"});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Reading: tight SLAs force small batches where CPUs win "
        "(Fig. 5 left);\nloose SLAs allow large batches where the "
        "accelerators dominate (Fig. 5 right).\n");

    // Fleet sizing: run the multi-worker serving engine on Broadwell
    // (platform 0) at ~3x one worker's capacity and watch how far
    // extra co-located workers actually carry it once shared-L3/DRAM
    // contention prices in.
    const size_t cpu_idx = 0;
    const int64_t fleet_batch = 256;
    const double cap1 =
        static_cast<double>(fleet_batch) /
        sched.latency(id, cpu_idx, fleet_batch);
    std::printf("\nFleet sizing on %s at %.0f samples/s offered:\n\n",
                sweep.platforms()[cpu_idx].name().c_str(), 3.0 * cap1);
    TextTable fleet({"workers", "agg throughput", "p99", "util",
                     "mean slowdown"});
    ServingEngine engine(&sched, id, cpu_idx);
    for (int workers : {1, 2, 4, 8}) {
        EngineConfig cfg;
        cfg.numWorkers = workers;
        cfg.arrivalQps = 3.0 * cap1;
        cfg.maxBatch = fleet_batch;
        cfg.maxWaitSeconds = 1e-3;
        cfg.simSeconds = 0.1;
        const EngineResult r = engine.run(cfg);
        fleet.addRow({std::to_string(workers),
                      TextTable::fmt(r.aggregate.throughputQps, 0) +
                          " samp/s",
                      TextTable::fmtSeconds(r.aggregate.p99Latency),
                      TextTable::fmtPercent(r.aggregate.utilization),
                      TextTable::fmt(r.meanSlowdown, 2) + "x"});
    }
    std::printf("%s\n", fleet.render().c_str());
    std::printf(
        "Reading: workers beyond the DRAM-bandwidth knee add little "
        "throughput\nwhile inflating every worker's latency — "
        "embedding-dominated models hit\nthe knee first (the paper's "
        "near-memory-processing motivation).\n");
    return 0;
}
