/**
 * @file
 * TopDown deep dive: per-operator-type cycle accounting for one model
 * on one CPU platform — the drill-down view behind Figs. 8, 10, 13.
 *
 * Usage: topdown_deep_dive [MODEL] [BATCH] [bdw|clx]
 */

#include <cstdio>
#include <map>
#include <string>

#include "core/characterizer.h"
#include "graph/executor.h"
#include "report/table.h"

using namespace recstack;

int
main(int argc, char** argv)
{
    const std::string model_name = argc > 1 ? argv[1] : "RM1";
    const int64_t batch = argc > 2 ? std::atoll(argv[2]) : 16;
    const bool clx = argc > 3 && std::string(argv[3]) == "clx";
    const CpuConfig cfg = clx ? cascadeLakeConfig() : broadwellConfig();

    const ModelId id = modelFromName(model_name);
    Model model = buildModel(id);
    Workspace ws;
    ws.setShapeOnly(true);
    model.declareParams(ws);
    BatchGenerator gen(model.workload);
    gen.declare(ws, batch);
    const NetExecResult exec =
        Executor::run(model.net, ws, ExecMode::kProfileOnly);

    CpuModel cpu(cfg);
    std::vector<const KernelProfile*> profiles;
    const KernelProfile data_load = gen.dataLoadProfile(batch);
    profiles.push_back(&data_load);
    for (const auto& rec : exec.records) {
        profiles.push_back(&rec.profile);
    }
    for (const KernelProfile* kp : profiles) {
        (void)cpu.simulateKernel(*kp);  // warm-up
    }

    std::map<std::string, CpuCounters> by_type;
    CpuCounters total;
    for (const KernelProfile* kp : profiles) {
        const CpuCounters c = cpu.simulateKernel(*kp);
        by_type[kp->opType].accumulate(c);
        total.accumulate(c);
    }

    std::printf("%s, batch %lld, %s — cycle accounting by operator "
                "type\n\n",
                model.name.c_str(), static_cast<long long>(batch),
                cfg.name.c_str());
    TextTable table({"op type", "cycles(K)", "retire%", "feLat%",
                     "feDSB%", "feMITE%", "badspec%", "beCore%", "beL2%",
                     "beL3%", "beDram%", "uops(K)", "misp(K)",
                     "i$miss(K)", "FU>=3"});
    auto add_row = [&](const std::string& name, const CpuCounters& c) {
        const double inv = c.cycles > 0 ? 100.0 / c.cycles : 0.0;
        table.addRow(
            {name, TextTable::fmt(c.cycles / 1e3, 0),
             TextTable::fmt(c.retireCycles * inv, 1),
             TextTable::fmt(c.feLatencyCycles * inv, 1),
             TextTable::fmt(c.feBandwidthDsbCycles * inv, 1),
             TextTable::fmt(c.feBandwidthMiteCycles * inv, 1),
             TextTable::fmt(c.badSpecCycles * inv, 1),
             TextTable::fmt(c.beCoreCycles * inv, 1),
             TextTable::fmt(c.beMemL2Cycles * inv, 1),
             TextTable::fmt(c.beMemL3Cycles * inv, 1),
             TextTable::fmt((c.beMemDramLatCycles + c.beMemDramBwCycles) *
                            inv, 1),
             TextTable::fmt(static_cast<double>(c.uopsRetired) / 1e3, 0),
             TextTable::fmt(static_cast<double>(c.branchMispredicts) /
                            1e3, 2),
             TextTable::fmt(static_cast<double>(c.icacheMisses) / 1e3,
                            2),
             TextTable::fmtPercent(c.portsBusyAtLeast[3])});
    };
    for (const auto& [type, counters] : by_type) {
        add_row(type, counters);
    }
    add_row("TOTAL", total);
    std::printf("%s", table.render().c_str());

    const TopDownResult td = deriveTopDown(total, cfg);
    std::printf("\nTopDown L1: retiring %.1f%%  badspec %.1f%%  "
                "frontend %.1f%%  backend %.1f%% (core %.1f%% / mem "
                "%.1f%%)\nIPC %.2f  AVX %.1f%%  i-MPKI %.2f  "
                "misp/kuop %.2f\n",
                100 * td.l1.retiring, 100 * td.l1.badSpeculation,
                100 * td.l1.frontendBound, 100 * td.l1.backendBound,
                100 * td.l2.beCore, 100 * td.l2.beMemory, td.ipc,
                100 * td.avxFraction, td.imspki, td.mispredictsPerKuop);
    return 0;
}
