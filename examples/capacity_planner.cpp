/**
 * @file
 * Capacity planner: the full stack in one workflow. Given a model, a
 * target load and a p99 SLA, find for each platform the operating
 * point (batching policy) that meets the tail budget, then size the
 * fleet: how many engines/devices serve the load, accounting for
 * multicore co-location limits on the CPUs.
 *
 * Usage: capacity_planner [MODEL] [TARGET_QPS] [SLA_MS]
 */

#include <cstdio>
#include <string>

#include "report/table.h"
#include "sched/serving_sim.h"
#include "uarch/multicore.h"

using namespace recstack;

namespace {

/** Best single-engine operating point under the SLA, by simulation. */
ServingStats
bestOperatingPoint(QueryScheduler& sched, ModelId model, size_t platform,
                   double sla, double* chosen_qps)
{
    // Find the highest per-engine load whose simulated p99 meets the
    // SLA (geometric sweep, then keep the best feasible point).
    ServingStats best{};
    *chosen_qps = 0.0;
    for (double qps = 500; qps <= 4.1e6; qps *= 2.0) {
        ServingSimulator sim(&sched, model, platform);
        ServingConfig cfg;
        cfg.arrivalQps = qps;
        cfg.maxBatch = 2048;
        cfg.maxWaitSeconds = sla / 4.0;
        cfg.simSeconds = 0.4;
        const ServingStats stats = sim.simulate(cfg);
        if (stats.p99Latency <= sla &&
            stats.throughputQps > best.throughputQps) {
            best = stats;
            *chosen_qps = qps;
        }
    }
    return best;
}

}  // namespace

int
main(int argc, char** argv)
{
    const std::string model_name = argc > 1 ? argv[1] : "RM2";
    const double target_qps = argc > 2 ? std::atof(argv[2]) : 1e6;
    const double sla_ms = argc > 3 ? std::atof(argv[3]) : 10.0;
    const ModelId id = modelFromName(model_name);
    const double sla = sla_ms * 1e-3;

    SweepCache sweep(allPlatforms());
    QueryScheduler sched(&sweep);

    std::printf("Capacity plan: %s at %.0f samples/s, p99 <= %.1f ms\n\n",
                modelName(id), target_qps, sla_ms);

    TextTable table({"platform", "per-engine qps", "p99", "mean batch",
                     "engines needed", "note"});
    for (size_t p = 0; p < sweep.platforms().size(); ++p) {
        double engine_qps = 0.0;
        const ServingStats stats =
            bestOperatingPoint(sched, id, p, sla, &engine_qps);
        if (stats.throughputQps <= 0.0) {
            table.addRow({sweep.platforms()[p].name(), "-", "-", "-",
                          "-", "cannot meet SLA"});
            continue;
        }

        double engines =
            target_qps / stats.throughputQps;
        std::string note;
        if (sweep.platforms()[p].kind == PlatformKind::kCpu) {
            // Engines co-locate on 16-core sockets; shared-memory
            // contention means N engines deliver less than N x one.
            const RunResult& r = sweep.get(id, p, 256);
            const auto scaling = estimateMulticoreScaling(
                r.counters, sweep.platforms()[p].cpu, 16);
            const double per_socket =
                scaling.back().throughputScaling;
            const double sockets = engines / per_socket;
            note = TextTable::fmt(per_socket, 1) +
                   " engines-worth/socket -> " +
                   TextTable::fmt(sockets, 1) + " sockets";
        } else {
            note = TextTable::fmt(engines, 1) + " devices";
        }
        table.addRow({sweep.platforms()[p].name(),
                      TextTable::fmt(stats.throughputQps, 0),
                      TextTable::fmtSeconds(stats.p99Latency),
                      TextTable::fmt(stats.meanBatch, 1),
                      TextTable::fmt(engines, 1), note});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Tighten the SLA to watch the plan shift toward CPUs "
                "(small batches); loosen it to shift toward "
                "accelerators (Fig. 5).\n");
    return 0;
}
