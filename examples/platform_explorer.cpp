/**
 * @file
 * Platform explorer: sweep one model (or all) across the four Table
 * II platforms and the paper's batch-size axis, printing latency,
 * speedup, dominant operator and — for CPUs — the TopDown headline.
 *
 * Usage: platform_explorer [MODEL|all] [--csv]
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/sweep.h"
#include "report/table.h"

using namespace recstack;

namespace {

void
exploreModel(SweepCache& sweep, ModelId id, bool csv)
{
    const auto batches = paperBatchSizes();
    if (csv) {
        for (size_t p = 0; p < sweep.platforms().size(); ++p) {
            for (int64_t b : batches) {
                const RunResult& r = sweep.get(id, p, b);
                std::printf("%s,%s,%lld,%.8f,%s\n", modelName(id),
                            sweep.platforms()[p].name().c_str(),
                            static_cast<long long>(b), r.seconds,
                            r.breakdown.dominantType().c_str());
            }
        }
        return;
    }

    std::printf("\n=== %s — %s ===\n", modelName(id), modelDomain(id));
    TextTable table({"batch", "platform", "latency", "speedup vs BDW",
                     "dominant op", "TopDown headline"});
    for (int64_t b : batches) {
        for (size_t p = 0; p < sweep.platforms().size(); ++p) {
            const RunResult& r = sweep.get(id, p, b);
            std::string headline = "-";
            if (r.kind == PlatformKind::kCpu) {
                const TopDownL1& l1 = r.topdown.l1;
                if (l1.retiring >= l1.backendBound &&
                    l1.retiring >= l1.frontendBound) {
                    headline = "retiring " +
                               TextTable::fmtPercent(l1.retiring);
                } else if (l1.backendBound > l1.frontendBound) {
                    headline = "backend " +
                               TextTable::fmtPercent(l1.backendBound);
                } else {
                    headline = "frontend " +
                               TextTable::fmtPercent(l1.frontendBound);
                }
            } else {
                headline = "data-comm " +
                           TextTable::fmtPercent(
                               r.gpu.dataCommFraction());
            }
            table.addRow({p == 0 ? std::to_string(b) : "",
                          sweep.platforms()[p].name(),
                          TextTable::fmtSeconds(r.seconds),
                          TextTable::fmtSpeedup(
                              sweep.speedupOverBaseline(id, p, b)),
                          r.breakdown.dominantType(), headline});
        }
    }
    std::printf("%s", table.render().c_str());
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string which = argc > 1 ? argv[1] : "RM1";
    bool csv = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--csv") == 0) {
            csv = true;
        }
    }
    if (which == "--csv") {
        which = "RM1";
    }

    SweepCache sweep(allPlatforms());
    if (csv) {
        std::printf("model,platform,batch,seconds,dominant_op\n");
    }
    if (which == "all") {
        for (ModelId id : allModels()) {
            exploreModel(sweep, id, csv);
        }
    } else {
        exploreModel(sweep, modelFromName(which), csv);
    }
    return 0;
}
