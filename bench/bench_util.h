#ifndef RECSTACK_BENCH_BENCH_UTIL_H_
#define RECSTACK_BENCH_BENCH_UTIL_H_

/**
 * @file
 * Shared plumbing for the figure/table regeneration binaries. Every
 * bench prints (a) the series the paper's figure plots and (b) a
 * PAPER-CHECK block stating the qualitative result the paper reports
 * and whether this run reproduces it.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "core/regression_study.h"
#include "core/sweep.h"
#include "report/chart.h"
#include "report/table.h"

namespace recstack {
namespace bench {

/** Print the bench banner. */
inline void
banner(const char* figure, const char* title)
{
    std::printf("==============================================================\n");
    std::printf("%s: %s\n", figure, title);
    std::printf("==============================================================\n");
}

/** Print one qualitative paper-vs-measured check line. */
inline void
check(bool ok, const std::string& claim)
{
    std::printf("  [%s] %s\n", ok ? "REPRODUCED" : "DIVERGES  ",
                claim.c_str());
}

inline void
checkHeader()
{
    std::printf("\nPAPER-CHECK (qualitative claims from the paper):\n");
}

/** Platform indices in allPlatforms() order; kPim only exists in
 * allPlatformsWithPim(). */
constexpr size_t kBdw = 0;
constexpr size_t kClx = 1;
constexpr size_t kGtx = 2;
constexpr size_t kT4 = 3;
constexpr size_t kPim = 4;

inline const char*
shortPlatformName(size_t idx)
{
    switch (idx) {
      case kBdw: return "Broadwell";
      case kClx: return "CascadeLake";
      case kGtx: return "GTX1080Ti";
      case kT4: return "T4";
      case kPim: return "PIM";
    }
    return "?";
}

}  // namespace bench
}  // namespace recstack

#endif  // RECSTACK_BENCH_BENCH_UTIL_H_
