/**
 * @file
 * Fig. 11: retired-instruction counts drop from Broadwell to Cascade
 * Lake thanks to wider AVX-512 (VNNI) instructions.
 */

#include "bench_util.h"

using namespace recstack;
using namespace recstack::bench;

int
main()
{
    banner("Fig. 11", "Retired instruction counts, BDW vs CLX");

    SweepCache sweep(allPlatforms());
    const int64_t batch = 16;

    TextTable table({"model", "BDW retired (M)", "CLX retired (M)",
                     "reduction"});
    for (ModelId id : allModels()) {
        const double bdw = static_cast<double>(
            sweep.get(id, kBdw, batch).counters.uopsRetired);
        const double clx = static_cast<double>(
            sweep.get(id, kClx, batch).counters.uopsRetired);
        table.addRow({modelName(id), TextTable::fmt(bdw / 1e6, 2),
                      TextTable::fmt(clx / 1e6, 2),
                      TextTable::fmtPercent(1.0 - clx / bdw)});
    }
    std::printf("%s", table.render().c_str());

    checkHeader();
    bool all_drop = true;
    for (ModelId id : allModels()) {
        all_drop &= sweep.get(id, kClx, batch).counters.uopsRetired <=
                    sweep.get(id, kBdw, batch).counters.uopsRetired;
    }
    check(all_drop, "retired instructions decrease (or hold) from BDW "
                    "to CLX for every model");
    auto reduction = [&](ModelId id) {
        const double bdw = static_cast<double>(
            sweep.get(id, kBdw, batch).counters.uopsRetired);
        const double clx = static_cast<double>(
            sweep.get(id, kClx, batch).counters.uopsRetired);
        return 1.0 - clx / bdw;
    };
    check(reduction(ModelId::kRM3) > reduction(ModelId::kRM1),
          "the FC-heavy RM3 sheds more instructions than the "
          "lookup-heavy RM1 (vector work halves, scalar work does not)");
    return 0;
}
