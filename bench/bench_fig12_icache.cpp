/**
 * @file
 * Fig. 12: L1 instruction-cache misses per kilo-instruction. NCF and
 * the attention-based models (DIN, DIEN) stand out; DIN's unrolled
 * local activation units carry unique instruction reference
 * locations.
 */

#include "bench_util.h"

using namespace recstack;
using namespace recstack::bench;

int
main()
{
    banner("Fig. 12", "L1 i-cache MPKI (batch 16, Broadwell)");

    SweepCache sweep(allPlatforms());
    const int64_t batch = 16;

    std::vector<ChartItem> items;
    for (ModelId id : allModels()) {
        items.push_back(
            {modelName(id),
             sweep.get(id, kBdw, batch).topdown.imspki});
    }
    std::printf("%s", barChart(items, 40, " MPKI").c_str());

    checkHeader();
    auto mpki = [&](ModelId id) {
        return sweep.get(id, kBdw, batch).topdown.imspki;
    };
    const double rm_avg = (mpki(ModelId::kRM1) + mpki(ModelId::kRM2) +
                           mpki(ModelId::kRM3)) / 3.0;
    check(mpki(ModelId::kDIN) > 2.0 * rm_avg,
          "DIN: far higher i-MPKI than the RM models (paper: 12.4)");
    check(mpki(ModelId::kDIEN) > rm_avg &&
              mpki(ModelId::kDIEN) < mpki(ModelId::kDIN),
          "DIEN: elevated but below DIN (paper: 7.7) - GRU math is "
          "more cache friendly than per-lookup concat+FC");
    check(mpki(ModelId::kNCF) > rm_avg,
          "NCF: small-FC model also suffers i-cache pressure");
    check(mpki(ModelId::kRM2) < mpki(ModelId::kNCF),
          "long runs of identical SparseLengthsSum ops keep RM2's "
          "instruction working set hot");
    return 0;
}
