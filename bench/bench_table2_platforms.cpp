/**
 * @file
 * Table II: the four hardware platforms and the parameters their
 * recstack models are configured with, plus the near-memory PIM
 * extension platform (src/pim/) as a third column group.
 */

#include "bench_util.h"

using namespace recstack;
using namespace recstack::bench;

int
main()
{
    banner("Table II", "Summary of hardware platforms studied");

    const CpuConfig bdw = broadwellConfig();
    const CpuConfig clx = cascadeLakeConfig();
    TextTable cpus({"parameter", "Broadwell", "Cascade Lake"});
    auto row = [&](const char* name, const std::string& a,
                   const std::string& b) {
        cpus.addRow({name, a, b});
    };
    row("frequency", TextTable::fmt(bdw.freqGHz, 1) + " GHz",
        TextTable::fmt(clx.freqGHz, 1) + " GHz");
    row("SIMD", "AVX-2 (256b)", "AVX-512 VNNI (512b)");
    row("L1", "32 KB", "32 KB");
    row("L2", "256 KB", "1 MB");
    row("L3", "40 MB (inclusive)", "22 MB (exclusive)");
    row("DRAM BW", TextTable::fmt(bdw.dramGBs, 0) + " GB/s",
        TextTable::fmt(clx.dramGBs, 0) + " GB/s");
    row("DSB delivery", TextTable::fmt(bdw.dsbUopsPerCycle, 1) + " uops/cyc",
        TextTable::fmt(clx.dsbUopsPerCycle, 1) + " uops/cyc");
    row("mispredict penalty", std::to_string(bdw.mispredictPenalty) + " cyc",
        std::to_string(clx.mispredictPenalty) + " cyc");
    std::printf("%s\n", cpus.render().c_str());

    const GpuConfig gtx = gtx1080TiConfig();
    const GpuConfig t4 = t4Config();
    TextTable gpus({"parameter", "GTX 1080 Ti", "T4"});
    auto grow = [&](const char* name, const std::string& a,
                    const std::string& b) {
        gpus.addRow({name, a, b});
    };
    grow("SM count", std::to_string(gtx.smCount),
         std::to_string(t4.smCount));
    grow("frequency", TextTable::fmt(gtx.freqGHz, 2) + " GHz",
         TextTable::fmt(t4.freqGHz, 2) + " GHz");
    grow("mem BW", TextTable::fmt(gtx.memGBs, 0) + " GB/s (GDDR5X)",
         TextTable::fmt(t4.memGBs, 0) + " GB/s (GDDR6)");
    grow("sustained GEMM", TextTable::fmt(gtx.effTflops, 1) + " TF",
         TextTable::fmt(t4.effTflops, 1) + " TF");
    grow("gather efficiency", TextTable::fmt(gtx.gatherEfficiency, 2),
         TextTable::fmt(t4.gatherEfficiency, 2));
    grow("kernel launch", TextTable::fmtSeconds(gtx.kernelLaunchSec),
         TextTable::fmtSeconds(t4.kernelLaunchSec));
    std::printf("%s\n", gpus.render().c_str());

    const PimConfig pim = upmemPimConfig();
    TextTable pims({"parameter", pim.name});
    auto prow = [&](const char* name, const std::string& a) {
        pims.addRow({name, a});
    };
    prow("DPU ranks", std::to_string(pim.ranks));
    prow("DPUs / rank", std::to_string(pim.dpusPerRank));
    prow("tasklets / DPU",
         std::to_string(pim.taskletsPerDpu) + " (pipeline fills at " +
             std::to_string(pim.pipelineFillTasklets) + ")");
    prow("rank internal BW",
         TextTable::fmt(pim.rankInternalGBs, 1) + " GB/s");
    prow("WRAM / DPU",
         std::to_string(pim.wramBytesPerDpu / 1024) + " KB");
    prow("host<->DPU BW", TextTable::fmt(pim.xferGBs, 1) + " GB/s");
    prow("host<->DPU latency",
         TextTable::fmtSeconds(pim.xferLatencySec));
    prow("host CPU", pim.host.name);
    std::printf("%s\n", pims.render().c_str());

    // Per-model activation memory on these platforms at a serving
    // batch: what op-at-a-time execution allocates (one blob per
    // activation of the builder's net) vs the compiled net's
    // liveness-planned arena peak (graph/compiled_net.h).
    const int64_t plan_batch = 256;
    constexpr double kMiB = 1024.0 * 1024.0;
    SweepCache sweep(allPlatforms());
    std::printf("--- activation memory at b=%lld (naive vs planned) ---\n",
                static_cast<long long>(plan_batch));
    TextTable mem({"model", "naive MiB", "planned MiB", "planned/naive",
                   "fused ops"});
    double rm2_ratio = 1.0;
    double dien_ratio = 1.0;
    for (ModelId id : allModels()) {
        const NetPlan& plan = sweep.memoryPlan(id, plan_batch);
        const CompiledNet& net = sweep.characterizer().compiled(id);
        const double ratio =
            static_cast<double>(plan.arenaBytes) /
            static_cast<double>(std::max<size_t>(
                1, plan.naiveActivationBytes));
        if (id == ModelId::kRM2) {
            rm2_ratio = ratio;
        }
        if (id == ModelId::kDIEN) {
            dien_ratio = ratio;
        }
        mem.addRow(
            {modelName(id),
             TextTable::fmt(
                 static_cast<double>(plan.naiveActivationBytes) / kMiB, 2),
             TextTable::fmt(static_cast<double>(plan.arenaBytes) / kMiB,
                            2),
             TextTable::fmtPercent(ratio),
             std::to_string(net.fusions().size())});
    }
    std::printf("%s", mem.render().c_str());

    checkHeader();
    check(clx.l2.sizeBytes > bdw.l2.sizeBytes &&
              clx.l3.sizeBytes < bdw.l3.sizeBytes,
          "Cascade Lake: larger L2, smaller exclusive L3");
    check(clx.simdBits == 2 * bdw.simdBits,
          "Cascade Lake doubles SIMD width (AVX-2 -> AVX-512)");
    check(t4.smCount > gtx.smCount && t4.memGBs < gtx.memGBs,
          "T4: more SMs, lower raw GDDR bandwidth than 1080 Ti");
    check(rm2_ratio <= 0.60,
          "memory planning fits RM2 activations in <= 60% of the "
          "naive per-blob sum at serving batch");
    check(dien_ratio <= 0.60,
          "memory planning fits DIEN's unrolled-GRU activations in "
          "<= 60% of the naive per-blob sum at serving batch");
    check(pim.ranks * pim.rankInternalGBs > bdw.dramGBs &&
              pim.xferGBs < bdw.dramGBs,
          "PIM (ext): aggregate in-memory bandwidth exceeds the host's "
          "DRAM while the host<->DPU path stays far narrower — the "
          "asymmetry the offload exploits");
    return 0;
}
