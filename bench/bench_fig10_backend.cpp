/**
 * @file
 * Fig. 10: backend drill-down — (top) the core:memory ratio of
 * backend-bound cycles on Broadwell vs Cascade Lake, and (bottom)
 * functional-unit usage (fraction of cycles with >= 3 of 8 execution
 * ports busy).
 */

#include "bench_util.h"

using namespace recstack;
using namespace recstack::bench;

int
main()
{
    banner("Fig. 10", "Core:Memory backend ratio + functional-unit usage");

    SweepCache sweep(allPlatforms());
    const int64_t batch = 16;

    TextTable table({"model", "BDW core:mem", "CLX core:mem",
                     "BDW FU>=3", "CLX FU>=3", "BDW core-bound",
                     "CLX core-bound"});
    for (ModelId id : allModels()) {
        const auto& bdw = sweep.get(id, kBdw, batch).topdown;
        const auto& clx = sweep.get(id, kClx, batch).topdown;
        table.addRow({modelName(id),
                      TextTable::fmt(bdw.l2.coreToMemoryRatio(), 2),
                      TextTable::fmt(clx.l2.coreToMemoryRatio(), 2),
                      TextTable::fmtPercent(bdw.fuUsage3Plus),
                      TextTable::fmtPercent(clx.fuUsage3Plus),
                      TextTable::fmtPercent(bdw.l2.beCore),
                      TextTable::fmtPercent(clx.l2.beCore)});
    }
    std::printf("%s", table.render().c_str());

    checkHeader();
    auto ratio = [&](ModelId id, size_t p) {
        return sweep.get(id, p, batch).topdown.l2.coreToMemoryRatio();
    };
    bool core_bound_bdw = true;
    for (ModelId id : {ModelId::kRM3, ModelId::kWnD, ModelId::kMTWnD}) {
        core_bound_bdw &= ratio(id, kBdw) > 1.0;
    }
    check(core_bound_bdw, "RM3/WnD/MT-WnD on BDW: core:memory ratio > 1 "
                          "(functional units are the backend bottleneck)");
    bool mem_shift_clx = true;
    for (ModelId id : {ModelId::kRM3, ModelId::kWnD, ModelId::kMTWnD}) {
        mem_shift_clx &= ratio(id, kClx) < ratio(id, kBdw);
    }
    check(mem_shift_clx, "on CLX the backend bottleneck shifts toward "
                         "the memory subsystem (wider FMA hardware)");
    bool fu_pressure = true;
    for (ModelId id : {ModelId::kRM3, ModelId::kWnD, ModelId::kMTWnD}) {
        fu_pressure &=
            sweep.get(id, kBdw, batch).topdown.fuUsage3Plus >
            sweep.get(ModelId::kRM1, kBdw, batch).topdown.fuUsage3Plus;
    }
    check(fu_pressure, "RM3/WnD/MT-WnD saturate Broadwell's execution "
                       "ports more than the embedding models");
    bool clx_relief = true;
    for (ModelId id : {ModelId::kRM3, ModelId::kWnD, ModelId::kMTWnD}) {
        clx_relief &= sweep.get(id, kClx, batch).topdown.l2.beCore <
                      0.6 * sweep.get(id, kBdw, batch).topdown.l2.beCore;
    }
    check(clx_relief, "Cascade Lake's wider FMA hardware decreases "
                      "functional-unit pressure (core-bound stalls "
                      "drop sharply)");
    return 0;
}
