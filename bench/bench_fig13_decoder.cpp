/**
 * @file
 * Fig. 13: frontend decoder-pipeline inefficiencies — fraction of
 * cycles in which the DSB (decoded-uop cache) or the MITE legacy
 * decoder limited micro-op supply. The embedding-heavy RM1/RM2 are
 * DSB-limited (mispredict flushes + instruction footprints thrash
 * the DSB).
 */

#include "bench_util.h"

using namespace recstack;
using namespace recstack::bench;

int
main()
{
    banner("Fig. 13", "Cycles limited by DSB vs MITE (batch 16)");

    SweepCache sweep(allPlatforms());
    const int64_t batch = 16;

    TextTable table({"model", "BDW DSB-limited", "BDW MITE-limited",
                     "CLX DSB-limited", "CLX MITE-limited"});
    for (ModelId id : allModels()) {
        const auto& bdw = sweep.get(id, kBdw, batch).topdown.l2;
        const auto& clx = sweep.get(id, kClx, batch).topdown.l2;
        table.addRow({modelName(id),
                      TextTable::fmtPercent(bdw.feBandwidthDsb),
                      TextTable::fmtPercent(bdw.feBandwidthMite),
                      TextTable::fmtPercent(clx.feBandwidthDsb),
                      TextTable::fmtPercent(clx.feBandwidthMite)});
    }
    std::printf("%s", table.render().c_str());

    checkHeader();
    auto dsb = [&](ModelId id) {
        return sweep.get(id, kBdw, batch).topdown.l2.feBandwidthDsb;
    };
    check(dsb(ModelId::kRM1) > dsb(ModelId::kRM3) &&
              dsb(ModelId::kRM2) > dsb(ModelId::kRM3),
          "RM1/RM2 (frontend-bandwidth-bound models): DSB is a larger "
          "limiter than for the FC-heavy RM3");
    bool dsb_main = true;
    for (ModelId id : {ModelId::kRM1, ModelId::kRM2}) {
        const auto& l2 = sweep.get(id, kBdw, batch).topdown.l2;
        dsb_main &= l2.feBandwidthDsb > l2.feBandwidthMite * 0.5;
    }
    check(dsb_main, "for RM1/RM2 the DSB component is the main decoder "
                    "inefficiency (not steady-state MITE)");
    bool clx_less = true;
    for (ModelId id : {ModelId::kRM1, ModelId::kRM2}) {
        clx_less &=
            sweep.get(id, kClx, batch).topdown.l2.feBandwidthDsb <
            sweep.get(id, kBdw, batch).topdown.l2.feBandwidthDsb;
    }
    check(clx_less, "Cascade Lake's better speculation reduces "
                    "DSB-limited cycles for RM1/RM2");
    return 0;
}
