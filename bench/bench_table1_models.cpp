/**
 * @file
 * Table I: the eight industry-representative recommendation models —
 * application domain, architectural insight, and the concrete
 * configuration recstack instantiates (tables, lookups, parameters,
 * operator counts).
 */

#include "bench_util.h"

using namespace recstack;
using namespace recstack::bench;

int
main()
{
    banner("Table I", "Summary of eight recommendation models");

    Characterizer characterizer;
    TextTable table({"model", "domain", "tables", "lookups/table",
                     "latent dim", "emb params", "FC params", "ops",
                     "insight"});
    for (ModelId id : allModels()) {
        const Model& m = characterizer.model(id);
        table.addRow({m.name, modelDomain(id),
                      std::to_string(m.features.numTables),
                      TextTable::fmt(m.features.lookupsPerTable, 0),
                      std::to_string(m.features.latentDim),
                      TextTable::fmt(
                          static_cast<double>(m.features.embParams) / 1e6,
                          1) + "M",
                      TextTable::fmt(
                          static_cast<double>(m.features.fcParams) / 1e6,
                          2) + "M",
                      std::to_string(m.net.opCount()), modelInsight(id)});
    }
    std::printf("%s", table.render().c_str());

    checkHeader();
    const auto& rm1 = characterizer.model(ModelId::kRM1).features;
    const auto& rm2 = characterizer.model(ModelId::kRM2).features;
    const auto& ncf = characterizer.model(ModelId::kNCF).features;
    const auto& din = characterizer.model(ModelId::kDIN);
    check(rm1.numTables == 8 && rm1.lookupsPerTable == 80,
          "RM1: medium amount (80) of lookups per embedding table");
    check(rm2.numTables == 32 && rm2.lookupsPerTable == 120,
          "RM2: 32 tables with large amount (120) of lookups");
    check(ncf.numTables == 4, "NCF: small model with only 4 tables");
    check(din.features.attention && din.net.opCount() > 1000,
          "DIN: large unrolled attention graph (~750 lookups, "
          "hundreds of local activation units)");
    return 0;
}
