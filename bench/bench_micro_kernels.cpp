/**
 * @file
 * google-benchmark microbenchmarks of the numeric kernels and the
 * simulator primitives themselves (host performance of recstack, not
 * figure regeneration).
 */

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "graph/executor.h"
#include "models/model.h"
#include "ops/elementwise.h"
#include "ops/embedding.h"
#include "ops/fc.h"
#include "uarch/branch_predictor.h"
#include "uarch/cache_hierarchy.h"
#include "uarch/cpu_model.h"

namespace recstack {
namespace {

void
BM_FCKernel(benchmark::State& state)
{
    const int64_t m = state.range(0);
    const int64_t nk = state.range(1);
    Workspace ws;
    ws.set("x", Tensor({m, nk}));
    ws.set("w", Tensor({nk, nk}));
    ws.set("b", Tensor({nk}));
    FCOp fc("fc", "x", "w", "b", "y");
    fc.inferShapes(ws);
    for (auto _ : state) {
        fc.run(ws);
        benchmark::DoNotOptimize(ws.get("y").data<float>());
    }
    state.SetItemsProcessed(state.iterations() * 2 * m * nk * nk);
}
BENCHMARK(BM_FCKernel)->Args({16, 64})->Args({16, 256})->Args({64, 256});

void
BM_SparseLengthsSum(benchmark::State& state)
{
    const int64_t lookups = state.range(0);
    const int64_t rows = 100000;
    const int64_t dim = 64;
    Workspace ws;
    ws.set("table", Tensor({rows, dim}));
    Rng rng(1);
    std::vector<int64_t> idx(static_cast<size_t>(lookups));
    for (auto& i : idx) {
        i = static_cast<int64_t>(rng.nextBounded(rows));
    }
    ws.set("idx", Tensor::fromInt64s({lookups}, idx));
    ws.set("len", Tensor::fromInt32s({1}, {static_cast<int32_t>(
                                              lookups)}));
    SparseLengthsSumOp sls("sls", "table", "idx", "len", "y");
    sls.inferShapes(ws);
    for (auto _ : state) {
        sls.run(ws);
        benchmark::DoNotOptimize(ws.get("y").data<float>());
    }
    state.SetItemsProcessed(state.iterations() * lookups);
}
BENCHMARK(BM_SparseLengthsSum)->Arg(80)->Arg(1280)->Arg(10240);

void
BM_CacheHierarchyAccess(benchmark::State& state)
{
    CacheHierarchy h(broadwellConfig());
    Rng rng(2);
    uint64_t addr = 0;
    for (auto _ : state) {
        addr = rng.nextBounded(1ull << 26);
        benchmark::DoNotOptimize(h.access(addr, false));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHierarchyAccess);

void
BM_BranchPredictor(benchmark::State& state)
{
    GsharePredictor bp(14, 12);
    Rng rng(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            bp.predictAndUpdate(0x400, rng.nextBool(0.9)));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BranchPredictor);

void
BM_SimulateGemmKernel(benchmark::State& state)
{
    CpuModel cpu(broadwellConfig());
    Workspace ws;
    ws.set("x", Tensor({64, 256}));
    ws.set("w", Tensor({256, 256}));
    ws.set("b", Tensor({256}));
    FCOp fc("fc", "x", "w", "b", "y");
    fc.inferShapes(ws);
    const KernelProfile kp = fc.profile(ws);
    for (auto _ : state) {
        benchmark::DoNotOptimize(cpu.simulateKernel(kp));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulateGemmKernel);

void
BM_ProfileOnlyNetExecution(benchmark::State& state)
{
    Model model = buildModel(ModelId::kRM1, tinyOptions());
    Workspace ws;
    ws.setShapeOnly(true);
    model.declareParams(ws);
    BatchGenerator gen(model.workload);
    gen.declare(ws, 64);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            Executor::run(model.net, ws, ExecMode::kProfileOnly));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(model.net.opCount()));
}
BENCHMARK(BM_ProfileOnlyNetExecution);

void
BM_ZipfSampler(benchmark::State& state)
{
    Rng rng(4);
    ZipfSampler zipf(1000000, 0.9);
    for (auto _ : state) {
        benchmark::DoNotOptimize(zipf.sample(rng));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSampler);

}  // namespace
}  // namespace recstack

BENCHMARK_MAIN();
