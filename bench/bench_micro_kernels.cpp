/**
 * @file
 * google-benchmark microbenchmarks of the numeric kernels and the
 * simulator primitives themselves (host performance of recstack, not
 * figure regeneration), followed by an EXT-SIMD PAPER-CHECK section
 * comparing the vectorized kernel tier against scalar at one thread
 * (docs/vectorization.md). Kernel benches take a trailing tier arg
 * (0 = scalar, 1 = avx2); avx2 rows self-skip on hosts without
 * AVX2+FMA.
 */

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_util.h"
#include "common/cpu_features.h"
#include "common/rng.h"
#include "graph/executor.h"
#include "models/model.h"
#include "ops/elementwise.h"
#include "ops/embedding.h"
#include "ops/fc.h"
#include "uarch/branch_predictor.h"
#include "uarch/cache_hierarchy.h"
#include "uarch/cpu_model.h"

namespace recstack {
namespace {

/** Tier from a benchmark range arg; false = skip (unsupported). */
bool
tierFromArg(benchmark::State& state, int64_t arg, KernelIsa* isa)
{
    *isa = arg == 0 ? KernelIsa::kScalar : KernelIsa::kAvx2;
    if (!kernelIsaSupported(*isa)) {
        state.SkipWithError("kernel tier unsupported on this host");
        return false;
    }
    return true;
}

void
BM_FCKernel(benchmark::State& state)
{
    const int64_t m = state.range(0);
    const int64_t nk = state.range(1);
    KernelIsa isa;
    if (!tierFromArg(state, state.range(2), &isa)) {
        return;
    }
    IsaScope tier(isa);
    Workspace ws;
    ws.set("x", Tensor({m, nk}));
    ws.set("w", Tensor({nk, nk}));
    ws.set("b", Tensor({nk}));
    FCOp fc("fc", "x", "w", "b", "y");
    fc.inferShapes(ws);
    for (auto _ : state) {
        fc.run(ws);
        benchmark::DoNotOptimize(ws.get("y").data<float>());
    }
    state.SetItemsProcessed(state.iterations() * 2 * m * nk * nk);
    state.SetLabel(kernelIsaName(isa));
}
BENCHMARK(BM_FCKernel)
    ->Args({16, 64, 0})
    ->Args({16, 64, 1})
    ->Args({16, 256, 0})
    ->Args({16, 256, 1})
    ->Args({64, 256, 0})
    ->Args({64, 256, 1});

void
BM_SparseLengthsSum(benchmark::State& state)
{
    const int64_t lookups = state.range(0);
    const int64_t rows = 100000;
    const int64_t dim = 64;
    KernelIsa isa;
    if (!tierFromArg(state, state.range(1), &isa)) {
        return;
    }
    IsaScope tier(isa);
    Workspace ws;
    ws.set("table", Tensor({rows, dim}));
    Rng rng(1);
    std::vector<int64_t> idx(static_cast<size_t>(lookups));
    for (auto& i : idx) {
        i = static_cast<int64_t>(rng.nextBounded(rows));
    }
    ws.set("idx", Tensor::fromInt64s({lookups}, idx));
    ws.set("len", Tensor::fromInt32s({1}, {static_cast<int32_t>(
                                              lookups)}));
    SparseLengthsSumOp sls("sls", "table", "idx", "len", "y");
    sls.inferShapes(ws);
    for (auto _ : state) {
        sls.run(ws);
        benchmark::DoNotOptimize(ws.get("y").data<float>());
    }
    state.SetItemsProcessed(state.iterations() * lookups);
    state.SetLabel(kernelIsaName(isa));
}
BENCHMARK(BM_SparseLengthsSum)
    ->Args({80, 0})
    ->Args({80, 1})
    ->Args({1280, 0})
    ->Args({1280, 1})
    ->Args({10240, 0})
    ->Args({10240, 1});

void
BM_CacheHierarchyAccess(benchmark::State& state)
{
    CacheHierarchy h(broadwellConfig());
    Rng rng(2);
    uint64_t addr = 0;
    for (auto _ : state) {
        addr = rng.nextBounded(1ull << 26);
        benchmark::DoNotOptimize(h.access(addr, false));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHierarchyAccess);

void
BM_BranchPredictor(benchmark::State& state)
{
    GsharePredictor bp(14, 12);
    Rng rng(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            bp.predictAndUpdate(0x400, rng.nextBool(0.9)));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BranchPredictor);

void
BM_SimulateGemmKernel(benchmark::State& state)
{
    CpuModel cpu(broadwellConfig());
    Workspace ws;
    ws.set("x", Tensor({64, 256}));
    ws.set("w", Tensor({256, 256}));
    ws.set("b", Tensor({256}));
    FCOp fc("fc", "x", "w", "b", "y");
    fc.inferShapes(ws);
    const KernelProfile kp = fc.profile(ws);
    for (auto _ : state) {
        benchmark::DoNotOptimize(cpu.simulateKernel(kp));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulateGemmKernel);

void
BM_ProfileOnlyNetExecution(benchmark::State& state)
{
    Model model = buildModel(ModelId::kRM1, tinyOptions());
    Workspace ws;
    ws.setShapeOnly(true);
    model.declareParams(ws);
    BatchGenerator gen(model.workload);
    gen.declare(ws, 64);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            Executor::run(model.net, ws, ExecMode::kProfileOnly));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(model.net.opCount()));
}
BENCHMARK(BM_ProfileOnlyNetExecution);

void
BM_ZipfSampler(benchmark::State& state)
{
    Rng rng(4);
    ZipfSampler zipf(1000000, 0.9);
    for (auto _ : state) {
        benchmark::DoNotOptimize(zipf.sample(rng));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSampler);

/** Best-of-N single-thread numeric latency under one kernel tier. */
double
bestSeconds(const Model& model, Workspace& ws, KernelIsa isa, int reps)
{
    IsaScope tier(isa);
    ExecOptions opts;
    opts.mode = ExecMode::kNumericOnly;
    opts.numThreads = 1;
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        Executor::run(model.net, ws, opts);
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(
            best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

/**
 * EXT-SIMD: the kernel-tier headline number. FC-heavy models at one
 * intra-op thread, avx2 tier vs scalar tier, same inputs. Printed
 * after the google-benchmark table so `--benchmark_filter` runs still
 * end with the qualitative check.
 */
void
runSimdTierCheck()
{
    bench::banner("EXT-SIMD",
                  "vectorized kernel tier vs scalar, 1 intra-op thread");
    if (!kernelIsaSupported(KernelIsa::kAvx2)) {
        bench::checkHeader();
        std::printf(
            "  [SKIPPED   ] host/build lacks AVX2+FMA; the >=2x "
            "tier check needs the avx2 tier\n");
        return;
    }

    ModelOptions opts;  // full-size models: FC work dominates
    opts.tableScale = 0.05;
    const int64_t batch = 256;
    const int reps = 5;

    double min_speedup = 1e30;
    std::printf("\n%-8s  %-6s  %-14s  %-14s  %s\n", "model", "batch",
                "scalar sec", "avx2 sec", "speedup");
    for (const ModelId id : {ModelId::kRM1, ModelId::kWnD}) {
        const Model model = buildModel(id, opts);
        Workspace ws;
        model.initParams(ws);
        BatchGenerator gen(model.workload, /*seed=*/7);
        gen.materialize(ws, batch);
        bestSeconds(model, ws, KernelIsa::kScalar, 1);  // warm allocs
        const double scalar =
            bestSeconds(model, ws, KernelIsa::kScalar, reps);
        const double avx2 =
            bestSeconds(model, ws, KernelIsa::kAvx2, reps);
        const double speedup = scalar / avx2;
        min_speedup = std::min(min_speedup, speedup);
        std::printf("%-8s  %-6lld  %14.6f  %14.6f  %6.2fx\n",
                    modelName(id), static_cast<long long>(batch),
                    scalar, avx2, speedup);
    }

    bench::checkHeader();
    bench::check(min_speedup >= 2.0,
                 "FC-heavy models (RM1, WnD) run >=2x faster "
                 "single-thread on the avx2 kernel tier");
}

}  // namespace
}  // namespace recstack

int
main(int argc, char** argv)
{
    char arg0_default[] = "benchmark";
    char* args_default = arg0_default;
    if (!argv) {
        argc = 1;
        argv = &args_default;
    }
    ::benchmark::Initialize(&argc, argv);
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
    recstack::runSimdTierCheck();
    return 0;
}
