/**
 * @file
 * Ablation: L3 inclusion policy. Table II's Broadwell/Cascade Lake
 * differ in inclusive vs exclusive L3; this isolates the policy on an
 * otherwise-identical core for the embedding models, whose zipf-hot
 * rows live or die by effective cache capacity.
 */

#include "bench_util.h"

using namespace recstack;
using namespace recstack::bench;

int
main()
{
    banner("Ablation", "L3 inclusion policy (identical core otherwise)");

    CpuConfig incl = broadwellConfig();
    CpuConfig excl = broadwellConfig();
    excl.l3Policy = InclusionPolicy::kExclusive;
    SweepCache sweep({makeCpuPlatform(incl), makeCpuPlatform(excl)});

    TextTable table({"model", "batch", "inclusive L3 latency",
                     "exclusive L3 latency", "exclusive speedup"});
    double rm2_gain = 0.0;
    for (ModelId id : {ModelId::kNCF, ModelId::kRM1, ModelId::kRM2}) {
        for (int64_t batch : {16LL, 256LL}) {
            const double a = sweep.get(id, 0, batch).seconds;
            const double b = sweep.get(id, 1, batch).seconds;
            if (id == ModelId::kRM2 && batch == 256) {
                rm2_gain = a / b;
            }
            table.addRow({modelName(id), std::to_string(batch),
                          TextTable::fmtSeconds(a),
                          TextTable::fmtSeconds(b),
                          TextTable::fmtSpeedup(a / b)});
        }
    }
    std::printf("%s", table.render().c_str());

    checkHeader();
    check(rm2_gain > 0.95 && rm2_gain < 1.3,
          "on a 40 MB L3 the policy is a second-order effect "
          "(exclusive adds ~L2 worth of capacity)");
    check(sweep.get(ModelId::kRM2, 1, 256).seconds <
              sweep.get(ModelId::kRM2, 0, 256).seconds * 1.02,
          "exclusive L3 never hurts the gather-heavy models "
          "meaningfully (victim capacity helps the zipf head)");
    return 0;
}
