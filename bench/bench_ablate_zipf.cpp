/**
 * @file
 * Ablation: embedding index skew. Production recommendation traffic
 * is heavily skewed; the uniform-random worst case over-states DRAM
 * pressure. This sweep quantifies how much of RM2's memory-bound
 * profile is locality-dependent (the premise of RecNMP-style
 * memory-side caching).
 */

#include "bench_util.h"

using namespace recstack;
using namespace recstack::bench;

int
main()
{
    banner("Ablation", "Embedding index skew (RM2, Broadwell, batch 256)");

    TextTable table({"zipf exponent", "latency", "backend-memory share",
                     "DRAM accesses (M)", "congested cycles"});
    std::vector<double> latencies;
    std::vector<double> dram;
    for (double zipf : {0.0, 0.4, 0.75, 1.0, 1.2}) {
        ModelOptions opts;
        opts.zipfExponent = zipf;
        SweepCache sweep({makeCpuPlatform(broadwellConfig())}, opts);
        const RunResult& r = sweep.get(ModelId::kRM2, 0, 256);
        latencies.push_back(r.seconds);
        dram.push_back(static_cast<double>(r.counters.dramAccesses));
        table.addRow(
            {TextTable::fmt(zipf, 2), TextTable::fmtSeconds(r.seconds),
             TextTable::fmtPercent(r.topdown.l2.beMemory),
             TextTable::fmt(
                 static_cast<double>(r.counters.dramAccesses) / 1e6, 2),
             TextTable::fmtPercent(r.topdown.dramCongestedFraction)});
    }
    std::printf("%s", table.render().c_str());

    checkHeader();
    check(dram.front() > dram.back(),
          "skewed indices hit cached hot rows: DRAM traffic falls as "
          "the zipf exponent grows");
    check(latencies.front() > latencies.back(),
          "locality translates directly into latency for the "
          "embedding-dominated RM2");
    return 0;
}
