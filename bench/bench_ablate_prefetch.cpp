/**
 * @file
 * Ablation: hardware-prefetcher effectiveness. The paper's regular
 * (FC) vs irregular (embedding) split rests on prefetchers hiding
 * sequential miss latency while gathers stay exposed; this sweep
 * disables/overdrives that coverage and shows which models care.
 */

#include "bench_util.h"

using namespace recstack;
using namespace recstack::bench;

int
main()
{
    banner("Ablation",
           "Prefetcher coverage of sequential misses (batch 256)");

    TextTable table({"seq exposure", "RM3 latency", "RM3 mem-bound",
                     "RM2 latency", "RM2 mem-bound"});
    std::vector<double> rm3_lat, rm2_lat;
    for (double exposure : {1.0, 0.5, 0.25, 0.12, 0.05}) {
        CpuConfig cfg = broadwellConfig();
        cfg.seqMissExposure = exposure;
        cfg.stridedMissExposure = std::min(1.0, exposure * 2.5);
        SweepCache sweep({makeCpuPlatform(cfg)});
        const RunResult& rm3 = sweep.get(ModelId::kRM3, 0, 256);
        const RunResult& rm2 = sweep.get(ModelId::kRM2, 0, 256);
        rm3_lat.push_back(rm3.seconds);
        rm2_lat.push_back(rm2.seconds);
        table.addRow({TextTable::fmt(exposure, 2),
                      TextTable::fmtSeconds(rm3.seconds),
                      TextTable::fmtPercent(rm3.topdown.l2.beMemory),
                      TextTable::fmtSeconds(rm2.seconds),
                      TextTable::fmtPercent(rm2.topdown.l2.beMemory)});
    }
    std::printf("%s", table.render().c_str());

    checkHeader();
    check(rm3_lat.front() > rm3_lat.back() * 1.1,
          "FC models stream weights: prefetch coverage speeds them up "
          "measurably");
    const double rm3_gain = rm3_lat.front() / rm3_lat.back();
    const double rm2_gain = rm2_lat.front() / rm2_lat.back();
    check(rm3_gain > rm2_gain,
          "embedding-dominated RM2 is nearly prefetch-insensitive "
          "(random gathers stay exposed) - the paper's "
          "irregular-access premise");
    return 0;
}
