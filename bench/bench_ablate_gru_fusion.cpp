/**
 * @file
 * Ablation: DIEN operator granularity — the framework-faithful
 * per-timestep unrolling (what Caffe2's RecurrentNetwork executes and
 * the paper characterizes) versus a hypothetical fused GRU operator.
 * Quantifies how much of DIEN's frontend pressure and GPU launch tax
 * is an artifact of operator granularity rather than the algorithm.
 */

#include "bench_util.h"

using namespace recstack;
using namespace recstack::bench;

int
main()
{
    banner("Ablation", "DIEN GRU fusion (unrolled vs fused operator)");

    ModelOptions unrolled;
    ModelOptions fused;
    fused.dienFusedGru = true;

    SweepCache sw_unrolled(allPlatforms(), unrolled);
    SweepCache sw_fused(allPlatforms(), fused);

    TextTable table({"variant", "ops", "BDW latency b16", "BDW i-MPKI",
                     "BDW frontend", "1080Ti latency b16",
                     "1080Ti latency b4096"});
    auto row = [&](const char* label, SweepCache& sweep) {
        const RunResult& cpu = sweep.get(ModelId::kDIEN, kBdw, 16);
        const RunResult& gpu16 = sweep.get(ModelId::kDIEN, kGtx, 16);
        const RunResult& gpu4k = sweep.get(ModelId::kDIEN, kGtx, 4096);
        table.addRow(
            {label,
             std::to_string(sweep.characterizer()
                                .model(ModelId::kDIEN)
                                .net.opCount()),
             TextTable::fmtSeconds(cpu.seconds),
             TextTable::fmt(cpu.topdown.imspki, 2),
             TextTable::fmtPercent(cpu.topdown.l1.frontendBound),
             TextTable::fmtSeconds(gpu16.seconds),
             TextTable::fmtSeconds(gpu4k.seconds)});
    };
    row("unrolled (Caffe2-style)", sw_unrolled);
    row("fused GRULayer", sw_fused);
    std::printf("%s", table.render().c_str());

    checkHeader();
    const double icache_unrolled =
        sw_unrolled.get(ModelId::kDIEN, kBdw, 16).topdown.imspki;
    const double icache_fused =
        sw_fused.get(ModelId::kDIEN, kBdw, 16).topdown.imspki;
    check(icache_unrolled > 2.0 * icache_fused,
          "DIEN's elevated i-cache pressure is largely an operator-"
          "granularity artifact (fusion collapses it)");
    check(sw_fused.get(ModelId::kDIEN, kGtx, 16).seconds <
              sw_unrolled.get(ModelId::kDIEN, kGtx, 16).seconds,
          "fusion removes the per-step launch tax on GPUs at small "
          "batch");
    check(sw_fused.get(ModelId::kDIEN, kBdw, 16).seconds <
              sw_unrolled.get(ModelId::kDIEN, kBdw, 16).seconds,
          "fusion also removes per-step dispatch overhead on CPUs");
    return 0;
}
