/**
 * @file
 * Ablation: GPU gather-efficiency sensitivity. The RM1/RM2 GPU story
 * (Fig. 3 top-left) hinges on how much of the GDDR bandwidth
 * irregular embedding gathers achieve; this sweep shows the speedup
 * ceiling as a function of that efficiency (the knob TensorDimm/
 * RecNMP-class designs attack).
 */

#include "bench_util.h"

using namespace recstack;
using namespace recstack::bench;

int
main()
{
    banner("Ablation",
           "GPU gather efficiency vs RM2 speedup (batch 4096)");

    TextTable table({"gather efficiency", "RM2 GPU latency",
                     "speedup vs BDW", "data-comm share"});
    std::vector<double> speedups;
    for (double eff : {0.05, 0.09, 0.18, 0.35, 0.70}) {
        GpuConfig gpu = gtx1080TiConfig();
        gpu.gatherEfficiency = eff;
        SweepCache sweep({makeCpuPlatform(broadwellConfig()),
                          makeGpuPlatform(gpu)});
        const double speedup =
            sweep.speedupOverBaseline(ModelId::kRM2, 1, 4096);
        speedups.push_back(speedup);
        const RunResult& r = sweep.get(ModelId::kRM2, 1, 4096);
        table.addRow({TextTable::fmt(eff, 2),
                      TextTable::fmtSeconds(r.seconds),
                      TextTable::fmtSpeedup(speedup),
                      TextTable::fmtPercent(
                          r.gpu.dataCommFraction())});
    }
    std::printf("%s", table.render().c_str());

    checkHeader();
    bool monotone = true;
    for (size_t i = 1; i < speedups.size(); ++i) {
        monotone &= speedups[i] >= speedups[i - 1] - 1e-9;
    }
    check(monotone, "RM2 GPU speedup grows monotonically with gather "
                    "efficiency");
    check(speedups.back() / speedups.front() > 1.5,
          "gather efficiency is a first-order lever for "
          "embedding-dominated models (the near-memory-processing "
          "opportunity)");
    return 0;
}
