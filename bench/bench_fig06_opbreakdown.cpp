/**
 * @file
 * Fig. 6: Caffe2 operator-usage breakdowns per model across four
 * batch sizes on the two CPUs and two GPUs.
 */

#include "bench_util.h"

using namespace recstack;
using namespace recstack::bench;

int
main()
{
    banner("Fig. 6", "Operator breakdowns (CPUs left, GPUs right)");

    SweepCache sweep(allPlatforms());
    const auto batches = breakdownBatchSizes();

    for (ModelId id : allModels()) {
        std::printf("\n--- %s ---\n", modelName(id));
        for (size_t p : {kBdw, kClx, kGtx, kT4}) {
            for (int64_t b : batches) {
                const RunResult& r = sweep.get(id, p, b);
                std::vector<ChartItem> segs;
                double other = 0.0;
                for (const auto& [type, frac] : r.breakdown.fractions()) {
                    if (segs.size() < 4 && frac >= 0.03) {
                        segs.push_back({type, frac});
                    } else {
                        other += frac;
                    }
                }
                if (other > 0.0) {
                    segs.push_back({"other", other});
                }
                char label[64];
                std::snprintf(label, sizeof(label), "%-12s b=%-6lld",
                              shortPlatformName(p),
                              static_cast<long long>(b));
                std::printf("%s", stackedBar(label, segs, 40).c_str());
            }
        }
    }

    checkHeader();
    // GPU-accelerated models are FC-dominated on CPU.
    bool fc_dom = true;
    for (ModelId id : {ModelId::kRM3, ModelId::kWnD, ModelId::kMTWnD}) {
        fc_dom &= sweep.get(id, kBdw, 64).breakdown.dominantType() == "FC";
    }
    check(fc_dom, "RM3/WnD/MT-WnD: FC dominates CPU runtime");
    check(sweep.get(ModelId::kRM2, kBdw, 64).breakdown.dominantType() ==
              "SparseLengthsSum",
          "RM2: SparseLengthsSum dominates CPU runtime");

    // RM1: batch size shifts the dominant operator FC -> SLS.
    const auto& rm1_small = sweep.get(ModelId::kRM1, kBdw, 4).breakdown;
    const auto& rm1_large = sweep.get(ModelId::kRM1, kBdw, 64).breakdown;
    check(rm1_small.fraction("SparseLengthsSum") <
                  rm1_large.fraction("SparseLengthsSum") &&
              rm1_large.dominantType() == "SparseLengthsSum",
          "RM1: growing batch 4 -> 64 shifts the bottleneck toward "
          "SparseLengthsSum");

    // WnD on GPU at small batch: SLS-dominated despite being FC-heavy
    // on CPU.
    check(sweep.get(ModelId::kWnD, kGtx, 4).breakdown.dominantType() !=
              "FC",
          "WnD: FC-heavy on CPU but not FC-dominated on GPU at small "
          "batch");

    // Breakdown fractions sum to ~1.
    double sum = 0.0;
    for (const auto& [type, frac] :
         sweep.get(ModelId::kRM2, kBdw, 64).breakdown.fractions()) {
        sum += frac;
    }
    check(sum > 0.999 && sum < 1.001, "breakdown fractions sum to 1");
    return 0;
}
