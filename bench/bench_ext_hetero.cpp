/**
 * @file
 * Extension: the DeepRecSys loop closed end to end. For each model,
 * serve the same Poisson stream three ways — CPU worker pool only,
 * GPU only, and the heterogeneous split (CPU workers + accelerator
 * lane, thresholds tuned online by the hill climber against the p99
 * SLA read from the live serve.query_latency_seconds histogram) — and
 * report the throughput-vs-p99 frontier. The paper's claim: exploiting
 * hardware heterogeneity by batch size "significantly improves
 * recommendation performance"; at an equal tail budget the
 * heterogeneous configuration must sustain at least the best
 * single-platform throughput, and the online tuner must land within
 * one grid step of the exhaustive-search threshold.
 */

#include <cmath>

#include "bench_util.h"
#include "sched/hill_climb.h"
#include "serve/serving_engine.h"

using namespace recstack;
using namespace recstack::bench;

namespace {

constexpr int kWorkers = 2;
constexpr int64_t kMaxBatch = 256;
constexpr double kWindow = 1e-3;
constexpr double kSimSeconds = 0.1;

EngineConfig
baseConfig(double qps)
{
    EngineConfig cfg;
    cfg.numWorkers = kWorkers;
    cfg.arrivalQps = qps;
    cfg.maxBatch = kMaxBatch;
    cfg.maxWaitSeconds = kWindow;
    cfg.simSeconds = kSimSeconds;
    // Match the lane's accumulation to the front queue: the GPU's
    // service time is near-linear in batch beyond the grid's
    // amortization knee, so batching past the front queue's cap only
    // stretches the tail without buying throughput.
    cfg.gpuLane.maxBatch = kMaxBatch;
    cfg.gpuLane.maxWaitSeconds = kWindow;
    return cfg;
}

/** One model's three serving configurations over a shared rate ladder. */
struct ModelStudy {
    ModelId model;
    double sla = 0.0;
    std::vector<double> ladder;
    /// Best served QPS whose run held p99 <= sla, per configuration.
    double cpuCapacity = 0.0;
    double gpuCapacity = 0.0;
    double heteroCapacity = 0.0;
    /// Per-rung tails for the saturation check.
    std::vector<double> cpuP99;
    std::vector<double> heteroP99;
    int64_t tunedThreshold = 0;
    int64_t exhaustiveBest = 0;
    int gridStepsApart = 0;
    int tunerEpochs = 0;
    int exhaustiveEpochs = 0;
};

/**
 * Capacity under the SLA = the highest offered rate whose run held
 * p99 within budget. (Offered rate, not served/horizon: every run
 * drains its whole stream, so served-over-horizon would penalize a
 * feasible run merely for draining its tail after the stream ends.)
 */
double
updateCapacity(const EngineResult& r, double rate, double sla,
               double* capacity)
{
    if (r.aggregate.p99Latency <= sla) {
        *capacity = std::max(*capacity, rate);
    }
    return r.aggregate.p99Latency;
}

ModelStudy
studyModel(QueryScheduler& sched, ModelId model)
{
    ModelStudy st;
    st.model = model;

    ServingEngine cpu(&sched, model, kBdw);
    ServingEngine gpu(&sched, model, kT4);
    ServingEngine hetero(&sched, model, kBdw);

    // Per-platform single-server capacities from the characterization
    // grid anchor the rate ladder and the SLA probe.
    const double cap_cpu1 =
        static_cast<double>(kMaxBatch) /
        sched.latency(model, kBdw, kMaxBatch);
    const double cap_gpu1 =
        static_cast<double>(kMaxBatch) /
        sched.latency(model, kT4, kMaxBatch);
    const double combined = kWorkers * cap_cpu1 + cap_gpu1;

    // Equal-SLA budget for all three configurations: 3x the worse of
    // the two platforms' half-load tails, so each platform is feasible
    // somewhere on the ladder and the comparison is about capacity,
    // not about one side being priced out of its own regime.
    const EngineResult cpu_probe =
        cpu.run(baseConfig(0.5 * kWorkers * cap_cpu1));
    const EngineResult gpu_probe = gpu.run(baseConfig(0.5 * cap_gpu1));
    st.sla = 3.0 * std::max(cpu_probe.aggregate.p99Latency,
                            gpu_probe.aggregate.p99Latency);

    // Online tuning at a rate only the split can hold: the climber
    // walks the threshold grid reading its feedback from the metrics
    // histogram the engine records into (no offline sweep in the
    // loop). Exhaustive search over the same grid is the oracle.
    // The grid spans "route almost everything" (16) through the
    // overflow-valve point (256 == the front queue's batch cap: only
    // backlog-saturated batches defer, so the GPU absorbs exactly the
    // load the CPU pool sheds) to "route nothing".
    HillClimbConfig tune;
    tune.slaSeconds = st.sla;
    tune.thresholdGrid = {16, 64, 128, 256,
                          QueryScheduler::kNoGpuThreshold};
    tune.startIndex = 2;
    tune.epochSeconds = kSimSeconds;
    const double tune_rate = 0.8 * combined;
    EngineConfig hcfg = baseConfig(tune_rate);
    hcfg.heterogeneous = true;
    hcfg.gpuPlatformIdx = kT4;
    const EpochFn epoch = [&](int64_t threshold) {
        sched.setGpuThreshold(st.model, threshold);
        hetero.run(hcfg);
    };
    const HillClimbResult hc = hillClimbThreshold(tune, epoch);
    const HillClimbResult ex = exhaustiveThreshold(tune, epoch);
    st.tunedThreshold = hc.bestThreshold;
    st.exhaustiveBest = ex.bestThreshold;
    st.tunerEpochs = hc.epochs;
    st.exhaustiveEpochs = ex.epochs;
    const auto index_of = [&](int64_t t) {
        for (size_t i = 0; i < tune.thresholdGrid.size(); ++i) {
            if (tune.thresholdGrid[i] == t) {
                return static_cast<int>(i);
            }
        }
        return -1;
    };
    st.gridStepsApart =
        std::abs(index_of(hc.bestThreshold) - index_of(ex.bestThreshold));
    sched.setGpuThreshold(model, st.tunedThreshold);

    // The frontier: one shared rate ladder, three configurations.
    st.ladder = {0.2 * combined, 0.4 * combined, 0.6 * combined,
                 0.8 * combined, 1.0 * combined, 1.2 * combined,
                 1.4 * combined, 1.6 * combined};
    TextTable table({"offered qps", "CPU-only p99", "GPU-only p99",
                     "hetero p99", "gpu share", "SLA ok"});
    for (double rate : st.ladder) {
        const EngineResult rc = cpu.run(baseConfig(rate));
        const EngineResult rg = gpu.run(baseConfig(rate));
        EngineConfig hl = baseConfig(rate);
        hl.heterogeneous = true;
        hl.gpuPlatformIdx = kT4;
        const EngineResult rh = hetero.run(hl);

        const double pc =
            updateCapacity(rc, rate, st.sla, &st.cpuCapacity);
        const double pg =
            updateCapacity(rg, rate, st.sla, &st.gpuCapacity);
        const double ph =
            updateCapacity(rh, rate, st.sla, &st.heteroCapacity);
        st.cpuP99.push_back(pc);
        st.heteroP99.push_back(ph);
        const double share =
            rh.aggregate.samplesServed > 0
                ? static_cast<double>(rh.gpuLaneStats.samplesServed) /
                      static_cast<double>(rh.aggregate.samplesServed)
                : 0.0;
        std::string ok;
        ok += pc <= st.sla ? 'C' : '-';
        ok += pg <= st.sla ? 'G' : '-';
        ok += ph <= st.sla ? 'H' : '-';
        table.addRow({TextTable::fmt(rate, 0),
                      TextTable::fmtSeconds(pc),
                      TextTable::fmtSeconds(pg),
                      TextTable::fmtSeconds(ph),
                      TextTable::fmtPercent(share), ok});
    }

    std::printf("\n%s  (SLA p99 <= %s, tuned threshold %s)\n",
                modelName(model),
                TextTable::fmtSeconds(st.sla).c_str(),
                st.tunedThreshold == QueryScheduler::kNoGpuThreshold
                    ? "none"
                    : std::to_string(st.tunedThreshold).c_str());
    std::printf("%s", table.render().c_str());
    std::printf("  capacity at SLA: CPU-only %s  GPU-only %s  "
                "heterogeneous %s qps\n",
                TextTable::fmt(st.cpuCapacity, 0).c_str(),
                TextTable::fmt(st.gpuCapacity, 0).c_str(),
                TextTable::fmt(st.heteroCapacity, 0).c_str());
    return st;
}

}  // namespace

int
main()
{
    banner("Extension",
           "Heterogeneous serving: SLA-aware CPU/GPU split with "
           "online hill-climbed thresholds (RM1 / RM2 / DIEN)");

    SweepCache sweep(allPlatforms());
    QueryScheduler sched(&sweep, {1, 16, 256, 1024});

    std::vector<ModelStudy> studies;
    for (ModelId model :
         {ModelId::kRM1, ModelId::kRM2, ModelId::kDIEN}) {
        studies.push_back(studyModel(sched, model));
    }

    checkHeader();
    for (const ModelStudy& st : studies) {
        const double best_single =
            std::max(st.cpuCapacity, st.gpuCapacity);
        check(st.heteroCapacity >= 0.999 * best_single,
              std::string(modelName(st.model)) +
                  ": heterogeneous serving sustains at least the best "
                  "single-platform throughput at the same p99 SLA (x" +
                  std::string(TextTable::fmt(
                      best_single > 0.0
                          ? st.heteroCapacity / best_single
                          : 1.0,
                      2)) +
                  ")");
        check(st.gridStepsApart <= 1,
              std::string(modelName(st.model)) +
                  ": the online hill climber lands within one grid "
                  "step of the exhaustive-search threshold");
        check(st.tunerEpochs <= st.exhaustiveEpochs,
              std::string(modelName(st.model)) +
                  ": tuning converged in at most as many epochs as "
                  "the exhaustive sweep (" +
                  std::to_string(st.tunerEpochs) + " vs " +
                  std::to_string(st.exhaustiveEpochs) + ")");
        // Rung 3 = 0.8x the combined-capacity estimate: past the CPU
        // pool's knee, where offloading must relieve the CPU tail.
        check(st.heteroP99[3] < st.cpuP99[3],
              std::string(modelName(st.model)) +
                  ": past the CPU pool's saturation knee the split "
                  "relieves the CPU-only tail (" +
                  TextTable::fmtSeconds(st.heteroP99[3]) + " vs " +
                  TextTable::fmtSeconds(st.cpuP99[3]) + " p99)");
    }
    return 0;
}
