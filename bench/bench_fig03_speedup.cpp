/**
 * @file
 * Fig. 3: systems performance evaluation — speedup over the Broadwell
 * CPU for Cascade Lake, GTX 1080 Ti and T4, across the eight models
 * and batch sizes 1..16384. Extended with the near-memory PIM
 * platform (src/pim/) as a fifth column: embedding pooling offloaded
 * to DPU ranks, everything else on the Broadwell host.
 */

#include "bench_util.h"

using namespace recstack;
using namespace recstack::bench;

int
main()
{
    banner("Fig. 3", "Speedup over Broadwell across models/batch sizes");

    SweepCache sweep(allPlatformsWithPim());
    const auto batches = paperBatchSizes();

    for (ModelId id : allModels()) {
        std::printf("\n--- %s ---\n", modelName(id));
        TextTable table(
            {"batch", "BDW latency", "CLX", "1080Ti", "T4", "PIM"});
        for (int64_t batch : batches) {
            table.addRow(
                {std::to_string(batch),
                 TextTable::fmtSeconds(sweep.get(id, kBdw, batch).seconds),
                 TextTable::fmtSpeedup(
                     sweep.speedupOverBaseline(id, kClx, batch)),
                 TextTable::fmtSpeedup(
                     sweep.speedupOverBaseline(id, kGtx, batch)),
                 TextTable::fmtSpeedup(
                     sweep.speedupOverBaseline(id, kT4, batch)),
                 TextTable::fmtSpeedup(
                     sweep.speedupOverBaseline(id, kPim, batch))});
        }
        std::printf("%s", table.render().c_str());
    }

    checkHeader();
    // 1) FC-heavy models: order-of-magnitude GPU speedup at large
    //    batch, 2-4x at small batch.
    bool fc_large = true, fc_small = true;
    for (ModelId id : {ModelId::kNCF, ModelId::kRM3, ModelId::kWnD,
                       ModelId::kMTWnD}) {
        const double large = sweep.speedupOverBaseline(id, kT4, 16384);
        const double small = sweep.speedupOverBaseline(id, kGtx, 64);
        fc_large &= large >= 8.0;
        fc_small &= small >= 0.5 && small <= 8.0;
    }
    check(fc_large, "FC-heavy models (NCF/RM3/WnD/MT-WnD): ~order of "
                    "magnitude GPU speedup at batch ~10^3+");
    check(fc_small, "FC-heavy models: modest (~2-4x) GPU speedup at "
                    "small batch");

    // 2) RM1/RM2: below 4x on GPUs; Cascade Lake beats the 1080 Ti at
    //    small batch and lands near the T4.
    bool rm_low = true;
    for (ModelId id : {ModelId::kRM1, ModelId::kRM2}) {
        for (int64_t b : batches) {
            rm_low &= sweep.speedupOverBaseline(id, kGtx, b) < 4.5;
        }
    }
    check(rm_low, "RM1/RM2: GPU speedup stays low (< ~4x) at all "
                  "batch sizes");
    check(sweep.speedupOverBaseline(ModelId::kRM1, kClx, 16) >
              sweep.speedupOverBaseline(ModelId::kRM1, kGtx, 16) * 1.5,
          "RM1: Cascade Lake outperforms the 1080 Ti at small batch "
          "(by >= ~2x in the paper)");

    // 3) DIN: CPU wins below batch ~100; GPU saturates below ~4x.
    check(sweep.speedupOverBaseline(ModelId::kDIN, kGtx, 16) < 1.0 &&
              sweep.speedupOverBaseline(ModelId::kDIN, kGtx, 64) < 1.3,
          "DIN: Broadwell outperforms GPUs at batch < ~100");
    check(sweep.speedupOverBaseline(ModelId::kDIN, kGtx, 16384) < 6.0,
          "DIN: GPU speedup saturates at/below ~4x");

    // 4) DIEN: GPUs reach ~7x.
    const double dien_max =
        std::max(sweep.speedupOverBaseline(ModelId::kDIEN, kGtx, 16384),
                 sweep.speedupOverBaseline(ModelId::kDIEN, kT4, 16384));
    check(dien_max >= 5.0 && dien_max <= 11.0,
          "DIEN: GRU-based attention reaches ~7x on GPUs");

    // 5) Cascade Lake improves on Broadwell everywhere.
    bool clx_all = true;
    for (ModelId id : allModels()) {
        for (int64_t b : batches) {
            clx_all &= sweep.speedupOverBaseline(id, kClx, b) > 1.0;
        }
    }
    check(clx_all, "Cascade Lake outperforms Broadwell across all "
                   "models and batch sizes");

    // 6) T4 vs 1080 Ti: ahead at large batch for FC models.
    bool t4_large = true;
    for (ModelId id : {ModelId::kNCF, ModelId::kRM3, ModelId::kWnD,
                       ModelId::kMTWnD, ModelId::kDIEN}) {
        t4_large &= sweep.speedupOverBaseline(id, kT4, 16384) >
                    sweep.speedupOverBaseline(id, kGtx, 16384);
    }
    check(t4_large, "T4 overtakes the 1080 Ti at batch > ~10^3 for "
                    "NCF/RM3/WnD/MT-WnD/DIEN");

    // 7) PIM column (extension, docs/pim.md): near-memory offload
    //    tracks the SLS share. The embedding-dominated models gain
    //    multiples once the batch amortizes the host<->DPU transfer;
    //    the FC/GRU-dominated ones are bounded by their tiny SLS
    //    share (Amdahl) and see no end-to-end gain.
    bool pim_sls = true;
    for (ModelId id : {ModelId::kRM1, ModelId::kRM2}) {
        pim_sls &= sweep.speedupOverBaseline(id, kPim, 4096) >= 2.0;
    }
    check(pim_sls, "PIM (ext): SLS-dominated RM1/RM2 gain >= 2x over "
                   "Broadwell at large batch");
    bool pim_fc = true;
    for (ModelId id : {ModelId::kNCF, ModelId::kWnD, ModelId::kMTWnD,
                       ModelId::kDIEN}) {
        for (int64_t b : batches) {
            pim_fc &= sweep.speedupOverBaseline(id, kPim, b) <= 1.15;
        }
    }
    check(pim_fc, "PIM (ext): FC/GRU-dominated NCF/WnD/MT-WnD/DIEN see "
                  "no end-to-end gain at any batch");
    return 0;
}
