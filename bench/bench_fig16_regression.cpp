/**
 * @file
 * Fig. 16: linear-regression modeling of algorithmic
 * model-architecture components against pipeline bottlenecks. Data
 * points are the 8 models x batch sizes 1..16384 on Broadwell;
 * features are normalized so weight magnitude reads as impact.
 */

#include "bench_util.h"

using namespace recstack;
using namespace recstack::bench;

int
main()
{
    banner("Fig. 16", "Model-architecture features vs pipeline "
                      "bottlenecks (OLS)");

    SweepCache sweep(allPlatforms());
    const RegressionStudy study =
        runRegressionStudy(sweep, kBdw, paperBatchSizes());

    std::printf("observations: %zu (8 models x %zu batch sizes)\n\n",
                study.observations, paperBatchSizes().size());

    std::vector<std::string> headers = {"feature"};
    for (const auto& target : study.targetNames) {
        headers.push_back(target);
    }
    TextTable table(headers);
    for (size_t f = 0; f < study.featureNames.size(); ++f) {
        std::vector<std::string> row = {study.featureNames[f]};
        for (const auto& fit : study.fits) {
            row.push_back(TextTable::fmt(fit.weights[f], 3));
        }
        table.addRow(row);
    }
    std::vector<std::string> r2_row = {"(R^2)"};
    for (const auto& fit : study.fits) {
        r2_row.push_back(TextTable::fmt(fit.r2, 2));
    }
    table.addRow(r2_row);
    std::printf("%s", table.render().c_str());

    checkHeader();
    auto weight = [&](size_t target, const char* feature) {
        for (size_t f = 0; f < study.featureNames.size(); ++f) {
            if (study.featureNames[f] == feature) {
                return study.fits[target].weights[f];
            }
        }
        RECSTACK_FATAL("unknown feature " << feature);
    };
    // Target order: 0 retiring, 1 badspec, 2 frontend, 3 core, 4 mem.
    check(weight(1, "FCtoEmbRatio") < 0.0,
          "a high FC-to-embedding weight ratio correlates with LESS "
          "bad speculation (compute-heavy models have predictable "
          "branches)");

    // No bottleneck is explained by one dominant feature: the top
    // weight never carries more than ~2/3 of total magnitude.
    bool no_single = true;
    for (const auto& fit : study.fits) {
        double sum = 0.0, top = 0.0;
        for (double w : fit.weights) {
            sum += std::abs(w);
            top = std::max(top, std::abs(w));
        }
        no_single &= sum == 0.0 || top / sum < 0.67;
    }
    check(no_single, "no pipeline bottleneck is dominated by a single "
                     "algorithmic feature (the paper's headline "
                     "observation)");
    check(weight(4, "LookupsPerTable") > 0.0,
          "more lookups per table pushes the backend toward memory");
    return 0;
}
