/**
 * @file
 * Fig. 8: TopDown pipeline-slot breakdowns of the eight models at
 * batch 16 on Broadwell (top) and Cascade Lake (bottom).
 */

#include "bench_util.h"

using namespace recstack;
using namespace recstack::bench;

int
main()
{
    banner("Fig. 8", "TopDown pipeline slots, batch 16, BDW vs CLX");

    SweepCache sweep(allPlatforms());
    const int64_t batch = 16;

    auto dump = [&](size_t platform) {
        std::printf("\n--- %s ---\n", shortPlatformName(platform));
        for (ModelId id : allModels()) {
            const TopDownL1& l1 =
                sweep.get(id, platform, batch).topdown.l1;
            char label[16];
            std::snprintf(label, sizeof(label), "%-6s", modelName(id));
            std::printf("%s", stackedBar(label,
                                         {{"retire", l1.retiring},
                                          {"badspec", l1.badSpeculation},
                                          {"frontend", l1.frontendBound},
                                          {"backend", l1.backendBound}},
                                         44)
                                  .c_str());
        }
    };
    dump(kBdw);
    dump(kClx);

    checkHeader();
    auto td = [&](ModelId id, size_t p) {
        return sweep.get(id, p, batch).topdown;
    };

    // FC-heavy models retire most slots on Broadwell.
    bool fc_retire = true;
    for (ModelId id : {ModelId::kRM3, ModelId::kWnD, ModelId::kMTWnD}) {
        const TopDownL1& l1 = td(id, kBdw).l1;
        fc_retire &= l1.retiring >
                     std::max({l1.badSpeculation, l1.frontendBound});
    }
    check(fc_retire, "RM3/WnD/MT-WnD on BDW: retiring dominates "
                     "non-backend slots (matrix math retires well)");

    // Embedding models show meaningful bad speculation + frontend.
    bool emb_stalls = true;
    for (ModelId id : {ModelId::kRM1, ModelId::kRM2}) {
        const TopDownL1& l1 = td(id, kBdw).l1;
        emb_stalls &= (l1.badSpeculation + l1.frontendBound) > 0.08;
    }
    check(emb_stalls, "RM1/RM2 on BDW: visible bad-speculation + "
                      "frontend losses (irregular segment loops)");

    // Cascade Lake cuts bad speculation across the suite.
    bool clx_bs = true;
    for (ModelId id : allModels()) {
        clx_bs &= td(id, kClx).l1.badSpeculation <=
                  td(id, kBdw).l1.badSpeculation + 1e-9;
    }
    check(clx_bs, "Cascade Lake reduces bad-speculation slots for "
                  "every model");

    // Most models gain retiring share on CLX; the big-FC models do
    // not (fewer total instructions with AVX-512).
    int gained = 0;
    for (ModelId id : {ModelId::kNCF, ModelId::kRM1, ModelId::kRM2,
                       ModelId::kDIN, ModelId::kDIEN}) {
        gained += td(id, kClx).l1.retiring > td(id, kBdw).l1.retiring;
    }
    check(gained >= 3, "most non-FC models increase retiring share on "
                       "Cascade Lake");

    // Conservation: the four slices account for all slots.
    bool conserve = true;
    for (ModelId id : allModels()) {
        for (size_t p : {kBdw, kClx}) {
            conserve &= std::abs(td(id, p).l1Sum() - 1.0) < 1e-6;
        }
    }
    check(conserve, "TopDown level-1 slices sum to 100% of slots");
    return 0;
}
