/**
 * @file
 * Fig. 4: GPU data-communication overheads as a percentage of total
 * execution time, per model and batch size.
 */

#include "bench_util.h"
#include "graph/executor.h"

using namespace recstack;
using namespace recstack::bench;

namespace {

constexpr double kMiB = 1024.0 * 1024.0;

}  // namespace

int
main()
{
    banner("Fig. 4", "GPU data communication overhead (% of total time)");

    SweepCache sweep(allPlatforms());
    const auto batches = paperBatchSizes();

    for (size_t gpu : {kGtx, kT4}) {
        std::printf("\n--- %s ---\n", shortPlatformName(gpu));
        std::vector<std::string> headers = {"model"};
        for (int64_t b : batches) {
            headers.push_back("b=" + std::to_string(b));
        }
        TextTable table(headers);
        for (ModelId id : allModels()) {
            std::vector<std::string> row = {modelName(id)};
            for (int64_t b : batches) {
                row.push_back(TextTable::fmtPercent(
                    sweep.get(id, gpu, b).gpu.dataCommFraction()));
            }
            table.addRow(row);
        }
        std::printf("%s", table.render().c_str());
    }

    // Host-side staging memory behind the transfers, at the largest
    // batch of the figure. Activation bytes come from a shape-only
    // workspace, so the right accessor is plannedBytes() (would-be
    // payload of metadata-only blobs) — materializedBytes() is zero
    // here and totalBytes() would not say which kind it counted. The
    // planned column is the compiled net's arena peak for the same
    // batch (graph/compiled_net.h).
    const int64_t staging_batch = 4096;
    std::printf("\n--- host staging memory at b=%lld ---\n",
                static_cast<long long>(staging_batch));
    TextTable staging({"model", "inputs MiB", "activations MiB",
                       "planned arena MiB", "arena/naive"});
    bool arena_smaller = true;
    for (ModelId id : allModels()) {
        const Model& model = sweep.characterizer().model(id);
        Workspace ws;
        ws.setShapeOnly(true);
        model.declareParams(ws);
        const size_t param_bytes = ws.plannedBytes();
        BatchGenerator gen(model.workload);
        gen.declare(ws, staging_batch);
        const size_t input_bytes = ws.plannedBytes() - param_bytes;
        Executor::run(model.net, ws, ExecMode::kProfileOnly);
        const size_t act_bytes =
            ws.plannedBytes() - param_bytes - input_bytes;
        const NetPlan& plan = sweep.memoryPlan(id, staging_batch);
        arena_smaller &= plan.arenaBytes <= act_bytes;
        staging.addRow(
            {modelName(id),
             TextTable::fmt(static_cast<double>(input_bytes) / kMiB, 2),
             TextTable::fmt(static_cast<double>(act_bytes) / kMiB, 2),
             TextTable::fmt(static_cast<double>(plan.arenaBytes) / kMiB,
                            2),
             TextTable::fmtPercent(
                 static_cast<double>(plan.arenaBytes) /
                 static_cast<double>(std::max<size_t>(1, act_bytes)))});
    }
    std::printf("%s", staging.render().c_str());

    checkHeader();
    // Fraction grows with batch size once past the launch-latency
    // regime; the lookup-heavy models show it most clearly.
    bool grows = true;
    for (ModelId id : {ModelId::kRM1, ModelId::kRM2, ModelId::kDIN,
                       ModelId::kDIEN}) {
        grows &= sweep.get(id, kGtx, 16384).gpu.dataCommFraction() >
                 sweep.get(id, kGtx, 64).gpu.dataCommFraction();
    }
    check(grows, "data-communication share grows with batch size for "
                 "the embedding/attention models (compute accelerates, "
                 "transfer does not)");

    // Embedding-lookup models suffer most at large batch.
    const double rm2 =
        sweep.get(ModelId::kRM2, kGtx, 16384).gpu.dataCommFraction();
    const double rm3 =
        sweep.get(ModelId::kRM3, kGtx, 16384).gpu.dataCommFraction();
    check(rm2 > rm3, "models relying on embedding lookups (RM2) spend "
                     "a larger share on data movement than FC models "
                     "(RM3)");
    check(rm2 > 0.3, "at large batch, data communication is a major "
                     "(>30%) share for lookup-heavy models");
    check(arena_smaller, "liveness-planned arenas never stage more "
                         "host activation memory than per-blob "
                         "allocation");
    return 0;
}
