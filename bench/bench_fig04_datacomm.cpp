/**
 * @file
 * Fig. 4: GPU data-communication overheads as a percentage of total
 * execution time, per model and batch size.
 */

#include "bench_util.h"

using namespace recstack;
using namespace recstack::bench;

int
main()
{
    banner("Fig. 4", "GPU data communication overhead (% of total time)");

    SweepCache sweep(allPlatforms());
    const auto batches = paperBatchSizes();

    for (size_t gpu : {kGtx, kT4}) {
        std::printf("\n--- %s ---\n", shortPlatformName(gpu));
        std::vector<std::string> headers = {"model"};
        for (int64_t b : batches) {
            headers.push_back("b=" + std::to_string(b));
        }
        TextTable table(headers);
        for (ModelId id : allModels()) {
            std::vector<std::string> row = {modelName(id)};
            for (int64_t b : batches) {
                row.push_back(TextTable::fmtPercent(
                    sweep.get(id, gpu, b).gpu.dataCommFraction()));
            }
            table.addRow(row);
        }
        std::printf("%s", table.render().c_str());
    }

    checkHeader();
    // Fraction grows with batch size once past the launch-latency
    // regime; the lookup-heavy models show it most clearly.
    bool grows = true;
    for (ModelId id : {ModelId::kRM1, ModelId::kRM2, ModelId::kDIN,
                       ModelId::kDIEN}) {
        grows &= sweep.get(id, kGtx, 16384).gpu.dataCommFraction() >
                 sweep.get(id, kGtx, 64).gpu.dataCommFraction();
    }
    check(grows, "data-communication share grows with batch size for "
                 "the embedding/attention models (compute accelerates, "
                 "transfer does not)");

    // Embedding-lookup models suffer most at large batch.
    const double rm2 =
        sweep.get(ModelId::kRM2, kGtx, 16384).gpu.dataCommFraction();
    const double rm3 =
        sweep.get(ModelId::kRM3, kGtx, 16384).gpu.dataCommFraction();
    check(rm2 > rm3, "models relying on embedding lookups (RM2) spend "
                     "a larger share on data movement than FC models "
                     "(RM3)");
    check(rm2 > 0.3, "at large batch, data communication is a major "
                     "(>30%) share for lookup-heavy models");
    return 0;
}
