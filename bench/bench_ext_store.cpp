/**
 * @file
 * Extension bench: sharded embedding-store cache behaviour.
 *
 * Not a figure from the paper — an extension of its memory analysis
 * (Sec. "The landscape of production recommendation models" + the
 * Fig. 12/14 DRAM discussion): production deployments put the
 * multi-GB embedding tables behind a cached, tiered parameter store,
 * and the Zipfian lookup skew the paper models is exactly what makes
 * a small hot-row cache effective. This bench sweeps cache capacity,
 * Zipf exponent, shard count and replacement policy over a synthetic
 * table and reports demand hit-rates and the modeled p99 lookup cost,
 * plus a prefetch column showing the double-buffered warm-up lifting
 * the demand hit-rate.
 *
 * A third sweep turns on the REAL far tier (store/disk_tier.h): cold
 * rows live in a page file behind a radix-spline learned index, fetch
 * cost is measured wall clock, and a full model (RM2) is served with
 * near-tier DRAM far below one dense copy of its tables.
 */

#include <chrono>
#include <cinttypes>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "graph/executor.h"
#include "models/model.h"
#include "models/store_binding.h"
#include "store/embedding_store.h"
#include "store/spline_index.h"

namespace recstack {
namespace {

constexpr int64_t kRows = 200000;
constexpr int64_t kDim = 32;
constexpr int64_t kLookupsPerBatch = 4096;
constexpr int kBatches = 16;

/** Build a store holding one synthetic [kRows, kDim] table. */
std::unique_ptr<EmbeddingStore>
makeStore(size_t cache_bytes_total, int shards, CachePolicy policy,
          double near_fraction)
{
    StoreConfig cfg;
    cfg.numShards = shards;
    cfg.cacheBytesPerShard = cache_bytes_total / static_cast<size_t>(shards);
    cfg.policy = policy;
    cfg.nearTierFraction = near_fraction;
    auto store = std::make_unique<EmbeddingStore>(cfg);
    Tensor table({kRows, kDim});
    Rng rng(99);
    float* data = table.data<float>();
    for (int64_t i = 0; i < kRows * kDim; ++i) {
        data[i] = rng.nextFloat(-1.0f, 1.0f);
    }
    store->addTable("bench_table", std::move(table));
    return store;
}

struct RunStats {
    double hitRate = 0.0;
    double p99Cost = 0.0;
    double expected = 0.0;
};

/**
 * Drive kBatches Zipf(alpha) lookup batches through the store (one
 * warm-up pass excluded from stats) and report the demand hit-rate.
 * With @c prefetch, each batch's indices are queued for async warming
 * and drained before the demand reads — the serving-side double
 * buffer, where the warm-up is overlapped with the previous batch's
 * compute.
 */
RunStats
driveStore(EmbeddingStore& store, double alpha, bool prefetch)
{
    const ZipfSampler zipf(kRows, alpha);
    Rng rng(2024);
    std::vector<int64_t> indices(kLookupsPerBatch);
    std::vector<int64_t> offsets(2);
    std::vector<float> out(kDim);
    offsets[0] = 0;
    offsets[1] = kLookupsPerBatch;

    const auto run_batch = [&] {
        fillZipfIndices(zipf, rng, indices.data(), kLookupsPerBatch);
        if (prefetch) {
            store.prefetchAsync(0, indices);
            store.drainPrefetch();
        }
        store.lookupSum(0, indices.data(), offsets.data(), 0, 1,
                        out.data());
    };

    run_batch();  // warm-up batch
    store.resetStats();
    for (int b = 0; b < kBatches; ++b) {
        run_batch();
    }
    RunStats rs;
    const StoreStats stats = store.stats();
    rs.hitRate = stats.hitRate();
    rs.p99Cost = stats.costPercentile(0.99);
    rs.expected = store.expectedHitRate(0, alpha);
    return rs;
}

}  // namespace
}  // namespace recstack

int
main()
{
    using namespace recstack;
    using namespace recstack::bench;

    banner("EXT-STORE", "sharded embedding store: hit rate and lookup "
                        "cost vs cache size, skew, shards");
    std::printf("table: %" PRId64 " rows x %" PRId64
                " dims (%.1f MB), %d batches x %" PRId64
                " lookups after warm-up\n\n",
                kRows, kDim,
                static_cast<double>(kRows * kDim * 4) / (1u << 20),
                kBatches, kLookupsPerBatch);

    const std::vector<size_t> kCaches = {64u << 10, 256u << 10,
                                         1u << 20, 4u << 20};
    const std::vector<double> kAlphas = {0.0, 0.6, 0.9, 1.2};

    // --- Sweep 1: cache capacity x Zipf exponent (LRU, 8 shards). ---
    TextTable grid({"cache", "alpha", "hit rate", "expected",
                    "p99 cost", "prefetch hit"});
    // hit[ci][ai] of the demand-only runs, for the PAPER-CHECKs.
    std::vector<std::vector<double>> hit(
        kCaches.size(), std::vector<double>(kAlphas.size(), 0.0));
    std::vector<std::vector<double>> pre_hit = hit;
    for (size_t ci = 0; ci < kCaches.size(); ++ci) {
        for (size_t ai = 0; ai < kAlphas.size(); ++ai) {
            auto store =
                makeStore(kCaches[ci], 8, CachePolicy::kLRU, 0.5);
            const RunStats rs =
                driveStore(*store, kAlphas[ai], /*prefetch=*/false);
            auto warm =
                makeStore(kCaches[ci], 8, CachePolicy::kLRU, 0.5);
            const RunStats ps =
                driveStore(*warm, kAlphas[ai], /*prefetch=*/true);
            hit[ci][ai] = rs.hitRate;
            pre_hit[ci][ai] = ps.hitRate;
            grid.addRow({std::to_string(kCaches[ci] >> 10) + " KB",
                         TextTable::fmt(kAlphas[ai], 1),
                         TextTable::fmtPercent(rs.hitRate),
                         TextTable::fmtPercent(rs.expected),
                         TextTable::fmtSeconds(rs.p99Cost),
                         TextTable::fmtPercent(ps.hitRate)});
        }
    }
    std::printf("%s\n", grid.render().c_str());

    // --- Sweep 2: shard count and policy at fixed 1 MB / alpha 0.9. ---
    TextTable shards({"shards", "policy", "hit rate", "p99 cost"});
    std::vector<double> policy_hit;
    for (int nshards : {1, 4, 16}) {
        for (CachePolicy policy :
             {CachePolicy::kLRU, CachePolicy::kClock}) {
            auto store = makeStore(1u << 20, nshards, policy, 0.5);
            const RunStats rs =
                driveStore(*store, 0.9, /*prefetch=*/false);
            policy_hit.push_back(rs.hitRate);
            shards.addRow({std::to_string(nshards),
                           cachePolicyName(policy),
                           TextTable::fmtPercent(rs.hitRate),
                           TextTable::fmtSeconds(rs.p99Cost)});
        }
    }
    std::printf("%s\n", shards.render().c_str());

    // --- Sweep 3: the real disk far tier (page file + spline). ---
    TextTable disk({"cache", "hit rate", "disk fetches", "disk p99",
                    "promoted", "resident"});
    std::vector<double> disk_hit;
    bool disk_served = true;
    for (size_t cache : kCaches) {
        StoreConfig cfg;
        cfg.numShards = 8;
        cfg.cacheBytesPerShard = cache / 8;
        cfg.nearTierFraction = 0.25;
        cfg.farTier = FarTierKind::kDisk;
        auto store = std::make_unique<EmbeddingStore>(cfg);
        {
            Tensor table({kRows, kDim});
            Rng rng(99);
            float* data = table.data<float>();
            for (int64_t i = 0; i < kRows * kDim; ++i) {
                data[i] = rng.nextFloat(-1.0f, 1.0f);
            }
            store->addTable("bench_table", std::move(table));
        }
        const RunStats rs = driveStore(*store, 0.9, /*prefetch=*/false);
        const StoreStats stats = store->stats();
        if (stats.total.diskFetches == 0) {
            disk_served = false;
        }
        disk_hit.push_back(rs.hitRate);
        disk.addRow({std::to_string(cache >> 10) + " KB",
                     TextTable::fmtPercent(rs.hitRate),
                     std::to_string(stats.total.diskFetches),
                     TextTable::fmtSeconds(stats.diskCostPercentile(0.99)),
                     std::to_string(stats.total.promotedRows),
                     std::to_string(store->residentBytes() >> 10) +
                         " KB"});
    }
    std::printf("%s\n", disk.render().c_str());
    bool disk_cap_monotone = true;
    for (size_t i = 1; i < disk_hit.size(); ++i) {
        if (disk_hit[i] + 0.01 < disk_hit[i - 1]) {
            disk_cap_monotone = false;
        }
    }

    // --- Spline vs. binary search on the cold-key set. ---
    // ~2M sparse keys with random gaps (no closed-form position, so
    // the spline has real segments to fit); accumulate the found
    // ordinals so the loop cannot be optimized away. Best of three
    // trials per side.
    const size_t kSplineKeys = 2'000'000;
    std::vector<uint64_t> cold_keys;
    cold_keys.reserve(kSplineKeys);
    {
        Rng rng(31);
        uint64_t k = 1000;
        for (size_t i = 0; i < kSplineKeys; ++i) {
            k += 1 + rng.nextBounded(10007);
            cold_keys.push_back(k);
        }
    }
    const SplineIndex spline(cold_keys, {});
    std::vector<uint64_t> probes = cold_keys;
    {
        Rng rng(7);
        for (size_t i = probes.size(); i > 1; --i) {
            std::swap(probes[i - 1],
                      probes[rng.nextBounded(static_cast<uint64_t>(i))]);
        }
    }
    uint64_t sink = 0;
    double spline_s = 1e30;
    double binary_s = 1e30;
    for (int trial = 0; trial < 3; ++trial) {
        auto t0 = std::chrono::steady_clock::now();
        for (uint64_t key : probes) {
            sink += spline.find(key);
        }
        spline_s = std::min(
            spline_s, std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count());
        t0 = std::chrono::steady_clock::now();
        for (uint64_t key : probes) {
            sink += spline.findBinarySearch(key);
        }
        binary_s = std::min(
            binary_s, std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count());
    }
    const SplineIndexStats ss = spline.stats();
    std::printf("spline index: %zu keys, %zu segments, err bound %zu "
                "(observed %zu), %zu KB; lookup %.1f ns vs binary "
                "search %.1f ns (sink %" PRIu64 ")\n\n",
                ss.numKeys, ss.numSegments, ss.maxErrorBound,
                ss.maxErrorObserved, ss.indexBytes >> 10,
                1e9 * spline_s / static_cast<double>(probes.size()),
                1e9 * binary_s / static_cast<double>(probes.size()),
                sink);

    // --- A whole model served mostly from disk. ---
    bool model_from_disk = true;
    bool model_bit_exact = true;
    uint64_t model_dense_bytes = 0;
    uint64_t model_resident = 0;
    {
        ModelOptions opts = tinyOptions();
        opts.tableScale = 0.05;
        const Model model = buildModel(ModelId::kRM2, opts);
        Workspace ref_ws;
        model.initParams(ref_ws);
        {
            BatchGenerator gen(model.workload, /*seed=*/77);
            gen.materialize(ref_ws, 64);
        }
        Executor::run(model.net, ref_ws, ExecMode::kNumericOnly);

        StoreConfig cfg;
        cfg.numShards = 4;
        cfg.cacheBytesPerShard = 16u << 10;
        cfg.nearTierFraction = 0.05;  // tables >> near-tier bytes
        cfg.farTier = FarTierKind::kDisk;
        const StoreBackedModel disk_model(model, cfg);
        Workspace ws;
        disk_model.bind(ws);
        BatchGenerator gen(model.workload, /*seed=*/77);
        gen.materialize(ws, 64);
        Executor::run(model.net, ws, ExecMode::kNumericOnly);
        for (const std::string& blob : model.net.externalOutputs()) {
            const Tensor& a = ref_ws.get(blob);
            const Tensor& b = ws.get(blob);
            if (std::memcmp(a.data<float>(), b.data<float>(),
                            a.byteSize()) != 0) {
                model_bit_exact = false;
            }
        }
        const EmbeddingStore& store = disk_model.store();
        for (size_t t = 0; t < store.numTables(); ++t) {
            const auto& info = store.tableInfo(static_cast<int>(t));
            model_dense_bytes += static_cast<uint64_t>(
                info.rows * info.dim * 4);
        }
        model_resident = store.tableBytes();
        if (store.stats().total.diskFetches == 0 ||
            model_resident >= model_dense_bytes) {
            model_from_disk = false;
        }
        std::printf("RM2 from disk: dense tables %.1f MB, resident "
                    "near tier %.1f MB, disk fetches %" PRIu64
                    ", file %.1f MB\n\n",
                    static_cast<double>(model_dense_bytes) / (1u << 20),
                    static_cast<double>(model_resident) / (1u << 20),
                    store.stats().total.diskFetches,
                    static_cast<double>(store.diskFileBytes()) /
                        (1u << 20));
    }

    // --- Checks. ---
    bool cap_monotone = true;
    for (size_t ai = 0; ai < kAlphas.size(); ++ai) {
        for (size_t ci = 1; ci < kCaches.size(); ++ci) {
            // Tolerate sub-percent sampling noise at uniform skew.
            if (hit[ci][ai] + 0.01 < hit[ci - 1][ai]) {
                cap_monotone = false;
            }
        }
    }
    bool skew_monotone = true;
    for (size_t ci = 0; ci < kCaches.size(); ++ci) {
        for (size_t ai = 1; ai < kAlphas.size(); ++ai) {
            if (hit[ci][ai] + 0.01 < hit[ci][ai - 1]) {
                skew_monotone = false;
            }
        }
    }
    // Prefetching a batch that overflows the cache self-evicts; the
    // useful regime is a cache holding at least one batch, where the
    // warm-up converts every demand miss into a hit. Outside it the
    // perturbation must stay in the noise.
    bool prefetch_helps = true;
    const size_t batch_bytes =
        static_cast<size_t>(kLookupsPerBatch * kDim * 4);
    for (size_t ci = 0; ci < kCaches.size(); ++ci) {
        for (size_t ai = 0; ai < kAlphas.size(); ++ai) {
            if (kCaches[ci] >= 2 * batch_bytes) {
                if (pre_hit[ci][ai] < 0.99) {
                    prefetch_helps = false;
                }
            } else if (pre_hit[ci][ai] + 0.02 < hit[ci][ai]) {
                prefetch_helps = false;
            }
        }
    }
    bool clock_tracks_lru = true;
    for (size_t i = 0; i + 1 < policy_hit.size(); i += 2) {
        if (std::fabs(policy_hit[i] - policy_hit[i + 1]) > 0.10) {
            clock_tracks_lru = false;
        }
    }

    checkHeader();
    check(cap_monotone, "hit rate rises monotonically with cache "
                        "capacity at every Zipf exponent");
    check(skew_monotone, "hit rate rises monotonically with Zipf "
                         "exponent at every cache capacity (hot-entry "
                         "skew is what makes small caches work)");
    check(prefetch_helps,
          "async next-batch prefetch turns a batch-sized cache into "
          "all demand hits (double-buffered warm-up)");
    check(clock_tracks_lru, "CLOCK second-chance stays within 10% "
                            "hit-rate of exact LRU at every shard "
                            "count");
    check(disk_cap_monotone && disk_served,
          "with the disk far tier live, demand hit rate still rises "
          "monotonically with cache capacity and cold rows really "
          "come off the page file");
    check(spline_s <= binary_s * 1.10,
          "radix-spline lookup is at least as fast as binary search "
          "over the 2M-key cold set");
    check(model_bit_exact && model_from_disk,
          "a model whose tables exceed the near tier serves "
          "bit-exactly from disk with resident table DRAM below one "
          "dense copy");
    return 0;
}
