/**
 * @file
 * Extension bench: sharded embedding-store cache behaviour.
 *
 * Not a figure from the paper — an extension of its memory analysis
 * (Sec. "The landscape of production recommendation models" + the
 * Fig. 12/14 DRAM discussion): production deployments put the
 * multi-GB embedding tables behind a cached, tiered parameter store,
 * and the Zipfian lookup skew the paper models is exactly what makes
 * a small hot-row cache effective. This bench sweeps cache capacity,
 * Zipf exponent, shard count and replacement policy over a synthetic
 * table and reports demand hit-rates and the modeled p99 lookup cost,
 * plus a prefetch column showing the double-buffered warm-up lifting
 * the demand hit-rate.
 */

#include <cinttypes>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "store/embedding_store.h"

namespace recstack {
namespace {

constexpr int64_t kRows = 200000;
constexpr int64_t kDim = 32;
constexpr int64_t kLookupsPerBatch = 4096;
constexpr int kBatches = 16;

/** Build a store holding one synthetic [kRows, kDim] table. */
std::unique_ptr<EmbeddingStore>
makeStore(size_t cache_bytes_total, int shards, CachePolicy policy,
          double near_fraction)
{
    StoreConfig cfg;
    cfg.numShards = shards;
    cfg.cacheBytesPerShard = cache_bytes_total / static_cast<size_t>(shards);
    cfg.policy = policy;
    cfg.nearTierFraction = near_fraction;
    auto store = std::make_unique<EmbeddingStore>(cfg);
    Tensor table({kRows, kDim});
    Rng rng(99);
    float* data = table.data<float>();
    for (int64_t i = 0; i < kRows * kDim; ++i) {
        data[i] = rng.nextFloat(-1.0f, 1.0f);
    }
    store->addTable("bench_table", std::move(table));
    return store;
}

struct RunStats {
    double hitRate = 0.0;
    double p99Cost = 0.0;
    double expected = 0.0;
};

/**
 * Drive kBatches Zipf(alpha) lookup batches through the store (one
 * warm-up pass excluded from stats) and report the demand hit-rate.
 * With @c prefetch, each batch's indices are queued for async warming
 * and drained before the demand reads — the serving-side double
 * buffer, where the warm-up is overlapped with the previous batch's
 * compute.
 */
RunStats
driveStore(EmbeddingStore& store, double alpha, bool prefetch)
{
    const ZipfSampler zipf(kRows, alpha);
    Rng rng(2024);
    std::vector<int64_t> indices(kLookupsPerBatch);
    std::vector<int64_t> offsets(2);
    std::vector<float> out(kDim);
    offsets[0] = 0;
    offsets[1] = kLookupsPerBatch;

    const auto run_batch = [&] {
        fillZipfIndices(zipf, rng, indices.data(), kLookupsPerBatch);
        if (prefetch) {
            store.prefetchAsync(0, indices);
            store.drainPrefetch();
        }
        store.lookupSum(0, indices.data(), offsets.data(), 0, 1,
                        out.data());
    };

    run_batch();  // warm-up batch
    store.resetStats();
    for (int b = 0; b < kBatches; ++b) {
        run_batch();
    }
    RunStats rs;
    const StoreStats stats = store.stats();
    rs.hitRate = stats.hitRate();
    rs.p99Cost = stats.costPercentile(0.99);
    rs.expected = store.expectedHitRate(0, alpha);
    return rs;
}

}  // namespace
}  // namespace recstack

int
main()
{
    using namespace recstack;
    using namespace recstack::bench;

    banner("EXT-STORE", "sharded embedding store: hit rate and lookup "
                        "cost vs cache size, skew, shards");
    std::printf("table: %" PRId64 " rows x %" PRId64
                " dims (%.1f MB), %d batches x %" PRId64
                " lookups after warm-up\n\n",
                kRows, kDim,
                static_cast<double>(kRows * kDim * 4) / (1u << 20),
                kBatches, kLookupsPerBatch);

    const std::vector<size_t> kCaches = {64u << 10, 256u << 10,
                                         1u << 20, 4u << 20};
    const std::vector<double> kAlphas = {0.0, 0.6, 0.9, 1.2};

    // --- Sweep 1: cache capacity x Zipf exponent (LRU, 8 shards). ---
    TextTable grid({"cache", "alpha", "hit rate", "expected",
                    "p99 cost", "prefetch hit"});
    // hit[ci][ai] of the demand-only runs, for the PAPER-CHECKs.
    std::vector<std::vector<double>> hit(
        kCaches.size(), std::vector<double>(kAlphas.size(), 0.0));
    std::vector<std::vector<double>> pre_hit = hit;
    for (size_t ci = 0; ci < kCaches.size(); ++ci) {
        for (size_t ai = 0; ai < kAlphas.size(); ++ai) {
            auto store =
                makeStore(kCaches[ci], 8, CachePolicy::kLRU, 0.5);
            const RunStats rs =
                driveStore(*store, kAlphas[ai], /*prefetch=*/false);
            auto warm =
                makeStore(kCaches[ci], 8, CachePolicy::kLRU, 0.5);
            const RunStats ps =
                driveStore(*warm, kAlphas[ai], /*prefetch=*/true);
            hit[ci][ai] = rs.hitRate;
            pre_hit[ci][ai] = ps.hitRate;
            grid.addRow({std::to_string(kCaches[ci] >> 10) + " KB",
                         TextTable::fmt(kAlphas[ai], 1),
                         TextTable::fmtPercent(rs.hitRate),
                         TextTable::fmtPercent(rs.expected),
                         TextTable::fmtSeconds(rs.p99Cost),
                         TextTable::fmtPercent(ps.hitRate)});
        }
    }
    std::printf("%s\n", grid.render().c_str());

    // --- Sweep 2: shard count and policy at fixed 1 MB / alpha 0.9. ---
    TextTable shards({"shards", "policy", "hit rate", "p99 cost"});
    std::vector<double> policy_hit;
    for (int nshards : {1, 4, 16}) {
        for (CachePolicy policy :
             {CachePolicy::kLRU, CachePolicy::kClock}) {
            auto store = makeStore(1u << 20, nshards, policy, 0.5);
            const RunStats rs =
                driveStore(*store, 0.9, /*prefetch=*/false);
            policy_hit.push_back(rs.hitRate);
            shards.addRow({std::to_string(nshards),
                           cachePolicyName(policy),
                           TextTable::fmtPercent(rs.hitRate),
                           TextTable::fmtSeconds(rs.p99Cost)});
        }
    }
    std::printf("%s\n", shards.render().c_str());

    // --- Checks. ---
    bool cap_monotone = true;
    for (size_t ai = 0; ai < kAlphas.size(); ++ai) {
        for (size_t ci = 1; ci < kCaches.size(); ++ci) {
            // Tolerate sub-percent sampling noise at uniform skew.
            if (hit[ci][ai] + 0.01 < hit[ci - 1][ai]) {
                cap_monotone = false;
            }
        }
    }
    bool skew_monotone = true;
    for (size_t ci = 0; ci < kCaches.size(); ++ci) {
        for (size_t ai = 1; ai < kAlphas.size(); ++ai) {
            if (hit[ci][ai] + 0.01 < hit[ci][ai - 1]) {
                skew_monotone = false;
            }
        }
    }
    // Prefetching a batch that overflows the cache self-evicts; the
    // useful regime is a cache holding at least one batch, where the
    // warm-up converts every demand miss into a hit. Outside it the
    // perturbation must stay in the noise.
    bool prefetch_helps = true;
    const size_t batch_bytes =
        static_cast<size_t>(kLookupsPerBatch * kDim * 4);
    for (size_t ci = 0; ci < kCaches.size(); ++ci) {
        for (size_t ai = 0; ai < kAlphas.size(); ++ai) {
            if (kCaches[ci] >= 2 * batch_bytes) {
                if (pre_hit[ci][ai] < 0.99) {
                    prefetch_helps = false;
                }
            } else if (pre_hit[ci][ai] + 0.02 < hit[ci][ai]) {
                prefetch_helps = false;
            }
        }
    }
    bool clock_tracks_lru = true;
    for (size_t i = 0; i + 1 < policy_hit.size(); i += 2) {
        if (std::fabs(policy_hit[i] - policy_hit[i + 1]) > 0.10) {
            clock_tracks_lru = false;
        }
    }

    checkHeader();
    check(cap_monotone, "hit rate rises monotonically with cache "
                        "capacity at every Zipf exponent");
    check(skew_monotone, "hit rate rises monotonically with Zipf "
                         "exponent at every cache capacity (hot-entry "
                         "skew is what makes small caches work)");
    check(prefetch_helps,
          "async next-batch prefetch turns a batch-sized cache into "
          "all demand hits (double-buffered warm-up)");
    check(clock_tracks_lru, "CLOCK second-chance stays within 10% "
                            "hit-rate of exact LRU at every shard "
                            "count");
    return 0;
}
