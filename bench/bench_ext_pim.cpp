/**
 * @file
 * Extension: near-memory (PIM) embedding offload — rank-count and
 * tasklet sweeps over the analytical UPMEM-style platform
 * (src/pim/pim_model.h), plus the Fig. 3-style three-platform table
 * (Broadwell / T4 / PIM).
 *
 * The paper's cross-stack claim is that recommendation inference is
 * bottlenecked by irregular SparseLengthsSum traffic; near-memory
 * offload is the architectural answer the ROADMAP closes with. The
 * checks pin the qualitative shape that story must have:
 *
 *  - models whose CPU time is dominated by the SLS family (RM1, RM2)
 *    gain multiples end-to-end once the batch amortizes the host<->DPU
 *    transfer; FC/GRU-dominated models (WnD, DIEN) are Amdahl-bound by
 *    their tiny SLS share and see no gain;
 *  - the offloaded ops themselves always beat their CPU execution at
 *    large batch (even DIEN's small SLS share), while at batch 1 the
 *    per-op transfer latency makes PIM lose everywhere — which is why
 *    the serving engine routes by a batch-size threshold
 *    (docs/scheduling.md, docs/pim.md);
 *  - throughput is monotone in ranks and saturates at the host<->DPU
 *    transfer bound: past a few ranks the DPU term vanishes and more
 *    silicon buys nothing.
 */

#include "bench_util.h"
#include "pim/pim_model.h"

using namespace recstack;
using namespace recstack::bench;

namespace {

/** CPU seconds the SLS-family ops take in a run's breakdown. */
double
slsSeconds(const RunResult& r)
{
    double s = 0.0;
    for (const auto& [type, seconds] : r.breakdown.byType()) {
        if (type == "SparseLengthsSum" ||
            type == "SparseLengthsWeightedSum" ||
            type == "SparseLengthsMean") {
            s += seconds;
        }
    }
    return s;
}

}  // namespace

int
main()
{
    banner("Extension: PIM offload",
           "Near-memory embedding offload: rank/tasklet sweeps and the "
           "three-platform comparison");

    const std::vector<ModelId> models = {ModelId::kRM1, ModelId::kRM2,
                                         ModelId::kWnD, ModelId::kDIEN};
    const int64_t big_batch = 4096;
    const PimConfig base = upmemPimConfig();

    Characterizer c;
    struct ModelRow {
        ModelId id;
        RunResult cpu;
        RunResult gpu;
        RunResult pim;
        double hostSeconds = 0.0;  ///< PIM total minus offload
        std::vector<KernelProfile> offload;
        double cpuBatch1 = 0.0;
        double pimBatch1 = 0.0;
    };
    std::vector<ModelRow> rows;
    for (ModelId id : models) {
        ModelRow row;
        row.id = id;
        uint64_t input_bytes = 0;
        size_t input_blobs = 0;
        const std::vector<KernelProfile> profiles =
            c.profiles(id, big_batch, &input_bytes, &input_blobs);
        for (const KernelProfile& kp : profiles) {
            if (PimModel::offloadable(kp)) {
                row.offload.push_back(kp);
            }
        }
        row.cpu = simulateProfiles(profiles,
                                   makeCpuPlatform(broadwellConfig()),
                                   id, big_batch, input_bytes,
                                   input_blobs);
        row.gpu = simulateProfiles(profiles, makeGpuPlatform(t4Config()),
                                   id, big_batch, input_bytes,
                                   input_blobs);
        row.pim = simulateProfiles(profiles, makePimPlatform(base), id,
                                   big_batch, input_bytes, input_blobs);
        row.hostSeconds = row.pim.seconds - row.pim.pim.offloadSeconds;

        uint64_t b1_bytes = 0;
        size_t b1_blobs = 0;
        const std::vector<KernelProfile> b1 =
            c.profiles(id, 1, &b1_bytes, &b1_blobs);
        row.cpuBatch1 =
            simulateProfiles(b1, makeCpuPlatform(broadwellConfig()), id,
                             1, b1_bytes, b1_blobs)
                .seconds;
        row.pimBatch1 = simulateProfiles(b1, makePimPlatform(base), id,
                                         1, b1_bytes, b1_blobs)
                            .seconds;
        rows.push_back(std::move(row));
    }

    std::printf("\n--- three platforms at batch %lld ---\n",
                static_cast<long long>(big_batch));
    TextTable table({"model", "CPU SLS share", "BDW", "T4", "PIM",
                     "PIM speedup"});
    for (const ModelRow& row : rows) {
        table.addRow(
            {modelName(row.id),
             TextTable::fmtPercent(slsSeconds(row.cpu) /
                                   row.cpu.seconds),
             TextTable::fmtSeconds(row.cpu.seconds),
             TextTable::fmtSeconds(row.gpu.seconds),
             TextTable::fmtSeconds(row.pim.seconds),
             TextTable::fmtSpeedup(row.cpu.seconds /
                                   row.pim.seconds)});
    }
    std::printf("%s", table.render().c_str());

    // Rank sweep: re-price only the analytical offload (the host share
    // does not depend on the rank count).
    const std::vector<int> rank_points = {1, 2, 4, 8, 16, 32, 64, 128};
    std::printf("\n--- rank sweep, end-to-end speedup vs Broadwell "
                "(batch %lld) ---\n",
                static_cast<long long>(big_batch));
    std::vector<std::string> rank_header = {"model"};
    for (int ranks : rank_points) {
        rank_header.push_back("r" + std::to_string(ranks));
    }
    TextTable rank_table(rank_header);
    // speedups[model][rank point]
    std::vector<std::vector<double>> speedups;
    for (const ModelRow& row : rows) {
        std::vector<std::string> cells = {modelName(row.id)};
        std::vector<double> s;
        for (int ranks : rank_points) {
            PimConfig cfg = base;
            cfg.ranks = ranks;
            PimModel m(cfg);
            const double total =
                row.hostSeconds +
                m.simulateOffload(row.offload).offloadSeconds;
            s.push_back(row.cpu.seconds / total);
            cells.push_back(TextTable::fmtSpeedup(s.back()));
        }
        speedups.push_back(std::move(s));
        rank_table.addRow(cells);
    }
    std::printf("%s", rank_table.render().c_str());

    // Tasklet sweep at the base rank count.
    const std::vector<int> tasklet_points = {1, 2, 4, 8, 11, 16, 24};
    std::printf("\n--- tasklet sweep, offload seconds (batch %lld, "
                "%d ranks) ---\n",
                static_cast<long long>(big_batch), base.ranks);
    std::vector<std::string> t_header = {"model"};
    for (int t : tasklet_points) {
        t_header.push_back("t" + std::to_string(t));
    }
    TextTable t_table(t_header);
    bool tasklet_monotone = true;
    for (const ModelRow& row : rows) {
        std::vector<std::string> cells = {modelName(row.id)};
        double prev = -1.0;
        for (int t : tasklet_points) {
            PimConfig cfg = base;
            cfg.taskletsPerDpu = t;
            PimModel m(cfg);
            const double off =
                m.simulateOffload(row.offload).offloadSeconds;
            if (prev >= 0.0 && off > prev * (1.0 + 1e-9)) {
                tasklet_monotone = false;
            }
            prev = off;
            cells.push_back(TextTable::fmtSeconds(off));
        }
        t_table.addRow(cells);
    }
    std::printf("%s", t_table.render().c_str());

    checkHeader();
    // 1) SLS-dominated models gain; the gain tracks the SLS share.
    bool sls_gain = true;
    for (size_t i = 0; i < rows.size(); ++i) {
        const ModelRow& row = rows[i];
        if (slsSeconds(row.cpu) / row.cpu.seconds > 0.5) {
            sls_gain &= row.cpu.seconds / row.pim.seconds >= 2.0;
        }
    }
    check(sls_gain, "SLS-dominated models (RM1/RM2: CPU SLS share > "
                    "50%) gain >= 2x end-to-end at large batch");

    // 2) FC/GRU-dominated models see no end-to-end gain.
    bool fc_flat = true;
    for (const ModelRow& row : rows) {
        if (slsSeconds(row.cpu) / row.cpu.seconds < 0.15) {
            fc_flat &= row.cpu.seconds / row.pim.seconds <= 1.15;
        }
    }
    check(fc_flat, "FC/GRU-dominated models (WnD/DIEN: CPU SLS share < "
                   "15%) see <= 1.15x — Amdahl-bound by the share");

    // 3) Per-op gain tracks the pooling factor (table bytes gathered
    //    per pooled byte returned). Heavy pooling (RM1: 80 lookups
    //    per output row, RM2: 120) compresses the download and the
    //    DPUs win by an order of magnitude; factor-~1 ops (WnD's
    //    one-lookup tables, DIEN) must ship the same bytes over the
    //    narrow host<->DPU link that the CPU reads from DRAM, so the
    //    download bound erases the advantage.
    bool pooled_gain = true;
    bool unpooled_flat = true;
    for (const ModelRow& row : rows) {
        const double factor =
            row.pim.pim.downloadBytes > 0
                ? static_cast<double>(row.pim.pim.tableBytes) /
                      static_cast<double>(row.pim.pim.downloadBytes)
                : 1.0;
        if (factor >= 5.0) {
            pooled_gain &= row.pim.pim.offloadSeconds <
                           slsSeconds(row.cpu) / 5.0;
        } else {
            unpooled_flat &= row.pim.pim.offloadSeconds >
                             slsSeconds(row.cpu) * 0.75;
        }
    }
    check(pooled_gain, "heavily pooled SLS ops (RM1/RM2: >= 5 table "
                       "bytes per pooled byte) run >= 5x faster on "
                       "the DPU ranks than on the CPU");
    check(unpooled_flat, "pooling-factor-~1 ops (WnD/DIEN) stay "
                         "download-bound: near-memory execution buys "
                         "nothing when the result is as big as the "
                         "gather");

    // 4) At batch 1 the per-op transfer latency dominates: PIM loses
    //    everywhere, which is what the threshold routing exists for.
    bool b1_loses = true;
    for (const ModelRow& row : rows) {
        b1_loses &= row.pimBatch1 >= row.cpuBatch1 * 0.99;
    }
    check(b1_loses, "at batch 1 the host<->DPU latency makes PIM no "
                    "better than the CPU on every model (threshold "
                    "routing keeps small batches on the host)");

    // 5) Monotone in ranks: more ranks never slow the offload.
    bool rank_monotone = true;
    for (const auto& s : speedups) {
        for (size_t i = 1; i < s.size(); ++i) {
            rank_monotone &= s[i] >= s[i - 1] * (1.0 - 1e-9);
        }
    }
    check(rank_monotone, "end-to-end speedup is monotone "
                         "nondecreasing in the rank count");

    // 6) Saturation at the transfer bound: the last rank doubling
    //    (64 -> 128) moves the SLS-heavy models' speedup by < 5%.
    bool saturates = true;
    for (size_t i = 0; i < rows.size(); ++i) {
        if (slsSeconds(rows[i].cpu) / rows[i].cpu.seconds > 0.5) {
            const std::vector<double>& s = speedups[i];
            saturates &=
                s[s.size() - 1] <= s[s.size() - 2] * 1.05;
        }
    }
    // Cross-check against the analytical floor: the offload time at
    // 128 ranks is within 10% of dispatch + transfers alone.
    PimConfig big = base;
    big.ranks = 128;
    PimModel bound_model(big);
    for (const ModelRow& row : rows) {
        double floor_s = 0.0;
        for (const KernelProfile& kp : row.offload) {
            floor_s += bound_model.transferBoundSeconds(kp);
        }
        const double off =
            bound_model.simulateOffload(row.offload).offloadSeconds;
        saturates &= off <= floor_s * 1.10;
    }
    check(saturates, "speedup saturates at the host<->DPU transfer "
                     "bound: 64 -> 128 ranks moves < 5%, and the "
                     "128-rank offload sits within 10% of the "
                     "transfer-only floor");

    // 7) Tasklet scaling helps until the pipeline fills, never hurts.
    check(tasklet_monotone, "offload time is monotone nonincreasing "
                            "in tasklets/DPU (saturating at pipeline "
                            "fill / WRAM limit)");
    return 0;
}
