/**
 * @file
 * Extension bench: overhead of the runtime observability layer.
 *
 * Not a paper figure — this quantifies the cost of the
 * instrumentation added for the paper-style characterization
 * workflow (docs/observability.md quotes these numbers):
 *
 *  1. disabled-span cost: a hot loop executing RECSTACK_SPAN with
 *     tracing off, vs the same loop with no macro at all;
 *  2. enabled-span cost: the same loop with tracing on (clock reads +
 *     one buffer slot per span);
 *  3. counter/histogram update cost per operation;
 *  4. end-to-end serving: a profile-mode engine run with tracing off
 *     vs on, confirming the virtual-time statistics are identical
 *     either way (instrumentation must never perturb what it
 *     measures).
 */

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "sched/query_scheduler.h"
#include "serve/serving_engine.h"

namespace recstack {
namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Opaque sink so the compiler cannot elide the measured loop bodies.
volatile uint64_t g_sink = 0;

constexpr int kSpanIters = 2000000;

double
baselineLoopSeconds()
{
    const auto start = Clock::now();
    for (int i = 0; i < kSpanIters; ++i) {
        g_sink = g_sink + 1;
    }
    return secondsSince(start);
}

double
spanLoopSeconds()
{
    const auto start = Clock::now();
    for (int i = 0; i < kSpanIters; ++i) {
        RECSTACK_SPAN("bench.span");
        g_sink = g_sink + 1;
    }
    return secondsSince(start);
}

int
runBench()
{
    bench::banner("EXT-OBS",
                  "observability overhead: spans, metrics, serving");

    // -- span macro cost, disabled vs enabled ------------------------
    obs::setTraceEnabled(false);
    obs::TraceBuffer::global().clear();
    const double base_s = baselineLoopSeconds();
    const double off_s = spanLoopSeconds();
    const size_t writes_while_off = obs::TraceBuffer::global().size();

    obs::setTraceEnabled(true);
    const double on_s = spanLoopSeconds();
    obs::setTraceEnabled(false);
    const size_t writes_while_on = obs::TraceBuffer::global().size() +
                                   static_cast<size_t>(
                                       obs::TraceBuffer::global()
                                           .dropped());

    const double off_ns =
        (off_s - base_s) / kSpanIters * 1e9;
    const double on_ns = (on_s - base_s) / kSpanIters * 1e9;
    std::printf("\nspan macro (%d iterations):\n", kSpanIters);
    std::printf("  bare loop        %8.1f ms\n", base_s * 1e3);
    std::printf("  spans disabled   %8.1f ms  (~%.1f ns/span)\n",
                off_s * 1e3, off_ns);
    std::printf("  spans enabled    %8.1f ms  (~%.1f ns/span)\n",
                on_s * 1e3, on_ns);

    // -- metric update cost ------------------------------------------
    obs::MetricsRegistry registry;
    obs::Counter& counter = registry.counter("bench.counter");
    obs::LatencyHistogram& hist =
        registry.histogram("bench.hist", 0.0, 1.0, 1000);
    auto start = Clock::now();
    for (int i = 0; i < kSpanIters; ++i) {
        counter.add();
    }
    const double counter_ns = secondsSince(start) / kSpanIters * 1e9;
    start = Clock::now();
    for (int i = 0; i < kSpanIters; ++i) {
        hist.record(static_cast<double>(i & 1023) / 1024.0);
    }
    const double hist_ns = secondsSince(start) / kSpanIters * 1e9;
    std::printf("\nmetric updates:\n");
    std::printf("  counter.add      %8.1f ns/op\n", counter_ns);
    std::printf("  histogram.record %8.1f ns/op\n", hist_ns);

    // -- end-to-end serving run, tracing off vs on -------------------
    ModelOptions opts = tinyOptions();
    opts.tableScale = 0.01;
    SweepCache sweep(allPlatforms(), opts);
    QueryScheduler sched(&sweep, {1, 16, 256, 4096});
    ServingEngine engine(&sched, ModelId::kRM1, bench::kBdw);
    EngineConfig cfg;
    cfg.numWorkers = 4;
    cfg.arrivalQps = 2000.0;
    cfg.maxBatch = 64;
    cfg.simSeconds = 0.25;

    obs::TraceBuffer::global().clear();
    cfg.captureTrace = false;
    const EngineResult off_run = engine.run(cfg);
    cfg.captureTrace = true;
    const EngineResult on_run = engine.run(cfg);
    const size_t serving_spans = obs::TraceBuffer::global().size();
    obs::TraceBuffer::global().clear();

    std::printf("\nserving run (4 workers, RM1, profile mode):\n");
    std::printf("  p99 latency   off %.6f s   on %.6f s\n",
                off_run.aggregate.p99Latency,
                on_run.aggregate.p99Latency);
    std::printf("  spans captured with tracing on: %zu\n",
                serving_spans);

    bench::checkHeader();
    bench::check(writes_while_off == 0,
                 "disabled spans write nothing to the trace buffer");
    bench::check(off_ns < 50.0,
                 "disabled span costs <50 ns (one relaxed atomic "
                 "load)");
    bench::check(writes_while_on ==
                     static_cast<size_t>(kSpanIters),
                 "enabled spans account for every iteration "
                 "(committed + dropped)");
    bench::check(counter_ns < 100.0 && hist_ns < 200.0,
                 "metric updates are lock-free-cheap on the hot path");
    bench::check(off_run.aggregate.p99Latency ==
                         on_run.aggregate.p99Latency &&
                     off_run.aggregate.samplesServed ==
                         on_run.aggregate.samplesServed,
                 "tracing does not perturb virtual-time serving "
                 "statistics");
    bench::check(serving_spans > 0,
                 "captureTrace records spans from the serving stack");
    return 0;
}

}  // namespace
}  // namespace recstack

int
main()
{
    return recstack::runBench();
}
