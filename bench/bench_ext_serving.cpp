/**
 * @file
 * Extension: tail-latency serving curves. Turns the Fig. 5
 * optimal-platform grid into what a datacenter operator sees — a
 * Poisson query stream through a dynamic batcher, p99 latency vs
 * offered load, per platform. CPUs win the low-load/tight-tail
 * regime; the GPU's batching amortization wins the high-load regime.
 */

#include "bench_util.h"
#include "sched/serving_sim.h"

using namespace recstack;
using namespace recstack::bench;

int
main()
{
    banner("Extension", "Dynamic-batching serving: p99 vs offered load "
                        "(WnD)");

    SweepCache sweep(allPlatforms());
    QueryScheduler sched(&sweep);

    const std::vector<double> loads = {1e3, 1e4, 5e4, 2e5, 1e6};
    TextTable table({"offered qps", "CLX p99", "CLX util", "T4 p99",
                     "T4 util", "tail winner"});
    std::vector<size_t> winners;
    for (double qps : loads) {
        ServingConfig cfg;
        cfg.arrivalQps = qps;
        cfg.maxBatch = 1024;
        cfg.maxWaitSeconds = 1e-3;
        cfg.simSeconds = 0.5;

        ServingSimulator clx(&sched, ModelId::kWnD, kClx);
        ServingSimulator t4(&sched, ModelId::kWnD, kT4);
        const ServingStats a = clx.simulate(cfg);
        const ServingStats b = t4.simulate(cfg);
        const bool t4_wins = b.p99Latency < a.p99Latency;
        winners.push_back(t4_wins ? kT4 : kClx);
        table.addRow({TextTable::fmt(qps, 0),
                      TextTable::fmtSeconds(a.p99Latency),
                      TextTable::fmtPercent(a.utilization),
                      TextTable::fmtSeconds(b.p99Latency),
                      TextTable::fmtPercent(b.utilization),
                      t4_wins ? "T4" : "CascadeLake"});
    }
    std::printf("%s", table.render().c_str());

    checkHeader();
    check(winners.front() == kClx,
          "at low load (batch ~1) the CPU serves a tighter tail than "
          "the accelerator (Fig. 5's small-batch column)");
    check(winners.back() == kT4,
          "at high load the accelerator's batching amortization wins "
          "(Fig. 5's large-batch column)");
    bool crossover = false;
    for (size_t i = 1; i < winners.size(); ++i) {
        crossover |= winners[i] != winners[i - 1];
    }
    check(crossover, "a load crossover exists between the two regimes "
                     "(the scheduling opportunity DeepRecSys exploits)");
    return 0;
}
