/**
 * @file
 * Extension: tail-latency serving curves. Turns the Fig. 5
 * optimal-platform grid into what a datacenter operator sees — a
 * Poisson query stream through a dynamic batcher, p99 latency vs
 * offered load, per platform. CPUs win the low-load/tight-tail
 * regime; the GPU's batching amortization wins the high-load regime.
 */

#include "bench_util.h"
#include "sched/serving_sim.h"
#include "serve/serving_engine.h"

using namespace recstack;
using namespace recstack::bench;

/**
 * Multi-worker serving engine sweep: saturate an embedding-dominated
 * model (RM2) on Broadwell and scale the worker pool. Aggregate
 * throughput must grow with workers while the shared-L3/DRAM
 * contention model inflates each worker's service time — the measured
 * counterpart of the analytical estimateMulticoreScaling curve.
 */
static void
engineSection(QueryScheduler& sched)
{
    banner("Extension", "Multi-worker serving engine: throughput vs "
                        "pool size (RM2 on Broadwell)");

    const int64_t max_batch = 256;
    const double cap1 =
        static_cast<double>(max_batch) /
        sched.latency(ModelId::kRM2, kBdw, max_batch);

    EngineConfig cfg;
    cfg.arrivalQps = 6.0 * cap1;  // well past one worker's capacity
    cfg.maxBatch = max_batch;
    cfg.maxWaitSeconds = 1e-3;
    cfg.simSeconds = 0.25;

    // 1-worker cross-check against the analytical simulator at a
    // servable load.
    ServingConfig sim_cfg;
    sim_cfg.arrivalQps = 0.5 * cap1;
    sim_cfg.maxBatch = max_batch;
    sim_cfg.maxWaitSeconds = cfg.maxWaitSeconds;
    sim_cfg.simSeconds = cfg.simSeconds;
    ServingSimulator sim(&sched, ModelId::kRM2, kBdw);
    const ServingStats analytical = sim.simulate(sim_cfg);
    ServingEngine engine(&sched, ModelId::kRM2, kBdw);
    EngineConfig one = cfg;
    one.numWorkers = 1;
    one.arrivalQps = sim_cfg.arrivalQps;
    const EngineResult measured = engine.run(one);

    TextTable table({"workers", "agg qps", "p95", "mean batch",
                     "offered load", "mean slowdown", "max slowdown"});
    std::vector<EngineResult> results;
    for (int workers : {1, 2, 4, 8}) {
        EngineConfig c = cfg;
        c.numWorkers = workers;
        results.push_back(engine.run(c));
        const EngineResult& r = results.back();
        table.addRow({std::to_string(workers),
                      TextTable::fmt(r.aggregate.throughputQps, 0),
                      TextTable::fmtSeconds(r.aggregate.p95Latency),
                      TextTable::fmt(r.aggregate.meanBatch, 1),
                      TextTable::fmt(r.aggregate.offeredLoad, 2),
                      TextTable::fmt(r.meanSlowdown, 3) + "x",
                      TextTable::fmt(r.maxSlowdown, 3) + "x"});
    }
    std::printf("%s", table.render().c_str());

    checkHeader();
    const double rel_err =
        std::abs(measured.aggregate.meanLatency -
                 analytical.meanLatency) /
        analytical.meanLatency;
    check(rel_err < 0.10,
          "at 1 worker the threaded engine's mean latency agrees with "
          "the analytical simulator within 10%");
    bool monotone = true;
    for (size_t i = 1; i < results.size(); ++i) {
        monotone &= results[i].aggregate.throughputQps >=
                    results[i - 1].aggregate.throughputQps * 0.999;
    }
    check(monotone, "aggregate throughput is monotone in worker count "
                    "under saturation");
    check(results.back().meanSlowdown > results.front().meanSlowdown &&
              results.back().meanSlowdown > 1.0,
          "co-located workers inflate per-worker service latency "
          "(shared-L3/DRAM contention, the NMP motivation)");
    const double scaling8 =
        results.back().aggregate.throughputQps /
        results.front().aggregate.throughputQps;
    check(scaling8 < 8.0,
          "the embedding-dominated model scales sublinearly to 8 "
          "workers (throughput x" +
              std::string(TextTable::fmt(scaling8, 2)) + " of 8x)");
}

int
main()
{
    banner("Extension", "Dynamic-batching serving: p99 vs offered load "
                        "(WnD)");

    SweepCache sweep(allPlatforms());
    QueryScheduler sched(&sweep);

    const std::vector<double> loads = {1e3, 1e4, 5e4, 2e5, 1e6};
    TextTable table({"offered qps", "CLX p99", "CLX util", "T4 p99",
                     "T4 util", "tail winner"});
    std::vector<size_t> winners;
    for (double qps : loads) {
        ServingConfig cfg;
        cfg.arrivalQps = qps;
        cfg.maxBatch = 1024;
        cfg.maxWaitSeconds = 1e-3;
        cfg.simSeconds = 0.5;

        ServingSimulator clx(&sched, ModelId::kWnD, kClx);
        ServingSimulator t4(&sched, ModelId::kWnD, kT4);
        const ServingStats a = clx.simulate(cfg);
        const ServingStats b = t4.simulate(cfg);
        const bool t4_wins = b.p99Latency < a.p99Latency;
        winners.push_back(t4_wins ? kT4 : kClx);
        table.addRow({TextTable::fmt(qps, 0),
                      TextTable::fmtSeconds(a.p99Latency),
                      TextTable::fmtPercent(a.utilization),
                      TextTable::fmtSeconds(b.p99Latency),
                      TextTable::fmtPercent(b.utilization),
                      t4_wins ? "T4" : "CascadeLake"});
    }
    std::printf("%s", table.render().c_str());

    checkHeader();
    check(winners.front() == kClx,
          "at low load (batch ~1) the CPU serves a tighter tail than "
          "the accelerator (Fig. 5's small-batch column)");
    check(winners.back() == kT4,
          "at high load the accelerator's batching amortization wins "
          "(Fig. 5's large-batch column)");
    bool crossover = false;
    for (size_t i = 1; i < winners.size(); ++i) {
        crossover |= winners[i] != winners[i - 1];
    }
    check(crossover, "a load crossover exists between the two regimes "
                     "(the scheduling opportunity DeepRecSys exploits)");

    engineSection(sched);
    return 0;
}
