/**
 * @file
 * Intra-op parallelism study: per-batch latency of an FC-heavy model
 * (Wide&Deep) under the shared chunked-range thread pool at 1/2/4/8
 * intra-op threads, plus the serving engine's measured per-batch
 * host-seconds speedup when workers widen their kernels.
 *
 * The pool partitions each kernel over disjoint output rows, so the
 * numerics are bit-identical at every width (tests/
 * test_parallel_equivalence.cc); this bench reports what that buys in
 * wall-clock, per kernel tier (scalar and, when the host supports it,
 * avx2 — the two dimensions compose: docs/vectorization.md). The
 * >=2x-at-8-threads check only runs when the machine actually has 8
 * hardware threads; on smaller hosts the table is still printed and
 * the check is skipped with a note.
 */

#include <chrono>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/cpu_features.h"
#include "common/thread_pool.h"
#include "graph/executor.h"
#include "models/model.h"
#include "serve/serving_engine.h"

namespace recstack {
namespace {

double
bestSeconds(const Model& model, Workspace& ws, int threads, int reps)
{
    ExecOptions opts;
    opts.mode = ExecMode::kNumericOnly;
    opts.numThreads = threads;
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        Executor::run(model.net, ws, opts);
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(
            best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

void
runBench()
{
    bench::banner("EXT-PARALLEL",
                  "intra-op kernel speedup on the shared thread pool");
    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("hardware threads: %u\n", hw);

    ModelOptions opts;  // full-size model: FC work dominates WnD
    opts.tableScale = 0.05;
    const Model model = buildModel(ModelId::kWnD, opts);
    Workspace ws;
    model.initParams(ws);
    BatchGenerator gen(model.workload, /*seed=*/7);

    const std::vector<int64_t> batches = {64, 256, 1024};
    const std::vector<int> widths = {1, 2, 4, 8};
    const int reps = 3;

    std::vector<KernelIsa> tiers = {KernelIsa::kScalar};
    if (kernelIsaSupported(KernelIsa::kAvx2)) {
        tiers.push_back(KernelIsa::kAvx2);
    } else {
        std::printf("(avx2 kernel tier unsupported on this host/build; "
                    "scalar only)\n");
    }

    // Thread scaling must hold on every kernel tier: vectorization
    // shrinks per-chunk work but not the disjoint-row partitioning.
    double speedup_8t_b256 = 0.0;
    for (const KernelIsa isa : tiers) {
        IsaScope tier(isa);
        std::printf("\nkernel tier: %s\n%-8s", kernelIsaName(isa),
                    "batch");
        for (int w : widths) {
            std::printf("  t=%-2d seconds  speedup", w);
        }
        std::printf("\n");
        for (int64_t batch : batches) {
            gen.materialize(ws, batch);
            bestSeconds(model, ws, 1, 1);  // warm allocations
            std::printf("%-8lld", static_cast<long long>(batch));
            double serial = 0.0;
            for (int w : widths) {
                const double secs = bestSeconds(model, ws, w, reps);
                if (w == 1) {
                    serial = secs;
                }
                const double speedup = serial / secs;
                std::printf("  %12.6f  %6.2fx", secs, speedup);
                if (w == 8 && batch >= 256 &&
                    speedup > speedup_8t_b256) {
                    speedup_8t_b256 = speedup;
                }
            }
            std::printf("\n");
        }
    }

    // Serving engine: same pool shared by the inter-op workers.
    std::printf("\nServingEngine (WnD tiny, 2 workers, numeric):\n");
    SweepCache sweep(allPlatforms(), [] {
        ModelOptions tiny = tinyOptions();
        tiny.tableScale = 0.01;
        return tiny;
    }());
    QueryScheduler sched(&sweep, {1, 16, 256, 4096});
    ServingEngine engine(&sched, ModelId::kWnD, bench::kBdw);
    EngineConfig cfg;
    cfg.numWorkers = 2;
    cfg.arrivalQps = 2000;
    cfg.maxBatch = 256;
    cfg.simSeconds = 0.25;
    cfg.execMode = ExecMode::kNumericOnly;
    std::printf("%-10s  %-18s\n", "intra-op", "host sec/batch");
    double engine_serial = 0.0, engine_wide = 0.0;
    for (int w : {1, 8}) {
        cfg.numThreads = w;
        const EngineResult res = engine.run(cfg);
        std::printf("%-10d  %-18.9f\n", res.intraOpThreads,
                    res.hostSecondsPerBatch);
        (w == 1 ? engine_serial : engine_wide) =
            res.hostSecondsPerBatch;
    }

    bench::checkHeader();
    if (hw >= 8) {
        bench::check(speedup_8t_b256 >= 2.0,
                     "FC-heavy model gains >=2x per-batch at 8 "
                     "threads, batch >= 256");
        bench::check(engine_wide < engine_serial,
                     "serving workers' per-batch host seconds drop "
                     "when kernels widen");
    } else {
        std::printf(
            "  [SKIPPED   ] machine has %u hardware threads; the "
            ">=2x @ 8-thread check needs >= 8\n",
            hw);
    }
}

}  // namespace
}  // namespace recstack

int
main()
{
    recstack::runBench();
    return 0;
}
