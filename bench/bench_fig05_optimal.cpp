/**
 * @file
 * Fig. 5: the optimal hardware platform per (model, batch size) cell,
 * annotated with its speedup over Broadwell.
 */

#include "bench_util.h"

using namespace recstack;
using namespace recstack::bench;

int
main()
{
    banner("Fig. 5", "Optimal platform per model/batch (speedup over BDW)");

    SweepCache sweep(allPlatforms());
    const auto batches = paperBatchSizes();

    std::vector<std::string> headers = {"model"};
    for (int64_t b : batches) {
        headers.push_back("b=" + std::to_string(b));
    }
    TextTable table(headers);
    for (ModelId id : allModels()) {
        std::vector<std::string> row = {modelName(id)};
        for (int64_t b : batches) {
            const size_t best = sweep.optimalPlatform(id, b);
            const double speedup = sweep.speedupOverBaseline(id, best, b);
            row.push_back(std::string(shortPlatformName(best)) + " " +
                          TextTable::fmtSpeedup(speedup));
        }
        table.addRow(row);
    }
    std::printf("%s", table.render().c_str());

    checkHeader();
    check(sweep.optimalPlatform(ModelId::kDIN, 16) == kBdw ||
              sweep.optimalPlatform(ModelId::kDIN, 16) == kClx,
          "DIN at small batch: a CPU is the optimal platform");
    check(sweep.optimalPlatform(ModelId::kRM3, 16384) == kGtx ||
              sweep.optimalPlatform(ModelId::kRM3, 16384) == kT4,
          "RM3 at large batch: a GPU is the optimal platform");
    bool rm_small_cpu = true;
    for (ModelId id : {ModelId::kRM1, ModelId::kRM2}) {
        const size_t best = sweep.optimalPlatform(id, 4);
        rm_small_cpu &= (best == kBdw || best == kClx);
    }
    check(rm_small_cpu, "RM1/RM2 at small batch: CPUs are optimal "
                        "(irregular lookups do not pay for the GPU)");
    check(sweep.optimalPlatform(ModelId::kNCF, 16384) != kBdw &&
              sweep.optimalPlatform(ModelId::kNCF, 16384) != kClx,
          "NCF at large batch: GPUs take over");
    return 0;
}
