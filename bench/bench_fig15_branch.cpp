/**
 * @file
 * Fig. 15: branch mispredicts drop significantly from Broadwell to
 * Cascade Lake (larger predictor, cheaper redirects).
 */

#include "bench_util.h"

using namespace recstack;
using namespace recstack::bench;

int
main()
{
    banner("Fig. 15", "Branch mispredicts, BDW vs CLX (batch 16)");

    SweepCache sweep(allPlatforms());
    const int64_t batch = 16;

    TextTable table({"model", "BDW mispredicts (K)", "CLX mispredicts (K)",
                     "reduction"});
    for (ModelId id : allModels()) {
        const double bdw = static_cast<double>(
            sweep.get(id, kBdw, batch).counters.branchMispredicts);
        const double clx = static_cast<double>(
            sweep.get(id, kClx, batch).counters.branchMispredicts);
        table.addRow({modelName(id), TextTable::fmt(bdw / 1e3, 1),
                      TextTable::fmt(clx / 1e3, 1),
                      bdw > 0.0 ? TextTable::fmtPercent(1.0 - clx / bdw)
                                : "-"});
    }
    std::printf("%s", table.render().c_str());

    checkHeader();
    bool all_drop = true;
    double avg_drop = 0.0;
    int n = 0;
    for (ModelId id : allModels()) {
        const double bdw = static_cast<double>(
            sweep.get(id, kBdw, batch).counters.branchMispredicts);
        const double clx = static_cast<double>(
            sweep.get(id, kClx, batch).counters.branchMispredicts);
        all_drop &= clx <= bdw * 1.02;
        if (bdw > 0.0) {
            avg_drop += 1.0 - clx / bdw;
            ++n;
        }
    }
    check(all_drop, "mispredicts decrease from BDW to CLX for every "
                    "model");
    check(n > 0 && avg_drop / n > 0.15,
          "the decrease is significant (paper: 'decrease "
          "significantly')");
    auto bdw_rate = [&](ModelId id) {
        return sweep.get(id, kBdw, batch).topdown.mispredictsPerKuop;
    };
    check(bdw_rate(ModelId::kRM1) > bdw_rate(ModelId::kRM3),
          "data-dependent embedding segment loops (RM1) mispredict "
          "more than GEMM loops (RM3)");
    return 0;
}
