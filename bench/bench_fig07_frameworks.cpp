/**
 * @file
 * Fig. 7: Caffe2 vs TensorFlow operator breakdowns for the
 * DLRM-based models (RM1/RM2/RM3). FC maps to FusedMatMul and
 * SparseLengthsSum to ResourceGather + Sum; the dominant bottleneck
 * is framework-independent.
 */

#include "bench_util.h"

using namespace recstack;
using namespace recstack::bench;

namespace {

double
embeddingShare(const OperatorBreakdown& b)
{
    return b.fraction("SparseLengthsSum") + b.fraction("ResourceGather") +
           b.fraction("Sum");
}

double
fcShare(const OperatorBreakdown& b)
{
    return b.fraction("FC") + b.fraction("FusedMatMul");
}

}  // namespace

int
main()
{
    banner("Fig. 7", "Caffe2 vs TensorFlow operator breakdowns (DLRM)");

    const Platform bdw = makeCpuPlatform(broadwellConfig());
    Characterizer caffe2({}, 42, FrameworkId::kCaffe2);
    Characterizer tensorflow({}, 42, FrameworkId::kTensorFlow);
    const int64_t batch = 64;

    bool same_bottleneck = true;
    double max_gap = 0.0;
    for (ModelId id :
         {ModelId::kRM1, ModelId::kRM2, ModelId::kRM3}) {
        const RunResult c2 = caffe2.run(id, bdw, batch);
        const RunResult tf = tensorflow.run(id, bdw, batch);
        std::printf("\n--- %s (batch %lld, Broadwell) ---\n",
                    modelName(id), static_cast<long long>(batch));
        for (const auto* r : {&c2, &tf}) {
            std::vector<ChartItem> segs;
            double other = 0.0;
            for (const auto& [type, frac] : r->breakdown.fractions()) {
                if (segs.size() < 5 && frac >= 0.03) {
                    segs.push_back({type, frac});
                } else {
                    other += frac;
                }
            }
            segs.push_back({"other", other});
            std::printf("%s",
                        stackedBar(r == &c2 ? "Caffe2    " : "TensorFlow",
                                   segs, 40)
                            .c_str());
        }
        const double emb_gap =
            std::abs(embeddingShare(c2.breakdown) -
                     embeddingShare(tf.breakdown));
        const double fc_gap =
            std::abs(fcShare(c2.breakdown) - fcShare(tf.breakdown));
        max_gap = std::max({max_gap, emb_gap, fc_gap});
        const bool emb_dom_c2 =
            embeddingShare(c2.breakdown) > fcShare(c2.breakdown);
        const bool emb_dom_tf =
            embeddingShare(tf.breakdown) > fcShare(tf.breakdown);
        same_bottleneck &= emb_dom_c2 == emb_dom_tf;
    }

    checkHeader();
    check(same_bottleneck,
          "the dominant operator class (embedding vs FC) is the same "
          "under Caffe2 and TensorFlow");
    check(max_gap < 0.25,
          "embedding/FC time shares are similar (first-order) across "
          "frameworks");
    return 0;
}
