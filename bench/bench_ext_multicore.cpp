/**
 * @file
 * Extension (beyond the paper): co-located inference engines per
 * socket. The paper measures single-threaded inference; production
 * serving packs one engine per core (DeepRecSys). Projecting the
 * measured single-core cycle accounts to N engines shows the
 * embedding-dominated models exhausting shared L3/DRAM long before
 * the FC models — the capacity argument behind the near-memory-
 * processing work the paper cites (TensorDimm, RecNMP).
 */

#include "bench_util.h"
#include "uarch/multicore.h"

using namespace recstack;
using namespace recstack::bench;

int
main()
{
    banner("Extension", "Co-located engines per socket (Broadwell, "
                        "batch 256)");

    SweepCache sweep({makeCpuPlatform(broadwellConfig())});
    const int kCores = 16;  // Table II: 16-core Xeon E5-2697A

    TextTable table({"model", "4 engines", "8 engines", "16 engines",
                     "DRAM demand @16"});
    std::vector<double> scaling16;
    for (ModelId id : allModels()) {
        const RunResult& r = sweep.get(id, 0, 256);
        const auto points = estimateMulticoreScaling(
            r.counters, broadwellConfig(), kCores);
        scaling16.push_back(points[15].throughputScaling);
        table.addRow(
            {modelName(id),
             TextTable::fmt(points[3].throughputScaling, 1) + "x",
             TextTable::fmt(points[7].throughputScaling, 1) + "x",
             TextTable::fmt(points[15].throughputScaling, 1) + "x",
             TextTable::fmtPercent(
                 std::min(1.0, points[15].dramDemandFraction))});
    }
    std::printf("%s", table.render().c_str());

    checkHeader();
    const auto scale_of = [&](ModelId id) {
        const RunResult& r = sweep.get(id, 0, 256);
        return estimateMulticoreScaling(r.counters, broadwellConfig(),
                                        kCores)
            .back()
            .throughputScaling;
    };
    check(scale_of(ModelId::kRM3) > scale_of(ModelId::kRM2),
          "FC-dominated RM3 scales across cores better than "
          "embedding-dominated RM2");
    check(scale_of(ModelId::kRM2) < 0.75 * kCores,
          "RM2 saturates the socket's shared memory system well below "
          "linear scaling (the near-memory-processing motivation)");
    bool all_valid = true;
    for (double s : scaling16) {
        all_valid &= s >= 1.0 && s <= kCores + 1e-9;
    }
    check(all_valid, "scaling estimates stay within [1, cores]");
    return 0;
}
