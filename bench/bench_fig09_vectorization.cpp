/**
 * @file
 * Fig. 9: instruction vectorization — AVX share of retired
 * instructions on Broadwell (AVX-2) and Cascade Lake (AVX-512), plus
 * the execution-time reduction that comes with the narrower AVX-512
 * instruction footprint.
 */

#include "bench_util.h"

using namespace recstack;
using namespace recstack::bench;

int
main()
{
    banner("Fig. 9", "AVX fraction of retired instructions");

    SweepCache sweep(allPlatforms());
    const int64_t batch = 16;

    TextTable table({"model", "BDW AVX%", "CLX AVX%", "BDW time",
                     "CLX time"});
    for (ModelId id : allModels()) {
        const RunResult& bdw = sweep.get(id, kBdw, batch);
        const RunResult& clx = sweep.get(id, kClx, batch);
        table.addRow({modelName(id),
                      TextTable::fmtPercent(bdw.topdown.avxFraction),
                      TextTable::fmtPercent(clx.topdown.avxFraction),
                      TextTable::fmtSeconds(bdw.seconds),
                      TextTable::fmtSeconds(clx.seconds)});
    }
    std::printf("%s", table.render().c_str());

    checkHeader();
    bool fc_avx = true;
    for (ModelId id : {ModelId::kRM3, ModelId::kWnD, ModelId::kMTWnD}) {
        fc_avx &= sweep.get(id, kBdw, batch).topdown.avxFraction > 0.60;
    }
    check(fc_avx, "RM3/WnD/MT-WnD: over 60% of retired instructions "
                  "are AVX on Broadwell");
    check(sweep.get(ModelId::kNCF, kBdw, batch).topdown.avxFraction <
              sweep.get(ModelId::kRM3, kBdw, batch).topdown.avxFraction -
                  0.2,
          "NCF (small FCs): well below the large-FC models' AVX share");
    bool clx_faster = true;
    for (ModelId id : allModels()) {
        const RunResult& bdw = sweep.get(id, kBdw, batch);
        const RunResult& clx = sweep.get(id, kClx, batch);
        clx_faster &= clx.seconds < bdw.seconds;
    }
    check(clx_faster, "Cascade Lake: shorter execution time despite "
                      "the reduced AVX instruction footprint");
    return 0;
}
