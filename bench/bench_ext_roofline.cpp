/**
 * @file
 * Extension: roofline coordinates of the eight models. Arithmetic
 * intensity (flops per DRAM byte) against each platform's compute and
 * bandwidth rooflines makes the paper's CPU/GPU split visible in one
 * number: the embedding models live far below every machine's ridge
 * point, the FC models far above it.
 */

#include "bench_util.h"

using namespace recstack;
using namespace recstack::bench;

int
main()
{
    banner("Extension", "Roofline coordinates (batch 256)");

    Characterizer characterizer;
    const Platform bdw = makeCpuPlatform(broadwellConfig());

    // Ridge points: flops/byte where compute == bandwidth bound.
    const double bdw_flops =
        2.6e9 * 2 * 8 * 2;  // 2 FMA ports x 8 lanes x 2 flops
    const double bdw_ridge = bdw_flops / (77.0 * 1e9);
    const GpuConfig gtx = gtx1080TiConfig();
    const double gtx_ridge =
        gtx.effTflops * 1e12 / (gtx.memGBs * 1e9 * gtx.gatherEfficiency);

    TextTable table({"model", "flops", "DRAM bytes", "overall f/B",
                     "embedding-phase f/B", "regime of dominant phase"});
    std::vector<double> intensity;
    std::vector<double> emb_intensity;
    for (ModelId id : allModels()) {
        const auto profiles = characterizer.profiles(id, 256);
        double flops = 0.0, dram_bytes = 0.0;
        double emb_flops = 0.0, emb_bytes = 0.0;
        for (const auto& kp : profiles) {
            const double kflops =
                static_cast<double>(kp.fmaFlops) +
                static_cast<double>(kp.vecElemOps);
            double kbytes = 0.0;
            for (const auto& s : kp.streams) {
                // Compulsory traffic: random gathers pay per access,
                // streaming pays per unique footprint byte.
                if (s.pattern == AccessPattern::kRandom) {
                    kbytes += static_cast<double>(s.totalBytes());
                } else {
                    kbytes += static_cast<double>(std::min(
                        s.totalBytes(), s.footprintBytes));
                }
            }
            flops += kflops;
            dram_bytes += kbytes;
            const bool embedding =
                kp.opType.rfind("SparseLengths", 0) == 0 ||
                kp.opType == "Gather" || kp.opType == "ResourceGather";
            if (embedding) {
                emb_flops += kflops;
                emb_bytes += kbytes;
            }
        }
        const double ai = flops / dram_bytes;
        const double emb_ai =
            emb_bytes > 0.0 ? emb_flops / emb_bytes : 0.0;
        intensity.push_back(ai);
        emb_intensity.push_back(emb_ai);
        // The regime that dominates runtime: the embedding phase for
        // models whose gather traffic dwarfs the rest.
        const bool emb_dominant = emb_bytes > 0.5 * dram_bytes;
        const double decisive_ai = emb_dominant ? emb_ai : ai;
        table.addRow({modelName(id),
                      TextTable::fmt(flops / 1e9, 2) + " G",
                      TextTable::fmt(dram_bytes / 1e6, 1) + " MB",
                      TextTable::fmt(ai, 2),
                      emb_bytes > 0.0 ? TextTable::fmt(emb_ai, 2) : "-",
                      decisive_ai > bdw_ridge ? "compute-bound"
                                              : "bandwidth-bound"});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nridge points: Broadwell %.2f flops/byte, 1080Ti "
                "(gathers) %.2f flops/byte\n",
                bdw_ridge, gtx_ridge);

    checkHeader();
    const auto index_of = [&](ModelId id) {
        size_t i = 0;
        for (ModelId m : allModels()) {
            if (m == id) {
                break;
            }
            ++i;
        }
        return i;
    };
    check(intensity[index_of(ModelId::kRM3)] >
              10 * intensity[index_of(ModelId::kRM2)],
          "RM3's arithmetic intensity dwarfs RM2's (FC vs embedding "
          "regimes)");
    check(emb_intensity[index_of(ModelId::kRM2)] < bdw_ridge,
          "RM2's embedding phase sits below Broadwell's ridge point: "
          "bandwidth-bound on any core count (Fig. 14 in roofline "
          "terms)");
    check(intensity[index_of(ModelId::kRM3)] > bdw_ridge,
          "RM3 sits above the ridge point: compute-bound (Fig. 10's "
          "core-bound result in roofline terms)");
    return 0;
}
