/**
 * @file
 * Ablation: DSB capacity sensitivity of the frontend-bandwidth-bound
 * models (RM1/RM2). DESIGN.md calls this out because the paper's
 * Fig. 13 mechanism (mispredict-driven DSB thrash) should fade as the
 * decoded-uop cache grows and the refill window shrinks.
 */

#include "bench_util.h"

using namespace recstack;
using namespace recstack::bench;

int
main()
{
    banner("Ablation", "DSB capacity sensitivity (RM1/RM2, batch 16)");

    TextTable table({"DSB capacity (uops)", "RM1 DSB-limited",
                     "RM1 latency", "RM2 DSB-limited", "RM2 latency"});

    std::vector<double> rm1_dsb;
    for (uint64_t capacity : {256ull, 768ull, 1536ull, 4096ull,
                              16384ull}) {
        CpuConfig cfg = broadwellConfig();
        cfg.dsbCapacityUops = capacity;
        SweepCache sweep({makeCpuPlatform(cfg)});
        const RunResult& rm1 = sweep.get(ModelId::kRM1, 0, 16);
        const RunResult& rm2 = sweep.get(ModelId::kRM2, 0, 16);
        rm1_dsb.push_back(rm1.topdown.l2.feBandwidthDsb);
        table.addRow({std::to_string(capacity),
                      TextTable::fmtPercent(
                          rm1.topdown.l2.feBandwidthDsb),
                      TextTable::fmtSeconds(rm1.seconds),
                      TextTable::fmtPercent(
                          rm2.topdown.l2.feBandwidthDsb),
                      TextTable::fmtSeconds(rm2.seconds)});
    }
    std::printf("%s", table.render().c_str());

    checkHeader();
    check(rm1_dsb.front() >= rm1_dsb.back(),
          "shrinking the DSB never reduces (and growing never "
          "increases) the DSB-limited cycle share");
    check(rm1_dsb.back() < 0.10,
          "a very large DSB leaves only the mispredict-refill "
          "component");
    return 0;
}
