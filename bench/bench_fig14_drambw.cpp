/**
 * @file
 * Fig. 14: DRAM bandwidth congestion (Intel criterion: demand above
 * 70% of what the memory controller can serve). RM2's 32 tables x
 * 120 lookups make it the congested outlier.
 */

#include "bench_util.h"

using namespace recstack;
using namespace recstack::bench;

int
main()
{
    banner("Fig. 14", "DRAM bandwidth congestion (Broadwell)");

    SweepCache sweep(allPlatforms());

    TextTable table({"model", "batch", "DRAM demand GB/s",
                     "congested cycles", "BW-stall share"});
    const DramModel dram(broadwellConfig().dramGBs,
                         broadwellConfig().dramLatencyCycles,
                         broadwellConfig().freqGHz);
    for (ModelId id : {ModelId::kRM1, ModelId::kRM2, ModelId::kDIN,
                       ModelId::kDIEN}) {
        for (int64_t batch : {64LL, 1024LL, 4096LL}) {
            const RunResult& r = sweep.get(id, kBdw, batch);
            const double demand =
                dram.demandGBs(r.counters.dramBytes, r.counters.cycles);
            table.addRow(
                {modelName(id), std::to_string(batch),
                 TextTable::fmt(demand, 1),
                 TextTable::fmtPercent(r.topdown.dramCongestedFraction),
                 TextTable::fmtPercent(r.topdown.l2.memDramBandwidth)});
        }
    }
    std::printf("%s", table.render().c_str());

    checkHeader();
    auto congestion = [&](ModelId id, int64_t b) {
        return sweep.get(id, kBdw, b).topdown.dramCongestedFraction;
    };
    check(congestion(ModelId::kRM2, 4096) >
              congestion(ModelId::kRM1, 4096),
          "RM2 suffers more DRAM bandwidth congestion than RM1 "
          "(32x120 vs 8x80 lookups)");
    check(congestion(ModelId::kRM2, 4096) >
              congestion(ModelId::kDIEN, 4096) &&
          congestion(ModelId::kRM2, 4096) >
              congestion(ModelId::kDIN, 4096),
          "RM2 is the congestion outlier among RM1/RM2/DIN/DIEN");
    check(congestion(ModelId::kRM2, 4096) >= congestion(ModelId::kRM2, 64),
          "congestion grows with batch size (more concurrent lookups)");
    return 0;
}
