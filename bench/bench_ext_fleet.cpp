/**
 * @file
 * Extension: cluster-scale serving. The paper characterizes one
 * machine; production recommendation inference runs fleets of them
 * behind a load balancer (DeepRecSys, arXiv 2001.02772). This bench
 * composes M analytic ServingNode twins behind the fleet router and
 * measures the cluster-level knobs the single-node stack cannot see:
 *
 *  1. capacity under a p99 SLA as the fleet grows — more nodes must
 *     never buy less SLA-feasible throughput;
 *  2. routing policy vs a Zipf-skewed user stream at the knee —
 *     sticky consistent hashing concentrates hot users and inflates
 *     the tail, power-of-two-choices holds round-robin's tail;
 *  3. embedding placement — replicating the tables R ways prices
 *     fewer remote row fetches per sample but costs R copies of the
 *     table bytes per fleet;
 *  4. obs-driven autoscaling — the controller walks the fleet size
 *     against the p99 read from the *merged* per-node latency
 *     histograms and must settle on a feasible size within its epoch
 *     budget, and that merged tail must agree with the exact pooled
 *     percentile to within one histogram bucket.
 */

#include <cmath>
#include <vector>

#include "bench_util.h"
#include "fleet/autoscaler.h"
#include "fleet/fleet_sim.h"

using namespace recstack;
using namespace recstack::bench;
using namespace recstack::fleet;

namespace {

constexpr int kWorkersPerNode = 2;
constexpr int64_t kMaxBatch = 64;
constexpr double kWindow = 1e-3;
constexpr double kSimSeconds = 0.3;

FleetConfig
baseConfig(int nodes)
{
    FleetConfig cfg;
    cfg.numNodes = nodes;
    cfg.workersPerNode = kWorkersPerNode;
    cfg.maxBatch = kMaxBatch;
    cfg.maxWaitSeconds = kWindow;
    cfg.simSeconds = kSimSeconds;
    return cfg;
}

TrafficConfig
baseTraffic(double qps)
{
    TrafficConfig traffic;
    traffic.baseQps = qps;
    traffic.numUsers = 2000000;
    traffic.userZipf = 0.9;
    traffic.seed = 42;
    return traffic;
}

}  // namespace

int
main()
{
    banner("EXT-FLEET",
           "Cluster-scale serving: routing, placement, autoscaling");

    ModelOptions opts;
    opts.tableScale = 0.05;
    SweepCache sweep(allPlatforms(), opts);
    QueryScheduler sched(&sweep, {1, 16, 64, 256, 1024});
    const ModelId id = ModelId::kRM1;
    FleetSimulator sim(&sched, id, kBdw);

    // Per-node capacity anchor (replicated store: no surcharge) and
    // the SLA every study below is judged against: 3x the one-node
    // half-load tail.
    const double cap_node =
        kWorkersPerNode * static_cast<double>(kMaxBatch) /
        sched.latency(id, kBdw, kMaxBatch);
    const FleetResult half = sim.simulate(
        baseConfig(1), baseTraffic(0.5 * cap_node));
    const double sla = 3.0 * half.aggregate.p99Latency;

    // -- 1. capacity at the SLA vs fleet size ------------------------
    std::printf("\nRM1 on %s nodes (x%d workers), SLA p99 <= %.2f ms, "
                "p2c routing:\n\n",
                shortPlatformName(kBdw), kWorkersPerNode, sla * 1e3);
    TextTable cap_table({"nodes", "capacity (qps)", "p99 at cap",
                         "imbalance"});
    const std::vector<int> sizes = {1, 2, 4, 8};
    const std::vector<double> fractions = {0.3, 0.5, 0.7,
                                           0.85, 1.0, 1.15};
    std::vector<double> capacities;
    for (int nodes : sizes) {
        double capacity = 0.0;
        double p99_at_cap = 0.0;
        double imbalance = 1.0;
        for (double f : fractions) {
            const double rate = f * nodes * cap_node;
            const FleetResult r =
                sim.simulate(baseConfig(nodes), baseTraffic(rate));
            if (r.aggregate.p99Latency <= sla && rate > capacity) {
                capacity = rate;
                p99_at_cap = r.aggregate.p99Latency;
                imbalance = r.routedImbalance;
            }
        }
        capacities.push_back(capacity);
        cap_table.addRow({std::to_string(nodes),
                          TextTable::fmt(capacity, 0),
                          TextTable::fmtSeconds(p99_at_cap),
                          TextTable::fmt(imbalance, 3)});
    }
    std::printf("%s\n", cap_table.render().c_str());
    bool capacity_monotone = true;
    for (size_t i = 1; i < capacities.size(); ++i) {
        capacity_monotone =
            capacity_monotone && capacities[i] >= capacities[i - 1];
    }

    // -- 2. routing policy at the knee under Zipf skew ---------------
    const int kFleet = 4;
    const double knee = 0.95 * kFleet * cap_node;
    std::printf("routing policies at %.0f qps (0.95x capacity), "
                "Zipf(0.9) users:\n\n", knee);
    TextTable pol_table({"policy", "p99", "merged p99", "imbalance"});
    const RoutePolicy policies[] = {RoutePolicy::kRoundRobin,
                                    RoutePolicy::kConsistentHash,
                                    RoutePolicy::kPowerOfTwo};
    FleetResult by_policy[3];
    for (int p = 0; p < 3; ++p) {
        FleetConfig cfg = baseConfig(kFleet);
        cfg.policy = policies[p];
        by_policy[p] = sim.simulate(cfg, baseTraffic(knee));
        pol_table.addRow(
            {routePolicyName(policies[p]),
             TextTable::fmtSeconds(by_policy[p].aggregate.p99Latency),
             TextTable::fmtSeconds(by_policy[p].mergedP99),
             TextTable::fmt(by_policy[p].routedImbalance, 3)});
    }
    std::printf("%s\n", pol_table.render().c_str());
    const FleetResult& rr = by_policy[0];
    const FleetResult& hash = by_policy[1];
    const FleetResult& p2c = by_policy[2];

    // -- 3. placement: replication factor vs remote surcharge --------
    std::printf("embedding placement on %d nodes:\n\n", kFleet);
    TextTable place_table({"placement", "remote/sample",
                           "node table MB", "p99"});
    std::vector<double> surcharges;
    for (int repl = 1; repl <= kFleet; repl *= 2) {
        FleetConfig cfg = baseConfig(kFleet);
        cfg.placement.kind = PlacementKind::kRowPartitioned;
        cfg.placement.replicationFactor = repl;
        const FleetResult r =
            sim.simulate(cfg, baseTraffic(0.6 * kFleet * cap_node));
        surcharges.push_back(r.remoteSecondsPerSample);
        place_table.addRow(
            {"partitioned R=" + std::to_string(repl),
             TextTable::fmtSeconds(r.remoteSecondsPerSample),
             TextTable::fmt(static_cast<double>(r.nodeTableBytes) /
                                (1024.0 * 1024.0), 1),
             TextTable::fmtSeconds(r.aggregate.p99Latency)});
    }
    std::printf("%s\n", place_table.render().c_str());
    bool surcharge_decreasing = true;
    for (size_t i = 1; i < surcharges.size(); ++i) {
        surcharge_decreasing =
            surcharge_decreasing && surcharges[i] < surcharges[i - 1];
    }

    // -- 4. obs-driven autoscaling -----------------------------------
    AutoscalerConfig asc;
    asc.slaP99Seconds = sla;
    asc.minNodes = 1;
    asc.maxNodes = 12;
    asc.maxEpochs = 12;
    const double offered = 0.85 * kFleet * cap_node;
    const AutoscalerResult scaled =
        autoscale(asc, [&](int n, int /*epoch*/) {
            return sim.simulate(baseConfig(n), baseTraffic(offered))
                .mergedHistogram;
        });
    std::printf("autoscaler at %.0f qps (SLA p99 <= %.2f ms):\n\n",
                offered, sla * 1e3);
    TextTable walk({"epoch", "nodes", "fleet p99 (merged)", "SLA"});
    for (size_t i = 0; i < scaled.history.size(); ++i) {
        const AutoscalerStep& s = scaled.history[i];
        walk.addRow({std::to_string(i + 1), std::to_string(s.nodes),
                     TextTable::fmtSeconds(s.p99),
                     s.violated ? "MISS" : "ok"});
    }
    std::printf("%ssettled: %d nodes after %d epochs (%s)\n",
                walk.render().c_str(), scaled.nodes, scaled.epochsUsed,
                scaled.feasible ? "feasible" : "INFEASIBLE");

    const double bucket = (p2c.mergedHistogram.hi -
                           p2c.mergedHistogram.lo) /
                          static_cast<double>(
                              p2c.mergedHistogram.counts.size());

    checkHeader();
    check(capacity_monotone,
          "capacity under the p99 SLA is non-decreasing in fleet size");
    check(p2c.aggregate.p99Latency <=
            1.05 * rr.aggregate.p99Latency,
          "power-of-two-choices holds round-robin's tail at the knee "
          "(within 5%)");
    check(hash.routedImbalance > rr.routedImbalance,
          "sticky consistent hashing concentrates Zipf-skewed users "
          "(routing imbalance above round-robin's)");
    check(surcharge_decreasing,
          "replicating embedding rows monotonically cuts the remote "
          "fetch surcharge per sample");
    check(scaled.feasible && scaled.epochsUsed <= asc.maxEpochs,
          "the autoscaler settles on an SLA-feasible fleet size "
          "within its epoch budget");
    check(std::fabs(p2c.mergedP99 - p2c.aggregate.p99Latency) <=
            bucket,
          "the merged per-node histogram p99 agrees with the exact "
          "pooled p99 within one bucket");
    return 0;
}
