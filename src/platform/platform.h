#ifndef RECSTACK_PLATFORM_PLATFORM_H_
#define RECSTACK_PLATFORM_PLATFORM_H_

/**
 * @file
 * Hardware platform descriptions for the four systems of Table II:
 * Intel Broadwell (Xeon E5-2697A) and Cascade Lake (Xeon Gold 6242)
 * CPUs, and NVIDIA GTX 1080 Ti (Pascal) and T4 (Turing) GPUs.
 *
 * CPU parameters feed the microarchitecture simulator; GPU parameters
 * feed the analytical roofline model. Public microarchitectural
 * numbers (cache geometry, decoder widths, DSB capacity, penalties)
 * follow Intel's optimization manual and Agner Fog's tables; where a
 * value is not public (branch-predictor internals) a representative
 * value is used and the Broadwell -> Cascade Lake *delta* carries the
 * paper's observations (bigger predictor, cheaper redirects).
 */

#include <cstdint>
#include <string>
#include <vector>

namespace recstack {

/** Geometry and latency of one cache level. */
struct CacheGeom {
    uint64_t sizeBytes = 0;
    int ways = 8;
    int latencyCycles = 4;   ///< load-to-use on hit
};

/** L3 participation policy (Table II row "Cache Inclusion Policy"). */
enum class InclusionPolicy { kInclusive, kExclusive };

/** A server-class CPU (single-threaded inference, as in the paper). */
struct CpuConfig {
    std::string name;
    std::string uarch;
    double freqGHz = 2.6;
    int pipelineWidth = 4;       ///< pipeline slots per cycle
    int simdBits = 256;
    bool vnni = false;

    CacheGeom l1i;
    CacheGeom l1d;
    CacheGeom l2;
    CacheGeom l3;
    InclusionPolicy l3Policy = InclusionPolicy::kInclusive;

    // Frontend decoder.
    uint64_t dsbCapacityUops = 1536;
    double dsbUopsPerCycle = 4.0;
    double miteUopsPerCycle = 3.0;
    int dsbSwitchPenalty = 3;    ///< cycles per DSB<->MITE transition
    int dsbRefillUopsPerFlush = 32;  ///< uops re-decoded via MITE per flush

    // Branch prediction.
    int bpTableBits = 14;        ///< gshare PHT size = 2^bits
    int bpHistoryBits = 12;
    int mispredictPenalty = 17;  ///< redirect cycles
    /// Newer predictors (Skylake onward) lock onto loop-periodic
    /// outcome patterns that defeat a plain gshare.
    bool bpLoopPredictor = false;

    // Execution ports (Table II: "four arithmetic units, two load
    // units, and two store units"). The scheduler's port map is
    // built from these counts.
    int fmaPorts = 2;
    int loadPorts = 2;
    int storePorts = 2;
    /// Ports able to execute vector FP add/shuffle-class ops:
    /// Broadwell has one (port 1); Skylake onward added a second,
    /// which is what relieves the FC models' core-bound bottleneck
    /// (Fig. 10).
    int fpAddPorts = 1;

    // Memory.
    double dramGBs = 77.0;
    int dramLatencyCycles = 220;
    /// Fraction of miss latency the hardware prefetchers leave
    /// exposed for sequential / constant-stride streams (random
    /// gathers are never covered). Ablation knob for the
    /// irregular-vs-regular access story.
    double seqMissExposure = 0.12;
    double stridedMissExposure = 0.35;
    /// Off-core read-request queue depth (per core). Intel's DRAM
    /// bandwidth-congestion criterion fires when occupancy exceeds
    /// 70% of this (Fig. 14).
    int offcoreQueueDepth = 10;

    int simdLanes32() const { return simdBits / 32; }
};

/** A GPU AI accelerator, modeled analytically. */
struct GpuConfig {
    std::string name;
    std::string uarch;
    int smCount = 28;
    double freqGHz = 1.48;
    /// Effective single-precision throughput an ML framework extracts
    /// from dense GEMM at full occupancy (below peak: Caffe2 kernels).
    double effTflops = 10.0;
    double memGBs = 484.0;
    /// Achieved fraction of peak bandwidth for irregular gathers.
    double gatherEfficiency = 0.12;
    /// Achieved fraction of peak bandwidth for streaming kernels.
    double streamEfficiency = 0.75;
    /// Per-kernel launch + driver overhead, seconds.
    double kernelLaunchSec = 6.0e-6;
    /// Host-side framework dispatch preceding each launch (the CPU
    /// still walks the graph when the device executes), seconds.
    double hostDispatchSec = 3.0e-6;
    /// Host-to-device transfer: PCIe 3.0 x16 effective.
    double pcieGBs = 12.0;
    double pcieLatencySec = 12.0e-6;
    /// Extra inefficiency for many-small-kernel ops (concat/slice).
    double smallKernelFloorSec = 3.0e-6;
};

/**
 * An UPMEM-style processing-in-memory platform, modeled analytically
 * (src/pim/pim_model.h). Embedding tables live row-partitioned across
 * @c ranks DPU-populated memory ranks; the pooling kernels
 * (SparseLengthsSum/-WeightedSum/-Mean) execute next to the rows on
 * the DPUs, so only indices go up and pooled vectors come back over
 * the (narrow) host<->DPU transfer path. Every other operator runs on
 * the attached @c host CPU model — a PIM platform is a CPU whose
 * sparse ops moved into memory, which is exactly why it helps
 * SLS-dominated models and does nothing for FC-dominated ones.
 */
struct PimConfig {
    std::string name = "UPMEM PIM (8 ranks)";
    /// DPU-populated memory ranks the tables are partitioned across.
    int ranks = 8;
    /// DPUs per rank (UPMEM: 64 chips x 1 DPU per rank).
    int dpusPerRank = 64;
    /// Software threads per DPU. The DPU's in-order pipeline is only
    /// full once ~pipelineFillTasklets are resident; more tasklets
    /// add no bandwidth (they hide MRAM latency, already counted).
    int taskletsPerDpu = 16;
    int pipelineFillTasklets = 11;
    /// Aggregate MRAM streaming bandwidth of one fully-pipelined rank
    /// (dpusPerRank x ~0.6 GB/s per DPU).
    double rankInternalGBs = 38.4;
    /// Per-DPU WRAM scratchpad. Each active tasklet needs its row
    /// buffer resident, so at most wramBytesPerDpu / rowBytes
    /// tasklets can stream concurrently (the WRAM working-set
    /// constraint).
    uint64_t wramBytesPerDpu = 64 * 1024;
    /// Host->DPU / DPU->host batched-copy bandwidth and per-transfer
    /// launch latency (rank-level serial copies; far below DDR).
    double xferGBs = 8.0;
    double xferLatencySec = 20.0e-6;
    /// Host-side framework dispatch per offloaded operator.
    double hostDispatchSec = 3.0e-6;
    /// CPU that runs the non-offloaded operators (FC, GRU, concat,
    /// data loading).
    CpuConfig host;
};

/** CPU, GPU or PIM wrapper used by sweep code. */
enum class PlatformKind { kCpu, kGpu, kPim };

struct Platform {
    PlatformKind kind;
    CpuConfig cpu;   ///< valid when kind == kCpu
    GpuConfig gpu;   ///< valid when kind == kGpu
    PimConfig pim;   ///< valid when kind == kPim

    const std::string& name() const
    {
        switch (kind) {
          case PlatformKind::kCpu: return cpu.name;
          case PlatformKind::kGpu: return gpu.name;
          case PlatformKind::kPim: return pim.name;
        }
        return cpu.name;
    }
};

/** Table II instances. */
CpuConfig broadwellConfig();
CpuConfig cascadeLakeConfig();
GpuConfig gtx1080TiConfig();
GpuConfig t4Config();

/**
 * The UPMEM-style PIM instance (Broadwell host), with every knob
 * overridable from the environment without a rebuild:
 *
 *   RECSTACK_PIM_RANKS          ranks
 *   RECSTACK_PIM_DPUS_PER_RANK  dpusPerRank
 *   RECSTACK_PIM_TASKLETS       taskletsPerDpu
 *   RECSTACK_PIM_RANK_GBS       rankInternalGBs
 *   RECSTACK_PIM_XFER_GBS       xferGBs
 *   RECSTACK_PIM_XFER_LAT_US    xferLatencySec (microseconds)
 *
 * Values are read at call time (no caching), so tests and sweeps can
 * setenv between calls. Invalid / non-positive values are ignored.
 */
PimConfig upmemPimConfig();

/** All four platforms in the paper's order (BDW, CLX, 1080Ti, T4). */
std::vector<Platform> allPlatforms();

/**
 * The paper's four platforms plus the PIM extension appended at
 * index 4 (bench::kPim), so code indexing the paper platforms is
 * unaffected. allPlatforms() stays the default everywhere golden
 * numbers depend on the platform list.
 */
std::vector<Platform> allPlatformsWithPim();

Platform makeCpuPlatform(const CpuConfig& cfg);
Platform makeGpuPlatform(const GpuConfig& cfg);
Platform makePimPlatform(const PimConfig& cfg);

}  // namespace recstack

#endif  // RECSTACK_PLATFORM_PLATFORM_H_
