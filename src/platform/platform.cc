#include "platform/platform.h"

#include <cstdlib>
#include <string>

namespace recstack {
namespace {

/** Positive numeric env override, or @c fallback when unset/invalid. */
double
envPositive(const char* name, double fallback)
{
    const char* raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0') {
        return fallback;
    }
    char* end = nullptr;
    const double v = std::strtod(raw, &end);
    if (end == raw || v <= 0.0) {
        return fallback;
    }
    return v;
}

int
envPositiveInt(const char* name, int fallback)
{
    return static_cast<int>(
        envPositive(name, static_cast<double>(fallback)));
}

}  // namespace

CpuConfig
broadwellConfig()
{
    CpuConfig c;
    c.name = "Xeon E5-2697A (Broadwell)";
    c.uarch = "Broadwell";
    c.freqGHz = 2.6;
    c.pipelineWidth = 4;
    c.simdBits = 256;   // AVX-2
    c.vnni = false;

    c.l1i = {32 * 1024, 8, 4};
    c.l1d = {32 * 1024, 8, 4};
    c.l2 = {256 * 1024, 8, 12};
    c.l3 = {40ull * 1024 * 1024, 20, 42};
    c.l3Policy = InclusionPolicy::kInclusive;

    c.dsbCapacityUops = 1536;
    c.dsbUopsPerCycle = 4.0;
    c.miteUopsPerCycle = 3.0;
    c.dsbSwitchPenalty = 3;
    c.dsbRefillUopsPerFlush = 64;

    c.bpTableBits = 14;
    c.bpHistoryBits = 12;
    c.mispredictPenalty = 18;

    c.dramGBs = 77.0;      // DDR4-2400, 4 channels
    c.dramLatencyCycles = 230;
    return c;
}

CpuConfig
cascadeLakeConfig()
{
    CpuConfig c;
    c.name = "Xeon Gold 6242 (Cascade Lake)";
    c.uarch = "CascadeLake";
    c.freqGHz = 2.8;
    c.pipelineWidth = 4;
    c.simdBits = 512;   // AVX-512 + VNNI
    c.vnni = true;

    c.l1i = {32 * 1024, 8, 4};
    c.l1d = {32 * 1024, 8, 4};
    c.l2 = {1024 * 1024, 16, 14};
    c.l3 = {22ull * 1024 * 1024, 11, 44};
    c.l3Policy = InclusionPolicy::kExclusive;

    c.dsbCapacityUops = 1536;
    c.dsbUopsPerCycle = 6.0;
    c.miteUopsPerCycle = 3.5;
    c.dsbSwitchPenalty = 2;
    c.dsbRefillUopsPerFlush = 48;

    // The paper observes markedly less bad speculation on Cascade
    // Lake (Fig. 15) and cheaper direct-jump redirects (Agner Fog);
    // modeled as a larger gshare and a smaller penalty.
    c.bpTableBits = 16;
    c.bpHistoryBits = 16;
    c.mispredictPenalty = 15;
    c.bpLoopPredictor = true;
    c.fpAddPorts = 2;  // Skylake onward: FP add on ports 0 and 1

    c.dramGBs = 131.0;     // DDR4-2933, 6 channels
    c.dramLatencyCycles = 210;
    return c;
}

GpuConfig
gtx1080TiConfig()
{
    GpuConfig g;
    g.name = "GTX 1080 Ti (Pascal)";
    g.uarch = "Pascal";
    g.smCount = 28;
    g.freqGHz = 1.48;
    // Sustained fp32 throughput Caffe2's GEMM kernels extract from
    // Pascal on these layer shapes (well below the 11.3 TF peak).
    g.effTflops = 1.25;
    g.memGBs = 484.4;          // GDDR5X
    g.gatherEfficiency = 0.09; // GDDR5X random-access penalty
    g.streamEfficiency = 0.70;
    g.kernelLaunchSec = 7.0e-6;
    g.hostDispatchSec = 3.0e-6;
    // Effective host-to-device rate of the framework's staged small
    // per-tensor copies (far below the PCIe 3.0 x16 line rate).
    g.pcieGBs = 1.0;
    g.pcieLatencySec = 4.0e-6;
    g.smallKernelFloorSec = 3.5e-6;
    return g;
}

GpuConfig
t4Config()
{
    GpuConfig g;
    g.name = "T4 (Turing)";
    g.uarch = "Turing";
    g.smCount = 40;
    g.freqGHz = 0.58;
    // Turing's 40 SMs and improved scheduling extract more sustained
    // GEMM throughput in framework kernels despite the lower clock.
    g.effTflops = 1.55;
    g.memGBs = 320.0;          // GDDR6
    g.gatherEfficiency = 0.18; // GDDR6: better random-access behaviour
    g.streamEfficiency = 0.72;
    g.kernelLaunchSec = 6.0e-6;
    g.hostDispatchSec = 3.0e-6;
    g.pcieGBs = 1.0;
    g.pcieLatencySec = 4.0e-6;
    g.smallKernelFloorSec = 3.0e-6;
    return g;
}

PimConfig
upmemPimConfig()
{
    PimConfig p;
    p.ranks = envPositiveInt("RECSTACK_PIM_RANKS", p.ranks);
    p.dpusPerRank =
        envPositiveInt("RECSTACK_PIM_DPUS_PER_RANK", p.dpusPerRank);
    p.taskletsPerDpu =
        envPositiveInt("RECSTACK_PIM_TASKLETS", p.taskletsPerDpu);
    p.rankInternalGBs =
        envPositive("RECSTACK_PIM_RANK_GBS", p.rankInternalGBs);
    p.xferGBs = envPositive("RECSTACK_PIM_XFER_GBS", p.xferGBs);
    p.xferLatencySec =
        envPositive("RECSTACK_PIM_XFER_LAT_US",
                    p.xferLatencySec * 1e6) *
        1e-6;
    p.name = "UPMEM PIM (" + std::to_string(p.ranks) + " ranks)";
    p.host = broadwellConfig();
    return p;
}

Platform
makeCpuPlatform(const CpuConfig& cfg)
{
    Platform p;
    p.kind = PlatformKind::kCpu;
    p.cpu = cfg;
    return p;
}

Platform
makeGpuPlatform(const GpuConfig& cfg)
{
    Platform p;
    p.kind = PlatformKind::kGpu;
    p.gpu = cfg;
    return p;
}

Platform
makePimPlatform(const PimConfig& cfg)
{
    Platform p;
    p.kind = PlatformKind::kPim;
    p.pim = cfg;
    return p;
}

std::vector<Platform>
allPlatforms()
{
    return {makeCpuPlatform(broadwellConfig()),
            makeCpuPlatform(cascadeLakeConfig()),
            makeGpuPlatform(gtx1080TiConfig()),
            makeGpuPlatform(t4Config())};
}

std::vector<Platform>
allPlatformsWithPim()
{
    std::vector<Platform> platforms = allPlatforms();
    platforms.push_back(makePimPlatform(upmemPimConfig()));
    return platforms;
}

}  // namespace recstack
