#ifndef RECSTACK_OPS_RESHAPE_H_
#define RECSTACK_OPS_RESHAPE_H_

/**
 * @file
 * Shape-manipulation operators: Reshape (metadata only) and Slice
 * (extract one axis-1 plane of a 3-D tensor, used by DIN's
 * per-behavior attention units).
 */

#include "ops/operator.h"

namespace recstack {

/**
 * Reshape to a target shape; at most one dimension may be -1 and is
 * inferred. Copies the payload (the real frameworks alias, but a copy
 * keeps Workspace ownership simple); the profile reports only
 * dispatch cost since the copy is elided in real deployments.
 */
class ReshapeOp : public Operator
{
  public:
    ReshapeOp(std::string name, std::string x, std::string y,
              std::vector<int64_t> shape);

    void inferShapes(Workspace& ws) override;
    void run(Workspace& ws) override;
    KernelProfile profile(const Workspace& ws) const override;

    /** Requested shape, -1 wildcards unresolved (fusion matching). */
    const std::vector<int64_t>& targetShape() const
    {
        return targetShape_;
    }

  private:
    std::vector<int64_t> resolve(const Tensor& x) const;
    std::vector<int64_t> targetShape_;
};

/**
 * Slice plane @c index out of axis 1: [B, N, D] -> [B, D].
 */
class SliceOp : public Operator
{
  public:
    SliceOp(std::string name, std::string x, std::string y, int64_t index);

    void inferShapes(Workspace& ws) override;
    void run(Workspace& ws) override;
    KernelProfile profile(const Workspace& ws) const override;

    int64_t index() const { return index_; }

  private:
    int64_t index_;
};

/**
 * Transpose: swap the first two axes. 2-D [A, B] -> [B, A] or
 * 3-D [A, B, D] -> [B, A, D] (the layout shuffle between time-major
 * GRU sequences and batch-major attention math in DIEN).
 */
class TransposeOp : public Operator
{
  public:
    TransposeOp(std::string name, std::string x, std::string y);

    void inferShapes(Workspace& ws) override;
    void run(Workspace& ws) override;
    KernelProfile profile(const Workspace& ws) const override;
};

OperatorPtr makeReshape(std::string name, std::string x, std::string y,
                        std::vector<int64_t> shape);
OperatorPtr makeSlice(std::string name, std::string x, std::string y,
                      int64_t index);
OperatorPtr makeTranspose(std::string name, std::string x, std::string y);

}  // namespace recstack

#endif  // RECSTACK_OPS_RESHAPE_H_
