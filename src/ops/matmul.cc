#include "ops/matmul.h"

#include <cmath>

#include "common/thread_pool.h"
#include "ops/kernels.h"
#include "ops/op_costs.h"

namespace recstack {

BatchMatMulOp::BatchMatMulOp(std::string name, std::string a, std::string b,
                             std::string c)
    : Operator("BatchMatMul", std::move(name), {std::move(a), std::move(b)},
               {std::move(c)})
{
}

void
BatchMatMulOp::inferShapes(Workspace& ws)
{
    const Tensor& a = in(ws, 0);
    const Tensor& b = in(ws, 1);
    RECSTACK_CHECK(a.rank() == 3 && b.rank() == 3,
                   "BatchMatMul '" << name() << "': inputs must be 3-D");
    RECSTACK_CHECK(a.dim(0) == b.dim(0),
                   "BatchMatMul '" << name() << "': batch mismatch");
    RECSTACK_CHECK(a.dim(2) == b.dim(1),
                   "BatchMatMul '" << name() << "': inner dim mismatch "
                                   << a.describe() << " vs " << b.describe());
    ws.ensure(outputs()[0], {a.dim(0), a.dim(1), b.dim(2)});
}

void
BatchMatMulOp::run(Workspace& ws)
{
    const Tensor& at = in(ws, 0);
    const Tensor& bt = in(ws, 1);
    Tensor& ct = out(ws, 0);

    const int64_t batch = at.dim(0);
    const int64_t m = at.dim(1);
    const int64_t k = at.dim(2);
    const int64_t n = bt.dim(2);
    const float* a = at.data<float>();
    const float* b = bt.data<float>();
    float* c = ct.data<float>();

    // Partition the flattened (batch, i) output rows; each chunk
    // writes a disjoint band of C, so parallel == serial bitwise.
    // batchMatMulRows vectorizes across the n dimension with the
    // per-element scalar accumulation order, so the tier choice is
    // bitwise-invisible here too (see ops/kernels.h).
    const KernelIsa isa = activeKernelIsa();
    parallelFor(0, batch * m, grainForCost(static_cast<uint64_t>(n * k)),
                [=](int64_t lo, int64_t hi) {
        kern::batchMatMulRows(isa, a, b, c, lo, hi, m, k, n);
    });
}

KernelProfile
BatchMatMulOp::profile(const Workspace& ws) const
{
    const Tensor& a = in(ws, 0);
    const Tensor& b = in(ws, 1);
    const Tensor& c = outConst(ws, 0);
    const uint64_t batch = static_cast<uint64_t>(a.dim(0));
    const uint64_t m = static_cast<uint64_t>(a.dim(1));
    const uint64_t k = static_cast<uint64_t>(a.dim(2));
    const uint64_t n = static_cast<uint64_t>(b.dim(2));

    KernelProfile kp = baseProfile();
    kp.fmaFlops = 2 * batch * m * n * k;
    kp.gemmWidth = n * m;  // per-sample independent outputs
    kp.reloadLoadElems = batch * m * n * k / 2;
    kp.vecElemOps = batch * m * n * k / 3;
    kp.simdScalableOps = batch * m * n / 2;
    kp.scalarOps = batch * 8;
    addSeqStream(kp, inputs()[0], a, false);
    addSeqStream(kp, inputs()[1], b, false);
    addSeqStream(kp, outputs()[0], c, true);

    BranchStream loops;
    loops.count = std::max<uint64_t>(1, kp.fmaFlops /
                                     opcost::kFlopsPerGemmBranch) +
                  batch;
    loops.takenProbability = 0.96;
    loops.randomness = 0.03;
    loops.scalesWithSimd = true;
    kp.branches.push_back(loops);

    kp.codeFootprintBytes = opcost::kGemmCodeBytes;
    kp.codeRegion = "kernel:BatchMatMul";
    kp.codeIterations = std::max<uint64_t>(1, batch * m * n * k / 512);
    return kp;
}

SoftmaxOp::SoftmaxOp(std::string name, std::string x, std::string y)
    : Operator("Softmax", std::move(name), {std::move(x)}, {std::move(y)})
{
}

void
SoftmaxOp::inferShapes(Workspace& ws)
{
    const Tensor& x = in(ws, 0);
    RECSTACK_CHECK(x.rank() == 2, "Softmax '" << name()
                   << "': input must be 2-D");
    ws.ensure(outputs()[0], x.shape());
}

void
SoftmaxOp::run(Workspace& ws)
{
    const Tensor& xt = in(ws, 0);
    Tensor& yt = out(ws, 0);
    const float* x = xt.data<float>();
    float* y = yt.data<float>();
    const int64_t batch = xt.dim(0);
    const int64_t n = xt.dim(1);
    // Rows normalize independently: partition the batch dimension.
    parallelFor(0, batch, grainForCost(static_cast<uint64_t>(n) * 8),
                [=](int64_t lo, int64_t hi) {
        for (int64_t b = lo; b < hi; ++b) {
            const float* row = x + b * n;
            float* dst = y + b * n;
            float mx = row[0];
            for (int64_t i = 1; i < n; ++i) {
                mx = std::max(mx, row[i]);
            }
            float sum = 0.0f;
            for (int64_t i = 0; i < n; ++i) {
                dst[i] = std::exp(row[i] - mx);
                sum += dst[i];
            }
            for (int64_t i = 0; i < n; ++i) {
                dst[i] /= sum;
            }
        }
    });
}

KernelProfile
SoftmaxOp::profile(const Workspace& ws) const
{
    const Tensor& x = in(ws, 0);
    KernelProfile kp = baseProfile();
    const uint64_t n = static_cast<uint64_t>(x.numel());
    kp.vecElemOps = n * 10;  // max + exp + normalize passes
    kp.scalarOps = static_cast<uint64_t>(x.dim(0)) * 8;
    addSeqStream(kp, inputs()[0], x, false);
    addSeqStream(kp, outputs()[0], outConst(ws, 0), true);
    BranchStream loops;
    loops.count = std::max<uint64_t>(1, n / 16);
    loops.takenProbability = 0.95;
    loops.randomness = 0.05;
    loops.scalesWithSimd = true;
    kp.branches.push_back(loops);
    kp.codeFootprintBytes = opcost::kSoftmaxCodeBytes;
    kp.codeRegion = "kernel:Softmax";
    kp.codeIterations = std::max<uint64_t>(1, n / 8);
    return kp;
}

OperatorPtr
makeBatchMatMul(std::string name, std::string a, std::string b,
                std::string c)
{
    return std::make_unique<BatchMatMulOp>(std::move(name), std::move(a),
                                           std::move(b), std::move(c));
}

OperatorPtr
makeSoftmax(std::string name, std::string x, std::string y)
{
    return std::make_unique<SoftmaxOp>(std::move(name), std::move(x),
                                       std::move(y));
}

}  // namespace recstack
