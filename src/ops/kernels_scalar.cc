/**
 * @file
 * Scalar kernel tier: the original pre-SIMD inner loops, verbatim.
 * This tier is the numerics reference — RECSTACK_ISA=scalar output
 * must stay byte-identical to the historical kernels (the golden
 * snapshots and every pre-existing differential test were produced
 * by exactly these loops). Do not "optimize" the accumulation order
 * here; change docs/vectorization.md's tolerance policy instead.
 */

#include <cmath>

#include "ops/kernels_impl.h"

namespace recstack {
namespace kern {
namespace detail {

float
applyFcAct(FcAct act, float v)
{
    switch (act) {
      case FcAct::kNone:
        return v;
      case FcAct::kRelu:
        return v > 0.0f ? v : 0.0f;
      case FcAct::kSigmoid:
        return 1.0f / (1.0f + std::exp(-v));
      case FcAct::kTanh:
        return std::tanh(v);
    }
    return v;
}

float
dotBiasScalar(float bias, const float* x, const float* w, int64_t k)
{
    float acc = bias;
    for (int64_t c = 0; c < k; ++c) {
        acc += x[c] * w[c];
    }
    return acc;
}

void
fcRowsScalar(const float* x, const float* w, const float* b, float* y,
             int64_t lo, int64_t hi, int64_t n, int64_t k, FcAct act)
{
    for (int64_t i = lo; i < hi; ++i) {
        const float* xrow = x + i * k;
        float* yrow = y + i * n;
        for (int64_t j = 0; j < n; ++j) {
            const float acc = dotBiasScalar(b[j], xrow, w + j * k, k);
            yrow[j] = applyFcAct(act, acc);
        }
    }
}

void
batchMatMulRowsScalar(const float* a, const float* b, float* c, int64_t lo,
                      int64_t hi, int64_t m, int64_t k, int64_t n)
{
    for (int64_t r = lo; r < hi; ++r) {
        const int64_t bb = r / m;
        const int64_t i = r % m;
        const float* arow = a + (bb * m + i) * k;
        const float* bbase = b + bb * k * n;
        float* crow = c + (bb * m + i) * n;
        for (int64_t j = 0; j < n; ++j) {
            float acc = 0.0f;
            for (int64_t q = 0; q < k; ++q) {
                acc += arow[q] * bbase[q * n + j];
            }
            crow[j] = acc;
        }
    }
}

void
rowAddScalar(float* yrow, const float* src, int64_t dim)
{
    for (int64_t d = 0; d < dim; ++d) {
        yrow[d] += src[d];
    }
}

void
rowAddScaledScalar(float* yrow, const float* src, float scale, int64_t dim)
{
    for (int64_t d = 0; d < dim; ++d) {
        yrow[d] += scale * src[d];
    }
}

void
rowScaleScalar(float* yrow, float scale, int64_t dim)
{
    for (int64_t d = 0; d < dim; ++d) {
        yrow[d] *= scale;
    }
}

void
rowCopyScalar(float* dst, const float* src, int64_t dim)
{
    for (int64_t d = 0; d < dim; ++d) {
        dst[d] = src[d];
    }
}

}  // namespace detail
}  // namespace kern
}  // namespace recstack
