#ifndef RECSTACK_OPS_KERNELS_H_
#define RECSTACK_OPS_KERNELS_H_

/**
 * @file
 * The ISA-dispatched numeric kernel tier behind src/ops/.
 *
 * Every hot inner loop of the operators (FC/FusedFC rows, BatchMatMul
 * rows, the SparseLengths* pooling primitives, the GRU gate matmuls)
 * funnels through these free functions. Operators resolve the tier
 * ONCE per run via activeKernelIsa() — before entering parallelFor —
 * and pass it down, so a single kernel invocation never mixes tiers
 * and pool workers never consult thread-local state.
 *
 * Numerics contract (docs/vectorization.md):
 *
 *  - The scalar tier reproduces the original pre-SIMD loops
 *    byte-for-byte; RECSTACK_ISA=scalar output is bit-identical to
 *    the historical kernels and the golden snapshots.
 *  - Lane-parallel kernels (rowAdd/rowAddScaled/rowScale/rowCopy,
 *    batchMatMulRows) keep every output element's accumulation
 *    sequence identical to scalar, so the avx2 tier is BIT-IDENTICAL
 *    to scalar for SLS/SLWS/SLMean/Gather/ReduceSum/BatchMatMul.
 *    (rowAddScaled deliberately uses mul-then-add, not FMA, to keep
 *    the scalar rounding; the avx2 TU is built with -ffp-contract=off
 *    so the compiler cannot re-fuse it.)
 *  - K-reduction kernels (dotBias, fcRows) split the reduction over
 *    8 partial-sum lanes on avx2, which reorders the additions: FC,
 *    FusedFC and the GRU matmuls carry a documented ULP/relative
 *    tolerance against scalar instead of bit-equality. Within the
 *    avx2 tier the order is CANONICAL — exactly one 8-lane
 *    accumulator per output element, c ascending in steps of 8, a
 *    fixed pairwise horizontal reduction, then the <8 leftover
 *    elements added sequentially:
 *
 *        r = bias + hsum(acc8); for (c = k&~7; c < k; ++c) r += x[c]*w[c]
 *
 *    Every caller (FCOp, FusedFCOp over a gathered concat row,
 *    GRUStepOp/GRULayerOp gates) uses this same contract, which is
 *    what keeps the compiled/fused path bit-identical to the
 *    interpreted path at any tier (tests/test_plan_equivalence.cc,
 *    tests/test_simd_differential.cc).
 */

#include <cstdint>

#include "common/cpu_features.h"

namespace recstack {
namespace kern {

/** Activation applied to the FC accumulator before the store. */
enum class FcAct { kNone, kRelu, kSigmoid, kTanh };

/**
 * Canonical biased dot product r = bias + x·w over k elements (the
 * per-output-element kernel of FC and the GRU gate matmuls). See the
 * file comment for the avx2 accumulation order.
 */
float dotBias(KernelIsa isa, float bias, const float* x, const float* w,
              int64_t k);

/**
 * FC output rows [lo, hi): y[i, j] = act(dotBias(b[j], x_i, w_j, k))
 * for the row-major operands of FCOp (X [M,K], W [N,K], b [N],
 * Y [M,N]). Each y element matches a standalone dotBias call on the
 * same tier bit-for-bit.
 */
void fcRows(KernelIsa isa, const float* x, const float* w, const float* b,
            float* y, int64_t lo, int64_t hi, int64_t n, int64_t k,
            FcAct act);

/**
 * BatchMatMul flattened output rows [lo, hi) over batch*m rows of
 * C [B,M,N] = A [B,M,K] @ B [B,K,N]. Ascending-q mul-then-add per
 * output element on every tier: bit-identical to scalar.
 */
void batchMatMulRows(KernelIsa isa, const float* a, const float* b,
                     float* c, int64_t lo, int64_t hi, int64_t m,
                     int64_t k, int64_t n);

/** yrow[d] += src[d] — the SLS pooling add; bit-identical across tiers. */
void rowAdd(KernelIsa isa, float* yrow, const float* src, int64_t dim);

/**
 * yrow[d] += scale * src[d] — the SLWS pooling step; mul-then-add on
 * every tier (never FMA), bit-identical across tiers.
 */
void rowAddScaled(KernelIsa isa, float* yrow, const float* src,
                  float scale, int64_t dim);

/** yrow[d] *= scale — the SLMean normalization; bit-identical. */
void rowScale(KernelIsa isa, float* yrow, float scale, int64_t dim);

/** dst[d] = src[d] — the Gather row copy; trivially bit-identical. */
void rowCopy(KernelIsa isa, float* dst, const float* src, int64_t dim);

}  // namespace kern
}  // namespace recstack

#endif  // RECSTACK_OPS_KERNELS_H_
