#ifndef RECSTACK_OPS_FUSED_H_
#define RECSTACK_OPS_FUSED_H_

/**
 * @file
 * Fused operators emitted by the CompiledNet rewrite passes
 * (graph/compiled_net.h). These never appear in builder-emitted nets;
 * they replace windows of framework-granularity operators at compile
 * time.
 *
 * Every fused kernel replicates the exact floating-point operation
 * order of the operator chain it replaces, element by element, so a
 * compiled run is bit-identical to the interpreted run at any intra-op
 * width (the planning-equivalence contract of docs/memory_planning.md).
 */

#include "ops/operator.h"

namespace recstack {

/** Activation applied by a fused FC ("none" = plain FC). */
enum class FusedAct { kNone, kRelu, kSigmoid, kTanh };

/** Printable activation name ("relu", ...). */
const char* fusedActName(FusedAct act);

/**
 * Fused concat + fully-connected + activation:
 *
 *   Y = act([X0 ; X1 ; ... ; Xn-1] * W^T + b)
 *
 * Inputs:  X0..Xn-1 [M, Ki], W [N, sum(Ki)], b [N]
 * Outputs: Y [M, N]
 *
 * With one X block and act == kNone this degenerates to FC. The
 * blocks are walked in declaration order inside the accumulation
 * loop, which reproduces FC-over-materialized-concat bit-exactly,
 * and the activation is applied to the float accumulator exactly as
 * the standalone UnaryOp would apply it to the stored FC output.
 */
class FusedFCOp : public Operator
{
  public:
    FusedFCOp(std::string name, std::vector<std::string> xs, std::string w,
              std::string b, std::string y, FusedAct act);

    void inferShapes(Workspace& ws) override;
    void run(Workspace& ws) override;
    KernelProfile profile(const Workspace& ws) const override;

    FusedAct act() const { return act_; }
    /** Number of concatenated X blocks (inputs are xs..., w, b). */
    size_t numBlocks() const { return inputs().size() - 2; }

  private:
    FusedAct act_;
};

/**
 * One fused (AU)GRU timestep over a batch-major sequence — the ~22
 * operator window Caffe2's RecurrentNetwork unrolls per step
 * (Slice/FC/FC/Reshape x2/Slice x6/gate arithmetic), collapsed into
 * a single kernel:
 *
 *   x_t = Seq[:, t, :]
 *   gx  = x_t * Wx^T + bx          gh = h * Wh^T + bh
 *   r   = sigmoid(gxr + ghr)       z = sigmoid(gxz + ghz)
 *   z  *= Att[:, t, 0]             (attentional update, if present)
 *   n   = tanh(gxn + r * ghn)
 *   h'  = (n - z * n) + z * h
 *
 * Inputs:  Seq [B, T, I], H [B, H], Wx [3H, I], bx [3H],
 *          Wh [3H, H], bh [3H], optional Att [B, T, 1]
 * Outputs: H' [B, H]
 *
 * Gate order in Wx/Wh rows is r, z, n (the builder's reshape-to-
 * [B, 3, H] convention). Batch rows are independent, so the kernel
 * partitions over B with per-chunk gate scratch and stays
 * bit-identical at any thread width.
 */
class GRUStepOp : public Operator
{
  public:
    GRUStepOp(std::string name, std::string seq, std::string h,
              std::string wx, std::string bx, std::string wh,
              std::string bh, std::string att, std::string h_new,
              int64_t step);

    void inferShapes(Workspace& ws) override;
    void run(Workspace& ws) override;
    KernelProfile profile(const Workspace& ws) const override;

    int64_t step() const { return step_; }
    bool attentional() const { return inputs().size() == 7; }

  private:
    int64_t step_;
};

}  // namespace recstack

#endif  // RECSTACK_OPS_FUSED_H_
