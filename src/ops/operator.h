#ifndef RECSTACK_OPS_OPERATOR_H_
#define RECSTACK_OPS_OPERATOR_H_

/**
 * @file
 * Operator: base class of every node in a recstack net.
 *
 * An operator has three responsibilities, kept separate so the
 * executor can run in profile-only mode for very large batch sizes:
 *
 *  - inferShapes(): allocate outputs with the right shapes/dtypes.
 *  - run():         real numeric execution (correctness-tested).
 *  - profile():     lower the current shapes to a KernelProfile for
 *                   the platform models.
 */

#include <memory>
#include <string>
#include <vector>

#include "ops/workspace.h"
#include "profile/kernel_profile.h"

namespace recstack {

/** Base class for all operators. */
class Operator
{
  public:
    Operator(std::string type, std::string name,
             std::vector<std::string> inputs,
             std::vector<std::string> outputs);
    virtual ~Operator();

    Operator(const Operator&) = delete;
    Operator& operator=(const Operator&) = delete;

    const std::string& type() const { return type_; }
    const std::string& name() const { return name_; }

    /**
     * Operator-type label used in profiles/breakdowns. Defaults to
     * type(); the TensorFlow frontend overrides it so the same kernel
     * reports under TF naming (FC -> FusedMatMul, Gather ->
     * ResourceGather), mirroring the paper's Fig. 7 mapping.
     */
    const std::string& displayType() const
    {
        return displayType_.empty() ? type_ : displayType_;
    }
    void setDisplayType(std::string display)
    {
        displayType_ = std::move(display);
    }
    const std::vector<std::string>& inputs() const { return inputs_; }
    const std::vector<std::string>& outputs() const { return outputs_; }

    /** Allocate/validate outputs from input shapes. */
    virtual void inferShapes(Workspace& ws) = 0;

    /** Numeric execution; outputs must already be allocated. */
    virtual void run(Workspace& ws) = 0;

    /** Lower the current shapes to an abstract workload descriptor. */
    virtual KernelProfile profile(const Workspace& ws) const = 0;

    /**
     * Mark this operator instance as having its own specialized code
     * region of @c bytes (e.g. DIN's per-lookup local activation units,
     * which the paper identifies as carrying unique instruction
     * reference locations). The executor rewrites the profile's code
     * identity accordingly.
     */
    void setUniqueCodeBytes(uint64_t bytes) { uniqueCodeBytes_ = bytes; }
    uint64_t uniqueCodeBytes() const { return uniqueCodeBytes_; }

  protected:
    /** i-th input / output tensor accessors. */
    const Tensor& in(const Workspace& ws, size_t i) const;
    Tensor& out(Workspace& ws, size_t i) const;
    const Tensor& outConst(const Workspace& ws, size_t i) const;

    /**
     * Start a profile pre-filled with op identity and the framework
     * dispatch cost every operator pays.
     */
    KernelProfile baseProfile() const;

    /** Add a sequential read/write stream over a whole tensor. */
    static void addSeqStream(KernelProfile& kp, const std::string& region,
                             const Tensor& t, bool is_write);

  private:
    std::string type_;
    std::string name_;
    std::string displayType_;
    std::vector<std::string> inputs_;
    std::vector<std::string> outputs_;
    uint64_t uniqueCodeBytes_ = 0;
};

using OperatorPtr = std::unique_ptr<Operator>;

}  // namespace recstack

#endif  // RECSTACK_OPS_OPERATOR_H_
