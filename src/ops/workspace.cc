#include "ops/workspace.h"

namespace recstack {

bool
Workspace::has(const std::string& name) const
{
    return blobs_.count(name) != 0;
}

Tensor&
Workspace::get(const std::string& name)
{
    auto it = blobs_.find(name);
    RECSTACK_CHECK(it != blobs_.end(), "no blob named '" << name << "'");
    return it->second;
}

const Tensor&
Workspace::get(const std::string& name) const
{
    auto it = blobs_.find(name);
    RECSTACK_CHECK(it != blobs_.end(), "no blob named '" << name << "'");
    return it->second;
}

Tensor&
Workspace::set(const std::string& name, Tensor tensor)
{
    return blobs_.insert_or_assign(name, std::move(tensor)).first->second;
}

Tensor&
Workspace::ensure(const std::string& name, const std::vector<int64_t>& shape,
                  DType dtype)
{
    auto it = blobs_.find(name);
    // Never reuse an arena view: its storage belongs to a memory plan
    // with aliased lifetimes, which an op-at-a-time run would corrupt.
    if (it != blobs_.end() && it->second.shape() == shape &&
        it->second.dtype() == dtype && it->second.ownsStorage() &&
        (shapeOnly_ || it->second.materialized())) {
        return it->second;
    }
    if (shapeOnly_) {
        return set(name, Tensor::shapeOnly(shape, dtype));
    }
    return set(name, Tensor(shape, dtype));
}

void
Workspace::remove(const std::string& name)
{
    blobs_.erase(name);
}

std::vector<std::string>
Workspace::names() const
{
    std::vector<std::string> out;
    out.reserve(blobs_.size());
    for (const auto& [name, tensor] : blobs_) {
        out.push_back(name);
    }
    return out;
}

size_t
Workspace::totalBytes() const
{
    size_t n = 0;
    for (const auto& [name, tensor] : blobs_) {
        n += tensor.byteSize();
    }
    return n;
}

size_t
Workspace::materializedBytes() const
{
    size_t n = 0;
    for (const auto& [name, tensor] : blobs_) {
        if (tensor.materialized() && tensor.ownsStorage()) {
            n += tensor.byteSize();
        }
    }
    return n;
}

size_t
Workspace::plannedBytes() const
{
    size_t n = 0;
    for (const auto& [name, tensor] : blobs_) {
        if (!tensor.materialized()) {
            n += tensor.byteSize();
        }
    }
    return n;
}

}  // namespace recstack
