#ifndef RECSTACK_OPS_ELEMENTWISE_H_
#define RECSTACK_OPS_ELEMENTWISE_H_

/**
 * @file
 * Elementwise operators: activations (Relu/Sigmoid/Tanh) and
 * arithmetic (Add/Sub/Mul/Sum). These are the glue operators whose
 * per-op dispatch overhead dominates the small-operator models (NCF,
 * DIN) in the paper's characterization.
 */

#include "ops/operator.h"

namespace recstack {

/** Supported unary elementwise functions. */
enum class UnaryFn { kRelu, kSigmoid, kTanh };

/** Unary elementwise operator: Y = fn(X), same shape. */
class UnaryOp : public Operator
{
  public:
    UnaryOp(UnaryFn fn, std::string name, std::string x, std::string y);

    void inferShapes(Workspace& ws) override;
    void run(Workspace& ws) override;
    KernelProfile profile(const Workspace& ws) const override;

    UnaryFn fn() const { return fn_; }

  private:
    UnaryFn fn_;
};

/** Supported binary elementwise functions. */
enum class BinaryFn { kAdd, kSub, kMul };

/**
 * Binary elementwise operator: Y = fn(A, B). Shapes must match, or B
 * may be [rows, 1] and is broadcast across A's columns (the AUGRU
 * attention-scalar update uses this).
 */
class BinaryOp : public Operator
{
  public:
    BinaryOp(BinaryFn fn, std::string name, std::string a, std::string b,
             std::string y);

    void inferShapes(Workspace& ws) override;
    void run(Workspace& ws) override;
    KernelProfile profile(const Workspace& ws) const override;

    BinaryFn fn() const { return fn_; }

  private:
    BinaryFn fn_;
};

/** N-ary elementwise sum (Caffe2 Sum): Y = X0 + X1 + ... */
class SumOp : public Operator
{
  public:
    SumOp(std::string name, std::vector<std::string> xs, std::string y);

    void inferShapes(Workspace& ws) override;
    void run(Workspace& ws) override;
    KernelProfile profile(const Workspace& ws) const override;
};

OperatorPtr makeRelu(std::string name, std::string x, std::string y);
OperatorPtr makeSigmoid(std::string name, std::string x, std::string y);
OperatorPtr makeTanh(std::string name, std::string x, std::string y);
OperatorPtr makeAdd(std::string name, std::string a, std::string b,
                    std::string y);
OperatorPtr makeSub(std::string name, std::string a, std::string b,
                    std::string y);
OperatorPtr makeMul(std::string name, std::string a, std::string b,
                    std::string y);
OperatorPtr makeSum(std::string name, std::vector<std::string> xs,
                    std::string y);

}  // namespace recstack

#endif  // RECSTACK_OPS_ELEMENTWISE_H_
