/**
 * @file
 * AVX2+FMA kernel tier. This translation unit is the only one built
 * with -mavx2 -mfma (and -ffp-contract=off, so scalar tail code and
 * the mul-then-add pooling primitives keep the scalar tier's
 * rounding); the dispatch layer never routes here unless the host
 * CPU reports AVX2+FMA at runtime.
 *
 * Two numerics classes (see ops/kernels.h and docs/vectorization.md):
 *
 *  - Lane-parallel kernels (rowAdd/rowAddScaled/rowScale/rowCopy,
 *    batchMatMulRows): each output element sees exactly the scalar
 *    tier's operation sequence, so these are bit-identical to scalar.
 *  - K-reduction kernels (dotBias, fcRows): the reduction is split
 *    over the 8 lanes of ONE accumulator (lane l sums the c ≡ l
 *    mod 8 products, FMA-fused), reduced by a fixed pairwise tree,
 *    with the <8 leftover elements added sequentially after the
 *    reduction. Reordering + FMA changes rounding vs scalar
 *    (tolerance applies), but the order is canonical within the
 *    tier: fcRows' 4-wide j-blocking gives each output column its
 *    own accumulator running this exact recipe, so FCOp, FusedFCOp
 *    (over a gathered concat row) and the GRU gate matmuls all
 *    produce bit-identical values for the same (bias, x, w, k).
 *
 * On builds without AVX2 support every entry point forwards to the
 * scalar tier (and kernelIsaSupported(kAvx2) is false, so they are
 * unreachable through normal dispatch anyway).
 */

#include "ops/kernels_impl.h"

#if defined(RECSTACK_HAVE_AVX2_BUILD) && \
    (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

namespace recstack {
namespace kern {
namespace detail {
namespace {

/**
 * Fixed pairwise horizontal sum:
 * ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)).
 */
inline float
hsum8(__m256 v)
{
    const __m128 lo = _mm256_castps256_ps128(v);
    const __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 s = _mm_add_ps(lo, hi);               // l + l+4
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));      // + lanes 2,3
    s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));  // + lane 1
    return _mm_cvtss_f32(s);
}

}  // namespace

float
dotBiasAvx2(float bias, const float* x, const float* w, int64_t k)
{
    const int64_t kv = k & ~int64_t{7};
    float r = bias;
    if (kv > 0) {
        __m256 acc = _mm256_setzero_ps();
        for (int64_t c = 0; c < kv; c += 8) {
            acc = _mm256_fmadd_ps(_mm256_loadu_ps(x + c),
                                  _mm256_loadu_ps(w + c), acc);
        }
        r += hsum8(acc);
    }
    for (int64_t c = kv; c < k; ++c) {
        r += x[c] * w[c];
    }
    return r;
}

void
fcRowsAvx2(const float* x, const float* w, const float* b, float* y,
           int64_t lo, int64_t hi, int64_t n, int64_t k, FcAct act)
{
    const int64_t kv = k & ~int64_t{7};
    for (int64_t i = lo; i < hi; ++i) {
        const float* xrow = x + i * k;
        float* yrow = y + i * n;
        int64_t j = 0;
        // 4 output columns share each x load; every column keeps its
        // own single accumulator so its value is bit-identical to a
        // standalone dotBiasAvx2 call (the GRU/FusedFC contract).
        for (; j + 4 <= n; j += 4) {
            const float* w0 = w + j * k;
            const float* w1 = w0 + k;
            const float* w2 = w1 + k;
            const float* w3 = w2 + k;
            __m256 a0 = _mm256_setzero_ps();
            __m256 a1 = _mm256_setzero_ps();
            __m256 a2 = _mm256_setzero_ps();
            __m256 a3 = _mm256_setzero_ps();
            for (int64_t c = 0; c < kv; c += 8) {
                const __m256 xv = _mm256_loadu_ps(xrow + c);
                a0 = _mm256_fmadd_ps(xv, _mm256_loadu_ps(w0 + c), a0);
                a1 = _mm256_fmadd_ps(xv, _mm256_loadu_ps(w1 + c), a1);
                a2 = _mm256_fmadd_ps(xv, _mm256_loadu_ps(w2 + c), a2);
                a3 = _mm256_fmadd_ps(xv, _mm256_loadu_ps(w3 + c), a3);
            }
            float r0 = b[j];
            float r1 = b[j + 1];
            float r2 = b[j + 2];
            float r3 = b[j + 3];
            if (kv > 0) {
                r0 += hsum8(a0);
                r1 += hsum8(a1);
                r2 += hsum8(a2);
                r3 += hsum8(a3);
            }
            for (int64_t c = kv; c < k; ++c) {
                const float xc = xrow[c];
                r0 += xc * w0[c];
                r1 += xc * w1[c];
                r2 += xc * w2[c];
                r3 += xc * w3[c];
            }
            yrow[j] = applyFcAct(act, r0);
            yrow[j + 1] = applyFcAct(act, r1);
            yrow[j + 2] = applyFcAct(act, r2);
            yrow[j + 3] = applyFcAct(act, r3);
        }
        for (; j < n; ++j) {
            yrow[j] =
                applyFcAct(act, dotBiasAvx2(b[j], xrow, w + j * k, k));
        }
    }
}

void
batchMatMulRowsAvx2(const float* a, const float* b, float* c, int64_t lo,
                    int64_t hi, int64_t m, int64_t k, int64_t n)
{
    const int64_t nv = n & ~int64_t{7};
    for (int64_t r = lo; r < hi; ++r) {
        const int64_t bb = r / m;
        const int64_t i = r % m;
        const float* arow = a + (bb * m + i) * k;
        const float* bbase = b + bb * k * n;
        float* crow = c + (bb * m + i) * n;
        // Lane j accumulates arow[q] * b[q][j] in ascending q with
        // mul-then-add — the scalar sequence per output element.
        for (int64_t j = 0; j < nv; j += 8) {
            __m256 acc = _mm256_setzero_ps();
            const float* bcol = bbase + j;
            for (int64_t q = 0; q < k; ++q) {
                acc = _mm256_add_ps(
                    acc, _mm256_mul_ps(_mm256_set1_ps(arow[q]),
                                       _mm256_loadu_ps(bcol + q * n)));
            }
            _mm256_storeu_ps(crow + j, acc);
        }
        for (int64_t j = nv; j < n; ++j) {
            float acc = 0.0f;
            for (int64_t q = 0; q < k; ++q) {
                acc += arow[q] * bbase[q * n + j];
            }
            crow[j] = acc;
        }
    }
}

void
rowAddAvx2(float* yrow, const float* src, int64_t dim)
{
    const int64_t dv = dim & ~int64_t{7};
    for (int64_t d = 0; d < dv; d += 8) {
        _mm256_storeu_ps(yrow + d,
                         _mm256_add_ps(_mm256_loadu_ps(yrow + d),
                                       _mm256_loadu_ps(src + d)));
    }
    for (int64_t d = dv; d < dim; ++d) {
        yrow[d] += src[d];
    }
}

void
rowAddScaledAvx2(float* yrow, const float* src, float scale, int64_t dim)
{
    // Deliberately mul-then-add (not FMA): the scalar tier rounds the
    // product before the add, and SLWS is contractually bit-identical
    // across tiers.
    const __m256 sv = _mm256_set1_ps(scale);
    const int64_t dv = dim & ~int64_t{7};
    for (int64_t d = 0; d < dv; d += 8) {
        _mm256_storeu_ps(
            yrow + d,
            _mm256_add_ps(_mm256_loadu_ps(yrow + d),
                          _mm256_mul_ps(sv, _mm256_loadu_ps(src + d))));
    }
    for (int64_t d = dv; d < dim; ++d) {
        yrow[d] += scale * src[d];
    }
}

void
rowScaleAvx2(float* yrow, float scale, int64_t dim)
{
    const __m256 sv = _mm256_set1_ps(scale);
    const int64_t dv = dim & ~int64_t{7};
    for (int64_t d = 0; d < dv; d += 8) {
        _mm256_storeu_ps(yrow + d,
                         _mm256_mul_ps(_mm256_loadu_ps(yrow + d), sv));
    }
    for (int64_t d = dv; d < dim; ++d) {
        yrow[d] *= scale;
    }
}

void
rowCopyAvx2(float* dst, const float* src, int64_t dim)
{
    const int64_t dv = dim & ~int64_t{7};
    for (int64_t d = 0; d < dv; d += 8) {
        _mm256_storeu_ps(dst + d, _mm256_loadu_ps(src + d));
    }
    for (int64_t d = dv; d < dim; ++d) {
        dst[d] = src[d];
    }
}

}  // namespace detail
}  // namespace kern
}  // namespace recstack

#else  // !RECSTACK_HAVE_AVX2_BUILD || !x86

namespace recstack {
namespace kern {
namespace detail {

float
dotBiasAvx2(float bias, const float* x, const float* w, int64_t k)
{
    return dotBiasScalar(bias, x, w, k);
}

void
fcRowsAvx2(const float* x, const float* w, const float* b, float* y,
           int64_t lo, int64_t hi, int64_t n, int64_t k, FcAct act)
{
    fcRowsScalar(x, w, b, y, lo, hi, n, k, act);
}

void
batchMatMulRowsAvx2(const float* a, const float* b, float* c, int64_t lo,
                    int64_t hi, int64_t m, int64_t k, int64_t n)
{
    batchMatMulRowsScalar(a, b, c, lo, hi, m, k, n);
}

void
rowAddAvx2(float* yrow, const float* src, int64_t dim)
{
    rowAddScalar(yrow, src, dim);
}

void
rowAddScaledAvx2(float* yrow, const float* src, float scale, int64_t dim)
{
    rowAddScaledScalar(yrow, src, scale, dim);
}

void
rowScaleAvx2(float* yrow, float scale, int64_t dim)
{
    rowScaleScalar(yrow, scale, dim);
}

void
rowCopyAvx2(float* dst, const float* src, int64_t dim)
{
    rowCopyScalar(dst, src, dim);
}

}  // namespace detail
}  // namespace kern
}  // namespace recstack

#endif  // RECSTACK_HAVE_AVX2_BUILD
