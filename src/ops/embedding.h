#ifndef RECSTACK_OPS_EMBEDDING_H_
#define RECSTACK_OPS_EMBEDDING_H_

/**
 * @file
 * Embedding-table operators.
 *
 * SparseLengthsSum is Caffe2's fused lookup+pool operator and the
 * dominant operator of the embedding-heavy models (RM1, RM2) in the
 * paper. Gather and ReduceSum are the TensorFlow-granularity
 * equivalents (ResourceGather + Sum) used by the framework adapter
 * for the Fig. 7 comparison.
 */

#include "ops/operator.h"

namespace recstack {

/**
 * SparseLengthsSum.
 *
 * Inputs:  data [R, D] float, indices [L] int64, lengths [B] int32
 *          with sum(lengths) == L.
 * Outputs: out [B, D] where out[b] = sum of data rows selected by the
 *          b-th segment of indices.
 *
 * @param zipf_exponent access skew the index stream is drawn with;
 *        forwarded to the memory stream so the cache model sees the
 *        same locality the numeric indices have.
 */
class SparseLengthsSumOp : public Operator
{
  public:
    SparseLengthsSumOp(std::string name, std::string data,
                       std::string indices, std::string lengths,
                       std::string out, double zipf_exponent = 0.0);

    void inferShapes(Workspace& ws) override;
    void run(Workspace& ws) override;
    KernelProfile profile(const Workspace& ws) const override;

  private:
    double zipfExponent_;
};

/**
 * Gather: out[i] = data[indices[i]] (TF ResourceGather granularity).
 *
 * Inputs:  data [R, D] float, indices [L] int64
 * Outputs: out [L, D]
 */
class GatherOp : public Operator
{
  public:
    GatherOp(std::string name, std::string data, std::string indices,
             std::string out, double zipf_exponent = 0.0);

    void inferShapes(Workspace& ws) override;
    void run(Workspace& ws) override;
    KernelProfile profile(const Workspace& ws) const override;

  private:
    double zipfExponent_;
};

/**
 * ReduceSum over axis 1 of a 3-D tensor: [B, P, D] -> [B, D].
 * The TF-granularity pooling half of SparseLengthsSum.
 */
class ReduceSumOp : public Operator
{
  public:
    ReduceSumOp(std::string name, std::string x, std::string y);

    void inferShapes(Workspace& ws) override;
    void run(Workspace& ws) override;
    KernelProfile profile(const Workspace& ws) const override;
};

/**
 * SparseLengthsWeightedSum: per-lookup scalar weights applied before
 * pooling (Caffe2's weighted embedding bag, used by position-weighted
 * production models).
 *
 * Inputs:  data [R, D], weights [L] float, indices [L] int64,
 *          lengths [B] int32
 * Outputs: out [B, D]
 */
class SparseLengthsWeightedSumOp : public Operator
{
  public:
    SparseLengthsWeightedSumOp(std::string name, std::string data,
                               std::string weights, std::string indices,
                               std::string lengths, std::string out,
                               double zipf_exponent = 0.0);

    void inferShapes(Workspace& ws) override;
    void run(Workspace& ws) override;
    KernelProfile profile(const Workspace& ws) const override;

  private:
    double zipfExponent_;
};

/**
 * SparseLengthsMean: average pooling instead of sum (identical access
 * behaviour; divides by the segment length).
 */
class SparseLengthsMeanOp : public Operator
{
  public:
    SparseLengthsMeanOp(std::string name, std::string data,
                        std::string indices, std::string lengths,
                        std::string out, double zipf_exponent = 0.0);

    void inferShapes(Workspace& ws) override;
    void run(Workspace& ws) override;
    KernelProfile profile(const Workspace& ws) const override;

  private:
    double zipfExponent_;
};

OperatorPtr makeSparseLengthsSum(std::string name, std::string data,
                                 std::string indices, std::string lengths,
                                 std::string out,
                                 double zipf_exponent = 0.0);
OperatorPtr makeSparseLengthsWeightedSum(std::string name,
                                         std::string data,
                                         std::string weights,
                                         std::string indices,
                                         std::string lengths,
                                         std::string out,
                                         double zipf_exponent = 0.0);
OperatorPtr makeSparseLengthsMean(std::string name, std::string data,
                                  std::string indices,
                                  std::string lengths, std::string out,
                                  double zipf_exponent = 0.0);
OperatorPtr makeGather(std::string name, std::string data,
                       std::string indices, std::string out,
                       double zipf_exponent = 0.0);
OperatorPtr makeReduceSum(std::string name, std::string x, std::string y);

}  // namespace recstack

#endif  // RECSTACK_OPS_EMBEDDING_H_
