#include "ops/concat.h"

#include "ops/op_costs.h"

namespace recstack {

ConcatOp::ConcatOp(std::string name, std::vector<std::string> xs,
                   std::string y)
    : Operator("Concat", std::move(name), std::move(xs), {std::move(y)})
{
    RECSTACK_CHECK(!inputs().empty(), "Concat needs at least one input");
}

void
ConcatOp::inferShapes(Workspace& ws)
{
    const Tensor& first = in(ws, 0);
    RECSTACK_CHECK(first.rank() == 2,
                   "Concat '" << name() << "': inputs must be 2-D");
    const int64_t batch = first.dim(0);
    int64_t width = 0;
    for (size_t i = 0; i < inputs().size(); ++i) {
        const Tensor& x = in(ws, i);
        RECSTACK_CHECK(x.rank() == 2 && x.dim(0) == batch,
                       "Concat '" << name() << "': input " << i
                                  << " batch mismatch");
        width += x.dim(1);
    }
    ws.ensure(outputs()[0], {batch, width});
}

void
ConcatOp::run(Workspace& ws)
{
    Tensor& yt = out(ws, 0);
    float* y = yt.data<float>();
    const int64_t batch = yt.dim(0);
    const int64_t width = yt.dim(1);
    int64_t col = 0;
    for (size_t s = 0; s < inputs().size(); ++s) {
        const Tensor& xt = in(ws, s);
        const float* x = xt.data<float>();
        const int64_t k = xt.dim(1);
        for (int64_t b = 0; b < batch; ++b) {
            for (int64_t j = 0; j < k; ++j) {
                y[b * width + col + j] = x[b * k + j];
            }
        }
        col += k;
    }
}

KernelProfile
ConcatOp::profile(const Workspace& ws) const
{
    KernelProfile kp = baseProfile();
    const Tensor& y = outConst(ws, 0);
    const uint64_t n = static_cast<uint64_t>(y.numel());
    kp.vecElemOps = n;  // pure copy
    // Per-input row bookkeeping: offset math per (input, row).
    kp.scalarOps = inputs().size() *
                   static_cast<uint64_t>(y.dim(0)) * 6;
    for (size_t i = 0; i < inputs().size(); ++i) {
        addSeqStream(kp, inputs()[i], in(ws, i), false);
    }
    // Output writes are strided per input (row-interleaved).
    MemStream w;
    w.region = outputs()[0];
    w.pattern = AccessPattern::kStrided;
    w.chunkBytes = 64;
    w.accesses = (y.byteSize() + 63) / 64;
    w.footprintBytes = y.byteSize();
    w.strideBytes = static_cast<uint64_t>(y.dim(1)) * 4;
    w.isWrite = true;
    w.mlp = opcost::kMlpSequential;
    kp.streams.push_back(w);

    BranchStream loops;
    loops.count = std::max<uint64_t>(
        1, inputs().size() * static_cast<uint64_t>(y.dim(0)));
    loops.takenProbability = 0.9;
    loops.randomness = 0.1;
    kp.branches.push_back(loops);

    kp.codeFootprintBytes = opcost::kConcatCodeBytes;
    kp.codeRegion = "kernel:Concat";
    kp.codeIterations = std::max<uint64_t>(1, n / 16);
    return kp;
}

OperatorPtr
makeConcat(std::string name, std::vector<std::string> xs, std::string y)
{
    return std::make_unique<ConcatOp>(std::move(name), std::move(xs),
                                      std::move(y));
}

}  // namespace recstack
