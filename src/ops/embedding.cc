#include "ops/embedding.h"

#include <cmath>
#include <vector>

#include "common/thread_pool.h"
#include "ops/kernels.h"
#include "ops/op_costs.h"
#include "store/embedding_store.h"

namespace recstack {
namespace {

/**
 * Serial prevalidation of a lengths-segmented index stream: checks
 * that lengths exactly cover the indices and every index is in
 * range, and returns per-output-row starting offsets so the pooling
 * loop can be partitioned per output row. Running the checks before
 * any parallel region keeps panics on the calling thread (death
 * tests and fork children never touch the pool).
 */
std::vector<int64_t>
segmentOffsets(const char* op, const std::string& name,
               const int32_t* lengths, int64_t batch,
               const int64_t* indices, int64_t num_indices, int64_t rows)
{
    std::vector<int64_t> offsets(static_cast<size_t>(batch) + 1, 0);
    for (int64_t b = 0; b < batch; ++b) {
        offsets[static_cast<size_t>(b) + 1] =
            offsets[static_cast<size_t>(b)] + lengths[b];
    }
    RECSTACK_CHECK(offsets[static_cast<size_t>(batch)] == num_indices,
                   op << " '" << name << "': lengths do not cover indices");
    for (int64_t i = 0; i < num_indices; ++i) {
        RECSTACK_CHECK(indices[i] >= 0 && indices[i] < rows,
                       op << " '" << name << "': index " << indices[i]
                          << " out of range");
    }
    return offsets;
}

/** Pooling grain: rows per chunk given dim and mean pooling factor. */
int64_t
poolingGrain(int64_t dim, int64_t num_indices, int64_t batch)
{
    const int64_t mean_pool =
        batch > 0 ? std::max<int64_t>(1, num_indices / batch) : 1;
    return grainForCost(static_cast<uint64_t>(dim * (mean_pool + 1)));
}

/** Random-gather stream over an embedding table. */
MemStream
tableStream(const std::string& region, uint64_t accesses,
            uint64_t row_bytes, uint64_t table_bytes, double zipf)
{
    MemStream s;
    s.region = region;
    s.pattern = AccessPattern::kRandom;
    s.accesses = accesses;
    s.chunkBytes = row_bytes;
    s.footprintBytes = table_bytes;
    s.zipfExponent = zipf;
    s.mlp = opcost::kMlpGather;
    return s;
}

/**
 * Resolution of a table blob against the workspace's attached
 * embedding store: the store serves the reads iff it owns a table of
 * that name AND the workspace blob is a shape-only stand-in. A
 * materialized local blob always wins, keeping dense workspaces
 * (and the differential tests' reference path) untouched.
 */
struct StoreRef {
    EmbeddingStore* store = nullptr;
    int table = -1;
};

StoreRef
storeRef(const Workspace& ws, const std::string& blob,
         const Tensor& data)
{
    StoreRef ref;
    if (data.materialized()) {
        return ref;
    }
    EmbeddingStore* store = ws.store();
    if (store == nullptr) {
        return ref;
    }
    const int table = store->tableId(blob);
    if (table < 0) {
        return ref;
    }
    ref.store = store;
    ref.table = table;
    return ref;
}

/**
 * Emit the table-side memory streams of a lookup kernel. Dense blob:
 * the single skewed random stream over the whole table. Store-backed
 * blob: the stream the memory hierarchy actually sees after the
 * store's hot-row cache filtered it — an expected-hit share over the
 * cache footprint plus the miss remainder split between the near
 * tier and a serialized far-tier stream. This is how Fig. 12/14-style
 * DRAM-bandwidth analyses observe cache-filtered table traffic.
 */
void
addTableStreams(KernelProfile& kp, const Workspace& ws,
                const std::string& blob, const Tensor& data,
                uint64_t lookups, double zipf)
{
    const uint64_t row_bytes =
        static_cast<uint64_t>(data.dim(1)) * 4;
    const StoreRef ref = storeRef(ws, blob, data);
    if (ref.store == nullptr) {
        kp.streams.push_back(tableStream(blob, lookups, row_bytes,
                                         data.byteSize(), zipf));
        return;
    }
    const EmbeddingStore& store = *ref.store;
    const EmbeddingStore::TableInfo& info = store.tableInfo(ref.table);
    const double hit_rate = store.expectedHitRate(ref.table, zipf);
    const double far_frac = store.farTierFraction(ref.table, zipf);
    uint64_t hits = std::min<uint64_t>(
        lookups,
        static_cast<uint64_t>(std::llround(
            hit_rate * static_cast<double>(lookups))));
    const uint64_t misses = lookups - hits;
    const uint64_t far = std::min<uint64_t>(
        misses, static_cast<uint64_t>(std::llround(
                    far_frac * static_cast<double>(lookups))));
    const uint64_t near = misses - far;
    if (hits > 0) {
        MemStream s = tableStream(
            "store:cache:" + blob, hits, row_bytes,
            std::min<uint64_t>(store.cacheCapacityBytes(),
                               data.byteSize()),
            zipf);
        kp.streams.push_back(s);
    }
    if (near > 0) {
        // The cache absorbed the Zipf head; residual misses spread
        // near-uniformly over the cold near-tier rows.
        MemStream s = tableStream(
            "store:near:" + blob, near, row_bytes,
            static_cast<uint64_t>(info.nearRows) * row_bytes, 0.0);
        kp.streams.push_back(s);
    }
    if (far > 0) {
        MemStream s = tableStream(
            "store:far:" + blob, far, row_bytes,
            static_cast<uint64_t>(info.rows - info.nearRows) *
                row_bytes,
            0.0);
        s.mlp = 1.0;  // long-latency far fetches barely overlap
        kp.streams.push_back(s);
    }
}

}  // namespace

SparseLengthsSumOp::SparseLengthsSumOp(std::string name, std::string data,
                                       std::string indices,
                                       std::string lengths, std::string out,
                                       double zipf_exponent)
    : Operator("SparseLengthsSum", std::move(name),
               {std::move(data), std::move(indices), std::move(lengths)},
               {std::move(out)}),
      zipfExponent_(zipf_exponent)
{
}

void
SparseLengthsSumOp::inferShapes(Workspace& ws)
{
    const Tensor& data = in(ws, 0);
    const Tensor& indices = in(ws, 1);
    const Tensor& lengths = in(ws, 2);
    RECSTACK_CHECK(data.rank() == 2, "SLS '" << name()
                   << "': data must be 2-D");
    RECSTACK_CHECK(indices.dtype() == DType::kInt64,
                   "SLS '" << name() << "': indices must be int64");
    RECSTACK_CHECK(lengths.dtype() == DType::kInt32,
                   "SLS '" << name() << "': lengths must be int32");
    ws.ensure(outputs()[0], {lengths.numel(), data.dim(1)});
}

void
SparseLengthsSumOp::run(Workspace& ws)
{
    const Tensor& data_t = in(ws, 0);
    const Tensor& idx_t = in(ws, 1);
    const Tensor& len_t = in(ws, 2);
    Tensor& out_t = out(ws, 0);

    const StoreRef sref = storeRef(ws, inputs()[0], data_t);
    const float* data =
        sref.store != nullptr ? nullptr : data_t.data<float>();
    const int64_t* indices = idx_t.data<int64_t>();
    const int32_t* lengths = len_t.data<int32_t>();
    float* y = out_t.data<float>();

    const int64_t rows = data_t.dim(0);
    const int64_t dim = data_t.dim(1);
    const int64_t batch = len_t.numel();

    const std::vector<int64_t> offsets = segmentOffsets(
        "SLS", name(), lengths, batch, indices, idx_t.numel(), rows);
    // Each chunk owns a disjoint band of output rows and pools its
    // lookups in the same ascending order as the serial cursor; the
    // store path preserves that order exactly, and rowAdd keeps the
    // per-element order on every ISA tier (bit-identical pooling).
    const KernelIsa isa = activeKernelIsa();
    parallelFor(0, batch, poolingGrain(dim, idx_t.numel(), batch),
                [&](int64_t lo, int64_t hi) {
        if (sref.store != nullptr) {
            sref.store->lookupSum(sref.table, indices, offsets.data(),
                                  lo, hi, y);
            return;
        }
        for (int64_t b = lo; b < hi; ++b) {
            float* yrow = y + b * dim;
            for (int64_t d = 0; d < dim; ++d) {
                yrow[d] = 0.0f;
            }
            for (int64_t p = offsets[static_cast<size_t>(b)];
                 p < offsets[static_cast<size_t>(b) + 1]; ++p) {
                kern::rowAdd(isa, yrow, data + indices[p] * dim, dim);
            }
        }
    });
}

KernelProfile
SparseLengthsSumOp::profile(const Workspace& ws) const
{
    const Tensor& data = in(ws, 0);
    const Tensor& indices = in(ws, 1);
    const Tensor& out_t = outConst(ws, 0);

    const uint64_t lookups = static_cast<uint64_t>(indices.numel());
    const uint64_t dim = static_cast<uint64_t>(data.dim(1));

    KernelProfile kp = baseProfile();
    kp.vecElemOps = lookups * dim;  // the pooling adds
    // Index decode, bounds checks and address generation per lookup.
    kp.scalarOps = lookups * 8;

    addSeqStream(kp, inputs()[1], indices, false);
    addSeqStream(kp, inputs()[2], in(ws, 2), false);
    addTableStreams(kp, ws, inputs()[0], data, lookups, zipfExponent_);
    addSeqStream(kp, outputs()[0], out_t, true);

    // Per-lookup segment/bounds branches: trip counts and row targets
    // are data dependent, which is the bad-speculation source the
    // paper attributes to RM1/RM2.
    BranchStream seg;
    seg.count = 3 * lookups + static_cast<uint64_t>(out_t.dim(0));
    seg.takenProbability = 0.85;
    seg.randomness = 0.75;
    kp.branches.push_back(seg);

    kp.codeFootprintBytes = opcost::kSlsCodeBytes;
    kp.codeRegion = "kernel:SparseLengthsSum";
    kp.codeIterations = std::max<uint64_t>(1, lookups);
    return kp;
}

SparseLengthsWeightedSumOp::SparseLengthsWeightedSumOp(
    std::string name, std::string data, std::string weights,
    std::string indices, std::string lengths, std::string out,
    double zipf_exponent)
    : Operator("SparseLengthsWeightedSum", std::move(name),
               {std::move(data), std::move(weights), std::move(indices),
                std::move(lengths)},
               {std::move(out)}),
      zipfExponent_(zipf_exponent)
{
}

void
SparseLengthsWeightedSumOp::inferShapes(Workspace& ws)
{
    const Tensor& data = in(ws, 0);
    const Tensor& weights = in(ws, 1);
    const Tensor& indices = in(ws, 2);
    const Tensor& lengths = in(ws, 3);
    RECSTACK_CHECK(data.rank() == 2, "SLWS '" << name()
                   << "': data must be 2-D");
    RECSTACK_CHECK(weights.numel() == indices.numel(),
                   "SLWS '" << name()
                            << "': one weight per lookup required");
    RECSTACK_CHECK(indices.dtype() == DType::kInt64 &&
                   lengths.dtype() == DType::kInt32,
                   "SLWS '" << name() << "': index dtype mismatch");
    ws.ensure(outputs()[0], {lengths.numel(), data.dim(1)});
}

void
SparseLengthsWeightedSumOp::run(Workspace& ws)
{
    const Tensor& data_t = in(ws, 0);
    const Tensor& w_t = in(ws, 1);
    const Tensor& idx_t = in(ws, 2);
    const Tensor& len_t = in(ws, 3);
    Tensor& out_t = out(ws, 0);

    const StoreRef sref = storeRef(ws, inputs()[0], data_t);
    const float* data =
        sref.store != nullptr ? nullptr : data_t.data<float>();
    const float* w = w_t.data<float>();
    const int64_t* indices = idx_t.data<int64_t>();
    const int32_t* lengths = len_t.data<int32_t>();
    float* y = out_t.data<float>();
    const int64_t rows = data_t.dim(0);
    const int64_t dim = data_t.dim(1);
    const int64_t batch = len_t.numel();

    const std::vector<int64_t> offsets = segmentOffsets(
        "SLWS", name(), lengths, batch, indices, idx_t.numel(), rows);
    const KernelIsa isa = activeKernelIsa();
    parallelFor(0, batch, poolingGrain(dim, idx_t.numel(), batch),
                [&](int64_t lo, int64_t hi) {
        if (sref.store != nullptr) {
            sref.store->lookupSum(sref.table, indices, offsets.data(),
                                  lo, hi, y, w);
            return;
        }
        for (int64_t b = lo; b < hi; ++b) {
            float* yrow = y + b * dim;
            for (int64_t d = 0; d < dim; ++d) {
                yrow[d] = 0.0f;
            }
            for (int64_t p = offsets[static_cast<size_t>(b)];
                 p < offsets[static_cast<size_t>(b) + 1]; ++p) {
                kern::rowAddScaled(isa, yrow, data + indices[p] * dim,
                                   w[p], dim);
            }
        }
    });
}

KernelProfile
SparseLengthsWeightedSumOp::profile(const Workspace& ws) const
{
    const Tensor& data = in(ws, 0);
    const Tensor& indices = in(ws, 2);
    const Tensor& out_t = outConst(ws, 0);
    const uint64_t lookups = static_cast<uint64_t>(indices.numel());
    const uint64_t dim = static_cast<uint64_t>(data.dim(1));

    KernelProfile kp = baseProfile();
    // Multiply-accumulate instead of plain add.
    kp.fmaFlops = 2 * lookups * dim;
    kp.scalarOps = lookups * 9;
    addSeqStream(kp, inputs()[1], in(ws, 1), false);
    addSeqStream(kp, inputs()[2], indices, false);
    addSeqStream(kp, inputs()[3], in(ws, 3), false);
    addTableStreams(kp, ws, inputs()[0], data, lookups, zipfExponent_);
    addSeqStream(kp, outputs()[0], out_t, true);

    BranchStream seg;
    seg.count = 3 * lookups + static_cast<uint64_t>(out_t.dim(0));
    seg.takenProbability = 0.85;
    seg.randomness = 0.75;
    kp.branches.push_back(seg);

    kp.codeFootprintBytes = opcost::kSlsCodeBytes;
    kp.codeRegion = "kernel:SparseLengthsWeightedSum";
    kp.codeIterations = std::max<uint64_t>(1, lookups);
    return kp;
}

SparseLengthsMeanOp::SparseLengthsMeanOp(std::string name,
                                         std::string data,
                                         std::string indices,
                                         std::string lengths,
                                         std::string out,
                                         double zipf_exponent)
    : Operator("SparseLengthsMean", std::move(name),
               {std::move(data), std::move(indices), std::move(lengths)},
               {std::move(out)}),
      zipfExponent_(zipf_exponent)
{
}

void
SparseLengthsMeanOp::inferShapes(Workspace& ws)
{
    const Tensor& data = in(ws, 0);
    const Tensor& lengths = in(ws, 2);
    RECSTACK_CHECK(data.rank() == 2, "SLMean '" << name()
                   << "': data must be 2-D");
    RECSTACK_CHECK(in(ws, 1).dtype() == DType::kInt64 &&
                   lengths.dtype() == DType::kInt32,
                   "SLMean '" << name() << "': index dtype mismatch");
    ws.ensure(outputs()[0], {lengths.numel(), data.dim(1)});
}

void
SparseLengthsMeanOp::run(Workspace& ws)
{
    const Tensor& data_t = in(ws, 0);
    const Tensor& idx_t = in(ws, 1);
    const Tensor& len_t = in(ws, 2);
    Tensor& out_t = out(ws, 0);

    const StoreRef sref = storeRef(ws, inputs()[0], data_t);
    const float* data =
        sref.store != nullptr ? nullptr : data_t.data<float>();
    const int64_t* indices = idx_t.data<int64_t>();
    const int32_t* lengths = len_t.data<int32_t>();
    float* y = out_t.data<float>();
    const int64_t rows = data_t.dim(0);
    const int64_t dim = data_t.dim(1);
    const int64_t batch = len_t.numel();

    const std::vector<int64_t> offsets = segmentOffsets(
        "SLMean", name(), lengths, batch, indices, idx_t.numel(), rows);
    const KernelIsa isa = activeKernelIsa();
    parallelFor(0, batch, poolingGrain(dim, idx_t.numel(), batch),
                [&](int64_t lo, int64_t hi) {
        if (sref.store != nullptr) {
            // Store pools the sums; the mean scaling below is the
            // same per-row fp32 multiply the dense loop applies.
            sref.store->lookupSum(sref.table, indices, offsets.data(),
                                  lo, hi, y);
            for (int64_t b = lo; b < hi; ++b) {
                if (lengths[b] > 0) {
                    kern::rowScale(
                        isa, y + b * dim,
                        1.0f / static_cast<float>(lengths[b]), dim);
                }
            }
            return;
        }
        for (int64_t b = lo; b < hi; ++b) {
            float* yrow = y + b * dim;
            for (int64_t d = 0; d < dim; ++d) {
                yrow[d] = 0.0f;
            }
            for (int64_t p = offsets[static_cast<size_t>(b)];
                 p < offsets[static_cast<size_t>(b) + 1]; ++p) {
                kern::rowAdd(isa, yrow, data + indices[p] * dim, dim);
            }
            if (lengths[b] > 0) {
                kern::rowScale(isa, yrow,
                               1.0f / static_cast<float>(lengths[b]),
                               dim);
            }
        }
    });
}

KernelProfile
SparseLengthsMeanOp::profile(const Workspace& ws) const
{
    const Tensor& data = in(ws, 0);
    const Tensor& indices = in(ws, 1);
    const Tensor& out_t = outConst(ws, 0);
    const uint64_t lookups = static_cast<uint64_t>(indices.numel());
    const uint64_t dim = static_cast<uint64_t>(data.dim(1));

    KernelProfile kp = baseProfile();
    kp.vecElemOps = lookups * dim +
                    static_cast<uint64_t>(out_t.numel());  // + divide
    kp.scalarOps = lookups * 8;
    addSeqStream(kp, inputs()[1], indices, false);
    addSeqStream(kp, inputs()[2], in(ws, 2), false);
    addTableStreams(kp, ws, inputs()[0], data, lookups, zipfExponent_);
    addSeqStream(kp, outputs()[0], out_t, true);

    BranchStream seg;
    seg.count = 3 * lookups + static_cast<uint64_t>(out_t.dim(0));
    seg.takenProbability = 0.85;
    seg.randomness = 0.75;
    kp.branches.push_back(seg);

    kp.codeFootprintBytes = opcost::kSlsCodeBytes;
    kp.codeRegion = "kernel:SparseLengthsMean";
    kp.codeIterations = std::max<uint64_t>(1, lookups);
    return kp;
}

GatherOp::GatherOp(std::string name, std::string data, std::string indices,
                   std::string out, double zipf_exponent)
    : Operator("Gather", std::move(name),
               {std::move(data), std::move(indices)}, {std::move(out)}),
      zipfExponent_(zipf_exponent)
{
}

void
GatherOp::inferShapes(Workspace& ws)
{
    const Tensor& data = in(ws, 0);
    const Tensor& indices = in(ws, 1);
    RECSTACK_CHECK(data.rank() == 2, "Gather '" << name()
                   << "': data must be 2-D");
    RECSTACK_CHECK(indices.dtype() == DType::kInt64,
                   "Gather '" << name() << "': indices must be int64");
    ws.ensure(outputs()[0], {indices.numel(), data.dim(1)});
}

void
GatherOp::run(Workspace& ws)
{
    const Tensor& data_t = in(ws, 0);
    const Tensor& idx_t = in(ws, 1);
    Tensor& out_t = out(ws, 0);

    const StoreRef sref = storeRef(ws, inputs()[0], data_t);
    const float* data =
        sref.store != nullptr ? nullptr : data_t.data<float>();
    const int64_t* indices = idx_t.data<int64_t>();
    float* y = out_t.data<float>();
    const int64_t dim = data_t.dim(1);
    const int64_t rows = data_t.dim(0);
    const int64_t lookups = idx_t.numel();

    // Serial prevalidation (panics stay off the pool), then each
    // chunk copies a disjoint band of output rows.
    for (int64_t i = 0; i < lookups; ++i) {
        RECSTACK_CHECK(indices[i] >= 0 && indices[i] < rows,
                       "Gather '" << name() << "': index " << indices[i]
                                  << " out of range");
    }
    const KernelIsa isa = activeKernelIsa();
    parallelFor(0, lookups, grainForCost(static_cast<uint64_t>(dim)),
                [=](int64_t lo, int64_t hi) {
        if (sref.store != nullptr) {
            sref.store->lookupGather(sref.table, indices, lo, hi, y);
            return;
        }
        for (int64_t i = lo; i < hi; ++i) {
            kern::rowCopy(isa, y + i * dim, data + indices[i] * dim,
                          dim);
        }
    });
}

KernelProfile
GatherOp::profile(const Workspace& ws) const
{
    const Tensor& data = in(ws, 0);
    const Tensor& indices = in(ws, 1);
    const Tensor& out_t = outConst(ws, 0);
    const uint64_t lookups = static_cast<uint64_t>(indices.numel());
    const uint64_t dim = static_cast<uint64_t>(data.dim(1));

    KernelProfile kp = baseProfile();
    kp.vecElemOps = lookups * dim;  // copies
    kp.scalarOps = lookups * 6;
    addSeqStream(kp, inputs()[1], indices, false);
    addTableStreams(kp, ws, inputs()[0], data, lookups, zipfExponent_);
    addSeqStream(kp, outputs()[0], out_t, true);

    BranchStream seg;
    seg.count = lookups;
    seg.takenProbability = 0.9;
    seg.randomness = 0.4;
    kp.branches.push_back(seg);

    kp.codeFootprintBytes = opcost::kSlsCodeBytes;
    kp.codeRegion = "kernel:Gather";
    kp.codeIterations = std::max<uint64_t>(1, lookups);
    return kp;
}

ReduceSumOp::ReduceSumOp(std::string name, std::string x, std::string y)
    : Operator("ReduceSum", std::move(name), {std::move(x)},
               {std::move(y)})
{
}

void
ReduceSumOp::inferShapes(Workspace& ws)
{
    const Tensor& x = in(ws, 0);
    RECSTACK_CHECK(x.rank() == 3, "ReduceSum '" << name()
                   << "': input must be 3-D [B, P, D]");
    ws.ensure(outputs()[0], {x.dim(0), x.dim(2)});
}

void
ReduceSumOp::run(Workspace& ws)
{
    const Tensor& xt = in(ws, 0);
    Tensor& yt = out(ws, 0);
    const float* x = xt.data<float>();
    float* y = yt.data<float>();
    const int64_t batch = xt.dim(0);
    const int64_t pool = xt.dim(1);
    const int64_t dim = xt.dim(2);
    // Per-sample reductions are independent; chunks own disjoint
    // output rows and keep the serial p-ascending accumulation order
    // (rowAdd preserves it per element on every tier).
    const KernelIsa isa = activeKernelIsa();
    parallelFor(0, batch,
                grainForCost(static_cast<uint64_t>(pool * dim)),
                [=](int64_t lo, int64_t hi) {
        for (int64_t b = lo; b < hi; ++b) {
            float* yrow = y + b * dim;
            for (int64_t d = 0; d < dim; ++d) {
                yrow[d] = 0.0f;
            }
            for (int64_t p = 0; p < pool; ++p) {
                kern::rowAdd(isa, yrow, x + (b * pool + p) * dim, dim);
            }
        }
    });
}

KernelProfile
ReduceSumOp::profile(const Workspace& ws) const
{
    const Tensor& x = in(ws, 0);
    KernelProfile kp = baseProfile();
    const uint64_t n = static_cast<uint64_t>(x.numel());
    kp.vecElemOps = n;
    kp.scalarOps = static_cast<uint64_t>(x.dim(0)) * 4;
    addSeqStream(kp, inputs()[0], x, false);
    addSeqStream(kp, outputs()[0], outConst(ws, 0), true);
    BranchStream loops;
    loops.count = std::max<uint64_t>(
        1, static_cast<uint64_t>(x.dim(0) * x.dim(1)));
    loops.takenProbability = 0.95;
    loops.randomness = 0.05;
    loops.scalesWithSimd = true;
    kp.branches.push_back(loops);
    kp.codeFootprintBytes = opcost::kEltwiseCodeBytes;
    kp.codeRegion = "kernel:ReduceSum";
    kp.codeIterations = std::max<uint64_t>(1, n / 16);
    return kp;
}

OperatorPtr
makeSparseLengthsSum(std::string name, std::string data, std::string indices,
                     std::string lengths, std::string out,
                     double zipf_exponent)
{
    return std::make_unique<SparseLengthsSumOp>(
        std::move(name), std::move(data), std::move(indices),
        std::move(lengths), std::move(out), zipf_exponent);
}

OperatorPtr
makeSparseLengthsWeightedSum(std::string name, std::string data,
                             std::string weights, std::string indices,
                             std::string lengths, std::string out,
                             double zipf_exponent)
{
    return std::make_unique<SparseLengthsWeightedSumOp>(
        std::move(name), std::move(data), std::move(weights),
        std::move(indices), std::move(lengths), std::move(out),
        zipf_exponent);
}

OperatorPtr
makeSparseLengthsMean(std::string name, std::string data,
                      std::string indices, std::string lengths,
                      std::string out, double zipf_exponent)
{
    return std::make_unique<SparseLengthsMeanOp>(
        std::move(name), std::move(data), std::move(indices),
        std::move(lengths), std::move(out), zipf_exponent);
}

OperatorPtr
makeGather(std::string name, std::string data, std::string indices,
           std::string out, double zipf_exponent)
{
    return std::make_unique<GatherOp>(std::move(name), std::move(data),
                                      std::move(indices), std::move(out),
                                      zipf_exponent);
}

OperatorPtr
makeReduceSum(std::string name, std::string x, std::string y)
{
    return std::make_unique<ReduceSumOp>(std::move(name), std::move(x),
                                         std::move(y));
}

}  // namespace recstack
