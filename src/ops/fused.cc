#include "ops/fused.h"

#include <cmath>

#include "common/thread_pool.h"
#include "ops/kernels.h"
#include "ops/op_costs.h"

namespace recstack {
namespace {

kern::FcAct
toFcAct(FusedAct act)
{
    switch (act) {
      case FusedAct::kNone: return kern::FcAct::kNone;
      case FusedAct::kRelu: return kern::FcAct::kRelu;
      case FusedAct::kSigmoid: return kern::FcAct::kSigmoid;
      case FusedAct::kTanh: return kern::FcAct::kTanh;
    }
    return kern::FcAct::kNone;
}

std::vector<std::string>
fcInputs(std::vector<std::string> xs, std::string w, std::string b)
{
    xs.push_back(std::move(w));
    xs.push_back(std::move(b));
    return xs;
}

std::vector<std::string>
gruInputs(std::string seq, std::string h, std::string wx, std::string bx,
          std::string wh, std::string bh, std::string att)
{
    std::vector<std::string> ins = {std::move(seq), std::move(h),
                                    std::move(wx), std::move(bx),
                                    std::move(wh), std::move(bh)};
    if (!att.empty()) {
        ins.push_back(std::move(att));
    }
    return ins;
}

/// Same per-element cost the standalone activations charge.
uint64_t
actElemCost(FusedAct act)
{
    switch (act) {
      case FusedAct::kNone: return 0;
      case FusedAct::kRelu: return 1;
      case FusedAct::kSigmoid: return 8;
      case FusedAct::kTanh: return 8;
    }
    return 0;
}

}  // namespace

const char*
fusedActName(FusedAct act)
{
    switch (act) {
      case FusedAct::kNone: return "none";
      case FusedAct::kRelu: return "relu";
      case FusedAct::kSigmoid: return "sigmoid";
      case FusedAct::kTanh: return "tanh";
    }
    return "?";
}

FusedFCOp::FusedFCOp(std::string name, std::vector<std::string> xs,
                     std::string w, std::string b, std::string y,
                     FusedAct act)
    : Operator("FusedFC", std::move(name),
               fcInputs(std::move(xs), std::move(w), std::move(b)),
               {std::move(y)}),
      act_(act)
{
    RECSTACK_CHECK(numBlocks() >= 1, "FusedFC needs at least one X block");
}

void
FusedFCOp::inferShapes(Workspace& ws)
{
    const size_t nx = numBlocks();
    const Tensor& x0 = in(ws, 0);
    RECSTACK_CHECK(x0.rank() == 2, "FusedFC '" << name()
                   << "': X blocks must be 2-D, got " << x0.describe());
    const int64_t m = x0.dim(0);
    int64_t k = 0;
    for (size_t s = 0; s < nx; ++s) {
        const Tensor& x = in(ws, s);
        RECSTACK_CHECK(x.rank() == 2 && x.dim(0) == m,
                       "FusedFC '" << name() << "': block " << s
                                   << " batch mismatch");
        k += x.dim(1);
    }
    const Tensor& w = in(ws, nx);
    const Tensor& b = in(ws, nx + 1);
    RECSTACK_CHECK(w.rank() == 2 && w.dim(1) == k,
                   "FusedFC '" << name() << "': K mismatch, blocks sum "
                               << k << " vs W " << w.describe());
    RECSTACK_CHECK(b.numel() == w.dim(0),
                   "FusedFC '" << name() << "': bias length mismatch");
    ws.ensure(outputs()[0], {m, w.dim(0)});
}

void
FusedFCOp::run(Workspace& ws)
{
    const size_t nx = numBlocks();
    const Tensor& wt = in(ws, nx);
    const Tensor& bt = in(ws, nx + 1);
    Tensor& yt = out(ws, 0);

    const int64_t m = yt.dim(0);
    const int64_t n = wt.dim(0);
    const int64_t k = wt.dim(1);
    std::vector<const float*> xs(nx);
    std::vector<int64_t> ks(nx);
    for (size_t s = 0; s < nx; ++s) {
        const Tensor& x = in(ws, s);
        xs[s] = x.data<float>();
        ks[s] = x.dim(1);
    }
    const float* w = wt.data<float>();
    const float* b = bt.data<float>();
    float* y = yt.data<float>();
    const FusedAct act = act_;

    // Row-blocked exactly like FCOp, running the same fcRows kernel so
    // every output element matches FC over a materialized concat row
    // bit-for-bit on every ISA tier: with one X block the kernel reads
    // the block directly; with several, each chunk gathers the blocks
    // into a scratch concat row first (a pure copy — the multiply-add
    // sequence is untouched), then runs the identical kernel. The
    // fused activation maps the float accumulator exactly as the
    // standalone elementwise op would.
    const KernelIsa isa = activeKernelIsa();
    const kern::FcAct fc_act = toFcAct(act);
    parallelFor(0, m, grainForCost(static_cast<uint64_t>(n * k)),
                [&, fc_act](int64_t lo, int64_t hi) {
        if (nx == 1) {
            kern::fcRows(isa, xs[0], w, b, y, lo, hi, n, k, fc_act);
            return;
        }
        std::vector<float> xcat(static_cast<size_t>(k));
        for (int64_t i = lo; i < hi; ++i) {
            int64_t col = 0;
            for (size_t s = 0; s < nx; ++s) {
                kern::rowCopy(isa, xcat.data() + col,
                              xs[s] + i * ks[s], ks[s]);
                col += ks[s];
            }
            kern::fcRows(isa, xcat.data(), w, b, y + i * n, 0, 1, n, k,
                         fc_act);
        }
    });
}

KernelProfile
FusedFCOp::profile(const Workspace& ws) const
{
    const size_t nx = numBlocks();
    const Tensor& w = in(ws, nx);
    const Tensor& y = outConst(ws, 0);
    const uint64_t m = static_cast<uint64_t>(y.dim(0));
    const uint64_t n = static_cast<uint64_t>(w.dim(0));
    const uint64_t k = static_cast<uint64_t>(w.dim(1));

    // The GEMM core costs match FCOp::profile over the summed K; the
    // fusion saves the concat copy and the activation's extra pass
    // over memory, but still pays the activation math per element.
    KernelProfile kp = baseProfile();
    kp.fmaFlops = 2 * m * n * k;
    kp.gemmWidth = n;
    kp.reloadLoadElems = m * n * k / 2;
    kp.vecElemOps = m * n * k / 3 + m * n * actElemCost(act_);
    kp.simdScalableOps = m * n / 2;
    kp.scalarOps = m * 4 * nx;
    for (size_t s = 0; s < nx; ++s) {
        addSeqStream(kp, inputs()[s], in(ws, s), false);
    }
    {
        MemStream ws_stream;
        ws_stream.region = inputs()[nx];
        ws_stream.pattern = AccessPattern::kSequential;
        ws_stream.chunkBytes = 64;
        const uint64_t panel_reads = std::max<uint64_t>(1, (m + 63) / 64);
        ws_stream.footprintBytes = w.byteSize();
        ws_stream.accesses = panel_reads * ((w.byteSize() + 63) / 64);
        ws_stream.mlp = opcost::kMlpSequential;
        kp.streams.push_back(ws_stream);
    }
    addSeqStream(kp, outputs()[0], y, true);

    BranchStream loops;
    loops.count = std::max<uint64_t>(1, kp.fmaFlops /
                                     opcost::kFlopsPerGemmBranch);
    loops.takenProbability = 0.97;
    loops.randomness = 0.02;
    loops.scalesWithSimd = true;
    kp.branches.push_back(loops);

    kp.codeFootprintBytes = opcost::kGemmCodeBytes;
    kp.codeRegion = "kernel:FusedFC";
    kp.codeIterations = std::max<uint64_t>(1, m * n * k / 512);
    return kp;
}

GRUStepOp::GRUStepOp(std::string name, std::string seq, std::string h,
                     std::string wx, std::string bx, std::string wh,
                     std::string bh, std::string att, std::string h_new,
                     int64_t step)
    : Operator("FusedGRUStep", std::move(name),
               gruInputs(std::move(seq), std::move(h), std::move(wx),
                         std::move(bx), std::move(wh), std::move(bh),
                         std::move(att)),
               {std::move(h_new)}),
      step_(step)
{
    RECSTACK_CHECK(step_ >= 0, "GRUStep needs a non-negative step index");
}

void
GRUStepOp::inferShapes(Workspace& ws)
{
    const Tensor& seq = in(ws, 0);
    const Tensor& h = in(ws, 1);
    const Tensor& wx = in(ws, 2);
    const Tensor& bx = in(ws, 3);
    const Tensor& wh = in(ws, 4);
    const Tensor& bh = in(ws, 5);
    RECSTACK_CHECK(seq.rank() == 3, "GRUStep '" << name()
                   << "': sequence must be 3-D, got " << seq.describe());
    RECSTACK_CHECK(step_ < seq.dim(1),
                   "GRUStep '" << name() << "': step " << step_
                               << " out of range for " << seq.describe());
    const int64_t batch = seq.dim(0);
    const int64_t in_dim = seq.dim(2);
    RECSTACK_CHECK(h.rank() == 2 && h.dim(0) == batch,
                   "GRUStep '" << name() << "': hidden-state batch "
                               << "mismatch");
    const int64_t hidden = h.dim(1);
    RECSTACK_CHECK(wx.rank() == 2 && wx.dim(0) == 3 * hidden &&
                       wx.dim(1) == in_dim,
                   "GRUStep '" << name() << "': Wx shape mismatch");
    RECSTACK_CHECK(wh.rank() == 2 && wh.dim(0) == 3 * hidden &&
                       wh.dim(1) == hidden,
                   "GRUStep '" << name() << "': Wh shape mismatch");
    RECSTACK_CHECK(bx.numel() == 3 * hidden && bh.numel() == 3 * hidden,
                   "GRUStep '" << name() << "': bias length mismatch");
    if (attentional()) {
        const Tensor& att = in(ws, 6);
        RECSTACK_CHECK(att.rank() == 3 && att.dim(0) == batch &&
                           att.dim(2) == 1 && att.dim(1) == seq.dim(1),
                       "GRUStep '" << name() << "': attention shape "
                                   << "mismatch, got " << att.describe());
    }
    ws.ensure(outputs()[0], {batch, hidden});
}

void
GRUStepOp::run(Workspace& ws)
{
    const Tensor& seqt = in(ws, 0);
    const Tensor& ht = in(ws, 1);
    const Tensor& wxt = in(ws, 2);
    const Tensor& bxt = in(ws, 3);
    const Tensor& wht = in(ws, 4);
    const Tensor& bht = in(ws, 5);
    Tensor& yt = out(ws, 0);

    const int64_t batch = seqt.dim(0);
    const int64_t steps = seqt.dim(1);
    const int64_t in_dim = seqt.dim(2);
    const int64_t hidden = ht.dim(1);
    const int64_t t = step_;
    const float* seq = seqt.data<float>();
    const float* h = ht.data<float>();
    const float* wx = wxt.data<float>();
    const float* bx = bxt.data<float>();
    const float* wh = wht.data<float>();
    const float* bh = bht.data<float>();
    const float* att = attentional() ? in(ws, 6).data<float>() : nullptr;
    float* y = yt.data<float>();

    // Batch rows are independent; per-chunk gate scratch keeps the
    // accumulation order of the unfused FC ops: the gate matmuls call
    // the same canonical dotBias the interpreted window's FCOp runs,
    // so the result is bit-identical to the unfused chain on every
    // ISA tier. Every arithmetic step below mirrors one elementwise
    // op of the unrolled window, in the same order and in fp32.
    const KernelIsa isa = activeKernelIsa();
    const uint64_t row_cost =
        static_cast<uint64_t>(6 * hidden * (in_dim + hidden));
    parallelFor(0, batch, grainForCost(row_cost),
                [=](int64_t lo, int64_t hi) {
        std::vector<float> gx(static_cast<size_t>(3 * hidden));
        std::vector<float> gh(static_cast<size_t>(3 * hidden));
        for (int64_t b = lo; b < hi; ++b) {
            const float* xrow = seq + (b * steps + t) * in_dim;
            const float* hrow = h + b * hidden;
            for (int64_t g = 0; g < 3 * hidden; ++g) {
                gx[static_cast<size_t>(g)] = kern::dotBias(
                    isa, bx[g], xrow, wx + g * in_dim, in_dim);
            }
            for (int64_t g = 0; g < 3 * hidden; ++g) {
                gh[static_cast<size_t>(g)] = kern::dotBias(
                    isa, bh[g], hrow, wh + g * hidden, hidden);
            }
            const float a = att != nullptr ? att[b * steps + t] : 1.0f;
            float* yrow = y + b * hidden;
            for (int64_t j = 0; j < hidden; ++j) {
                const float r = 1.0f / (1.0f + std::exp(-(
                    gx[static_cast<size_t>(j)] +
                    gh[static_cast<size_t>(j)])));
                float z = 1.0f / (1.0f + std::exp(-(
                    gx[static_cast<size_t>(hidden + j)] +
                    gh[static_cast<size_t>(hidden + j)])));
                if (att != nullptr) {
                    z = z * a;
                }
                const float n = std::tanh(
                    gx[static_cast<size_t>(2 * hidden + j)] +
                    r * gh[static_cast<size_t>(2 * hidden + j)]);
                const float zn = z * n;
                const float zh = z * hrow[j];
                yrow[j] = (n - zn) + zh;
            }
        }
    });
}

KernelProfile
GRUStepOp::profile(const Workspace& ws) const
{
    const Tensor& seq = in(ws, 0);
    const Tensor& h = in(ws, 1);
    const Tensor& wx = in(ws, 2);
    const Tensor& wh = in(ws, 4);
    const uint64_t batch = static_cast<uint64_t>(seq.dim(0));
    const uint64_t in_dim = static_cast<uint64_t>(seq.dim(2));
    const uint64_t hidden = static_cast<uint64_t>(h.dim(1));

    // Two small GEMMs plus gate math per row; the fused kernel keeps
    // the gate vectors in scratch so only the step's x row, h row and
    // the weight matrices move through the memory system.
    KernelProfile kp = baseProfile();
    kp.fmaFlops = 2 * batch * 3 * hidden * (in_dim + hidden);
    kp.gemmWidth = 3 * hidden;
    kp.reloadLoadElems = kp.fmaFlops / 4;
    kp.vecElemOps = kp.fmaFlops / 6 + batch * hidden * 22;
    kp.simdScalableOps = batch * 3 * hidden;
    kp.scalarOps = batch * 8;
    {
        MemStream r;
        r.region = inputs()[0];
        r.pattern = AccessPattern::kStrided;
        r.chunkBytes = in_dim * 4;
        r.accesses = batch;
        r.footprintBytes = seq.byteSize();
        r.strideBytes = static_cast<uint64_t>(seq.dim(1)) * in_dim * 4;
        r.mlp = opcost::kMlpSequential;
        kp.streams.push_back(r);
    }
    addSeqStream(kp, inputs()[1], h, false);
    addSeqStream(kp, inputs()[2], wx, false);
    addSeqStream(kp, inputs()[4], wh, false);
    addSeqStream(kp, outputs()[0], outConst(ws, 0), true);

    BranchStream loops;
    loops.count = std::max<uint64_t>(1, kp.fmaFlops /
                                     opcost::kFlopsPerGemmBranch);
    loops.takenProbability = 0.97;
    loops.randomness = 0.02;
    loops.scalesWithSimd = true;
    kp.branches.push_back(loops);

    kp.codeFootprintBytes = opcost::kGemmCodeBytes;
    kp.codeRegion = "kernel:FusedGRUStep";
    kp.codeIterations = std::max<uint64_t>(1, kp.fmaFlops / 512);
    return kp;
}

}  // namespace recstack
