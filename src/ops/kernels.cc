/**
 * @file
 * kern:: dispatch layer: one switch per kernel routing to the tier
 * implementations in kernels_scalar.cc / kernels_avx2.cc. Callers
 * resolve the KernelIsa once per Operator::run (see kernels.h); the
 * switch itself is branch-predicted noise next to the loops behind
 * it. An unknown enumerator (future tier compiled out) falls back to
 * scalar rather than crashing, matching the dispatch policy in
 * common/cpu_features.h.
 */

#include "ops/kernels.h"

#include "ops/kernels_impl.h"

namespace recstack {
namespace kern {

float
dotBias(KernelIsa isa, float bias, const float* x, const float* w,
        int64_t k)
{
    switch (isa) {
      case KernelIsa::kAvx2:
        return detail::dotBiasAvx2(bias, x, w, k);
      case KernelIsa::kScalar:
        break;
    }
    return detail::dotBiasScalar(bias, x, w, k);
}

void
fcRows(KernelIsa isa, const float* x, const float* w, const float* b,
       float* y, int64_t lo, int64_t hi, int64_t n, int64_t k, FcAct act)
{
    switch (isa) {
      case KernelIsa::kAvx2:
        detail::fcRowsAvx2(x, w, b, y, lo, hi, n, k, act);
        return;
      case KernelIsa::kScalar:
        break;
    }
    detail::fcRowsScalar(x, w, b, y, lo, hi, n, k, act);
}

void
batchMatMulRows(KernelIsa isa, const float* a, const float* b, float* c,
                int64_t lo, int64_t hi, int64_t m, int64_t k, int64_t n)
{
    switch (isa) {
      case KernelIsa::kAvx2:
        detail::batchMatMulRowsAvx2(a, b, c, lo, hi, m, k, n);
        return;
      case KernelIsa::kScalar:
        break;
    }
    detail::batchMatMulRowsScalar(a, b, c, lo, hi, m, k, n);
}

void
rowAdd(KernelIsa isa, float* yrow, const float* src, int64_t dim)
{
    switch (isa) {
      case KernelIsa::kAvx2:
        detail::rowAddAvx2(yrow, src, dim);
        return;
      case KernelIsa::kScalar:
        break;
    }
    detail::rowAddScalar(yrow, src, dim);
}

void
rowAddScaled(KernelIsa isa, float* yrow, const float* src, float scale,
             int64_t dim)
{
    switch (isa) {
      case KernelIsa::kAvx2:
        detail::rowAddScaledAvx2(yrow, src, scale, dim);
        return;
      case KernelIsa::kScalar:
        break;
    }
    detail::rowAddScaledScalar(yrow, src, scale, dim);
}

void
rowScale(KernelIsa isa, float* yrow, float scale, int64_t dim)
{
    switch (isa) {
      case KernelIsa::kAvx2:
        detail::rowScaleAvx2(yrow, scale, dim);
        return;
      case KernelIsa::kScalar:
        break;
    }
    detail::rowScaleScalar(yrow, scale, dim);
}

void
rowCopy(KernelIsa isa, float* dst, const float* src, int64_t dim)
{
    switch (isa) {
      case KernelIsa::kAvx2:
        detail::rowCopyAvx2(dst, src, dim);
        return;
      case KernelIsa::kScalar:
        break;
    }
    detail::rowCopyScalar(dst, src, dim);
}

}  // namespace kern
}  // namespace recstack
