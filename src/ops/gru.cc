#include "ops/gru.h"

#include <cmath>
#include <vector>

#include "common/thread_pool.h"
#include "ops/kernels.h"
#include "ops/op_costs.h"

namespace recstack {
namespace {

float
sigmoidf(float v)
{
    return 1.0f / (1.0f + std::exp(-v));
}

}  // namespace

GRULayerOp::GRULayerOp(std::string name, std::string x, std::string h0,
                       std::string wx, std::string wh, std::string bias,
                       std::string hseq, std::string hlast, std::string att)
    : Operator(att.empty() ? "GRULayer" : "AUGRULayer", std::move(name),
               att.empty()
                   ? std::vector<std::string>{std::move(x), std::move(h0),
                         std::move(wx), std::move(wh), std::move(bias)}
                   : std::vector<std::string>{std::move(x), std::move(h0),
                         std::move(wx), std::move(wh), std::move(bias),
                         std::move(att)},
               {std::move(hseq), std::move(hlast)}),
      attentional_(!inputs().empty() && inputs().size() == 6)
{
}

void
GRULayerOp::inferShapes(Workspace& ws)
{
    const Tensor& x = in(ws, 0);
    const Tensor& h0 = in(ws, 1);
    const Tensor& wx = in(ws, 2);
    const Tensor& wh = in(ws, 3);
    RECSTACK_CHECK(x.rank() == 3, "GRU '" << name()
                   << "': x must be [T, B, I]");
    const int64_t hidden = h0.dim(1);
    RECSTACK_CHECK(wx.dim(0) == 3 * hidden && wx.dim(1) == x.dim(2),
                   "GRU '" << name() << "': wx shape mismatch");
    RECSTACK_CHECK(wh.dim(0) == 3 * hidden && wh.dim(1) == hidden,
                   "GRU '" << name() << "': wh shape mismatch");
    if (attentional_) {
        const Tensor& att = in(ws, 5);
        RECSTACK_CHECK(att.rank() == 2 && att.dim(0) == x.dim(0) &&
                       att.dim(1) == x.dim(1),
                       "GRU '" << name() << "': att must be [T, B]");
    }
    ws.ensure(outputs()[0], {x.dim(0), x.dim(1), hidden});
    ws.ensure(outputs()[1], {x.dim(1), hidden});
}

void
GRULayerOp::run(Workspace& ws)
{
    const Tensor& xt = in(ws, 0);
    const Tensor& h0t = in(ws, 1);
    const Tensor& wxt = in(ws, 2);
    const Tensor& wht = in(ws, 3);
    const Tensor& bt = in(ws, 4);
    Tensor& hseq_t = out(ws, 0);
    Tensor& hlast_t = out(ws, 1);

    const int64_t steps = xt.dim(0);
    const int64_t batch = xt.dim(1);
    const int64_t input = xt.dim(2);
    const int64_t hidden = h0t.dim(1);

    const float* x = xt.data<float>();
    const float* wx = wxt.data<float>();
    const float* wh = wht.data<float>();
    const float* bias = bt.data<float>();
    const float* att =
        attentional_ ? in(ws, 5).data<float>() : nullptr;
    float* hseq = hseq_t.data<float>();
    float* hlast = hlast_t.data<float>();

    // h holds the running hidden state, initialized from h0.
    std::vector<float> h(h0t.data<float>(),
                         h0t.data<float>() + batch * hidden);

    // Timesteps are inherently serial (h(t) feeds h(t+1)); within a
    // step the batch partitions across the pool. Each sample b only
    // reads and writes its own h/hseq rows, and each chunk carries
    // private gate scratch, so any thread count is bit-identical. The
    // gate matmuls ride the canonical dotBias contract (ops/kernels.h)
    // so the layer matches a step-unrolled FC chain bit-for-bit on
    // every tier.
    const KernelIsa isa = activeKernelIsa();
    const int64_t step_grain = grainForCost(
        static_cast<uint64_t>(3 * hidden * (input + hidden)));
    float* hbase = h.data();
    for (int64_t t = 0; t < steps; ++t) {
        parallelFor(0, batch, step_grain, [&, t](int64_t lo, int64_t hi) {
            std::vector<float> gx(static_cast<size_t>(3 * hidden));
            std::vector<float> gh(static_cast<size_t>(3 * hidden));
            for (int64_t b = lo; b < hi; ++b) {
                const float* xrow = x + (t * batch + b) * input;
                const float* hrow = hbase + b * hidden;
                for (int64_t g = 0; g < 3 * hidden; ++g) {
                    gx[static_cast<size_t>(g)] = kern::dotBias(
                        isa, bias[g], xrow, wx + g * input, input);
                    gh[static_cast<size_t>(g)] = kern::dotBias(
                        isa, 0.0f, hrow, wh + g * hidden, hidden);
                }
                float* hout = hbase + b * hidden;
                float* hseq_row = hseq + (t * batch + b) * hidden;
                for (int64_t i = 0; i < hidden; ++i) {
                    const float r =
                        sigmoidf(gx[static_cast<size_t>(i)] +
                                 gh[static_cast<size_t>(i)]);
                    float z =
                        sigmoidf(gx[static_cast<size_t>(hidden + i)] +
                                 gh[static_cast<size_t>(hidden + i)]);
                    if (att) {
                        z *= att[t * batch + b];
                    }
                    const float n = std::tanh(
                        gx[static_cast<size_t>(2 * hidden + i)] +
                        r * gh[static_cast<size_t>(2 * hidden + i)]);
                    hout[i] = (1.0f - z) * n + z * hout[i];
                    hseq_row[i] = hout[i];
                }
            }
        });
    }
    for (int64_t i = 0; i < batch * hidden; ++i) {
        hlast[i] = h[static_cast<size_t>(i)];
    }
}

KernelProfile
GRULayerOp::profile(const Workspace& ws) const
{
    const Tensor& x = in(ws, 0);
    const Tensor& wx = in(ws, 2);
    const Tensor& wh = in(ws, 3);
    const uint64_t steps = static_cast<uint64_t>(x.dim(0));
    const uint64_t batch = static_cast<uint64_t>(x.dim(1));
    const uint64_t input = static_cast<uint64_t>(x.dim(2));
    const uint64_t hidden = static_cast<uint64_t>(wh.dim(1));

    KernelProfile kp = baseProfile();
    kp.fmaFlops = 2 * steps * batch * 3 * hidden * (input + hidden);
    kp.vecElemOps = steps * batch * hidden * 24 +  // gate nonlinearities
                    kp.fmaFlops / 4;               // GEMM shuffle overhead
    kp.reloadLoadElems = kp.fmaFlops / 4;
    kp.simdScalableOps = steps * batch * hidden;
    kp.scalarOps = steps * batch * 16;

    addSeqStream(kp, inputs()[0], x, false);
    // Weights are re-streamed every timestep; the small matrices live
    // in cache after the first step, which the cache model discovers.
    MemStream wstream;
    wstream.region = inputs()[2];
    wstream.pattern = AccessPattern::kSequential;
    wstream.chunkBytes = 64;
    wstream.footprintBytes = wx.byteSize() + wh.byteSize();
    wstream.accesses = steps * ((wstream.footprintBytes + 63) / 64);
    wstream.mlp = opcost::kMlpSerial;
    kp.streams.push_back(wstream);
    addSeqStream(kp, outputs()[0], outConst(ws, 0), true);

    BranchStream loops;
    loops.count = std::max<uint64_t>(1, steps * batch * 3 * hidden *
                                     (input + hidden) / 256) + steps;
    loops.takenProbability = 0.96;
    loops.randomness = 0.03;
    loops.scalesWithSimd = true;
    kp.branches.push_back(loops);

    kp.serialSteps = steps;
    kp.codeFootprintBytes = opcost::kGruCodeBytes;
    kp.codeRegion = attentional_ ? "kernel:AUGRU" : "kernel:GRU";
    kp.codeIterations = std::max<uint64_t>(1, steps * batch * hidden);
    return kp;
}

OperatorPtr
makeGRULayer(std::string name, std::string x, std::string h0,
             std::string wx, std::string wh, std::string bias,
             std::string hseq, std::string hlast, std::string att)
{
    return std::make_unique<GRULayerOp>(std::move(name), std::move(x),
                                        std::move(h0), std::move(wx),
                                        std::move(wh), std::move(bias),
                                        std::move(hseq), std::move(hlast),
                                        std::move(att));
}

}  // namespace recstack
