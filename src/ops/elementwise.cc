#include "ops/elementwise.h"

#include <cmath>

#include "common/thread_pool.h"
#include "ops/op_costs.h"

namespace recstack {
namespace {

const char*
unaryName(UnaryFn fn)
{
    switch (fn) {
      case UnaryFn::kRelu: return "Relu";
      case UnaryFn::kSigmoid: return "Sigmoid";
      case UnaryFn::kTanh: return "Tanh";
    }
    return "?";
}

const char*
binaryName(BinaryFn fn)
{
    switch (fn) {
      case BinaryFn::kAdd: return "Add";
      case BinaryFn::kSub: return "Sub";
      case BinaryFn::kMul: return "Mul";
    }
    return "?";
}

/// Transcendental activations cost several vector ops per element.
uint64_t
unaryElemCost(UnaryFn fn)
{
    switch (fn) {
      case UnaryFn::kRelu: return 1;
      case UnaryFn::kSigmoid: return 8;
      case UnaryFn::kTanh: return 8;
    }
    return 1;
}

}  // namespace

UnaryOp::UnaryOp(UnaryFn fn, std::string name, std::string x, std::string y)
    : Operator(unaryName(fn), std::move(name), {std::move(x)},
               {std::move(y)}),
      fn_(fn)
{
}

void
UnaryOp::inferShapes(Workspace& ws)
{
    const Tensor& x = in(ws, 0);
    RECSTACK_CHECK(x.dtype() == DType::kFloat32,
                   type() << " '" << name() << "' needs float input");
    ws.ensure(outputs()[0], x.shape());
}

void
UnaryOp::run(Workspace& ws)
{
    const Tensor& xt = in(ws, 0);
    Tensor& yt = out(ws, 0);
    const float* x = xt.data<float>();
    float* y = yt.data<float>();
    const int64_t n = xt.numel();
    // Pure elementwise map: chunks touch disjoint [lo, hi) slices.
    const UnaryFn fn = fn_;
    parallelFor(0, n, grainForCost(unaryElemCost(fn)),
                [=](int64_t lo, int64_t hi) {
        switch (fn) {
          case UnaryFn::kRelu:
            for (int64_t i = lo; i < hi; ++i) {
                y[i] = x[i] > 0.0f ? x[i] : 0.0f;
            }
            break;
          case UnaryFn::kSigmoid:
            for (int64_t i = lo; i < hi; ++i) {
                y[i] = 1.0f / (1.0f + std::exp(-x[i]));
            }
            break;
          case UnaryFn::kTanh:
            for (int64_t i = lo; i < hi; ++i) {
                y[i] = std::tanh(x[i]);
            }
            break;
        }
    });
}

KernelProfile
UnaryOp::profile(const Workspace& ws) const
{
    const Tensor& x = in(ws, 0);
    KernelProfile kp = baseProfile();
    const uint64_t n = static_cast<uint64_t>(x.numel());
    kp.vecElemOps = n * unaryElemCost(fn_);
    kp.scalarOps = 32;
    addSeqStream(kp, inputs()[0], x, false);
    addSeqStream(kp, outputs()[0], outConst(ws, 0), true);
    BranchStream loops;
    loops.count = std::max<uint64_t>(1, n / 64);
    loops.takenProbability = 0.97;
    loops.randomness = 0.02;
    loops.scalesWithSimd = true;
    kp.branches.push_back(loops);
    kp.codeFootprintBytes = opcost::kEltwiseCodeBytes;
    kp.codeRegion = std::string("kernel:") + type();
    kp.codeIterations = std::max<uint64_t>(1, n / 16);
    return kp;
}

BinaryOp::BinaryOp(BinaryFn fn, std::string name, std::string a,
                   std::string b, std::string y)
    : Operator(binaryName(fn), std::move(name),
               {std::move(a), std::move(b)}, {std::move(y)}),
      fn_(fn)
{
}

void
BinaryOp::inferShapes(Workspace& ws)
{
    const Tensor& a = in(ws, 0);
    const Tensor& b = in(ws, 1);
    const bool broadcast = a.rank() == 2 && b.rank() == 2 &&
                           a.dim(0) == b.dim(0) && b.dim(1) == 1;
    RECSTACK_CHECK(a.shape() == b.shape() || broadcast,
                   type() << " '" << name() << "': shape mismatch "
                          << a.describe() << " vs " << b.describe());
    ws.ensure(outputs()[0], a.shape());
}

void
BinaryOp::run(Workspace& ws)
{
    const Tensor& at = in(ws, 0);
    const Tensor& bt = in(ws, 1);
    Tensor& yt = out(ws, 0);
    const float* a = at.data<float>();
    const float* b = bt.data<float>();
    float* y = yt.data<float>();
    const int64_t n = at.numel();
    const bool broadcast = at.shape() != bt.shape();
    const int64_t cols = broadcast ? at.dim(1) : 1;
    const BinaryFn fn = fn_;
    parallelFor(0, n, grainForCost(2), [=](int64_t lo, int64_t hi) {
        auto rhs = [&](int64_t i) {
            return broadcast ? b[i / cols] : b[i];
        };
        switch (fn) {
          case BinaryFn::kAdd:
            for (int64_t i = lo; i < hi; ++i) y[i] = a[i] + rhs(i);
            break;
          case BinaryFn::kSub:
            for (int64_t i = lo; i < hi; ++i) y[i] = a[i] - rhs(i);
            break;
          case BinaryFn::kMul:
            for (int64_t i = lo; i < hi; ++i) y[i] = a[i] * rhs(i);
            break;
        }
    });
}

KernelProfile
BinaryOp::profile(const Workspace& ws) const
{
    const Tensor& a = in(ws, 0);
    KernelProfile kp = baseProfile();
    const uint64_t n = static_cast<uint64_t>(a.numel());
    kp.vecElemOps = n;
    kp.scalarOps = 32;
    addSeqStream(kp, inputs()[0], a, false);
    addSeqStream(kp, inputs()[1], in(ws, 1), false);
    addSeqStream(kp, outputs()[0], outConst(ws, 0), true);
    BranchStream loops;
    loops.count = std::max<uint64_t>(1, n / 64);
    loops.takenProbability = 0.97;
    loops.randomness = 0.02;
    loops.scalesWithSimd = true;
    kp.branches.push_back(loops);
    kp.codeFootprintBytes = opcost::kEltwiseCodeBytes;
    kp.codeRegion = std::string("kernel:") + type();
    kp.codeIterations = std::max<uint64_t>(1, n / 16);
    return kp;
}

SumOp::SumOp(std::string name, std::vector<std::string> xs, std::string y)
    : Operator("Sum", std::move(name), std::move(xs), {std::move(y)})
{
    RECSTACK_CHECK(!inputs().empty(), "Sum needs at least one input");
}

void
SumOp::inferShapes(Workspace& ws)
{
    const Tensor& first = in(ws, 0);
    for (size_t i = 1; i < inputs().size(); ++i) {
        RECSTACK_CHECK(in(ws, i).shape() == first.shape(),
                       "Sum '" << name() << "': input " << i
                               << " shape mismatch");
    }
    ws.ensure(outputs()[0], first.shape());
}

void
SumOp::run(Workspace& ws)
{
    Tensor& yt = out(ws, 0);
    float* y = yt.data<float>();
    const int64_t n = yt.numel();
    std::vector<const float*> srcs;
    srcs.reserve(inputs().size());
    for (size_t s = 0; s < inputs().size(); ++s) {
        srcs.push_back(in(ws, s).data<float>());
    }
    // Disjoint element slices; the per-element input order (and thus
    // float rounding) matches the serial accumulation exactly.
    parallelFor(0, n, grainForCost(srcs.size()),
                [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
            y[i] = srcs[0][i];
        }
        for (size_t s = 1; s < srcs.size(); ++s) {
            const float* x = srcs[s];
            for (int64_t i = lo; i < hi; ++i) {
                y[i] += x[i];
            }
        }
    });
}

KernelProfile
SumOp::profile(const Workspace& ws) const
{
    KernelProfile kp = baseProfile();
    const uint64_t n = static_cast<uint64_t>(outConst(ws, 0).numel());
    kp.vecElemOps = n * inputs().size();
    kp.scalarOps = 16 * inputs().size();
    for (size_t i = 0; i < inputs().size(); ++i) {
        addSeqStream(kp, inputs()[i], in(ws, i), false);
    }
    addSeqStream(kp, outputs()[0], outConst(ws, 0), true);
    BranchStream loops;
    loops.count = std::max<uint64_t>(1, n * inputs().size() / 64);
    loops.takenProbability = 0.97;
    loops.randomness = 0.02;
    loops.scalesWithSimd = true;
    kp.branches.push_back(loops);
    kp.codeFootprintBytes = opcost::kEltwiseCodeBytes;
    kp.codeRegion = "kernel:Sum";
    kp.codeIterations = std::max<uint64_t>(1, n / 16);
    return kp;
}

OperatorPtr
makeRelu(std::string name, std::string x, std::string y)
{
    return std::make_unique<UnaryOp>(UnaryFn::kRelu, std::move(name),
                                     std::move(x), std::move(y));
}

OperatorPtr
makeSigmoid(std::string name, std::string x, std::string y)
{
    return std::make_unique<UnaryOp>(UnaryFn::kSigmoid, std::move(name),
                                     std::move(x), std::move(y));
}

OperatorPtr
makeTanh(std::string name, std::string x, std::string y)
{
    return std::make_unique<UnaryOp>(UnaryFn::kTanh, std::move(name),
                                     std::move(x), std::move(y));
}

OperatorPtr
makeAdd(std::string name, std::string a, std::string b, std::string y)
{
    return std::make_unique<BinaryOp>(BinaryFn::kAdd, std::move(name),
                                      std::move(a), std::move(b),
                                      std::move(y));
}

OperatorPtr
makeSub(std::string name, std::string a, std::string b, std::string y)
{
    return std::make_unique<BinaryOp>(BinaryFn::kSub, std::move(name),
                                      std::move(a), std::move(b),
                                      std::move(y));
}

OperatorPtr
makeMul(std::string name, std::string a, std::string b, std::string y)
{
    return std::make_unique<BinaryOp>(BinaryFn::kMul, std::move(name),
                                      std::move(a), std::move(b),
                                      std::move(y));
}

OperatorPtr
makeSum(std::string name, std::vector<std::string> xs, std::string y)
{
    return std::make_unique<SumOp>(std::move(name), std::move(xs),
                                   std::move(y));
}

}  // namespace recstack
