#ifndef RECSTACK_OPS_OP_COSTS_H_
#define RECSTACK_OPS_OP_COSTS_H_

/**
 * @file
 * Tunable cost-model constants used when operators lower their shapes
 * to KernelProfiles. Centralized so calibration against the paper's
 * qualitative results is auditable in one place.
 *
 * All counts are platform independent; the microarchitecture models
 * apply SIMD width, decoder geometry, cache geometry, etc.
 */

#include <cstdint>

namespace recstack {
namespace opcost {

/// Scalar micro-ops of framework per-operator dispatch (graph walk,
/// type dispatch, shape checks, allocator). Caffe2's measured per-op
/// CPU overhead is several microseconds, dominated by *stalls*
/// (icache misses, indirect-branch mispredicts, metadata pointer
/// chasing) rather than raw instruction count; the stall content is
/// modeled by kDispatchBranches and kDispatchMeta* below.
inline constexpr uint64_t kDispatchOps = 18000;

/// Metadata pointer-chasing of the dispatch path: OperatorDef /
/// argument-map / blob-registry lookups scattered over the framework
/// heap. Low MLP (dependent chains).
inline constexpr uint64_t kDispatchMetaAccesses = 150;
inline constexpr uint64_t kDispatchMetaRegionBytes = 192 * 1024;
inline constexpr double kDispatchMetaMlp = 3.0;

/// Static code bytes of the dispatch path. It is a large, branchy
/// region shared by every operator (virtual calls, hash lookups).
inline constexpr uint64_t kDispatchCodeBytes = 20 * 1024;

/// Dynamic branches in the dispatch path and their behaviour:
/// virtual/indirect dispatch with data-dependent targets.
inline constexpr uint64_t kDispatchBranches = 1000;
inline constexpr double kDispatchBranchRandomness = 0.15;

/// Code bytes of kernel hot regions. GEMM microkernels are compact;
/// embedding-gather loops slightly smaller; per-instance attention
/// units (DIN) each carry their own immediates/addresses so each
/// instance reports a distinct code region of this size (the paper's
/// i-cache pressure mechanism).
inline constexpr uint64_t kGemmCodeBytes = 2048;
inline constexpr uint64_t kSlsCodeBytes = 1536;
inline constexpr uint64_t kEltwiseCodeBytes = 640;
inline constexpr uint64_t kConcatCodeBytes = 768;
inline constexpr uint64_t kGruCodeBytes = 3072;
inline constexpr uint64_t kSoftmaxCodeBytes = 1024;

/// Loop-branch density: one loop-control branch per this many fma
/// flops in a GEMM inner loop (vector-unrolled).
inline constexpr uint64_t kFlopsPerGemmBranch = 256;

/// Memory-level parallelism assumptions per access class. Gather
/// loops issue many independent loads (high MLP); sequential streams
/// are prefetched (effectively higher still); GRU steps serialize.
inline constexpr double kMlpSequential = 10.0;
inline constexpr double kMlpGather = 12.0;
inline constexpr double kMlpSerial = 2.0;

}  // namespace opcost
}  // namespace recstack

#endif  // RECSTACK_OPS_OP_COSTS_H_
