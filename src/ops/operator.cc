#include "ops/operator.h"

#include "ops/op_costs.h"

namespace recstack {

Operator::Operator(std::string type, std::string name,
                   std::vector<std::string> inputs,
                   std::vector<std::string> outputs)
    : type_(std::move(type)), name_(std::move(name)),
      inputs_(std::move(inputs)), outputs_(std::move(outputs))
{
}

Operator::~Operator() = default;

const Tensor&
Operator::in(const Workspace& ws, size_t i) const
{
    RECSTACK_CHECK(i < inputs_.size(),
                   type_ << " op '" << name_ << "': input " << i
                         << " out of range");
    return ws.get(inputs_[i]);
}

Tensor&
Operator::out(Workspace& ws, size_t i) const
{
    RECSTACK_CHECK(i < outputs_.size(),
                   type_ << " op '" << name_ << "': output " << i
                         << " out of range");
    return ws.get(outputs_[i]);
}

const Tensor&
Operator::outConst(const Workspace& ws, size_t i) const
{
    RECSTACK_CHECK(i < outputs_.size(),
                   type_ << " op '" << name_ << "': output " << i
                         << " out of range");
    return ws.get(outputs_[i]);
}

KernelProfile
Operator::baseProfile() const
{
    KernelProfile kp;
    kp.opType = displayType();
    kp.opName = name_;
    kp.dispatchOps = opcost::kDispatchOps;
    kp.dispatchCodeBytes = opcost::kDispatchCodeBytes;
    BranchStream dispatch;
    dispatch.count = opcost::kDispatchBranches;
    dispatch.takenProbability = 0.6;
    dispatch.randomness = opcost::kDispatchBranchRandomness;
    kp.branches.push_back(dispatch);
    // Framework-metadata pointer chasing (shared heap region).
    MemStream meta;
    meta.region = "framework:heap";
    meta.pattern = AccessPattern::kRandom;
    meta.accesses = opcost::kDispatchMetaAccesses;
    meta.chunkBytes = 16;  // scalar pointer-sized touches
    meta.footprintBytes = opcost::kDispatchMetaRegionBytes;
    meta.mlp = opcost::kDispatchMetaMlp;
    kp.streams.push_back(meta);
    return kp;
}

void
Operator::addSeqStream(KernelProfile& kp, const std::string& region,
                       const Tensor& t, bool is_write)
{
    if (t.byteSize() == 0) {
        return;
    }
    MemStream s;
    s.region = region;
    s.pattern = AccessPattern::kSequential;
    s.chunkBytes = 64;
    s.accesses = (t.byteSize() + s.chunkBytes - 1) / s.chunkBytes;
    s.footprintBytes = t.byteSize();
    s.isWrite = is_write;
    s.mlp = opcost::kMlpSequential;
    kp.streams.push_back(s);
}

}  // namespace recstack
