#ifndef RECSTACK_OPS_FC_H_
#define RECSTACK_OPS_FC_H_

/**
 * @file
 * FC: Caffe2's fully-connected operator, Y = X * W^T + b.
 * The central compute operator of the FC-heavy recommendation models
 * (RM3, WnD, MT-WnD) in the paper.
 */

#include "ops/operator.h"

namespace recstack {

/**
 * Fully-connected layer.
 *
 * Inputs:  X [M, K], W [N, K], b [N]
 * Outputs: Y [M, N]
 */
class FCOp : public Operator
{
  public:
    FCOp(std::string name, std::string x, std::string w, std::string b,
         std::string y);

    void inferShapes(Workspace& ws) override;
    void run(Workspace& ws) override;
    KernelProfile profile(const Workspace& ws) const override;
};

/** Convenience factory. */
OperatorPtr makeFC(std::string name, std::string x, std::string w,
                   std::string b, std::string y);

}  // namespace recstack

#endif  // RECSTACK_OPS_FC_H_
