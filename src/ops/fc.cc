#include "ops/fc.h"

#include "common/thread_pool.h"
#include "ops/kernels.h"
#include "ops/op_costs.h"

namespace recstack {

FCOp::FCOp(std::string name, std::string x, std::string w, std::string b,
           std::string y)
    : Operator("FC", std::move(name), {std::move(x), std::move(w),
      std::move(b)}, {std::move(y)})
{
}

void
FCOp::inferShapes(Workspace& ws)
{
    const Tensor& x = in(ws, 0);
    const Tensor& w = in(ws, 1);
    const Tensor& b = in(ws, 2);
    RECSTACK_CHECK(x.rank() == 2, "FC '" << name() << "': X must be 2-D, got "
                   << x.describe());
    RECSTACK_CHECK(w.rank() == 2, "FC '" << name() << "': W must be 2-D");
    RECSTACK_CHECK(x.dim(1) == w.dim(1),
                   "FC '" << name() << "': K mismatch, X " << x.describe()
                          << " vs W " << w.describe());
    RECSTACK_CHECK(b.numel() == w.dim(0), "FC '" << name()
                   << "': bias length mismatch");
    ws.ensure(outputs()[0], {x.dim(0), w.dim(0)});
}

void
FCOp::run(Workspace& ws)
{
    const Tensor& xt = in(ws, 0);
    const Tensor& wt = in(ws, 1);
    const Tensor& bt = in(ws, 2);
    Tensor& yt = out(ws, 0);

    const int64_t m = xt.dim(0);
    const int64_t k = xt.dim(1);
    const int64_t n = wt.dim(0);
    const float* x = xt.data<float>();
    const float* w = wt.data<float>();
    const float* b = bt.data<float>();
    float* y = yt.data<float>();

    // Row-blocked: each chunk owns a disjoint band of output rows, so
    // no accumulator crosses a chunk boundary and any thread count is
    // bit-identical to serial. The ISA tier is resolved once here —
    // never inside the chunk lambda — so pool workers all run the
    // calling thread's tier.
    const KernelIsa isa = activeKernelIsa();
    parallelFor(0, m, grainForCost(static_cast<uint64_t>(n * k)),
                [=](int64_t lo, int64_t hi) {
        kern::fcRows(isa, x, w, b, y, lo, hi, n, k, kern::FcAct::kNone);
    });
}

KernelProfile
FCOp::profile(const Workspace& ws) const
{
    const Tensor& x = in(ws, 0);
    const Tensor& w = in(ws, 1);
    const Tensor& y = outConst(ws, 0);
    const uint64_t m = static_cast<uint64_t>(x.dim(0));
    const uint64_t k = static_cast<uint64_t>(x.dim(1));
    const uint64_t n = static_cast<uint64_t>(w.dim(0));

    KernelProfile kp = baseProfile();
    kp.fmaFlops = 2 * m * n * k;
    kp.gemmWidth = n;
    // Register-blocked GEMM reloads operand vectors from L1-resident
    // tiles and spends extra vector ops on broadcasts/shuffles and
    // accumulator reduction — the port pressure behind the paper's
    // core-bound FC models.
    kp.reloadLoadElems = m * n * k / 2;
    kp.vecElemOps = m * n * k / 3;
    // Row-pointer setup and accumulator handling (per vector loop
    // iteration, so it shrinks with SIMD width).
    kp.simdScalableOps = m * n / 2;
    kp.scalarOps = m * 4;
    addSeqStream(kp, inputs()[0], x, false);
    // A blocked GEMM re-reads the weight panel once per M-tile of ~64
    // rows; model the weight traffic accordingly so large batches see
    // weight reuse from cache.
    {
        MemStream ws_stream;
        ws_stream.region = inputs()[1];
        ws_stream.pattern = AccessPattern::kSequential;
        ws_stream.chunkBytes = 64;
        const uint64_t panel_reads = std::max<uint64_t>(1, (m + 63) / 64);
        ws_stream.footprintBytes = w.byteSize();
        ws_stream.accesses = panel_reads * ((w.byteSize() + 63) / 64);
        ws_stream.mlp = opcost::kMlpSequential;
        kp.streams.push_back(ws_stream);
    }
    addSeqStream(kp, outputs()[0], y, true);

    BranchStream loops;
    loops.count = std::max<uint64_t>(1, kp.fmaFlops /
                                     opcost::kFlopsPerGemmBranch);
    loops.takenProbability = 0.97;
    loops.randomness = 0.02;
    loops.scalesWithSimd = true;
    kp.branches.push_back(loops);

    kp.codeFootprintBytes = opcost::kGemmCodeBytes;
    kp.codeRegion = "kernel:FC";
    kp.codeIterations = std::max<uint64_t>(1, m * n * k / 512);
    return kp;
}

OperatorPtr
makeFC(std::string name, std::string x, std::string w, std::string b,
       std::string y)
{
    return std::make_unique<FCOp>(std::move(name), std::move(x),
                                  std::move(w), std::move(b), std::move(y));
}

}  // namespace recstack
