#include "ops/reshape.h"

#include <cstring>

#include "ops/op_costs.h"

namespace recstack {

ReshapeOp::ReshapeOp(std::string name, std::string x, std::string y,
                     std::vector<int64_t> shape)
    : Operator("Reshape", std::move(name), {std::move(x)}, {std::move(y)}),
      targetShape_(std::move(shape))
{
}

std::vector<int64_t>
ReshapeOp::resolve(const Tensor& x) const
{
    std::vector<int64_t> shape = targetShape_;
    int64_t known = 1;
    int wildcard = -1;
    for (size_t i = 0; i < shape.size(); ++i) {
        if (shape[i] == -1) {
            RECSTACK_CHECK(wildcard < 0, "Reshape '" << name()
                           << "': multiple -1 dims");
            wildcard = static_cast<int>(i);
        } else {
            known *= shape[i];
        }
    }
    if (wildcard >= 0) {
        RECSTACK_CHECK(known > 0 && x.numel() % known == 0,
                       "Reshape '" << name() << "': cannot infer -1");
        shape[static_cast<size_t>(wildcard)] = x.numel() / known;
    }
    return shape;
}

void
ReshapeOp::inferShapes(Workspace& ws)
{
    const Tensor& x = in(ws, 0);
    auto shape = resolve(x);
    Tensor& y = ws.ensure(outputs()[0], shape, x.dtype());
    RECSTACK_CHECK(y.numel() == x.numel(),
                   "Reshape '" << name() << "': element count mismatch");
}

void
ReshapeOp::run(Workspace& ws)
{
    const Tensor& x = in(ws, 0);
    Tensor& y = out(ws, 0);
    std::memcpy(y.data<float>(), x.data<float>(), x.byteSize());
}

KernelProfile
ReshapeOp::profile(const Workspace& ws) const
{
    (void)ws;
    // Metadata-only in deployment; only dispatch cost is charged.
    return baseProfile();
}

SliceOp::SliceOp(std::string name, std::string x, std::string y,
                 int64_t index)
    : Operator("Slice", std::move(name), {std::move(x)}, {std::move(y)}),
      index_(index)
{
}

void
SliceOp::inferShapes(Workspace& ws)
{
    const Tensor& x = in(ws, 0);
    RECSTACK_CHECK(x.rank() == 3, "Slice '" << name()
                   << "': input must be 3-D");
    RECSTACK_CHECK(index_ >= 0 && index_ < x.dim(1),
                   "Slice '" << name() << "': index " << index_
                             << " out of range");
    ws.ensure(outputs()[0], {x.dim(0), x.dim(2)});
}

void
SliceOp::run(Workspace& ws)
{
    const Tensor& xt = in(ws, 0);
    Tensor& yt = out(ws, 0);
    const float* x = xt.data<float>();
    float* y = yt.data<float>();
    const int64_t batch = xt.dim(0);
    const int64_t planes = xt.dim(1);
    const int64_t dim = xt.dim(2);
    for (int64_t b = 0; b < batch; ++b) {
        const float* src = x + (b * planes + index_) * dim;
        std::memcpy(y + b * dim, src, static_cast<size_t>(dim) * 4);
    }
}

KernelProfile
SliceOp::profile(const Workspace& ws) const
{
    const Tensor& x = in(ws, 0);
    const Tensor& y = outConst(ws, 0);
    KernelProfile kp = baseProfile();
    kp.vecElemOps = static_cast<uint64_t>(y.numel());
    kp.scalarOps = static_cast<uint64_t>(y.dim(0)) * 4;

    MemStream r;
    r.region = inputs()[0];
    r.pattern = AccessPattern::kStrided;
    r.chunkBytes = static_cast<uint64_t>(x.dim(2)) * 4;
    r.accesses = static_cast<uint64_t>(x.dim(0));
    r.footprintBytes = x.byteSize();
    r.strideBytes = static_cast<uint64_t>(x.dim(1) * x.dim(2)) * 4;
    r.mlp = opcost::kMlpSequential;
    kp.streams.push_back(r);
    addSeqStream(kp, outputs()[0], y, true);

    BranchStream loops;
    loops.count = static_cast<uint64_t>(y.dim(0));
    loops.takenProbability = 0.95;
    loops.randomness = 0.05;
    loops.scalesWithSimd = true;
    kp.branches.push_back(loops);

    kp.codeFootprintBytes = opcost::kEltwiseCodeBytes;
    kp.codeRegion = "kernel:Slice";
    kp.codeIterations = std::max<uint64_t>(
        1, static_cast<uint64_t>(y.numel()) / 16);
    return kp;
}

TransposeOp::TransposeOp(std::string name, std::string x, std::string y)
    : Operator("Transpose", std::move(name), {std::move(x)}, {std::move(y)})
{
}

void
TransposeOp::inferShapes(Workspace& ws)
{
    const Tensor& x = in(ws, 0);
    RECSTACK_CHECK(x.rank() == 2 || x.rank() == 3,
                   "Transpose '" << name() << "': input must be 2-D or 3-D");
    std::vector<int64_t> shape = x.shape();
    std::swap(shape[0], shape[1]);
    ws.ensure(outputs()[0], shape);
}

void
TransposeOp::run(Workspace& ws)
{
    const Tensor& xt = in(ws, 0);
    Tensor& yt = out(ws, 0);
    const float* x = xt.data<float>();
    float* y = yt.data<float>();
    const int64_t a = xt.dim(0);
    const int64_t b = xt.dim(1);
    const int64_t d = xt.rank() == 3 ? xt.dim(2) : 1;
    for (int64_t i = 0; i < a; ++i) {
        for (int64_t j = 0; j < b; ++j) {
            const float* src = x + (i * b + j) * d;
            float* dst = y + (j * a + i) * d;
            for (int64_t k = 0; k < d; ++k) {
                dst[k] = src[k];
            }
        }
    }
}

KernelProfile
TransposeOp::profile(const Workspace& ws) const
{
    const Tensor& x = in(ws, 0);
    KernelProfile kp = baseProfile();
    const uint64_t n = static_cast<uint64_t>(x.numel());
    kp.vecElemOps = n;
    kp.scalarOps = static_cast<uint64_t>(x.dim(0) * x.dim(1)) / 2;
    addSeqStream(kp, inputs()[0], x, false);
    // Writes are scattered with a large stride.
    MemStream w;
    w.region = outputs()[0];
    w.pattern = AccessPattern::kStrided;
    w.chunkBytes = x.rank() == 3 ? static_cast<uint64_t>(x.dim(2)) * 4 : 4;
    w.accesses = static_cast<uint64_t>(x.dim(0) * x.dim(1));
    w.footprintBytes = x.byteSize();
    w.strideBytes = static_cast<uint64_t>(x.dim(0)) * w.chunkBytes;
    w.isWrite = true;
    w.mlp = opcost::kMlpGather;
    kp.streams.push_back(w);

    BranchStream loops;
    loops.count = std::max<uint64_t>(
        1, static_cast<uint64_t>(x.dim(0) * x.dim(1)));
    loops.takenProbability = 0.95;
    loops.randomness = 0.05;
    loops.scalesWithSimd = true;
    kp.branches.push_back(loops);

    kp.codeFootprintBytes = opcost::kEltwiseCodeBytes;
    kp.codeRegion = "kernel:Transpose";
    kp.codeIterations = std::max<uint64_t>(1, n / 16);
    return kp;
}

OperatorPtr
makeReshape(std::string name, std::string x, std::string y,
            std::vector<int64_t> shape)
{
    return std::make_unique<ReshapeOp>(std::move(name), std::move(x),
                                       std::move(y), std::move(shape));
}

OperatorPtr
makeSlice(std::string name, std::string x, std::string y, int64_t index)
{
    return std::make_unique<SliceOp>(std::move(name), std::move(x),
                                     std::move(y), index);
}

OperatorPtr
makeTranspose(std::string name, std::string x, std::string y)
{
    return std::make_unique<TransposeOp>(std::move(name), std::move(x),
                                         std::move(y));
}

}  // namespace recstack
