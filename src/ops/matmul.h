#ifndef RECSTACK_OPS_MATMUL_H_
#define RECSTACK_OPS_MATMUL_H_

/**
 * @file
 * BatchMatMul and Softmax: the attention-math operators used by DIN's
 * weighted pooling and DIEN's attention over GRU states.
 */

#include "ops/operator.h"

namespace recstack {

/**
 * BatchMatMul: C[b] = A[b] * B[b].
 *
 * Inputs:  A [B, M, K], B [B, K, N]
 * Outputs: C [B, M, N]
 */
class BatchMatMulOp : public Operator
{
  public:
    BatchMatMulOp(std::string name, std::string a, std::string b,
                  std::string c);

    void inferShapes(Workspace& ws) override;
    void run(Workspace& ws) override;
    KernelProfile profile(const Workspace& ws) const override;
};

/** Softmax over the last axis of a 2-D tensor. */
class SoftmaxOp : public Operator
{
  public:
    SoftmaxOp(std::string name, std::string x, std::string y);

    void inferShapes(Workspace& ws) override;
    void run(Workspace& ws) override;
    KernelProfile profile(const Workspace& ws) const override;
};

OperatorPtr makeBatchMatMul(std::string name, std::string a, std::string b,
                            std::string c);
OperatorPtr makeSoftmax(std::string name, std::string x, std::string y);

}  // namespace recstack

#endif  // RECSTACK_OPS_MATMUL_H_
