#ifndef RECSTACK_OPS_CONCAT_H_
#define RECSTACK_OPS_CONCAT_H_

/**
 * @file
 * Concat: concatenation along axis 1 of 2-D tensors. The paper calls
 * out concatenation as the operator class that makes DIN's attention
 * implementation perform poorly on GPUs (launch-bound data movement).
 */

#include "ops/operator.h"

namespace recstack {

/**
 * Concatenate 2-D inputs [B, Ki] along axis 1 into [B, sum(Ki)].
 */
class ConcatOp : public Operator
{
  public:
    ConcatOp(std::string name, std::vector<std::string> xs, std::string y);

    void inferShapes(Workspace& ws) override;
    void run(Workspace& ws) override;
    KernelProfile profile(const Workspace& ws) const override;
};

OperatorPtr makeConcat(std::string name, std::vector<std::string> xs,
                       std::string y);

}  // namespace recstack

#endif  // RECSTACK_OPS_CONCAT_H_
