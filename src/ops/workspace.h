#ifndef RECSTACK_OPS_WORKSPACE_H_
#define RECSTACK_OPS_WORKSPACE_H_

/**
 * @file
 * Workspace: the name → Tensor blob store an operator graph executes
 * against, mirroring Caffe2's Workspace semantics.
 */

#include <string>
#include <unordered_map>
#include <vector>

#include "tensor/tensor.h"

namespace recstack {

class EmbeddingStore;

/** Named tensor store shared by all operators of a running net. */
class Workspace
{
  public:
    /** True if a blob with this name exists. */
    bool has(const std::string& name) const;

    /** Fetch an existing blob; panics if missing. */
    Tensor& get(const std::string& name);
    const Tensor& get(const std::string& name) const;

    /** Create-or-replace a blob. Returns the stored tensor. */
    Tensor& set(const std::string& name, Tensor tensor);

    /**
     * Ensure a blob exists with the given shape/dtype; reallocates
     * only when the shape differs. Returns the stored tensor.
     * In shape-only mode the blob carries no storage.
     */
    Tensor& ensure(const std::string& name, const std::vector<int64_t>& shape,
                   DType dtype = DType::kFloat32);

    /**
     * Switch the workspace to shape-only allocation: subsequent
     * ensure() calls create metadata-only tensors. Profile-only
     * sweeps use this so batch-16384 activations cost nothing.
     */
    void setShapeOnly(bool shape_only) { shapeOnly_ = shape_only; }
    bool shapeOnly() const { return shapeOnly_; }

    /** Remove a blob if present. */
    void remove(const std::string& name);

    /** Names of all blobs (unordered). */
    std::vector<std::string> names() const;

    /**
     * Total payload bytes across all blobs — real for materialized
     * tensors, would-be for shape-only ones. Callers that need to
     * distinguish should use materializedBytes() / plannedBytes().
     */
    size_t totalBytes() const;

    /**
     * Bytes of real payload this workspace owns (materialized blobs
     * with owned storage). Arena views are excluded: their bytes
     * belong to the Arena, and aliased views would double count.
     */
    size_t materializedBytes() const;

    /**
     * Would-be payload bytes of metadata-only (shapeOnly) blobs — the
     * allocation a materialized run of the same shapes would pay.
     */
    size_t plannedBytes() const;

    size_t size() const { return blobs_.size(); }

    /**
     * Attach a sharded embedding parameter store
     * (store/embedding_store.h; not owned, must outlive the
     * workspace). Embedding ops route table reads through it whenever
     * the table blob is registered in the store and not materialized
     * here — i.e. the blob is a shape-only stand-in for shared,
     * store-backed rows. A materialized local blob always wins, so
     * dense workspaces are unaffected.
     */
    void attachStore(EmbeddingStore* store) { store_ = store; }
    EmbeddingStore* store() const { return store_; }

  private:
    std::unordered_map<std::string, Tensor> blobs_;
    bool shapeOnly_ = false;
    EmbeddingStore* store_ = nullptr;
};

}  // namespace recstack

#endif  // RECSTACK_OPS_WORKSPACE_H_
