#ifndef RECSTACK_OPS_KERNELS_IMPL_H_
#define RECSTACK_OPS_KERNELS_IMPL_H_

/**
 * @file
 * Internal per-tier entry points behind the kern:: dispatch layer
 * (kernels.cc). Not part of the operator-facing API — include
 * ops/kernels.h instead.
 *
 * The avx2 symbols exist on every platform so kernels.cc links
 * unconditionally; on a build without AVX2 support
 * (RECSTACK_HAVE_AVX2_BUILD undefined) they forward to the scalar
 * tier, and the dispatch layer never selects them anyway because
 * kernelIsaSupported(kAvx2) is false.
 */

#include <cstdint>

#include "ops/kernels.h"

namespace recstack {
namespace kern {
namespace detail {

float dotBiasScalar(float bias, const float* x, const float* w, int64_t k);
void fcRowsScalar(const float* x, const float* w, const float* b, float* y,
                  int64_t lo, int64_t hi, int64_t n, int64_t k, FcAct act);
void batchMatMulRowsScalar(const float* a, const float* b, float* c,
                           int64_t lo, int64_t hi, int64_t m, int64_t k,
                           int64_t n);
void rowAddScalar(float* yrow, const float* src, int64_t dim);
void rowAddScaledScalar(float* yrow, const float* src, float scale,
                        int64_t dim);
void rowScaleScalar(float* yrow, float scale, int64_t dim);
void rowCopyScalar(float* dst, const float* src, int64_t dim);

float dotBiasAvx2(float bias, const float* x, const float* w, int64_t k);
void fcRowsAvx2(const float* x, const float* w, const float* b, float* y,
                int64_t lo, int64_t hi, int64_t n, int64_t k, FcAct act);
void batchMatMulRowsAvx2(const float* a, const float* b, float* c,
                         int64_t lo, int64_t hi, int64_t m, int64_t k,
                         int64_t n);
void rowAddAvx2(float* yrow, const float* src, int64_t dim);
void rowAddScaledAvx2(float* yrow, const float* src, float scale,
                      int64_t dim);
void rowScaleAvx2(float* yrow, float scale, int64_t dim);
void rowCopyAvx2(float* dst, const float* src, int64_t dim);

/** Shared scalar activation (applied to the fp32 accumulator). */
float applyFcAct(FcAct act, float v);

}  // namespace detail
}  // namespace kern
}  // namespace recstack

#endif  // RECSTACK_OPS_KERNELS_IMPL_H_
