#ifndef RECSTACK_OPS_GRU_H_
#define RECSTACK_OPS_GRU_H_

/**
 * @file
 * GRULayer: a full gated-recurrent-unit layer over a sequence, the
 * interest-evolution machinery of DIEN. Supports the plain GRU and
 * the attentional-update AUGRU variant DIEN stacks on top.
 */

#include "ops/operator.h"

namespace recstack {

/**
 * GRU layer over a [T, B, I] input sequence.
 *
 * Inputs:  x [T, B, I], h0 [B, H], wx [3H, I], wh [3H, H], bias [3H]
 *          and, when attentional, att [T, B] per-step attention scores.
 * Outputs: hseq [T, B, H], hlast [B, H]
 *
 * Gate math (per step t):
 *   r = sigmoid(Wx_r x + Wh_r h + b_r)
 *   z = sigmoid(Wx_z x + Wh_z h + b_z)      (AUGRU: z *= att[t])
 *   n = tanh   (Wx_n x + r * (Wh_n h) + b_n)
 *   h = (1 - z) * n + z * h
 */
class GRULayerOp : public Operator
{
  public:
    GRULayerOp(std::string name, std::string x, std::string h0,
               std::string wx, std::string wh, std::string bias,
               std::string hseq, std::string hlast,
               std::string att = "");

    void inferShapes(Workspace& ws) override;
    void run(Workspace& ws) override;
    KernelProfile profile(const Workspace& ws) const override;

    bool attentional() const { return attentional_; }

  private:
    bool attentional_;
};

OperatorPtr makeGRULayer(std::string name, std::string x, std::string h0,
                         std::string wx, std::string wh, std::string bias,
                         std::string hseq, std::string hlast,
                         std::string att = "");

}  // namespace recstack

#endif  // RECSTACK_OPS_GRU_H_
