#include "workload/rate_envelope.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace recstack {

RateEnvelope
RateEnvelope::constant()
{
    return RateEnvelope();
}

RateEnvelope
RateEnvelope::diurnal(double period_seconds, double trough_fraction,
                      double peak_time_seconds)
{
    RECSTACK_CHECK(period_seconds > 0.0, "envelope period must be > 0");
    RECSTACK_CHECK(trough_fraction > 0.0 && trough_fraction <= 1.0,
                   "trough fraction must be in (0, 1]");
    RateEnvelope env;
    env.kind_ = Kind::kDiurnal;
    env.period_ = period_seconds;
    env.trough_ = trough_fraction;
    env.peakTime_ = peak_time_seconds;
    return env;
}

RateEnvelope
RateEnvelope::piecewise(std::vector<double> times,
                        std::vector<double> multipliers)
{
    RECSTACK_CHECK(!times.empty(), "piecewise envelope needs knots");
    RECSTACK_CHECK(times.size() == multipliers.size(),
                   "times/multipliers length mismatch");
    double peak = 0.0;
    for (size_t i = 0; i < times.size(); ++i) {
        RECSTACK_CHECK(multipliers[i] > 0.0,
                       "envelope multipliers must be > 0");
        RECSTACK_CHECK(i == 0 || times[i] > times[i - 1],
                       "envelope knot times must be strictly increasing");
        peak = std::max(peak, multipliers[i]);
    }
    // Normalize so the maximum knot is exactly 1.0: the envelope's
    // contract is peak == 1, which makes the thinning bound tight.
    for (double& m : multipliers) {
        m /= peak;
    }
    RateEnvelope env;
    env.kind_ = Kind::kPiecewise;
    env.times_ = std::move(times);
    env.values_ = std::move(multipliers);
    return env;
}

double
RateEnvelope::at(double t) const
{
    switch (kind_) {
      case Kind::kConstant:
        return 1.0;
      case Kind::kDiurnal: {
        const double phase =
            2.0 * M_PI * (t - peakTime_) / period_;
        return trough_ +
               (1.0 - trough_) * 0.5 * (1.0 + std::cos(phase));
      }
      case Kind::kPiecewise: {
        if (t <= times_.front()) {
            return values_.front();
        }
        if (t >= times_.back()) {
            return values_.back();
        }
        const auto it =
            std::upper_bound(times_.begin(), times_.end(), t);
        const size_t hi = static_cast<size_t>(it - times_.begin());
        const size_t lo = hi - 1;
        const double frac =
            (t - times_[lo]) / (times_[hi] - times_[lo]);
        return values_[lo] + frac * (values_[hi] - values_[lo]);
      }
    }
    return 1.0;
}

ModulatedPoissonProcess::ModulatedPoissonProcess(double base_rate_qps,
                                                 RateEnvelope envelope,
                                                 uint64_t seed)
    : process_(base_rate_qps, seed),
      envelope_(std::move(envelope)),
      // A distinct stream for acceptance draws keeps the candidate
      // clock identical to the homogeneous process at any envelope.
      accept_(seed ^ 0xd1b54a32d192ed03ull)
{
}

double
ModulatedPoissonProcess::next()
{
    while (true) {
        const double t = process_.next();
        // Constant envelope: multiplier is 1 everywhere, every
        // candidate is accepted and no acceptance randomness is
        // drawn, so the stream is bit-identical to PoissonProcess.
        if (envelope_.isConstant()) {
            return t;
        }
        if (accept_.nextDouble() < envelope_.at(t)) {
            return t;
        }
    }
}

}  // namespace recstack
