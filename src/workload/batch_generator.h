#ifndef RECSTACK_WORKLOAD_BATCH_GENERATOR_H_
#define RECSTACK_WORKLOAD_BATCH_GENERATOR_H_

/**
 * @file
 * Inference input synthesis.
 *
 * The paper's study uses untrained models and synthetic inference
 * inputs (only compute matters, not accuracy), with batch sizes from
 * 1 to 16384. BatchGenerator materializes per-batch inputs for a
 * model's declared feature schema and accounts the data-loading work
 * that the paper's end-to-end timings include.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ops/workspace.h"
#include "profile/kernel_profile.h"

namespace recstack {

/**
 * Open-loop Poisson arrival clock: successive calls to next() return
 * the absolute timestamps of a Poisson process with the given mean
 * rate. Deterministic given the seed, so the analytical serving
 * simulator and the threaded serving engine can replay bit-identical
 * query streams (the load DeepRecSys-style query generators emit).
 */
class PoissonProcess
{
  public:
    /**
     * @param rate_qps mean arrivals per second (> 0)
     * @param seed     RNG seed; same seed => same timestamp stream
     */
    PoissonProcess(double rate_qps, uint64_t seed);

    /** Timestamp of the next arrival (strictly increasing). */
    double next();

    double rate() const { return rate_; }

  private:
    double rate_;
    Rng rng_;
    double now_ = 0.0;
};

/** One sparse (embedding) input feature group. */
struct CategoricalFeatureSpec {
    std::string indicesBlob;       ///< int64 [batch * lookups]
    std::string lengthsBlob;       ///< int32 [batch]
    int64_t tableRows = 0;         ///< index domain
    int64_t lookupsPerSample = 1;  ///< pooling factor
    double zipfExponent = 0.0;     ///< index skew
    /// Optional per-lookup weights blob (position-weighted pooling,
    /// SparseLengthsWeightedSum); empty when unweighted.
    std::string weightsBlob;
};

/** One dense input feature group. */
struct ContinuousFeatureSpec {
    std::string blob;              ///< float [batch, dim]
    int64_t dim = 0;
};

/** Full input schema of a model. */
struct WorkloadSpec {
    std::vector<CategoricalFeatureSpec> categorical;
    std::vector<ContinuousFeatureSpec> continuous;
};

/**
 * Materializes inference batches for a WorkloadSpec and prices the
 * data-loading step.
 */
class BatchGenerator
{
  public:
    BatchGenerator(WorkloadSpec spec, uint64_t seed = 42);

    /** Create/fill all input blobs for the given batch size. */
    void materialize(Workspace& ws, int64_t batch);

    /** Create all input blobs as shape-only (profile-only sweeps). */
    void declare(Workspace& ws, int64_t batch) const;

    /**
     * Abstract cost of loading one batch from the serving wire format
     * into framework tensors (deserialize + copy); the paper includes
     * this in end-to-end inference time.
     */
    KernelProfile dataLoadProfile(int64_t batch) const;

    /** Bytes a batch occupies on the wire (PCIe transfer size). */
    uint64_t inputBytes(int64_t batch) const;

    const WorkloadSpec& spec() const { return spec_; }

  private:
    WorkloadSpec spec_;
    uint64_t seed_;
};

}  // namespace recstack

#endif  // RECSTACK_WORKLOAD_BATCH_GENERATOR_H_
