#include "workload/batch_generator.h"

#include <cmath>

#include "common/rng.h"
#include "ops/op_costs.h"

namespace recstack {

PoissonProcess::PoissonProcess(double rate_qps, uint64_t seed)
    : rate_(rate_qps), rng_(seed)
{
    RECSTACK_CHECK(rate_ > 0.0, "arrival rate must be > 0");
}

double
PoissonProcess::next()
{
    now_ += -std::log(1.0 - rng_.nextDouble()) / rate_;
    return now_;
}

BatchGenerator::BatchGenerator(WorkloadSpec spec, uint64_t seed)
    : spec_(std::move(spec)), seed_(seed)
{
}

void
BatchGenerator::materialize(Workspace& ws, int64_t batch)
{
    RECSTACK_CHECK(batch > 0, "batch size must be positive");
    Rng rng(seed_ ^ static_cast<uint64_t>(batch) * 0x9e3779b9ull);

    for (const auto& cat : spec_.categorical) {
        const int64_t total = batch * cat.lookupsPerSample;
        Tensor indices({total}, DType::kInt64);
        int64_t* idx = indices.data<int64_t>();
        // ZipfSampler degenerates to uniform at exponent 0 with the
        // identical nextBounded draw, so one synthesis path covers
        // both skewed and uniform tables bit-for-bit.
        const ZipfSampler zipf(static_cast<uint64_t>(cat.tableRows),
                               cat.zipfExponent);
        fillZipfIndices(zipf, rng, idx, total);
        ws.set(cat.indicesBlob, std::move(indices));

        Tensor lengths({batch}, DType::kInt32);
        int32_t* len = lengths.data<int32_t>();
        for (int64_t b = 0; b < batch; ++b) {
            len[b] = static_cast<int32_t>(cat.lookupsPerSample);
        }
        ws.set(cat.lengthsBlob, std::move(lengths));

        if (!cat.weightsBlob.empty()) {
            Tensor weights({total});
            float* w = weights.data<float>();
            for (int64_t i = 0; i < total; ++i) {
                w[i] = rng.nextFloat(0.0f, 1.0f);
            }
            ws.set(cat.weightsBlob, std::move(weights));
        }
    }

    for (const auto& cont : spec_.continuous) {
        Tensor dense({batch, cont.dim});
        float* x = dense.data<float>();
        for (int64_t i = 0; i < batch * cont.dim; ++i) {
            x[i] = rng.nextFloat(-1.0f, 1.0f);
        }
        ws.set(cont.blob, std::move(dense));
    }
}

void
BatchGenerator::declare(Workspace& ws, int64_t batch) const
{
    RECSTACK_CHECK(batch > 0, "batch size must be positive");
    for (const auto& cat : spec_.categorical) {
        ws.set(cat.indicesBlob,
               Tensor::shapeOnly({batch * cat.lookupsPerSample},
                                 DType::kInt64));
        ws.set(cat.lengthsBlob,
               Tensor::shapeOnly({batch}, DType::kInt32));
        if (!cat.weightsBlob.empty()) {
            ws.set(cat.weightsBlob,
                   Tensor::shapeOnly({batch * cat.lookupsPerSample}));
        }
    }
    for (const auto& cont : spec_.continuous) {
        ws.set(cont.blob, Tensor::shapeOnly({batch, cont.dim}));
    }
}

uint64_t
BatchGenerator::inputBytes(int64_t batch) const
{
    uint64_t bytes = 0;
    for (const auto& cat : spec_.categorical) {
        bytes += static_cast<uint64_t>(batch) *
                 (static_cast<uint64_t>(cat.lookupsPerSample) * 8 + 4);
        if (!cat.weightsBlob.empty()) {
            bytes += static_cast<uint64_t>(
                         batch * cat.lookupsPerSample) * 4;
        }
    }
    for (const auto& cont : spec_.continuous) {
        bytes += static_cast<uint64_t>(batch * cont.dim) * 4;
    }
    return bytes;
}

KernelProfile
BatchGenerator::dataLoadProfile(int64_t batch) const
{
    KernelProfile kp;
    kp.opType = "DataLoad";
    kp.opName = "data_load";
    const uint64_t bytes = inputBytes(batch);

    // Deserialize + copy into framework tensors: one read of the wire
    // buffer, one write into blobs, plus per-sample parsing glue.
    kp.vecElemOps = bytes / 4;
    kp.scalarOps = static_cast<uint64_t>(batch) *
                   (spec_.categorical.size() * 12 +
                    spec_.continuous.size() * 4) + 256;

    MemStream wire;
    wire.region = "wire:input";
    wire.pattern = AccessPattern::kSequential;
    wire.chunkBytes = 64;
    wire.accesses = (bytes + 63) / 64;
    wire.footprintBytes = bytes;
    wire.mlp = opcost::kMlpSequential;
    kp.streams.push_back(wire);

    MemStream blobs = wire;
    blobs.region = "blob:inputs";
    blobs.isWrite = true;
    kp.streams.push_back(blobs);

    BranchStream parse;
    parse.count = static_cast<uint64_t>(batch) *
                  (spec_.categorical.size() + spec_.continuous.size() + 1);
    parse.takenProbability = 0.85;
    parse.randomness = 0.3;
    kp.branches.push_back(parse);

    kp.codeFootprintBytes = 4096;
    kp.codeRegion = "kernel:DataLoad";
    kp.codeIterations = std::max<uint64_t>(1, bytes / 256);
    kp.dispatchOps = opcost::kDispatchOps;
    kp.dispatchCodeBytes = opcost::kDispatchCodeBytes;
    return kp;
}

}  // namespace recstack
