#ifndef RECSTACK_WORKLOAD_RATE_ENVELOPE_H_
#define RECSTACK_WORKLOAD_RATE_ENVELOPE_H_

/**
 * @file
 * Rate envelopes: deterministic time-varying arrival-rate modulation.
 *
 * Production recommendation traffic is not stationary — fleets absorb
 * diurnal swings where the trough runs at a fraction of the peak
 * (Gupta et al., arXiv 1906.03109). A RateEnvelope is a pure function
 * multiplier(t) in (0, 1] that scales a base arrival rate over time;
 * ModulatedPoissonProcess layers it on the shared PoissonProcess via
 * thinning (Lewis & Shedler): candidates are drawn from a homogeneous
 * process at the peak rate and accepted with probability
 * multiplier(t), which samples exactly the non-homogeneous Poisson
 * process with rate base * multiplier(t). Everything is seeded, so
 * the same seed replays the identical arrival sequence — the fleet
 * simulator and any differential test see the same stream.
 */

#include <cstdint>
#include <vector>

#include "workload/batch_generator.h"

namespace recstack {

/**
 * Deterministic rate multiplier over time, normalized so the peak is
 * exactly 1.0 (the thinning envelope bound).
 */
class RateEnvelope
{
  public:
    /** Flat multiplier 1.0 — modulation disabled. */
    static RateEnvelope constant();

    /**
     * Sinusoidal diurnal swing: multiplier(t) = trough +
     * (1 - trough) * (1 + cos(2*pi*(t - peakTime)/period)) / 2, i.e.
     * 1.0 at @c peak_time_seconds, @c trough_fraction half a period
     * later.
     *
     * @param period_seconds   full day length in virtual seconds (> 0)
     * @param trough_fraction  trough rate as a fraction of peak,
     *                         in (0, 1]
     * @param peak_time_seconds virtual time of the first peak
     */
    static RateEnvelope diurnal(double period_seconds,
                                double trough_fraction,
                                double peak_time_seconds = 0.0);

    /**
     * Piecewise-linear envelope through (time, multiplier) knots
     * (times strictly increasing, multipliers in (0, 1], at least one
     * knot equal to 1.0 after normalization — the constructor rescales
     * so the maximum knot is exactly 1.0). Before the first knot the
     * first value holds; after the last knot the last value holds.
     */
    static RateEnvelope piecewise(std::vector<double> times,
                                  std::vector<double> multipliers);

    /** Multiplier at virtual time @c t, in (0, 1]. */
    double at(double t) const;

    /** True for the constant() envelope (thinning can be skipped). */
    bool isConstant() const { return kind_ == Kind::kConstant; }

  private:
    enum class Kind { kConstant, kDiurnal, kPiecewise };

    RateEnvelope() = default;

    Kind kind_ = Kind::kConstant;
    double period_ = 86400.0;
    double trough_ = 1.0;
    double peakTime_ = 0.0;
    std::vector<double> times_;
    std::vector<double> values_;
};

/**
 * Non-homogeneous Poisson arrival clock: rate(t) = base * envelope(t),
 * sampled by thinning a homogeneous PoissonProcess at the base
 * (= peak) rate. With the constant() envelope no acceptance draws are
 * made, so the timestamp stream is bit-identical to
 * PoissonProcess(base, seed) — existing consumers can switch to the
 * modulated clock without perturbing any golden sequence.
 */
class ModulatedPoissonProcess
{
  public:
    /**
     * @param base_rate_qps peak arrival rate (> 0); the instantaneous
     *                      rate is base_rate_qps * envelope.at(t)
     * @param envelope      rate envelope (multiplier <= 1 everywhere)
     * @param seed          RNG seed; same seed => same stream
     */
    ModulatedPoissonProcess(double base_rate_qps, RateEnvelope envelope,
                            uint64_t seed);

    /** Timestamp of the next accepted arrival (strictly increasing). */
    double next();

    double baseRate() const { return process_.rate(); }
    const RateEnvelope& envelope() const { return envelope_; }

  private:
    PoissonProcess process_;
    RateEnvelope envelope_;
    Rng accept_;
};

}  // namespace recstack

#endif  // RECSTACK_WORKLOAD_RATE_ENVELOPE_H_
