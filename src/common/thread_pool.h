#ifndef RECSTACK_COMMON_THREAD_POOL_H_
#define RECSTACK_COMMON_THREAD_POOL_H_

/**
 * @file
 * Chunked-range thread pool for intra-operator parallelism.
 *
 * Every numeric kernel in src/ops/ parallelizes through the free
 * function parallelFor(begin, end, grain, fn): the range is split
 * statically into at most `width` near-equal contiguous chunks (each
 * at least `grain` elements) and the chunks run on a process-wide
 * pool of reused worker threads, the calling thread executing the
 * last chunk itself. Kernels partition *output* elements, so chunks
 * never share a destination and no reduction crosses a chunk
 * boundary — parallel execution is bit-identical to serial for any
 * thread count (tests/test_parallel_equivalence.cc locks this down).
 *
 * The effective width is resolved per calling thread:
 *
 *   1. an active IntraOpScope on this thread (Executor::run installs
 *      one from ExecOptions::numThreads),
 *   2. else the programmatic default set by setIntraOpThreads(),
 *   3. else the RECSTACK_NUM_THREADS environment variable,
 *   4. else std::thread::hardware_concurrency().
 *
 * parallelFor calls from inside a pool worker (nested parallelism)
 * degrade to serial inline execution — the pool never deadlocks on
 * its own workers. Concurrent parallelFor calls from independent
 * threads (e.g. ServingEngine workers) share the same pool; their
 * chunk tasks interleave in the submission queue.
 */

#include <cstdint>
#include <functional>

namespace recstack {

/** Chunk body: processes the half-open element range [lo, hi). */
using RangeFn = std::function<void(int64_t lo, int64_t hi)>;

/**
 * Run fn over disjoint contiguous chunks covering [begin, end).
 *
 * Chunks are at least max(grain, 1) elements (except possibly when
 * the range itself is smaller) and are assigned statically: the
 * partition depends only on (begin, end, grain, width), never on
 * scheduling. Empty ranges return without invoking fn. With an
 * effective width of 1 — or when the range yields a single chunk —
 * fn(begin, end) runs inline on the caller, byte-for-byte the serial
 * path.
 */
void parallelFor(int64_t begin, int64_t end, int64_t grain,
                 const RangeFn& fn);

/**
 * Grain (elements per chunk) so each chunk carries at least
 * `min_cost` units of work when one element costs `cost_per_item`.
 * Keeps tiny kernels serial instead of paying dispatch latency.
 */
int64_t grainForCost(uint64_t cost_per_item, uint64_t min_cost = 16384);

/**
 * Set the process-wide default intra-op width. 0 restores the
 * environment default (RECSTACK_NUM_THREADS, else hardware
 * concurrency). Thread-safe.
 */
void setIntraOpThreads(int num_threads);

/** The width parallelFor would use on this thread right now. */
int intraOpThreads();

/**
 * RAII override of the calling thread's intra-op width; this is how
 * ExecOptions::numThreads reaches the kernels without threading an
 * argument through every Operator::run signature. 0 = inherit the
 * process default (no-op scope).
 */
class IntraOpScope
{
  public:
    explicit IntraOpScope(int num_threads);
    ~IntraOpScope();

    IntraOpScope(const IntraOpScope&) = delete;
    IntraOpScope& operator=(const IntraOpScope&) = delete;

  private:
    int prev_;
};

}  // namespace recstack

#endif  // RECSTACK_COMMON_THREAD_POOL_H_
