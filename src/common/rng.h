#ifndef RECSTACK_COMMON_RNG_H_
#define RECSTACK_COMMON_RNG_H_

/**
 * @file
 * Deterministic pseudo-random number generation for workload and trace
 * synthesis. Every stochastic component in recstack draws from an Rng
 * seeded explicitly so experiments are exactly reproducible.
 */

#include <cstdint>
#include <vector>

namespace recstack {

/**
 * xoshiro256** PRNG. Fast, high quality, and trivially seedable; the
 * state is expanded from a 64-bit seed with SplitMix64.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound), bound > 0. */
    uint64_t nextBounded(uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform float in [lo, hi). */
    float nextFloat(float lo, float hi);

    /** Gaussian(0, 1) via Box-Muller. */
    double nextGaussian();

    /** Bernoulli draw with probability p of returning true. */
    bool nextBool(double p);

  private:
    uint64_t state_[4];
    bool haveSpareGaussian_ = false;
    double spareGaussian_ = 0.0;
};

/**
 * Zipfian sampler over [0, n): pre-computes the harmonic normalization
 * so draws are O(log n) via inverse-CDF binary search on a table of
 * bucketed prefix sums.
 *
 * Used to model skewed embedding-table access (hot entries), the
 * regime production recommendation traffic exhibits.
 */
class ZipfSampler
{
  public:
    /**
     * @param n        population size (> 0)
     * @param exponent skew parameter s >= 0; s == 0 degenerates to uniform
     */
    ZipfSampler(uint64_t n, double exponent);

    uint64_t sample(Rng& rng) const;

    /**
     * P(sample < k) under this sampler's bucketed model — the exact
     * distribution sample() draws from, so analytical expectations
     * (e.g. the hit rate of a cache holding the k hottest rows) can
     * be compared against measured frequencies without re-deriving
     * the harmonic sums. Clamped to [0, 1]; exponent <= 0 gives the
     * uniform k / n.
     */
    double cdf(uint64_t k) const;

    uint64_t population() const { return n_; }
    double exponent() const { return exponent_; }

  private:
    uint64_t n_;
    double exponent_;
    std::vector<double> cdf_;       // coarse CDF over kBuckets buckets
    std::vector<uint64_t> bucketLo_;
};

/**
 * Fill `dst[0, count)` with indices drawn from `zipf`. The single
 * synthesis routine every skewed index stream goes through
 * (workload/batch_generator, store benchmarks, tests) so they all see
 * the identical draw sequence for a given Rng state; ZipfSampler
 * itself degenerates to uniform when its exponent is <= 0.
 */
void fillZipfIndices(const ZipfSampler& zipf, Rng& rng, int64_t* dst,
                     int64_t count);

}  // namespace recstack

#endif  // RECSTACK_COMMON_RNG_H_
