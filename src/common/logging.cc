#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace recstack {
namespace {

bool g_verbose = true;

const char* levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::kInform: return "info";
      case LogLevel::kWarn: return "warn";
      case LogLevel::kFatal: return "fatal";
      case LogLevel::kPanic: return "panic";
    }
    return "?";
}

}  // namespace

void setVerbose(bool verbose) { g_verbose = verbose; }
bool verbose() { return g_verbose; }

namespace detail {

void log(LogLevel level, const char* file, int line, const std::string& msg)
{
    if (level == LogLevel::kInform) {
        if (g_verbose) {
            std::fprintf(stdout, "%s\n", msg.c_str());
        }
        return;
    }
    std::fprintf(stderr, "[%s] %s:%d: %s\n", levelTag(level), file, line,
                 msg.c_str());
}

void logAndDie(LogLevel level, const char* file, int line,
               const std::string& msg)
{
    std::fprintf(stderr, "[%s] %s:%d: %s\n", levelTag(level), file, line,
                 msg.c_str());
    if (level == LogLevel::kPanic) {
        std::abort();
    }
    std::exit(1);
}

}  // namespace detail
}  // namespace recstack
