#include "common/thread_pool.h"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace recstack {
namespace {

/// Workers a single process may ever spawn; far above any sane
/// RECSTACK_NUM_THREADS, this only guards against typos like "10000".
constexpr int kMaxPoolThreads = 256;

/// Set on pool worker threads so nested parallelFor degrades to
/// serial inline execution instead of deadlocking on its own pool.
thread_local bool tls_in_pool_worker = false;

/// Per-thread width override installed by IntraOpScope (0 = none).
thread_local int tls_intra_op_width = 0;

int
envDefaultThreads()
{
    static const int cached = [] {
        if (const char* env = std::getenv("RECSTACK_NUM_THREADS")) {
            char* end = nullptr;
            const long v = std::strtol(env, &end, 10);
            if (end != env && *end == '\0' && v >= 1) {
                return static_cast<int>(
                    std::min<long>(v, kMaxPoolThreads));
            }
            RECSTACK_WARN("ignoring invalid RECSTACK_NUM_THREADS='"
                          << env << "'");
        }
        const unsigned hw = std::thread::hardware_concurrency();
        return hw >= 1 ? static_cast<int>(hw) : 1;
    }();
    return cached;
}

/** Process-wide reused-worker pool executing chunk tasks. */
class Pool
{
  public:
    static Pool& instance()
    {
        static Pool* pool = new Pool();  // intentionally leaked:
        return *pool;  // workers may outlive static destruction order
    }

    void run(int64_t begin, int64_t end, int64_t grain, int width,
             const RangeFn& fn)
    {
        const int64_t n = end - begin;
        grain = std::max<int64_t>(1, grain);
        const int64_t max_parts = (n + grain - 1) / grain;
        const int parts = static_cast<int>(std::min<int64_t>(
            std::max(1, width), max_parts));
        if (parts <= 1 || tls_in_pool_worker) {
            fn(begin, end);
            return;
        }
        {
            static obs::Counter& chunks =
                obs::MetricsRegistry::global().counter("pool.chunks");
            chunks.add(static_cast<uint64_t>(parts));
        }
        ensureWorkers(parts - 1);

        // Static partition: `parts` contiguous chunks of near-equal
        // size, a pure function of (begin, end, grain, width).
        const int64_t base = n / parts;
        const int64_t rem = n % parts;
        Completion done(parts - 1);
        {
            std::lock_guard<std::mutex> lock(mu_);
            int64_t lo = begin;
            for (int p = 0; p < parts - 1; ++p) {
                const int64_t hi = lo + base + (p < rem ? 1 : 0);
                tasks_.push_back(Task{&fn, lo, hi, &done});
                lo = hi;
            }
        }
        cv_.notify_all();
        // The caller owns the last chunk.
        {
            RECSTACK_SPAN("pool.chunk",
                          {{"lo", end - base}, {"hi", end}});
            fn(end - base, end);
        }
        done.wait();
    }

  private:
    struct Completion {
        explicit Completion(int count) : remaining(count) {}

        void finishOne()
        {
            std::lock_guard<std::mutex> lock(mu);
            if (--remaining == 0) {
                cv.notify_one();
            }
        }

        void wait()
        {
            std::unique_lock<std::mutex> lock(mu);
            cv.wait(lock, [this] { return remaining == 0; });
        }

        std::mutex mu;
        std::condition_variable cv;
        int remaining;
    };

    struct Task {
        const RangeFn* fn;
        int64_t lo;
        int64_t hi;
        Completion* done;
    };

    Pool() = default;

    void ensureWorkers(int needed)
    {
        needed = std::min(needed, kMaxPoolThreads);
        std::lock_guard<std::mutex> lock(mu_);
        while (static_cast<int>(workers_.size()) < needed) {
            workers_.emplace_back([this] { workerLoop(); });
        }
    }

    void workerLoop()
    {
        tls_in_pool_worker = true;
        for (;;) {
            Task task;
            {
                std::unique_lock<std::mutex> lock(mu_);
                cv_.wait(lock, [this] { return !tasks_.empty(); });
                task = tasks_.front();
                tasks_.pop_front();
            }
            {
                // Scoped so the span commits before finishOne() can
                // release a caller that might snapshot the buffer.
                RECSTACK_SPAN("pool.chunk",
                              {{"lo", task.lo}, {"hi", task.hi}});
                (*task.fn)(task.lo, task.hi);
            }
            task.done->finishOne();
        }
    }

    std::mutex mu_;
    std::condition_variable cv_;
    std::deque<Task> tasks_;
    std::vector<std::thread> workers_;  // detached on process exit
};

/// Process default width; 0 = fall back to the environment default.
std::mutex g_default_mu;
int g_default_width = 0;

int
processDefaultThreads()
{
    {
        std::lock_guard<std::mutex> lock(g_default_mu);
        if (g_default_width > 0) {
            return g_default_width;
        }
    }
    return envDefaultThreads();
}

}  // namespace

void
parallelFor(int64_t begin, int64_t end, int64_t grain, const RangeFn& fn)
{
    if (end <= begin) {
        return;
    }
    const int width = intraOpThreads();
    if (width <= 1) {
        // Serial path stays span-free: this is the default width and
        // must carry zero instrumentation cost.
        fn(begin, end);
        return;
    }
    {
        static obs::Counter& calls =
            obs::MetricsRegistry::global().counter("pool.parallel_for");
        calls.add();
    }
    Pool::instance().run(begin, end, grain, width, fn);
}

int64_t
grainForCost(uint64_t cost_per_item, uint64_t min_cost)
{
    cost_per_item = std::max<uint64_t>(1, cost_per_item);
    return static_cast<int64_t>(
        std::max<uint64_t>(1, min_cost / cost_per_item));
}

void
setIntraOpThreads(int num_threads)
{
    RECSTACK_CHECK(num_threads >= 0,
                   "intra-op thread count must be >= 0, got "
                       << num_threads);
    std::lock_guard<std::mutex> lock(g_default_mu);
    g_default_width = std::min(num_threads, kMaxPoolThreads);
}

int
intraOpThreads()
{
    if (tls_intra_op_width > 0) {
        return tls_intra_op_width;
    }
    return processDefaultThreads();
}

IntraOpScope::IntraOpScope(int num_threads) : prev_(tls_intra_op_width)
{
    RECSTACK_CHECK(num_threads >= 0,
                   "intra-op thread count must be >= 0, got "
                       << num_threads);
    if (num_threads > 0) {
        tls_intra_op_width = std::min(num_threads, kMaxPoolThreads);
    }
}

IntraOpScope::~IntraOpScope()
{
    tls_intra_op_width = prev_;
}

}  // namespace recstack
