#include "common/cpu_features.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace recstack {
namespace {

/// Encoding of the override / cache atomics: -1 = unset, else the
/// KernelIsa enumerator value.
constexpr int kUnset = -1;

std::atomic<int> process_override{kUnset};
std::atomic<int> env_cache{kUnset};

/// Thread-local IsaScope stack top; kUnset when no scope is active.
thread_local int scope_isa = kUnset;

bool
hostHasAvx2()
{
#if defined(RECSTACK_HAVE_AVX2_BUILD) && \
    (defined(__x86_64__) || defined(__i386__))
    return __builtin_cpu_supports("avx2") &&
           __builtin_cpu_supports("fma");
#else
    return false;
#endif
}

}  // namespace

const char*
kernelIsaName(KernelIsa isa)
{
    switch (isa) {
      case KernelIsa::kScalar: return "scalar";
      case KernelIsa::kAvx2: return "avx2";
    }
    return "?";
}

bool
kernelIsaSupported(KernelIsa isa)
{
    switch (isa) {
      case KernelIsa::kScalar:
        return true;
      case KernelIsa::kAvx2: {
        // The CPUID probe is constant for the process lifetime; cache
        // it so activeKernelIsa stays a couple of atomic loads.
        static const bool supported = hostHasAvx2();
        return supported;
      }
    }
    return false;
}

KernelIsa
detectKernelIsa()
{
    return kernelIsaSupported(KernelIsa::kAvx2) ? KernelIsa::kAvx2
                                                : KernelIsa::kScalar;
}

KernelIsa
resolveKernelIsa(const char* spec, std::string* why)
{
    if (spec == nullptr || spec[0] == '\0') {
        return detectKernelIsa();
    }
    if (std::strcmp(spec, "scalar") == 0) {
        return KernelIsa::kScalar;
    }
    if (std::strcmp(spec, "avx2") == 0) {
        if (kernelIsaSupported(KernelIsa::kAvx2)) {
            return KernelIsa::kAvx2;
        }
        if (why != nullptr) {
            *why = "avx2 requested but this host/build does not "
                   "support AVX2+FMA; using scalar";
        }
        return KernelIsa::kScalar;
    }
    if (why != nullptr) {
        *why = std::string("unknown RECSTACK_ISA value '") + spec +
               "' (expected 'scalar' or 'avx2'); using scalar";
    }
    return KernelIsa::kScalar;
}

KernelIsa
activeKernelIsa()
{
    if (scope_isa != kUnset) {
        return static_cast<KernelIsa>(scope_isa);
    }
    const int forced = process_override.load(std::memory_order_relaxed);
    if (forced != kUnset) {
        return static_cast<KernelIsa>(forced);
    }
    int cached = env_cache.load(std::memory_order_relaxed);
    if (cached == kUnset) {
        std::string why;
        const KernelIsa resolved =
            resolveKernelIsa(std::getenv("RECSTACK_ISA"), &why);
        if (!why.empty()) {
            RECSTACK_WARN(why);
        }
        cached = static_cast<int>(resolved);
        // Concurrent first calls race benignly: every thread resolves
        // the same environment to the same tier.
        env_cache.store(cached, std::memory_order_relaxed);
    }
    return static_cast<KernelIsa>(cached);
}

void
setKernelIsa(KernelIsa isa)
{
    if (!kernelIsaSupported(isa)) {
        RECSTACK_WARN("setKernelIsa(" << kernelIsaName(isa)
                      << "): unsupported on this host/build; "
                      << "using scalar");
        isa = KernelIsa::kScalar;
    }
    process_override.store(static_cast<int>(isa),
                           std::memory_order_relaxed);
}

void
clearKernelIsa()
{
    process_override.store(kUnset, std::memory_order_relaxed);
    env_cache.store(kUnset, std::memory_order_relaxed);
}

IsaScope::IsaScope(KernelIsa isa) : prev_(scope_isa)
{
    scope_isa = static_cast<int>(
        kernelIsaSupported(isa) ? isa : KernelIsa::kScalar);
}

IsaScope::~IsaScope()
{
    scope_isa = prev_;
}

}  // namespace recstack
