#ifndef RECSTACK_COMMON_LOGGING_H_
#define RECSTACK_COMMON_LOGGING_H_

/**
 * @file
 * Error and status reporting utilities, modeled after gem5's
 * fatal()/panic()/warn()/inform() conventions.
 *
 * fatal()  — the run cannot continue because of a user error (bad
 *            configuration, invalid argument). Exits with code 1.
 * panic()  — an internal invariant was violated (a recstack bug).
 *            Aborts so a core dump / debugger is available.
 * warn()   — something is suspicious but the run can continue.
 * inform() — plain status output.
 */

#include <sstream>
#include <string>

namespace recstack {

/** Severity of a log message. */
enum class LogLevel { kInform, kWarn, kFatal, kPanic };

namespace detail {

/** Emit a formatted message; terminates the process for kFatal/kPanic. */
[[noreturn]] void logAndDie(LogLevel level, const char* file, int line,
                            const std::string& msg);
void log(LogLevel level, const char* file, int line, const std::string& msg);

}  // namespace detail

/** Global verbosity switch: when false, inform() output is suppressed. */
void setVerbose(bool verbose);
bool verbose();

}  // namespace recstack

#define RECSTACK_MSG_(level, dead, ...)                                     \
    do {                                                                    \
        std::ostringstream recstack_oss_;                                   \
        recstack_oss_ << __VA_ARGS__;                                       \
        if constexpr (dead) {                                               \
            ::recstack::detail::logAndDie(level, __FILE__, __LINE__,        \
                                          recstack_oss_.str());             \
        } else {                                                            \
            ::recstack::detail::log(level, __FILE__, __LINE__,              \
                                    recstack_oss_.str());                   \
        }                                                                   \
    } while (0)

/** User-caused unrecoverable error. */
#define RECSTACK_FATAL(...) \
    RECSTACK_MSG_(::recstack::LogLevel::kFatal, true, __VA_ARGS__)
/** Internal invariant violation (a bug in recstack itself). */
#define RECSTACK_PANIC(...) \
    RECSTACK_MSG_(::recstack::LogLevel::kPanic, true, __VA_ARGS__)
/** Suspicious-but-survivable condition. */
#define RECSTACK_WARN(...) \
    RECSTACK_MSG_(::recstack::LogLevel::kWarn, false, __VA_ARGS__)
/** Status message (suppressed unless verbose). */
#define RECSTACK_INFORM(...) \
    RECSTACK_MSG_(::recstack::LogLevel::kInform, false, __VA_ARGS__)

/** Cheap always-on invariant check that panics with a message. */
#define RECSTACK_CHECK(cond, ...)                                           \
    do {                                                                    \
        if (!(cond)) {                                                      \
            RECSTACK_PANIC("check failed: " #cond ": " << __VA_ARGS__);     \
        }                                                                   \
    } while (0)

#endif  // RECSTACK_COMMON_LOGGING_H_
