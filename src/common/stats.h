#ifndef RECSTACK_COMMON_STATS_H_
#define RECSTACK_COMMON_STATS_H_

/**
 * @file
 * Small numeric helpers shared across the characterization pipeline:
 * running summaries, geometric means, and fixed-bucket histograms.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

namespace recstack {

/** Online mean / variance / min / max accumulator (Welford). */
class RunningStat
{
  public:
    void add(double x);

    size_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return sum_; }

  private:
    size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/** Geometric mean of a sequence of positive values. */
double geomean(const std::vector<double>& values);

/**
 * Linearly-interpolated p-quantile (p in [0, 1]) of an ascending
 * sorted sample; 0 on an empty sample. Shared by the serving
 * simulator and the multi-worker serving engine so both report
 * identical tail definitions.
 */
double percentileOfSorted(const std::vector<double>& sorted, double p);

/**
 * Fixed-width histogram over [lo, hi); out-of-range samples clamp to
 * the edge buckets. Used e.g. for functional-unit-usage distributions.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, size_t buckets);

    void add(double x, double weight = 1.0);

    size_t buckets() const { return counts_.size(); }
    double bucketLo(size_t i) const;
    double bucketHi(size_t i) const;
    double count(size_t i) const { return counts_[i]; }
    double total() const { return total_; }

    /** Fraction of mass at or above the bucket containing x. */
    double fractionAtLeast(double x) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<double> counts_;
    double total_ = 0.0;
};

}  // namespace recstack

#endif  // RECSTACK_COMMON_STATS_H_
