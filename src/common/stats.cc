#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace recstack {

void
RunningStat::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::variance() const
{
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
geomean(const std::vector<double>& values)
{
    if (values.empty()) {
        return 0.0;
    }
    double logsum = 0.0;
    for (double v : values) {
        RECSTACK_CHECK(v > 0.0, "geomean requires positive values, got " << v);
        logsum += std::log(v);
    }
    return std::exp(logsum / static_cast<double>(values.size()));
}

double
percentileOfSorted(const std::vector<double>& sorted, double p)
{
    if (sorted.empty()) {
        return 0.0;
    }
    RECSTACK_CHECK(p >= 0.0 && p <= 1.0, "quantile must be in [0, 1]");
    const double idx = p * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(idx);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0.0)
{
    RECSTACK_CHECK(hi > lo && buckets > 0, "bad histogram geometry");
}

void
Histogram::add(double x, double weight)
{
    auto idx = static_cast<long>((x - lo_) / width_);
    idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
    counts_[static_cast<size_t>(idx)] += weight;
    total_ += weight;
}

double
Histogram::bucketLo(size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

double
Histogram::bucketHi(size_t i) const
{
    return lo_ + width_ * static_cast<double>(i + 1);
}

double
Histogram::fractionAtLeast(double x) const
{
    if (total_ <= 0.0) {
        return 0.0;
    }
    auto idx = static_cast<long>((x - lo_) / width_);
    idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()));
    double mass = 0.0;
    for (size_t i = static_cast<size_t>(idx); i < counts_.size(); ++i) {
        mass += counts_[i];
    }
    return mass / total_;
}

}  // namespace recstack
