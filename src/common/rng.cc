#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace recstack {
namespace {

uint64_t splitMix64(uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto& s : state_) {
        s = splitMix64(sm);
    }
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

uint64_t
Rng::nextBounded(uint64_t bound)
{
    RECSTACK_CHECK(bound > 0, "nextBounded needs a positive bound");
    // Multiply-shift bounded generation (Lemire); bias is negligible
    // for the bounds used here and determinism is what matters.
    __uint128_t wide = static_cast<__uint128_t>(next()) * bound;
    return static_cast<uint64_t>(wide >> 64);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

float
Rng::nextFloat(float lo, float hi)
{
    return lo + static_cast<float>(nextDouble()) * (hi - lo);
}

double
Rng::nextGaussian()
{
    if (haveSpareGaussian_) {
        haveSpareGaussian_ = false;
        return spareGaussian_;
    }
    double u, v, s;
    do {
        u = 2.0 * nextDouble() - 1.0;
        v = 2.0 * nextDouble() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spareGaussian_ = v * mul;
    haveSpareGaussian_ = true;
    return u * mul;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

ZipfSampler::ZipfSampler(uint64_t n, double exponent)
    : n_(n), exponent_(exponent)
{
    RECSTACK_CHECK(n > 0, "zipf population must be positive");
    // Build a coarse CDF: split [0, n) into geometric buckets so the
    // head of the distribution (where most mass lives) is finely
    // resolved while the tail stays cheap. Within a bucket we treat
    // the mass as uniform, an approximation that is invisible at the
    // cache-line granularity the simulator consumes indices at.
    constexpr int kBuckets = 64;
    bucketLo_.reserve(kBuckets + 1);
    uint64_t lo = 0;
    uint64_t width = 1;
    while (lo < n_ && bucketLo_.size() < kBuckets) {
        bucketLo_.push_back(lo);
        lo = std::min(n_, lo + width);
        width *= 2;
    }
    bucketLo_.push_back(n_);

    cdf_.assign(bucketLo_.size() - 1, 0.0);
    double total = 0.0;
    for (size_t b = 0; b + 1 < bucketLo_.size(); ++b) {
        // Approximate sum_{k in bucket} (k+1)^-s with the integral.
        const double a = static_cast<double>(bucketLo_[b]) + 1.0;
        const double bnd = static_cast<double>(bucketLo_[b + 1]) + 1.0;
        double mass;
        if (exponent_ == 1.0) {
            mass = std::log(bnd) - std::log(a);
        } else {
            mass = (std::pow(bnd, 1.0 - exponent_) -
                    std::pow(a, 1.0 - exponent_)) / (1.0 - exponent_);
        }
        total += mass;
        cdf_[b] = total;
    }
    for (auto& c : cdf_) {
        c /= total;
    }
}

double
ZipfSampler::cdf(uint64_t k) const
{
    if (k == 0) {
        return 0.0;
    }
    if (k >= n_) {
        return 1.0;
    }
    if (exponent_ <= 0.0) {
        return static_cast<double>(k) / static_cast<double>(n_);
    }
    // Locate the bucket holding k and interpolate linearly inside it:
    // within-bucket mass is uniform by construction, so this is the
    // exact CDF of the distribution sample() draws from.
    auto it = std::upper_bound(bucketLo_.begin(), bucketLo_.end(), k);
    const size_t b = static_cast<size_t>(it - bucketLo_.begin()) - 1;
    if (b >= cdf_.size()) {
        return 1.0;
    }
    const double lo_cdf = b == 0 ? 0.0 : cdf_[b - 1];
    const double hi_cdf = cdf_[b];
    const uint64_t lo = bucketLo_[b];
    const uint64_t hi = bucketLo_[b + 1];
    const double frac = static_cast<double>(k - lo) /
                        static_cast<double>(std::max<uint64_t>(1, hi - lo));
    return std::min(1.0, lo_cdf + frac * (hi_cdf - lo_cdf));
}

uint64_t
ZipfSampler::sample(Rng& rng) const
{
    if (exponent_ <= 0.0) {
        return rng.nextBounded(n_);
    }
    const double u = rng.nextDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    const size_t b = static_cast<size_t>(it - cdf_.begin());
    const uint64_t lo = bucketLo_[std::min(b, bucketLo_.size() - 2)];
    const uint64_t hi = bucketLo_[std::min(b + 1, bucketLo_.size() - 1)];
    const uint64_t span = std::max<uint64_t>(1, hi - lo);
    return lo + rng.nextBounded(span);
}

void
fillZipfIndices(const ZipfSampler& zipf, Rng& rng, int64_t* dst,
                int64_t count)
{
    for (int64_t i = 0; i < count; ++i) {
        dst[i] = static_cast<int64_t>(zipf.sample(rng));
    }
}

}  // namespace recstack
