#ifndef RECSTACK_COMMON_CPU_FEATURES_H_
#define RECSTACK_COMMON_CPU_FEATURES_H_

/**
 * @file
 * Host-CPU feature probe and kernel-ISA dispatch for the vectorized
 * kernel tier (src/ops/kernels.h).
 *
 * Every numeric kernel dispatches through a KernelIsa tier resolved
 * once per Operator::run call (never inside a parallelFor chunk, so
 * one run never mixes tiers). The tier is resolved per calling
 * thread, mirroring the intra-op width rules in thread_pool.h:
 *
 *   1. an active IsaScope on this thread (Executor's compiled fast
 *      path installs one from NetPlan::kernelIsa, so a plan lowered
 *      for a tier always executes with that tier),
 *   2. else the programmatic default set by setKernelIsa(),
 *   3. else the RECSTACK_ISA environment variable ("scalar" or
 *      "avx2"; anything else warns once and falls back to scalar),
 *   4. else the best tier the host CPU — and this build — supports.
 *
 * The scalar tier is always available and is byte-identical to the
 * original pre-SIMD kernels; requesting "avx2" on a host (or build)
 * without AVX2+FMA demotes to scalar with a warning instead of
 * crashing (docs/vectorization.md describes the tolerance policy per
 * kernel family).
 */

#include <string>

namespace recstack {

/** A vectorization tier of the numeric kernels. */
enum class KernelIsa {
    kScalar,  ///< portable scalar loops; the reference numerics
    kAvx2,    ///< AVX2 + FMA intrinsics (x86-64 only)
};

/** Human-readable tier name ("scalar", "avx2"). */
const char* kernelIsaName(KernelIsa isa);

/**
 * True when this host can execute @c isa AND the binary was built
 * with the matching kernels (a non-x86 or old-compiler build reports
 * false for kAvx2 even on an AVX2 host). kScalar is always true.
 */
bool kernelIsaSupported(KernelIsa isa);

/** Best supported tier of this host + build. */
KernelIsa detectKernelIsa();

/**
 * Pure resolution of an ISA request string (what the RECSTACK_ISA
 * environment variable and the CLI accept):
 *
 *   - nullptr / ""         -> detectKernelIsa()
 *   - "scalar"             -> kScalar
 *   - "avx2"               -> kAvx2 when supported, else kScalar
 *   - anything else        -> kScalar
 *
 * Never fatal. When the request could not be honored verbatim,
 * @c why (optional) receives a one-line explanation and the caller
 * is expected to warn; resolveKernelIsa itself does not log, which
 * keeps it a pure function for the dispatch property tests.
 */
KernelIsa resolveKernelIsa(const char* spec, std::string* why = nullptr);

/**
 * The tier kernels dispatch to on this thread right now. Resolution
 * is cached; repeated calls under an unchanged configuration return
 * the same tier (the stability property the dispatch tests pin).
 */
KernelIsa activeKernelIsa();

/**
 * Set the process-wide kernel tier programmatically (tests, benches,
 * the golden-figure regeneration pin). Demotes to scalar with a
 * warning when @c isa is unsupported. Thread-safe.
 */
void setKernelIsa(KernelIsa isa);

/**
 * Drop the programmatic override and re-read RECSTACK_ISA on the
 * next activeKernelIsa() call (tests flip the environment variable
 * between runs; production processes never need this).
 */
void clearKernelIsa();

/**
 * RAII override of the calling thread's kernel tier; how a compiled
 * plan's lowering-time ISA choice reaches the kernels without
 * threading an argument through every Operator::run signature.
 */
class IsaScope
{
  public:
    explicit IsaScope(KernelIsa isa);
    ~IsaScope();

    IsaScope(const IsaScope&) = delete;
    IsaScope& operator=(const IsaScope&) = delete;

  private:
    int prev_;
};

}  // namespace recstack

#endif  // RECSTACK_COMMON_CPU_FEATURES_H_
