#ifndef RECSTACK_ANALYSIS_LINREG_H_
#define RECSTACK_ANALYSIS_LINREG_H_

/**
 * @file
 * Ordinary-least-squares linear regression with z-scored features,
 * the modeling tool of the paper's Section VI-C (Fig. 16): input
 * features are normalized so weight magnitudes are directly
 * comparable as "degree of impact".
 */

#include <string>
#include <vector>

namespace recstack {

/** A fitted linear model over normalized features. */
struct LinearFit {
    std::vector<double> weights;      ///< per normalized feature
    double intercept = 0.0;
    double r2 = 0.0;
    std::vector<double> featureMean;
    std::vector<double> featureStd;

    /** Predict on a raw (unnormalized) feature vector. */
    double predict(const std::vector<double>& x) const;
};

/**
 * Fit y ~ X. Rows of X are observations. Features with zero variance
 * get weight 0. Uses the normal equations with partial-pivot
 * Gaussian elimination (feature counts here are tiny).
 */
LinearFit fitLinear(const std::vector<std::vector<double>>& x,
                    const std::vector<double>& y);

/**
 * Solve the square system a * x = b in place (partial pivoting).
 * Returns false if the matrix is singular to working precision.
 */
bool solveLinearSystem(std::vector<std::vector<double>>& a,
                       std::vector<double>& b);

}  // namespace recstack

#endif  // RECSTACK_ANALYSIS_LINREG_H_
