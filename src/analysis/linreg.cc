#include "analysis/linreg.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace recstack {

double
LinearFit::predict(const std::vector<double>& x) const
{
    RECSTACK_CHECK(x.size() == weights.size(),
                   "feature count mismatch in predict");
    double y = intercept;
    for (size_t j = 0; j < weights.size(); ++j) {
        const double sd = featureStd[j];
        const double z = sd > 0.0 ? (x[j] - featureMean[j]) / sd : 0.0;
        y += weights[j] * z;
    }
    return y;
}

bool
solveLinearSystem(std::vector<std::vector<double>>& a,
                  std::vector<double>& b)
{
    const size_t n = a.size();
    for (size_t col = 0; col < n; ++col) {
        // Partial pivot.
        size_t pivot = col;
        for (size_t row = col + 1; row < n; ++row) {
            if (std::fabs(a[row][col]) > std::fabs(a[pivot][col])) {
                pivot = row;
            }
        }
        if (std::fabs(a[pivot][col]) < 1e-12) {
            return false;
        }
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);

        const double diag = a[col][col];
        for (size_t row = 0; row < n; ++row) {
            if (row == col) {
                continue;
            }
            const double factor = a[row][col] / diag;
            if (factor == 0.0) {
                continue;
            }
            for (size_t k = col; k < n; ++k) {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    for (size_t i = 0; i < n; ++i) {
        b[i] /= a[i][i];
    }
    return true;
}

LinearFit
fitLinear(const std::vector<std::vector<double>>& x,
          const std::vector<double>& y)
{
    RECSTACK_CHECK(!x.empty() && x.size() == y.size(),
                   "regression needs matching, non-empty X and y");
    const size_t n = x.size();
    const size_t d = x[0].size();

    LinearFit fit;
    fit.featureMean.assign(d, 0.0);
    fit.featureStd.assign(d, 0.0);

    // z-score features.
    for (size_t j = 0; j < d; ++j) {
        double mean = 0.0;
        for (size_t i = 0; i < n; ++i) {
            mean += x[i][j];
        }
        mean /= static_cast<double>(n);
        double var = 0.0;
        for (size_t i = 0; i < n; ++i) {
            const double dxi = x[i][j] - mean;
            var += dxi * dxi;
        }
        var /= static_cast<double>(n);
        fit.featureMean[j] = mean;
        fit.featureStd[j] = std::sqrt(var);
    }

    auto zval = [&fit](const std::vector<double>& row, size_t j) {
        const double sd = fit.featureStd[j];
        return sd > 0.0 ? (row[j] - fit.featureMean[j]) / sd : 0.0;
    };

    // Normal equations over [z-features, 1].
    const size_t m = d + 1;
    std::vector<std::vector<double>> ata(m, std::vector<double>(m, 0.0));
    std::vector<double> atb(m, 0.0);
    for (size_t i = 0; i < n; ++i) {
        std::vector<double> row(m, 1.0);
        for (size_t j = 0; j < d; ++j) {
            row[j] = zval(x[i], j);
        }
        for (size_t a = 0; a < m; ++a) {
            for (size_t b = 0; b < m; ++b) {
                ata[a][b] += row[a] * row[b];
            }
            atb[a] += row[a] * y[i];
        }
    }
    // Ridge epsilon keeps collinear feature sets solvable.
    for (size_t a = 0; a < m; ++a) {
        ata[a][a] += 1e-9;
    }
    const bool ok = solveLinearSystem(ata, atb);
    RECSTACK_CHECK(ok, "normal equations singular");

    fit.weights.assign(atb.begin(), atb.begin() +
                       static_cast<long>(d));
    fit.intercept = atb[d];

    // R^2.
    double ymean = 0.0;
    for (double v : y) {
        ymean += v;
    }
    ymean /= static_cast<double>(n);
    double ss_res = 0.0;
    double ss_tot = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const double pred = fit.predict(x[i]);
        ss_res += (y[i] - pred) * (y[i] - pred);
        ss_tot += (y[i] - ymean) * (y[i] - ymean);
    }
    fit.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
    return fit;
}

}  // namespace recstack
