#ifndef RECSTACK_TOPDOWN_TOPDOWN_H_
#define RECSTACK_TOPDOWN_TOPDOWN_H_

/**
 * @file
 * TopDown pipeline-slot analysis (Yasin, ISPASS 2014), as applied by
 * the paper in Section VI: level-1 split into retiring / bad
 * speculation / frontend bound / backend bound, with the level-2
 * drill-downs the paper reports (frontend latency vs bandwidth,
 * backend core vs memory, DSB vs MITE, and the DRAM
 * latency-vs-bandwidth-congestion distinction).
 */

#include "platform/platform.h"
#include "uarch/counters.h"

namespace recstack {

/** Level-1 TopDown fractions (sum to 1). */
struct TopDownL1 {
    double retiring = 0.0;
    double badSpeculation = 0.0;
    double frontendBound = 0.0;
    double backendBound = 0.0;
};

/** Level-2 drill-downs, all as fractions of total slots. */
struct TopDownL2 {
    double feLatency = 0.0;      ///< i-cache / resteer fetch bubbles
    double feBandwidth = 0.0;    ///< decoder supply deficit
    double feBandwidthDsb = 0.0; ///< Fig. 13: DSB-limited share
    double feBandwidthMite = 0.0;///< Fig. 13: MITE-limited share
    double beCore = 0.0;         ///< functional-unit contention
    double beMemory = 0.0;
    double memL2 = 0.0;
    double memL3 = 0.0;
    double memDramLatency = 0.0;
    double memDramBandwidth = 0.0;

    /** Fig. 10 (top): core-bound to memory-bound stall ratio. */
    double coreToMemoryRatio() const
    {
        return beMemory > 0.0 ? beCore / beMemory : 0.0;
    }
};

/** Full derivation for one measured region. */
struct TopDownResult {
    TopDownL1 l1;
    TopDownL2 l2;
    double cycles = 0.0;
    double ipc = 0.0;
    double avxFraction = 0.0;        ///< Fig. 9
    double imspki = 0.0;             ///< Fig. 12
    double mispredictsPerKuop = 0.0; ///< Fig. 15
    double dramCongestedFraction = 0.0;  ///< Fig. 14
    double fuUsage3Plus = 0.0;       ///< Fig. 10 (bottom): >=3 of 8 busy

    /** Level-1 fractions sum (conservation check; ~1.0). */
    double l1Sum() const
    {
        return l1.retiring + l1.badSpeculation + l1.frontendBound +
               l1.backendBound;
    }
};

/** Derive TopDown metrics from raw counters. */
TopDownResult deriveTopDown(const CpuCounters& c, const CpuConfig& cfg);

}  // namespace recstack

#endif  // RECSTACK_TOPDOWN_TOPDOWN_H_
