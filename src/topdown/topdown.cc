#include "topdown/topdown.h"

#include <algorithm>

namespace recstack {

TopDownResult
deriveTopDown(const CpuCounters& c, const CpuConfig& cfg)
{
    TopDownResult r;
    r.cycles = c.cycles;
    if (c.cycles <= 0.0) {
        return r;
    }
    const double inv = 1.0 / c.cycles;

    r.l1.retiring = c.retireCycles * inv;
    r.l1.badSpeculation = c.badSpecCycles * inv;
    r.l1.frontendBound = c.feCycles() * inv;
    r.l1.backendBound = c.beCycles() * inv;

    r.l2.feLatency = c.feLatencyCycles * inv;
    r.l2.feBandwidthDsb = c.feBandwidthDsbCycles * inv;
    r.l2.feBandwidthMite = c.feBandwidthMiteCycles * inv;
    r.l2.feBandwidth = r.l2.feBandwidthDsb + r.l2.feBandwidthMite;
    r.l2.beCore = c.beCoreCycles * inv;
    r.l2.beMemory = c.beMemCycles() * inv;
    r.l2.memL2 = c.beMemL2Cycles * inv;
    r.l2.memL3 = c.beMemL3Cycles * inv;
    r.l2.memDramLatency = c.beMemDramLatCycles * inv;
    r.l2.memDramBandwidth = c.beMemDramBwCycles * inv;

    r.ipc = c.ipc(cfg.pipelineWidth);
    r.avxFraction =
        c.uopsRetired > 0
            ? static_cast<double>(c.avxUopsRetired) /
                  static_cast<double>(c.uopsRetired)
            : 0.0;
    r.imspki = c.imspki();
    r.mispredictsPerKuop = c.mispredictsPerKuop();
    r.dramCongestedFraction =
        std::min(1.0, c.dramCongestedCycles * inv);
    r.fuUsage3Plus = c.portsBusyAtLeast[3];
    return r;
}

}  // namespace recstack
