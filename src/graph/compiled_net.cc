#include "graph/compiled_net.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <set>
#include <unordered_map>

#include "ops/concat.h"
#include "ops/elementwise.h"
#include "ops/fc.h"
#include "ops/fused.h"
#include "ops/reshape.h"

namespace recstack {
namespace {

std::atomic<uint64_t> g_compile_count{0};

constexpr size_t kArenaAlign = 64;

size_t
alignUp(size_t n)
{
    return (n + kArenaAlign - 1) & ~(kArenaAlign - 1);
}

bool
planningDisabledByEnv()
{
    const char* v = std::getenv("RECSTACK_DISABLE_PLANNING");
    return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

/// blob name -> indices of schedule ops that read it.
using ConsumerMap = std::unordered_map<std::string, std::vector<size_t>>;

ConsumerMap
buildConsumers(const std::vector<Operator*>& sched)
{
    ConsumerMap m;
    for (size_t i = 0; i < sched.size(); ++i) {
        for (const auto& input : sched[i]->inputs()) {
            m[input].push_back(i);
        }
    }
    return m;
}

/// blob name -> index of the schedule op that produces it.
std::unordered_map<std::string, size_t>
buildProducers(const std::vector<Operator*>& sched)
{
    std::unordered_map<std::string, size_t> m;
    for (size_t i = 0; i < sched.size(); ++i) {
        for (const auto& output : sched[i]->outputs()) {
            m.emplace(output, i);
        }
    }
    return m;
}

uint64_t
maxCodeBytes(const std::vector<Operator*>& window)
{
    // A fused kernel is one specialized code region standing in for
    // the whole window, so its unique-code footprint is the largest
    // absorbed region, not the sum.
    uint64_t bytes = 0;
    for (const Operator* op : window) {
        bytes = std::max(bytes, op->uniqueCodeBytes());
    }
    return bytes;
}

/// A matched unrolled-(AU)GRU timestep window (builders_attention.cc
/// emits 22 consecutive ops per plain step, 24 per attentional step).
struct GruWindow {
    size_t len = 0;
    std::string name;
    std::string seq, h, wx, bx, wh, bh, att, h_new;
    int64_t step = 0;
};

bool
matchGruWindow(const std::vector<Operator*>& sched, size_t i,
               const ConsumerMap& consumers,
               const std::set<std::string>& ext_out, GruWindow* out)
{
    // Longest variant is 24 ops; bail early when the tail can't fit.
    if (i + 22 > sched.size()) {
        return false;
    }

    // x_t = Seq[:, t, :]
    auto* sx = dynamic_cast<SliceOp*>(sched[i]);
    if (sx == nullptr) {
        return false;
    }
    const int64_t t = sx->index();
    const std::string& seq = sx->inputs()[0];
    const std::string& xt = sx->outputs()[0];

    // gx = x_t Wx^T + bx ; gh = h Wh^T + bh
    auto* fx = dynamic_cast<FCOp*>(sched[i + 1]);
    auto* fh = dynamic_cast<FCOp*>(sched[i + 2]);
    if (fx == nullptr || fh == nullptr || fx->inputs()[0] != xt) {
        return false;
    }
    const std::string& wx = fx->inputs()[1];
    const std::string& bx = fx->inputs()[2];
    const std::string& gx2 = fx->outputs()[0];
    const std::string& h = fh->inputs()[0];
    const std::string& wh = fh->inputs()[1];
    const std::string& bh = fh->inputs()[2];
    const std::string& gh2 = fh->outputs()[0];

    // Reshape both gate stacks to [B, 3, H].
    auto* rx = dynamic_cast<ReshapeOp*>(sched[i + 3]);
    auto* rh = dynamic_cast<ReshapeOp*>(sched[i + 4]);
    if (rx == nullptr || rh == nullptr || rx->inputs()[0] != gx2 ||
        rh->inputs()[0] != gh2) {
        return false;
    }
    const auto& shape = rx->targetShape();
    if (shape.size() != 3 || shape[0] != -1 || shape[1] != 3 ||
        shape[2] <= 0 || rh->targetShape() != shape) {
        return false;
    }
    const std::string& gx3 = rx->outputs()[0];
    const std::string& gh3 = rh->outputs()[0];

    // Six gate slices: r/z/n out of each stack, in index order.
    std::string gates[6];
    for (int g = 0; g < 6; ++g) {
        auto* s = dynamic_cast<SliceOp*>(sched[i + 5 + g]);
        const std::string& src = g < 3 ? gx3 : gh3;
        if (s == nullptr || s->inputs()[0] != src || s->index() != g % 3) {
            return false;
        }
        gates[g] = s->outputs()[0];
    }
    const std::string& gxr = gates[0];
    const std::string& gxz = gates[1];
    const std::string& gxn = gates[2];
    const std::string& ghr = gates[3];
    const std::string& ghz = gates[4];
    const std::string& ghn = gates[5];

    auto binary = [&](size_t idx, BinaryFn fn, const std::string& a,
                      const std::string& b) -> const std::string* {
        auto* op = dynamic_cast<BinaryOp*>(sched[idx]);
        if (op == nullptr || op->fn() != fn || op->inputs()[0] != a ||
            op->inputs()[1] != b) {
            return nullptr;
        }
        return &op->outputs()[0];
    };
    auto unary = [&](size_t idx, UnaryFn fn,
                     const std::string& x) -> const std::string* {
        auto* op = dynamic_cast<UnaryOp*>(sched[idx]);
        if (op == nullptr || op->fn() != fn || op->inputs()[0] != x) {
            return nullptr;
        }
        return &op->outputs()[0];
    };

    // r = sigmoid(gxr + ghr) ; z = sigmoid(gxz + ghz)
    const std::string* ar = binary(i + 11, BinaryFn::kAdd, gxr, ghr);
    if (ar == nullptr) {
        return false;
    }
    const std::string* r = unary(i + 12, UnaryFn::kSigmoid, *ar);
    if (r == nullptr) {
        return false;
    }
    const std::string* az = binary(i + 13, BinaryFn::kAdd, gxz, ghz);
    if (az == nullptr) {
        return false;
    }
    const std::string* z = unary(i + 14, UnaryFn::kSigmoid, *az);
    if (z == nullptr) {
        return false;
    }

    // Attentional variant: z *= Att[:, t, 0].
    size_t j = i + 15;
    std::string att;
    if (auto* sa = dynamic_cast<SliceOp*>(sched[j])) {
        if (i + 24 > sched.size() || sa->index() != t) {
            return false;
        }
        att = sa->inputs()[0];
        const std::string& at = sa->outputs()[0];
        const std::string* z2 = binary(j + 1, BinaryFn::kMul, *z, at);
        if (z2 == nullptr) {
            return false;
        }
        z = z2;
        j += 2;
    }
    if (j + 7 > sched.size()) {
        return false;
    }

    // n = tanh(gxn + r * ghn) ; h' = (n - z*n) + z*h
    const std::string* rg = binary(j, BinaryFn::kMul, *r, ghn);
    if (rg == nullptr) {
        return false;
    }
    const std::string* an = binary(j + 1, BinaryFn::kAdd, gxn, *rg);
    if (an == nullptr) {
        return false;
    }
    const std::string* n = unary(j + 2, UnaryFn::kTanh, *an);
    if (n == nullptr) {
        return false;
    }
    const std::string* zn = binary(j + 3, BinaryFn::kMul, *z, *n);
    if (zn == nullptr) {
        return false;
    }
    const std::string* zh = binary(j + 4, BinaryFn::kMul, *z, h);
    if (zh == nullptr) {
        return false;
    }
    const std::string* nzn = binary(j + 5, BinaryFn::kSub, *n, *zn);
    if (nzn == nullptr) {
        return false;
    }
    const std::string* h_new = binary(j + 6, BinaryFn::kAdd, *nzn, *zh);
    if (h_new == nullptr) {
        return false;
    }
    const size_t len = j + 7 - i;

    // Every intermediate must die inside the window: no consumer past
    // it and no external-output role, or the fused op would hide a
    // blob somebody still reads.
    for (size_t k = i; k < i + len; ++k) {
        for (const auto& output : sched[k]->outputs()) {
            if (output == *h_new) {
                continue;
            }
            if (ext_out.count(output)) {
                return false;
            }
            auto it = consumers.find(output);
            if (it != consumers.end()) {
                for (size_t c : it->second) {
                    if (c < i || c >= i + len) {
                        return false;
                    }
                }
            }
        }
    }

    out->len = len;
    out->seq = seq;
    out->h = h;
    out->wx = wx;
    out->bx = bx;
    out->wh = wh;
    out->bh = bh;
    out->att = att;
    out->h_new = *h_new;
    out->step = t;
    // "<stem>_tN_slice_x" -> "<stem>_tN_gru_step"
    std::string name = sx->name();
    const std::string suffix = "_slice_x";
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
        name.resize(name.size() - suffix.size());
    }
    out->name = name + "_gru_step";
    return true;
}

std::vector<std::string>
windowNames(const std::vector<Operator*>& window)
{
    std::vector<std::string> names;
    names.reserve(window.size());
    for (const Operator* op : window) {
        names.push_back(op->name());
    }
    return names;
}

}  // namespace

std::byte*
Arena::ensure(size_t bytes)
{
    if (bytes + kArenaAlign > storage_.size()) {
        storage_.resize(bytes + kArenaAlign);
        capacity_ = bytes;
    }
    capacity_ = std::max(capacity_, bytes);
    auto addr = reinterpret_cast<uintptr_t>(storage_.data());
    return storage_.data() + (alignUp(addr) - addr);
}

std::shared_ptr<CompiledNet>
CompiledNet::compile(const NetDef& net, CompileOptions opts)
{
    g_compile_count.fetch_add(1, std::memory_order_relaxed);
    return std::shared_ptr<CompiledNet>(new CompiledNet(net, opts));
}

uint64_t
CompiledNet::compileCount()
{
    return g_compile_count.load(std::memory_order_relaxed);
}

CompiledNet::CompiledNet(const NetDef& net, CompileOptions opts)
    : net_(&net), planMemory_(opts.planMemory && !planningDisabledByEnv())
{
    net.validate();
    ops_.reserve(net.opCount());
    for (const auto& op : net.ops()) {
        ops_.push_back(op.get());
    }
    if (opts.fuseOps) {
        applyFusion();
    }
    buildBlobTable();
}

void
CompiledNet::applyFusion()
{
    const std::set<std::string> ext_out(net_->externalOutputs().begin(),
                                        net_->externalOutputs().end());

    // Pass 1: unrolled (AU)GRU timestep windows -> GRUStepOp. Runs
    // before FC fusion so the per-step FC pair is still recognizable.
    {
        const ConsumerMap consumers = buildConsumers(ops_);
        std::vector<Operator*> next;
        next.reserve(ops_.size());
        size_t i = 0;
        while (i < ops_.size()) {
            GruWindow w;
            if (matchGruWindow(ops_, i, consumers, ext_out, &w)) {
                std::vector<Operator*> window(
                    ops_.begin() + static_cast<ptrdiff_t>(i),
                    ops_.begin() + static_cast<ptrdiff_t>(i + w.len));
                auto fused = std::make_unique<GRUStepOp>(
                    w.name, w.seq, w.h, w.wx, w.bx, w.wh, w.bh, w.att,
                    w.h_new, w.step);
                fused->setUniqueCodeBytes(maxCodeBytes(window));
                fusions_.push_back({w.att.empty() ? "gru-step"
                                                  : "augru-step",
                                    w.name, windowNames(window)});
                next.push_back(fused.get());
                owned_.push_back(std::move(fused));
                i += w.len;
            } else {
                next.push_back(ops_[i]);
                ++i;
            }
        }
        ops_ = std::move(next);
    }

    // Pass 2: FC + single-consumer activation -> FusedFC.
    {
        const ConsumerMap consumers = buildConsumers(ops_);
        const auto producers = buildProducers(ops_);
        for (size_t j = 0; j < ops_.size(); ++j) {
            auto* u = dynamic_cast<UnaryOp*>(ops_[j]);
            if (u == nullptr) {
                continue;
            }
            const std::string& x = u->inputs()[0];
            auto pit = producers.find(x);
            if (pit == producers.end()) {
                continue;
            }
            auto* fc = dynamic_cast<FCOp*>(ops_[pit->second]);
            if (fc == nullptr || ext_out.count(x) ||
                consumers.at(x).size() != 1) {
                continue;
            }
            FusedAct act = FusedAct::kNone;
            switch (u->fn()) {
              case UnaryFn::kRelu: act = FusedAct::kRelu; break;
              case UnaryFn::kSigmoid: act = FusedAct::kSigmoid; break;
              case UnaryFn::kTanh: act = FusedAct::kTanh; break;
            }
            auto fused = std::make_unique<FusedFCOp>(
                fc->name() + "+" + u->name(),
                std::vector<std::string>{fc->inputs()[0]}, fc->inputs()[1],
                fc->inputs()[2], u->outputs()[0], act);
            fused->setUniqueCodeBytes(maxCodeBytes({ops_[pit->second], u}));
            fusions_.push_back({"fc+act", fused->name(),
                                {fc->name(), u->name()}});
            ops_[j] = fused.get();
            ops_[pit->second] = nullptr;
            owned_.push_back(std::move(fused));
        }
        ops_.erase(std::remove(ops_.begin(), ops_.end(), nullptr),
                   ops_.end());
    }

    // Pass 3: concat whose only reader is an FC's X -> fold the blocks
    // into the FC. Accumulating blocks in concat order is bit-identical
    // to FC over the materialized concat row, and it deletes the
    // window's largest activation (the concat output).
    {
        const ConsumerMap consumers = buildConsumers(ops_);
        const auto producers = buildProducers(ops_);
        for (size_t j = 0; j < ops_.size(); ++j) {
            std::vector<std::string> xs;
            std::string w, b, y, fc_name;
            FusedAct act = FusedAct::kNone;
            if (auto* fc = dynamic_cast<FCOp*>(ops_[j])) {
                xs = {fc->inputs()[0]};
                w = fc->inputs()[1];
                b = fc->inputs()[2];
                y = fc->outputs()[0];
                fc_name = fc->name();
            } else if (auto* ff = dynamic_cast<FusedFCOp*>(ops_[j])) {
                if (ff->numBlocks() != 1) {
                    continue;
                }
                xs = {ff->inputs()[0]};
                w = ff->inputs()[1];
                b = ff->inputs()[2];
                y = ff->outputs()[0];
                fc_name = ff->name();
                act = ff->act();
            } else {
                continue;
            }
            auto pit = producers.find(xs[0]);
            if (pit == producers.end()) {
                continue;
            }
            auto* concat = dynamic_cast<ConcatOp*>(ops_[pit->second]);
            if (concat == nullptr || ext_out.count(xs[0]) ||
                consumers.at(xs[0]).size() != 1) {
                continue;
            }
            auto fused = std::make_unique<FusedFCOp>(
                concat->name() + "+" + fc_name, concat->inputs(), w, b, y,
                act);
            fused->setUniqueCodeBytes(
                maxCodeBytes({ops_[pit->second], ops_[j]}));
            fusions_.push_back({"concat+fc", fused->name(),
                                {concat->name(), fc_name}});
            ops_[j] = fused.get();
            ops_[pit->second] = nullptr;
            owned_.push_back(std::move(fused));
        }
        ops_.erase(std::remove(ops_.begin(), ops_.end(), nullptr),
                   ops_.end());
    }
}

void
CompiledNet::buildBlobTable()
{
    std::unordered_map<std::string, size_t> index;
    auto add = [&](const std::string& name, BlobRole role, int def) {
        index.emplace(name, blobs_.size());
        BlobInfo info;
        info.name = name;
        info.role = role;
        info.def = def;
        info.lastUse = def;
        blobs_.push_back(std::move(info));
    };

    for (const auto& input : net_->externalInputs()) {
        add(input, BlobRole::kExternalInput, -1);
    }
    for (size_t i = 0; i < ops_.size(); ++i) {
        for (const auto& input : ops_[i]->inputs()) {
            auto it = index.find(input);
            RECSTACK_CHECK(it != index.end(),
                           "compiled '" << name() << "': fused op '"
                                        << ops_[i]->name()
                                        << "' reads unknown blob '" << input
                                        << "'");
            blobs_[it->second].lastUse = static_cast<int>(i);
        }
        for (const auto& output : ops_[i]->outputs()) {
            add(output, BlobRole::kActivation, static_cast<int>(i));
        }
    }
    for (const auto& output : net_->externalOutputs()) {
        auto it = index.find(output);
        RECSTACK_CHECK(it != index.end(),
                       "compiled '" << name() << "': external output '"
                                    << output << "' vanished in fusion");
        blobs_[it->second].role = BlobRole::kExternalOutput;
        blobs_[it->second].lastUse = static_cast<int>(ops_.size());
    }
}

const NetPlan&
CompiledNet::plan(const Workspace& ws, int64_t batch)
{
    std::lock_guard<std::mutex> lock(planMu_);
    auto it = plans_.find(batch);
    if (it == plans_.end()) {
        it = plans_.emplace(batch, specialize(ws, batch)).first;
    }
    return *it->second;
}

std::unique_ptr<NetPlan>
CompiledNet::specialize(const Workspace& ws, int64_t batch) const
{
    auto plan = std::make_unique<NetPlan>();
    plan->batch = batch;
    // Lowering-time ISA choice: the plan is pinned to the tier active
    // when it was specialized (see NetPlan::kernelIsa).
    plan->kernelIsa = activeKernelIsa();

    // Static shape inference over the fused schedule, in a shape-only
    // scratch workspace seeded with the caller's external-input shapes.
    Workspace shapes;
    shapes.setShapeOnly(true);
    // Store-backed table blobs are shape-only in ws; the scratch
    // workspace inherits the store so plan-time profile lowering sees
    // the same cache-filtered table streams a live run would.
    shapes.attachStore(ws.store());
    for (const BlobInfo& blob : blobs_) {
        if (blob.role != BlobRole::kExternalInput) {
            continue;
        }
        RECSTACK_CHECK(ws.has(blob.name),
                       "plan('" << name() << "', batch " << batch
                                << "): external input '" << blob.name
                                << "' not declared in the workspace");
        const Tensor& t = ws.get(blob.name);
        shapes.set(blob.name, Tensor::shapeOnly(t.shape(), t.dtype()));
    }
    for (Operator* op : ops_) {
        op->inferShapes(shapes);
    }

    plan->shapes.reserve(blobs_.size());
    for (const BlobInfo& blob : blobs_) {
        const Tensor& t = shapes.get(blob.name);
        plan->shapes.push_back(t.shape());
        plan->dtypes.push_back(t.dtype());
        plan->bytes.push_back(t.byteSize());
        plan->offsets.push_back(kNoArenaOffset);
    }

    // Profiles are lowered once here, with the executor's unique-code
    // rewrite pre-applied, so compiled runs never re-lower.
    plan->profiles.reserve(ops_.size());
    for (const Operator* op : ops_) {
        KernelProfile kp = op->profile(shapes);
        if (op->uniqueCodeBytes() > 0) {
            kp.codeRegion = "op:" + op->name();
            kp.codeFootprintBytes = op->uniqueCodeBytes();
        }
        plan->profiles.push_back(std::move(kp));
    }

    // Naive cost: what the interpreted path allocates for the same
    // batch — one live allocation per activation of the *original*
    // (unfused) net.
    {
        Workspace naive;
        naive.setShapeOnly(true);
        for (const auto& input : net_->externalInputs()) {
            const Tensor& t = shapes.get(input);
            naive.set(input, Tensor::shapeOnly(t.shape(), t.dtype()));
        }
        const std::set<std::string> ext_out(net_->externalOutputs().begin(),
                                            net_->externalOutputs().end());
        for (const auto& op : net_->ops()) {
            op->inferShapes(naive);
            for (const auto& output : op->outputs()) {
                if (!ext_out.count(output)) {
                    plan->naiveActivationBytes +=
                        naive.get(output).byteSize();
                }
            }
        }
    }

    // Arena assignment: size-descending first-fit over the offset
    // intervals of lifetime-overlapping, already-placed blobs.
    std::vector<size_t> order;
    for (size_t i = 0; i < blobs_.size(); ++i) {
        if (blobs_[i].role == BlobRole::kActivation) {
            plan->fusedActivationBytes += plan->bytes[i];
            if (planMemory_ && plan->bytes[i] > 0) {
                order.push_back(i);
            }
        }
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         return plan->bytes[a] > plan->bytes[b];
                     });
    std::vector<size_t> placed;
    for (size_t i : order) {
        const size_t size = alignUp(plan->bytes[i]);
        // Offset intervals currently claimed over this blob's lifetime.
        std::vector<std::pair<size_t, size_t>> busy;
        for (size_t p : placed) {
            if (blobs_[i].def <= blobs_[p].lastUse &&
                blobs_[p].def <= blobs_[i].lastUse) {
                busy.emplace_back(plan->offsets[p],
                                  plan->offsets[p] + alignUp(plan->bytes[p]));
            }
        }
        std::sort(busy.begin(), busy.end());
        size_t offset = 0;
        for (const auto& [start, end] : busy) {
            if (offset + size <= start) {
                break;
            }
            offset = std::max(offset, end);
        }
        plan->offsets[i] = offset;
        plan->arenaBytes = std::max(plan->arenaBytes, offset + size);
        placed.push_back(i);
    }
    return plan;
}

void
CompiledNet::bind(Workspace& ws, Arena& arena, const NetPlan& plan) const
{
    std::byte* base =
        plan.arenaBytes > 0 ? arena.ensure(plan.arenaBytes) : nullptr;
    for (size_t i = 0; i < blobs_.size(); ++i) {
        const BlobInfo& blob = blobs_[i];
        if (blob.role == BlobRole::kExternalInput) {
            const Tensor& t = ws.get(blob.name);
            RECSTACK_CHECK(t.shape() == plan.shapes[i] &&
                               t.dtype() == plan.dtypes[i],
                           "bind('" << name() << "'): external input '"
                                    << blob.name << "' is " << t.describe()
                                    << " but the batch-" << plan.batch
                                    << " plan expects a different shape");
        } else if (plan.offsets[i] != kNoArenaOffset) {
            ws.set(blob.name, Tensor::view(plan.shapes[i], plan.dtypes[i],
                                           base + plan.offsets[i]));
        } else {
            ws.ensure(blob.name, plan.shapes[i], plan.dtypes[i]);
        }
    }
}

}  // namespace recstack
