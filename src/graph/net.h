#ifndef RECSTACK_GRAPH_NET_H_
#define RECSTACK_GRAPH_NET_H_

/**
 * @file
 * NetDef: an ordered operator graph, mirroring Caffe2's NetDef. The
 * model builders emit nets in topological order; NetDef validates
 * that ordering against declared external inputs.
 */

#include <memory>
#include <string>
#include <vector>

#include "ops/operator.h"

namespace recstack {

/** An ordered list of operators plus its external interface. */
class NetDef
{
  public:
    explicit NetDef(std::string name) : name_(std::move(name)) {}

    NetDef(NetDef&&) = default;
    NetDef& operator=(NetDef&&) = default;

    const std::string& name() const { return name_; }

    /** Append an operator (must respect topological order). */
    void addOp(OperatorPtr op);

    /** Declare a blob produced outside the net (weights, inputs). */
    void addExternalInput(std::string name);
    /** Declare a blob consumed by the caller. */
    void addExternalOutput(std::string name);

    const std::vector<OperatorPtr>& ops() const { return ops_; }
    const std::vector<std::string>& externalInputs() const
    {
        return externalInputs_;
    }
    const std::vector<std::string>& externalOutputs() const
    {
        return externalOutputs_;
    }

    size_t opCount() const { return ops_.size(); }

    /**
     * Check that every operator input is either an external input or
     * produced by an earlier operator, that every blob has exactly
     * one producer (single-assignment — the liveness planner in
     * graph/compiled_net.h depends on it), and that external
     * input/output declarations are unique and outputs are produced.
     * Panics with a diagnostic on violation.
     */
    void validate() const;

    /** Multi-line human-readable summary (op counts per type). */
    std::string summary() const;

  private:
    std::string name_;
    std::vector<OperatorPtr> ops_;
    std::vector<std::string> externalInputs_;
    std::vector<std::string> externalOutputs_;
};

}  // namespace recstack

#endif  // RECSTACK_GRAPH_NET_H_
