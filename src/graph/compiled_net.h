#ifndef RECSTACK_GRAPH_COMPILED_NET_H_
#define RECSTACK_GRAPH_COMPILED_NET_H_

/**
 * @file
 * CompiledNet: compile-once / run-many execution plans over a NetDef.
 *
 * Every Executor::run over a raw NetDef re-interprets the graph: a
 * virtual inferShapes per operator per batch, a fresh allocation per
 * blob, and no reuse of dead activations. CompiledNet amortizes all
 * of that the way DeepRecSys prepares nets per inference engine:
 *
 *  - compile(net, opts) validates the graph once, applies rewrite
 *    passes (FC+activation fusion, concat-into-FC folding, GRU step
 *    fusion — see docs/memory_planning.md for the pass list), and
 *    derives per-blob liveness intervals over the topological order.
 *  - plan(ws, batch) specializes the compiled net to one batch size:
 *    static shape inference over the fused schedule, cached per-op
 *    KernelProfiles, and an arena memory plan that first-fit packs
 *    non-overlapping activations into one contiguous allocation.
 *    Plans are memoized per batch and shared across threads.
 *  - Executor::run(compiled, ...) binds the plan into a Workspace
 *    (activations become arena views; weights and external
 *    inputs/outputs stay workspace-owned) and runs the fused kernels
 *    with no per-run shape inference or profile lowering.
 *
 * Numerics are bit-identical to the interpreted path at every thread
 * width: fused kernels replicate the exact fp32 operation order of
 * the windows they replace, and the liveness rule (an input stays
 * live through its last consuming op) forbids aliasing an op's output
 * onto any of its inputs.
 *
 * The source NetDef must outlive the CompiledNet (unfused operators
 * are referenced, not copied).
 *
 * Set RECSTACK_DISABLE_PLANNING=1 in the environment to disable arena
 * aliasing (activations fall back to per-blob workspace allocations)
 * while keeping fusion and the compiled fast path — the escape hatch
 * when debugging a suspected aliasing problem.
 */

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/cpu_features.h"
#include "graph/net.h"

namespace recstack {

/** Compile-time knobs of CompiledNet::compile. */
struct CompileOptions {
    /// Apply the rewrite passes (FC+activation, concat folding, GRU
    /// step fusion). Off, the compiled schedule is the builder's
    /// op-for-op — what the characterizer uses so cached profiles
    /// stay byte-identical with the paper's framework-granularity
    /// measurements.
    bool fuseOps = true;
    /// Emit the liveness-based arena plan. Additionally gated at
    /// compile time by the RECSTACK_DISABLE_PLANNING environment
    /// variable.
    bool planMemory = true;
};

/** One rewrite decision, for `recstack plan` dumps and tests. */
struct FusionDecision {
    std::string kind;                     ///< "fc+act", "concat+fc", ...
    std::string fusedOp;                  ///< emitted operator name
    std::vector<std::string> absorbedOps; ///< replaced operator names
};

/** Who owns a compiled blob's storage at run time. */
enum class BlobRole {
    kExternalInput,   ///< weights + generator inputs; workspace-owned
    kExternalOutput,  ///< caller-visible results; workspace-owned
    kActivation       ///< internal; arena candidate
};

/** Liveness record of one blob over the compiled op order. */
struct BlobInfo {
    std::string name;
    BlobRole role = BlobRole::kActivation;
    /// Producing op index; -1 for external inputs.
    int def = -1;
    /// Last consuming op index (def for produced-but-unread blobs;
    /// the op count for external outputs, which stay live past the
    /// net). An input is live *through* its last consumer, so an
    /// op's output can never alias one of its own inputs.
    int lastUse = -1;
};

/** Offset marker of blobs kept out of the arena. */
inline constexpr size_t kNoArenaOffset = static_cast<size_t>(-1);

/**
 * One batch-size specialization of a compiled net: shapes, cached
 * profiles, and the arena layout. Index-aligned with
 * CompiledNet::blobs() / ops().
 */
struct NetPlan {
    int64_t batch = 0;

    /// Kernel tier captured at specialize() time (the lowering-time
    /// resolution of RECSTACK_ISA / setKernelIsa / host detection).
    /// Executor::run installs an IsaScope of this tier around the
    /// compiled schedule, so a plan always executes with the kernels
    /// it was lowered for even if the environment changes later.
    KernelIsa kernelIsa = KernelIsa::kScalar;

    // Per-blob (aligned with CompiledNet::blobs()).
    std::vector<std::vector<int64_t>> shapes;
    std::vector<DType> dtypes;
    std::vector<size_t> bytes;
    /// Arena byte offset, or kNoArenaOffset for workspace-owned blobs
    /// (and all activations when planning is disabled).
    std::vector<size_t> offsets;

    // Per-op (aligned with CompiledNet::ops()): profiles lowered once
    // at plan time, with the unique-code rewrite already applied.
    std::vector<KernelProfile> profiles;

    /// Planned peak activation bytes — the arena size.
    size_t arenaBytes = 0;
    /// What the interpreted path allocates for the same batch: the
    /// per-blob sum over the *original* (unfused) net's activations.
    size_t naiveActivationBytes = 0;
    /// Activation bytes of the fused schedule without aliasing.
    size_t fusedActivationBytes = 0;
};

/**
 * A grow-only 64-byte-aligned scratch allocation one worker binds
 * compiled plans into. Reused across batches; growing invalidates
 * previously bound views, which is safe because every compiled run
 * rebinds before executing.
 */
class Arena
{
  public:
    /** Pointer to at least @c bytes of storage (grows, never shrinks). */
    std::byte* ensure(size_t bytes);

    size_t capacity() const { return capacity_; }

  private:
    std::vector<std::byte> storage_;
    size_t capacity_ = 0;
};

/** A compiled, fusion-rewritten, memory-planned net. */
class CompiledNet
{
  public:
    /**
     * Compile @c net: validate, fuse (per @c opts), derive liveness.
     * The net must outlive the returned CompiledNet.
     */
    static std::shared_ptr<CompiledNet> compile(const NetDef& net,
                                                CompileOptions opts = {});

    /** Process-wide count of compile() calls (compile-once tests). */
    static uint64_t compileCount();

    const std::string& name() const { return net_->name(); }
    /** Compiled (post-fusion) schedule, in execution order. */
    const std::vector<Operator*>& ops() const { return ops_; }
    size_t opCount() const { return ops_.size(); }
    /** Op count of the source net before fusion. */
    size_t originalOpCount() const { return net_->opCount(); }
    const std::vector<FusionDecision>& fusions() const { return fusions_; }
    const std::vector<BlobInfo>& blobs() const { return blobs_; }
    /** False when opts.planMemory was off or the env hatch is set. */
    bool planningEnabled() const { return planMemory_; }

    /**
     * The (memoized, thread-safe) specialization for @c batch. @c ws
     * supplies the external-input shapes (weights and generator
     * inputs must already be declared or materialized); shapes are
     * verified against the cached plan on later calls via bind().
     */
    const NetPlan& plan(const Workspace& ws, int64_t batch);

    /**
     * Bind @c plan into @c ws: planned activations become views into
     * @c arena (sized here), unplanned activations and external
     * outputs become owned allocations, and external-input shapes are
     * checked against the plan. After bind, ops()[i]->run(ws) needs
     * no per-op shape inference.
     */
    void bind(Workspace& ws, Arena& arena, const NetPlan& plan) const;

  private:
    CompiledNet(const NetDef& net, CompileOptions opts);

    void applyFusion();
    void buildBlobTable();
    std::unique_ptr<NetPlan> specialize(const Workspace& ws,
                                        int64_t batch) const;

    const NetDef* net_;
    bool planMemory_;
    /// Post-fusion schedule; fused entries are owned here, unfused
    /// entries point into net_->ops().
    std::vector<OperatorPtr> owned_;
    std::vector<Operator*> ops_;
    std::vector<FusionDecision> fusions_;
    std::vector<BlobInfo> blobs_;

    std::mutex planMu_;
    std::map<int64_t, std::unique_ptr<NetPlan>> plans_;
};

}  // namespace recstack

#endif  // RECSTACK_GRAPH_COMPILED_NET_H_
