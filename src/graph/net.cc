#include "graph/net.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace recstack {

void
NetDef::addOp(OperatorPtr op)
{
    RECSTACK_CHECK(op != nullptr, "null operator added to net " << name_);
    ops_.push_back(std::move(op));
}

void
NetDef::addExternalInput(std::string name)
{
    externalInputs_.push_back(std::move(name));
}

void
NetDef::addExternalOutput(std::string name)
{
    externalOutputs_.push_back(std::move(name));
}

void
NetDef::validate() const
{
    // Duplicate external declarations would give the liveness planner
    // two conflicting roles (or ref-counts) for one blob.
    std::set<std::string> available;
    for (const auto& input : externalInputs_) {
        RECSTACK_CHECK(available.insert(input).second,
                       "net '" << name_ << "': external input '" << input
                               << "' declared twice");
    }
    // Single-assignment: the memory planner derives one [def, lastUse]
    // interval per blob, so a second producer must be rejected.
    std::set<std::string> produced;
    for (const auto& op : ops_) {
        for (const auto& input : op->inputs()) {
            RECSTACK_CHECK(available.count(input),
                           "net '" << name_ << "': op '" << op->name()
                                   << "' reads undefined blob '" << input
                                   << "'");
        }
        for (const auto& output : op->outputs()) {
            RECSTACK_CHECK(produced.insert(output).second,
                           "net '" << name_ << "': blob '" << output
                                   << "' has a second producer (op '"
                                   << op->name() << "')");
            RECSTACK_CHECK(!std::count(externalInputs_.begin(),
                                       externalInputs_.end(), output),
                           "net '" << name_ << "': op '" << op->name()
                                   << "' overwrites external input '"
                                   << output << "'");
            available.insert(output);
        }
    }
    std::set<std::string> outputs_seen;
    for (const auto& output : externalOutputs_) {
        RECSTACK_CHECK(outputs_seen.insert(output).second,
                       "net '" << name_ << "': external output '" << output
                               << "' declared twice");
        RECSTACK_CHECK(available.count(output),
                       "net '" << name_ << "': external output '" << output
                               << "' is never produced");
    }
}

std::string
NetDef::summary() const
{
    std::map<std::string, int> by_type;
    for (const auto& op : ops_) {
        ++by_type[op->type()];
    }
    std::ostringstream oss;
    oss << "net '" << name_ << "': " << ops_.size() << " ops";
    for (const auto& [type, count] : by_type) {
        oss << "\n  " << type << ": " << count;
    }
    return oss.str();
}

}  // namespace recstack
