#include "graph/net.h"

#include <map>
#include <set>
#include <sstream>

namespace recstack {

void
NetDef::addOp(OperatorPtr op)
{
    RECSTACK_CHECK(op != nullptr, "null operator added to net " << name_);
    ops_.push_back(std::move(op));
}

void
NetDef::addExternalInput(std::string name)
{
    externalInputs_.push_back(std::move(name));
}

void
NetDef::addExternalOutput(std::string name)
{
    externalOutputs_.push_back(std::move(name));
}

void
NetDef::validate() const
{
    std::set<std::string> available(externalInputs_.begin(),
                                    externalInputs_.end());
    for (const auto& op : ops_) {
        for (const auto& input : op->inputs()) {
            RECSTACK_CHECK(available.count(input),
                           "net '" << name_ << "': op '" << op->name()
                                   << "' reads undefined blob '" << input
                                   << "'");
        }
        for (const auto& output : op->outputs()) {
            available.insert(output);
        }
    }
    for (const auto& output : externalOutputs_) {
        RECSTACK_CHECK(available.count(output),
                       "net '" << name_ << "': external output '" << output
                               << "' is never produced");
    }
}

std::string
NetDef::summary() const
{
    std::map<std::string, int> by_type;
    for (const auto& op : ops_) {
        ++by_type[op->type()];
    }
    std::ostringstream oss;
    oss << "net '" << name_ << "': " << ops_.size() << " ops";
    for (const auto& [type, count] : by_type) {
        oss << "\n  " << type << ": " << count;
    }
    return oss.str();
}

}  // namespace recstack
