#include "graph/executor.h"

#include <chrono>

#include "common/thread_pool.h"

namespace recstack {

NetExecResult
Executor::run(const NetDef& net, Workspace& ws, const ExecOptions& opts)
{
    using Clock = std::chrono::steady_clock;

    // Kernels pick the width up through the calling thread's scope;
    // with numThreads == 0 the process default applies unchanged.
    IntraOpScope intra_op(opts.numThreads);

    const bool numerics = opts.mode != ExecMode::kProfileOnly;
    NetExecResult result;
    result.records.reserve(net.opCount());
    const auto net_start = Clock::now();

    for (const auto& op : net.ops()) {
        op->inferShapes(ws);
        OpExecRecord record;
        if (numerics) {
            const auto start = Clock::now();
            op->run(ws);
            const auto end = Clock::now();
            record.hostSeconds =
                std::chrono::duration<double>(end - start).count();
        }
        if (opts.mode != ExecMode::kNumericOnly) {
            record.profile = op->profile(ws);
            if (op->uniqueCodeBytes() > 0) {
                record.profile.codeRegion = "op:" + op->name();
                record.profile.codeFootprintBytes = op->uniqueCodeBytes();
            }
        }
        result.records.push_back(std::move(record));
    }

    // In kProfileOnly no kernel ran: report 0.0 instead of the
    // shape-inference + profile-lowering wall time (see header).
    if (numerics) {
        result.hostSeconds =
            std::chrono::duration<double>(Clock::now() - net_start)
                .count();
    }
    return result;
}

NetExecResult
Executor::run(const NetDef& net, Workspace& ws, ExecMode mode)
{
    ExecOptions opts;
    opts.mode = mode;
    return run(net, ws, opts);
}

NetExecResult
Executor::run(CompiledNet& net, Workspace& ws, Arena& arena, int64_t batch,
              const ExecOptions& opts)
{
    using Clock = std::chrono::steady_clock;

    IntraOpScope intra_op(opts.numThreads);
    const NetPlan& plan = net.plan(ws, batch);
    const bool numerics = opts.mode != ExecMode::kProfileOnly;

    NetExecResult result;
    result.records.reserve(net.opCount());
    if (numerics) {
        net.bind(ws, arena, plan);
    }
    const auto net_start = Clock::now();

    const auto& ops = net.ops();
    for (size_t i = 0; i < ops.size(); ++i) {
        OpExecRecord record;
        if (numerics) {
            const auto start = Clock::now();
            ops[i]->run(ws);
            const auto end = Clock::now();
            record.hostSeconds =
                std::chrono::duration<double>(end - start).count();
        }
        if (opts.mode != ExecMode::kNumericOnly) {
            // Lowered once at plan time (unique-code rewrite included).
            record.profile = plan.profiles[i];
        }
        result.records.push_back(std::move(record));
    }

    if (numerics) {
        result.hostSeconds =
            std::chrono::duration<double>(Clock::now() - net_start)
                .count();
    }
    return result;
}

}  // namespace recstack
