#include "graph/executor.h"

#include <chrono>

namespace recstack {

NetExecResult
Executor::run(const NetDef& net, Workspace& ws, ExecMode mode)
{
    using Clock = std::chrono::steady_clock;

    NetExecResult result;
    result.records.reserve(net.opCount());
    const auto net_start = Clock::now();

    for (const auto& op : net.ops()) {
        op->inferShapes(ws);
        OpExecRecord record;
        if (mode != ExecMode::kProfileOnly) {
            const auto start = Clock::now();
            op->run(ws);
            const auto end = Clock::now();
            record.hostSeconds =
                std::chrono::duration<double>(end - start).count();
        }
        if (mode != ExecMode::kNumericOnly) {
            record.profile = op->profile(ws);
            if (op->uniqueCodeBytes() > 0) {
                record.profile.codeRegion = "op:" + op->name();
                record.profile.codeFootprintBytes = op->uniqueCodeBytes();
            }
        }
        result.records.push_back(std::move(record));
    }

    result.hostSeconds =
        std::chrono::duration<double>(Clock::now() - net_start).count();
    return result;
}

}  // namespace recstack
