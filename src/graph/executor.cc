#include "graph/executor.h"

#include <chrono>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace recstack {
namespace {

/// Registry handles are looked up once; updates are lock-free.
obs::Counter&
runsCounter()
{
    static obs::Counter& c =
        obs::MetricsRegistry::global().counter("executor.runs");
    return c;
}

obs::Counter&
opsCounter()
{
    static obs::Counter& c =
        obs::MetricsRegistry::global().counter("executor.ops");
    return c;
}

/// Batch rows of an op's first output (post-run), -1 if unknowable.
int64_t
outputRows(const Workspace& ws, const Operator& op)
{
    if (op.outputs().empty() || !ws.has(op.outputs()[0])) {
        return -1;
    }
    const Tensor& t = ws.get(op.outputs()[0]);
    return t.shape().empty() ? -1 : t.dim(0);
}

}  // namespace

NetExecResult
Executor::run(const NetDef& net, Workspace& ws, const ExecOptions& opts)
{
    using Clock = std::chrono::steady_clock;

    // Kernels pick the width up through the calling thread's scope;
    // with numThreads == 0 the process default applies unchanged.
    IntraOpScope intra_op(opts.numThreads);

    const bool numerics = opts.mode != ExecMode::kProfileOnly;
    runsCounter().add();
    opsCounter().add(net.opCount());
    RECSTACK_SPAN("executor.run",
                  {{"ops", static_cast<int64_t>(net.opCount())}});
    NetExecResult result;
    result.records.reserve(net.opCount());
    const auto net_start = Clock::now();

    for (const auto& op : net.ops()) {
        obs::ScopedSpan op_span("op", op->type().c_str());
        op->inferShapes(ws);
        OpExecRecord record;
        if (numerics) {
            const auto start = Clock::now();
            op->run(ws);
            const auto end = Clock::now();
            record.hostSeconds =
                std::chrono::duration<double>(end - start).count();
        }
        if (op_span.active()) {
            op_span.arg("rows", outputRows(ws, *op));
        }
        if (opts.mode != ExecMode::kNumericOnly) {
            record.profile = op->profile(ws);
            if (op->uniqueCodeBytes() > 0) {
                record.profile.codeRegion = "op:" + op->name();
                record.profile.codeFootprintBytes = op->uniqueCodeBytes();
            }
        }
        result.records.push_back(std::move(record));
    }

    // In kProfileOnly no kernel ran: report 0.0 instead of the
    // shape-inference + profile-lowering wall time (see header).
    if (numerics) {
        result.hostSeconds =
            std::chrono::duration<double>(Clock::now() - net_start)
                .count();
    }
    return result;
}

NetExecResult
Executor::run(const NetDef& net, Workspace& ws, ExecMode mode)
{
    ExecOptions opts;
    opts.mode = mode;
    return run(net, ws, opts);
}

NetExecResult
Executor::run(CompiledNet& net, Workspace& ws, Arena& arena, int64_t batch,
              const ExecOptions& opts)
{
    using Clock = std::chrono::steady_clock;

    IntraOpScope intra_op(opts.numThreads);
    runsCounter().add();
    opsCounter().add(net.opCount());
    RECSTACK_SPAN("executor.run",
                  {{"ops", static_cast<int64_t>(net.opCount())},
                   {"batch", batch}});
    const NetPlan* plan = nullptr;
    {
        RECSTACK_SPAN("executor.plan_bind", {{"batch", batch}});
        plan = &net.plan(ws, batch);
    }
    const bool numerics = opts.mode != ExecMode::kProfileOnly;

    // Execute with the kernels the plan was lowered for, regardless of
    // what RECSTACK_ISA resolves to by now (the scope wins the
    // per-thread dispatch in activeKernelIsa, and ops capture it
    // before fanning out to pool workers).
    IsaScope isa_scope(plan->kernelIsa);

    NetExecResult result;
    result.records.reserve(net.opCount());
    if (numerics) {
        RECSTACK_SPAN("executor.plan_bind", {{"batch", batch}});
        net.bind(ws, arena, *plan);
    }
    const auto net_start = Clock::now();

    const auto& ops = net.ops();
    for (size_t i = 0; i < ops.size(); ++i) {
        obs::ScopedSpan op_span("op", ops[i]->type().c_str());
        OpExecRecord record;
        if (numerics) {
            const auto start = Clock::now();
            ops[i]->run(ws);
            const auto end = Clock::now();
            record.hostSeconds =
                std::chrono::duration<double>(end - start).count();
        }
        if (op_span.active()) {
            op_span.arg("rows", outputRows(ws, *ops[i]));
        }
        if (opts.mode != ExecMode::kNumericOnly) {
            // Lowered once at plan time (unique-code rewrite included).
            record.profile = plan->profiles[i];
        }
        result.records.push_back(std::move(record));
    }

    if (numerics) {
        result.hostSeconds =
            std::chrono::duration<double>(Clock::now() - net_start)
                .count();
    }
    return result;
}

}  // namespace recstack
