#ifndef RECSTACK_GRAPH_EXECUTOR_H_
#define RECSTACK_GRAPH_EXECUTOR_H_

/**
 * @file
 * Executor: runs a NetDef against a Workspace.
 *
 * Three modes:
 *  - kFull:        shape inference + real numerics + profiles. Used by
 *                  tests and small-batch runs.
 *  - kProfileOnly: shape inference + profiles only. Used by the
 *                  platform sweeps at batch sizes where the numerics
 *                  would dominate wall-clock without affecting any
 *                  reported metric (the platform models consume only
 *                  the profiles).
 *  - kNumericOnly: shape inference + real numerics, no profile
 *                  lowering. Used by the serving engine, which runs
 *                  the same net thousands of times and prices service
 *                  latency from the characterization grid instead of
 *                  per-batch profiles.
 *
 * Executor::run is stateless and re-entrant: concurrent calls on the
 * same NetDef are safe as long as each caller brings its own
 * Workspace (operators keep all execution state in the workspace).
 * Within one call, kernels additionally parallelize intra-op through
 * the shared chunked-range pool (common/thread_pool.h); the width
 * comes from ExecOptions::numThreads and the partitioning is
 * disjoint-output, so results are bit-identical at any width.
 */

#include <vector>

#include "graph/compiled_net.h"
#include "graph/net.h"

namespace recstack {

/** Execution mode of a net run. */
enum class ExecMode { kFull, kProfileOnly, kNumericOnly };

/** Per-run knobs of Executor::run. */
struct ExecOptions {
    ExecMode mode = ExecMode::kFull;
    /// Intra-op parallelism width the kernels may use. 0 = process
    /// default (setIntraOpThreads / RECSTACK_NUM_THREADS / hardware
    /// concurrency); 1 = strictly serial. Any width produces
    /// bit-identical numerics (see docs/parallelism.md).
    int numThreads = 0;
};

/**
 * Per-operator record produced by a net run.
 *
 * hostSeconds is the measured wall time of the *numeric kernel*
 * (op->run). It is only meaningful in kFull and kNumericOnly; in
 * kProfileOnly no kernel executes, so the field is reported as
 * exactly 0.0 rather than the shape-inference/profile-lowering time
 * a naive timer would capture.
 */
struct OpExecRecord {
    KernelProfile profile;
    double hostSeconds = 0.0;  ///< kernel wall time; 0.0 in kProfileOnly
};

/**
 * Result of one net run. hostSeconds follows the same mode semantics
 * as OpExecRecord::hostSeconds: wall time of the whole run in kFull /
 * kNumericOnly, exactly 0.0 in kProfileOnly.
 */
struct NetExecResult {
    std::vector<OpExecRecord> records;
    double hostSeconds = 0.0;
};

/** Stateless net runner. */
class Executor
{
  public:
    /**
     * Execute @c net against @c ws. External inputs (including
     * weights) must already be present in the workspace.
     */
    static NetExecResult run(const NetDef& net, Workspace& ws,
                             const ExecOptions& opts);

    /** Mode-only convenience overload (default intra-op width). */
    static NetExecResult run(const NetDef& net, Workspace& ws,
                             ExecMode mode = ExecMode::kFull);

    /**
     * Compiled fast path: bind @c net's batch-@c batch memory plan
     * into @c ws / @c arena and run the fused schedule with no per-op
     * shape inference or profile lowering (profiles come from the
     * plan's cache). Numerics are bit-identical to the interpreted
     * overloads above at every thread width. kProfileOnly skips the
     * bind entirely. External inputs must already be present at the
     * planned shapes.
     */
    static NetExecResult run(CompiledNet& net, Workspace& ws, Arena& arena,
                             int64_t batch, const ExecOptions& opts);
};

}  // namespace recstack

#endif  // RECSTACK_GRAPH_EXECUTOR_H_
