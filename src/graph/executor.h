#ifndef RECSTACK_GRAPH_EXECUTOR_H_
#define RECSTACK_GRAPH_EXECUTOR_H_

/**
 * @file
 * Executor: runs a NetDef against a Workspace.
 *
 * Three modes:
 *  - kFull:        shape inference + real numerics + profiles. Used by
 *                  tests and small-batch runs.
 *  - kProfileOnly: shape inference + profiles only. Used by the
 *                  platform sweeps at batch sizes where the numerics
 *                  would dominate wall-clock without affecting any
 *                  reported metric (the platform models consume only
 *                  the profiles).
 *  - kNumericOnly: shape inference + real numerics, no profile
 *                  lowering. Used by the serving engine, which runs
 *                  the same net thousands of times and prices service
 *                  latency from the characterization grid instead of
 *                  per-batch profiles.
 *
 * Executor::run is stateless and re-entrant: concurrent calls on the
 * same NetDef are safe as long as each caller brings its own
 * Workspace (operators keep all execution state in the workspace).
 */

#include <vector>

#include "graph/net.h"

namespace recstack {

/** Execution mode of a net run. */
enum class ExecMode { kFull, kProfileOnly, kNumericOnly };

/** Per-operator record produced by a net run. */
struct OpExecRecord {
    KernelProfile profile;
    double hostSeconds = 0.0;  ///< wall time of the numeric kernel (kFull)
};

/** Result of one net run. */
struct NetExecResult {
    std::vector<OpExecRecord> records;
    double hostSeconds = 0.0;
};

/** Stateless net runner. */
class Executor
{
  public:
    /**
     * Execute @c net against @c ws. External inputs (including
     * weights) must already be present in the workspace.
     */
    static NetExecResult run(const NetDef& net, Workspace& ws,
                             ExecMode mode = ExecMode::kFull);
};

}  // namespace recstack

#endif  // RECSTACK_GRAPH_EXECUTOR_H_
