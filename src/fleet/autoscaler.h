#ifndef RECSTACK_FLEET_AUTOSCALER_H_
#define RECSTACK_FLEET_AUTOSCALER_H_

/**
 * @file
 * Obs-driven fleet autoscaling against a tail-latency SLA.
 *
 * The control signal is deliberately the observability surface, not
 * simulator internals: each epoch runs the fleet at a candidate node
 * count and hands back the *merged per-node latency histogram*
 * (HistogramSnapshot::merge) — the roll-up a production metrics
 * pipeline computes — and the autoscaler reads the fleet p99 from it.
 * Same pattern as the GPU-threshold hill climber (sched/hill_climb.h):
 * measure through the histogram, decide, repeat.
 *
 * Policy: start at minNodes and walk. A violating epoch (p99 > SLA)
 * adds a node; a comfortably-passing epoch (p99 <= SLA) tries to
 * drain one, unless a previous epoch already showed the smaller fleet
 * violating (per-size memoization prevents add/drain oscillation).
 * The walk terminates at the smallest node count whose measured p99
 * meets the SLA, or reports infeasible at maxNodes.
 */

#include <cstdint>
#include <functional>
#include <vector>

#include "obs/metrics.h"

namespace recstack {
namespace fleet {

/** Autoscaling policy knobs. */
struct AutoscalerConfig {
    /// Fleet p99 target (seconds), read from the merged histogram.
    double slaP99Seconds = 50e-3;
    int minNodes = 1;
    int maxNodes = 16;
    /// Epoch budget: the walk stops after this many fleet runs even
    /// if it has not converged.
    int maxEpochs = 24;
    /// Drain only when p99 <= drainHeadroom * SLA — a fleet barely
    /// inside the SLA is left alone rather than probed downward.
    double drainHeadroom = 0.8;
};

/** One epoch of the scaling walk. */
struct AutoscalerStep {
    int nodes = 0;
    double p99 = 0.0;
    bool violated = false;
    /// Node count the controller moved to after this epoch ( ==
    /// nodes when the walk settled here).
    int nextNodes = 0;
};

/** Outcome of the scaling walk. */
struct AutoscalerResult {
    /// Final fleet size (the smallest SLA-feasible count when
    /// feasible).
    int nodes = 0;
    /// True when the final size's measured p99 met the SLA.
    bool feasible = false;
    /// Measured fleet p99 at the final size.
    double p99 = 0.0;
    int epochsUsed = 0;
    std::vector<AutoscalerStep> history;
};

/**
 * One fleet epoch at @c nodes nodes: run the fleet and return the
 * merged per-node latency histogram (the only signal the controller
 * reads). @c epoch is the controller's epoch index, available for
 * seed variation.
 */
using FleetEpochFn =
    std::function<obs::HistogramSnapshot(int nodes, int epoch)>;

/** Walk the fleet size against the SLA. See file comment. */
AutoscalerResult autoscale(const AutoscalerConfig& config,
                           const FleetEpochFn& epoch_fn);

}  // namespace fleet
}  // namespace recstack

#endif  // RECSTACK_FLEET_AUTOSCALER_H_
