#include "fleet/autoscaler.h"

#include <map>

#include "common/logging.h"

namespace recstack {
namespace fleet {

AutoscalerResult
autoscale(const AutoscalerConfig& config, const FleetEpochFn& epoch_fn)
{
    RECSTACK_CHECK(config.slaP99Seconds > 0.0, "SLA must be > 0");
    RECSTACK_CHECK(config.minNodes >= 1, "minNodes must be >= 1");
    RECSTACK_CHECK(config.maxNodes >= config.minNodes,
                   "maxNodes must be >= minNodes");
    RECSTACK_CHECK(config.maxEpochs >= 1, "need at least one epoch");
    RECSTACK_CHECK(config.drainHeadroom > 0.0 &&
                       config.drainHeadroom <= 1.0,
                   "drain headroom must be in (0, 1]");
    RECSTACK_CHECK(epoch_fn != nullptr, "need an epoch function");

    AutoscalerResult result;
    std::map<int, bool> violatedAt;  // node count -> measured verdict
    int nodes = config.minNodes;
    for (int epoch = 0; epoch < config.maxEpochs; ++epoch) {
        const obs::HistogramSnapshot hist = epoch_fn(nodes, epoch);
        const double p99 = hist.percentile(0.99);
        const bool violated = p99 > config.slaP99Seconds;
        violatedAt[nodes] = violated;

        AutoscalerStep step;
        step.nodes = nodes;
        step.p99 = p99;
        step.violated = violated;

        result.nodes = nodes;
        result.feasible = !violated;
        result.p99 = p99;
        result.epochsUsed = epoch + 1;

        int next = nodes;
        if (violated) {
            if (nodes < config.maxNodes) {
                next = nodes + 1;  // scale up
            }
        } else if (nodes > config.minNodes &&
                   p99 <= config.drainHeadroom * config.slaP99Seconds) {
            // Plenty of headroom: probe one node smaller, unless that
            // size is already known to violate (memoized verdicts
            // keep the walk from oscillating).
            auto it = violatedAt.find(nodes - 1);
            if (it == violatedAt.end() || !it->second) {
                next = nodes - 1;
            }
        }
        step.nextNodes = next;
        result.history.push_back(step);
        if (next == nodes) {
            break;  // settled (feasible hold, or pinned at a bound)
        }
        nodes = next;
    }
    return result;
}

}  // namespace fleet
}  // namespace recstack
