#include "fleet/router.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/logging.h"

namespace recstack {
namespace fleet {

const char*
routePolicyName(RoutePolicy policy)
{
    switch (policy) {
        case RoutePolicy::kRoundRobin:
            return "round_robin";
        case RoutePolicy::kConsistentHash:
            return "consistent_hash";
        case RoutePolicy::kPowerOfTwo:
            return "p2c";
    }
    return "unknown";
}

uint64_t
HashRing::mix(uint64_t key)
{
    // SplitMix64 finalizer: full-avalanche 64-bit mix, the same
    // construction Rng seeds state from.
    uint64_t z = key + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

HashRing::HashRing(int virtual_nodes) : virtualNodes_(virtual_nodes)
{
    RECSTACK_CHECK(virtual_nodes >= 1,
                   "need at least one virtual node per node");
}

void
HashRing::addNode(int node)
{
    RECSTACK_CHECK(node >= 0, "node ids are non-negative");
    ring_.reserve(ring_.size() + static_cast<size_t>(virtualNodes_));
    for (int r = 0; r < virtualNodes_; ++r) {
        // Decorrelate the node's replicas by mixing twice with
        // distinct lane constants; collisions across (node, replica)
        // pairs are astronomically unlikely on a 64-bit ring.
        const uint64_t point =
            mix(mix(static_cast<uint64_t>(node) * 0x0123456789abcdefull +
                    0x5bf03635ull) ^
                (static_cast<uint64_t>(r) * 0xc2b2ae3d27d4eb4full));
        ring_.emplace_back(point, node);
    }
    std::sort(ring_.begin(), ring_.end());
    ++numNodes_;
}

void
HashRing::removeNode(int node)
{
    const size_t before = ring_.size();
    ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                               [node](const std::pair<uint64_t, int>& p) {
                                   return p.second == node;
                               }),
                ring_.end());
    if (ring_.size() != before) {
        --numNodes_;
    }
}

int
HashRing::nodeFor(uint64_t key) const
{
    if (ring_.empty()) {
        return -1;
    }
    const uint64_t point = mix(key);
    // First ring entry at or after the key's point, wrapping to the
    // start of the ring past the last entry.
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(),
        std::make_pair(point, std::numeric_limits<int>::min()));
    if (it == ring_.end()) {
        it = ring_.begin();
    }
    return it->second;
}

Router::Router(RoutePolicy policy, int num_nodes, uint64_t seed,
               int virtual_nodes)
    : policy_(policy), numNodes_(num_nodes), rng_(seed),
      ring_(virtual_nodes)
{
    RECSTACK_CHECK(num_nodes >= 1, "need at least one node");
    if (policy_ == RoutePolicy::kConsistentHash) {
        for (int n = 0; n < num_nodes; ++n) {
            ring_.addNode(n);
        }
    }
}

int
Router::pickShallower(int a, double depth_a, int b, double depth_b)
{
    return depth_b < depth_a ? b : a;
}

int
Router::route(uint64_t user_key,
              const std::vector<double>& queue_depths)
{
    switch (policy_) {
        case RoutePolicy::kRoundRobin:
            return static_cast<int>(
                (nextIdx_++) % static_cast<uint64_t>(numNodes_));
        case RoutePolicy::kConsistentHash:
            return ring_.nodeFor(user_key);
        case RoutePolicy::kPowerOfTwo: {
            RECSTACK_CHECK(queue_depths.size() ==
                               static_cast<size_t>(numNodes_),
                           "p2c needs one depth per node");
            if (numNodes_ == 1) {
                return 0;
            }
            const int a = static_cast<int>(
                rng_.nextBounded(static_cast<uint64_t>(numNodes_)));
            int b = static_cast<int>(rng_.nextBounded(
                static_cast<uint64_t>(numNodes_ - 1)));
            if (b >= a) {
                ++b;  // second sample uniform over the other M-1
            }
            return pickShallower(a,
                                 queue_depths[static_cast<size_t>(a)],
                                 b,
                                 queue_depths[static_cast<size_t>(b)]);
        }
    }
    return 0;
}

}  // namespace fleet
}  // namespace recstack
