#include "fleet/fleet_sim.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <memory>

#include "common/logging.h"
#include "models/store_binding.h"
#include "serve/batch_queue.h"
#include "serve/contention.h"

namespace recstack {
namespace fleet {
namespace {

/**
 * Analytic twin of one ServingNode: the exact BatchQueue state
 * machine (serve/batch_queue.cc) run sequentially instead of across
 * threads, advanced incrementally so the router can ask for a node's
 * queue depth at any arrival instant.
 *
 * The twin distinguishes what the real queue cannot: during the run
 * only arrivals before the global frontier are *known* (later global
 * arrivals have not been routed yet), so any launch decision that
 * could be changed by a still-unrouted arrival stalls until the
 * frontier passes its decision point. Because arrivals are routed in
 * strictly increasing time order, every stall eventually resolves
 * with exactly the knowledge the real BatchQueue would have had from
 * the full trace — which is what the differential replay test pins
 * (a captured trace fed to ServingNode::runTrace reproduces the
 * twin's stats).
 */
class VirtualNode
{
  public:
    VirtualNode(QueryScheduler* scheduler, ModelId model,
                size_t platform_idx, const FleetConfig& config,
                const std::vector<double>& factors,
                double remote_seconds_per_sample)
        : scheduler_(scheduler), model_(model),
          platformIdx_(platform_idx), workers_(config.workersPerNode),
          maxBatch_(config.maxBatch),
          maxWait_(config.maxWaitSeconds),
          horizon_(config.simSeconds), factors_(factors),
          remotePerSample_(remote_seconds_per_sample),
          histogram_(config.histogramLoSeconds,
                     config.histogramHiSeconds,
                     config.histogramBuckets)
    {
        readyTime_.assign(static_cast<size_t>(workers_), 0.0);
        active_.assign(static_cast<size_t>(workers_), true);
        perWorkerBusy_.assign(static_cast<size_t>(workers_), 0.0);
        perWorkerLatencies_.resize(static_cast<size_t>(workers_));
        perWorkerLast_.assign(static_cast<size_t>(workers_), 0.0);
    }

    /** Route one arrival here (strictly increasing timestamps). */
    void addArrival(double t)
    {
        known_.push_back(t);
        ++arrived_;
    }

    /** No further arrivals will ever be routed to this node. */
    void endStream() { streamEnded_ = true; }

    /**
     * Outstanding work at time @c t for power-of-two-choices: queued
     * samples (admitted or routed-but-unadmitted — the real queue
     * would have admitted them by @c t) plus workers still in virtual
     * service (strict >, the busyAtLaunch convention). Call
     * advance(t) first.
     */
    double depth(double t) const
    {
        double d = static_cast<double>(known_.size() + pending_.size());
        for (size_t v = 0; v < readyTime_.size(); ++v) {
            if (active_[v] && readyTime_[v] > t) {
                d += 1.0;
            }
        }
        return d;
    }

    /**
     * Process every launch whose time is strictly before @c frontier
     * (pass +inf after endStream() to drain and retire all workers).
     */
    void advance(double frontier)
    {
        while (true) {
            const int w = nextWorker();
            if (w < 0) {
                return;  // all workers retired
            }
            if (!streamEnded_ &&
                readyTime_[static_cast<size_t>(w)] >= frontier) {
                return;  // launch would be at/after the frontier
            }
            if (tryAcquire(w, frontier) == Step::kStalled) {
                return;
            }
        }
    }

    uint64_t arrived() const { return arrived_; }
    uint64_t samplesServed() const { return samplesServed_; }
    uint64_t batchesServed() const { return batchesServed_; }
    const obs::LatencyHistogram& histogram() const { return histogram_; }

    /**
     * Fold this node's run into ServingStats with exactly the
     * formulas ServingNode uses (worker-order summation, shared
     * fillLatencyStats), so the differential replay matches to the
     * last bit. Returns the node-local horizon.
     */
    double finalize(ServingStats* stats,
                    std::vector<double>* pooled_latencies)
    {
        double horizon = horizon_;
        for (double last : perWorkerLast_) {
            horizon = std::max(horizon, last);
        }
        std::vector<double> all;
        double busy = 0.0;
        for (size_t w = 0; w < perWorkerLatencies_.size(); ++w) {
            all.insert(all.end(), perWorkerLatencies_[w].begin(),
                       perWorkerLatencies_[w].end());
            busy += perWorkerBusy_[w];
        }
        stats->samplesArrived = arrived_;
        stats->samplesServed = samplesServed_;
        stats->batchesServed = batchesServed_;
        stats->meanBatch =
            batchesServed_ > 0
                ? static_cast<double>(samplesServed_) /
                      static_cast<double>(batchesServed_)
                : 0.0;
        stats->utilization = std::min(
            1.0, busy / (static_cast<double>(workers_) * horizon));
        stats->offeredLoad =
            busy / (static_cast<double>(workers_) * horizon_);
        stats->throughputQps =
            static_cast<double>(samplesServed_) / horizon;
        if (pooled_latencies != nullptr) {
            pooled_latencies->insert(pooled_latencies->end(),
                                     all.begin(), all.end());
        }
        fillLatencyStats(all, stats);
        totalBusy_ = busy;
        return horizon;
    }

    double totalBusySeconds() const { return totalBusy_; }

  private:
    enum class Step { kLaunched, kRetired, kStalled };

    /** Active worker with the earliest free time (low id ties). */
    int nextWorker() const
    {
        int best = -1;
        for (size_t v = 0; v < readyTime_.size(); ++v) {
            if (!active_[v]) {
                continue;
            }
            if (best < 0 ||
                readyTime_[v] < readyTime_[static_cast<size_t>(best)]) {
                best = static_cast<int>(v);
            }
        }
        return best;
    }

    void admitOne()
    {
        pending_.push_back(known_.front());
        known_.pop_front();
    }

    void admitUpTo(double t)
    {
        while (!known_.empty() && known_.front() <= t) {
            admitOne();
        }
    }

    bool exhausted() const { return streamEnded_ && known_.empty(); }

    /** One BatchQueue::acquire walk for worker @c w. */
    Step tryAcquire(int w, double frontier)
    {
        double t;
        if (walkActive_) {
            // BatchQueue::acquire is one uninterrupted walk whose
            // virtual time only moves forward; a stalled walk must
            // resume from where it paused (its admissions are already
            // in pending_), not restart at the worker's free time.
            RECSTACK_CHECK(walkWorker_ == w,
                           "stalled walk resumed by a different worker");
            t = walkT_;
            walkActive_ = false;
        } else {
            t = readyTime_[static_cast<size_t>(w)];
            admitUpTo(t);
        }
        while (true) {
            if (static_cast<int64_t>(pending_.size()) >= maxBatch_) {
                break;  // batch-full
            }
            if (exhausted()) {
                if (pending_.empty()) {
                    active_[static_cast<size_t>(w)] = false;
                    return Step::kRetired;
                }
                break;  // draining
            }
            if (!pending_.empty()) {
                if (t - pending_.front() >= maxWait_) {
                    break;  // window-expired at t
                }
                const double expiry = pending_.front() + maxWait_;
                if (!known_.empty() && known_.front() <= expiry) {
                    t = known_.front();
                    admitOne();
                    continue;
                }
                // No known arrival inside the window; conclusive only
                // if no still-unrouted arrival (all >= frontier) can
                // land inside it either.
                if (!streamEnded_ && expiry >= frontier) {
                    return stall(w, t);
                }
                t = expiry;
                break;  // window expires before the next arrival
            }
            if (known_.empty()) {
                return stall(w, t);  // stream active, nothing queued
            }
            t = known_.front();
            admitOne();
        }
        launch(w, t);
        return Step::kLaunched;
    }

    /** Park the walk so the next tryAcquire resumes at @c t. */
    Step stall(int w, double t)
    {
        walkActive_ = true;
        walkWorker_ = w;
        walkT_ = t;
        return Step::kStalled;
    }

    void launch(int w, double t)
    {
        const int64_t batch = std::min<int64_t>(
            maxBatch_, static_cast<int64_t>(pending_.size()));
        const int busy = BatchQueue::busyAtLaunch(
            readyTime_, active_, static_cast<size_t>(w), t);
        const double base =
            scheduler_->latency(model_, platformIdx_, batch);
        const int k = std::min(busy, workers_);
        const double factor = factors_[static_cast<size_t>(k - 1)];
        const double svc =
            base * factor +
            static_cast<double>(batch) * remotePerSample_;
        const double completion = t + svc;
        readyTime_[static_cast<size_t>(w)] = completion;
        perWorkerBusy_[static_cast<size_t>(w)] += completion - t;
        perWorkerLast_[static_cast<size_t>(w)] = std::max(
            perWorkerLast_[static_cast<size_t>(w)], completion);
        for (int64_t i = 0; i < batch; ++i) {
            const double latency = completion - pending_.front();
            perWorkerLatencies_[static_cast<size_t>(w)].push_back(
                latency);
            histogram_.record(latency);
            pending_.pop_front();
        }
        samplesServed_ += static_cast<uint64_t>(batch);
        ++batchesServed_;
    }

    QueryScheduler* scheduler_;
    ModelId model_;
    size_t platformIdx_;
    int workers_;
    int64_t maxBatch_;
    double maxWait_;
    double horizon_;
    const std::vector<double>& factors_;
    double remotePerSample_;

    std::deque<double> known_;    ///< routed, not yet admitted
    std::deque<double> pending_;  ///< admitted, waiting for a batch
    bool streamEnded_ = false;
    uint64_t arrived_ = 0;

    bool walkActive_ = false;  ///< a stalled acquire walk is parked
    int walkWorker_ = -1;      ///< worker owning the parked walk
    double walkT_ = 0.0;       ///< virtual time at the stall point

    std::vector<double> readyTime_;
    std::vector<bool> active_;
    std::vector<double> perWorkerBusy_;
    std::vector<double> perWorkerLast_;
    std::vector<std::vector<double>> perWorkerLatencies_;
    uint64_t samplesServed_ = 0;
    uint64_t batchesServed_ = 0;
    double totalBusy_ = 0.0;

    obs::LatencyHistogram histogram_;
};

}  // namespace

FleetSimulator::FleetSimulator(QueryScheduler* scheduler, ModelId model,
                               size_t platform_idx)
    : scheduler_(scheduler), model_(model), platformIdx_(platform_idx)
{
    RECSTACK_CHECK(scheduler_ != nullptr,
                   "fleet simulator needs a scheduler");
    RECSTACK_CHECK(platform_idx < scheduler_->sweep()->platforms().size(),
                   "platform index out of range");
}

FleetResult
FleetSimulator::simulate(const FleetConfig& config,
                         const TrafficConfig& traffic)
{
    RECSTACK_CHECK(config.numNodes >= 1, "need at least one node");
    RECSTACK_CHECK(config.workersPerNode >= 1,
                   "need at least one worker per node");
    RECSTACK_CHECK(config.maxBatch > 0, "batch cap must be > 0");
    RECSTACK_CHECK(config.simSeconds > 0.0, "duration must be > 0");
    RECSTACK_CHECK(traffic.baseQps > 0.0, "arrival rate must be > 0");
    RECSTACK_CHECK(traffic.numUsers > 0, "need a user population");

    SweepCache* sweep = scheduler_->sweep();
    const Platform& platform = sweep->platforms()[platformIdx_];
    const Model& model = sweep->characterizer().model(model_);

    // Prewarm the oracle exactly as ServingNode does, and derive the
    // identical contention factors every node prices with.
    for (int64_t b : scheduler_->batchGrid()) {
        scheduler_->latency(model_, platformIdx_, b);
    }
    int64_t ref_batch = scheduler_->batchGrid().front();
    for (int64_t b : scheduler_->batchGrid()) {
        if (b <= config.maxBatch) {
            ref_batch = b;
        }
    }
    std::vector<double> factors(
        static_cast<size_t>(config.workersPerNode), 1.0);
    if (config.modelContention) {
        factors = contentionSlowdowns(
            sweep->get(model_, platformIdx_, ref_batch), platform,
            config.workersPerNode);
    }

    const PlacementView placement(config.placement, config.numNodes,
                                  model.workload);

    const int M = config.numNodes;
    std::vector<std::unique_ptr<VirtualNode>> nodes;
    nodes.reserve(static_cast<size_t>(M));
    for (int n = 0; n < M; ++n) {
        nodes.push_back(std::make_unique<VirtualNode>(
            scheduler_, model_, platformIdx_, config, factors,
            placement.remoteSecondsPerSample()));
    }

    FleetResult result;
    result.remoteSecondsPerSample = placement.remoteSecondsPerSample();
    result.nodeTableBytes =
        placement.nodeTableBytes(modelEmbeddingBytes(model));
    result.perNode.resize(static_cast<size_t>(M));

    // Global arrival stream: modulated Poisson clock, Zipf user draw
    // per query, route in arrival order. p2c is the only policy that
    // needs the incremental advance during generation — the others
    // route from the key/cursor alone.
    ModulatedPoissonProcess arrivals(traffic.baseQps, traffic.envelope,
                                     traffic.seed);
    ZipfSampler users(static_cast<uint64_t>(traffic.numUsers),
                      traffic.userZipf);
    Rng user_rng(traffic.seed ^ 0x7f4a7c159e3779b9ull);
    Router router(config.policy, M, traffic.seed ^ 0xa0761d6478bd642full,
                  config.virtualNodesPerNode);
    const bool needs_depth = config.policy == RoutePolicy::kPowerOfTwo;
    std::vector<double> depths(static_cast<size_t>(M), 0.0);

    while (true) {
        const double t = arrivals.next();
        if (t >= config.simSeconds) {
            break;
        }
        const uint64_t user = users.sample(user_rng);
        if (needs_depth) {
            for (int n = 0; n < M; ++n) {
                nodes[static_cast<size_t>(n)]->advance(t);
                depths[static_cast<size_t>(n)] =
                    nodes[static_cast<size_t>(n)]->depth(t);
            }
        }
        const int n = router.route(user, depths);
        nodes[static_cast<size_t>(n)]->addArrival(t);
        if (config.captureTraces) {
            result.perNode[static_cast<size_t>(n)]
                .arrivalTrace.push_back(t);
        }
        ++result.totalArrivals;
    }

    // Stream over: drain every node to completion.
    for (auto& node : nodes) {
        node->endStream();
        node->advance(std::numeric_limits<double>::infinity());
    }

    // Per-node stats + the two tail views: exact (pooled latencies)
    // and merged-histogram (the metrics-pipeline roll-up).
    result.mergedHistogram.lo = config.histogramLoSeconds;
    result.mergedHistogram.hi = config.histogramHiSeconds;
    result.mergedHistogram.counts.assign(config.histogramBuckets, 0);
    std::vector<double> pooled;
    double fleet_horizon = config.simSeconds;
    double total_busy = 0.0;
    uint64_t max_routed = 0;
    for (int n = 0; n < M; ++n) {
        VirtualNode& node = *nodes[static_cast<size_t>(n)];
        FleetNodeResult& out = result.perNode[static_cast<size_t>(n)];
        const double node_horizon = node.finalize(&out.stats, &pooled);
        fleet_horizon = std::max(fleet_horizon, node_horizon);
        total_busy += node.totalBusySeconds();
        out.routedQueries = node.arrived();
        max_routed = std::max(max_routed, node.arrived());
        out.latencyHistogram = node.histogram().snapshot();
        result.mergedHistogram.merge(out.latencyHistogram);

        result.aggregate.samplesArrived += out.stats.samplesArrived;
        result.aggregate.samplesServed += out.stats.samplesServed;
        result.aggregate.batchesServed += out.stats.batchesServed;
    }
    result.aggregate.meanBatch =
        result.aggregate.batchesServed > 0
            ? static_cast<double>(result.aggregate.samplesServed) /
                  static_cast<double>(result.aggregate.batchesServed)
            : 0.0;
    const double capacity = static_cast<double>(M) *
                            static_cast<double>(config.workersPerNode);
    result.aggregate.utilization =
        std::min(1.0, total_busy / (capacity * fleet_horizon));
    result.aggregate.offeredLoad =
        total_busy / (capacity * config.simSeconds);
    result.aggregate.throughputQps =
        static_cast<double>(result.aggregate.samplesServed) /
        fleet_horizon;
    fillLatencyStats(pooled, &result.aggregate);
    result.mergedP99 = result.mergedHistogram.percentile(0.99);
    if (result.totalArrivals > 0) {
        const double mean_routed =
            static_cast<double>(result.totalArrivals) /
            static_cast<double>(M);
        result.routedImbalance =
            static_cast<double>(max_routed) / mean_routed;
    }
    return result;
}

}  // namespace fleet
}  // namespace recstack
