#ifndef RECSTACK_FLEET_ROUTER_H_
#define RECSTACK_FLEET_ROUTER_H_

/**
 * @file
 * Fleet front-end routing: which node serves the next query.
 *
 * The fleet simulator (fleet/fleet_sim.h) models the tier in front of
 * DeepRecSys-style inference nodes — the load balancer that assigns
 * each arriving query to one of M ServingNodes. Three classic
 * policies are provided:
 *
 *  - kRoundRobin       — node = arrival index mod M. Key-oblivious;
 *    spreads any traffic mix evenly by count.
 *  - kConsistentHash   — a hash ring with virtual nodes keyed by the
 *    querying user. Sticky (a user always lands on the same node, the
 *    property cache-affinity tiers want) and stable under resizing:
 *    adding or removing a node moves only the keys in the ring arcs
 *    it gains or loses, about 1/M of them (pinned by a property test
 *    in tests/test_fleet.cc). Under Zipf-skewed users the stickiness
 *    concentrates hot users on fixed nodes, so tails inflate — the
 *    trade the simulator makes measurable.
 *  - kPowerOfTwo       — power-of-two-choices: sample two distinct
 *    nodes uniformly, send the query to the one with the shallower
 *    queue at arrival time. The classic result (Mitzenmacher) is an
 *    exponential improvement in max queue depth over random/static
 *    assignment; the router never picks the deeper of its two samples
 *    (exposed as the pure pickShallower() for the property test).
 *
 * Routing is deterministic given the seed: the ring hash is a fixed
 * mixing function and the p2c sampler is a seeded Rng, so a fleet run
 * is exactly reproducible.
 */

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace recstack {
namespace fleet {

/** Front-end assignment policy. */
enum class RoutePolicy {
    kRoundRobin,
    kConsistentHash,
    kPowerOfTwo,
};

const char* routePolicyName(RoutePolicy policy);

/**
 * Consistent-hash ring with virtual nodes.
 *
 * Each node owns `virtualNodes` points on a 64-bit ring, placed by a
 * SplitMix64-style mix of (node, replica); a key is served by the
 * owner of the first ring point at or after hash(key). More virtual
 * nodes → smoother arc distribution → smaller per-node share variance
 * and tighter key movement on membership changes.
 */
class HashRing
{
  public:
    explicit HashRing(int virtual_nodes = 128);

    /** Add node id @c node (idempotent adds are a bug; ids unique). */
    void addNode(int node);

    /** Remove node id @c node; no-op if absent. */
    void removeNode(int node);

    /** Owner of @c key; -1 when the ring is empty. */
    int nodeFor(uint64_t key) const;

    int numNodes() const { return numNodes_; }

    /** Stateless key hash (the mix route() applies to user ids). */
    static uint64_t mix(uint64_t key);

  private:
    int virtualNodes_;
    int numNodes_ = 0;
    /// Sorted ring points: (point, node id).
    std::vector<std::pair<uint64_t, int>> ring_;
};

/**
 * The fleet front end. route() is called once per arrival, in arrival
 * order, with the per-node queue depths at that instant (only the
 * p2c policy reads them).
 */
class Router
{
  public:
    /**
     * @param policy        assignment policy
     * @param num_nodes     fleet size M (>= 1)
     * @param seed          p2c sampling seed
     * @param virtual_nodes ring points per node (consistent hashing)
     */
    Router(RoutePolicy policy, int num_nodes, uint64_t seed,
           int virtual_nodes = 128);

    /**
     * Node for the next arrival. @c user_key identifies the querying
     * user (hashed for the ring); @c queue_depths[i] is node i's
     * outstanding work at the arrival instant (size num_nodes; only
     * read by kPowerOfTwo).
     */
    int route(uint64_t user_key,
              const std::vector<double>& queue_depths);

    RoutePolicy policy() const { return policy_; }
    int numNodes() const { return numNodes_; }

    /**
     * The p2c decision rule, exposed pure so the "never picks the
     * deeper queue" property is testable with exact inputs: returns
     * the index with the smaller depth, preferring @c a on ties
     * (first-sampled wins, keeping the rule deterministic).
     */
    static int pickShallower(int a, double depth_a, int b,
                             double depth_b);

  private:
    RoutePolicy policy_;
    int numNodes_;
    Rng rng_;            ///< p2c sampling stream
    HashRing ring_;
    uint64_t nextIdx_ = 0;  ///< round-robin cursor
};

}  // namespace fleet
}  // namespace recstack

#endif  // RECSTACK_FLEET_ROUTER_H_
