#ifndef RECSTACK_FLEET_PLACEMENT_H_
#define RECSTACK_FLEET_PLACEMENT_H_

/**
 * @file
 * Embedding placement across a fleet: which node holds which rows,
 * and what the misses cost.
 *
 * The paper's models are dominated by embedding-table capacity, so a
 * fleet has a real placement decision to make:
 *
 *  - kReplicated      — every node holds a full copy of every table.
 *    All lookups are local; memory scales with M.
 *  - kRowPartitioned  — rows are sharded across the fleet by the
 *    embedding store's own row-partition function
 *    (EmbeddingStore::rowShard), with each shard kept on
 *    `replicationFactor` consecutive nodes. A node holds about R/M of
 *    every table; lookups for the rest cross the network and pay
 *    `remoteRowSeconds` each.
 *
 * PlacementView turns a (config, fleet size, model workload) triple
 * into the two numbers the simulator prices with: the per-node
 * resident fraction (memory accounting) and the expected remote
 * surcharge per sample (folded into EngineConfig::
 * remoteSecondsPerSample on every node). The surcharge uses the
 * *expected* remote fraction — lookups are row-uniform across shards
 * by construction of rowShard's modulo partition — so the virtual-
 * time price stays a deterministic per-batch quantity, matching how
 * the serving node applies it.
 */

#include <cstdint>

#include "workload/batch_generator.h"

namespace recstack {
namespace fleet {

/** Where embedding rows live across the fleet. */
enum class PlacementKind {
    kReplicated,
    kRowPartitioned,
};

const char* placementKindName(PlacementKind kind);

/** Placement policy knobs. */
struct PlacementConfig {
    PlacementKind kind = PlacementKind::kReplicated;
    /// Copies of each row shard under kRowPartitioned (>= 1; clamped
    /// to the fleet size — R >= M degenerates to full replication).
    int replicationFactor = 1;
    /// Virtual seconds one remote row fetch costs (network hop +
    /// peer read). The per-sample surcharge scales linearly in the
    /// model's pooling factor times the remote fraction.
    double remoteRowSeconds = 2e-7;
};

/** Resolved placement for one fleet size and model. */
class PlacementView
{
  public:
    /**
     * @param config    placement policy
     * @param num_nodes fleet size M (>= 1)
     * @param workload  served model's input schema (pooling factors)
     */
    PlacementView(const PlacementConfig& config, int num_nodes,
                  const WorkloadSpec& workload);

    /** Fraction of every table's rows resident on one node, (0, 1]. */
    double localRowFraction() const { return localFraction_; }

    /** Expected fraction of lookups that must leave the node. */
    double remoteFraction() const { return 1.0 - localFraction_; }

    /**
     * Expected extra virtual seconds per sample from remote-row
     * fetches: sum over sparse features of lookupsPerSample x
     * remoteFraction x remoteRowSeconds. 0 under full replication.
     */
    double remoteSecondsPerSample() const { return remoteSeconds_; }

    /** One node's resident table bytes given one dense copy's size. */
    uint64_t nodeTableBytes(uint64_t one_copy_bytes) const;

    /**
     * Whether @c node holds @c row of @c table: the row's shard
     * (EmbeddingStore::rowShard over M shards) lives on the R
     * consecutive nodes starting at the shard index (mod M). The
     * expected-fraction pricing above is exact for this rule; a test
     * cross-checks the two (tests/test_fleet.cc).
     */
    bool rowIsLocal(int node, int table, int64_t row) const;

    const PlacementConfig& config() const { return config_; }
    int numNodes() const { return numNodes_; }
    int effectiveReplication() const { return effectiveR_; }

  private:
    PlacementConfig config_;
    int numNodes_;
    int effectiveR_;
    double localFraction_;
    double remoteSeconds_;
};

}  // namespace fleet
}  // namespace recstack

#endif  // RECSTACK_FLEET_PLACEMENT_H_
