#ifndef RECSTACK_FLEET_FLEET_SIM_H_
#define RECSTACK_FLEET_FLEET_SIM_H_

/**
 * @file
 * FleetSimulator: M serving nodes behind a router, one virtual clock.
 *
 * The single-node layers characterize one machine (ServingNode /
 * ServingEngine); production recommendation serving runs fleets. This
 * simulator closes the gap analytically:
 *
 *  - Traffic: one global open-loop arrival stream — a Poisson process
 *    at `baseQps`, optionally modulated by a diurnal RateEnvelope
 *    (thinning; workload/rate_envelope.h) — where each query belongs
 *    to a Zipf-skewed user drawn from a population of millions. The
 *    user id is the routing key, so skew is visible to sticky
 *    policies.
 *  - Routing: a fleet/router.h policy assigns each arrival to a node
 *    in arrival order; power-of-two-choices reads the per-node queue
 *    depths at the arrival instant.
 *  - Nodes: each node is an analytic twin of ServingNode's
 *    BatchQueue discipline — same admission rules (batch-full,
 *    window-expired, drain), same strict virtual-time worker order,
 *    same contention-stretched service oracle, same placement
 *    surcharge — advanced incrementally so depth queries at arrival
 *    time are exact. The twin is pinned to the real threaded node by
 *    a differential test: captured per-node traces replayed through
 *    ServingNode::runTrace must reproduce the twin's stats
 *    (tests/test_fleet.cc).
 *  - Observability: every completed query records into its node's own
 *    obs::LatencyHistogram; the fleet tail is the *merge* of those
 *    per-node histograms (HistogramSnapshot::merge), exactly the
 *    roll-up a metrics pipeline performs, and the autoscaler's
 *    control signal.
 *
 * Everything is deterministic given the seeds: same config, same
 * per-query routing, same stats, on any machine.
 */

#include <cstdint>
#include <vector>

#include "fleet/placement.h"
#include "fleet/router.h"
#include "obs/metrics.h"
#include "sched/serving_sim.h"
#include "workload/rate_envelope.h"

namespace recstack {
namespace fleet {

/** The global query stream offered to the fleet. */
struct TrafficConfig {
    /// Mean fleet-wide arrival rate (peak rate when modulated).
    double baseQps = 4000.0;
    /// User population; each query draws its user Zipf-skewed so hot
    /// users dominate, the regime sticky routing suffers under.
    int64_t numUsers = 2000000;
    double userZipf = 0.9;
    /// Arrival-rate envelope (diurnal load curve); constant() leaves
    /// the stream a plain Poisson process.
    RateEnvelope envelope = RateEnvelope::constant();
    uint64_t seed = 42;
};

/** One fleet experiment. */
struct FleetConfig {
    int numNodes = 4;
    RoutePolicy policy = RoutePolicy::kPowerOfTwo;
    PlacementConfig placement;
    int virtualNodesPerNode = 128;  ///< consistent-hash ring points
    /// Per-node serving knobs (the EngineConfig subset the virtual
    /// node prices with).
    int workersPerNode = 2;
    int64_t maxBatch = 256;
    double maxWaitSeconds = 1e-3;
    double simSeconds = 2.0;
    bool modelContention = true;
    /// Keep each node's routed arrival trace in the result (memory
    /// scales with total arrivals) — the hook the differential test
    /// uses to replay a node through the real threaded ServingNode.
    bool captureTraces = false;
    /// Per-node latency histogram bounds (fleet tails are merged from
    /// these, so every node must use the same shape).
    double histogramLoSeconds = 0.0;
    double histogramHiSeconds = 1.0;
    size_t histogramBuckets = 1000;
};

/** One node's view of a fleet run. */
struct FleetNodeResult {
    ServingStats stats;
    uint64_t routedQueries = 0;
    obs::HistogramSnapshot latencyHistogram;
    /// Routed arrival timestamps (only when captureTraces).
    std::vector<double> arrivalTrace;
};

/** Fleet-wide outcome of one run. */
struct FleetResult {
    /// Stats over every query the fleet served (exact percentiles
    /// from the pooled latency list).
    ServingStats aggregate;
    std::vector<FleetNodeResult> perNode;
    /// Merge of the per-node latency histograms — the fleet tail as a
    /// metrics pipeline would see it.
    obs::HistogramSnapshot mergedHistogram;
    /// p99 read from mergedHistogram; agrees with aggregate.p99Latency
    /// within one bucket width for in-range tails.
    double mergedP99 = 0.0;
    uint64_t totalArrivals = 0;
    /// max over nodes of routed queries / mean routed queries
    /// (1.0 = perfectly balanced).
    double routedImbalance = 1.0;
    /// The placement surcharge every node priced with.
    double remoteSecondsPerSample = 0.0;
    /// One node's resident table bytes under the placement.
    uint64_t nodeTableBytes = 0;
};

/** M analytic serving nodes behind a router on one virtual clock. */
class FleetSimulator
{
  public:
    /**
     * @param scheduler    latency oracle over the characterization
     *                     grid (not owned; must outlive the simulator)
     * @param model        served model
     * @param platform_idx CPU platform in the scheduler's sweep
     */
    FleetSimulator(QueryScheduler* scheduler, ModelId model,
                   size_t platform_idx);

    FleetResult simulate(const FleetConfig& config,
                         const TrafficConfig& traffic);

    ModelId model() const { return model_; }
    size_t platformIdx() const { return platformIdx_; }

  private:
    QueryScheduler* scheduler_;
    ModelId model_;
    size_t platformIdx_;
};

}  // namespace fleet
}  // namespace recstack

#endif  // RECSTACK_FLEET_FLEET_SIM_H_
