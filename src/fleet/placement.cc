#include "fleet/placement.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "store/embedding_store.h"

namespace recstack {
namespace fleet {

const char*
placementKindName(PlacementKind kind)
{
    switch (kind) {
        case PlacementKind::kReplicated:
            return "replicated";
        case PlacementKind::kRowPartitioned:
            return "row_partitioned";
    }
    return "unknown";
}

PlacementView::PlacementView(const PlacementConfig& config,
                             int num_nodes,
                             const WorkloadSpec& workload)
    : config_(config), numNodes_(num_nodes)
{
    RECSTACK_CHECK(num_nodes >= 1, "need at least one node");
    RECSTACK_CHECK(config.replicationFactor >= 1,
                   "replication factor must be >= 1");
    RECSTACK_CHECK(config.remoteRowSeconds >= 0.0,
                   "remote row cost must be >= 0");

    if (config_.kind == PlacementKind::kReplicated) {
        effectiveR_ = numNodes_;
        localFraction_ = 1.0;
        remoteSeconds_ = 0.0;
        return;
    }
    effectiveR_ = std::min(config_.replicationFactor, numNodes_);
    localFraction_ = static_cast<double>(effectiveR_) /
                     static_cast<double>(numNodes_);
    double lookups = 0.0;
    for (const CategoricalFeatureSpec& feature : workload.categorical) {
        lookups += static_cast<double>(feature.lookupsPerSample);
    }
    remoteSeconds_ =
        lookups * remoteFraction() * config_.remoteRowSeconds;
}

uint64_t
PlacementView::nodeTableBytes(uint64_t one_copy_bytes) const
{
    return static_cast<uint64_t>(std::llround(
        static_cast<double>(one_copy_bytes) * localFraction_));
}

bool
PlacementView::rowIsLocal(int node, int table, int64_t row) const
{
    RECSTACK_CHECK(node >= 0 && node < numNodes_,
                   "node id out of range");
    if (config_.kind == PlacementKind::kReplicated ||
        effectiveR_ >= numNodes_) {
        return true;
    }
    const int shard = static_cast<int>(EmbeddingStore::rowShard(
        table, row, static_cast<size_t>(numNodes_)));
    // The shard lives on nodes {shard, shard+1, ..., shard+R-1 mod M}.
    const int offset = (node - shard + numNodes_) % numNodes_;
    return offset < effectiveR_;
}

}  // namespace fleet
}  // namespace recstack
