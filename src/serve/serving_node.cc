#include "serve/serving_node.h"

#include <algorithm>
#include <thread>

#include "common/stats.h"
#include "common/thread_pool.h"
#include "models/store_binding.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "serve/batch_queue.h"
#include "serve/contention.h"

namespace recstack {
namespace {

/// Per-query end-to-end latency in seconds: [0, 1) over 1000 buckets
/// gives 1 ms resolution, so histogram percentiles agree with the
/// exact percentileOfSorted path within 1 ms for sub-second tails
/// (cross-checked in tests/test_obs.cc).
obs::LatencyHistogram&
queryLatencyHistogram()
{
    static obs::LatencyHistogram& h =
        obs::MetricsRegistry::global().histogram(
            "serve.query_latency_seconds", 0.0, 1.0, 1000);
    return h;
}

obs::Counter&
queriesCounter()
{
    static obs::Counter& c =
        obs::MetricsRegistry::global().counter("serve.queries");
    return c;
}

/// Flip tracing on for one engine run, restoring the previous state
/// (env-driven or API-driven) on scope exit.
struct TraceCaptureScope {
    explicit TraceCaptureScope(bool capture)
        : restore_(obs::traceEnabled())
    {
        if (capture) {
            obs::setTraceEnabled(true);
        }
    }
    ~TraceCaptureScope() { obs::setTraceEnabled(restore_); }
    const bool restore_;
};

/** Stats a worker accumulates locally while it runs (no sharing). */
struct WorkerLocal {
    std::vector<double> latencies;
    double busySeconds = 0.0;
    double lastCompletion = 0.0;
    double hostSeconds = 0.0;
    double slowdownSum = 0.0;
    double slowdownMax = 1.0;
    uint64_t samplesServed = 0;
    uint64_t batchesServed = 0;
    /// Batches this worker serviced itself (slowdown factors summed
    /// over exactly these; == batchesServed outside heterogeneous
    /// runs).
    uint64_t cpuServicedBatches = 0;
    /// Batches handed over to the GPU lane (heterogeneous runs only).
    uint64_t deferredTickets = 0;
    /// Batches handed over to the PIM lane (pimLaneEnabled runs only).
    uint64_t pimDeferredTickets = 0;
};

}  // namespace

ServingNode::ServingNode(QueryScheduler* scheduler, ModelId model,
                         size_t platform_idx)
    : scheduler_(scheduler), model_(model), platformIdx_(platform_idx)
{
    RECSTACK_CHECK(scheduler_ != nullptr, "node needs a scheduler");
    RECSTACK_CHECK(platform_idx < scheduler_->sweep()->platforms().size(),
                   "platform index out of range");
}

std::shared_ptr<const CompiledNet>
ServingNode::compiled() const
{
    std::lock_guard<std::mutex> lock(compileMu_);
    return compiled_;
}

EngineResult
ServingNode::run(const EngineConfig& config)
{
    return runImpl(config, nullptr);
}

EngineResult
ServingNode::runTrace(const EngineConfig& config,
                      std::vector<double> arrivals)
{
    return runImpl(config, &arrivals);
}

EngineResult
ServingNode::runImpl(const EngineConfig& config,
                     std::vector<double>* trace)
{
    RECSTACK_CHECK(config.numWorkers >= 1, "need at least one worker");
    RECSTACK_CHECK(config.arrivalQps > 0.0, "arrival rate must be > 0");
    RECSTACK_CHECK(config.maxBatch > 0, "batch cap must be > 0");
    RECSTACK_CHECK(config.simSeconds > 0.0, "duration must be > 0");
    RECSTACK_CHECK(config.numThreads >= 0,
                   "intra-op thread count must be >= 0");
    RECSTACK_CHECK(config.remoteSecondsPerSample >= 0.0,
                   "remote surcharge must be >= 0");

    TraceCaptureScope trace_scope(config.captureTrace);
    RECSTACK_SPAN("engine.run",
                  {{"workers", config.numWorkers},
                   {"max_batch", config.maxBatch}});

    SweepCache* sweep = scheduler_->sweep();
    const Platform& platform = sweep->platforms()[platformIdx_];

    // Warm every shared lazily-built structure before threads exist:
    // the built model, its compiled form, the characterization grid
    // the latency oracle interpolates over, and the co-location
    // reference point. After this, workers touch the sweep only under
    // the queue lock.
    const Model& model = sweep->characterizer().model(model_);
    {
        // Compile once per node: workers (and later run() calls)
        // share the schedule and its per-batch memory plans, and only
        // bring their own Workspace + Arena.
        std::lock_guard<std::mutex> lock(compileMu_);
        if (compiled_ == nullptr) {
            compiled_ = CompiledNet::compile(model.net);
        }
    }
    CompiledNet& compiled = *compiled_;
    for (int64_t b : scheduler_->batchGrid()) {
        scheduler_->latency(model_, platformIdx_, b);
    }
    int64_t ref_batch = scheduler_->batchGrid().front();
    for (int64_t b : scheduler_->batchGrid()) {
        if (b <= config.maxBatch) {
            ref_batch = b;  // largest grid knot within the batch cap
        }
    }
    std::vector<double> factors(static_cast<size_t>(config.numWorkers),
                                1.0);
    if (config.modelContention) {
        factors = contentionSlowdowns(
            sweep->get(model_, platformIdx_, ref_batch), platform,
            config.numWorkers);
    }

    // Heterogeneous split (docs/scheduling.md): build the accelerator
    // lane and prewarm the GPU platform's grid before threads exist,
    // mirroring the CPU prewarm above. The lane is only touched under
    // the queue lock (inside the ServiceFn) and after join (drain), so
    // it is single-threaded by construction.
    std::unique_ptr<GpuLane> lane;
    double handoff_seconds = 0.0;
    if (config.heterogeneous) {
        RECSTACK_CHECK(config.gpuPlatformIdx < sweep->platforms().size(),
                       "GPU platform index out of range");
        const Platform& gpu = sweep->platforms()[config.gpuPlatformIdx];
        RECSTACK_CHECK(gpu.kind == PlatformKind::kGpu,
                       "heterogeneous serving needs a GPU platform");
        for (int64_t b : scheduler_->batchGrid()) {
            scheduler_->latency(model_, config.gpuPlatformIdx, b);
        }
        lane = std::make_unique<GpuLane>(
            scheduler_, model_, config.gpuPlatformIdx, config.gpuLane);
        // A deferred batch costs the worker only the hand-off staging;
        // BatchQueue requires a strictly positive service time.
        handoff_seconds = std::max(1e-9, gpu.gpu.hostDispatchSec);
    }

    // Near-memory lane (docs/pim.md): a second accumulation lane of
    // the same GpuLane machinery — the lane prices batches through
    // QueryScheduler::latency, which dispatches on the platform kind,
    // so the only PIM-specific parts are the platform index and the
    // hand-off cost. Built and prewarmed exactly like the GPU lane.
    std::unique_ptr<GpuLane> pim_lane;
    double pim_handoff_seconds = 0.0;
    if (config.pimLaneEnabled) {
        RECSTACK_CHECK(config.pimPlatformIdx < sweep->platforms().size(),
                       "PIM platform index out of range");
        const Platform& pim = sweep->platforms()[config.pimPlatformIdx];
        RECSTACK_CHECK(pim.kind == PlatformKind::kPim,
                       "PIM lane needs a kPim platform");
        for (int64_t b : scheduler_->batchGrid()) {
            scheduler_->latency(model_, config.pimPlatformIdx, b);
        }
        pim_lane = std::make_unique<GpuLane>(
            scheduler_, model_, config.pimPlatformIdx, config.pimLane);
        pim_handoff_seconds = std::max(1e-9, pim.pim.hostDispatchSec);
    }

    // One parameter store for the whole node run: workers bind
    // against it instead of each materializing every table. Built
    // before the worker threads exist, like the compiled net.
    const bool use_store = config.sharedEmbeddingStore &&
                           config.execMode != ExecMode::kProfileOnly &&
                           !EmbeddingStore::disabledByEnv();
    std::unique_ptr<StoreBackedModel> store_model;
    if (use_store) {
        store_model = std::make_unique<StoreBackedModel>(
            model, config.storeConfig);
    }

    BatchQueue::Config qcfg;
    qcfg.arrivalQps = config.arrivalQps;
    qcfg.maxBatch = config.maxBatch;
    qcfg.maxWaitSeconds = config.maxWaitSeconds;
    qcfg.horizonSeconds = config.simSeconds;
    qcfg.seed = config.seed;
    qcfg.numWorkers = config.numWorkers;
    if (trace != nullptr) {
        qcfg.useArrivalTrace = true;
        qcfg.arrivalTrace = std::move(*trace);
    }
    BatchQueue queue(qcfg);

    std::vector<WorkerLocal> locals(
        static_cast<size_t>(config.numWorkers));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(config.numWorkers));
    for (int wid = 0; wid < config.numWorkers; ++wid) {
        threads.emplace_back([&, wid] {
            WorkerLocal& local = locals[static_cast<size_t>(wid)];
            Workspace ws;
            Arena arena;
            BatchGenerator gen(
                model.workload,
                config.seed ^
                    (0x9e3779b97f4a7c15ull *
                     static_cast<uint64_t>(wid + 1)));
            if (config.execMode == ExecMode::kProfileOnly) {
                ws.setShapeOnly(true);
                model.declareParams(ws);
            } else if (store_model != nullptr) {
                store_model->bind(ws);
            } else {
                model.initParams(ws);
            }

            // Invoked under the queue lock (the memoized sweep is not
            // thread-safe); prices this batch's virtual service time.
            // Batches at or above the GPU threshold hand over to the
            // lane here — still under the lock, in the queue's strict
            // virtual-time launch order (GpuLane's determinism
            // contract) — and cost the worker only the dispatch.
            bool deferred = false;
            bool deferred_to_pim = false;
            const BatchQueue::ServiceFn service =
                [&](const BatchTicket& ticket, int busy) {
                    if (lane != nullptr &&
                        scheduler_->routesToGpu(model_, ticket.size())) {
                        lane->submit(ticket, ticket.launchTime);
                        deferred = true;
                        deferred_to_pim = false;
                        return handoff_seconds;
                    }
                    if (pim_lane != nullptr &&
                        scheduler_->routesToPim(model_, ticket.size())) {
                        pim_lane->submit(ticket, ticket.launchTime);
                        deferred = true;
                        deferred_to_pim = true;
                        return pim_handoff_seconds;
                    }
                    deferred = false;
                    const double base = scheduler_->latency(
                        model_, platformIdx_, ticket.size());
                    const int k =
                        std::min(busy, config.numWorkers);
                    const double factor =
                        factors[static_cast<size_t>(k - 1)];
                    local.slowdownSum += factor;
                    local.slowdownMax =
                        std::max(local.slowdownMax, factor);
                    // Placement surcharge: remote-row fetches cross
                    // the network, not the shared socket, so they add
                    // after the contention stretch.
                    return base * factor +
                           static_cast<double>(ticket.size()) *
                               config.remoteSecondsPerSample;
                };

            BatchTicket ticket;
            double completion = 0.0;
            int busy = 0;
            obs::LatencyHistogram& lat_hist = queryLatencyHistogram();
            obs::Counter& queries = queriesCounter();
            while (queue.acquire(wid, service, &ticket, &completion,
                                 &busy)) {
                const int64_t batch = ticket.size();
                if (deferred) {
                    // The samples belong to the lane now; the worker
                    // accounted only the hand-off and moves on.
                    local.busySeconds += completion - ticket.launchTime;
                    local.lastCompletion =
                        std::max(local.lastCompletion, completion);
                    if (deferred_to_pim) {
                        ++local.pimDeferredTickets;
                    } else {
                        ++local.deferredTickets;
                    }
                    continue;
                }
                // Real execution of the served net on this worker's
                // private workspace, outside the queue lock.
                RECSTACK_SPAN("engine.batch",
                              {{"worker", wid}, {"batch", batch}});
                if (config.execMode == ExecMode::kProfileOnly) {
                    gen.declare(ws, batch);
                } else {
                    gen.materialize(ws, batch);
                }
                ExecOptions exec_opts;
                exec_opts.mode = config.execMode;
                exec_opts.numThreads = config.numThreads;
                const NetExecResult exec = Executor::run(
                    compiled, ws, arena, batch, exec_opts);
                local.hostSeconds += exec.hostSeconds;

                local.busySeconds += completion - ticket.launchTime;
                local.lastCompletion =
                    std::max(local.lastCompletion, completion);
                local.samplesServed +=
                    static_cast<uint64_t>(batch);
                ++local.batchesServed;
                ++local.cpuServicedBatches;
                queries.add(static_cast<uint64_t>(batch));
                for (double arrival : ticket.arrivals) {
                    local.latencies.push_back(completion - arrival);
                    lat_hist.record(completion - arrival);
                }
            }
        });
    }
    for (std::thread& t : threads) {
        t.join();
    }

    if (lane != nullptr) {
        // Stream over: flush the lane and fold its served queries into
        // the same obs surface the workers feed (the hill-climbing
        // tuner reads the p99 of this histogram).
        lane->drain();
        obs::LatencyHistogram& lat_hist = queryLatencyHistogram();
        obs::Counter& queries = queriesCounter();
        queries.add(lane->samplesServed());
        for (double lat : lane->latencies()) {
            lat_hist.record(lat);
        }
    }
    if (pim_lane != nullptr) {
        // Same flush for the PIM lane: its tail feeds the one
        // histogram the hill-climbing tuner reads, so the PIM
        // threshold tunes against the same p99 SLA as the GPU split.
        pim_lane->drain();
        obs::LatencyHistogram& lat_hist = queryLatencyHistogram();
        obs::Counter& queries = queriesCounter();
        queries.add(pim_lane->samplesServed());
        for (double lat : pim_lane->latencies()) {
            lat_hist.record(lat);
        }
        obs::MetricsRegistry::global()
            .counter("pim.lane_samples")
            .add(pim_lane->samplesServed());
    }

    double horizon = config.simSeconds;
    for (const WorkerLocal& local : locals) {
        horizon = std::max(horizon, local.lastCompletion);
    }
    if (lane != nullptr) {
        horizon = std::max(horizon, lane->lastCompletion());
    }
    if (pim_lane != nullptr) {
        horizon = std::max(horizon, pim_lane->lastCompletion());
    }

    EngineResult result;
    result.perWorker.resize(locals.size());
    std::vector<double> all_latencies;
    double total_busy = 0.0;
    for (size_t w = 0; w < locals.size(); ++w) {
        WorkerLocal& local = locals[w];
        ServingStats& ws_stats = result.perWorker[w];
        ws_stats.samplesArrived = local.samplesServed;
        ws_stats.samplesServed = local.samplesServed;
        ws_stats.batchesServed = local.batchesServed;
        ws_stats.meanBatch =
            local.batchesServed > 0
                ? static_cast<double>(local.samplesServed) /
                      static_cast<double>(local.batchesServed)
                : 0.0;
        ws_stats.utilization =
            std::min(1.0, local.busySeconds / horizon);
        ws_stats.offeredLoad = local.busySeconds / config.simSeconds;
        ws_stats.throughputQps =
            static_cast<double>(local.samplesServed) / horizon;
        all_latencies.insert(all_latencies.end(),
                             local.latencies.begin(),
                             local.latencies.end());
        fillLatencyStats(local.latencies, &ws_stats);

        result.aggregate.samplesServed += local.samplesServed;
        result.aggregate.batchesServed += local.batchesServed;
        result.hostSeconds += local.hostSeconds;
        result.batchesExecuted += local.batchesServed;
        total_busy += local.busySeconds;
        result.deferredTickets += local.deferredTickets;
        result.pimDeferredTickets += local.pimDeferredTickets;
    }

    if (lane != nullptr) {
        result.heterogeneous = true;
        result.gpuThreshold = scheduler_->gpuThreshold(model_);
        ServingStats& g = result.gpuLaneStats;
        g.samplesArrived = lane->samplesServed();
        g.samplesServed = lane->samplesServed();
        g.batchesServed = lane->batchesServed();
        g.meanBatch =
            g.batchesServed > 0
                ? static_cast<double>(g.samplesServed) /
                      static_cast<double>(g.batchesServed)
                : 0.0;
        g.utilization = std::min(1.0, lane->busySeconds() / horizon);
        g.offeredLoad = lane->busySeconds() / config.simSeconds;
        g.throughputQps =
            static_cast<double>(g.samplesServed) / horizon;
        std::vector<double> lane_latencies = lane->latencies();
        all_latencies.insert(all_latencies.end(),
                             lane_latencies.begin(),
                             lane_latencies.end());
        fillLatencyStats(lane_latencies, &g);

        // The aggregate spans both sides of the split; utilization /
        // offeredLoad below divide by numWorkers + 1 servers.
        result.aggregate.samplesServed += g.samplesServed;
        result.aggregate.batchesServed += g.batchesServed;
        total_busy += lane->busySeconds();
    }

    if (pim_lane != nullptr) {
        result.pimEnabled = true;
        result.pimThreshold = scheduler_->pimThreshold(model_);
        ServingStats& p = result.pimLaneStats;
        p.samplesArrived = pim_lane->samplesServed();
        p.samplesServed = pim_lane->samplesServed();
        p.batchesServed = pim_lane->batchesServed();
        p.meanBatch =
            p.batchesServed > 0
                ? static_cast<double>(p.samplesServed) /
                      static_cast<double>(p.batchesServed)
                : 0.0;
        p.utilization =
            std::min(1.0, pim_lane->busySeconds() / horizon);
        p.offeredLoad = pim_lane->busySeconds() / config.simSeconds;
        p.throughputQps =
            static_cast<double>(p.samplesServed) / horizon;
        std::vector<double> pim_latencies = pim_lane->latencies();
        all_latencies.insert(all_latencies.end(),
                             pim_latencies.begin(),
                             pim_latencies.end());
        fillLatencyStats(pim_latencies, &p);

        result.aggregate.samplesServed += p.samplesServed;
        result.aggregate.batchesServed += p.batchesServed;
        total_busy += pim_lane->busySeconds();
    }

    result.aggregate.samplesArrived = queue.samplesArrived();
    result.aggregate.meanBatch =
        result.aggregate.batchesServed > 0
            ? static_cast<double>(result.aggregate.samplesServed) /
                  static_cast<double>(result.aggregate.batchesServed)
            : 0.0;
    const double capacity = static_cast<double>(config.numWorkers) +
                            (lane != nullptr ? 1.0 : 0.0) +
                            (pim_lane != nullptr ? 1.0 : 0.0);
    result.aggregate.utilization =
        std::min(1.0, total_busy / (capacity * horizon));
    result.aggregate.offeredLoad =
        total_busy / (capacity * config.simSeconds);
    result.aggregate.throughputQps =
        static_cast<double>(result.aggregate.samplesServed) / horizon;
    fillLatencyStats(all_latencies, &result.aggregate);

    result.intraOpThreads =
        config.numThreads > 0 ? config.numThreads : intraOpThreads();
    // Table-memory accounting: the shared store keeps one backing
    // copy plus the hot-row caches resident; legacy numeric mode kept
    // a full copy inside every worker's workspace.
    result.tableBytesOneCopy = modelEmbeddingBytes(model);
    if (config.execMode != ExecMode::kProfileOnly) {
        result.perWorkerTableBytes =
            result.tableBytesOneCopy *
            static_cast<uint64_t>(config.numWorkers);
        if (store_model != nullptr) {
            result.storeShared = true;
            result.residentTableBytes = store_model->residentBytes();
            result.storeStats = store_model->store().stats();
            exportStoreStats(result.storeStats);
        } else {
            result.residentTableBytes = result.perWorkerTableBytes;
        }
    }
    if (result.batchesExecuted > 0) {
        result.hostSecondsPerBatch =
            result.hostSeconds /
            static_cast<double>(result.batchesExecuted);
    }
    // Slowdown factors were summed over CPU-serviced batches only
    // (deferred hand-offs and the GPU lane see no socket contention),
    // so average over exactly those. Outside heterogeneous runs the
    // count equals aggregate.batchesServed, as before.
    uint64_t cpu_batches = 0;
    double slow_sum = 0.0;
    for (const WorkerLocal& local : locals) {
        cpu_batches += local.cpuServicedBatches;
        slow_sum += local.slowdownSum;
        result.maxSlowdown =
            std::max(result.maxSlowdown, local.slowdownMax);
    }
    if (cpu_batches > 0) {
        result.meanSlowdown =
            slow_sum / static_cast<double>(cpu_batches);
    }
    return result;
}

}  // namespace recstack
