#ifndef RECSTACK_SERVE_SERVING_ENGINE_H_
#define RECSTACK_SERVE_SERVING_ENGINE_H_

/**
 * @file
 * ServingEngine: a multi-worker inference server, the concurrent
 * counterpart of the analytical ServingSimulator.
 *
 * DeepRecSys splits at-scale recommendation serving into a query
 * scheduler and a pool of inference engines; this module reproduces
 * that split on real threads. N workers each own a Workspace and a
 * BatchGenerator, pull dynamic batches from a shared BatchQueue
 * (Poisson arrivals, max-batch + max-wait admission) and genuinely
 * drive Executor::run on the served model's net for every batch.
 *
 * Latency accounting is virtual: each batch's service time comes from
 * the QueryScheduler's characterization-grid oracle, stretched by the
 * multicore co-location model (serve/contention.h) according to how
 * many workers are busy at launch. That makes the engine:
 *
 *  - deterministic: stats are a pure function of the config, never of
 *    OS thread interleaving (the queue releases batches in virtual-
 *    time order);
 *  - consistent: with one worker it serves the exact batch sequence
 *    of ServingSimulator::simulate;
 *  - contention-aware: with N workers, per-worker latency inflates
 *    the way estimateMulticoreScaling predicts, so embedding-heavy
 *    models saturate aggregate throughput early.
 *
 * The machinery lives in ServingNode (serve/serving_node.h), the unit
 * the fleet simulator (src/fleet/) composes M of behind a router;
 * ServingEngine is the single-machine face of one node, kept as the
 * stable entry point for single-node experiments, the CLI, and the
 * tests that pin engine behavior. EngineConfig / EngineResult are
 * defined with the node and re-exported here.
 */

#include "serve/serving_node.h"

namespace recstack {

/** Thread-pooled dynamic-batching inference server (one node). */
class ServingEngine
{
  public:
    /**
     * @param scheduler    latency oracle over the characterization
     *                     grid (not owned; must outlive the engine)
     * @param model        served model
     * @param platform_idx platform in the scheduler's sweep
     */
    ServingEngine(QueryScheduler* scheduler, ModelId model,
                  size_t platform_idx)
        : node_(scheduler, model, platform_idx)
    {
    }

    EngineResult run(const EngineConfig& config)
    {
        return node_.run(config);
    }

    /**
     * The engine's compiled net (compile-once: shared by all workers
     * of all run() calls; workers only differ in their private
     * Workspace + Arena). Null until the first run().
     */
    std::shared_ptr<const CompiledNet> compiled() const
    {
        return node_.compiled();
    }

  private:
    ServingNode node_;
};

}  // namespace recstack

#endif  // RECSTACK_SERVE_SERVING_ENGINE_H_
