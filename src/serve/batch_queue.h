#ifndef RECSTACK_SERVE_BATCH_QUEUE_H_
#define RECSTACK_SERVE_BATCH_QUEUE_H_

/**
 * @file
 * BatchQueue: the concurrent admission front of the multi-worker
 * serving engine.
 *
 * Queries arrive on an open-loop Poisson clock (PoissonProcess, the
 * same stream the analytical ServingSimulator replays) and pool in a
 * shared pending queue. A batch is released to a worker when
 *
 *   - the pending queue holds maxBatch samples (batch-full),
 *   - the oldest pending sample has waited maxWaitSeconds
 *     (window-expired), or
 *   - the arrival stream has ended and samples are still pending
 *     (draining),
 *
 * mirroring ServingConfig's dynamic-batching admission exactly.
 *
 * Time is virtual: a worker's service time is priced by the engine's
 * latency oracle, not wall clock, so the engine is a *measured*
 * discrete-event system executed by real threads. To keep results
 * independent of OS thread interleaving, the queue hands out batches
 * in strict virtual-time order: only the worker with the earliest
 * virtual free time (ties broken by worker id) may take the next
 * batch; later workers block until their virtual turn. A worker's
 * next free time is known at assignment time (launch + service), so
 * the ordering never deadlocks — the argmin worker is always either
 * executing its batch or inside acquire().
 */

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "workload/batch_generator.h"

namespace recstack {

/** One batch released by the queue to a worker. */
struct BatchTicket {
    uint64_t seq = 0;          ///< global release order
    double launchTime = 0.0;   ///< virtual time the batch starts service
    std::vector<double> arrivals;  ///< per-sample arrival timestamps

    int64_t size() const { return static_cast<int64_t>(arrivals.size()); }
};

/** Deterministic concurrent dynamic-batching queue. */
class BatchQueue
{
  public:
    struct Config {
        double arrivalQps = 1000.0;
        int64_t maxBatch = 256;
        double maxWaitSeconds = 1e-3;
        /// Arrivals are generated for timestamps < horizonSeconds.
        double horizonSeconds = 2.0;
        uint64_t seed = 42;
        int numWorkers = 1;
        /// Explicit arrival-trace mode (fleet nodes): when set, the
        /// queue admits the timestamps in `arrivalTrace` (ascending,
        /// >= 0) instead of drawing a Poisson stream — a routed node
        /// serves exactly the sub-stream a fleet router assigned to
        /// it. Timestamps at or past horizonSeconds are ignored, the
        /// same cut-off the generated stream has; admission, launch,
        /// and drain rules are unchanged, so a trace equal to the
        /// Poisson stream reproduces the generated run exactly.
        bool useArrivalTrace = false;
        std::vector<double> arrivalTrace;
    };

    explicit BatchQueue(const Config& cfg);

    /**
     * Virtual service-time oracle: (ticket, busy workers at launch
     * including the caller) -> seconds. Invoked under the queue lock,
     * so implementations may touch non-thread-safe shared state (the
     * memoized characterization sweep).
     */
    using ServiceFn = std::function<double(const BatchTicket&, int)>;

    /**
     * Block until worker @c wid is the earliest-virtually-free active
     * worker, then form and take the next batch. On success fills the
     * ticket, the batch's virtual completion time (launch + service)
     * and the number of busy workers at launch, and returns true.
     * Returns false when the arrival stream is exhausted and the
     * pending queue is empty — the worker has retired.
     */
    bool acquire(int wid, const ServiceFn& service, BatchTicket* ticket,
                 double* completion, int* busy_at_launch);

    /**
     * Occupancy at a batch launch: the caller plus every other active
     * worker whose current batch is still in virtual service at time
     * @c t.
     *
     * Tie convention (pinned): a batch occupies its worker over the
     * half-open interval [launch, completion) — a worker whose batch
     * completes *exactly* at @c t is idle at @c t, not busy. This is
     * the same convention under which the launching worker itself is
     * free to take a new batch at its own completion instant
     * (readyTime_[wid] == t), so the two sides of the accounting
     * agree: occupancy counts exactly the workers that could not
     * launch at @c t. The contention model (serve/contention.h) keys
     * its slowdown factor off this count, so the convention is locked
     * in by a virtual-time tie regression test in
     * tests/test_serving_engine.cc.
     *
     * Exposed as a pure static so the tie case can be tested with
     * exact doubles; acquire() uses it under the queue lock.
     */
    static int busyAtLaunch(const std::vector<double>& ready_times,
                            const std::vector<bool>& active, size_t wid,
                            double t);

    /** Samples admitted from the arrival stream so far. */
    uint64_t samplesArrived() const;

  private:
    bool isTurn(int wid) const;
    void admitUpTo(double t);
    void admitOne();
    double drawArrival();

    Config cfg_;
    mutable std::mutex mu_;
    std::condition_variable cv_;

    PoissonProcess process_;
    size_t traceCursor_ = 0;
    double nextArrival_ = 0.0;
    bool exhausted_ = false;
    std::deque<double> pending_;   // arrival times of waiting samples
    uint64_t arrived_ = 0;
    uint64_t seq_ = 0;

    std::vector<double> readyTime_;  ///< per-worker virtual free time
    std::vector<bool> active_;
};

}  // namespace recstack

#endif  // RECSTACK_SERVE_BATCH_QUEUE_H_
