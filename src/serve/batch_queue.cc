#include "serve/batch_queue.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace recstack {
namespace {

struct QueueMetrics {
    obs::Counter& batches;
    obs::Counter& samples;
    obs::Counter& launchFull;
    obs::Counter& launchWindow;
    obs::Counter& launchDrain;

    static QueueMetrics& get()
    {
        static QueueMetrics* m = [] {
            auto& reg = obs::MetricsRegistry::global();
            return new QueueMetrics{
                reg.counter("queue.batches"),
                reg.counter("queue.samples"),
                reg.counter("queue.launch_batch_full"),
                reg.counter("queue.launch_window_expired"),
                reg.counter("queue.launch_drain"),
            };
        }();
        return *m;
    }
};

}  // namespace

BatchQueue::BatchQueue(const Config& cfg)
    : cfg_(cfg), process_(cfg.arrivalQps, cfg.seed)
{
    RECSTACK_CHECK(cfg_.maxBatch > 0, "batch cap must be > 0");
    RECSTACK_CHECK(cfg_.horizonSeconds > 0.0, "horizon must be > 0");
    RECSTACK_CHECK(cfg_.numWorkers >= 1, "need at least one worker");
    if (cfg_.useArrivalTrace) {
        for (size_t i = 0; i < cfg_.arrivalTrace.size(); ++i) {
            RECSTACK_CHECK(cfg_.arrivalTrace[i] >= 0.0,
                           "trace arrivals must be >= 0");
            RECSTACK_CHECK(i == 0 || cfg_.arrivalTrace[i] >=
                                         cfg_.arrivalTrace[i - 1],
                           "trace arrivals must be ascending");
        }
    }
    readyTime_.assign(static_cast<size_t>(cfg_.numWorkers), 0.0);
    active_.assign(static_cast<size_t>(cfg_.numWorkers), true);
    nextArrival_ = drawArrival();
    exhausted_ = nextArrival_ >= cfg_.horizonSeconds;
}

double
BatchQueue::drawArrival()
{
    if (cfg_.useArrivalTrace) {
        if (traceCursor_ >= cfg_.arrivalTrace.size()) {
            // Past-the-end sentinel >= any horizon: flips exhausted_.
            return cfg_.horizonSeconds;
        }
        return cfg_.arrivalTrace[traceCursor_++];
    }
    return process_.next();
}

bool
BatchQueue::isTurn(int wid) const
{
    const size_t w = static_cast<size_t>(wid);
    for (size_t v = 0; v < readyTime_.size(); ++v) {
        if (v == w || !active_[v]) {
            continue;
        }
        if (readyTime_[v] < readyTime_[w] ||
            (readyTime_[v] == readyTime_[w] && v < w)) {
            return false;
        }
    }
    return true;
}

void
BatchQueue::admitOne()
{
    pending_.push_back(nextArrival_);
    ++arrived_;
    nextArrival_ = drawArrival();
    exhausted_ = nextArrival_ >= cfg_.horizonSeconds;
}

void
BatchQueue::admitUpTo(double t)
{
    while (!exhausted_ && nextArrival_ <= t) {
        admitOne();
    }
}

bool
BatchQueue::acquire(int wid, const ServiceFn& service, BatchTicket* ticket,
                    double* completion, int* busy_at_launch)
{
    RECSTACK_CHECK(wid >= 0 && wid < cfg_.numWorkers,
                   "worker id out of range");
    obs::ScopedSpan span("queue.acquire", {{"worker", wid}});
    std::unique_lock<std::mutex> lock(mu_);
    RECSTACK_CHECK(active_[static_cast<size_t>(wid)],
                   "acquire on a retired worker");
    cv_.wait(lock, [&] { return isTurn(wid); });

    // Walk virtual time forward from this worker's free point until an
    // admission rule fires. This is the same event sequence the
    // analytical simulator steps through, so at one worker the two
    // systems serve identical batches.
    QueueMetrics& qm = QueueMetrics::get();
    double t = readyTime_[static_cast<size_t>(wid)];
    admitUpTo(t);
    while (true) {
        if (static_cast<int64_t>(pending_.size()) >= cfg_.maxBatch) {
            qm.launchFull.add();
            break;  // batch-full
        }
        if (exhausted_) {
            if (pending_.empty()) {
                active_[static_cast<size_t>(wid)] = false;
                cv_.notify_all();
                return false;  // drained: worker retires
            }
            qm.launchDrain.add();
            break;  // draining: flush what is queued
        }
        if (!pending_.empty()) {
            if (t - pending_.front() >= cfg_.maxWaitSeconds) {
                qm.launchWindow.add();
                break;  // window-expired
            }
            const double expiry = pending_.front() + cfg_.maxWaitSeconds;
            if (nextArrival_ <= expiry) {
                t = nextArrival_;
                admitOne();
            } else {
                t = expiry;
                qm.launchWindow.add();
                break;  // window expires before the next arrival
            }
        } else {
            t = nextArrival_;
            admitOne();
        }
    }

    const int64_t batch = std::min<int64_t>(
        cfg_.maxBatch, static_cast<int64_t>(pending_.size()));
    ticket->seq = seq_++;
    ticket->launchTime = t;
    ticket->arrivals.clear();
    ticket->arrivals.reserve(static_cast<size_t>(batch));
    for (int64_t i = 0; i < batch; ++i) {
        ticket->arrivals.push_back(pending_.front());
        pending_.pop_front();
    }

    // Occupancy at launch: workers whose current batch is still in
    // virtual service when this one starts, plus the caller. See
    // busyAtLaunch() in batch_queue.h for the completion-tie
    // convention.
    const int busy =
        busyAtLaunch(readyTime_, active_, static_cast<size_t>(wid), t);

    const double svc = service(*ticket, busy);
    RECSTACK_CHECK(svc > 0.0, "service time must be > 0");
    readyTime_[static_cast<size_t>(wid)] = t + svc;
    *completion = t + svc;
    *busy_at_launch = busy;
    qm.batches.add();
    qm.samples.add(static_cast<uint64_t>(batch));
    if (span.active()) {
        span.arg("batch", batch);
        span.arg("busy", busy);
    }
    cv_.notify_all();
    return true;
}

int
BatchQueue::busyAtLaunch(const std::vector<double>& ready_times,
                         const std::vector<bool>& active, size_t wid,
                         double t)
{
    int busy = 1;  // the caller
    for (size_t v = 0; v < ready_times.size(); ++v) {
        // Strict >: service occupies [launch, completion), so a worker
        // completing exactly at t is idle at t (header contract).
        if (v != wid && active[v] && ready_times[v] > t) {
            ++busy;
        }
    }
    return busy;
}

uint64_t
BatchQueue::samplesArrived() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return arrived_;
}

}  // namespace recstack
