#include "serve/gpu_lane.h"

#include <algorithm>

#include "common/logging.h"

namespace recstack {

GpuLane::GpuLane(QueryScheduler* scheduler, ModelId model,
                 size_t gpu_platform, const GpuLaneConfig& cfg)
    : scheduler_(scheduler),
      model_(model),
      gpuPlatform_(gpu_platform),
      cfg_(cfg)
{
    RECSTACK_CHECK(scheduler_ != nullptr, "lane needs a scheduler");
    RECSTACK_CHECK(gpu_platform < scheduler_->sweep()->platforms().size(),
                   "GPU platform index out of range");
    // The same accumulation lane prices either accelerator: a GPU
    // (heterogeneous serving) or the PIM DPU ranks (docs/pim.md).
    const PlatformKind kind =
        scheduler_->sweep()->platforms()[gpu_platform].kind;
    RECSTACK_CHECK(kind == PlatformKind::kGpu ||
                       kind == PlatformKind::kPim,
                   "lane platform must be an accelerator (GPU or PIM)");
    RECSTACK_CHECK(cfg_.maxBatch > 0, "lane batch cap must be > 0");
    RECSTACK_CHECK(cfg_.maxWaitSeconds >= 0.0,
                   "lane window must be >= 0");
}

void
GpuLane::launch(double trigger, GpuLaunch::Reason reason)
{
    const int64_t batch = std::min<int64_t>(
        cfg_.maxBatch, static_cast<int64_t>(pending_.size()));
    RECSTACK_CHECK(batch > 0, "lane launch with nothing pending");

    // Serialize behind the device: the accelerator runs one batch at
    // a time on the virtual clock.
    const double launch_time = std::max(trigger, readyTime_);
    const double service =
        scheduler_->latency(model_, gpuPlatform_, batch);
    const double completion = launch_time + service;

    GpuLaunch rec;
    rec.launchTime = launch_time;
    rec.completionTime = completion;
    rec.batch = batch;
    rec.reason = reason;
    launches_.push_back(rec);

    for (int64_t i = 0; i < batch; ++i) {
        latencies_.push_back(completion - pending_.front().arrival);
        pending_.pop_front();
    }
    samplesServed_ += static_cast<uint64_t>(batch);
    ++batchesServed_;
    busySeconds_ += service;
    lastCompletion_ = std::max(lastCompletion_, completion);
    readyTime_ = completion;
}

void
GpuLane::advanceTo(double now)
{
    while (!pending_.empty() &&
           pending_.front().submit + cfg_.maxWaitSeconds <= now) {
        launch(pending_.front().submit + cfg_.maxWaitSeconds,
               GpuLaunch::Reason::kWindow);
    }
}

void
GpuLane::submit(const BatchTicket& ticket, double now)
{
    // Fire any window expiry that came due strictly before this
    // hand-off, so launches interleave with submissions in virtual-
    // time order.
    advanceTo(now);
    for (double arrival : ticket.arrivals) {
        pending_.push_back({arrival, now});
    }
    while (static_cast<int64_t>(pending_.size()) >= cfg_.maxBatch) {
        launch(now, GpuLaunch::Reason::kFull);
    }
}

void
GpuLane::drain()
{
    while (!pending_.empty()) {
        launch(pending_.front().submit + cfg_.maxWaitSeconds,
               GpuLaunch::Reason::kDrain);
    }
}

}  // namespace recstack
