#ifndef RECSTACK_SERVE_GPU_LANE_H_
#define RECSTACK_SERVE_GPU_LANE_H_

/**
 * @file
 * GpuLane: the accelerator backend of the heterogeneous serving
 * engine (DeepRecSys's accelInferenceEngine, in virtual time).
 *
 * The serving engine's CPU workers pull dynamic batches from the
 * BatchQueue; with heterogeneous serving enabled, batches at or above
 * the model's GPU threshold (QueryScheduler::gpuThreshold) are not
 * serviced on the worker — the worker only pays the host dispatch
 * cost of handing the batch over, and the samples land here. The lane
 * is a single virtual accelerator with its own dynamic batcher in
 * front of it:
 *
 *  - deferred samples accumulate in a pending queue; a GPU batch
 *    launches when maxBatch samples are pending (batch-full) or when
 *    the oldest pending sample has sat in the lane for
 *    maxWaitSeconds (window-expired), whichever virtual instant comes
 *    first;
 *  - a launch is serialized behind the device (launch time =
 *    max(trigger, device-ready)), and its service time comes from the
 *    same characterization oracle as the CPU workers'
 *    (QueryScheduler::latency on the GPU platform, i.e. the batch is
 *    priced by GpuModel::simulateNet through the sweep grid), so CPU
 *    and GPU completions live on one consistent virtual clock;
 *  - per-sample latency is end-to-end: completion minus the sample's
 *    *original* arrival time, batching delay of both queues included.
 *
 * Determinism: the engine invokes submit()/advanceTo() under the
 * BatchQueue lock, in the strict virtual-time launch order the queue
 * already enforces, and drain() after the workers have joined. The
 * lane itself is therefore single-threaded by construction and its
 * stats are a pure function of the offered ticket sequence.
 *
 * Drain semantics: when the arrival stream is exhausted, remaining
 * pending samples launch at what would have been their window-expiry
 * instant (oldest submit + maxWaitSeconds), exactly as if the stream
 * had continued without filling the batch — so a lane-side drain
 * never completes a sample *earlier* than the live admission rules
 * would have.
 */

#include <cstdint>
#include <deque>
#include <vector>

#include "sched/query_scheduler.h"
#include "serve/batch_queue.h"

namespace recstack {

/** Dynamic-batching knobs of the accelerator lane. */
struct GpuLaneConfig {
    /// Accumulation cap: a GPU batch never exceeds this many samples.
    int64_t maxBatch = 1024;
    /// Accumulation window measured from the oldest pending sample's
    /// hand-off time (not its original arrival).
    double maxWaitSeconds = 2e-3;
};

/** One GPU batch the lane launched (for reporting / tests). */
struct GpuLaunch {
    double launchTime = 0.0;
    double completionTime = 0.0;
    int64_t batch = 0;
    /// Why the batch launched: batch-full, window-expired, or drain.
    enum class Reason { kFull, kWindow, kDrain } reason = Reason::kFull;
};

/** Single virtual accelerator with an accumulation queue in front. */
class GpuLane
{
  public:
    /**
     * @param scheduler     latency oracle (not owned; must outlive)
     * @param model         served model
     * @param gpu_platform  index of a GPU platform in the scheduler's
     *                      sweep
     */
    GpuLane(QueryScheduler* scheduler, ModelId model, size_t gpu_platform,
            const GpuLaneConfig& cfg);

    /**
     * Hand one deferred dynamic batch to the lane at virtual time
     * @c now (the ticket's launch time on the CPU side). Calls must
     * arrive in non-decreasing @c now order; window expiries due at or
     * before @c now fire first, then the ticket's samples join the
     * pending queue, then any batch-full launches fire.
     */
    void submit(const BatchTicket& ticket, double now);

    /** Fire window expiries due at or before @c now (no new work). */
    void advanceTo(double now);

    /** Stream over: flush what is pending (see drain semantics). */
    void drain();

    // Accessors (call after drain() for final values).
    uint64_t samplesServed() const { return samplesServed_; }
    uint64_t batchesServed() const { return batchesServed_; }
    double busySeconds() const { return busySeconds_; }
    double lastCompletion() const { return lastCompletion_; }
    const std::vector<double>& latencies() const { return latencies_; }
    const std::vector<GpuLaunch>& launches() const { return launches_; }
    int64_t pendingSamples() const
    {
        return static_cast<int64_t>(pending_.size());
    }

  private:
    struct PendingSample {
        double arrival = 0.0;  ///< original query arrival time
        double submit = 0.0;   ///< hand-off time into the lane
    };

    void launch(double trigger, GpuLaunch::Reason reason);

    QueryScheduler* scheduler_;
    ModelId model_;
    size_t gpuPlatform_;
    GpuLaneConfig cfg_;

    std::deque<PendingSample> pending_;
    double readyTime_ = 0.0;  ///< device virtual free time

    uint64_t samplesServed_ = 0;
    uint64_t batchesServed_ = 0;
    double busySeconds_ = 0.0;
    double lastCompletion_ = 0.0;
    std::vector<double> latencies_;
    std::vector<GpuLaunch> launches_;
};

}  // namespace recstack

#endif  // RECSTACK_SERVE_GPU_LANE_H_
