#ifndef RECSTACK_SERVE_CONTENTION_H_
#define RECSTACK_SERVE_CONTENTION_H_

/**
 * @file
 * Occupancy -> service-time inflation coupling between the serving
 * engine and the analytical multicore co-location model.
 *
 * estimateMulticoreScaling prices what happens when k copies of an
 * inference engine share one socket: private resources scale, the
 * shared L3 is effectively partitioned, and DRAM bandwidth saturates.
 * The serving engine samples its occupancy (busy workers) at every
 * batch launch and stretches that batch's oracle latency by the
 * matching per-engine slowdown, making the threaded engine the
 * measured counterpart of the analytical scaling curve: embedding-
 * dominated models inflate hard, FC-dominated models barely notice.
 */

#include <vector>

#include "core/characterizer.h"

namespace recstack {

/**
 * Per-occupancy service-time inflation factors, index k-1 for k busy
 * workers. Factors are normalized so one busy worker is exactly 1.0
 * (the engine must agree with the single-server simulator when run
 * with one worker). GPU platforms return all-ones: co-located workers
 * there model independent devices, not a shared socket.
 *
 * @param single      characterization of one engine running alone at
 *                    a representative (typically max-batch) operating
 *                    point
 * @param platform    the serving platform
 * @param num_workers highest occupancy to price (>= 1)
 */
std::vector<double> contentionSlowdowns(const RunResult& single,
                                        const Platform& platform,
                                        int num_workers);

}  // namespace recstack

#endif  // RECSTACK_SERVE_CONTENTION_H_
