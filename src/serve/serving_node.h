#ifndef RECSTACK_SERVE_SERVING_NODE_H_
#define RECSTACK_SERVE_SERVING_NODE_H_

/**
 * @file
 * ServingNode: one inference machine, the unit of fleet composition.
 *
 * A node owns everything one machine contributes to a serving fleet:
 * a pool of worker threads, the dynamic-batching BatchQueue in front
 * of them, an optional heterogeneous GPU lane, and (in real-numerics
 * modes) a shared placement-aware view of the embedding parameter
 * store. ServingEngine (serve/serving_engine.h) is now a thin wrapper
 * that runs a single node against its own Poisson arrival stream —
 * the historical single-machine experiment — while the fleet
 * simulator (src/fleet/) composes M nodes behind a router and drives
 * each with the routed sub-stream via runTrace().
 *
 * Behavior is the multi-worker engine's, unchanged (see the original
 * file comment there): latency accounting is virtual (the
 * QueryScheduler's characterization-grid oracle stretched by the
 * socket co-location model), execution per batch is real
 * (Executor::run on the served net), and stats are a deterministic
 * function of the config. A node additionally prices *placement*: in
 * a fleet whose embedding rows are range-partitioned across nodes,
 * lookups for rows this node does not hold pay a remote-fetch
 * surcharge (EngineConfig::remoteSecondsPerSample), folded into each
 * CPU-serviced batch's virtual service time.
 */

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "graph/executor.h"
#include "sched/serving_sim.h"
#include "serve/gpu_lane.h"
#include "store/embedding_store.h"

namespace recstack {

/** One serving run on a node (or on the single-node engine). */
struct EngineConfig {
    int numWorkers = 1;            ///< inference worker threads
    double arrivalQps = 1000.0;    ///< mean sample arrival rate
    int64_t maxBatch = 256;        ///< dynamic-batching cap
    double maxWaitSeconds = 1e-3;  ///< batching window
    double simSeconds = 2.0;       ///< arrival-stream duration
    uint64_t seed = 42;
    /// How workers execute the net per batch: kNumericOnly runs real
    /// numerics (weights materialized per worker — tests, small
    /// models); kProfileOnly runs shape inference only (full-size
    /// models, high load). kFull additionally lowers profiles.
    ExecMode execMode = ExecMode::kProfileOnly;
    /// Couple service times to the shared-L3/DRAM contention model.
    bool modelContention = true;
    /// Intra-op width each worker passes to Executor::run. All
    /// workers share the one process-wide pool
    /// (common/thread_pool.h). 1 = serial kernels (default: inter-op
    /// worker parallelism already covers the socket); 0 = process
    /// default (RECSTACK_NUM_THREADS). Numerics are bit-identical at
    /// any width, so this only moves EngineResult::hostSeconds.
    int numThreads = 1;
    /// Share one sharded EmbeddingStore across all workers when
    /// running real numerics: workers bind shape-only table blobs
    /// against it instead of materializing a private copy of every
    /// table, cutting resident table bytes from O(workers) copies to
    /// O(1 copy + cache). Numerics stay bit-identical. Ignored in
    /// kProfileOnly (no table payloads exist there), and the env
    /// hatch RECSTACK_DISABLE_STORE=1 forces the legacy per-worker
    /// copies regardless.
    bool sharedEmbeddingStore = true;
    /// Shard / cache / tier knobs of the shared store.
    StoreConfig storeConfig;
    /// Turn span tracing on for the duration of this run (restoring
    /// the previous setting afterwards), so the run can be exported
    /// as a Chrome trace without touching RECSTACK_TRACE_RUNTIME.
    /// See docs/observability.md; the buffer is bounded, so long runs
    /// keep the oldest spans and count the rest in dropped().
    bool captureTrace = false;
    /// Heterogeneous serving (DeepRecSys loop, docs/scheduling.md):
    /// dynamic batches at or above the scheduler's per-model GPU
    /// threshold (QueryScheduler::gpuThreshold) are not serviced on
    /// the CPU worker — the worker pays only the host dispatch cost
    /// and the samples defer to a GpuLane accumulation queue priced
    /// by the GPU platform's characterization (GpuModel::simulateNet
    /// through the sweep), on the same virtual clock. Off by default:
    /// single-platform runs are bit-identical to the legacy engine.
    bool heterogeneous = false;
    /// Index of a kGpu platform in the scheduler's sweep (checked
    /// when heterogeneous is set).
    size_t gpuPlatformIdx = 3;
    /// Accumulation knobs of the GPU lane.
    GpuLaneConfig gpuLane;
    /// Near-memory lane (docs/pim.md): batches at or above the
    /// scheduler's per-model PIM threshold
    /// (QueryScheduler::pimThreshold) defer to a second accumulation
    /// lane priced by a kPim platform's characterization. Independent
    /// of the GPU split (both lanes can be on; the GPU threshold is
    /// checked first). Off by default: runs without the lane are
    /// bit-identical to the pre-PIM engine.
    bool pimLaneEnabled = false;
    /// Index of a kPim platform in the scheduler's sweep (checked
    /// when pimLaneEnabled is set).
    size_t pimPlatformIdx = 4;
    /// Accumulation knobs of the PIM lane.
    GpuLaneConfig pimLane;
    /// Placement surcharge (docs/fleet.md): extra virtual seconds per
    /// sample added to every CPU-serviced batch's service time,
    /// pricing embedding rows this node must fetch from a peer
    /// because its placement holds only part of each table
    /// (row-range-partitioned fleets). Not inflated by the socket
    /// contention factor — remote fetches cross the network, not the
    /// shared L3/DRAM. 0.0 (default) = every row is local, the
    /// single-node behavior, bit-identical to the legacy engine.
    double remoteSecondsPerSample = 0.0;
};

/** Result of one node (or engine) run. */
struct EngineResult {
    ServingStats aggregate;
    std::vector<ServingStats> perWorker;
    /// Mean / max service-time inflation applied across batches
    /// (1.0 = no contention observed).
    double meanSlowdown = 1.0;
    double maxSlowdown = 1.0;
    /// Real host seconds spent inside Executor::run across workers
    /// (wall-clock measurement, not part of the virtual-time stats).
    /// 0.0 when execMode is kProfileOnly (no kernels run there; see
    /// graph/executor.h hostSeconds semantics).
    double hostSeconds = 0.0;
    uint64_t batchesExecuted = 0;
    /// Mean real host seconds per executed batch (hostSeconds /
    /// batchesExecuted); comparing runs at different numThreads gives
    /// the measured per-batch intra-op speedup.
    double hostSecondsPerBatch = 0.0;
    /// Resolved intra-op width the workers used.
    int intraOpThreads = 1;
    /// True when workers served table lookups from one shared
    /// EmbeddingStore instead of private per-worker copies.
    bool storeShared = false;
    /// Embedding-table bytes of one dense copy of the served model.
    uint64_t tableBytesOneCopy = 0;
    /// Table bytes resident across the engine at the end of the run:
    /// shared-store mode = one backing copy + hot-row caches; legacy
    /// numeric mode = workers x one copy; 0 in kProfileOnly.
    uint64_t residentTableBytes = 0;
    /// What per-worker dense copies would have kept resident
    /// (workers x one copy) — the baseline the shared store saves
    /// against. 0 in kProfileOnly.
    uint64_t perWorkerTableBytes = 0;
    /// Shard-aggregated store counters for this run (hit/miss/tier
    /// traffic and modeled fetch seconds); empty when !storeShared.
    /// Like hostSeconds, these are host-side measurement, not
    /// virtual-time state: hit/miss splits depend on the order in
    /// which concurrent workers touch the shared caches.
    StoreStats storeStats;
    /// True when this run served through the CPU/GPU split. The
    /// fields below are only populated then; aggregate combines both
    /// sides (its utilization/offeredLoad are over numWorkers + 1
    /// servers).
    bool heterogeneous = false;
    /// The accelerator lane's own serving view: samples/batches it
    /// served, its mean accumulated batch, device utilization, and
    /// the latency tail of GPU-served samples.
    ServingStats gpuLaneStats;
    /// Dynamic batches the CPU workers handed over to the lane.
    uint64_t deferredTickets = 0;
    /// The per-model threshold the run routed with
    /// (QueryScheduler::kNoGpuThreshold when none was set).
    int64_t gpuThreshold = 0;
    /// True when this run served through the PIM lane. The fields
    /// below are only populated then; the aggregate's
    /// utilization/offeredLoad count the lane as one more server.
    bool pimEnabled = false;
    /// The PIM lane's own serving view (mirror of gpuLaneStats).
    ServingStats pimLaneStats;
    /// Dynamic batches the CPU workers handed over to the PIM lane.
    uint64_t pimDeferredTickets = 0;
    /// The per-model PIM threshold the run routed with
    /// (QueryScheduler::kNoPimThreshold when none was set).
    int64_t pimThreshold = 0;
};

/** One inference machine: workers + batch queue + optional GPU lane. */
class ServingNode
{
  public:
    /**
     * @param scheduler    latency oracle over the characterization
     *                     grid (not owned; must outlive the node)
     * @param model        served model
     * @param platform_idx platform in the scheduler's sweep
     */
    ServingNode(QueryScheduler* scheduler, ModelId model,
                size_t platform_idx);

    /** Serve a self-generated Poisson stream (the engine's classic run). */
    EngineResult run(const EngineConfig& config);

    /**
     * Serve an explicit arrival trace instead of a generated stream:
     * the timestamps (ascending, in [0, config.simSeconds)) are the
     * sub-stream a fleet router assigned to this node. Everything
     * else — admission, contention, execution, stats — is identical
     * to run(); a trace equal to the Poisson stream the config would
     * generate reproduces run()'s results exactly.
     */
    EngineResult runTrace(const EngineConfig& config,
                          std::vector<double> arrivals);

    /**
     * The node's compiled net (compile-once: shared by all workers of
     * all run() calls; workers only differ in their private
     * Workspace + Arena). Null until the first run.
     */
    std::shared_ptr<const CompiledNet> compiled() const;

    ModelId model() const { return model_; }
    size_t platformIdx() const { return platformIdx_; }
    QueryScheduler* scheduler() const { return scheduler_; }

  private:
    EngineResult runImpl(const EngineConfig& config,
                         std::vector<double>* trace);

    QueryScheduler* scheduler_;
    ModelId model_;
    size_t platformIdx_;

    /// One compilation per node, reused across run() configs; the
    /// per-batch memory plans inside it are shared by every worker.
    mutable std::mutex compileMu_;
    std::shared_ptr<CompiledNet> compiled_;
};

}  // namespace recstack

#endif  // RECSTACK_SERVE_SERVING_NODE_H_
