#include "serve/contention.h"

#include "common/logging.h"
#include "uarch/multicore.h"

namespace recstack {

std::vector<double>
contentionSlowdowns(const RunResult& single, const Platform& platform,
                    int num_workers)
{
    RECSTACK_CHECK(num_workers >= 1, "need at least one worker");
    std::vector<double> factors(static_cast<size_t>(num_workers), 1.0);
    if (platform.kind != PlatformKind::kCpu ||
        single.counters.cycles <= 0.0) {
        return factors;
    }
    const std::vector<ScalingPoint> points = estimateMulticoreScaling(
        single.counters, platform.cpu, num_workers);
    // Normalize by the 1-core point: the model's cycle components need
    // not sum exactly to the measured cycles, and the engine's 1-worker
    // run must price service identically to the analytical simulator.
    const double base = points.front().perEngineSlowdown;
    for (int k = 1; k <= num_workers; ++k) {
        factors[static_cast<size_t>(k - 1)] =
            points[static_cast<size_t>(k - 1)].perEngineSlowdown / base;
    }
    return factors;
}

}  // namespace recstack
